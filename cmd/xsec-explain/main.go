// Command xsec-explain runs LLM expert referencing on a telemetry window:
// it renders the zero-shot prompt, queries a model endpoint (the built-in
// expert service by default), and prints the structured analysis.
//
// Usage:
//
//	xsec-explain -demo bts-dos                      # explain a generated attack
//	xsec-explain -csv window.csv -model gemini      # explain a captured window
//	xsec-explain -demo blind-dos -endpoint http://… # use an external endpoint
//	xsec-explain -demo null-cipher -raw             # include the raw response
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/6g-xsec/xsec/internal/dataset"
	"github.com/6g-xsec/xsec/internal/llm"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/ue"
)

var demoKinds = map[string]ue.AttackKind{
	"bts-dos":     ue.AttackBTSDoS,
	"blind-dos":   ue.AttackBlindDoS,
	"uplink-id":   ue.AttackUplinkIDExtraction,
	"downlink-id": ue.AttackDownlinkIDExtraction,
	"null-cipher": ue.AttackNullCipher,
}

func main() {
	var (
		csvIn    = flag.String("csv", "", "MOBIFLOW CSV window to explain")
		demo     = flag.String("demo", "", "generate and explain an attack: bts-dos | blind-dos | uplink-id | downlink-id | null-cipher | benign")
		model    = flag.String("model", "chatgpt-4o", "model personality (chatgpt-4o, gemini, copilot, llama3, claude-3-sonnet)")
		endpoint = flag.String("endpoint", "", "external REST endpoint (default: built-in expert service)")
		raw      = flag.Bool("raw", false, "print the raw model response too")
		rag      = flag.Bool("rag", false, "augment the prompt with retrieved 3GPP passages")
		seed     = flag.Int64("seed", 3, "demo generation seed")
	)
	flag.Parse()
	if err := run(*csvIn, *demo, *model, *endpoint, *raw, *rag, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "xsec-explain:", err)
		os.Exit(1)
	}
}

func run(csvIn, demo, model, endpoint string, raw, rag bool, seed int64) error {
	window, err := loadWindow(csvIn, demo, seed)
	if err != nil {
		return err
	}
	fmt.Printf("window: %d telemetry records\n", len(window))
	for _, r := range window {
		fmt.Printf("  %s\n", r)
	}

	base := endpoint
	if base == "" {
		srv := llm.NewServer()
		addr, shutdown, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		defer shutdown()
		base = "http://" + addr
		fmt.Printf("\nbuilt-in expert service at %s\n", base)
	}

	client := llm.NewClient(base, model)
	client.RAG = rag
	analysis, err := client.AnalyzeWindow(context.Background(), window)
	if err != nil {
		return err
	}

	fmt.Printf("\n=== %s analysis ===\n", model)
	fmt.Printf("Verdict:     %s (confidence %.2f)\n", analysis.Verdict, analysis.Confidence)
	if analysis.Verdict == llm.VerdictAnomalous {
		fmt.Printf("Class:       %s\n", analysis.TopClass())
		fmt.Printf("Explanation: %s\n", analysis.Explanation)
		fmt.Printf("Attribution: %s\n", analysis.Attribution)
		fmt.Println("Remediation:")
		for _, r := range analysis.Remediation {
			fmt.Printf("  - %s\n", r)
		}
	}
	if raw {
		fmt.Println("\n--- raw response ---")
		fmt.Println(analysis.Raw)
	}
	return nil
}

func loadWindow(csvIn, demo string, seed int64) (mobiflow.Trace, error) {
	if csvIn != "" {
		f, err := os.Open(csvIn)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return mobiflow.ReadCSV(f)
	}
	if demo == "" {
		return nil, fmt.Errorf("provide -csv FILE or -demo KIND (%s | benign)", strings.Join(demoNames(), " | "))
	}
	labeled, err := dataset.GenerateMixed(dataset.MixedConfig{
		BenignConfig:       dataset.BenignConfig{Seed: seed},
		InstancesPerAttack: 1,
	})
	if err != nil {
		return nil, err
	}
	if demo == "benign" {
		var out mobiflow.Trace
		for i, r := range labeled.Trace {
			if labeled.AttackOf[i] == -1 {
				out = append(out, r)
				if len(out) == 15 {
					break
				}
			}
		}
		return out, nil
	}
	kind, ok := demoKinds[demo]
	if !ok {
		return nil, fmt.Errorf("unknown demo %q (want %s | benign)", demo, strings.Join(demoNames(), " | "))
	}
	var out mobiflow.Trace
	for i, r := range labeled.Trace {
		if labeled.AttackOf[i] == int(kind) {
			out = append(out, r)
		}
	}
	return out, nil
}

func demoNames() []string {
	names := make([]string, 0, len(demoKinds))
	for n := range demoKinds {
		names = append(names, n)
	}
	return names
}
