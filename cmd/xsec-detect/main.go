// Command xsec-detect runs MobiWatch anomaly detection offline over a
// MOBIFLOW trace with a trained model bundle.
//
// Usage:
//
//	xsec-detect -models models.json -csv capture.csv
//	xsec-detect -models models.json -demo          # score a generated attack dataset
//	xsec-detect ... -show 10                       # print the top-N anomalous windows
//	xsec-detect ... -inference i8                  # scoring precision: f32 (default), i8, f64
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/6g-xsec/xsec/internal/dataset"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/nn"
)

func main() {
	var (
		modelPath = flag.String("models", "models.json", "trained model bundle")
		csvIn     = flag.String("csv", "", "MOBIFLOW CSV trace to score")
		demo      = flag.Bool("demo", false, "score a generated attack dataset instead of a file")
		show      = flag.Int("show", 5, "print the N highest-scoring windows")
		seed      = flag.Int64("seed", 2, "demo dataset seed")
		inference = flag.String("inference", "", "scoring precision: f32 (default), i8, or f64")
	)
	flag.Parse()
	if err := run(*modelPath, *csvIn, *demo, *show, *seed, *inference); err != nil {
		fmt.Fprintln(os.Stderr, "xsec-detect:", err)
		os.Exit(1)
	}
}

func run(modelPath, csvIn string, demo bool, show int, seed int64, inference string) error {
	prec, err := nn.ParsePrecision(inference)
	if err != nil {
		return err
	}
	bundle, err := os.ReadFile(modelPath)
	if err != nil {
		return err
	}
	models, err := mobiwatch.Load(bundle)
	if err != nil {
		return err
	}

	var trace mobiflow.Trace
	switch {
	case csvIn != "":
		f, err := os.Open(csvIn)
		if err != nil {
			return err
		}
		trace, err = mobiflow.ReadCSV(f)
		f.Close()
		if err != nil {
			return err
		}
	case demo:
		labeled, err := dataset.GenerateMixed(dataset.MixedConfig{
			BenignConfig: dataset.BenignConfig{Seed: seed},
		})
		if err != nil {
			return err
		}
		trace = labeled.Trace
		fmt.Printf("demo attack dataset: %d records, %d labeled malicious\n",
			len(trace), labeled.MaliciousCount())
	default:
		return fmt.Errorf("provide -csv FILE or -demo")
	}

	aeScores := models.ScoreTraceAEBatched(trace, prec)
	lstmScores := models.ScoreTraceLSTMBatched(trace, prec)

	report := func(name string, scores []mobiwatch.WindowScore, span int) {
		anomalous := 0
		for _, s := range scores {
			if s.Anomalous {
				anomalous++
			}
		}
		fmt.Printf("\n%s: %d/%d windows anomalous (threshold %.6f)\n",
			name, anomalous, len(scores), scores[0].Threshold)

		sorted := append([]mobiwatch.WindowScore(nil), scores...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Score > sorted[j].Score })
		for i := 0; i < show && i < len(sorted); i++ {
			s := sorted[i]
			fmt.Printf("  #%d window@%d score=%.6f", i+1, s.Index, s.Score)
			if s.Anomalous {
				fmt.Printf("  ANOMALOUS")
			}
			fmt.Println()
			for j := s.Index; j < s.Index+span && j < len(trace); j++ {
				fmt.Printf("      %s\n", trace[j])
			}
		}
	}
	if len(aeScores) > 0 {
		report("Autoencoder", aeScores, models.Window)
	}
	if len(lstmScores) > 0 {
		report("LSTM", lstmScores, models.Window+1)
	}
	return nil
}
