// Command xsec-testbed runs the complete 6G-XSec deployment live: the
// simulated 5G data plane, the near-RT RIC with the MobiWatch and LLM
// Analyzer xApps, the SMO training workflow, and (optionally) the closed
// control loop — then launches attacks and reports every processed case.
//
// Usage:
//
//	xsec-testbed                       # train, deploy, run all five attacks
//	xsec-testbed -attack bts-dos      # one attack
//	xsec-testbed -auto                # apply closed-loop controls automatically
//	xsec-testbed -mitigate enforce    # governed mitigation engine (off | dry-run | enforce)
//	xsec-testbed -model llama3        # pick the analyst personality
//	xsec-testbed -inference i8        # MobiWatch scoring precision (f32 | i8 | f64)
//	xsec-testbed -federation 2        # federated mode: N RIC instances, mid-attack UE migration
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/6g-xsec/xsec/internal/core"
	"github.com/6g-xsec/xsec/internal/fed"
	"github.com/6g-xsec/xsec/internal/mitigate"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/ue"
)

func main() {
	var (
		attack      = flag.String("attack", "all", "attack to launch: bts-dos | blind-dos | uplink-id | downlink-id | null-cipher | all")
		auto        = flag.Bool("auto", false, "apply recommended E2 control actions automatically (ungoverned legacy path)")
		mitigateMod = flag.String("mitigate", "", "deploy the mitigation engine: off | dry-run | enforce")
		model       = flag.String("model", "chatgpt-4o", "LLM analyst personality")
		sessions    = flag.Int("sessions", 60, "benign training sessions")
		epochs      = flag.Int("epochs", 25, "training epochs")
		seed        = flag.Int64("seed", 4, "seed")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /traces and /debug/pprof on this address (e.g. :9090)")
		logLevel    = flag.String("log-level", "", "emit structured pipeline logs to stderr at this level: debug | info | warn | error")
		inference   = flag.String("inference", "", "MobiWatch scoring precision: f32 (default), i8, or f64")
		federation  = flag.Int("federation", 0, "run N federated RIC instances and migrate the attack UEs mid-flood")
	)
	flag.Parse()
	if *logLevel != "" {
		lv, err := obs.ParseLevel(*logLevel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xsec-testbed:", err)
			os.Exit(2)
		}
		obs.SetLogOutput(os.Stderr)
		obs.SetLogLevel(lv)
	}
	var err error
	if *federation > 0 {
		err = runFederation(*federation, *seed)
	} else {
		err = run(*attack, *auto, *mitigateMod, *model, *sessions, *epochs, *seed, *metricsAddr, *inference)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xsec-testbed:", err)
		os.Exit(1)
	}
}

// runFederation drives the multi-RIC scenario: a BTS-DoS flood is
// handed over between two federated instances mid-attack, and the
// destination must keep detecting it using the migrated window state.
func runFederation(instances int, seed int64) error {
	fmt.Printf("=== 6G-XSec federated testbed (%d RIC instances) ===\n", instances)
	fmt.Println("training models and generating the attack dataset...")
	res, err := fed.RunMigrationScenario(fed.ScenarioOptions{Instances: instances, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("flood: %d UE contexts, %d records before the handover (%s), %d after (%s)\n",
		len(res.AttackUEs), res.PreRecords, res.Source, res.PostRecords, res.Dest)
	fmt.Printf("mid-attack migration: %d UE states checkpointed on %s, shipped over the bus, restored on %s\n",
		len(res.AttackUEs), res.Source, res.Dest)
	fmt.Printf("\n=== summary ===\n")
	fmt.Printf("records scored (zero loss): %d/%d\n", res.TotalRecords, res.PreRecords+res.PostRecords)
	fmt.Printf("attack alerts on %s:     %d (window spans the migration boundary: %v)\n",
		res.Dest, res.AlertsOnDest, res.AlertSpansBoundary)
	fmt.Printf("migration audits:           %d joined chains, all OK: %v (%d with direct seq reachback)\n",
		len(res.Audits), res.AuditsOK, res.Reachbacks)
	if res.AlertsOnDest == 0 {
		return fmt.Errorf("the destination instance never flagged the migrated attack")
	}
	if !res.AuditsOK {
		return fmt.Errorf("migration provenance audit failed")
	}
	return nil
}

func run(attack string, auto bool, mitigateMode, model string, sessions, epochs int, seed int64, metricsAddr, inference string) error {
	fmt.Println("=== 6G-XSec testbed ===")
	fw, err := core.New(core.Options{
		Seed:         seed,
		ReportPeriod: 10 * time.Millisecond,
		TrainOpts:    mobiwatch.TrainOptions{Epochs: epochs, Seed: seed},
		LLMModel:     model,
		AutoRespond:  auto,
		Mitigate:     mitigateMode,
		MetricsAddr:  metricsAddr,
		Inference:    inference,
	})
	if err != nil {
		return err
	}
	defer fw.Close()
	fmt.Printf("RIC up; gNB %q connected over E2; expert service at %s\n",
		fw.Opts.NodeID, fw.LLMBaseURL())
	if addr := fw.MetricsAddr(); addr != "" {
		fmt.Printf("observability: http://%s/metrics (Prometheus text), /traces, /debug/pprof\n", addr)
	}

	fmt.Printf("collecting %d benign sessions for training...\n", sessions)
	benign, err := fw.CollectBenign(sessions)
	if err != nil {
		return err
	}
	fmt.Printf("collected %d telemetry records; training MobiWatch (SMO workflow)...\n", len(benign))
	if err := fw.Train(benign); err != nil {
		return err
	}
	fmt.Printf("models deployed: AE threshold %.6f, LSTM threshold %.6f\n",
		fw.Models.AEThreshold, fw.Models.LSTMThreshold)
	if err := fw.DeployXApps(); err != nil {
		return err
	}
	if fw.Mitigator() != nil {
		fmt.Printf("xApps deployed: mobiwatch, llm-analyzer, mitigation-engine (%s)\n",
			fw.Mitigator().Mode())
	} else {
		fmt.Println("xApps deployed: mobiwatch, llm-analyzer")
	}

	// Consume cases in the background.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for c := range fw.Cases() {
			fmt.Printf("\n*** CASE (%s, score %.5f > %.5f)\n", c.Alert.Model, c.Alert.Score, c.Alert.Threshold)
			if c.Analysis != nil {
				fmt.Printf("    LLM verdict: %s", c.Analysis.Verdict)
				if len(c.Analysis.Hypotheses) > 0 {
					fmt.Printf(" — %s", c.Analysis.TopClass())
				}
				fmt.Println()
				if c.Analysis.Explanation != "" {
					fmt.Printf("    why: %s\n", c.Analysis.Explanation)
				}
			}
			switch {
			case c.NeedsHuman:
				fmt.Println("    -> routed to human supervision queue")
			case c.Control != nil:
				fmt.Printf("    -> recommended control: %s (%s)\n", c.Control.Action, c.Control.Reason)
			}
		}
	}()

	// A victim for the DoS attacks.
	victim := fw.NewUE(ue.Pixel5, 900)
	vres, err := victim.RunSession(fw.GNB)
	if err != nil {
		return err
	}
	attacker := fw.NewUE(ue.OAIUE, 901)
	attacker.Pace = func() { fw.Clock().Advance(500 * time.Microsecond) }

	launch := func(name string) error {
		fmt.Printf("\n>>> launching %s\n", name)
		var err error
		switch name {
		case "bts-dos":
			_, err = attacker.RunBTSDoS(fw.GNB, 8)
		case "blind-dos":
			_, err = attacker.RunBlindDoS(fw.GNB, vres.GUTI.TMSI, 6)
		case "uplink-id":
			_, err = attacker.RunUplinkIDExtraction(fw.GNB)
		case "downlink-id":
			_, err = attacker.RunDownlinkIDExtraction(fw.GNB)
		case "null-cipher":
			_, err = attacker.RunNullCipher(fw.GNB)
		default:
			return fmt.Errorf("unknown attack %q", name)
		}
		if err != nil {
			fmt.Printf("    attack outcome: %v\n", err)
		}
		time.Sleep(300 * time.Millisecond) // let the pipeline drain
		return nil
	}

	if attack == "all" {
		for _, name := range []string{"bts-dos", "blind-dos", "uplink-id", "downlink-id", "null-cipher"} {
			if err := launch(name); err != nil {
				return err
			}
		}
	} else if err := launch(attack); err != nil {
		return err
	}

	time.Sleep(500 * time.Millisecond)
	ws := fw.WatchStats()
	as := fw.AnalyzerStats()
	fmt.Printf("\n=== summary ===\n")
	fmt.Printf("telemetry records seen:   %d\n", ws.RecordsSeen.Load())
	fmt.Printf("windows scored:           %d\n", ws.WindowsScored.Load())
	fmt.Printf("alerts raised:            %d\n", ws.AlertsRaised.Load())
	fmt.Printf("cases processed:          %d (agree %d, disagree %d, failures %d)\n",
		as.Processed.Load(), as.Agreements.Load(), as.Disagrees.Load(), as.Failures.Load())
	fmt.Printf("human-review queue:       %d\n", fw.Analyzer().HumanQueueLen())
	fmt.Printf("closed-loop controls:     %d\n", fw.ControlsSent())
	if eng := fw.Mitigator(); eng != nil {
		eng.Quiesce()
		tally := map[string]int{}
		for _, en := range mitigate.Entries(fw.SDL) {
			tally[en.Decision]++
		}
		decisions := make([]string, 0, len(tally))
		for d := range tally {
			decisions = append(decisions, d)
		}
		sort.Strings(decisions)
		fmt.Printf("mitigation engine (%s):   %d journaled proposals, %d active\n",
			eng.Mode(), len(mitigate.Entries(fw.SDL)), eng.ActiveCount())
		for _, d := range decisions {
			fmt.Printf("    %-22s %d\n", d, tally[d])
		}
	}
	return nil
}
