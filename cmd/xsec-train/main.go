// Command xsec-train runs the SMO training workflow: it collects (or
// loads) a benign MOBIFLOW dataset, fits the MobiWatch autoencoder and
// LSTM, calibrates the detection thresholds, and writes the deployable
// model bundle.
//
// Usage:
//
//	xsec-train -out models.json                       # generate benign data, train
//	xsec-train -csv benign.csv -out models.json       # train on a captured trace
//	xsec-train -sessions 200 -epochs 60 -window 6 ... # scale the run
//	xsec-train -export-csv benign.csv ...             # also save the dataset
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/6g-xsec/xsec/internal/dataset"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
)

func main() {
	var (
		out       = flag.String("out", "models.json", "output path for the model bundle")
		csvIn     = flag.String("csv", "", "train on a MOBIFLOW CSV trace instead of generating one")
		exportCSV = flag.String("export-csv", "", "also write the benign dataset as CSV")
		sessions  = flag.Int("sessions", 120, "benign sessions to generate")
		fleet     = flag.Int("fleet", 20, "distinct benign devices")
		window    = flag.Int("window", 4, "sliding-window size N")
		pctile    = flag.Float64("percentile", 99, "threshold percentile")
		epochs    = flag.Int("epochs", 40, "training epochs")
		seed      = flag.Int64("seed", 1, "generation/training seed")
		verbose   = flag.Bool("v", false, "print per-epoch loss")
	)
	flag.Parse()
	if err := run(*out, *csvIn, *exportCSV, *sessions, *fleet, *window, *pctile, *epochs, *seed, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "xsec-train:", err)
		os.Exit(1)
	}
}

func run(out, csvIn, exportCSV string, sessions, fleet, window int, pctile float64, epochs int, seed int64, verbose bool) error {
	var benign mobiflow.Trace
	var err error
	if csvIn != "" {
		f, err := os.Open(csvIn)
		if err != nil {
			return err
		}
		benign, err = mobiflow.ReadCSV(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("loaded %d records from %s\n", len(benign), csvIn)
	} else {
		fmt.Printf("generating benign dataset: %d sessions across %d devices...\n", sessions, fleet)
		benign, err = dataset.GenerateBenign(dataset.BenignConfig{Sessions: sessions, Fleet: fleet, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Printf("collected %d telemetry records (%d UE contexts)\n", len(benign), len(benign.UEs()))
	}

	if exportCSV != "" {
		f, err := os.Create(exportCSV)
		if err != nil {
			return err
		}
		if err := benign.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("dataset exported to %s\n", exportCSV)
	}

	opts := mobiwatch.TrainOptions{Window: window, Percentile: pctile, Epochs: epochs, Seed: seed}
	fmt.Printf("training autoencoder + LSTM (window=%d, epochs=%d, threshold=p%.1f)...\n",
		window, epochs, pctile)
	models, err := mobiwatch.Train(benign, opts)
	if err != nil {
		return err
	}
	_ = verbose
	fmt.Printf("fitted thresholds: AE=%.6f  LSTM=%.6f  (vocabulary: %d messages)\n",
		models.AEThreshold, models.LSTMThreshold, len(models.Vocab.Messages))

	bundle, err := models.Save()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, bundle, 0o644); err != nil {
		return err
	}
	fmt.Printf("model bundle written to %s (%d bytes)\n", out, len(bundle))
	return nil
}
