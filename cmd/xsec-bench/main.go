// Command xsec-bench regenerates the tables and figures of the 6G-XSec
// paper's evaluation from the simulated testbed.
//
// Usage:
//
//	xsec-bench -all                 # every artifact
//	xsec-bench -table 2             # one table (1, 2, 3)
//	xsec-bench -figure 4            # one figure (2, 4, 5)
//	xsec-bench -ablation threshold  # window | threshold | bottleneck
//	xsec-bench -quick -table 2      # reduced dataset / epochs
//	xsec-bench -nn                  # NN hot-path baseline → BENCH_nn.json
//	xsec-bench -nn -smoke           # reduced NN workload (CI path check)
//	xsec-bench -obs                 # live-pipeline metrics baseline → BENCH_obs.json
//	xsec-bench -mitigate            # closed-loop mitigation baseline → BENCH_mitigate.json
//	xsec-bench -prov                # provenance ledger baseline → BENCH_prov.json
//	xsec-bench -ingest              # telemetry ingest baseline → BENCH_ingest.json
//	xsec-bench -ingest -smoke       # reduced ingest workload (CI path check)
//	xsec-bench -fed                 # federated throughput baseline → BENCH_fed.json
//	xsec-bench -fed -smoke          # reduced federation workload (CI path check)
//	xsec-bench -fleet               # fleet observability baseline → BENCH_fleet.json
//	xsec-bench -fleet -smoke        # reduced fleet drill (CI path check)
//	xsec-bench -llm                 # LLM serving-layer baseline → BENCH_llm.json
//	xsec-bench -llm -smoke          # reduced LLM workload (CI path check)
//
// -log-level (default $XSEC_LOG_LEVEL, else info) tunes structured log
// verbosity; -metrics-addr serves /metrics, /healthz, and the /fleet/*
// endpoints for the duration of the run.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/6g-xsec/xsec/internal/bench"
	"github.com/6g-xsec/xsec/internal/obs"
)

func main() {
	var (
		table       = flag.Int("table", 0, "regenerate a table (1, 2, or 3)")
		figure      = flag.Int("figure", 0, "regenerate a figure (2, 4, or 5)")
		ablation    = flag.String("ablation", "", "run an ablation: window | threshold | bottleneck | rag")
		all         = flag.Bool("all", false, "regenerate every artifact")
		quick       = flag.Bool("quick", false, "use the reduced configuration")
		seed        = flag.Int64("seed", 1, "experiment seed")
		nnBench     = flag.Bool("nn", false, "measure the NN hot paths and write the machine-readable baseline")
		obsBench    = flag.Bool("obs", false, "run the live pipeline and snapshot the observability registry")
		mitBench    = flag.Bool("mitigate", false, "measure the closed mitigation loop under the DoS attacks")
		provBench   = flag.Bool("prov", false, "measure provenance ledger overhead and chain reconstruction")
		ingestBench = flag.Bool("ingest", false, "measure the telemetry ingest path, scaled vs unsharded baseline")
		fedBench    = flag.Bool("fed", false, "measure federated multi-RIC throughput vs a single instance")
		fleetBench  = flag.Bool("fleet", false, "measure the fleet observability plane: scrapes, trace stitching, failure detection")
		llmBench    = flag.Bool("llm", false, "measure the LLM serving layer: cache, coalescing, hedging, saturation fallback")
		smoke       = flag.Bool("smoke", false, "shrink the -ingest/-nn workload so CI exercises the path quickly")
		outPath     = flag.String("out", "", "baseline output path (default BENCH_<name>.json)")
		logLevel    = flag.String("log-level", envDefault("XSEC_LOG_LEVEL", "info"), "log verbosity: debug | info | warn | error")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /healthz, and /fleet/* on this address for the run")
	)
	flag.Parse()

	if err := setupObs(*logLevel, *metricsAddr); err != nil {
		fmt.Fprintln(os.Stderr, "xsec-bench:", err)
		os.Exit(1)
	}

	cfg := bench.Config{Seed: *seed}
	if *quick {
		cfg = bench.Quick(*seed)
	}

	// writeBaseline persists a machine-readable baseline next to the
	// human-readable table.
	writeBaseline := func(table string, data []byte, err error, path string) {
		if err == nil {
			err = os.WriteFile(path, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "xsec-bench:", err)
			os.Exit(1)
		}
		fmt.Println(table)
		fmt.Println("baseline written to", path)
	}

	if *nnBench {
		if *smoke && !*quick {
			// Smoke mode is a CI path check; pair the short measurement
			// windows with the reduced dataset unless -quick was given.
			cfg = bench.Quick(*seed)
		}
		res, err := bench.RunNNBench(cfg, *smoke)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xsec-bench:", err)
			os.Exit(1)
		}
		out := *outPath
		if out == "" {
			out = "BENCH_nn.json"
		}
		data, err := res.JSON()
		writeBaseline(res.Format(), data, err, out)
		return
	}
	if *obsBench {
		res, err := bench.RunObsBench(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xsec-bench:", err)
			os.Exit(1)
		}
		out := *outPath
		if out == "" {
			out = "BENCH_obs.json"
		}
		data, err := res.JSON()
		writeBaseline(res.Format(), data, err, out)
		return
	}
	if *mitBench {
		res, err := bench.RunMitigateBench(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xsec-bench:", err)
			os.Exit(1)
		}
		out := *outPath
		if out == "" {
			out = "BENCH_mitigate.json"
		}
		data, err := res.JSON()
		writeBaseline(res.Format(), data, err, out)
		return
	}
	if *ingestBench {
		res, err := bench.RunIngestBench(bench.IngestOptions{Smoke: *smoke})
		if err != nil {
			fmt.Fprintln(os.Stderr, "xsec-bench:", err)
			os.Exit(1)
		}
		out := *outPath
		if out == "" {
			out = "BENCH_ingest.json"
		}
		data, err := res.JSON()
		writeBaseline(res.Format(), data, err, out)
		return
	}
	if *fedBench {
		res, err := bench.RunFedBench(bench.FedOptions{Seed: *seed, Smoke: *smoke})
		if err != nil {
			fmt.Fprintln(os.Stderr, "xsec-bench:", err)
			os.Exit(1)
		}
		out := *outPath
		if out == "" {
			out = "BENCH_fed.json"
		}
		data, err := res.JSON()
		writeBaseline(res.Format(), data, err, out)
		return
	}
	if *fleetBench {
		res, err := bench.RunFleetBench(bench.FleetOptions{Seed: *seed, Smoke: *smoke})
		if err != nil {
			fmt.Fprintln(os.Stderr, "xsec-bench:", err)
			os.Exit(1)
		}
		out := *outPath
		if out == "" {
			out = "BENCH_fleet.json"
		}
		data, err := res.JSON()
		writeBaseline(res.Format(), data, err, out)
		return
	}
	if *llmBench {
		res, err := bench.RunLLMBench(bench.LLMOptions{Seed: *seed, Smoke: *smoke})
		if err != nil {
			fmt.Fprintln(os.Stderr, "xsec-bench:", err)
			os.Exit(1)
		}
		out := *outPath
		if out == "" {
			out = "BENCH_llm.json"
		}
		data, err := res.JSON()
		writeBaseline(res.Format(), data, err, out)
		return
	}
	if *provBench {
		res, err := bench.RunProvBench(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xsec-bench:", err)
			os.Exit(1)
		}
		out := *outPath
		if out == "" {
			out = "BENCH_prov.json"
		}
		data, err := res.JSON()
		writeBaseline(res.Format(), data, err, out)
		return
	}

	out, err := run(cfg, *table, *figure, *ablation, *all)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xsec-bench:", err)
		os.Exit(1)
	}
	fmt.Println(out)
}

// envDefault returns the environment variable's value, or def when the
// variable is unset or empty.
func envDefault(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

// setupObs applies the log level and, when requested, serves the
// observability endpoints for the duration of the run.
func setupObs(logLevel, metricsAddr string) error {
	lv, err := obs.ParseLevel(logLevel)
	if err != nil {
		return err
	}
	obs.SetLogLevel(lv)
	if metricsAddr != "" {
		addr, _, err := obs.ListenAndServe(metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		fmt.Fprintln(os.Stderr, "metrics on http://"+addr)
	}
	return nil
}

func run(cfg bench.Config, table, figure int, ablation string, all bool) (string, error) {
	switch {
	case all:
		return bench.FormatAll(cfg)
	case table == 1:
		return bench.Table1(), nil
	case table == 2:
		res, err := bench.RunTable2(cfg)
		if err != nil {
			return "", err
		}
		return res.Format(), nil
	case table == 3:
		res, err := bench.RunTable3(cfg)
		if err != nil {
			return "", err
		}
		return res.Format(), nil
	case figure == 2:
		return bench.Figure2(cfg)
	case figure == 4:
		res, err := bench.RunFigure4(cfg)
		if err != nil {
			return "", err
		}
		return res.Format(), nil
	case figure == 5:
		return bench.Figure5(cfg)
	case ablation == "window":
		res, err := bench.AblationWindowSize(cfg, []int{2, 4, 6, 8, 10})
		if err != nil {
			return "", err
		}
		return res.Format(), nil
	case ablation == "threshold":
		res, err := bench.AblationThreshold(cfg, []float64{99.9, 99, 97, 95, 93, 90, 85})
		if err != nil {
			return "", err
		}
		return res.Format(), nil
	case ablation == "bottleneck":
		res, err := bench.AblationBottleneck(cfg, []int{4, 8, 16, 32})
		if err != nil {
			return "", err
		}
		return res.Format(), nil
	case ablation == "rag":
		zero, err := bench.RunTable3(cfg)
		if err != nil {
			return "", err
		}
		rag, err := bench.RunTable3RAG(cfg)
		if err != nil {
			return "", err
		}
		return "Zero-shot (paper's Table 3):\n\n" + zero.Format() +
			"\nWith retrieval-augmented prompts (§5 extension):\n\n" + rag.Format(), nil
	default:
		return "", fmt.Errorf("nothing selected; try -all, -table N, -figure N, or -ablation NAME")
	}
}
