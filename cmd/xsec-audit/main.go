// Command xsec-audit reconstructs and pretty-prints the forensic
// evidence chain behind 6G-XSec verdicts and control actions: MobiFlow
// batch digest → E2 indication → feature-window scores vs. thresholds →
// alert → LLM verdict → mitigation lifecycle.
//
// Usage:
//
//	xsec-audit                          # run a bts-dos enforce testbed, audit every issued action
//	xsec-audit -attack blind-dos        # audit a different attack scenario
//	xsec-audit -mitigate dry-run        # audit the rehearsal journal instead
//	xsec-audit -chain gnb-001/42        # restrict the audit to one chain
//	xsec-audit -endpoint http://host:9090 -label bts-dos   # query a live deployment's /prov
//	xsec-audit -federation 2            # audit a federated mid-attack UE migration
//	xsec-audit -fleet                   # audit the fleet observability plane end to end
//
// In testbed mode the command exits non-zero when any issued mitigation
// action lacks a complete evidence chain — the auditability contract. In
// federation mode it exits non-zero when any migrated UE's source and
// destination chains are not joined, or the destination never scored the
// joining indication. In fleet mode it exits non-zero when the crashed
// instance is not auto-evicted, the migrated UE's trace does not stitch
// across instances, or any SLO is burning error budget above threshold.
//
// -log-level (default $XSEC_LOG_LEVEL, else info) tunes structured log
// verbosity; -metrics-addr serves /metrics, /healthz, and the /fleet/*
// endpoints for the duration of the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"time"

	"github.com/6g-xsec/xsec/internal/core"
	"github.com/6g-xsec/xsec/internal/fed"
	"github.com/6g-xsec/xsec/internal/mitigate"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/obs/fleet"
	"github.com/6g-xsec/xsec/internal/prov"
	"github.com/6g-xsec/xsec/internal/ue"
)

func main() {
	var (
		endpoint = flag.String("endpoint", "", "audit a live deployment: query <endpoint>/prov instead of running the testbed")
		chainID  = flag.String("chain", "", "restrict the audit to one chain (node/sn)")
		ueFilter = flag.String("ue", "", "endpoint mode: only chains touching this UE context")
		label    = flag.String("label", "", "endpoint mode: only chains mentioning this attack/state label")
		since    = flag.String("since", "", "endpoint mode: RFC 3339 lower time bound")
		until    = flag.String("until", "", "endpoint mode: RFC 3339 upper time bound")

		federation  = flag.Int("federation", 0, "audit a federated migration: run N instances, hand the attack over mid-flood, verify joined chains")
		fleetAudit  = flag.Bool("fleet", false, "audit the fleet observability plane: stitched traces, failure detection, SLO burn")
		attack      = flag.String("attack", "bts-dos", "testbed mode: attack to launch and audit")
		mitigateMod = flag.String("mitigate", "enforce", "testbed mode: mitigation engine mode (off | dry-run | enforce)")
		sessions    = flag.Int("sessions", 60, "testbed mode: benign training sessions")
		epochs      = flag.Int("epochs", 25, "testbed mode: training epochs")
		seed        = flag.Int64("seed", 4, "testbed mode: seed")
		logLevel    = flag.String("log-level", envDefault("XSEC_LOG_LEVEL", "info"), "log verbosity: debug | info | warn | error")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /healthz, and /fleet/* on this address for the run")
	)
	flag.Parse()

	if err := setupObs(*logLevel, *metricsAddr); err != nil {
		fmt.Fprintln(os.Stderr, "xsec-audit:", err)
		os.Exit(1)
	}

	var err error
	switch {
	case *endpoint != "":
		err = auditEndpoint(*endpoint, *chainID, *ueFilter, *label, *since, *until)
	case *fleetAudit:
		err = auditFleet(*seed)
	case *federation > 0:
		err = auditFederation(*federation, *seed)
	default:
		err = auditRun(*attack, *mitigateMod, *sessions, *epochs, *seed, *chainID)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xsec-audit:", err)
		os.Exit(1)
	}
}

// auditEndpoint queries a live deployment's /prov endpoint and renders
// the matching chains.
func auditEndpoint(endpoint, chainID, ueFilter, label, since, until string) error {
	q := url.Values{}
	for k, v := range map[string]string{
		"chain": chainID, "ue": ueFilter, "label": label, "since": since, "until": until,
	} {
		if v != "" {
			q.Set(k, v)
		}
	}
	u := endpoint + "/prov"
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: HTTP %d", u, resp.StatusCode)
	}
	var chains []prov.ChainRecord
	if err := json.NewDecoder(resp.Body).Decode(&chains); err != nil {
		return fmt.Errorf("decoding /prov response: %w", err)
	}
	if len(chains) == 0 {
		fmt.Println("no chains matched")
		return nil
	}
	for _, c := range chains {
		prov.WriteChain(os.Stdout, c)
		fmt.Println()
	}
	fmt.Printf("%d chain(s)\n", len(chains))
	return nil
}

// auditFederation runs the federated migration scenario and audits the
// ledger it leaves behind: every migrated UE's destination chain must
// join to its source chain, and the joining indication must have been
// scored. The joined chains are rendered so the hand-off is readable
// end to end.
func auditFederation(instances int, seed int64) error {
	fmt.Printf("=== xsec-audit: federated UE-state migration (%d instances) ===\n", instances)
	fmt.Println("training models, generating the attack, migrating mid-flood...")
	res, err := fed.RunMigrationScenario(fed.ScenarioOptions{Instances: instances, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("%d UE contexts handed over %s -> %s at record %d/%d; %d attack alerts on %s\n\n",
		len(res.AttackUEs), res.Source, res.Dest, res.PreRecords,
		res.PreRecords+res.PostRecords, res.AlertsOnDest, res.Dest)

	failed := 0
	for _, a := range res.Audits {
		status := "OK"
		if !a.OK() {
			status = "FAILED: " + a.Err
			failed++
		}
		fmt.Printf("--- UE %d: %s -> %s (%s", a.UEID, a.From, a.To, status)
		if a.Reachback {
			fmt.Printf(", window reaches restored history")
		}
		fmt.Println(") ---")
		for _, id := range []prov.ChainID{a.From, a.To} {
			rec, err := prov.ReadChain(res.Store, id)
			if err != nil {
				fmt.Printf("chain %s: NOT PERSISTED (%v)\n", id, err)
				continue
			}
			prov.WriteChain(os.Stdout, rec)
		}
		fmt.Println()
	}

	if failed > 0 {
		return fmt.Errorf("%d of %d migrated UE(s) lack a joined, gap-free evidence chain", failed, len(res.Audits))
	}
	if res.AlertsOnDest == 0 {
		return fmt.Errorf("the destination instance never flagged the migrated attack")
	}
	fmt.Printf("audit OK: all %d migrated UE(s) have joined chains with scoring resumed at the join (%d with direct seq reachback)\n",
		len(res.Audits), res.Reachbacks)
	return nil
}

// auditFleet drives the fleet observability drill — a federation with
// the SMO-side collector attached, a mid-attack migration, timed scrape
// rounds, then a crash — and audits what the plane observed: the
// migrated UE's spans must stitch into one cross-instance trace, the
// crashed instance must be auto-evicted from the ring by the failure
// detector alone, and no SLO may burn error budget above threshold.
func auditFleet(seed int64) error {
	fmt.Println("=== xsec-audit: fleet observability plane ===")
	fmt.Println("training models, replaying the flood with a mid-attack migration, crashing an instance...")
	res, err := fed.RunFleetDrill(fed.FleetDrillOptions{Seed: seed})
	if err != nil {
		return err
	}

	fmt.Printf("\n--- fleet health (%d instances) ---\n", res.Instances)
	for _, h := range res.Health {
		line := fmt.Sprintf("%-8s %-8s seq=%-4d ues=%-3d records=%d", h.Instance, h.State, h.HeartbeatSeq, h.UEs, h.Records)
		if !h.EvictedAt.IsZero() {
			line += "  evicted"
		}
		fmt.Println(line)
	}

	fmt.Printf("\n--- failure-detector journal (%d transitions) ---\n", res.JournalTransitions)
	for _, tr := range fleet.ReadJournal(res.Store) {
		fmt.Printf("#%d %s: %s -> %s (%s)\n", tr.Seq, tr.Instance, tr.From, tr.To, tr.Reason)
	}

	fmt.Printf("\n--- distributed traces ---\n")
	fmt.Printf("%d stitched trace(s); migrated UE %d: %d segments across %d instances, %d spans, complete=%v\n",
		res.StitchedTraces, res.MigratedUE, res.TraceSegments, res.TraceInstances, res.TraceSpans, res.TraceComplete)

	fmt.Printf("\n--- SLOs ---\n")
	for _, s := range res.SLOs {
		status := "ok"
		if s.Firing {
			status = "FIRING"
		}
		fmt.Printf("%-18s target=%.4g sli=%.6f burn fast=%.3f slow=%.3f (threshold %.3g) %s\n",
			s.Name, s.Target, s.SLI, s.BurnFast, s.BurnSlow, s.Threshold, status)
	}

	fmt.Printf("\nkill -> auto-evict: %s in %.3fs (ring updated=%v)\n",
		res.Victim, res.KillToEvictSecs, res.EvictedFromRing)

	var problems []string
	if res.TraceSegments < 2 || !res.TraceComplete {
		problems = append(problems, fmt.Sprintf("migrated UE %d did not yield a complete cross-instance trace", res.MigratedUE))
	}
	if !res.EvictedFromRing {
		problems = append(problems, fmt.Sprintf("crashed instance %s was not auto-evicted from the ring", res.Victim))
	}
	if res.FiringSLOs > 0 {
		problems = append(problems, fmt.Sprintf("%d SLO(s) burning error budget above threshold", res.FiringSLOs))
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "FAILED:", p)
		}
		return fmt.Errorf("fleet audit failed %d check(s)", len(problems))
	}
	fmt.Println("audit OK: trace stitched, victim auto-evicted, no SLO firing")
	return nil
}

// envDefault returns the environment variable's value, or def when the
// variable is unset or empty.
func envDefault(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

// setupObs applies the log level and, when requested, serves the
// observability endpoints for the duration of the run.
func setupObs(logLevel, metricsAddr string) error {
	lv, err := obs.ParseLevel(logLevel)
	if err != nil {
		return err
	}
	obs.SetLogLevel(lv)
	if metricsAddr != "" {
		addr, _, err := obs.ListenAndServe(metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		fmt.Fprintln(os.Stderr, "metrics on http://"+addr)
	}
	return nil
}

// auditRun drives a full testbed run — train, deploy with the governed
// mitigation engine, attack — then audits the provenance ledger: every
// issued mitigation action must resolve to a complete evidence chain.
func auditRun(attack, mitigateMode string, sessions, epochs int, seed int64, chainID string) error {
	fmt.Printf("=== xsec-audit: %s run, mitigation %s ===\n", attack, mitigateMode)
	fw, err := core.New(core.Options{
		Seed:         seed,
		ReportPeriod: 10 * time.Millisecond,
		TrainOpts:    mobiwatch.TrainOptions{Epochs: epochs, Seed: seed},
		Mitigate:     mitigateMode,
	})
	if err != nil {
		return err
	}
	defer fw.Close()

	benign, err := fw.CollectBenign(sessions)
	if err != nil {
		return err
	}
	if err := fw.Train(benign); err != nil {
		return err
	}
	if err := fw.DeployXApps(); err != nil {
		return err
	}
	fmt.Printf("deployed: AE threshold %.6f, LSTM threshold %.6f\n",
		fw.Models.AEThreshold, fw.Models.LSTMThreshold)

	// Drain cases quietly; the audit reads the ledger afterwards.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range fw.Cases() {
		}
	}()

	victim := fw.NewUE(ue.Pixel5, 900)
	vres, err := victim.RunSession(fw.GNB)
	if err != nil {
		return err
	}
	attacker := fw.NewUE(ue.OAIUE, 901)
	attacker.Pace = func() { fw.Clock().Advance(500 * time.Microsecond) }

	fmt.Printf("launching %s...\n", attack)
	switch attack {
	case "bts-dos":
		_, err = attacker.RunBTSDoS(fw.GNB, 8)
	case "blind-dos":
		_, err = attacker.RunBlindDoS(fw.GNB, vres.GUTI.TMSI, 6)
	case "uplink-id":
		_, err = attacker.RunUplinkIDExtraction(fw.GNB)
	case "downlink-id":
		_, err = attacker.RunDownlinkIDExtraction(fw.GNB)
	case "null-cipher":
		_, err = attacker.RunNullCipher(fw.GNB)
	default:
		return fmt.Errorf("unknown attack %q", attack)
	}
	if err != nil {
		fmt.Printf("attack outcome: %v\n", err)
	}
	time.Sleep(500 * time.Millisecond) // let the pipeline drain

	if eng := fw.Mitigator(); eng != nil {
		eng.Quiesce()
	}
	fw.Prov().Flush()

	// The audit: every journaled action that reached "issued" must have
	// a complete evidence chain persisted in the SDL.
	entries := mitigate.Entries(fw.SDL)
	issued := make([]mitigate.Entry, 0, len(entries))
	for _, en := range entries {
		for _, tr := range en.History {
			if tr.State == mitigate.StateIssued.String() {
				issued = append(issued, en)
				break
			}
		}
	}
	fmt.Printf("\n%d journaled proposal(s), %d issued action(s)\n\n", len(entries), len(issued))

	incomplete := 0
	audited := 0
	for _, en := range issued {
		if en.Chain == "" {
			fmt.Printf("action#%d %s: NO CHAIN RECORDED\n\n", en.ID, en.Action)
			incomplete++
			continue
		}
		if chainID != "" && en.Chain != chainID {
			continue
		}
		id, err := prov.ParseChainID(en.Chain)
		if err != nil {
			return fmt.Errorf("action#%d: %w", en.ID, err)
		}
		rec, err := prov.ReadChain(fw.SDL, id)
		if err != nil {
			fmt.Printf("action#%d %s: chain %s NOT PERSISTED (%v)\n\n", en.ID, en.Action, en.Chain, err)
			incomplete++
			continue
		}
		audited++
		fmt.Printf("--- action#%d %s (decision %s, window %s) ---\n",
			en.ID, en.Action, en.Decision, en.Digest)
		prov.WriteChain(os.Stdout, rec)
		if missing := rec.MissingStages(); len(missing) > 0 {
			incomplete++
			fmt.Printf("INCOMPLETE: missing stages %v\n", missing)
		}
		fmt.Println()
	}

	if incomplete > 0 {
		return fmt.Errorf("%d of %d issued action(s) lack a complete evidence chain", incomplete, len(issued))
	}
	if len(issued) > 0 {
		fmt.Printf("audit OK: all %d issued action(s) have complete evidence chains\n", audited)
	} else {
		fmt.Println("no issued actions to audit (try -mitigate enforce)")
	}
	return nil
}
