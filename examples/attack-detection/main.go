// Attack detection through the full O-RAN pipeline: every one of the
// paper's five attacks is launched against the live framework — UE → gNB
// → E2 → near-RT RIC → MobiWatch xApp → LLM Analyzer xApp — and the
// resulting cases are reported per attack.
//
// Run with: go run ./examples/attack-detection
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/6g-xsec/xsec/internal/analyzer"
	"github.com/6g-xsec/xsec/internal/core"
	"github.com/6g-xsec/xsec/internal/llm"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/ue"
)

func main() {
	fw, err := core.New(core.Options{
		Seed:         11,
		ReportPeriod: 10 * time.Millisecond,
		TrainOpts:    mobiwatch.TrainOptions{Epochs: 20, Seed: 11},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fw.Close()

	fmt.Println("collecting benign traffic and training MobiWatch...")
	benign, err := fw.CollectBenign(50)
	if err != nil {
		log.Fatal(err)
	}
	if err := fw.Train(benign); err != nil {
		log.Fatal(err)
	}
	if err := fw.DeployXApps(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("xApps deployed; launching the five attacks")

	victim := fw.NewUE(ue.Pixel6, 500)
	vres, err := victim.RunSession(fw.GNB)
	if err != nil {
		log.Fatal(err)
	}
	attacker := fw.NewUE(ue.OAIUE, 501)
	attacker.Pace = func() { fw.Clock().Advance(500 * time.Microsecond) }

	attacks := []struct {
		name string
		run  func() (ue.AttackResult, error)
	}{
		{"BTS DoS", func() (ue.AttackResult, error) { return attacker.RunBTSDoS(fw.GNB, 8) }},
		{"Blind DoS", func() (ue.AttackResult, error) { return attacker.RunBlindDoS(fw.GNB, vres.GUTI.TMSI, 6) }},
		{"Uplink ID Extraction", func() (ue.AttackResult, error) { return attacker.RunUplinkIDExtraction(fw.GNB) }},
		{"Downlink ID Extraction", func() (ue.AttackResult, error) { return attacker.RunDownlinkIDExtraction(fw.GNB) }},
		{"Null Cipher & Integrity", func() (ue.AttackResult, error) { return attacker.RunNullCipher(fw.GNB) }},
	}

	for _, atk := range attacks {
		fmt.Printf("=== %s ===\n", atk.name)
		res, err := atk.run()
		if err != nil {
			fmt.Printf("  attack error: %v\n", err)
		}
		// Drain cases for this attack.
		cases := drain(fw, 800*time.Millisecond)
		// Inactivity release of the attacker's leftover contexts, so the
		// next attack's context windows start clean.
		for _, id := range res.UEIDs {
			fw.GNB.ReleaseUE(id)
			fw.AMF.ReleaseUE(id)
		}
		fw.Clock().Advance(2 * time.Second)
		// A benign session flushes the sliding window past the cleanup
		// records, and the final drain discards their cases.
		if res, err := victim.RunSession(fw.GNB); err == nil && !victim.Profile.Deregisters {
			fw.GNB.ReleaseUE(res.UEID)
			fw.AMF.ReleaseUE(res.UEID)
		}
		fw.Clock().Advance(2 * time.Second)
		drain(fw, 400*time.Millisecond) // discard cleanup-window cases
		if len(cases) == 0 {
			fmt.Println("  NOT DETECTED (no case raised)")
			continue
		}
		detected, explained := 0, 0
		var classes []string
		for _, c := range cases {
			detected++
			if c.Analysis != nil && c.Analysis.Verdict == llm.VerdictAnomalous {
				explained++
				classes = appendUnique(classes, c.Analysis.TopClass().String())
			}
		}
		fmt.Printf("  detected: %d case(s); LLM-confirmed: %d\n", detected, explained)
		if len(classes) > 0 {
			fmt.Printf("  LLM classification: %v\n", classes)
		}
		if explained == 0 {
			// Per the paper's Table 3, the chatgpt-4o analyst misses the
			// uplink identity-extraction pattern; MobiWatch still raised
			// the alarm, and the disagreement routes to human review.
			fmt.Printf("  analyst disagreed -> %d case(s) in the human-review queue\n", detected)
		}
		fmt.Println()
	}

	ws := fw.WatchStats()
	fmt.Printf("pipeline totals: %d records, %d windows scored, %d alerts\n",
		ws.RecordsSeen.Load(), ws.WindowsScored.Load(), ws.AlertsRaised.Load())
}

func drain(fw *core.Framework, quiet time.Duration) []*analyzer.Case {
	var out []*analyzer.Case
	for {
		select {
		case c := <-fw.Cases():
			out = append(out, c)
		case <-time.After(quiet):
			return out
		}
	}
}

func appendUnique(xs []string, x string) []string {
	for _, v := range xs {
		if v == x {
			return xs
		}
	}
	return append(xs, x)
}
