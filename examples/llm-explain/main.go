// Expert referencing across all five model personalities: each hosted
// model is asked to analyze the same five attack traces plus a benign
// one, reproducing the paper's Table 3 experiment interactively, then one
// full analysis is printed in detail.
//
// Run with: go run ./examples/llm-explain
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/6g-xsec/xsec/internal/dataset"
	"github.com/6g-xsec/xsec/internal/llm"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/ue"
)

func main() {
	labeled, err := dataset.GenerateMixed(dataset.MixedConfig{
		BenignConfig:       dataset.BenignConfig{Seed: 21},
		InstancesPerAttack: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := llm.NewServer()
	addr, shutdown, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer shutdown()
	fmt.Printf("expert service hosting %d model personalities at http://%s\n\n", len(llm.DefaultModels), addr)

	kinds := []ue.AttackKind{
		ue.AttackBTSDoS, ue.AttackBlindDoS, ue.AttackUplinkIDExtraction,
		ue.AttackDownlinkIDExtraction, ue.AttackNullCipher,
	}

	fmt.Printf("%-28s", "Attack / Trace")
	for _, m := range llm.DefaultModels {
		fmt.Printf("  %-16s", m.Name)
	}
	fmt.Println()

	expected := map[ue.AttackKind]llm.AttackClass{
		ue.AttackBTSDoS:               llm.ClassBTSDoS,
		ue.AttackBlindDoS:             llm.ClassBlindDoS,
		ue.AttackUplinkIDExtraction:   llm.ClassUplinkIDExtraction,
		ue.AttackDownlinkIDExtraction: llm.ClassDownlinkIDExtraction,
		ue.AttackNullCipher:           llm.ClassNullCipher,
	}
	for _, kind := range kinds {
		window := windowOf(labeled, kind)
		fmt.Printf("%-28s", kind)
		for _, m := range llm.DefaultModels {
			client := llm.NewClient("http://"+addr, m.Name)
			analysis, err := client.AnalyzeWindow(context.Background(), window)
			mark := "?"
			if err == nil {
				switch {
				case analysis.Verdict == llm.VerdictAnomalous && analysis.TopClass() == expected[kind]:
					mark = "OK" // correct classification
				case analysis.Verdict == llm.VerdictAnomalous:
					mark = "misclass"
				default:
					mark = "missed"
				}
			}
			fmt.Printf("  %-16s", mark)
		}
		fmt.Println()
	}

	// One analysis in full, the Figure 5 view.
	fmt.Println("\n=== full analysis: chatgpt-4o on BTS DoS ===")
	client := llm.NewClient("http://"+addr, "chatgpt-4o")
	analysis, err := client.AnalyzeWindow(context.Background(), windowOf(labeled, ue.AttackBTSDoS))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(analysis.Raw)
}

func windowOf(l *dataset.Labeled, kind ue.AttackKind) mobiflow.Trace {
	var w mobiflow.Trace
	for i, r := range l.Trace {
		if l.AttackOf[i] == int(kind) {
			w = append(w, r)
		}
	}
	return w
}
