// Closed-loop control (§5, Automated Network Responses): the framework
// detects a Blind DoS via MobiWatch, the LLM Analyzer classifies it and
// recommends blocking the replayed TMSI, the control is applied over
// E2SM-XRC automatically — and the attacker's next wave is rejected at
// the RAN.
//
// Run with: go run ./examples/closed-loop
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/6g-xsec/xsec/internal/core"
	"github.com/6g-xsec/xsec/internal/e2sm"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/ue"
)

func main() {
	fw, err := core.New(core.Options{
		Seed:         31,
		ReportPeriod: 10 * time.Millisecond,
		TrainOpts:    mobiwatch.TrainOptions{Epochs: 20, Seed: 31},
		AutoRespond:  true, // the closed loop
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fw.Close()

	fmt.Println("training and deploying xApps with AutoRespond enabled...")
	benign, err := fw.CollectBenign(50)
	if err != nil {
		log.Fatal(err)
	}
	if err := fw.Train(benign); err != nil {
		log.Fatal(err)
	}
	if err := fw.DeployXApps(); err != nil {
		log.Fatal(err)
	}

	// Consume cases in the background, printing applied controls.
	go func() {
		for c := range fw.Cases() {
			if c.Control != nil {
				fmt.Printf("  closed loop applied: %s (%s)\n", c.Control.Action, c.Control.Reason)
			}
		}
	}()

	victim := fw.NewUE(ue.GalaxyA53, 700)
	vres, err := victim.RunSession(fw.GNB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim registered with TMSI %s\n", vres.GUTI.TMSI)

	attacker := fw.NewUE(ue.OAIUE, 701)
	attacker.Pace = func() { fw.Clock().Advance(500 * time.Microsecond) }

	fmt.Println("\nwave 1: Blind DoS replaying the victim's TMSI")
	before, err := attacker.RunBlindDoS(fw.GNB, vres.GUTI.TMSI, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  wave 1 consumed %d RAN contexts\n", len(before.UEIDs))

	// Wait for the pipeline to detect, classify, and block.
	deadline := time.Now().Add(5 * time.Second)
	for fw.ControlsSent() == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if fw.ControlsSent() == 0 {
		log.Fatal("closed loop did not fire")
	}
	fmt.Printf("\n%d control action(s) applied via E2SM-%s\n", fw.ControlsSent(), "XRC")
	time.Sleep(200 * time.Millisecond)

	fmt.Println("\nwave 2: the attacker tries again")
	g := fw.GNB
	activeBefore := g.ActiveUEs()
	if _, err := attacker.RunBlindDoS(fw.GNB, vres.GUTI.TMSI, 6); err != nil {
		fmt.Printf("  wave 2 aborted: %v\n", err)
	}
	leaked := g.ActiveUEs() - activeBefore
	fmt.Printf("  wave 2 leaked %d contexts (blocked TMSIs are rejected at setup)\n", leaked)
	if leaked <= 0 {
		fmt.Println("\nSUCCESS: the replayed identity is blocked; the attack no longer consumes resources")
	}
	_ = e2sm.ControlBlockTMSI
}
