// Quickstart: the minimal 6G-XSec loop, fully offline.
//
// 1. Generate benign cellular traffic on the simulated testbed.
// 2. Train the MobiWatch models (autoencoder + LSTM) on it.
// 3. Generate an attack dataset and detect the anomalies.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/6g-xsec/xsec/internal/dataset"
	"github.com/6g-xsec/xsec/internal/feature"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
)

func main() {
	// 1. Benign traffic: 60 sessions across the commodity-device fleet.
	benign, err := dataset.GenerateBenign(dataset.BenignConfig{Sessions: 60, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benign dataset: %d telemetry records, %d UE sessions\n",
		len(benign), len(benign.UEs()))

	// 2. Train on benign traffic only — no attack samples needed.
	models, err := mobiwatch.Train(benign, mobiwatch.TrainOptions{Epochs: 20, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: window N=%d, AE threshold %.5f, LSTM threshold %.5f\n",
		models.Window, models.AEThreshold, models.LSTMThreshold)

	// 3. A dataset with all five attacks mixed into benign traffic.
	labeled, err := dataset.GenerateMixed(dataset.MixedConfig{
		BenignConfig:       dataset.BenignConfig{Seed: 3},
		InstancesPerAttack: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attack dataset: %d records, %d labeled malicious\n",
		len(labeled.Trace), labeled.MaliciousCount())

	// Score every sliding window with the autoencoder.
	scores := models.ScoreTraceAE(labeled.Trace)
	truth := feature.WindowLabels(labeled.Malicious, models.Window)
	var tp, fp, tn, fn int
	for i, s := range scores {
		switch {
		case s.Anomalous && truth[i]:
			tp++
		case s.Anomalous && !truth[i]:
			fp++
		case !s.Anomalous && truth[i]:
			fn++
		default:
			tn++
		}
	}
	fmt.Printf("\nautoencoder detection over %d windows:\n", len(scores))
	fmt.Printf("  true positives  %4d\n  false positives %4d\n  true negatives  %4d\n  false negatives %4d\n",
		tp, fp, tn, fn)
	fmt.Printf("  recall %.1f%%  precision %.1f%%\n",
		100*float64(tp)/float64(tp+fn), 100*float64(tp)/float64(tp+fp))

	// Show the single most anomalous window.
	best := 0
	for i, s := range scores {
		if s.Score > scores[best].Score {
			best = i
		}
	}
	fmt.Printf("\nmost anomalous window (score %.5f):\n", scores[best].Score)
	for j := best; j < best+models.Window; j++ {
		fmt.Printf("  %s\n", labeled.Trace[j])
	}
}
