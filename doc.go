// Package xsec is the root of the 6G-XSec reproduction: an explainable
// edge-security framework for OpenRAN architectures (Wen et al.,
// HotNets '24), implemented from scratch in pure-stdlib Go.
//
// The framework couples MOBIFLOW security telemetry extracted from a
// simulated 5G data plane, unsupervised deep-learning anomaly detection
// (the MobiWatch xApp), and LLM-based expert referencing (the Analyzer
// xApp) on a near-real-time RAN Intelligent Controller.
//
// Entry points:
//
//   - internal/core: the assembled framework (embedding API)
//   - cmd/xsec-testbed: the live end-to-end deployment
//   - cmd/xsec-bench: regenerate the paper's tables and figures
//   - examples/: runnable scenarios
//
// The benchmarks in bench_test.go regenerate each evaluation artifact;
// see DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured comparison.
package xsec
