module github.com/6g-xsec/xsec

go 1.22
