package e2sm

import (
	"reflect"
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/asn1lite"
	"github.com/6g-xsec/xsec/internal/mobiflow"
)

func TestEventTriggerRoundTrip(t *testing.T) {
	in := &EventTrigger{Period: 250 * time.Millisecond}
	var out EventTrigger
	if err := asn1lite.Unmarshal(asn1lite.Marshal(in), &out); err != nil {
		t.Fatal(err)
	}
	if out.Period != in.Period {
		t.Errorf("Period = %v", out.Period)
	}
}

func TestActionDefinitionRoundTrip(t *testing.T) {
	in := &ActionDefinition{AllUEs: false, UEIDs: []uint64{3, 9}}
	var out ActionDefinition
	if err := asn1lite.Unmarshal(asn1lite.Marshal(in), &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*in, out) {
		t.Errorf("got %+v", out)
	}
}

func TestIndicationHeaderRoundTrip(t *testing.T) {
	in := &IndicationHeader{NodeID: "gnb-1", CollectionStart: time.Unix(5, 9).UTC(), BatchSeq: 12}
	var out IndicationHeader
	if err := asn1lite.Unmarshal(asn1lite.Marshal(in), &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*in, out) {
		t.Errorf("got %+v, want %+v", out, *in)
	}
}

func TestIndicationMessageRoundTrip(t *testing.T) {
	in := &IndicationMessage{Records: mobiflow.Trace{
		{Seq: 1, Msg: "RRCSetupRequest", Timestamp: time.Unix(0, 0).UTC()},
		{Seq: 2, Msg: "RRCSetup", Timestamp: time.Unix(0, 1).UTC()},
	}}
	out, err := DecodeIndicationMessage(EncodeIndicationMessage(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in.Records, out.Records) {
		t.Error("records mismatch")
	}
}

func TestDecodeIndicationMessageError(t *testing.T) {
	if _, err := DecodeIndicationMessage([]byte{0x01, 0xFF}); err == nil {
		t.Error("garbage accepted")
	}
}

func TestFunctionDefinitions(t *testing.T) {
	for _, fd := range []*FunctionDefinition{MobiFlowFunctionDefinition(), XRCFunctionDefinition()} {
		var out FunctionDefinition
		if err := asn1lite.Unmarshal(asn1lite.Marshal(fd), &out); err != nil {
			t.Fatal(err)
		}
		if out.Name != fd.Name || out.Description != fd.Description {
			t.Errorf("got %+v", out)
		}
	}
	if MobiFlowRANFunctionID == XRCRANFunctionID {
		t.Error("RAN function IDs collide")
	}
}

func TestControlRequestRoundTrip(t *testing.T) {
	in := &ControlRequest{Action: ControlBlockTMSI, UEID: 4, TMSI: 0xBEEF, Reason: "blind dos suspected"}
	var out ControlRequest
	if err := asn1lite.Unmarshal(asn1lite.Marshal(in), &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*in, out) {
		t.Errorf("got %+v", out)
	}
}

func TestControlActionStrings(t *testing.T) {
	if ControlReleaseUE.String() != "release-ue" ||
		ControlBlockTMSI.String() != "block-tmsi" ||
		ControlRequireStrongSecurity.String() != "require-strong-security" ||
		ControlUnblockTMSI.String() != "unblock-tmsi" ||
		ControlRelaxSecurity.String() != "relax-security" {
		t.Error("control action names wrong")
	}
	if ControlAction(9).String() != "ControlAction(9)" {
		t.Error("unknown action name wrong")
	}
}

func TestControlActionInverse(t *testing.T) {
	cases := []struct {
		action     ControlAction
		inverse    ControlAction
		reversible bool
	}{
		{ControlBlockTMSI, ControlUnblockTMSI, true},
		{ControlRequireStrongSecurity, ControlRelaxSecurity, true},
		{ControlReleaseUE, 0, false},
		{ControlUnblockTMSI, 0, false},
		{ControlRelaxSecurity, 0, false},
	}
	for _, c := range cases {
		inv, ok := c.action.Inverse()
		if ok != c.reversible || (ok && inv != c.inverse) {
			t.Errorf("%s.Inverse() = %v, %v", c.action, inv, ok)
		}
	}
}
