// Package e2sm defines the E2 Service Models the framework uses on top of
// E2AP:
//
//   - E2SM-MOBIFLOW: the security-telemetry report service model (§3.1 of
//     the paper), an extension of the O-RAN E2SM-KPM reference model. It
//     defines the event trigger (periodic report), the action definition
//     (telemetry field selection), and the indication header/message that
//     carry batches of MOBIFLOW records as (key, value) data.
//
//   - E2SM-XRC: a minimal RAN-control service model in the spirit of
//     O-RAN E2SM-RC, giving the closed-loop example the control actions
//     (§5 of the paper: "The O-RAN E2SM's RAN Control specification
//     defines a set of actions that could be incorporated into the AI
//     pipeline").
package e2sm

import (
	"fmt"
	"time"

	"github.com/6g-xsec/xsec/internal/asn1lite"
	"github.com/6g-xsec/xsec/internal/cell"
	"github.com/6g-xsec/xsec/internal/mobiflow"
)

// Identifiers registered for the two service models.
const (
	// MobiFlowRANFunctionID is the RAN function ID the gNB advertises
	// for the MOBIFLOW report service.
	MobiFlowRANFunctionID uint16 = 2
	// MobiFlowOID extends the E2SM-KPM OID arc.
	MobiFlowOID = "1.3.6.1.4.1.53148.1.2.2.100"
	// XRCRANFunctionID is the RAN function ID for the control service.
	XRCRANFunctionID uint16 = 3
	// XRCOID is the control service model OID.
	XRCOID = "1.3.6.1.4.1.53148.1.2.3.101"
)

// EventTrigger is the MOBIFLOW subscription event trigger: report
// accumulated telemetry every Period (the E2SM-KPM §3.1 "report ...
// per time interval" style).
type EventTrigger struct {
	Period time.Duration
}

// MarshalTLV implements asn1lite.Marshaler.
func (t *EventTrigger) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(1, uint64(t.Period/time.Millisecond))
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (t *EventTrigger) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
		if d.Tag() == 1 {
			v, err := d.Uint()
			if err != nil {
				return err
			}
			t.Period = time.Duration(v) * time.Millisecond
		}
	}
	return d.Err()
}

// ActionDefinition selects which UE contexts a report action covers.
type ActionDefinition struct {
	// AllUEs reports every UE context when true.
	AllUEs bool
	// UEIDs restricts reporting when AllUEs is false.
	UEIDs []uint64
}

// MarshalTLV implements asn1lite.Marshaler.
func (a *ActionDefinition) MarshalTLV(e *asn1lite.Encoder) {
	e.PutBool(1, a.AllUEs)
	for _, id := range a.UEIDs {
		e.PutUint(2, id)
	}
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (a *ActionDefinition) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			v, err := d.Bool()
			if err != nil {
				return err
			}
			a.AllUEs = v
		case 2:
			v, err := d.Uint()
			if err != nil {
				return err
			}
			a.UEIDs = append(a.UEIDs, v)
		}
	}
	return d.Err()
}

// IndicationHeader identifies a MOBIFLOW report batch.
type IndicationHeader struct {
	NodeID          string
	CollectionStart time.Time
	BatchSeq        uint64
	// UEID scopes the batch to one UE context when non-zero (real UE IDs
	// start at 1). The gNB agent emits UE-scoped batches so the RIC can
	// shard dispatch by UE; 0 means a mixed or unscoped batch, which
	// routes through shard 0 (the pre-batching wire form decodes as 0,
	// keeping old captures readable).
	UEID uint64
}

// MarshalTLV implements asn1lite.Marshaler.
func (h *IndicationHeader) MarshalTLV(e *asn1lite.Encoder) {
	e.PutString(1, h.NodeID)
	e.PutInt(2, h.CollectionStart.UnixNano())
	e.PutUint(3, h.BatchSeq)
	if h.UEID != 0 {
		e.PutUint(4, h.UEID)
	}
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (h *IndicationHeader) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
		var err error
		switch d.Tag() {
		case 1:
			h.NodeID, err = d.String()
		case 2:
			var ns int64
			ns, err = d.Int()
			if err == nil {
				h.CollectionStart = time.Unix(0, ns).UTC()
			}
		case 3:
			h.BatchSeq, err = d.Uint()
		case 4:
			h.UEID, err = d.Uint()
		}
		if err != nil {
			return err
		}
	}
	return d.Err()
}

// PeekIndicationUE extracts the UEID from an encoded IndicationHeader
// without materializing the struct (or allocating): the UE-sharded
// dispatcher calls it once per indication to pick a queue. It returns 0
// (the unscoped shard) for headers without a UEID or malformed input.
func PeekIndicationUE(hdr []byte) uint64 {
	var d asn1lite.Decoder
	d.Reset(hdr)
	for d.Next() {
		if d.Tag() == 4 {
			ue, err := d.Uint()
			if err != nil {
				return 0
			}
			return ue
		}
	}
	return 0
}

// IndicationMessage carries one batch of telemetry records.
type IndicationMessage struct {
	Records mobiflow.Trace
}

// EncodeIndicationMessage serializes the batch.
func EncodeIndicationMessage(m *IndicationMessage) []byte {
	return mobiflow.EncodeTrace(m.Records)
}

// DecodeIndicationMessage parses a batch.
func DecodeIndicationMessage(data []byte) (*IndicationMessage, error) {
	tr, err := mobiflow.DecodeTrace(data)
	if err != nil {
		return nil, fmt.Errorf("e2sm: decoding indication message: %w", err)
	}
	return &IndicationMessage{Records: tr}, nil
}

// FunctionDefinition describes a service model in the E2 Setup exchange.
type FunctionDefinition struct {
	Name        string
	Description string
}

// MarshalTLV implements asn1lite.Marshaler.
func (f *FunctionDefinition) MarshalTLV(e *asn1lite.Encoder) {
	e.PutString(1, f.Name)
	e.PutString(2, f.Description)
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (f *FunctionDefinition) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
		var err error
		switch d.Tag() {
		case 1:
			f.Name, err = d.String()
		case 2:
			f.Description, err = d.String()
		}
		if err != nil {
			return err
		}
	}
	return d.Err()
}

// MobiFlowFunctionDefinition is the definition the gNB advertises.
func MobiFlowFunctionDefinition() *FunctionDefinition {
	return &FunctionDefinition{
		Name:        "E2SM-MOBIFLOW",
		Description: "fine-grained security telemetry report service (KPM extension)",
	}
}

// XRCFunctionDefinition is the control service definition.
func XRCFunctionDefinition() *FunctionDefinition {
	return &FunctionDefinition{
		Name:        "E2SM-XRC",
		Description: "RAN control actions for closed-loop security response",
	}
}

// ControlAction enumerates the closed-loop control primitives.
type ControlAction uint8

// Control actions.
const (
	// ControlReleaseUE releases a UE's RRC connection.
	ControlReleaseUE ControlAction = iota
	// ControlBlockTMSI denies setup requests presenting a TMSI.
	ControlBlockTMSI
	// ControlRequireStrongSecurity refuses null-algorithm security modes.
	ControlRequireStrongSecurity
	// ControlUnblockTMSI lifts a ControlBlockTMSI deny entry — the TTL
	// rollback of the mitigation engine.
	ControlUnblockTMSI
	// ControlRelaxSecurity reverts ControlRequireStrongSecurity, again
	// accepting whatever algorithms the core negotiates.
	ControlRelaxSecurity
)

// String returns the action name.
func (a ControlAction) String() string {
	switch a {
	case ControlReleaseUE:
		return "release-ue"
	case ControlBlockTMSI:
		return "block-tmsi"
	case ControlRequireStrongSecurity:
		return "require-strong-security"
	case ControlUnblockTMSI:
		return "unblock-tmsi"
	case ControlRelaxSecurity:
		return "relax-security"
	}
	return fmt.Sprintf("ControlAction(%d)", uint8(a))
}

// Inverse returns the rollback action undoing a, and whether a is
// reversible. Only reversible actions carry TTLs in the mitigation
// engine; releasing a UE cannot be undone by the RAN.
func (a ControlAction) Inverse() (ControlAction, bool) {
	switch a {
	case ControlBlockTMSI:
		return ControlUnblockTMSI, true
	case ControlRequireStrongSecurity:
		return ControlRelaxSecurity, true
	}
	return 0, false
}

// ControlRequest is the E2SM-XRC control payload.
type ControlRequest struct {
	Action ControlAction
	UEID   uint64
	TMSI   cell.TMSI
	Reason string
}

// MarshalTLV implements asn1lite.Marshaler.
func (c *ControlRequest) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(1, uint64(c.Action))
	e.PutUint(2, c.UEID)
	e.PutUint(3, uint64(c.TMSI))
	e.PutString(4, c.Reason)
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (c *ControlRequest) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
		var err error
		switch d.Tag() {
		case 1:
			var v uint64
			v, err = d.Uint()
			c.Action = ControlAction(v)
		case 2:
			c.UEID, err = d.Uint()
		case 3:
			var v uint64
			v, err = d.Uint()
			c.TMSI = cell.TMSI(v)
		case 4:
			c.Reason, err = d.String()
		}
		if err != nil {
			return err
		}
	}
	return d.Err()
}
