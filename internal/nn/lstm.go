package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// LSTM is a single-layer Long Short-Term Memory network with a linear
// projection head. MobiWatch trains it on benign windows to predict the
// next telemetry entry, x̂_{i+N} = f_LSTM(x_i ... x_{i+N-1}); the
// prediction MSE against the actual x_{i+N} is the anomaly score (§3.2).
type LSTM struct {
	inDim, hidDim, outDim int

	// Gate parameters, stacked i|f|g|o along the first axis:
	// wx is (4H)×D row-major, wh is (4H)×H, b is 4H.
	wx, wh, b *Param
	// Projection head: wy is Dout×H, by is Dout.
	wy, by *Param

	params []*Param

	// caches for the most recent Sequence forward pass
	steps []lstmStep
	yOut  []float64
}

type lstmStep struct {
	x          []float64
	i, f, g, o []float64 // post-activation gates
	c, h       []float64 // cell and hidden state after this step
	tanhC      []float64
}

// NewLSTM builds an LSTM with the given input, hidden, and output widths.
func NewLSTM(seed int64, inDim, hidDim, outDim int) *LSTM {
	if inDim <= 0 || hidDim <= 0 || outDim <= 0 {
		panic("nn: NewLSTM dimensions must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	l := &LSTM{
		inDim: inDim, hidDim: hidDim, outDim: outDim,
		wx:   &Param{Name: "lstm.wx", W: make([]float64, 4*hidDim*inDim), G: make([]float64, 4*hidDim*inDim)},
		wh:   &Param{Name: "lstm.wh", W: make([]float64, 4*hidDim*hidDim), G: make([]float64, 4*hidDim*hidDim)},
		b:    &Param{Name: "lstm.b", W: make([]float64, 4*hidDim), G: make([]float64, 4*hidDim)},
		wy:   &Param{Name: "lstm.wy", W: make([]float64, outDim*hidDim), G: make([]float64, outDim*hidDim)},
		by:   &Param{Name: "lstm.by", W: make([]float64, outDim), G: make([]float64, outDim)},
		yOut: make([]float64, outDim),
	}
	xavierInit(rng, l.wx.W, inDim, hidDim)
	xavierInit(rng, l.wh.W, hidDim, hidDim)
	xavierInit(rng, l.wy.W, hidDim, outDim)
	// Forget-gate bias of 1 is the standard trick for gradient flow.
	for h := 0; h < hidDim; h++ {
		l.b.W[hidDim+h] = 1
	}
	l.params = []*Param{l.wx, l.wh, l.b, l.wy, l.by}
	return l
}

// Params implements Model.
func (l *LSTM) Params() []*Param { return l.params }

// Dims returns (input, hidden, output) widths.
func (l *LSTM) Dims() (in, hidden, out int) { return l.inDim, l.hidDim, l.outDim }

// Forward runs the network over a window of input vectors and returns the
// projection of the final hidden state — the next-step prediction. The
// returned slice is owned by the network.
func (l *LSTM) Forward(window [][]float64) []float64 {
	if len(window) == 0 {
		panic("nn: LSTM.Forward on empty window")
	}
	H := l.hidDim
	l.steps = l.steps[:0]
	hPrev := make([]float64, H)
	cPrev := make([]float64, H)

	for _, x := range window {
		if len(x) != l.inDim {
			panic(fmt.Sprintf("nn: LSTM input dim %d, want %d", len(x), l.inDim))
		}
		st := lstmStep{
			x: x,
			i: make([]float64, H), f: make([]float64, H),
			g: make([]float64, H), o: make([]float64, H),
			c: make([]float64, H), h: make([]float64, H),
			tanhC: make([]float64, H),
		}
		for h := 0; h < H; h++ {
			// Pre-activations for the four gates of unit h.
			var pre [4]float64
			for gate := 0; gate < 4; gate++ {
				row := (gate*H + h)
				sum := l.b.W[row]
				wxRow := l.wx.W[row*l.inDim : (row+1)*l.inDim]
				for k, xk := range x {
					sum += wxRow[k] * xk
				}
				whRow := l.wh.W[row*H : (row+1)*H]
				for k, hk := range hPrev {
					sum += whRow[k] * hk
				}
				pre[gate] = sum
			}
			st.i[h] = sigmoid(pre[0])
			st.f[h] = sigmoid(pre[1])
			st.g[h] = math.Tanh(pre[2])
			st.o[h] = sigmoid(pre[3])
			st.c[h] = st.f[h]*cPrev[h] + st.i[h]*st.g[h]
			st.tanhC[h] = math.Tanh(st.c[h])
			st.h[h] = st.o[h] * st.tanhC[h]
		}
		l.steps = append(l.steps, st)
		hPrev, cPrev = st.h, st.c
	}

	for o := 0; o < l.outDim; o++ {
		sum := l.by.W[o]
		row := l.wy.W[o*H : (o+1)*H]
		for k, hk := range hPrev {
			sum += row[k] * hk
		}
		l.yOut[o] = sum
	}
	return l.yOut
}

// Backward performs truncated BPTT over the cached window, accumulating
// parameter gradients from dLoss/dOutput.
func (l *LSTM) Backward(gradOut []float64) {
	if len(gradOut) != l.outDim {
		panic(fmt.Sprintf("nn: LSTM.Backward grad dim %d, want %d", len(gradOut), l.outDim))
	}
	if len(l.steps) == 0 {
		panic("nn: LSTM.Backward before Forward")
	}
	H := l.hidDim
	T := len(l.steps)

	// Projection head.
	last := l.steps[T-1]
	dh := make([]float64, H)
	for o := 0; o < l.outDim; o++ {
		g := gradOut[o]
		l.by.G[o] += g
		row := l.wy.W[o*H : (o+1)*H]
		grow := l.wy.G[o*H : (o+1)*H]
		for k := 0; k < H; k++ {
			grow[k] += g * last.h[k]
			dh[k] += g * row[k]
		}
	}

	dc := make([]float64, H)
	da := make([]float64, 4*H) // pre-activation gate grads for one step
	for t := T - 1; t >= 0; t-- {
		st := l.steps[t]
		var cPrev, hPrev []float64
		if t > 0 {
			cPrev, hPrev = l.steps[t-1].c, l.steps[t-1].h
		} else {
			cPrev, hPrev = make([]float64, H), make([]float64, H)
		}
		for h := 0; h < H; h++ {
			do := dh[h] * st.tanhC[h]
			dct := dc[h] + dh[h]*st.o[h]*(1-st.tanhC[h]*st.tanhC[h])
			di := dct * st.g[h]
			df := dct * cPrev[h]
			dg := dct * st.i[h]
			dc[h] = dct * st.f[h] // becomes dc_{t-1}

			da[0*H+h] = di * st.i[h] * (1 - st.i[h])
			da[1*H+h] = df * st.f[h] * (1 - st.f[h])
			da[2*H+h] = dg * (1 - st.g[h]*st.g[h])
			da[3*H+h] = do * st.o[h] * (1 - st.o[h])
		}
		// Accumulate parameter grads and propagate dh_{t-1}.
		dhPrev := make([]float64, H)
		for row := 0; row < 4*H; row++ {
			a := da[row]
			if a == 0 {
				continue
			}
			l.b.G[row] += a
			wxRow := l.wx.G[row*l.inDim : (row+1)*l.inDim]
			for k, xk := range st.x {
				wxRow[k] += a * xk
			}
			whW := l.wh.W[row*H : (row+1)*H]
			whG := l.wh.G[row*H : (row+1)*H]
			for k := 0; k < H; k++ {
				whG[k] += a * hPrev[k]
				dhPrev[k] += a * whW[k]
			}
		}
		dh = dhPrev
	}
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Score returns the next-step prediction MSE for a window and the actual
// next entry — the LSTM anomaly score used by MobiWatch.
func (l *LSTM) Score(window [][]float64, next []float64) float64 {
	return MSE(l.Forward(window), next, nil)
}

// TrainNextStep fits the LSTM on (window, next) pairs and returns
// per-epoch mean loss.
func (l *LSTM) TrainNextStep(windows [][][]float64, nexts [][]float64, cfg TrainConfig) ([]float64, error) {
	cfg.defaults()
	if len(windows) == 0 || len(windows) != len(nexts) {
		return nil, fmt.Errorf("nn: TrainNextStep needs matching non-empty windows/nexts, got %d/%d", len(windows), len(nexts))
	}
	opt := NewAdam(cfg.LR)
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(windows))
	for i := range order {
		order[i] = i
	}
	grad := make([]float64, l.outDim)
	losses := make([]float64, 0, cfg.Epochs)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		ZeroGrads(l)
		inBatch := 0
		for _, idx := range order {
			out := l.Forward(windows[idx])
			epochLoss += MSE(out, nexts[idx], grad)
			l.Backward(grad)
			inBatch++
			if inBatch == cfg.BatchSize {
				scaleGrads(l.params, 1/float64(inBatch))
				clipGrads(l.params, 5)
				opt.Step(l.params)
				ZeroGrads(l)
				inBatch = 0
			}
		}
		if inBatch > 0 {
			scaleGrads(l.params, 1/float64(inBatch))
			clipGrads(l.params, 5)
			opt.Step(l.params)
			ZeroGrads(l)
		}
		mean := epochLoss / float64(len(windows))
		losses = append(losses, mean)
		if cfg.Verbose != nil {
			cfg.Verbose(epoch, mean)
		}
	}
	return losses, nil
}
