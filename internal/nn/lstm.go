package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// LSTM is a single-layer Long Short-Term Memory network with a linear
// projection head. MobiWatch trains it on benign windows to predict the
// next telemetry entry, x̂_{i+N} = f_LSTM(x_i ... x_{i+N-1}); the
// prediction MSE against the actual x_{i+N} is the anomaly score (§3.2).
//
// A trained LSTM is read-only: score it from N goroutines by giving
// each its own LSTMScratch (see NewScratch / ScoreWith).
type LSTM struct {
	inDim, hidDim, outDim int

	// Gate parameters, stacked i|f|g|o along the first axis:
	// wx is (4H)×D row-major, wh is (4H)×H, b is 4H.
	wx, wh, b *Param
	// Projection head: wy is Dout×H, by is Dout.
	wy, by *Param

	params []*Param

	def *LSTMScratch // default workspace backing the convenience API
	pg  [][]float64  // Param.G slices aligned with params, built lazily
}

type lstmStep struct {
	x          []float64
	i, f, g, o []float64 // post-activation gates
	c, h       []float64 // cell and hidden state after this step
	tanhC      []float64
}

// LSTMScratch is a per-goroutine forward/backward workspace for one
// LSTM. Step buffers grow to the longest window seen and are then
// reused, so steady-state scoring performs no heap allocation. A
// scratch must not be used from two goroutines at once.
type LSTMScratch struct {
	steps []lstmStep // grown on demand, buffers reused across calls
	n     int        // timesteps cached by the last ForwardWith
	yOut  []float64

	zero []float64 // all-zero initial h/c state; never written

	// backward buffers
	dh, dhAlt, dc, da []float64
}

// NewLSTM builds an LSTM with the given input, hidden, and output widths.
func NewLSTM(seed int64, inDim, hidDim, outDim int) *LSTM {
	if inDim <= 0 || hidDim <= 0 || outDim <= 0 {
		panic("nn: NewLSTM dimensions must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	l := &LSTM{
		inDim: inDim, hidDim: hidDim, outDim: outDim,
		wx: &Param{Name: "lstm.wx", W: make([]float64, 4*hidDim*inDim), G: make([]float64, 4*hidDim*inDim)},
		wh: &Param{Name: "lstm.wh", W: make([]float64, 4*hidDim*hidDim), G: make([]float64, 4*hidDim*hidDim)},
		b:  &Param{Name: "lstm.b", W: make([]float64, 4*hidDim), G: make([]float64, 4*hidDim)},
		wy: &Param{Name: "lstm.wy", W: make([]float64, outDim*hidDim), G: make([]float64, outDim*hidDim)},
		by: &Param{Name: "lstm.by", W: make([]float64, outDim), G: make([]float64, outDim)},
	}
	xavierInit(rng, l.wx.W, inDim, hidDim)
	xavierInit(rng, l.wh.W, hidDim, hidDim)
	xavierInit(rng, l.wy.W, hidDim, outDim)
	// Forget-gate bias of 1 is the standard trick for gradient flow.
	for h := 0; h < hidDim; h++ {
		l.b.W[hidDim+h] = 1
	}
	l.params = []*Param{l.wx, l.wh, l.b, l.wy, l.by}
	return l
}

// Params implements Model.
func (l *LSTM) Params() []*Param { return l.params }

// Dims returns (input, hidden, output) widths.
func (l *LSTM) Dims() (in, hidden, out int) { return l.inDim, l.hidDim, l.outDim }

// NewScratch allocates a workspace sized for this LSTM. One model
// instance can be driven from N goroutines given N scratches.
func (l *LSTM) NewScratch() *LSTMScratch {
	H := l.hidDim
	return &LSTMScratch{
		yOut:  make([]float64, l.outDim),
		zero:  make([]float64, H),
		dh:    make([]float64, H),
		dhAlt: make([]float64, H),
		dc:    make([]float64, H),
		da:    make([]float64, 4*H),
	}
}

func (l *LSTM) scratch() *LSTMScratch {
	if l.def == nil {
		l.def = l.NewScratch()
	}
	return l.def
}

// grads returns the shared Param.G slices aligned with Params().
func (l *LSTM) grads() [][]float64 {
	if l.pg == nil {
		l.pg = paramGrads(l.params)
	}
	return l.pg
}

// step returns the t-th step cache, growing the workspace if the window
// is longer than any seen before.
func (s *LSTMScratch) step(t, H int) *lstmStep {
	for len(s.steps) <= t {
		s.steps = append(s.steps, lstmStep{
			i: make([]float64, H), f: make([]float64, H),
			g: make([]float64, H), o: make([]float64, H),
			c: make([]float64, H), h: make([]float64, H),
			tanhC: make([]float64, H),
		})
	}
	return &s.steps[t]
}

// ForwardWith runs the network over a window of input vectors through
// the given workspace and returns the projection of the final hidden
// state — the next-step prediction. The returned slice is owned by s
// and overwritten by its next call. After warm-up the pass performs no
// heap allocation.
func (l *LSTM) ForwardWith(s *LSTMScratch, window [][]float64) []float64 {
	if len(window) == 0 {
		panic("nn: LSTM.Forward on empty window")
	}
	H := l.hidDim
	s.n = len(window)
	hPrev, cPrev := s.zero, s.zero

	for t, x := range window {
		if len(x) != l.inDim {
			panic(fmt.Sprintf("nn: LSTM input dim %d, want %d", len(x), l.inDim))
		}
		st := s.step(t, H)
		st.x = x
		for h := 0; h < H; h++ {
			// Pre-activations for the four gates of unit h.
			var pre [4]float64
			for gate := 0; gate < 4; gate++ {
				row := (gate*H + h)
				sum := l.b.W[row]
				wxRow := l.wx.W[row*l.inDim : (row+1)*l.inDim]
				for k, xk := range x {
					sum += wxRow[k] * xk
				}
				whRow := l.wh.W[row*H : (row+1)*H]
				for k, hk := range hPrev {
					sum += whRow[k] * hk
				}
				pre[gate] = sum
			}
			st.i[h] = sigmoid(pre[0])
			st.f[h] = sigmoid(pre[1])
			st.g[h] = math.Tanh(pre[2])
			st.o[h] = sigmoid(pre[3])
			st.c[h] = st.f[h]*cPrev[h] + st.i[h]*st.g[h]
			st.tanhC[h] = math.Tanh(st.c[h])
			st.h[h] = st.o[h] * st.tanhC[h]
		}
		hPrev, cPrev = st.h, st.c
	}

	for o := 0; o < l.outDim; o++ {
		sum := l.by.W[o]
		row := l.wy.W[o*H : (o+1)*H]
		for k, hk := range hPrev {
			sum += row[k] * hk
		}
		s.yOut[o] = sum
	}
	return s.yOut
}

// Forward runs the network through the default scratch (single-threaded
// convenience API). The returned slice is overwritten by the next call.
func (l *LSTM) Forward(window [][]float64) []float64 {
	return l.ForwardWith(l.scratch(), window)
}

// backwardInto performs truncated BPTT over the window cached in s,
// accumulating parameter gradients from dLoss/dOutput into grads
// (aligned with Params(): wx, wh, b, wy, by).
func (l *LSTM) backwardInto(s *LSTMScratch, grads [][]float64, gradOut []float64) {
	if len(gradOut) != l.outDim {
		panic(fmt.Sprintf("nn: LSTM.Backward grad dim %d, want %d", len(gradOut), l.outDim))
	}
	if s.n == 0 {
		panic("nn: LSTM.Backward before Forward")
	}
	H := l.hidDim
	T := s.n
	wxG, whG, bG, wyG, byG := grads[0], grads[1], grads[2], grads[3], grads[4]

	// Projection head.
	last := &s.steps[T-1]
	dh := s.dh
	for k := range dh {
		dh[k] = 0
	}
	for o := 0; o < l.outDim; o++ {
		g := gradOut[o]
		byG[o] += g
		row := l.wy.W[o*H : (o+1)*H]
		grow := wyG[o*H : (o+1)*H]
		for k := 0; k < H; k++ {
			grow[k] += g * last.h[k]
			dh[k] += g * row[k]
		}
	}

	dc := s.dc
	for k := range dc {
		dc[k] = 0
	}
	da := s.da // pre-activation gate grads for one step
	dhPrev := s.dhAlt
	for t := T - 1; t >= 0; t-- {
		st := &s.steps[t]
		cPrev, hPrev := s.zero, s.zero
		if t > 0 {
			cPrev, hPrev = s.steps[t-1].c, s.steps[t-1].h
		}
		for h := 0; h < H; h++ {
			do := dh[h] * st.tanhC[h]
			dct := dc[h] + dh[h]*st.o[h]*(1-st.tanhC[h]*st.tanhC[h])
			di := dct * st.g[h]
			df := dct * cPrev[h]
			dg := dct * st.i[h]
			dc[h] = dct * st.f[h] // becomes dc_{t-1}

			da[0*H+h] = di * st.i[h] * (1 - st.i[h])
			da[1*H+h] = df * st.f[h] * (1 - st.f[h])
			da[2*H+h] = dg * (1 - st.g[h]*st.g[h])
			da[3*H+h] = do * st.o[h] * (1 - st.o[h])
		}
		// Accumulate parameter grads and propagate dh_{t-1}.
		for k := range dhPrev {
			dhPrev[k] = 0
		}
		for row := 0; row < 4*H; row++ {
			a := da[row]
			if a == 0 {
				continue
			}
			bG[row] += a
			wxRow := wxG[row*l.inDim : (row+1)*l.inDim]
			for k, xk := range st.x {
				wxRow[k] += a * xk
			}
			whW := l.wh.W[row*H : (row+1)*H]
			whRow := whG[row*H : (row+1)*H]
			for k := 0; k < H; k++ {
				whRow[k] += a * hPrev[k]
				dhPrev[k] += a * whW[k]
			}
		}
		dh, dhPrev = dhPrev, dh
	}
}

// BackwardWith performs truncated BPTT through workspace s, accumulating
// into the shared Params. Concurrent BackwardWith calls on the same
// model race on Param.G; use per-goroutine gradient buffers (as
// TrainNextStep does) when training in parallel.
func (l *LSTM) BackwardWith(s *LSTMScratch, gradOut []float64) {
	l.backwardInto(s, l.grads(), gradOut)
}

// Backward performs truncated BPTT over the window cached by the last
// Forward call, accumulating parameter gradients from dLoss/dOutput.
func (l *LSTM) Backward(gradOut []float64) {
	l.backwardInto(l.scratch(), l.grads(), gradOut)
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// ScoreWith returns the next-step prediction MSE computed through the
// given workspace. After warm-up it performs no heap allocation.
func (l *LSTM) ScoreWith(s *LSTMScratch, window [][]float64, next []float64) float64 {
	return MSE(l.ForwardWith(s, window), next, nil)
}

// Score returns the next-step prediction MSE for a window and the actual
// next entry — the LSTM anomaly score used by MobiWatch.
func (l *LSTM) Score(window [][]float64, next []float64) float64 {
	return MSE(l.Forward(window), next, nil)
}

// lstmShard is one gradient shard's private training state.
type lstmShard struct {
	g       shardGrads
	scratch *LSTMScratch
	grad    []float64 // dLoss/dOutput buffer
	loss    float64
}

// TrainNextStep fits the LSTM on (window, next) pairs and returns
// per-epoch mean loss. Mini-batches are fanned out over
// TrainConfig.Workers goroutines; results are deterministic for a fixed
// Seed regardless of worker count.
func (l *LSTM) TrainNextStep(windows [][][]float64, nexts [][]float64, cfg TrainConfig) ([]float64, error) {
	cfg.defaults()
	if len(windows) == 0 || len(windows) != len(nexts) {
		return nil, fmt.Errorf("nn: TrainNextStep needs matching non-empty windows/nexts, got %d/%d", len(windows), len(nexts))
	}
	opt := NewAdam(cfg.LR)
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(windows))
	for i := range order {
		order[i] = i
	}
	losses := make([]float64, 0, cfg.Epochs)

	workers := cfg.workers()
	nShards := maxGradShards
	if cfg.BatchSize < nShards {
		nShards = cfg.BatchSize
	}
	shards := make([]lstmShard, nShards)
	views := make([]shardGrads, nShards)
	for i := range shards {
		shards[i] = lstmShard{
			g:       newShardGrads(l.params),
			scratch: l.NewScratch(),
			grad:    make([]float64, l.outDim),
		}
		views[i] = shards[i].g
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		ZeroGrads(l)
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			ns := nShards
			if len(batch) < ns {
				ns = len(batch)
			}
			runShards(ns, workers, func(s int) {
				sh := &shards[s]
				sh.loss = 0
				for pos := s; pos < len(batch); pos += ns {
					idx := batch[pos]
					out := l.ForwardWith(sh.scratch, windows[idx])
					sh.loss += MSE(out, nexts[idx], sh.grad)
					l.backwardInto(sh.scratch, sh.g, sh.grad)
				}
			})
			for s := 0; s < ns; s++ {
				epochLoss += shards[s].loss
			}
			reduceGrads(l.params, views[:ns])
			scaleGrads(l.params, 1/float64(len(batch)))
			clipGrads(l.params, 5)
			opt.Step(l.params)
			ZeroGrads(l)
		}
		mean := epochLoss / float64(len(windows))
		losses = append(losses, mean)
		if cfg.Verbose != nil {
			cfg.Verbose(epoch, mean)
		}
	}
	return losses, nil
}
