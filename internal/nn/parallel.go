package nn

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file holds the data-parallel training plumbing shared by
// Autoencoder.Train and LSTM.TrainNextStep.
//
// Determinism contract: a mini-batch is split into a FIXED number of
// gradient shards (maxGradShards, a constant — never GOMAXPROCS). Each
// shard owns private gradient accumulators and a private loss sum, and
// processes a fixed strided subset of the batch in a fixed order.
// Workers merely execute shards; scheduling cannot change what is
// summed where. Shards are then reduced into the shared Param.G in
// shard order. The result is bit-for-bit identical for a fixed
// TrainConfig.Seed on any machine and any worker count.

// maxGradShards is the mini-batch fan-out width. 8 covers the default
// BatchSize of 16 with two samples per shard while keeping per-shard
// gradient memory (maxGradShards × model size) modest.
const maxGradShards = 8

// paramGrads returns the G slices of params, aligned index-for-index.
func paramGrads(params []*Param) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = p.G
	}
	return out
}

// shardGrads is one shard's private gradient accumulators, shaped like
// a model's params.
type shardGrads [][]float64

func newShardGrads(params []*Param) shardGrads {
	g := make(shardGrads, len(params))
	for i, p := range params {
		g[i] = make([]float64, len(p.G))
	}
	return g
}

// reduceGrads adds every shard's gradients into the shared Param.G in
// shard order — the deterministic reduction — and zeroes the shard
// buffers so they are ready for the next batch.
func reduceGrads(params []*Param, shards []shardGrads) {
	for _, sg := range shards {
		for pi, p := range params {
			src := sg[pi]
			dst := p.G
			for i := range dst {
				dst[i] += src[i]
				src[i] = 0
			}
		}
	}
}

// workers resolves the configured worker count: 0 means GOMAXPROCS.
func (c *TrainConfig) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runShards executes fn(shard) for every shard in [0, n) on up to
// workers goroutines. fn must touch only shard-private state. With one
// worker — or one schedulable CPU, where extra goroutines only add
// scheduler churn — the shards run inline on the calling goroutine, in
// order. The two paths sum identically (see the determinism contract
// above), so the fallback is invisible except in the profile.
func runShards(n, workers int, fn func(shard int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || runtime.GOMAXPROCS(0) == 1 {
		for s := 0; s < n; s++ {
			fn(s)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= n {
					return
				}
				fn(s)
			}
		}()
	}
	wg.Wait()
}
