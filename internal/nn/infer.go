package nn

import (
	"fmt"
	"strings"
)

// This file is the public surface of the fast inference engine. Trained
// models stay float64 — training, checkpoints, and the reference scalar
// scorers are untouched — and Quantize* converts a trained model into an
// immutable inference engine at reduced precision:
//
//	Float32: weights and arithmetic in float32 (the default fast path).
//	Int8:    weights quantized per output row to int8 with a float32
//	         scale; accumulation stays float32, so only the weight
//	         representation loses precision.
//
// Engines score whole batches of windows: one tiled matrix-matrix
// product per layer instead of one GEMV per window, with the activation
// and residual-error passes fused so per-window scores come out without
// materializing reconstructions. All scratch lives in a reusable arena,
// so steady-state scoring performs no heap allocation.

// Precision selects the weight representation of an inference engine.
// The zero value is Float64, the reference scalar path.
type Precision int

const (
	// Float64 is the trained-model reference path (no engine).
	Float64 Precision = iota
	// Float32 stores weights and computes in single precision.
	Float32
	// Int8 stores weights as int8 with per-output-row float32 scales
	// and accumulates in float32.
	Int8
)

// String returns the flag-style name of the precision.
func (p Precision) String() string {
	switch p {
	case Float64:
		return "f64"
	case Float32:
		return "f32"
	case Int8:
		return "i8"
	}
	return fmt.Sprintf("Precision(%d)", int(p))
}

// ParsePrecision parses a flag-style precision name. It accepts the
// String forms plus common aliases ("float32", "int8", ...). The empty
// string parses to Float32, the default fast path.
func ParsePrecision(s string) (Precision, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "":
		return Float32, nil
	case "f64", "float64", "fp64":
		return Float64, nil
	case "f32", "float32", "fp32":
		return Float32, nil
	case "i8", "int8":
		return Int8, nil
	}
	return Float64, fmt.Errorf("nn: unknown precision %q (want f64, f32, or i8)", s)
}

// Inference is implemented by the batched inference engines.
type Inference interface {
	// Precision reports the engine's weight representation.
	Precision() Precision
}

// ensureF32 grows a float32 arena buffer to at least n elements,
// preserving nothing. Steady state (fixed batch size) never grows.
func ensureF32(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

// AEInference is an immutable reduced-precision autoencoder engine.
// Build one with Autoencoder.QuantizeF32 / QuantizeI8; score batches of
// flattened windows with ScoreBatch. Safe for concurrent use with
// per-goroutine scratches.
type AEInference struct {
	planes   []plane
	inputDim int
	maxPad   int // widest plane output, for scratch sizing
	prec     Precision
}

// AEBatchScratch is the per-goroutine arena for AEInference.ScoreBatch.
// Activations ping-pong between two buffers sized for the widest layer.
type AEBatchScratch struct {
	a, b []float32
}

func newAEInference(a *Autoencoder, prec Precision) *AEInference {
	e := &AEInference{inputDim: a.inputDim, prec: prec}
	for _, l := range a.net.Layers() {
		p := newPlane(l.w.W, l.b.W, l.In, l.Out, l.Act, prec)
		if p.outPad > e.maxPad {
			e.maxPad = p.outPad
		}
		e.planes = append(e.planes, p)
	}
	return e
}

// QuantizeF32 converts the trained autoencoder into a float32 batched
// inference engine. The autoencoder is unchanged and further training
// does not affect the returned engine.
func (a *Autoencoder) QuantizeF32() *AEInference { return newAEInference(a, Float32) }

// QuantizeI8 converts the trained autoencoder into an int8-weight
// inference engine (float32 accumulation, per-output-row scales).
func (a *Autoencoder) QuantizeI8() *AEInference { return newAEInference(a, Int8) }

// Precision implements Inference.
func (e *AEInference) Precision() Precision { return e.prec }

// InputDim returns the flattened window dimension the engine expects.
func (e *AEInference) InputDim() int { return e.inputDim }

// NewBatchScratch allocates an empty arena; ScoreBatch grows it to the
// largest batch seen and then reuses it.
func (e *AEInference) NewBatchScratch() *AEBatchScratch { return &AEBatchScratch{} }

// ScoreBatch scores n flattened windows held row-major in xb (row
// stride = InputDim) and writes one score per window into scores[:n].
//
// With recordDim > 0 the score is the worst per-record reconstruction
// MSE (segments of recordDim features), matching MobiWatch's window
// score; with recordDim <= 0 it is the whole-window MSE, matching
// Autoencoder.ScoreWith. The reconstruction is never materialized for
// the caller: the final layer's error pass is fused with the scoring
// reduction. After warm-up the call performs no heap allocation.
func (e *AEInference) ScoreBatch(s *AEBatchScratch, xb []float32, n, recordDim int, scores []float32) {
	if n == 0 {
		return
	}
	if len(xb) < n*e.inputDim {
		panic(fmt.Sprintf("nn: AEInference.ScoreBatch batch %d×%d needs %d floats, got %d",
			n, e.inputDim, n*e.inputDim, len(xb)))
	}
	if len(scores) < n {
		panic(fmt.Sprintf("nn: AEInference.ScoreBatch scores len %d < n %d", len(scores), n))
	}
	s.a = ensureF32(s.a, n*e.maxPad)
	s.b = ensureF32(s.b, n*e.maxPad)

	cur, curStride := xb, e.inputDim
	out := s.a
	for i := range e.planes {
		p := &e.planes[i]
		p.fillBias(out, n)
		p.gemm(out, p.outPad, cur, curStride, n)
		p.activate(out, n)
		cur, curStride = out, p.outPad
		if i%2 == 0 {
			out = s.b
		} else {
			out = s.a
		}
	}

	// Fused residual-error pass: cur holds the reconstruction (logical
	// width inputDim, row stride curStride); compare against the input.
	seg := recordDim
	if seg <= 0 {
		seg = e.inputDim
	}
	for m := 0; m < n; m++ {
		recon := cur[m*curStride:]
		in := xb[m*e.inputDim:]
		var worst float32
		for off := 0; off+seg <= e.inputDim; off += seg {
			var sum float32
			for i := off; i < off+seg; i++ {
				d := recon[i] - in[i]
				sum += d * d
			}
			if mse := sum / float32(seg); mse > worst {
				worst = mse
			}
		}
		scores[m] = worst
	}
}

// LSTMInference is an immutable reduced-precision LSTM engine. Build one
// with LSTM.QuantizeF32 / QuantizeI8; score batches of windows with
// ScoreBatch. Safe for concurrent use with per-goroutine scratches.
type LSTMInference struct {
	inDim, hidDim, outDim int

	wx   plane // (4H)×D gate input weights, bias = gate bias
	wh   plane // (4H)×H recurrent weights, bias zero
	head plane // Dout×H projection head
	prec Precision
}

// LSTMBatchScratch is the per-goroutine arena for LSTMInference.ScoreBatch.
type LSTMBatchScratch struct {
	gates []float32 // n × padCols(4H) gate pre-activations
	h, c  []float32 // n × H running state
	pred  []float32 // n × padCols(Dout) head output
}

func newLSTMInference(l *LSTM, prec Precision) *LSTMInference {
	H := l.hidDim
	return &LSTMInference{
		inDim: l.inDim, hidDim: H, outDim: l.outDim,
		wx:   newPlane(l.wx.W, l.b.W, l.inDim, 4*H, ActIdentity, prec),
		wh:   newPlane(l.wh.W, make([]float64, 4*H), H, 4*H, ActIdentity, prec),
		head: newPlane(l.wy.W, l.by.W, H, l.outDim, ActIdentity, prec),
		prec: prec,
	}
}

// QuantizeF32 converts the trained LSTM into a float32 batched inference
// engine. The LSTM is unchanged and further training does not affect the
// returned engine.
func (l *LSTM) QuantizeF32() *LSTMInference { return newLSTMInference(l, Float32) }

// QuantizeI8 converts the trained LSTM into an int8-weight inference
// engine (float32 accumulation, per-output-row scales).
func (l *LSTM) QuantizeI8() *LSTMInference { return newLSTMInference(l, Int8) }

// Precision implements Inference.
func (e *LSTMInference) Precision() Precision { return e.prec }

// Dims returns (input, hidden, output) widths.
func (e *LSTMInference) Dims() (in, hidden, out int) { return e.inDim, e.hidDim, e.outDim }

// NewBatchScratch allocates an empty arena; ScoreBatch grows it to the
// largest batch seen and then reuses it.
func (e *LSTMInference) NewBatchScratch() *LSTMBatchScratch { return &LSTMBatchScratch{} }

// ScoreBatch scores n windows of T timesteps each. xb holds the windows
// row-major, each row a flattened window of T·inDim floats (timestep
// t of window m at xb[m·T·inDim + t·inDim:]). targets holds the n
// actual next vectors (row stride outDim). One next-step prediction MSE
// per window is written into scores[:n], matching LSTM.ScoreWith. After
// warm-up the call performs no heap allocation.
//
// Per timestep the whole batch advances through two GEMMs — gate
// pre-activations from the inputs (bias pre-filled) accumulated with the
// recurrent term — followed by one fused elementwise gate/state pass.
func (e *LSTMInference) ScoreBatch(s *LSTMBatchScratch, xb []float32, targets []float32, n, T int, scores []float32) {
	if n == 0 {
		return
	}
	if T <= 0 {
		panic("nn: LSTMInference.ScoreBatch on empty window")
	}
	H := e.hidDim
	rowLen := T * e.inDim
	if len(xb) < n*rowLen {
		panic(fmt.Sprintf("nn: LSTMInference.ScoreBatch batch %d×%d needs %d floats, got %d",
			n, rowLen, n*rowLen, len(xb)))
	}
	if len(targets) < n*e.outDim {
		panic(fmt.Sprintf("nn: LSTMInference.ScoreBatch targets len %d < %d", len(targets), n*e.outDim))
	}
	if len(scores) < n {
		panic(fmt.Sprintf("nn: LSTMInference.ScoreBatch scores len %d < n %d", len(scores), n))
	}
	gp := e.wx.outPad
	hp := e.head.outPad
	s.gates = ensureF32(s.gates, n*gp)
	s.h = ensureF32(s.h, n*H)
	s.c = ensureF32(s.c, n*H)
	s.pred = ensureF32(s.pred, n*hp)
	for i := range s.h {
		s.h[i] = 0
	}
	for i := range s.c {
		s.c[i] = 0
	}

	for t := 0; t < T; t++ {
		e.wx.fillBias(s.gates, n)
		e.wx.gemm(s.gates, gp, xb[t*e.inDim:], rowLen, n)
		e.wh.gemm(s.gates, gp, s.h, H, n)
		// Fused gate pass: gates are stacked i|f|g|o along the row, so
		// the input and forget sigmoids share one vector call, then the
		// state update reuses hRow as scratch for tanh(c) before the
		// output gate scales it.
		for m := 0; m < n; m++ {
			g := s.gates[m*gp : m*gp+4*H]
			cRow := s.c[m*H : (m+1)*H]
			hRow := s.h[m*H : (m+1)*H]
			vsigmoidF32(g[:2*H])   // i|f
			vtanhF32(g[2*H : 3*H]) // g
			vsigmoidF32(g[3*H:])   // o
			for j := 0; j < H; j++ {
				cRow[j] = g[H+j]*cRow[j] + g[j]*g[2*H+j]
			}
			copy(hRow, cRow)
			vtanhF32(hRow)
			for j := 0; j < H; j++ {
				hRow[j] *= g[3*H+j]
			}
		}
	}

	e.head.fillBias(s.pred, n)
	e.head.gemm(s.pred, hp, s.h, H, n)

	// Fused residual-error pass: prediction MSE against the targets.
	for m := 0; m < n; m++ {
		pred := s.pred[m*hp:]
		tgt := targets[m*e.outDim:]
		var sum float32
		for o := 0; o < e.outDim; o++ {
			d := pred[o] - tgt[o]
			sum += d * d
		}
		scores[m] = sum / float32(e.outDim)
	}
}
