//go:build amd64

#include "textflag.h"

// func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	MOVL $0, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func gemmBlockAVX2(y *float32, yStride int, x *float32, xStride int,
//                    wt *float32, wtStride int, n, k int)
//
// Y[m][0:32] += sum_k X[m][k] * Wt[k][0:32] for m in [0, n).
// y points at the 32-wide output block, wt at the 32-wide column block.
// Strides are in elements (float32s). Rows are processed two at a time
// (8 YMM accumulators) so every weight load feeds two FMAs.
TEXT ·gemmBlockAVX2(SB), NOSPLIT, $0-64
	MOVQ y+0(FP), DI
	MOVQ yStride+8(FP), R8
	MOVQ x+16(FP), SI
	MOVQ xStride+24(FP), R9
	MOVQ wt+32(FP), DX
	MOVQ wtStride+40(FP), R10
	MOVQ n+48(FP), AX
	MOVQ k+56(FP), CX

	SHLQ $2, R8  // strides in bytes
	SHLQ $2, R9
	SHLQ $2, R10

m2loop:
	CMPQ AX, $2
	JL   mtail

	// Accumulators: two rows of 32 floats, pre-filled by the caller.
	VMOVUPS (DI), Y0
	VMOVUPS 32(DI), Y1
	VMOVUPS 64(DI), Y2
	VMOVUPS 96(DI), Y3
	MOVQ    DI, R13
	ADDQ    R8, R13
	VMOVUPS (R13), Y4
	VMOVUPS 32(R13), Y5
	VMOVUPS 64(R13), Y6
	VMOVUPS 96(R13), Y7

	MOVQ SI, R11 // x row m
	MOVQ SI, R12 // x row m+1
	ADDQ R9, R12
	MOVQ DX, BX  // wt walker
	MOVQ CX, R15 // k counter

kloop2:
	VBROADCASTSS (R11), Y8
	VBROADCASTSS (R12), Y9
	VMOVUPS      (BX), Y10
	VMOVUPS      32(BX), Y11
	VMOVUPS      64(BX), Y12
	VMOVUPS      96(BX), Y13
	VFMADD231PS  Y10, Y8, Y0
	VFMADD231PS  Y10, Y9, Y4
	VFMADD231PS  Y11, Y8, Y1
	VFMADD231PS  Y11, Y9, Y5
	VFMADD231PS  Y12, Y8, Y2
	VFMADD231PS  Y12, Y9, Y6
	VFMADD231PS  Y13, Y8, Y3
	VFMADD231PS  Y13, Y9, Y7
	ADDQ         $4, R11
	ADDQ         $4, R12
	ADDQ         R10, BX
	DECQ         R15
	JNZ          kloop2

	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VMOVUPS Y2, 64(DI)
	VMOVUPS Y3, 96(DI)
	VMOVUPS Y4, (R13)
	VMOVUPS Y5, 32(R13)
	VMOVUPS Y6, 64(R13)
	VMOVUPS Y7, 96(R13)

	LEAQ (DI)(R8*2), DI
	LEAQ (SI)(R9*2), SI
	SUBQ $2, AX
	JMP  m2loop

mtail:
	TESTQ AX, AX
	JZ    done

	VMOVUPS (DI), Y0
	VMOVUPS 32(DI), Y1
	VMOVUPS 64(DI), Y2
	VMOVUPS 96(DI), Y3
	MOVQ    SI, R11
	MOVQ    DX, BX
	MOVQ    CX, R15

kloop1:
	VBROADCASTSS (R11), Y8
	VMOVUPS      (BX), Y10
	VMOVUPS      32(BX), Y11
	VMOVUPS      64(BX), Y12
	VMOVUPS      96(BX), Y13
	VFMADD231PS  Y10, Y8, Y0
	VFMADD231PS  Y11, Y8, Y1
	VFMADD231PS  Y12, Y8, Y2
	VFMADD231PS  Y13, Y8, Y3
	ADDQ         $4, R11
	ADDQ         R10, BX
	DECQ         R15
	JNZ          kloop1

	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VMOVUPS Y2, 64(DI)
	VMOVUPS Y3, 96(DI)

done:
	VZEROUPPER
	RET

// func gemmBlockI8AVX2(y *float32, yStride int, x *float32, xStride int,
//                      w8 *int8, wtStride int, scale *float32, n, k int)
//
// Y[m][0:32] += scale[0:32] * sum_k X[m][k] * float32(W8[k][0:32]).
// Integer weights are sign-extended and converted per load; the
// accumulators start at zero so the per-column scale distributes over
// the sum and applies once at the end.
TEXT ·gemmBlockI8AVX2(SB), NOSPLIT, $0-72
	MOVQ y+0(FP), DI
	MOVQ yStride+8(FP), R8
	MOVQ x+16(FP), SI
	MOVQ xStride+24(FP), R9
	MOVQ w8+32(FP), DX
	MOVQ wtStride+40(FP), R10
	MOVQ scale+48(FP), R12
	MOVQ n+56(FP), AX
	MOVQ k+64(FP), CX

	SHLQ $2, R8
	SHLQ $2, R9
	// wtStride is in elements = bytes for int8.

i8mloop:
	TESTQ AX, AX
	JZ    i8done

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

	MOVQ SI, R11
	MOVQ DX, BX
	MOVQ CX, R15

i8kloop:
	VBROADCASTSS (R11), Y8
	VPMOVSXBD    (BX), Y10
	VPMOVSXBD    8(BX), Y11
	VPMOVSXBD    16(BX), Y12
	VPMOVSXBD    24(BX), Y13
	VCVTDQ2PS    Y10, Y10
	VCVTDQ2PS    Y11, Y11
	VCVTDQ2PS    Y12, Y12
	VCVTDQ2PS    Y13, Y13
	VFMADD231PS  Y10, Y8, Y0
	VFMADD231PS  Y11, Y8, Y1
	VFMADD231PS  Y12, Y8, Y2
	VFMADD231PS  Y13, Y8, Y3
	ADDQ         $4, R11
	ADDQ         R10, BX
	DECQ         R15
	JNZ          i8kloop

	// dst += acc * scale
	VMOVUPS     (R12), Y10
	VMOVUPS     32(R12), Y11
	VMOVUPS     64(R12), Y12
	VMOVUPS     96(R12), Y13
	VMOVUPS     (DI), Y4
	VMOVUPS     32(DI), Y5
	VMOVUPS     64(DI), Y6
	VMOVUPS     96(DI), Y7
	VFMADD231PS Y10, Y0, Y4
	VFMADD231PS Y11, Y1, Y5
	VFMADD231PS Y12, Y2, Y6
	VFMADD231PS Y13, Y3, Y7
	VMOVUPS     Y4, (DI)
	VMOVUPS     Y5, 32(DI)
	VMOVUPS     Y6, 64(DI)
	VMOVUPS     Y7, 96(DI)

	ADDQ R8, DI
	ADDQ R9, SI
	DECQ AX
	JMP  i8mloop

i8done:
	VZEROUPPER
	RET

// Vectorized activations: 8-lane sigmoid/tanh built on the same Cephes
// exp used by the scalar versions in mathf32.go. Inputs are clamped to
// the scalar saturation ranges first, which also bounds the exponent k
// of the range reduction to |k| <= 27, so the 2**k scaling is a single
// exponent-bit multiply (no two-step edge handling needed).

DATA vactLog2e<>+0(SB)/4, $0x3FB8AA3B // log2(e)
GLOBL vactLog2e<>(SB), RODATA|NOPTR, $4
DATA vactLn2Hi<>+0(SB)/4, $0x3F318000 // ln2 high split
GLOBL vactLn2Hi<>(SB), RODATA|NOPTR, $4
DATA vactLn2Lo<>+0(SB)/4, $0xB95E8083 // ln2 low split
GLOBL vactLn2Lo<>(SB), RODATA|NOPTR, $4
DATA vactP0<>+0(SB)/4, $0x39506967 // 1.9875691500e-4
GLOBL vactP0<>(SB), RODATA|NOPTR, $4
DATA vactP1<>+0(SB)/4, $0x3AB743CE // 1.3981999507e-3
GLOBL vactP1<>(SB), RODATA|NOPTR, $4
DATA vactP2<>+0(SB)/4, $0x3C088908 // 8.3334519073e-3
GLOBL vactP2<>(SB), RODATA|NOPTR, $4
DATA vactP3<>+0(SB)/4, $0x3D2AA9C1 // 4.1665795894e-2
GLOBL vactP3<>(SB), RODATA|NOPTR, $4
DATA vactP4<>+0(SB)/4, $0x3E2AAAAA // 1.6666665459e-1
GLOBL vactP4<>(SB), RODATA|NOPTR, $4
DATA vactP5<>+0(SB)/4, $0x3F000000 // 5.0000001201e-1
GLOBL vactP5<>(SB), RODATA|NOPTR, $4
DATA vactOne<>+0(SB)/4, $0x3F800000 // 1.0
GLOBL vactOne<>(SB), RODATA|NOPTR, $4
DATA vactI127<>+0(SB)/4, $0x0000007F // float32 exponent bias
GLOBL vactI127<>(SB), RODATA|NOPTR, $4
DATA vactSigHi<>+0(SB)/4, $0x41900000 // +18 (sigmoid saturation)
GLOBL vactSigHi<>(SB), RODATA|NOPTR, $4
DATA vactSigLo<>+0(SB)/4, $0xC1900000 // -18
GLOBL vactSigLo<>(SB), RODATA|NOPTR, $4
DATA vactTanhHi<>+0(SB)/4, $0x411028F6 // +9.01 (tanh saturation)
GLOBL vactTanhHi<>(SB), RODATA|NOPTR, $4
DATA vactTanhLo<>+0(SB)/4, $0xC11028F6 // -9.01
GLOBL vactTanhLo<>(SB), RODATA|NOPTR, $4

// VACTCONSTS loads the exp constants the VEXP core keeps in registers.
// Y5..Y8 hold the inner polynomial coefficients (p0/p1 broadcast per
// iteration — the register file is full), Y11..Y15 the range reduction.
#define VACTCONSTS \
	VBROADCASTSS vactP5<>(SB), Y5;    \
	VBROADCASTSS vactP4<>(SB), Y6;    \
	VBROADCASTSS vactP3<>(SB), Y7;    \
	VBROADCASTSS vactP2<>(SB), Y8;    \
	VPBROADCASTD vactI127<>(SB), Y11; \
	VBROADCASTSS vactLn2Lo<>(SB), Y12; \
	VBROADCASTSS vactLn2Hi<>(SB), Y13; \
	VBROADCASTSS vactLog2e<>(SB), Y14; \
	VBROADCASTSS vactOne<>(SB), Y15

// VEXP replaces Y0 (8 floats, |x| <= 19 after clamping) with e**Y0,
// clobbering Y1-Y4: kf = round(x*log2e); r = x - kf*ln2 (two-part ln2
// split); exp(r) = 1 + r + r^2*P(r); scale by 2^k through the exponent
// bits. VROUNDPS rounds half-to-even where the scalar rounds half away
// from zero; the two can differ by one ulp of the result at exact halves.
#define VEXP \
	VMULPS       Y14, Y0, Y1;         \
	VROUNDPS     $0, Y1, Y1;          \
	VMOVAPS      Y1, Y2;              \
	VFNMADD213PS Y0, Y13, Y2;         \
	VFNMADD231PS Y12, Y1, Y2;         \
	VBROADCASTSS vactP0<>(SB), Y3;    \
	VBROADCASTSS vactP1<>(SB), Y4;    \
	VFMADD213PS  Y4, Y2, Y3;          \
	VFMADD213PS  Y8, Y2, Y3;          \
	VFMADD213PS  Y7, Y2, Y3;          \
	VFMADD213PS  Y6, Y2, Y3;          \
	VFMADD213PS  Y5, Y2, Y3;          \
	VMULPS       Y2, Y2, Y4;          \
	VFMADD213PS  Y2, Y4, Y3;          \
	VADDPS       Y15, Y3, Y3;         \
	VCVTPS2DQ    Y1, Y1;              \
	VPADDD       Y11, Y1, Y1;         \
	VPSLLD       $23, Y1, Y1;         \
	VMULPS       Y1, Y3, Y0

// func vsigmoidAVX2(v *float32, n int)
//
// v[i] = 1/(1+e**-v[i]) for i in [0, n); n > 0 and a multiple of 8.
TEXT ·vsigmoidAVX2(SB), NOSPLIT, $0-16
	MOVQ v+0(FP), DI
	MOVQ n+8(FP), CX
	VACTCONSTS
	VBROADCASTSS vactSigLo<>(SB), Y9
	VBROADCASTSS vactSigHi<>(SB), Y10

sigloop:
	VMOVUPS (DI), Y0
	VMINPS  Y10, Y0, Y0 // clamp to the scalar saturation range
	VMAXPS  Y9, Y0, Y0
	VXORPS  Y1, Y1, Y1
	VSUBPS  Y0, Y1, Y0  // -x
	VEXP
	VADDPS  Y15, Y0, Y0 // 1 + e**-x
	VDIVPS  Y0, Y15, Y0
	VMOVUPS Y0, (DI)
	ADDQ    $32, DI
	SUBQ    $8, CX
	JNZ     sigloop

	VZEROUPPER
	RET

// func vtanhAVX2(v *float32, n int)
//
// v[i] = tanh(v[i]) via (e**2x - 1)/(e**2x + 1); n > 0, multiple of 8.
TEXT ·vtanhAVX2(SB), NOSPLIT, $0-16
	MOVQ v+0(FP), DI
	MOVQ n+8(FP), CX
	VACTCONSTS
	VBROADCASTSS vactTanhLo<>(SB), Y9
	VBROADCASTSS vactTanhHi<>(SB), Y10

tanhloop:
	VMOVUPS (DI), Y0
	VMINPS  Y10, Y0, Y0
	VMAXPS  Y9, Y0, Y0
	VADDPS  Y0, Y0, Y0 // 2x
	VEXP
	VSUBPS  Y15, Y0, Y2 // e - 1
	VADDPS  Y15, Y0, Y3 // e + 1
	VDIVPS  Y3, Y2, Y0
	VMOVUPS Y0, (DI)
	ADDQ    $32, DI
	SUBQ    $8, CX
	JNZ     tanhloop

	VZEROUPPER
	RET
