package nn

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks for the MobiWatch hot path, at the dimensions the
// xApp actually runs (window 4 × ~40-feature records). The parallel
// variants give each goroutine its own scratch over one shared model —
// the deployment shape of concurrent window scoring.
//
//	go test ./internal/nn -bench 'Score|Train' -benchmem

func benchAE() (*Autoencoder, []float64) {
	ae := NewAutoencoder(AEConfig{InputDim: 160, Hidden: []int{64, 16}, Seed: 1})
	x := make([]float64, 160)
	for i := range x {
		x[i] = float64(i%3) * 0.5
	}
	return ae, x
}

func benchLSTM() (*LSTM, [][]float64, []float64) {
	l := NewLSTM(1, 40, 32, 40)
	window := make([][]float64, 4)
	rng := rand.New(rand.NewSource(2))
	for i := range window {
		window[i] = make([]float64, 40)
		for j := range window[i] {
			window[i][j] = rng.NormFloat64() * 0.2
		}
	}
	next := make([]float64, 40)
	return l, window, next
}

func BenchmarkAEScore(b *testing.B) {
	ae, x := benchAE()
	s := ae.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ae.ScoreWith(s, x)
	}
}

func BenchmarkAEScoreParallel(b *testing.B) {
	ae, x := benchAE()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		s := ae.NewScratch()
		for pb.Next() {
			ae.ScoreWith(s, x)
		}
	})
}

func BenchmarkLSTMScore(b *testing.B) {
	l, window, next := benchLSTM()
	s := l.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.ScoreWith(s, window, next)
	}
}

func BenchmarkLSTMScoreParallel(b *testing.B) {
	l, window, next := benchLSTM()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		s := l.NewScratch()
		for pb.Next() {
			l.ScoreWith(s, window, next)
		}
	})
}

func benchTrainData() [][]float64 {
	rng := rand.New(rand.NewSource(3))
	return syntheticWindows(rng, 256, 160)
}

func BenchmarkAETrain(b *testing.B) {
	data := benchTrainData()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ae := NewAutoencoder(AEConfig{InputDim: 160, Hidden: []int{64, 16}, Seed: 1})
		if _, err := ae.Train(data, TrainConfig{Epochs: 1, Seed: 2, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAETrainParallel measures one data-parallel training epoch at
// the session's GOMAXPROCS.
func BenchmarkAETrainParallel(b *testing.B) {
	data := benchTrainData()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ae := NewAutoencoder(AEConfig{InputDim: 160, Hidden: []int{64, 16}, Seed: 1})
		if _, err := ae.Train(data, TrainConfig{Epochs: 1, Seed: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
