package nn

import (
	"math/rand"
	"testing"
)

func TestAutoencoderSnapshotRoundTrip(t *testing.T) {
	ae := NewAutoencoder(AEConfig{InputDim: 10, Hidden: []int{6, 3}, Seed: 4})
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 10)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := ae.Score(x)

	data, err := ae.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAutoencoder(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Score(x); got != want {
		t.Errorf("loaded score = %g, want %g", got, want)
	}
	if loaded.InputDim() != 10 {
		t.Errorf("InputDim = %d", loaded.InputDim())
	}
}

func TestLSTMSnapshotRoundTrip(t *testing.T) {
	l := NewLSTM(5, 3, 6, 3)
	window := [][]float64{{1, 0, 0}, {0, 1, 0}}
	next := []float64{0, 0, 1}
	want := l.Score(window, next)

	data, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadLSTM(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Score(window, next); got != want {
		t.Errorf("loaded score = %g, want %g", got, want)
	}
	in, hid, out := loaded.Dims()
	if in != 3 || hid != 6 || out != 3 {
		t.Errorf("Dims = %d,%d,%d", in, hid, out)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadAutoencoder([]byte("not json")); err == nil {
		t.Error("garbage autoencoder accepted")
	}
	if _, err := LoadLSTM([]byte("{}")); err == nil {
		t.Error("empty lstm snapshot accepted")
	}
	if _, err := LoadAutoencoder([]byte(`{"kind":"lstm"}`)); err == nil {
		t.Error("wrong kind accepted")
	}
	if _, err := LoadAutoencoder([]byte(`{"kind":"autoencoder","layers":[]}`)); err == nil {
		t.Error("no-layer autoencoder accepted")
	}
	if _, err := LoadAutoencoder([]byte(`{"kind":"autoencoder","layers":[{"in":2,"out":2,"w":[1],"b":[0,0]}]}`)); err == nil {
		t.Error("inconsistent layer shapes accepted")
	}
	if _, err := LoadLSTM([]byte(`{"kind":"lstm","in_dim":2,"hid_dim":2,"out_dim":2,"wx":[1]}`)); err == nil {
		t.Error("inconsistent lstm shapes accepted")
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	ae := NewAutoencoder(AEConfig{InputDim: 4, Hidden: []int{2}, Seed: 1})
	data, err := ae.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the original must not affect a model loaded earlier.
	loaded, err := LoadAutoencoder(data)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 2, 3, 4}
	before := loaded.Score(x)
	for _, p := range ae.Params() {
		for i := range p.W {
			p.W[i] = 99
		}
	}
	if after := loaded.Score(x); after != before {
		t.Error("loaded model aliases original parameters")
	}
}
