package nn

import (
	"math"
	"math/rand"
	"testing"
)

// syntheticWindows builds clusters of "benign" vectors around a few
// prototypes, mimicking one-hot-ish telemetry windows.
func syntheticWindows(rng *rand.Rand, n, dim int) [][]float64 {
	protos := make([][]float64, 3)
	for p := range protos {
		protos[p] = make([]float64, dim)
		for j := 0; j < dim; j += 3 {
			if (j/3+p)%2 == 0 {
				protos[p][j] = 1
			}
		}
	}
	data := make([][]float64, n)
	for i := range data {
		proto := protos[rng.Intn(len(protos))]
		v := make([]float64, dim)
		for j := range v {
			v[j] = proto[j] + rng.NormFloat64()*0.02
		}
		data[i] = v
	}
	return data
}

func TestAutoencoderLearnsBenignManifold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const dim = 24
	train := syntheticWindows(rng, 300, dim)
	test := syntheticWindows(rng, 50, dim)

	ae := NewAutoencoder(AEConfig{InputDim: dim, Hidden: []int{16, 6}, Seed: 1})
	losses, err := ae.Train(train, TrainConfig{Epochs: 60, BatchSize: 16, LR: 5e-3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("loss did not decrease: %g -> %g", losses[0], losses[len(losses)-1])
	}

	// Benign test windows reconstruct well.
	var benignScore float64
	for _, x := range test {
		benignScore += ae.Score(x)
	}
	benignScore /= float64(len(test))

	// An "attack" window far off the manifold scores much worse.
	attack := make([]float64, dim)
	for j := range attack {
		attack[j] = 1 - math.Mod(float64(j), 2) // alternating, unlike any prototype
	}
	attackScore := ae.Score(attack)
	if attackScore < 5*benignScore {
		t.Errorf("attack score %g not well above benign %g", attackScore, benignScore)
	}
}

func TestAutoencoderTrainValidation(t *testing.T) {
	ae := NewAutoencoder(AEConfig{InputDim: 4, Hidden: []int{2}, Seed: 1})
	if _, err := ae.Train(nil, TrainConfig{}); err == nil {
		t.Error("Train with no data succeeded")
	}
	if _, err := ae.Train([][]float64{{1, 2}}, TrainConfig{}); err == nil {
		t.Error("Train with wrong-dim data succeeded")
	}
}

func TestAutoencoderDeterministic(t *testing.T) {
	mk := func() float64 {
		ae := NewAutoencoder(AEConfig{InputDim: 8, Hidden: []int{4}, Seed: 42})
		rng := rand.New(rand.NewSource(5))
		data := syntheticWindows(rng, 40, 8)
		losses, err := ae.Train(data, TrainConfig{Epochs: 5, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return losses[len(losses)-1]
	}
	if a, b := mk(), mk(); a != b {
		t.Errorf("same seeds, different losses: %g vs %g", a, b)
	}
}

func TestLSTMLearnsSequencePattern(t *testing.T) {
	// Deterministic cyclic pattern over 4 one-hot symbols: the LSTM must
	// learn to predict the next symbol; a violating transition scores high.
	const dim = 4
	onehot := func(k int) []float64 {
		v := make([]float64, dim)
		v[k%dim] = 1
		return v
	}
	var windows [][][]float64
	var nexts [][]float64
	for start := 0; start < 40; start++ {
		w := [][]float64{onehot(start), onehot(start + 1), onehot(start + 2)}
		windows = append(windows, w)
		nexts = append(nexts, onehot(start+3))
	}
	l := NewLSTM(11, dim, 8, dim)
	losses, err := l.TrainNextStep(windows, nexts, TrainConfig{Epochs: 120, BatchSize: 8, LR: 1e-2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] > losses[0]/4 {
		t.Errorf("LSTM loss did not drop enough: %g -> %g", losses[0], losses[len(losses)-1])
	}

	good := l.Score([][]float64{onehot(0), onehot(1), onehot(2)}, onehot(3))
	bad := l.Score([][]float64{onehot(0), onehot(1), onehot(2)}, onehot(1)) // out-of-order
	if bad < 3*good {
		t.Errorf("out-of-order score %g not well above in-order %g", bad, good)
	}
}

func TestLSTMTrainValidation(t *testing.T) {
	l := NewLSTM(1, 2, 2, 2)
	if _, err := l.TrainNextStep(nil, nil, TrainConfig{}); err == nil {
		t.Error("TrainNextStep with no data succeeded")
	}
	if _, err := l.TrainNextStep([][][]float64{{{1, 2}}}, nil, TrainConfig{}); err == nil {
		t.Error("TrainNextStep with mismatched lengths succeeded")
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	// Minimize (w-3)^2 with SGD+momentum via a fake param.
	p := &Param{W: []float64{0}, G: []float64{0}}
	opt := NewSGD(0.1, 0.9)
	for i := 0; i < 200; i++ {
		p.G[0] = 2 * (p.W[0] - 3)
		opt.Step([]*Param{p})
	}
	if math.Abs(p.W[0]-3) > 1e-3 {
		t.Errorf("w = %g, want 3", p.W[0])
	}
}

func TestAdamConverges(t *testing.T) {
	p := &Param{W: []float64{-4}, G: []float64{0}}
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		p.G[0] = 2 * (p.W[0] - 3)
		opt.Step([]*Param{p})
	}
	if math.Abs(p.W[0]-3) > 1e-2 {
		t.Errorf("w = %g, want 3", p.W[0])
	}
}

func TestActivationStrings(t *testing.T) {
	if ActReLU.String() != "relu" || ActTanh.String() != "tanh" ||
		ActSigmoid.String() != "sigmoid" || ActIdentity.String() != "identity" {
		t.Error("activation names wrong")
	}
	if Activation(9).String() != "Activation(9)" {
		t.Errorf("got %q", Activation(9).String())
	}
}

func BenchmarkAutoencoderInference(b *testing.B) {
	ae := NewAutoencoder(AEConfig{InputDim: 160, Hidden: []int{64, 16}, Seed: 1})
	x := make([]float64, 160)
	for i := range x {
		x[i] = float64(i%3) * 0.5
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ae.Score(x)
	}
}

func BenchmarkLSTMInference(b *testing.B) {
	l := NewLSTM(1, 40, 32, 40)
	window := make([][]float64, 4)
	for i := range window {
		window[i] = make([]float64, 40)
	}
	next := make([]float64, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Score(window, next)
	}
}
