package nn

import "math"

// Optimizer updates model parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and implicitly consumes the gradients
	// (callers still ZeroGrads before the next accumulation).
	Step(params []*Param)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64

	velocity map[*Param][]float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*Param][]float64)}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		if s.Momentum == 0 {
			for i := range p.W {
				p.W[i] -= s.LR * p.G[i]
			}
			continue
		}
		v, ok := s.velocity[p]
		if !ok {
			v = make([]float64, len(p.W))
			s.velocity[p] = v
		}
		for i := range p.W {
			v[i] = s.Momentum*v[i] - s.LR*p.G[i]
			p.W[i] += v[i]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba, 2015).
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t int
	m map[*Param][]float64
	v map[*Param][]float64
}

// NewAdam returns an Adam optimizer with the standard defaults for any
// zero-valued hyperparameter.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8,
		m: make(map[*Param][]float64), v: make(map[*Param][]float64),
	}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(p.W))
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = make([]float64, len(p.W))
			a.v[p] = v
		}
		for i := range p.W {
			g := p.G[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mh := m[i] / bc1
			vh := v[i] / bc2
			p.W[i] -= a.LR * mh / (math.Sqrt(vh) + a.Epsilon)
		}
	}
}
