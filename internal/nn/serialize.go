package nn

import (
	"encoding/json"
	"fmt"
)

// This file implements JSON model serialization, used by the SMO's
// train-then-deploy workflow: models are trained offline (or by the
// non-RT RIC rApp), snapshotted, stored in the model registry, and loaded
// by the MobiWatch xApp for online inference.

// denseSnapshot is the serialized form of one dense layer.
type denseSnapshot struct {
	In  int        `json:"in"`
	Out int        `json:"out"`
	Act Activation `json:"act"`
	W   []float64  `json:"w"`
	B   []float64  `json:"b"`
}

// aeSnapshot is the serialized form of an Autoencoder.
type aeSnapshot struct {
	Kind     string          `json:"kind"`
	InputDim int             `json:"input_dim"`
	Layers   []denseSnapshot `json:"layers"`
}

// Snapshot serializes the autoencoder (architecture + weights) to JSON.
func (a *Autoencoder) Snapshot() ([]byte, error) {
	snap := aeSnapshot{Kind: "autoencoder", InputDim: a.inputDim}
	for _, l := range a.net.layers {
		snap.Layers = append(snap.Layers, denseSnapshot{
			In: l.In, Out: l.Out, Act: l.Act,
			W: append([]float64(nil), l.w.W...),
			B: append([]float64(nil), l.b.W...),
		})
	}
	return json.Marshal(snap)
}

// LoadAutoencoder reconstructs an autoencoder from Snapshot output.
func LoadAutoencoder(data []byte) (*Autoencoder, error) {
	var snap aeSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("nn: parsing autoencoder snapshot: %w", err)
	}
	if snap.Kind != "autoencoder" {
		return nil, fmt.Errorf("nn: snapshot kind %q, want autoencoder", snap.Kind)
	}
	if len(snap.Layers) == 0 {
		return nil, fmt.Errorf("nn: autoencoder snapshot has no layers")
	}
	m := &MLP{}
	for i, ls := range snap.Layers {
		if len(ls.W) != ls.In*ls.Out || len(ls.B) != ls.Out {
			return nil, fmt.Errorf("nn: layer %d has inconsistent shapes", i)
		}
		d := &Dense{
			In: ls.In, Out: ls.Out, Act: ls.Act,
			w: &Param{Name: fmt.Sprintf("dense%dx%d.w", ls.Out, ls.In), W: append([]float64(nil), ls.W...), G: make([]float64, len(ls.W))},
			b: &Param{Name: fmt.Sprintf("dense%dx%d.b", ls.Out, ls.In), W: append([]float64(nil), ls.B...), G: make([]float64, len(ls.B))},
		}
		m.layers = append(m.layers, d)
		m.params = append(m.params, d.Params()...)
	}
	return &Autoencoder{net: m, inputDim: snap.InputDim}, nil
}

// lstmSnapshot is the serialized form of an LSTM.
type lstmSnapshot struct {
	Kind   string    `json:"kind"`
	InDim  int       `json:"in_dim"`
	HidDim int       `json:"hid_dim"`
	OutDim int       `json:"out_dim"`
	Wx     []float64 `json:"wx"`
	Wh     []float64 `json:"wh"`
	B      []float64 `json:"b"`
	Wy     []float64 `json:"wy"`
	By     []float64 `json:"by"`
}

// Snapshot serializes the LSTM (architecture + weights) to JSON.
func (l *LSTM) Snapshot() ([]byte, error) {
	return json.Marshal(lstmSnapshot{
		Kind: "lstm", InDim: l.inDim, HidDim: l.hidDim, OutDim: l.outDim,
		Wx: append([]float64(nil), l.wx.W...),
		Wh: append([]float64(nil), l.wh.W...),
		B:  append([]float64(nil), l.b.W...),
		Wy: append([]float64(nil), l.wy.W...),
		By: append([]float64(nil), l.by.W...),
	})
}

// LoadLSTM reconstructs an LSTM from Snapshot output.
func LoadLSTM(data []byte) (*LSTM, error) {
	var snap lstmSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("nn: parsing lstm snapshot: %w", err)
	}
	if snap.Kind != "lstm" {
		return nil, fmt.Errorf("nn: snapshot kind %q, want lstm", snap.Kind)
	}
	if snap.InDim <= 0 || snap.HidDim <= 0 || snap.OutDim <= 0 {
		return nil, fmt.Errorf("nn: lstm snapshot has non-positive dims")
	}
	H, D, O := snap.HidDim, snap.InDim, snap.OutDim
	if len(snap.Wx) != 4*H*D || len(snap.Wh) != 4*H*H || len(snap.B) != 4*H ||
		len(snap.Wy) != O*H || len(snap.By) != O {
		return nil, fmt.Errorf("nn: lstm snapshot has inconsistent shapes")
	}
	l := NewLSTM(0, D, H, O)
	copy(l.wx.W, snap.Wx)
	copy(l.wh.W, snap.Wh)
	copy(l.b.W, snap.B)
	copy(l.wy.W, snap.Wy)
	copy(l.by.W, snap.By)
	return l, nil
}
