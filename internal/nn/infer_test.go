package nn

import (
	"math"
	"math/rand"
	"testing"
)

// Divergence bounds for the reduced-precision engines against the
// float64 reference scorers, checked by the tests below on trained
// models. Float32 loses only rounding (~1e-7 relative per operation, a
// few µ across a layer); int8 quantizes each weight to 1 of 255 levels
// per output row, so scores can move by a few percent.
const (
	f32RelBound = 1e-4
	f32AbsBound = 1e-6
	i8RelBound  = 0.08
	i8AbsBound  = 1e-3
)

func scoreDiverged(got float32, want, rel, abs float64) bool {
	d := math.Abs(float64(got) - want)
	return d > abs+rel*math.Abs(want)
}

// forcePortableKernels pins the package to the pure-Go kernels for the
// duration of a test, restoring the runtime-selected ones after.
func forcePortableKernels(t *testing.T) {
	t.Helper()
	f32, i8 := kernelF32, kernelI8
	vs, vt := vsigmoidF32, vtanhF32
	kernelF32, kernelI8 = gemmBlockGo, gemmBlockI8Go
	vsigmoidF32, vtanhF32 = vsigmoidGo, vtanhGo
	t.Cleanup(func() {
		kernelF32, kernelI8 = f32, i8
		vsigmoidF32, vtanhF32 = vs, vt
	})
}

// TestGemmKernelAsmMatchesGo proves the SIMD kernels compute the same
// block product as the portable reference, including odd row counts and
// strided inputs. Skipped when the host selected the portable kernels.
func TestGemmKernelAsmMatchesGo(t *testing.T) {
	if SIMD() == "generic" {
		t.Skip("no SIMD kernel selected on this host")
	}
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{1, 2, 3, 5, 16} {
		for _, k := range []int{1, 7, 40, 161} {
			xStride := k + 3 // strided rows, like a timestep slice of a window
			yStride := laneCols + 8
			x := make([]float32, n*xStride)
			for i := range x {
				x[i] = float32(rng.NormFloat64())
			}
			if k > 2 {
				x[2] = 0 // exercise the portable kernel's zero skip
			}
			wtStride := laneCols
			wf := make([]float32, k*wtStride)
			w8 := make([]int8, k*wtStride)
			scale := make([]float32, laneCols)
			for i := range wf {
				wf[i] = float32(rng.NormFloat64())
				w8[i] = int8(rng.Intn(255) - 127)
			}
			for i := range scale {
				scale[i] = float32(rng.Float64() * 0.02)
			}
			seed := make([]float32, n*yStride)
			for i := range seed {
				seed[i] = float32(rng.NormFloat64())
			}

			run := func(f32 bool, kf func(y []float32, yStride int, x []float32, xStride int, wt []float32, wtStride, n, k int),
				ki func(y []float32, yStride int, x []float32, xStride int, w8 []int8, wtStride int, scale []float32, n, k int)) []float32 {
				y := append([]float32(nil), seed...)
				if f32 {
					kf(y, yStride, x, xStride, wf, wtStride, n, k)
				} else {
					ki(y, yStride, x, xStride, w8, wtStride, scale, n, k)
				}
				return y
			}
			for _, f32 := range []bool{true, false} {
				want := run(f32, gemmBlockGo, gemmBlockI8Go)
				got := run(f32, kernelF32, kernelI8)
				for i := range want {
					if d := math.Abs(float64(got[i] - want[i])); d > 1e-4 {
						t.Fatalf("n=%d k=%d f32=%v: y[%d] = %g (asm) vs %g (go)", n, k, f32, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestVectorActivationsMatchScalar bounds the 8-lane SIMD activations
// against the scalar float32 versions over sweep and saturation inputs,
// including non-multiple-of-8 lengths (scalar tail path). The two may
// legitimately differ by ~1 ulp: the SIMD exp rounds its range-reduction
// step half-to-even and fuses the polynomial with FMA.
func TestVectorActivationsMatchScalar(t *testing.T) {
	if SIMD() == "generic" {
		t.Skip("no SIMD kernel selected on this host")
	}
	var in []float32
	for x := float32(-40); x <= 40; x += 0.0173 {
		in = append(in, x)
	}
	in = append(in, -18, 18, -9.01, 9.01, -0.5, 0.5, 0, 1e-8, -1e-8, 90, -90)
	for _, n := range []int{1, 7, 8, 9, len(in)} {
		vec := append([]float32(nil), in[:n]...)
		vsigmoidF32(vec)
		for i := 0; i < n; i++ {
			want := sigmoidF32(in[i])
			if d := float64(vec[i] - want); d > 2e-7 || d < -2e-7 {
				t.Fatalf("vsigmoid(%g) = %g, scalar %g", in[i], vec[i], want)
			}
		}
		vec = append(vec[:0], in[:n]...)
		vtanhF32(vec)
		for i := 0; i < n; i++ {
			want := tanhF32(in[i])
			if d := float64(vec[i] - want); d > 4e-7 || d < -4e-7 {
				t.Fatalf("vtanh(%g) = %g, scalar %g", in[i], vec[i], want)
			}
		}
	}
}

// TestFastActivations bounds the float32 transcendentals against the
// float64 math package across the ranges the gate pass produces.
func TestFastActivations(t *testing.T) {
	for x := -30.0; x <= 30.0; x += 0.0137 {
		xf := float32(x)
		if got, want := float64(expF32(xf)), math.Exp(float64(xf)); math.Abs(got-want) > 2e-6*math.Abs(want)+1e-38 {
			t.Fatalf("expF32(%g) = %g, want %g", xf, got, want)
		}
		if got, want := float64(tanhF32(xf)), math.Tanh(float64(xf)); math.Abs(got-want) > 2e-6 {
			t.Fatalf("tanhF32(%g) = %g, want %g", xf, got, want)
		}
		if got, want := float64(sigmoidF32(xf)), 1/(1+math.Exp(-float64(xf))); math.Abs(got-want) > 2e-6 {
			t.Fatalf("sigmoidF32(%g) = %g, want %g", xf, got, want)
		}
	}
	// Range edges clamp rather than wrap through the exponent bits.
	if !math.IsInf(float64(expF32(90)), 1) {
		t.Error("expF32(90) should overflow to +Inf")
	}
	if expF32(-90) != 0 {
		t.Error("expF32(-90) should underflow to 0")
	}
	if v := expF32(expMax32); math.IsNaN(float64(v)) || v < 1e38 {
		t.Errorf("expF32 at the overflow edge = %g", v)
	}
	if v := expF32(expMin32); math.IsNaN(float64(v)) || float64(v) > 1e-37 {
		t.Errorf("expF32 at the underflow edge = %g", v)
	}
}

func TestParsePrecision(t *testing.T) {
	cases := map[string]Precision{
		"": Float32, "f32": Float32, "FLOAT32": Float32,
		"f64": Float64, "float64": Float64,
		"i8": Int8, "int8": Int8,
	}
	for in, want := range cases {
		got, err := ParsePrecision(in)
		if err != nil || got != want {
			t.Errorf("ParsePrecision(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePrecision("bf16"); err == nil {
		t.Error("ParsePrecision(bf16) should fail")
	}
	if Float32.String() != "f32" || Int8.String() != "i8" || Float64.String() != "f64" {
		t.Error("Precision.String round-trip broken")
	}
}

// flattenF32 packs float64 windows row-major into a float32 batch tensor.
func flattenF32(rows [][]float64) []float32 {
	if len(rows) == 0 {
		return nil
	}
	out := make([]float32, 0, len(rows)*len(rows[0]))
	for _, r := range rows {
		for _, v := range r {
			out = append(out, float32(v))
		}
	}
	return out
}

// flattenWindowsF32 packs [][][]float64 LSTM windows into the batch
// layout ScoreBatch expects (window-major, then timestep-major).
func flattenWindowsF32(windows [][][]float64) []float32 {
	var out []float32
	for _, w := range windows {
		for _, step := range w {
			for _, v := range step {
				out = append(out, float32(v))
			}
		}
	}
	return out
}

// TestAEScoreBatchMatchesFloat64 bounds the batched engines' divergence
// from the float64 reference scorer, on both kernel families, for both
// whole-window MSE and the worst-record windowed score.
func TestAEScoreBatchMatchesFloat64(t *testing.T) {
	ae, _, flat, _, _ := trainedPair(t)
	const recDim = 8
	want := make([]float64, len(flat))
	wantRec := make([]float64, len(flat))
	s := ae.NewScratch()
	for i, x := range flat {
		want[i] = ae.ScoreWith(s, x)
		recon := ae.ReconstructWith(s, x)
		for off := 0; off+recDim <= len(x); off += recDim {
			var sum float64
			for j := off; j < off+recDim; j++ {
				d := recon[j] - x[j]
				sum += d * d
			}
			if mse := sum / recDim; mse > wantRec[i] {
				wantRec[i] = mse
			}
		}
	}
	xb := flattenF32(flat)
	n := len(flat)

	check := func(t *testing.T, e *AEInference, rel, abs float64) {
		bs := e.NewBatchScratch()
		scores := make([]float32, n)
		e.ScoreBatch(bs, xb, n, 0, scores)
		for i := range scores {
			if scoreDiverged(scores[i], want[i], rel, abs) {
				t.Fatalf("window %d: batch MSE %g, float64 %g (rel bound %g)", i, scores[i], want[i], rel)
			}
		}
		e.ScoreBatch(bs, xb, n, recDim, scores)
		for i := range scores {
			if scoreDiverged(scores[i], wantRec[i], rel, abs) {
				t.Fatalf("window %d: batch worst-record %g, float64 %g (rel bound %g)", i, scores[i], wantRec[i], rel)
			}
		}
		// Batch size must not change the arithmetic: one window at a
		// time produces bit-identical scores.
		one := make([]float32, 1)
		for i := 0; i < n; i += 17 {
			e.ScoreBatch(bs, xb[i*e.InputDim():], 1, recDim, one)
			if one[0] != scores[i] {
				t.Fatalf("window %d: n=1 score %g != batched %g", i, one[0], scores[i])
			}
		}
	}
	t.Run("f32", func(t *testing.T) { check(t, ae.QuantizeF32(), f32RelBound, f32AbsBound) })
	t.Run("i8", func(t *testing.T) { check(t, ae.QuantizeI8(), i8RelBound, i8AbsBound) })
	t.Run("f32-portable", func(t *testing.T) {
		forcePortableKernels(t)
		check(t, ae.QuantizeF32(), f32RelBound, f32AbsBound)
	})
	t.Run("i8-portable", func(t *testing.T) {
		forcePortableKernels(t)
		check(t, ae.QuantizeI8(), i8RelBound, i8AbsBound)
	})
}

// TestLSTMScoreBatchMatchesFloat64 is the same contract for the
// recurrent engine.
func TestLSTMScoreBatchMatchesFloat64(t *testing.T) {
	_, l, _, windows, nexts := trainedPair(t)
	s := l.NewScratch()
	want := make([]float64, len(windows))
	for i := range windows {
		want[i] = l.ScoreWith(s, windows[i], nexts[i])
	}
	xb := flattenWindowsF32(windows)
	targets := flattenF32(nexts)
	n, T := len(windows), len(windows[0])

	check := func(t *testing.T, e *LSTMInference, rel, abs float64) {
		bs := e.NewBatchScratch()
		scores := make([]float32, n)
		e.ScoreBatch(bs, xb, targets, n, T, scores)
		in, _, out := e.Dims()
		for i := range scores {
			if scoreDiverged(scores[i], want[i], rel, abs) {
				t.Fatalf("window %d: batch score %g, float64 %g (rel bound %g)", i, scores[i], want[i], rel)
			}
		}
		one := make([]float32, 1)
		for i := 0; i < n; i += 13 {
			e.ScoreBatch(bs, xb[i*T*in:], targets[i*out:], 1, T, one)
			if one[0] != scores[i] {
				t.Fatalf("window %d: n=1 score %g != batched %g", i, one[0], scores[i])
			}
		}
	}
	t.Run("f32", func(t *testing.T) { check(t, l.QuantizeF32(), f32RelBound, f32AbsBound) })
	t.Run("i8", func(t *testing.T) { check(t, l.QuantizeI8(), i8RelBound, i8AbsBound) })
	t.Run("f32-portable", func(t *testing.T) {
		forcePortableKernels(t)
		check(t, l.QuantizeF32(), f32RelBound, f32AbsBound)
	})
	t.Run("i8-portable", func(t *testing.T) {
		forcePortableKernels(t)
		check(t, l.QuantizeI8(), i8RelBound, i8AbsBound)
	})
}

// TestScoreBatchZeroAllocs proves the batched hot path allocates nothing
// in steady state: the scratch arena grows once on the first call and is
// reused afterwards.
func TestScoreBatchZeroAllocs(t *testing.T) {
	ae, l, flat, windows, nexts := trainedPair(t)
	xb := flattenF32(flat)
	n := len(flat)
	scores := make([]float32, n)

	aeEng := ae.QuantizeF32()
	as := aeEng.NewBatchScratch()
	aeEng.ScoreBatch(as, xb, n, 8, scores) // warm the arena
	if a := testing.AllocsPerRun(50, func() { aeEng.ScoreBatch(as, xb, n, 8, scores) }); a != 0 {
		t.Errorf("AEInference.ScoreBatch allocates %v/op, want 0", a)
	}

	wxb := flattenWindowsF32(windows)
	targets := flattenF32(nexts)
	T := len(windows[0])
	lEng := l.QuantizeI8()
	ls := lEng.NewBatchScratch()
	lEng.ScoreBatch(ls, wxb, targets, len(windows), T, scores)
	if a := testing.AllocsPerRun(50, func() { lEng.ScoreBatch(ls, wxb, targets, len(windows), T, scores) }); a != 0 {
		t.Errorf("LSTMInference.ScoreBatch allocates %v/op, want 0", a)
	}
}
