package nn

// This file is the batched-GEMM core of the fast inference path. Weights
// are stored transposed (in × outPad, outPad a multiple of laneCols) so
// the inner kernel broadcasts one input scalar against contiguous output
// columns — no horizontal reductions — and a batch of W windows becomes
// one matrix-matrix product per layer instead of W GEMVs.
//
// Two kernel families exist per block of laneCols output columns:
//
//	kernelF32: Y[m][0:32] += Σ_k X[m][k] · Wt[k][0:32]
//	kernelI8:  Y[m][0:32] += scale[0:32] · Σ_k X[m][k] · float32(W8[k][0:32])
//
// On amd64 with AVX2+FMA (detected at runtime, so the build stays
// GOAMD64=v1) the kernels are assembly (gemm_amd64.s); everywhere else
// the portable Go versions below run. Both share exact semantics, so the
// selection is invisible above this file.

// laneCols is the kernel's output-column block width. Weight planes pad
// their output dimension up to a multiple of it.
const laneCols = 32

// kernelF32 and kernelI8 are the selected block kernels. They are
// package variables so tests can force the portable versions; init in
// gemm_amd64.go upgrades them when the CPU allows.
var (
	kernelF32 = gemmBlockGo
	kernelI8  = gemmBlockI8Go
)

// simdKernel names the active kernel implementation ("avx2" or
// "generic") for benchmark metadata.
var simdKernel = "generic"

// SIMD reports which GEMM kernel implementation is active.
func SIMD() string { return simdKernel }

// gemmBlockGo is the portable float32 block kernel:
// y[m*yStride+o] += Σ_k x[m*xStride+k] · wt[k*wtStride+o] for o in
// [0, laneCols), m in [0, n). The zero-input skip is exact for finite
// weights and pays off on sparse one-hot feature rows.
func gemmBlockGo(y []float32, yStride int, x []float32, xStride int, wt []float32, wtStride int, n, k int) {
	for m := 0; m < n; m++ {
		yrow := y[m*yStride : m*yStride+laneCols : m*yStride+laneCols]
		xrow := x[m*xStride:]
		for kk := 0; kk < k; kk++ {
			xv := xrow[kk]
			if xv == 0 {
				continue
			}
			wrow := wt[kk*wtStride : kk*wtStride+laneCols : kk*wtStride+laneCols]
			for o := 0; o < laneCols; o++ {
				yrow[o] += xv * wrow[o]
			}
		}
	}
}

// gemmBlockI8Go is the portable int8 block kernel: integer weights
// accumulate in float32 and the per-output-column scale is applied once
// at the end, so y[m][o] += scale[o] · Σ_k x[m][k] · w8[k][o].
func gemmBlockI8Go(y []float32, yStride int, x []float32, xStride int, w8 []int8, wtStride int, scale []float32, n, k int) {
	var acc [laneCols]float32
	for m := 0; m < n; m++ {
		for o := range acc {
			acc[o] = 0
		}
		xrow := x[m*xStride:]
		for kk := 0; kk < k; kk++ {
			xv := xrow[kk]
			if xv == 0 {
				continue
			}
			wrow := w8[kk*wtStride : kk*wtStride+laneCols : kk*wtStride+laneCols]
			for o := 0; o < laneCols; o++ {
				acc[o] += xv * float32(wrow[o])
			}
		}
		yrow := y[m*yStride : m*yStride+laneCols : m*yStride+laneCols]
		for o := 0; o < laneCols; o++ {
			yrow[o] += acc[o] * scale[o]
		}
	}
}

// padCols rounds an output dimension up to the kernel block width.
func padCols(out int) int {
	return (out + laneCols - 1) / laneCols * laneCols
}

// plane is one quantized dense layer: transposed weights padded to a
// multiple of laneCols output columns, bias, and activation. Exactly one
// of w32 / w8 is set.
type plane struct {
	in, out, outPad int
	act             Activation

	w32   []float32 // in×outPad, transposed: w32[k*outPad+o]
	w8    []int8    // in×outPad, transposed
	scale []float32 // per-output-column dequantization scale (int8 only)
	bias  []float32 // outPad, padding zero
}

// newPlane converts one float64 layer (row-major w[o*in+k], bias b) into
// a transposed padded plane at the requested precision.
func newPlane(w, b []float64, in, out int, act Activation, prec Precision) plane {
	p := plane{in: in, out: out, outPad: padCols(out), act: act}
	p.bias = make([]float32, p.outPad)
	for o := 0; o < out; o++ {
		p.bias[o] = float32(b[o])
	}
	if prec == Int8 {
		p.w8 = make([]int8, in*p.outPad)
		p.scale = make([]float32, p.outPad)
		for o := 0; o < out; o++ {
			var mx float64
			for k := 0; k < in; k++ {
				if a := w[o*in+k]; a > mx {
					mx = a
				} else if -a > mx {
					mx = -a
				}
			}
			if mx == 0 {
				continue // zero row quantizes to zeros with scale 0
			}
			s := mx / 127
			p.scale[o] = float32(s)
			for k := 0; k < in; k++ {
				q := int(w[o*in+k]/s + 0.5)
				if w[o*in+k] < 0 {
					q = int(w[o*in+k]/s - 0.5)
				}
				p.w8[k*p.outPad+o] = int8(q)
			}
		}
		return p
	}
	p.w32 = make([]float32, in*p.outPad)
	for o := 0; o < out; o++ {
		for k := 0; k < in; k++ {
			p.w32[k*p.outPad+o] = float32(w[o*in+k])
		}
	}
	return p
}

// fillBias broadcasts the bias row into the first n rows of y
// (row stride outPad).
func (p *plane) fillBias(y []float32, n int) {
	for m := 0; m < n; m++ {
		copy(y[m*p.outPad:(m+1)*p.outPad], p.bias)
	}
}

// gemm accumulates X·Wt into y: n rows of x (logical width p.in, row
// stride xStride) against the plane's weights, into n rows of y (row
// stride yStride ≥ p.outPad). Callers pre-fill y — with fillBias for a
// fresh layer, or with a previous gemm's output to chain accumulations.
func (p *plane) gemm(y []float32, yStride int, x []float32, xStride, n int) {
	if n == 0 || p.in == 0 {
		return
	}
	if p.w8 != nil {
		for ob := 0; ob < p.outPad; ob += laneCols {
			kernelI8(y[ob:], yStride, x, xStride, p.w8[ob:], p.outPad, p.scale[ob:], n, p.in)
		}
		return
	}
	for ob := 0; ob < p.outPad; ob += laneCols {
		kernelF32(y[ob:], yStride, x, xStride, p.w32[ob:], p.outPad, n, p.in)
	}
}

// activate applies the plane's nonlinearity in place over n rows of y.
// Padding columns are written too (cheaper than masking); they are never
// read by later stages, whose k loops stop at the logical width.
func (p *plane) activate(y []float32, n int) {
	total := n * p.outPad
	switch p.act {
	case ActIdentity:
	case ActReLU:
		for i := 0; i < total; i++ {
			if y[i] < 0 {
				y[i] = 0
			}
		}
	case ActSigmoid:
		vsigmoidF32(y[:total])
	case ActTanh:
		vtanhF32(y[:total])
	}
}
