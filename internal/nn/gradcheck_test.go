package nn

import (
	"math"
	"math/rand"
	"testing"
)

// numericalGrad computes dLoss/dw for one weight by central differences.
func numericalGrad(loss func() float64, w *float64) float64 {
	const eps = 1e-6
	orig := *w
	*w = orig + eps
	up := loss()
	*w = orig - eps
	down := loss()
	*w = orig
	return (up - down) / (2 * eps)
}

// TestDenseGradients verifies MLP backprop against numerical gradients.
func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(1, []int{4, 5, 3}, []Activation{ActTanh, ActIdentity})
	x := make([]float64, 4)
	target := make([]float64, 3)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range target {
		target[i] = rng.NormFloat64()
	}
	loss := func() float64 { return MSE(m.Forward(x), target, nil) }

	// Analytic gradients.
	ZeroGrads(m)
	grad := make([]float64, 3)
	MSE(m.Forward(x), target, grad)
	m.Backward(grad)

	for _, p := range m.Params() {
		for i := range p.W {
			want := numericalGrad(loss, &p.W[i])
			got := p.G[i]
			if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
				t.Fatalf("%s[%d]: analytic %g, numerical %g", p.Name, i, got, want)
			}
		}
	}
}

// TestDenseGradientsAllActivations runs the gradient check through every
// activation type.
func TestDenseGradientsAllActivations(t *testing.T) {
	for _, act := range []Activation{ActIdentity, ActReLU, ActSigmoid, ActTanh} {
		t.Run(act.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(2))
			m := NewMLP(2, []int{3, 4, 2}, []Activation{act, ActIdentity})
			x := []float64{0.3, -0.7, 1.1}
			target := []float64{0.5, -0.2}
			_ = rng
			loss := func() float64 { return MSE(m.Forward(x), target, nil) }
			ZeroGrads(m)
			grad := make([]float64, 2)
			MSE(m.Forward(x), target, grad)
			m.Backward(grad)
			for _, p := range m.Params() {
				for i := range p.W {
					want := numericalGrad(loss, &p.W[i])
					got := p.G[i]
					// ReLU is non-differentiable at 0; central differences
					// may straddle the kink, so use a looser bound.
					tol := 1e-5 * (1 + math.Abs(want))
					if act == ActReLU {
						tol = 1e-3 * (1 + math.Abs(want))
					}
					if math.Abs(got-want) > tol {
						t.Fatalf("%s[%d]: analytic %g, numerical %g", p.Name, i, got, want)
					}
				}
			}
		})
	}
}

// TestLSTMGradients verifies LSTM BPTT against numerical gradients — the
// strongest correctness check in the package.
func TestLSTMGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLSTM(3, 3, 4, 2)
	window := make([][]float64, 3)
	for i := range window {
		window[i] = make([]float64, 3)
		for j := range window[i] {
			window[i][j] = rng.NormFloat64() * 0.5
		}
	}
	target := []float64{0.7, -0.3}
	loss := func() float64 { return MSE(l.Forward(window), target, nil) }

	ZeroGrads(l)
	grad := make([]float64, 2)
	MSE(l.Forward(window), target, grad)
	l.Backward(grad)

	for _, p := range l.Params() {
		for i := range p.W {
			want := numericalGrad(loss, &p.W[i])
			got := p.G[i]
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("%s[%d]: analytic %g, numerical %g", p.Name, i, got, want)
			}
		}
	}
}

// TestGradientAccumulation verifies that two Backward calls accumulate.
func TestGradientAccumulation(t *testing.T) {
	m := NewMLP(4, []int{2, 2}, []Activation{ActIdentity})
	x := []float64{1, 2}
	target := []float64{0, 0}
	grad := make([]float64, 2)

	ZeroGrads(m)
	MSE(m.Forward(x), target, grad)
	m.Backward(grad)
	once := append([]float64(nil), m.Params()[0].G...)

	MSE(m.Forward(x), target, grad)
	m.Backward(grad)
	for i, g := range m.Params()[0].G {
		if math.Abs(g-2*once[i]) > 1e-12 {
			t.Fatalf("grad[%d] = %g after two passes, want %g", i, g, 2*once[i])
		}
	}
}

func TestClipGrads(t *testing.T) {
	p := &Param{W: make([]float64, 2), G: []float64{30, 40}} // norm 50
	clipGrads([]*Param{p}, 5)
	norm := math.Hypot(p.G[0], p.G[1])
	if math.Abs(norm-5) > 1e-9 {
		t.Errorf("clipped norm = %g, want 5", norm)
	}
	// Below the limit: untouched.
	p.G = []float64{0.3, 0.4}
	clipGrads([]*Param{p}, 5)
	if p.G[0] != 0.3 || p.G[1] != 0.4 {
		t.Error("small grads modified")
	}
}

func TestMSEPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on dimension mismatch")
		}
	}()
	MSE([]float64{1}, []float64{1, 2}, nil)
}
