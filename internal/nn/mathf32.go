package nn

import "math"

// Fast float32 transcendentals for the inference path. The float64
// activations in nn.go cost as much as the whole batched GEMM at these
// layer sizes; these single-precision versions (Cephes-style range
// reduction + degree-5 polynomial) are accurate to ~1 ulp of float32,
// so the score divergence against the float64 reference stays dominated
// by float32 arithmetic itself, not by the approximation.

const (
	expLog2e32 = 1.4426950408889634
	expLn2Hi32 = 6.93359375e-01
	expLn2Lo32 = -2.12194440e-04
	expMax32   = 88.72283   // exp overflows float32 above this
	expMin32   = -87.336544 // exp underflows float32 below this
	tanhClamp  = 9.01       // tanh is ±1 to float32 precision beyond this
	sigClamp32 = 18.0       // sigmoid is 0/1 to ~1.5e-8 beyond this
)

// expF32 returns e**x with float32 range and ~1 ulp accuracy.
func expF32(x float32) float32 {
	if x > expMax32 {
		return float32(math.Inf(1))
	}
	if x < expMin32 {
		return 0
	}
	// Range reduction: x = k·ln2 + r with |r| ≤ ln2/2.
	kf := x * expLog2e32
	if kf >= 0 {
		kf = float32(int32(kf + 0.5))
	} else {
		kf = float32(int32(kf - 0.5))
	}
	r := x - kf*expLn2Hi32 - kf*expLn2Lo32

	// exp(r) ≈ 1 + r + r²·P(r), Cephes expf minimax coefficients.
	p := float32(1.9875691500e-4)
	p = p*r + 1.3981999507e-3
	p = p*r + 8.3334519073e-3
	p = p*r + 4.1665795894e-2
	p = p*r + 1.6666665459e-1
	p = p*r + 5.0000001201e-1
	y := p*r*r + r + 1

	// Scale by 2**k through the exponent bits. k is in [-126, 128] for
	// the clamped range; the edges scale in two steps so the biased
	// exponent of each factor stays that of a normal float.
	k := int32(kf)
	if k > 127 {
		y *= math.Float32frombits((127 + 127) << 23)
		k -= 127
	} else if k < -126 {
		y *= math.Float32frombits((-126 + 127) << 23)
		k += 126
	}
	return y * math.Float32frombits(uint32(k+127)<<23)
}

// tanhF32 returns tanh(x) in float32 via the exp identity
// tanh(x) = (e^{2x} − 1) / (e^{2x} + 1).
func tanhF32(x float32) float32 {
	if x > tanhClamp {
		return 1
	}
	if x < -tanhClamp {
		return -1
	}
	e := expF32(2 * x)
	return (e - 1) / (e + 1)
}

// sigmoidF32 returns 1/(1+e^{−x}) in float32.
func sigmoidF32(x float32) float32 {
	if x > sigClamp32 {
		return 1
	}
	if x < -sigClamp32 {
		return 0
	}
	return 1 / (1 + expF32(-x))
}

// vsigmoidF32 and vtanhF32 apply the activation in place over a vector —
// the batched engines' hot elementwise pass (an LSTM window is ~5·H·T
// transcendentals, as expensive as all its GEMMs together). They are
// package variables so tests can force the portable versions; init in
// gemm_amd64.go upgrades them to 8-lane AVX2 kernels alongside the GEMM
// block kernels. The SIMD versions round the exp range-reduction step to
// nearest-even where the scalars round half away from zero, so results
// may differ by ~1 ulp at half-integer multiples of log2(e)·x; callers
// tolerate far more (the float32 engines are compared to the float64
// reference, not to the scalar float32 path).
var (
	vsigmoidF32 = vsigmoidGo
	vtanhF32    = vtanhGo
)

func vsigmoidGo(v []float32) {
	for i := range v {
		v[i] = sigmoidF32(v[i])
	}
}

func vtanhGo(v []float32) {
	for i := range v {
		v[i] = tanhF32(v[i])
	}
}
