package nn

import (
	"fmt"
	"math/rand"
)

// Autoencoder compresses an input vector through a bottleneck and
// reconstructs it: Ŝ = f_AE(S). Trained only on benign windows, it
// reconstructs unseen benign traffic well and attack windows poorly, so
// the reconstruction MSE is the anomaly score (§3.2 of the paper).
//
// A trained autoencoder is read-only: score it from N goroutines by
// giving each its own AEScratch (see NewScratch / ScoreWith).
type Autoencoder struct {
	net      *MLP
	inputDim int
}

// AEScratch is a per-goroutine inference/training workspace for one
// Autoencoder. A scratch must not be used from two goroutines at once.
type AEScratch struct {
	net *MLPScratch
}

// AEConfig configures NewAutoencoder.
type AEConfig struct {
	// InputDim is the flattened window dimension.
	InputDim int
	// Hidden lists encoder layer widths down to the bottleneck; the
	// decoder mirrors it. E.g. {64, 16} builds In→64→16→64→In.
	Hidden []int
	// Seed makes initialization deterministic.
	Seed int64
}

// NewAutoencoder builds a symmetric autoencoder. Hidden layers use tanh;
// the output layer is linear so reconstructions are unbounded like the
// (one-hot / numeric) inputs.
func NewAutoencoder(cfg AEConfig) *Autoencoder {
	if cfg.InputDim <= 0 || len(cfg.Hidden) == 0 {
		panic("nn: NewAutoencoder requires InputDim > 0 and at least one hidden width")
	}
	sizes := []int{cfg.InputDim}
	sizes = append(sizes, cfg.Hidden...)
	for i := len(cfg.Hidden) - 2; i >= 0; i-- {
		sizes = append(sizes, cfg.Hidden[i])
	}
	sizes = append(sizes, cfg.InputDim)
	acts := make([]Activation, len(sizes)-1)
	for i := range acts {
		acts[i] = ActTanh
	}
	acts[len(acts)-1] = ActIdentity
	return &Autoencoder{net: NewMLP(cfg.Seed, sizes, acts), inputDim: cfg.InputDim}
}

// Params implements Model.
func (a *Autoencoder) Params() []*Param { return a.net.Params() }

// InputDim returns the expected input dimension.
func (a *Autoencoder) InputDim() int { return a.inputDim }

// NewScratch allocates a workspace sized for this autoencoder.
func (a *Autoencoder) NewScratch() *AEScratch {
	return &AEScratch{net: a.net.NewScratch()}
}

// ReconstructWith returns the reconstruction of x computed through the
// given workspace. The returned slice is owned by s and overwritten by
// its next call.
func (a *Autoencoder) ReconstructWith(s *AEScratch, x []float64) []float64 {
	return a.net.ForwardWith(s.net, x)
}

// ScoreWith returns the reconstruction MSE of x computed through the
// given workspace. After warm-up it performs no heap allocation.
func (a *Autoencoder) ScoreWith(s *AEScratch, x []float64) float64 {
	return MSE(a.net.ForwardWith(s.net, x), x, nil)
}

// Reconstruct returns the autoencoder's reconstruction of x using the
// default workspace (single-threaded convenience API). The returned
// slice is overwritten by the next call.
func (a *Autoencoder) Reconstruct(x []float64) []float64 {
	return a.net.Forward(x)
}

// Score returns the reconstruction mean squared error for x — the anomaly
// score used by MobiWatch.
func (a *Autoencoder) Score(x []float64) float64 {
	return MSE(a.net.Forward(x), x, nil)
}

// TrainConfig configures model fitting.
type TrainConfig struct {
	Epochs    int
	BatchSize int     // gradient accumulation size; 1 = pure SGD
	LR        float64 // learning rate (Adam)
	Seed      int64   // shuffling seed
	// Workers bounds the data-parallel fan-out per mini-batch
	// (0 = GOMAXPROCS). The loss curve for a fixed Seed is identical
	// for every worker count: gradients accumulate into a fixed number
	// of shards reduced in a fixed order, so scheduling never changes
	// the arithmetic.
	Workers int
	// Verbose receives per-epoch mean loss when non-nil.
	Verbose func(epoch int, loss float64)
}

func (c *TrainConfig) defaults() {
	if c.Epochs == 0 {
		c.Epochs = 30
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
}

// aeShard is one gradient shard's private training state.
type aeShard struct {
	g       shardGrads
	scratch *AEScratch
	grad    []float64 // dLoss/dOutput buffer
	loss    float64
}

// Train fits the autoencoder to the benign windows in data and returns the
// per-epoch mean training loss. Mini-batches are fanned out over
// TrainConfig.Workers goroutines; results are deterministic for a fixed
// Seed regardless of worker count.
func (a *Autoencoder) Train(data [][]float64, cfg TrainConfig) ([]float64, error) {
	cfg.defaults()
	if len(data) == 0 {
		return nil, fmt.Errorf("nn: Train called with no data")
	}
	for i, x := range data {
		if len(x) != a.inputDim {
			return nil, fmt.Errorf("nn: sample %d has dim %d, want %d", i, len(x), a.inputDim)
		}
	}
	opt := NewAdam(cfg.LR)
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(data))
	for i := range order {
		order[i] = i
	}
	losses := make([]float64, 0, cfg.Epochs)

	params := a.Params()
	workers := cfg.workers()
	nShards := maxGradShards
	if cfg.BatchSize < nShards {
		nShards = cfg.BatchSize
	}
	shards := make([]aeShard, nShards)
	views := make([]shardGrads, nShards)
	for i := range shards {
		shards[i] = aeShard{
			g:       newShardGrads(params),
			scratch: a.NewScratch(),
			grad:    make([]float64, a.inputDim),
		}
		views[i] = shards[i].g
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		ZeroGrads(a)
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			ns := nShards
			if len(batch) < ns {
				ns = len(batch)
			}
			runShards(ns, workers, func(s int) {
				sh := &shards[s]
				sh.loss = 0
				for pos := s; pos < len(batch); pos += ns {
					x := data[batch[pos]]
					out := a.net.ForwardWith(sh.scratch.net, x)
					sh.loss += MSE(out, x, sh.grad)
					a.net.backwardInto(sh.scratch.net, sh.g, sh.grad)
				}
			})
			for s := 0; s < ns; s++ {
				epochLoss += shards[s].loss
			}
			reduceGrads(params, views[:ns])
			scaleGrads(params, 1/float64(len(batch)))
			opt.Step(params)
			ZeroGrads(a)
		}
		mean := epochLoss / float64(len(data))
		losses = append(losses, mean)
		if cfg.Verbose != nil {
			cfg.Verbose(epoch, mean)
		}
	}
	return losses, nil
}

func scaleGrads(params []*Param, s float64) {
	for _, p := range params {
		for i := range p.G {
			p.G[i] *= s
		}
	}
}
