package nn

import (
	"fmt"
	"math/rand"
)

// Autoencoder compresses an input vector through a bottleneck and
// reconstructs it: Ŝ = f_AE(S). Trained only on benign windows, it
// reconstructs unseen benign traffic well and attack windows poorly, so
// the reconstruction MSE is the anomaly score (§3.2 of the paper).
type Autoencoder struct {
	net      *MLP
	inputDim int
}

// AEConfig configures NewAutoencoder.
type AEConfig struct {
	// InputDim is the flattened window dimension.
	InputDim int
	// Hidden lists encoder layer widths down to the bottleneck; the
	// decoder mirrors it. E.g. {64, 16} builds In→64→16→64→In.
	Hidden []int
	// Seed makes initialization deterministic.
	Seed int64
}

// NewAutoencoder builds a symmetric autoencoder. Hidden layers use tanh;
// the output layer is linear so reconstructions are unbounded like the
// (one-hot / numeric) inputs.
func NewAutoencoder(cfg AEConfig) *Autoencoder {
	if cfg.InputDim <= 0 || len(cfg.Hidden) == 0 {
		panic("nn: NewAutoencoder requires InputDim > 0 and at least one hidden width")
	}
	sizes := []int{cfg.InputDim}
	sizes = append(sizes, cfg.Hidden...)
	for i := len(cfg.Hidden) - 2; i >= 0; i-- {
		sizes = append(sizes, cfg.Hidden[i])
	}
	sizes = append(sizes, cfg.InputDim)
	acts := make([]Activation, len(sizes)-1)
	for i := range acts {
		acts[i] = ActTanh
	}
	acts[len(acts)-1] = ActIdentity
	return &Autoencoder{net: NewMLP(cfg.Seed, sizes, acts), inputDim: cfg.InputDim}
}

// Params implements Model.
func (a *Autoencoder) Params() []*Param { return a.net.Params() }

// InputDim returns the expected input dimension.
func (a *Autoencoder) InputDim() int { return a.inputDim }

// Reconstruct returns the autoencoder's reconstruction of x. The returned
// slice is owned by the network and overwritten by the next call.
func (a *Autoencoder) Reconstruct(x []float64) []float64 {
	return a.net.Forward(x)
}

// Score returns the reconstruction mean squared error for x — the anomaly
// score used by MobiWatch.
func (a *Autoencoder) Score(x []float64) float64 {
	return MSE(a.net.Forward(x), x, nil)
}

// TrainConfig configures model fitting.
type TrainConfig struct {
	Epochs    int
	BatchSize int     // gradient accumulation size; 1 = pure SGD
	LR        float64 // learning rate (Adam)
	Seed      int64   // shuffling seed
	// Verbose receives per-epoch mean loss when non-nil.
	Verbose func(epoch int, loss float64)
}

func (c *TrainConfig) defaults() {
	if c.Epochs == 0 {
		c.Epochs = 30
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
}

// Train fits the autoencoder to the benign windows in data and returns the
// per-epoch mean training loss.
func (a *Autoencoder) Train(data [][]float64, cfg TrainConfig) ([]float64, error) {
	cfg.defaults()
	if len(data) == 0 {
		return nil, fmt.Errorf("nn: Train called with no data")
	}
	for i, x := range data {
		if len(x) != a.inputDim {
			return nil, fmt.Errorf("nn: sample %d has dim %d, want %d", i, len(x), a.inputDim)
		}
	}
	opt := NewAdam(cfg.LR)
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(data))
	for i := range order {
		order[i] = i
	}
	grad := make([]float64, a.inputDim)
	losses := make([]float64, 0, cfg.Epochs)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		ZeroGrads(a)
		inBatch := 0
		for _, idx := range order {
			x := data[idx]
			out := a.net.Forward(x)
			epochLoss += MSE(out, x, grad)
			a.net.Backward(grad)
			inBatch++
			if inBatch == cfg.BatchSize {
				scaleGrads(a.Params(), 1/float64(inBatch))
				opt.Step(a.Params())
				ZeroGrads(a)
				inBatch = 0
			}
		}
		if inBatch > 0 {
			scaleGrads(a.Params(), 1/float64(inBatch))
			opt.Step(a.Params())
			ZeroGrads(a)
		}
		mean := epochLoss / float64(len(data))
		losses = append(losses, mean)
		if cfg.Verbose != nil {
			cfg.Verbose(epoch, mean)
		}
	}
	return losses, nil
}

func scaleGrads(params []*Param, s float64) {
	for _, p := range params {
		for i := range p.G {
			p.G[i] *= s
		}
	}
}
