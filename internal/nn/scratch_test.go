package nn

import (
	"bytes"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// trainedPair returns a lightly trained AE and LSTM plus inputs shaped
// like MobiWatch telemetry windows.
func trainedPair(t testing.TB) (*Autoencoder, *LSTM, [][]float64, [][][]float64, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	const dim = 24
	flat := syntheticWindows(rng, 120, dim)
	ae := NewAutoencoder(AEConfig{InputDim: dim, Hidden: []int{12, 4}, Seed: 1})
	if _, err := ae.Train(flat, TrainConfig{Epochs: 3, Seed: 2}); err != nil {
		t.Fatal(err)
	}

	const recDim = 8
	windows := make([][][]float64, 100)
	nexts := make([][]float64, 100)
	for i := range windows {
		w := make([][]float64, 4)
		for j := range w {
			w[j] = make([]float64, recDim)
			for k := range w[j] {
				w[j][k] = rng.NormFloat64() * 0.3
			}
		}
		windows[i] = w
		nexts[i] = make([]float64, recDim)
		for k := range nexts[i] {
			nexts[i][k] = rng.NormFloat64() * 0.3
		}
	}
	l := NewLSTM(9, recDim, 6, recDim)
	if _, err := l.TrainNextStep(windows, nexts, TrainConfig{Epochs: 2, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	return ae, l, flat, windows, nexts
}

// TestConcurrentScoringMatchesSequential is the tentpole regression: one
// model instance scored from N goroutines (each with its own scratch)
// must produce bit-identical scores to the sequential convenience API.
// Run under -race this also proves the trained models are read-only.
func TestConcurrentScoringMatchesSequential(t *testing.T) {
	ae, l, flat, windows, nexts := trainedPair(t)

	wantAE := make([]float64, len(flat))
	for i, x := range flat {
		wantAE[i] = ae.Score(x)
	}
	wantLSTM := make([]float64, len(windows))
	for i := range windows {
		wantLSTM[i] = l.Score(windows[i], nexts[i])
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			as := ae.NewScratch()
			ls := l.NewScratch()
			for i, x := range flat {
				if got := ae.ScoreWith(as, x); got != wantAE[i] {
					errs <- "AE score diverged from sequential"
					return
				}
			}
			for i := range windows {
				if got := l.ScoreWith(ls, windows[i], nexts[i]); got != wantLSTM[i] {
					errs <- "LSTM score diverged from sequential"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestScoreZeroAllocs proves the scratch-based hot path allocates
// nothing in steady state (AllocsPerRun warms the function up once, so
// LSTM step-buffer growth happens before measurement).
func TestScoreZeroAllocs(t *testing.T) {
	ae, l, flat, windows, nexts := trainedPair(t)

	as := ae.NewScratch()
	if n := testing.AllocsPerRun(100, func() { ae.ScoreWith(as, flat[0]) }); n != 0 {
		t.Errorf("Autoencoder.ScoreWith allocates %v/op, want 0", n)
	}
	ls := l.NewScratch()
	if n := testing.AllocsPerRun(100, func() { l.ScoreWith(ls, windows[0], nexts[0]) }); n != 0 {
		t.Errorf("LSTM.ScoreWith allocates %v/op, want 0", n)
	}
	// The convenience API reuses the model's default scratch, so it is
	// allocation-free too once warm.
	if n := testing.AllocsPerRun(100, func() { ae.Score(flat[0]) }); n != 0 {
		t.Errorf("Autoencoder.Score allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { l.Score(windows[0], nexts[0]) }); n != 0 {
		t.Errorf("LSTM.Score allocates %v/op, want 0", n)
	}
}

// TestTrainWorkerCountInvariant is the determinism contract of parallel
// training: for a fixed seed, the loss curve must be bit-for-bit
// identical whatever the worker count, because gradients accumulate
// into a fixed number of shards reduced in a fixed order.
func TestTrainWorkerCountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	data := syntheticWindows(rng, 64, 16)

	aeCurve := func(workers int) []float64 {
		ae := NewAutoencoder(AEConfig{InputDim: 16, Hidden: []int{8, 3}, Seed: 4})
		losses, err := ae.Train(data, TrainConfig{Epochs: 4, Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return losses
	}
	base := aeCurve(1)
	for _, w := range []int{2, 4, 7} {
		got := aeCurve(w)
		for e := range base {
			if got[e] != base[e] {
				t.Fatalf("AE epoch %d loss with %d workers = %g, 1 worker = %g", e, w, got[e], base[e])
			}
		}
	}

	const recDim = 6
	windows := make([][][]float64, 48)
	nexts := make([][]float64, 48)
	for i := range windows {
		w := make([][]float64, 3)
		for j := range w {
			w[j] = make([]float64, recDim)
			for k := range w[j] {
				w[j][k] = rng.NormFloat64()
			}
		}
		windows[i] = w
		nexts[i] = make([]float64, recDim)
	}
	lstmCurve := func(workers int) []float64 {
		l := NewLSTM(6, recDim, 5, recDim)
		losses, err := l.TrainNextStep(windows, nexts, TrainConfig{Epochs: 3, Seed: 8, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return losses
	}
	base = lstmCurve(1)
	for _, w := range []int{3, 8} {
		got := lstmCurve(w)
		for e := range base {
			if got[e] != base[e] {
				t.Fatalf("LSTM epoch %d loss with %d workers = %g, 1 worker = %g", e, w, got[e], base[e])
			}
		}
	}
}

// TestRunShardsInlineOnSingleCPU pins the single-CPU fast path: with
// GOMAXPROCS=1 a worker pool cannot overlap anything, so runShards must
// execute the shards inline on the calling goroutine even when many
// workers are requested.
func TestRunShardsInlineOnSingleCPU(t *testing.T) {
	goid := func() string {
		buf := make([]byte, 64)
		buf = buf[:runtime.Stack(buf, false)]
		if i := bytes.IndexByte(buf, '['); i > 0 {
			buf = buf[:i]
		}
		return string(bytes.TrimSpace(buf))
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	caller := goid()
	var mu sync.Mutex
	seen := map[string]bool{}
	order := make([]int, 0, maxGradShards)
	runShards(maxGradShards, 8, func(s int) {
		mu.Lock()
		seen[goid()] = true
		order = append(order, s)
		mu.Unlock()
	})
	if len(order) != maxGradShards {
		t.Fatalf("runShards ran %d shards, want %d", len(order), maxGradShards)
	}
	for s, got := range order {
		if got != s {
			t.Errorf("inline shard order[%d] = %d, want %d", s, got, s)
		}
	}
	if len(seen) != 1 || !seen[caller] {
		t.Errorf("with GOMAXPROCS=1 shards ran on goroutines %v, want only caller %s", seen, caller)
	}

	runtime.GOMAXPROCS(4)
	seen = map[string]bool{}
	runShards(maxGradShards, 8, func(s int) {
		mu.Lock()
		seen[goid()] = true
		mu.Unlock()
	})
	if seen[caller] {
		t.Error("with GOMAXPROCS=4 and 8 workers, shards still ran on the calling goroutine")
	}
}

// TestBackwardWithAccumulatesLikeBackward checks the exported scratch
// backward against the convenience path.
func TestBackwardWithAccumulatesLikeBackward(t *testing.T) {
	m := NewMLP(3, []int{4, 3, 4}, []Activation{ActTanh, ActIdentity})
	x := []float64{0.2, -0.4, 0.9, 0.1}
	target := make([]float64, 4)
	grad := make([]float64, 4)

	ZeroGrads(m)
	MSE(m.Forward(x), target, grad)
	m.Backward(grad)
	want := append([]float64(nil), m.Params()[0].G...)

	ZeroGrads(m)
	s := m.NewScratch()
	MSE(m.ForwardWith(s, x), target, grad)
	m.BackwardWith(s, grad)
	for i, g := range m.Params()[0].G {
		if g != want[i] {
			t.Fatalf("grad[%d] = %g via scratch, %g via default", i, g, want[i])
		}
	}
}
