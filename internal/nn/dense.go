package nn

import (
	"fmt"
	"math/rand"
)

// Dense is a fully connected layer y = σ(Wx + b) with weights stored
// row-major (W[o*In+i] connects input i to output o).
//
// Parameters are written only at construction and by optimizer steps;
// all forward/backward state lives in a scratch workspace, so a trained
// layer can be shared by any number of goroutines as long as each uses
// its own scratch.
type Dense struct {
	In, Out int
	Act     Activation

	w *Param // len Out*In
	b *Param // len Out

	def *denseScratch // default workspace backing the convenience API
}

// denseScratch is the per-goroutine forward/backward state of one layer.
type denseScratch struct {
	in     []float64 // input cached by forward
	out    []float64 // activations cached by forward
	gradIn []float64 // backward's dLoss/dInput buffer
}

// NewDense creates a layer with Xavier-initialized weights.
func NewDense(rng *rand.Rand, in, out int, act Activation) *Dense {
	d := &Dense{
		In: in, Out: out, Act: act,
		w: &Param{Name: fmt.Sprintf("dense%dx%d.w", out, in), W: make([]float64, out*in), G: make([]float64, out*in)},
		b: &Param{Name: fmt.Sprintf("dense%dx%d.b", out, in), W: make([]float64, out), G: make([]float64, out)},
	}
	xavierInit(rng, d.w.W, in, out)
	return d
}

// Params implements Model.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

func (d *Dense) newScratch() *denseScratch {
	return &denseScratch{
		in:     make([]float64, d.In),
		out:    make([]float64, d.Out),
		gradIn: make([]float64, d.In),
	}
}

func (d *Dense) scratch() *denseScratch {
	if d.def == nil {
		d.def = d.newScratch()
	}
	return d.def
}

// forward computes the layer output into s, caching activations for a
// later backward pass through the same scratch.
func (d *Dense) forward(s *denseScratch, x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: Dense.Forward input %d, want %d", len(x), d.In))
	}
	copy(s.in, x)
	for o := 0; o < d.Out; o++ {
		sum := d.b.W[o]
		row := d.w.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			sum += row[i] * xi
		}
		s.out[o] = d.Act.apply(sum)
	}
	return s.out
}

// backward consumes dLoss/dOutput, accumulates parameter gradients into
// wG/bG (shaped like d.w.G / d.b.G), and returns dLoss/dInput. The
// returned slice is owned by s and overwritten by its next backward.
func (d *Dense) backward(s *denseScratch, wG, bG, gradOut []float64) []float64 {
	if len(gradOut) != d.Out {
		panic(fmt.Sprintf("nn: Dense.Backward grad %d, want %d", len(gradOut), d.Out))
	}
	gradIn := s.gradIn
	for i := range gradIn {
		gradIn[i] = 0
	}
	for o := 0; o < d.Out; o++ {
		delta := gradOut[o] * d.Act.derivFromOutput(s.out[o])
		bG[o] += delta
		row := d.w.W[o*d.In : (o+1)*d.In]
		grow := wG[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			grow[i] += delta * s.in[i]
			gradIn[i] += delta * row[i]
		}
	}
	return gradIn
}

// Forward computes the layer output using the layer's default scratch —
// the single-threaded convenience API. The returned slice is overwritten
// on the next call. For concurrent use, share the layer through an MLP
// and per-goroutine MLPScratch instead.
func (d *Dense) Forward(x []float64) []float64 { return d.forward(d.scratch(), x) }

// Backward consumes dLoss/dOutput, accumulates parameter gradients into
// the layer's Params, and returns dLoss/dInput. Must follow a Forward
// call with the matching input. The returned slice is owned by the
// layer's default scratch and overwritten on the next call.
func (d *Dense) Backward(gradOut []float64) []float64 {
	return d.backward(d.scratch(), d.w.G, d.b.G, gradOut)
}

// MLP is a stack of dense layers. Like Dense, a trained MLP is
// effectively read-only: concurrent goroutines may run ForwardWith /
// BackwardWith simultaneously as long as each owns its MLPScratch.
type MLP struct {
	layers []*Dense
	params []*Param

	def *MLPScratch // default workspace backing the convenience API
	pg  [][]float64 // Param.G slices aligned with params, built lazily
}

// MLPScratch holds the per-goroutine forward/backward state for every
// layer of one MLP. Create one per goroutine with NewScratch; a scratch
// must not be used from two goroutines at once.
type MLPScratch struct {
	layers []*denseScratch
}

// NewMLP builds a multilayer perceptron with the given layer sizes
// (sizes[0] is the input dimension) and one activation per layer
// (len(acts) == len(sizes)-1).
func NewMLP(seed int64, sizes []int, acts []Activation) *MLP {
	if len(sizes) < 2 || len(acts) != len(sizes)-1 {
		panic("nn: NewMLP needs len(sizes)>=2 and len(acts)==len(sizes)-1")
	}
	rng := rand.New(rand.NewSource(seed))
	m := &MLP{}
	for i := 0; i < len(acts); i++ {
		l := NewDense(rng, sizes[i], sizes[i+1], acts[i])
		m.layers = append(m.layers, l)
		m.params = append(m.params, l.Params()...)
	}
	return m
}

// Params implements Model.
func (m *MLP) Params() []*Param { return m.params }

// Layers exposes the layer stack (read-only use).
func (m *MLP) Layers() []*Dense { return m.layers }

// NewScratch allocates a workspace sized for this network. One model
// instance can be driven from N goroutines given N scratches.
func (m *MLP) NewScratch() *MLPScratch {
	s := &MLPScratch{layers: make([]*denseScratch, len(m.layers))}
	for i, l := range m.layers {
		s.layers[i] = l.newScratch()
	}
	return s
}

func (m *MLP) scratch() *MLPScratch {
	if m.def == nil {
		m.def = m.NewScratch()
	}
	return m.def
}

// grads returns the shared Param.G slices aligned with Params().
func (m *MLP) grads() [][]float64 {
	if m.pg == nil {
		m.pg = paramGrads(m.params)
	}
	return m.pg
}

// ForwardWith runs the network through the given workspace. The returned
// slice is owned by s and overwritten by its next forward.
func (m *MLP) ForwardWith(s *MLPScratch, x []float64) []float64 {
	for i, l := range m.layers {
		x = l.forward(s.layers[i], x)
	}
	return x
}

// backwardInto propagates dLoss/dOutput through the stack using
// workspace s, accumulating parameter gradients into grads (aligned
// with Params(), two entries — w then b — per layer), and returns
// dLoss/dInput.
func (m *MLP) backwardInto(s *MLPScratch, grads [][]float64, gradOut []float64) []float64 {
	g := gradOut
	for i := len(m.layers) - 1; i >= 0; i-- {
		g = m.layers[i].backward(s.layers[i], grads[2*i], grads[2*i+1], g)
	}
	return g
}

// BackwardWith propagates gradients through workspace s, accumulating
// into the shared Params. Concurrent BackwardWith calls on the same
// model race on Param.G; use per-goroutine gradient buffers (as Train
// does) when training in parallel.
func (m *MLP) BackwardWith(s *MLPScratch, gradOut []float64) []float64 {
	return m.backwardInto(s, m.grads(), gradOut)
}

// Forward runs the network through the default scratch (single-threaded
// convenience API). The returned slice is overwritten on the next call.
func (m *MLP) Forward(x []float64) []float64 { return m.ForwardWith(m.scratch(), x) }

// Backward propagates dLoss/dOutput through the stack, accumulating
// parameter gradients, and returns dLoss/dInput.
func (m *MLP) Backward(gradOut []float64) []float64 {
	return m.backwardInto(m.scratch(), m.grads(), gradOut)
}
