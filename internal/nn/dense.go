package nn

import (
	"fmt"
	"math/rand"
)

// Dense is a fully connected layer y = σ(Wx + b) with weights stored
// row-major (W[o*In+i] connects input i to output o).
type Dense struct {
	In, Out int
	Act     Activation

	w *Param // len Out*In
	b *Param // len Out

	// forward caches (per most recent Forward call)
	lastIn  []float64
	lastOut []float64
}

// NewDense creates a layer with Xavier-initialized weights.
func NewDense(rng *rand.Rand, in, out int, act Activation) *Dense {
	d := &Dense{
		In: in, Out: out, Act: act,
		w:       &Param{Name: fmt.Sprintf("dense%dx%d.w", out, in), W: make([]float64, out*in), G: make([]float64, out*in)},
		b:       &Param{Name: fmt.Sprintf("dense%dx%d.b", out, in), W: make([]float64, out), G: make([]float64, out)},
		lastIn:  make([]float64, in),
		lastOut: make([]float64, out),
	}
	xavierInit(rng, d.w.W, in, out)
	return d
}

// Params implements Model.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// Forward computes the layer output, caching activations for Backward.
// The returned slice is owned by the layer and overwritten on next call.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: Dense.Forward input %d, want %d", len(x), d.In))
	}
	copy(d.lastIn, x)
	for o := 0; o < d.Out; o++ {
		sum := d.b.W[o]
		row := d.w.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			sum += row[i] * xi
		}
		d.lastOut[o] = d.Act.apply(sum)
	}
	return d.lastOut
}

// Backward consumes dLoss/dOutput, accumulates parameter gradients, and
// returns dLoss/dInput. Must follow a Forward call with the matching
// input. The returned slice is owned by the caller (freshly allocated).
func (d *Dense) Backward(gradOut []float64) []float64 {
	if len(gradOut) != d.Out {
		panic(fmt.Sprintf("nn: Dense.Backward grad %d, want %d", len(gradOut), d.Out))
	}
	gradIn := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		delta := gradOut[o] * d.Act.derivFromOutput(d.lastOut[o])
		d.b.G[o] += delta
		row := d.w.W[o*d.In : (o+1)*d.In]
		grow := d.w.G[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			grow[i] += delta * d.lastIn[i]
			gradIn[i] += delta * row[i]
		}
	}
	return gradIn
}

// MLP is a stack of dense layers.
type MLP struct {
	layers []*Dense
	params []*Param
}

// NewMLP builds a multilayer perceptron with the given layer sizes
// (sizes[0] is the input dimension) and one activation per layer
// (len(acts) == len(sizes)-1).
func NewMLP(seed int64, sizes []int, acts []Activation) *MLP {
	if len(sizes) < 2 || len(acts) != len(sizes)-1 {
		panic("nn: NewMLP needs len(sizes)>=2 and len(acts)==len(sizes)-1")
	}
	rng := rand.New(rand.NewSource(seed))
	m := &MLP{}
	for i := 0; i < len(acts); i++ {
		l := NewDense(rng, sizes[i], sizes[i+1], acts[i])
		m.layers = append(m.layers, l)
		m.params = append(m.params, l.Params()...)
	}
	return m
}

// Params implements Model.
func (m *MLP) Params() []*Param { return m.params }

// Layers exposes the layer stack (read-only use).
func (m *MLP) Layers() []*Dense { return m.layers }

// Forward runs the network. The returned slice is owned by the last layer.
func (m *MLP) Forward(x []float64) []float64 {
	for _, l := range m.layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates dLoss/dOutput through the stack, accumulating
// parameter gradients, and returns dLoss/dInput.
func (m *MLP) Backward(gradOut []float64) []float64 {
	g := gradOut
	for i := len(m.layers) - 1; i >= 0; i-- {
		g = m.layers[i].Backward(g)
	}
	return g
}
