//go:build amd64

package nn

// Runtime CPU-feature detection for the AVX2+FMA GEMM kernels. The
// binary builds for baseline amd64 (GOAMD64=v1); the SIMD path is only
// entered when CPUID and XGETBV prove the instructions and OS state
// support are present, so the portable kernels remain the fallback.

// Implemented in gemm_amd64.s.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)
func gemmBlockAVX2(y *float32, yStride int, x *float32, xStride int, wt *float32, wtStride int, n, k int)
func gemmBlockI8AVX2(y *float32, yStride int, x *float32, xStride int, w8 *int8, wtStride int, scale *float32, n, k int)

//go:noescape
func vsigmoidAVX2(v *float32, n int)

//go:noescape
func vtanhAVX2(v *float32, n int)

// hasAVX2FMA reports whether the CPU and OS support the assembly kernels:
// AVX, FMA, and OSXSAVE in CPUID.1:ECX, XMM+YMM state enabled in XCR0,
// and AVX2 in CPUID.7:EBX.
func hasAVX2FMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if ecx1&(fma|osxsave|avx) != fma|osxsave|avx {
		return false
	}
	if xa, _ := xgetbv(); xa&6 != 6 { // XMM and YMM state saved by the OS
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

// gemmBlockAsm adapts the slice-based kernel signature to the assembly
// entry point.
func gemmBlockAsm(y []float32, yStride int, x []float32, xStride int, wt []float32, wtStride int, n, k int) {
	gemmBlockAVX2(&y[0], yStride, &x[0], xStride, &wt[0], wtStride, n, k)
}

func gemmBlockI8Asm(y []float32, yStride int, x []float32, xStride int, w8 []int8, wtStride int, scale []float32, n, k int) {
	gemmBlockI8AVX2(&y[0], yStride, &x[0], xStride, &w8[0], wtStride, &scale[0], n, k)
}

// vsigmoidAsm and vtanhAsm run the 8-lane kernels over the aligned body
// and fall back to the scalar activations for the remainder, so results
// depend only on each element's index, never on the vector's length.
func vsigmoidAsm(v []float32) {
	n := len(v) &^ 7
	if n > 0 {
		vsigmoidAVX2(&v[0], n)
	}
	for i := n; i < len(v); i++ {
		v[i] = sigmoidF32(v[i])
	}
}

func vtanhAsm(v []float32) {
	n := len(v) &^ 7
	if n > 0 {
		vtanhAVX2(&v[0], n)
	}
	for i := n; i < len(v); i++ {
		v[i] = tanhF32(v[i])
	}
}

func init() {
	if hasAVX2FMA() {
		kernelF32 = gemmBlockAsm
		kernelI8 = gemmBlockI8Asm
		vsigmoidF32 = vsigmoidAsm
		vtanhF32 = vtanhAsm
		simdKernel = "avx2"
	}
}
