// Package nn is a small, dependency-free neural-network library
// implementing the two unsupervised models the 6G-XSec paper deploys in
// the MobiWatch xApp (§3.2): a dense Autoencoder trained to reconstruct
// benign telemetry windows, and an LSTM trained to predict the next
// telemetry entry from a window.
//
// The library provides float64 tensors, dense and LSTM layers with full
// backpropagation (verified against numerical differentiation in the
// tests), MSE loss, SGD and Adam optimizers, deterministic seeded
// initialization, and JSON model serialization for the SMO's
// train-then-deploy workflow.
//
// Scale note: the paper's models are deliberately "lightweight" so they
// can run inside an xApp within the near-RT control loop (10 ms–1 s);
// window-sized inputs and one or two hidden layers. This library targets
// exactly that scale and favors clarity and determinism over SIMD tricks.
//
// Concurrency model: layer structs hold only parameters; all forward and
// backward state lives in explicit per-goroutine workspaces (MLPScratch,
// AEScratch, LSTMScratch) created by the models' NewScratch methods. A
// trained model is therefore read-only and can be scored from any number
// of goroutines at once, allocation-free in steady state. The plain
// Forward/Backward/Score methods remain as single-threaded convenience
// wrappers over a per-model default scratch. Training fans mini-batches
// out over worker goroutines while keeping loss curves bit-for-bit
// reproducible for a fixed seed (see parallel.go).
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Activation selects a layer's nonlinearity.
type Activation uint8

// Activations.
const (
	ActIdentity Activation = iota
	ActReLU
	ActSigmoid
	ActTanh
)

// String returns the activation name.
func (a Activation) String() string {
	switch a {
	case ActIdentity:
		return "identity"
	case ActReLU:
		return "relu"
	case ActSigmoid:
		return "sigmoid"
	case ActTanh:
		return "tanh"
	}
	return fmt.Sprintf("Activation(%d)", uint8(a))
}

func (a Activation) apply(x float64) float64 {
	switch a {
	case ActReLU:
		if x < 0 {
			return 0
		}
		return x
	case ActSigmoid:
		return 1 / (1 + math.Exp(-x))
	case ActTanh:
		return math.Tanh(x)
	default:
		return x
	}
}

// derivFromOutput returns dσ/dx expressed in terms of the activation
// output y = σ(x), which all four supported activations allow.
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case ActReLU:
		if y > 0 {
			return 1
		}
		return 0
	case ActSigmoid:
		return y * (1 - y)
	case ActTanh:
		return 1 - y*y
	default:
		return 1
	}
}

// Param is one trainable tensor with its gradient accumulator. Optimizers
// update W in place from G.
type Param struct {
	Name string
	W    []float64
	G    []float64
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// Model is the common interface of trainable models.
type Model interface {
	// Params returns all trainable parameters. The slice and the Param
	// pointers are stable across calls.
	Params() []*Param
}

// ZeroGrads clears every gradient in the model.
func ZeroGrads(m Model) {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// xavierInit fills w with Glorot-uniform values for a fan-in/fan-out pair.
func xavierInit(rng *rand.Rand, w []float64, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range w {
		w[i] = (rng.Float64()*2 - 1) * limit
	}
}

// MSE returns the mean squared error between prediction and target, and
// writes dLoss/dPred into grad if non-nil.
func MSE(pred, target, grad []float64) float64 {
	if len(pred) != len(target) {
		panic(fmt.Sprintf("nn: MSE dimension mismatch %d vs %d", len(pred), len(target)))
	}
	var sum float64
	n := float64(len(pred))
	for i := range pred {
		d := pred[i] - target[i]
		sum += d * d
		if grad != nil {
			grad[i] = 2 * d / n
		}
	}
	return sum / n
}

// clipGrads scales gradients so their global L2 norm does not exceed max,
// stabilizing LSTM training.
func clipGrads(params []*Param, max float64) {
	var sq float64
	for _, p := range params {
		for _, g := range p.G {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm <= max || norm == 0 {
		return
	}
	scale := max / norm
	for _, p := range params {
		for i := range p.G {
			p.G[i] *= scale
		}
	}
}
