package ric

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/e2ap"
	"github.com/6g-xsec/xsec/internal/sdl"
)

// indicateUE emits an indication whose header's first byte carries the
// test's partition key (the real E2SM layer encodes a UE ID TLV; the
// dispatcher only sees the caller's ShardFunc either way).
func (n *fakeNode) indicateUE(req e2ap.RequestID, sn uint64, ue byte, payload []byte) error {
	return n.ep.Send(&e2ap.Message{
		Type: e2ap.TypeIndication, RequestID: req, IndicationSN: sn,
		IndicationHeader: []byte{ue}, IndicationMessage: payload,
	})
}

func headerKey(ind Indication) uint64 {
	if len(ind.Header) == 0 {
		return 0
	}
	return uint64(ind.Header[0])
}

// TestShardedOrderingAndFanout drives interleaved indications for many
// UEs through a sharded subscription with one concurrent consumer per
// shard, and asserts the two dispatch invariants: every indication of a
// UE lands on that UE's shard (key mod shards), and per-UE arrival order
// is preserved even though shards drain in parallel.
func TestShardedOrderingAndFanout(t *testing.T) {
	p := NewPlatform(sdl.New())
	defer p.Close()
	node := startFakeNode(t, p, "gnb-shard", false)
	waitFor(t, func() bool { return len(p.Nodes()) == 1 })

	x, err := p.RegisterXApp("shard-probe")
	if err != nil {
		t.Fatal(err)
	}
	const shards = 4
	sub, err := x.SubscribeSharded("gnb-shard", 2, []byte("trigger"),
		[]e2ap.Action{{ID: 1, Type: e2ap.ActionReport}},
		ShardedOptions{Shards: shards, Buffer: 256, Key: headerKey})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Shards() != shards || sub.NodeID() != "gnb-shard" {
		t.Fatalf("sub shape: shards=%d node=%q", sub.Shards(), sub.NodeID())
	}

	// One consumer goroutine per shard, all draining concurrently.
	type rec struct {
		ue  byte
		seq int
	}
	got := make([][]rec, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for ind := range sub.C(i) {
				var ue byte
				var seq int
				fmt.Sscanf(string(ind.Message), "%d/%d", &ue, &seq)
				got[i] = append(got[i], rec{ue, seq})
			}
		}(i)
	}

	const ues, perUE = 8, 25
	sn := uint64(0)
	for seq := 0; seq < perUE; seq++ {
		for ue := byte(1); ue <= ues; ue++ {
			sn++
			if err := node.indicateUE(sub.ID(), sn, ue, []byte(fmt.Sprintf("%d/%d", ue, seq))); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitFor(t, func() bool { return p.Metrics().IndicationsRouted.Load() >= ues*perUE })
	if err := sub.Delete(); err != nil {
		t.Fatal(err)
	}
	wg.Wait() // channels closed by Delete; consumers exit

	lastSeq := make(map[byte]int)
	total := 0
	for i := 0; i < shards; i++ {
		for _, r := range got[i] {
			if want := int(r.ue) % shards; want != i {
				t.Fatalf("UE %d observed on shard %d, want %d", r.ue, i, want)
			}
			if last, seen := lastSeq[r.ue]; seen && r.seq != last+1 {
				t.Fatalf("UE %d: seq %d after %d (per-UE order broken)", r.ue, r.seq, last)
			}
			lastSeq[r.ue] = r.seq
			total++
		}
	}
	if total != ues*perUE {
		t.Fatalf("delivered %d indications, want %d", total, ues*perUE)
	}
}

// TestShardedBackpressureIsolation stalls one shard until its bounded
// queue overflows and shows (a) the overflow drops are counted against
// that shard alone, and (b) the sibling shard keeps flowing — a slow
// consumer cannot wedge the E2 Termination or its neighbors.
func TestShardedBackpressureIsolation(t *testing.T) {
	p := NewPlatform(sdl.New())
	defer p.Close()
	node := startFakeNode(t, p, "gnb-bp", false)
	waitFor(t, func() bool { return len(p.Nodes()) == 1 })

	x, err := p.RegisterXApp("bp-probe")
	if err != nil {
		t.Fatal(err)
	}
	const buffer = 2
	sub, err := x.SubscribeSharded("gnb-bp", 2, nil, nil,
		ShardedOptions{Shards: 2, Buffer: buffer, Key: headerKey})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Delete()

	s0routed := obsShardIndications.With("bp-probe", "0", "routed")
	s0dropped := obsShardIndications.With("bp-probe", "0", "dropped")
	s1dropped := obsShardIndications.With("bp-probe", "1", "dropped")
	d0, d1 := s0dropped.Value(), s1dropped.Value()
	platformDropped := p.Metrics().IndicationsDropped.Load()

	// Nobody drains shard 0 (even keys): the first `buffer` indications
	// fill its queue, the rest hit the per-shard drop path.
	const sent = buffer + 3
	for i := 0; i < sent; i++ {
		if err := node.indicateUE(sub.ID(), uint64(i+1), 2, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return s0dropped.Value() == d0+sent-buffer })
	if got := s0routed.Value(); got < buffer {
		t.Errorf("shard 0 routed = %d, want >= %d", got, buffer)
	}

	// Shard 1 (odd keys) still delivers while its sibling is saturated.
	done := make(chan Indication, 1)
	go func() {
		ind := <-sub.C(1)
		done <- ind
	}()
	if err := node.indicateUE(sub.ID(), 100, 3, []byte("flows")); err != nil {
		t.Fatal(err)
	}
	select {
	case ind := <-done:
		if string(ind.Message) != "flows" || headerKey(ind) != 3 {
			t.Errorf("shard 1 delivery = %+v", ind)
		}
	case <-time.After(time.Second):
		t.Fatal("shard 1 starved by shard 0 backpressure")
	}
	if got := s1dropped.Value(); got != d1 {
		t.Errorf("shard 1 dropped = %d, want unchanged %d", got, d1)
	}
	// The platform-level drop counter attributes the same losses.
	if got := p.Metrics().IndicationsDropped.Load(); got != platformDropped+sent-buffer {
		t.Errorf("platform IndicationsDropped = %d, want %d", got, platformDropped+sent-buffer)
	}
}

// TestShardedDeleteClosesAllShards verifies teardown closes every shard
// stream exactly once and late indications are dropped, not delivered.
func TestShardedDeleteClosesAllShards(t *testing.T) {
	p := NewPlatform(sdl.New())
	defer p.Close()
	node := startFakeNode(t, p, "gnb-close", false)
	waitFor(t, func() bool { return len(p.Nodes()) == 1 })

	x, err := p.RegisterXApp("close-probe")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := x.SubscribeSharded("gnb-close", 2, nil, nil,
		ShardedOptions{Shards: 3, Buffer: 4, Key: headerKey})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Delete(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sub.Shards(); i++ {
		select {
		case _, ok := <-sub.C(i):
			if ok {
				t.Fatalf("shard %d delivered after Delete", i)
			}
		case <-time.After(time.Second):
			t.Fatalf("shard %d channel not closed by Delete", i)
		}
	}
	// A straggler indication for the deleted subscription is dropped at
	// the platform, never reaching closed shard queues.
	before := p.Metrics().IndicationsDropped.Load()
	if err := node.indicateUE(sub.ID(), 9, 1, []byte("late")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return p.Metrics().IndicationsDropped.Load() == before+1 })
}

// TestSubscribeShardedRequiresKey pins the option contract.
func TestSubscribeShardedRequiresKey(t *testing.T) {
	p := NewPlatform(sdl.New())
	defer p.Close()
	startFakeNode(t, p, "gnb-key", false)
	waitFor(t, func() bool { return len(p.Nodes()) == 1 })
	x, err := p.RegisterXApp("key-probe")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.SubscribeSharded("gnb-key", 2, nil, nil, ShardedOptions{}); err == nil {
		t.Fatal("SubscribeSharded accepted a nil Key")
	}
}
