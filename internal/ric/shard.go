package ric

import (
	"fmt"
	"strconv"
	"sync"

	"github.com/6g-xsec/xsec/internal/e2ap"
	"github.com/6g-xsec/xsec/internal/obs"
)

// DefaultDispatchShards is the shard-queue count SubscribeSharded uses
// when ShardedOptions.Shards is unset.
const DefaultDispatchShards = 4

// ShardFunc extracts the partition key from an indication; indications
// with equal keys are delivered to the same shard queue in arrival
// order. The E2SM layer supplies it (e.g. e2sm.PeekIndicationUE over the
// indication header) — the platform itself stays service-model agnostic.
type ShardFunc func(Indication) uint64

// ShardedOptions configures SubscribeSharded.
type ShardedOptions struct {
	// Shards is the number of bounded dispatch queues (default
	// DefaultDispatchShards).
	Shards int
	// Buffer is each shard queue's capacity (default 64). A full queue
	// drops, counted per shard.
	Buffer int
	// Key partitions indications across queues. Required.
	Key ShardFunc
}

// ShardedSubscription is a RIC subscription whose indication stream is
// partitioned into bounded per-shard queues by a caller-provided key
// (typically the UE ID from the indication header). Indications with the
// same key stay strictly ordered on one queue; different keys land on
// different queues so downstream workers — one per shard — process them
// in parallel. Backpressure is explicit: a full shard queue drops that
// indication and increments its own counter, without stalling the E2
// Termination or the other shards.
type ShardedSubscription struct {
	sub    *Subscription
	key    ShardFunc
	shards []shardQueue
}

type shardQueue struct {
	mu      sync.Mutex
	closed  bool
	ch      chan Indication
	routed  *obs.Counter
	dropped *obs.Counter
}

// SubscribeSharded establishes a RIC subscription delivering into
// per-shard bounded queues instead of a single channel. See
// ShardedSubscription for the ordering and backpressure semantics.
func (x *XApp) SubscribeSharded(nodeID string, ranFunctionID uint16, eventTrigger []byte, actions []e2ap.Action, opts ShardedOptions) (*ShardedSubscription, error) {
	if opts.Key == nil {
		return nil, fmt.Errorf("ric: SubscribeSharded requires ShardedOptions.Key")
	}
	if opts.Shards <= 0 {
		opts.Shards = DefaultDispatchShards
	}
	if opts.Buffer <= 0 {
		opts.Buffer = 64
	}
	ss := &ShardedSubscription{
		key:    opts.Key,
		shards: make([]shardQueue, opts.Shards),
	}
	for i := range ss.shards {
		lbl := strconv.Itoa(i)
		ss.shards[i].ch = make(chan Indication, opts.Buffer)
		ss.shards[i].routed = obsShardIndications.With(x.name, lbl, "routed")
		ss.shards[i].dropped = obsShardIndications.With(x.name, lbl, "dropped")
	}
	sub := &Subscription{
		nodeID:     nodeID,
		fnID:       ranFunctionID,
		xapp:       x,
		sharded:    ss,
		obsRouted:  obsIndications.With(x.name, "routed"),
		obsDropped: obsIndications.With(x.name, "dropped"),
	}
	ss.sub = sub
	if err := x.establish(sub, eventTrigger, actions, opts.Shards*opts.Buffer); err != nil {
		return nil, err
	}
	return ss, nil
}

// ID reports the subscription's E2AP request ID.
func (ss *ShardedSubscription) ID() e2ap.RequestID { return ss.sub.ID }

// NodeID reports which E2 node the subscription is bound to.
func (ss *ShardedSubscription) NodeID() string { return ss.sub.nodeID }

// Shards reports the queue count.
func (ss *ShardedSubscription) Shards() int { return len(ss.shards) }

// C returns shard i's indication stream. All shard channels close when
// the subscription is deleted or its node disconnects.
func (ss *ShardedSubscription) C(i int) <-chan Indication { return ss.shards[i].ch }

// Delete tears the subscription down on the node and closes every shard
// stream.
func (ss *ShardedSubscription) Delete() error { return ss.sub.Delete() }

// deliver routes one indication to its shard, non-blocking; false means
// the queue was full or closed (the caller counts the xApp-level drop).
func (ss *ShardedSubscription) deliver(ind Indication) bool {
	q := &ss.shards[ss.key(ind)%uint64(len(ss.shards))]
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	select {
	case q.ch <- ind:
		q.routed.Inc()
		return true
	default:
		q.dropped.Inc()
		return false
	}
}

// closeAll closes every shard channel exactly once, excluding in-flight
// deliveries.
func (ss *ShardedSubscription) closeAll() {
	for i := range ss.shards {
		q := &ss.shards[i]
		q.mu.Lock()
		if !q.closed {
			q.closed = true
			close(q.ch)
		}
		q.mu.Unlock()
	}
}
