package ric

import (
	"strings"
	"testing"

	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/sdl"
)

// The obs registry is process-global, so these tests assert deltas on
// interned series rather than absolute values.

func TestObsIndicationCounters(t *testing.T) {
	p := NewPlatform(sdl.New())
	defer p.Close()
	node := startFakeNode(t, p, "gnb-obs", false)
	waitFor(t, func() bool { return len(p.Nodes()) == 1 })

	x, err := p.RegisterXApp("obs-probe")
	if err != nil {
		t.Fatal(err)
	}
	// Buffer of one and no consumer: the first indication fills the
	// channel, the second hits the non-blocking send's drop path.
	sub, err := x.Subscribe("gnb-obs", 2, nil, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	routed := obsIndications.With("obs-probe", "routed")
	dropped := obsIndications.With("obs-probe", "dropped")
	r0, d0 := routed.Value(), dropped.Value()

	if err := node.indicate(sub.ID, 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return routed.Value() == r0+1 })
	if err := node.indicate(sub.ID, 2, []byte("b")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return dropped.Value() == d0+1 })
	if routed.Value() != r0+1 {
		t.Errorf("routed = %d, want %d", routed.Value(), r0+1)
	}

	// The per-xApp series appear in the exposition (labels render in
	// declaration order: xapp, outcome).
	var sb strings.Builder
	if err := obs.Default.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`xsec_ric_indications_total{xapp="obs-probe",outcome="routed"} `,
		`xsec_ric_indications_total{xapp="obs-probe",outcome="dropped"} `,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The routing stage left a span for the indication's trace key.
	if spans := obs.DefaultTracer.ByKey(obs.IndicationKey("gnb-obs", 1)); len(spans) == 0 {
		t.Error("no ric.route span recorded for gnb-obs/1")
	}
}

func TestObsNodeGauge(t *testing.T) {
	p := NewPlatform(sdl.New())
	defer p.Close()
	startFakeNode(t, p, "gnb-g1", false)
	waitFor(t, func() bool { return len(p.Nodes()) == 1 })
	// The gauge tracks this platform's last attach/detach; another test's
	// platform may overwrite it afterwards, so sample promptly.
	if v := obsNodes.Value(); v != 1 {
		t.Errorf("xsec_ric_e2_nodes = %v, want 1", v)
	}
}
