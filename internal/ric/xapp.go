package ric

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/6g-xsec/xsec/internal/e2ap"
	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/sdl"
)

// XApp is a control-plane application registered with the platform. It
// provides the subscription, control, and SDL primitives the paper's
// xApps (MobiWatch, LLM Analyzer) are built on.
type XApp struct {
	name      string
	requestor uint32
	platform  *Platform

	mu       sync.Mutex
	instance uint32
}

// RegisterXApp registers an xApp by name and returns its handle. Names
// must be unique.
func (p *Platform) RegisterXApp(name string) (*XApp, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	if _, dup := p.xapps[name]; dup {
		return nil, fmt.Errorf("ric: xApp %q already registered", name)
	}
	p.nextReq++
	x := &XApp{name: name, requestor: p.nextReq, platform: p}
	p.xapps[name] = x
	return x, nil
}

// Name returns the xApp name.
func (x *XApp) Name() string { return x.name }

// SDL returns the shared data layer.
func (x *XApp) SDL() *sdl.Store { return x.platform.store }

// Subscription is an active RIC subscription. Indications arrive on C
// until Delete is called or the node disconnects, after which C is closed.
type Subscription struct {
	ID     e2ap.RequestID
	nodeID string
	fnID   uint16
	xapp   *XApp

	// sendMu serializes deliveries against channel close: the router
	// may be mid-send on another goroutine when Delete or a node detach
	// closes the stream. Sends are non-blocking, so the lock is never
	// held across a wait.
	sendMu sync.Mutex
	closed bool
	ch     chan Indication

	// sharded, when non-nil, replaces the single channel with per-shard
	// bounded queues (see SubscribeSharded); ch is nil then.
	sharded *ShardedSubscription

	// Interned per-xApp routing counters; resolved once at Subscribe
	// so the delivery hot path performs no label lookup.
	obsRouted  *obs.Counter
	obsDropped *obs.Counter
}

// C is the indication stream. It is nil for sharded subscriptions; use
// ShardedSubscription.C instead.
func (s *Subscription) C() <-chan Indication { return s.ch }

// deliver attempts a non-blocking send; it reports false when the
// buffer is full or the subscription is already closed.
func (s *Subscription) deliver(ind Indication) bool {
	if s.sharded != nil {
		return s.sharded.deliver(ind)
	}
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if s.closed {
		return false
	}
	select {
	case s.ch <- ind:
		return true
	default:
		return false
	}
}

// closeCh closes the indication stream exactly once, excluding any
// in-flight deliver.
func (s *Subscription) closeCh() {
	if s.sharded != nil {
		s.sharded.closeAll()
		return
	}
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
}

// NodeID reports which E2 node the subscription is bound to.
func (s *Subscription) NodeID() string { return s.nodeID }

func (x *XApp) nextRequestID() e2ap.RequestID {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.instance++
	return e2ap.RequestID{Requestor: x.requestor, Instance: x.instance}
}

// request performs one request/response E2 procedure against a node
// under the platform's default timeout.
func (p *Platform) request(nodeID string, msg *e2ap.Message) (*e2ap.Message, error) {
	return p.requestCtx(context.Background(), nodeID, msg)
}

// requestCtx performs one request/response E2 procedure against a node.
// The procedure is abandoned — its pending slot cleared, a late response
// dropped — when ctx is done or the platform timeout elapses, whichever
// comes first; a hung node therefore cannot wedge the caller.
func (p *Platform) requestCtx(ctx context.Context, nodeID string, msg *e2ap.Message) (*e2ap.Message, error) {
	p.mu.Lock()
	node := p.nodes[nodeID]
	if node == nil {
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNoSuchNode, nodeID)
	}
	ch := make(chan *e2ap.Message, 1)
	p.pending[msg.RequestID] = ch
	p.mu.Unlock()

	abandon := func() {
		p.mu.Lock()
		delete(p.pending, msg.RequestID)
		p.mu.Unlock()
	}
	if err := node.ep.Send(msg); err != nil {
		abandon()
		return nil, fmt.Errorf("ric: sending %s to %s: %w", msg.Type, nodeID, err)
	}
	timer := time.NewTimer(p.timeout)
	defer timer.Stop()
	select {
	case resp := <-ch:
		return resp, nil
	case <-ctx.Done():
		abandon()
		return nil, fmt.Errorf("%s to %s: %w (%w)", msg.Type, nodeID, ErrTimeout, ctx.Err())
	case <-timer.C:
		abandon()
		return nil, fmt.Errorf("%s to %s: %w", msg.Type, nodeID, ErrTimeout)
	}
}

// Subscribe establishes a RIC subscription on nodeID's RAN function. The
// returned subscription's channel buffers buffer indications; a full
// buffer drops (counted in Metrics), matching the RMR behavior of the OSC
// platform.
func (x *XApp) Subscribe(nodeID string, ranFunctionID uint16, eventTrigger []byte, actions []e2ap.Action, buffer int) (*Subscription, error) {
	sub := &Subscription{
		nodeID:     nodeID,
		fnID:       ranFunctionID,
		xapp:       x,
		ch:         make(chan Indication, buffer),
		obsRouted:  obsIndications.With(x.name, "routed"),
		obsDropped: obsIndications.With(x.name, "dropped"),
	}
	if err := x.establish(sub, eventTrigger, actions, buffer); err != nil {
		return nil, err
	}
	return sub, nil
}

// establish runs the subscription handshake for a prepared Subscription:
// it assigns the request ID, registers the subscription before sending
// (so indications racing the response are kept), and rolls the
// registration back on failure.
func (x *XApp) establish(sub *Subscription, eventTrigger []byte, actions []e2ap.Action, buffer int) error {
	reqID := x.nextRequestID()
	sub.ID = reqID
	x.platform.mu.Lock()
	x.platform.subs[reqID] = sub
	x.platform.mu.Unlock()

	resp, err := x.platform.request(sub.nodeID, &e2ap.Message{
		Type:          e2ap.TypeSubscriptionRequest,
		RequestID:     reqID,
		RANFunctionID: sub.fnID,
		EventTrigger:  eventTrigger,
		Actions:       actions,
	})
	if err != nil || resp.Type != e2ap.TypeSubscriptionResponse {
		x.platform.mu.Lock()
		delete(x.platform.subs, reqID)
		x.platform.mu.Unlock()
		x.platform.metrics.SubscriptionsFail.Add(1)
		obsProcedures.With("subscribe", "fail").Inc()
		if err != nil {
			return err
		}
		return fmt.Errorf("%w: %s", ErrSubscriptionFailed, resp.Cause)
	}
	x.platform.metrics.SubscriptionsOK.Add(1)
	obsProcedures.With("subscribe", "ok").Inc()
	obs.L().Info("ric: subscription established",
		"xapp", x.name, "node", sub.nodeID, "function", sub.fnID, "buffer", buffer)
	return nil
}

// Delete tears the subscription down on the node and closes the stream.
func (s *Subscription) Delete() error {
	p := s.xapp.platform
	p.mu.Lock()
	delete(p.subs, s.ID)
	p.mu.Unlock()
	s.closeCh()

	resp, err := p.request(s.nodeID, &e2ap.Message{
		Type:          e2ap.TypeSubscriptionDeleteRequest,
		RequestID:     s.ID,
		RANFunctionID: s.fnID,
	})
	if err != nil {
		return err
	}
	if resp.Type != e2ap.TypeSubscriptionDeleteResponse {
		return fmt.Errorf("%w: %s", ErrSubscriptionFailed, resp.Cause)
	}
	return nil
}

// Control sends a RIC Control request (the closed-loop feedback primitive
// of Figure 3) and waits for the acknowledgment under the platform's
// default procedure timeout.
func (x *XApp) Control(nodeID string, ranFunctionID uint16, header, message []byte) error {
	return x.ControlContext(context.Background(), nodeID, ranFunctionID, header, message)
}

// ControlContext is Control with caller-supplied cancellation: the
// request is abandoned when ctx is done (its deadline acts as a
// per-request timeout tighter than the platform default), so a hung gNB
// cannot wedge an issuing control loop. Timeouts and cancellations are
// counted as control failures.
func (x *XApp) ControlContext(ctx context.Context, nodeID string, ranFunctionID uint16, header, message []byte) error {
	reqID := x.nextRequestID()
	resp, err := x.platform.requestCtx(ctx, nodeID, &e2ap.Message{
		Type:           e2ap.TypeControlRequest,
		RequestID:      reqID,
		RANFunctionID:  ranFunctionID,
		ControlHeader:  header,
		ControlMessage: message,
	})
	if err != nil {
		x.platform.metrics.ControlsFail.Add(1)
		obsProcedures.With("control", "fail").Inc()
		return err
	}
	if resp.Type != e2ap.TypeControlAck {
		x.platform.metrics.ControlsFail.Add(1)
		obsProcedures.With("control", "fail").Inc()
		return fmt.Errorf("%w: %s", ErrControlFailed, resp.Cause)
	}
	x.platform.metrics.ControlsOK.Add(1)
	obsProcedures.With("control", "ok").Inc()
	return nil
}
