package ric

import (
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/e2ap"
	"github.com/6g-xsec/xsec/internal/sdl"
	"github.com/6g-xsec/xsec/internal/wire"
)

// fakeNode is a minimal E2 agent: it performs setup, admits all
// subscriptions, acks all controls, and exposes a method to emit
// indications toward the RIC.
type fakeNode struct {
	id     string
	ep     *e2ap.Endpoint
	subs   chan e2ap.RequestID
	reject bool
	done   chan struct{}
}

func startFakeNode(t *testing.T, p *Platform, id string, reject bool) *fakeNode {
	t.Helper()
	ricEnd, nodeEnd := e2ap.Pipe()
	n := &fakeNode{id: id, ep: nodeEnd, subs: make(chan e2ap.RequestID, 16), reject: reject, done: make(chan struct{})}
	go p.AttachNode(ricEnd)

	if err := nodeEnd.Send(&e2ap.Message{Type: e2ap.TypeE2SetupRequest, NodeID: id,
		RANFunctions: []e2ap.RANFunction{{ID: 2, OID: "oid"}}}); err != nil {
		t.Fatalf("setup send: %v", err)
	}
	resp, err := nodeEnd.Recv()
	if err != nil || resp.Type != e2ap.TypeE2SetupResponse {
		t.Fatalf("setup response: %+v err=%v", resp, err)
	}
	go n.serve()
	return n
}

func (n *fakeNode) serve() {
	defer close(n.done)
	for {
		msg, err := n.ep.Recv()
		if err != nil {
			return
		}
		switch msg.Type {
		case e2ap.TypeSubscriptionRequest:
			if n.reject {
				n.ep.Send(&e2ap.Message{Type: e2ap.TypeSubscriptionFailure, RequestID: msg.RequestID, Cause: "rejected by test"})
				continue
			}
			n.ep.Send(&e2ap.Message{Type: e2ap.TypeSubscriptionResponse, RequestID: msg.RequestID})
			n.subs <- msg.RequestID
		case e2ap.TypeSubscriptionDeleteRequest:
			n.ep.Send(&e2ap.Message{Type: e2ap.TypeSubscriptionDeleteResponse, RequestID: msg.RequestID})
		case e2ap.TypeControlRequest:
			if string(msg.ControlMessage) == "fail" {
				n.ep.Send(&e2ap.Message{Type: e2ap.TypeControlFailure, RequestID: msg.RequestID, Cause: "cannot"})
			} else {
				n.ep.Send(&e2ap.Message{Type: e2ap.TypeControlAck, RequestID: msg.RequestID})
			}
		}
	}
}

func (n *fakeNode) indicate(req e2ap.RequestID, sn uint64, payload []byte) error {
	return n.ep.Send(&e2ap.Message{
		Type: e2ap.TypeIndication, RequestID: req, IndicationSN: sn,
		IndicationHeader: []byte("h"), IndicationMessage: payload,
	})
}

func TestE2SetupAndNodeListing(t *testing.T) {
	p := NewPlatform(sdl.New())
	defer p.Close()
	startFakeNode(t, p, "gnb-1", false)
	startFakeNode(t, p, "gnb-2", false)

	waitFor(t, func() bool { return len(p.Nodes()) == 2 })
	nodes := p.Nodes()
	if nodes[0].NodeID != "gnb-1" || nodes[1].NodeID != "gnb-2" {
		t.Errorf("nodes = %+v", nodes)
	}
	if len(nodes[0].RANFunctions) != 1 || nodes[0].RANFunctions[0].ID != 2 {
		t.Errorf("RAN functions = %+v", nodes[0].RANFunctions)
	}
}

func TestDuplicateNodeRejected(t *testing.T) {
	p := NewPlatform(sdl.New())
	defer p.Close()
	startFakeNode(t, p, "gnb-1", false)
	waitFor(t, func() bool { return len(p.Nodes()) == 1 })

	ricEnd, nodeEnd := e2ap.Pipe()
	go p.AttachNode(ricEnd)
	nodeEnd.Send(&e2ap.Message{Type: e2ap.TypeE2SetupRequest, NodeID: "gnb-1"})
	resp, err := nodeEnd.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != e2ap.TypeE2SetupFailure {
		t.Errorf("got %s, want E2SetupFailure", resp.Type)
	}
}

func TestBadFirstMessageRejected(t *testing.T) {
	p := NewPlatform(sdl.New())
	defer p.Close()
	ricEnd, nodeEnd := e2ap.Pipe()
	errc := make(chan error, 1)
	go func() { errc <- p.AttachNode(ricEnd) }()
	nodeEnd.Send(&e2ap.Message{Type: e2ap.TypeErrorIndication})
	resp, err := nodeEnd.Recv()
	if err != nil || resp.Type != e2ap.TypeE2SetupFailure {
		t.Errorf("resp=%+v err=%v", resp, err)
	}
	if err := <-errc; err == nil {
		t.Error("AttachNode returned nil for bad handshake")
	}
}

func TestSubscribeAndIndications(t *testing.T) {
	p := NewPlatform(sdl.New())
	defer p.Close()
	node := startFakeNode(t, p, "gnb-1", false)
	waitFor(t, func() bool { return len(p.Nodes()) == 1 })

	x, err := p.RegisterXApp("mobiwatch")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := x.Subscribe("gnb-1", 2, []byte("trigger"), []e2ap.Action{{ID: 1, Type: e2ap.ActionReport}}, 16)
	if err != nil {
		t.Fatal(err)
	}
	for sn := uint64(1); sn <= 3; sn++ {
		if err := node.indicate(sub.ID, sn, []byte(fmt.Sprintf("payload-%d", sn))); err != nil {
			t.Fatal(err)
		}
	}
	for sn := uint64(1); sn <= 3; sn++ {
		select {
		case ind := <-sub.C():
			if ind.SN != sn || string(ind.Message) != fmt.Sprintf("payload-%d", sn) {
				t.Errorf("indication %d = %+v", sn, ind)
			}
			if ind.NodeID != "gnb-1" || ind.ReceivedAt.IsZero() {
				t.Errorf("indication metadata = %+v", ind)
			}
		case <-time.After(time.Second):
			t.Fatal("indication timeout")
		}
	}
	if got := p.Metrics().IndicationsRouted.Load(); got != 3 {
		t.Errorf("IndicationsRouted = %d", got)
	}
}

func TestSubscriptionRejected(t *testing.T) {
	p := NewPlatform(sdl.New())
	defer p.Close()
	startFakeNode(t, p, "gnb-1", true)
	waitFor(t, func() bool { return len(p.Nodes()) == 1 })

	x, _ := p.RegisterXApp("x")
	if _, err := x.Subscribe("gnb-1", 2, nil, nil, 1); !errors.Is(err, ErrSubscriptionFailed) {
		t.Errorf("err = %v, want ErrSubscriptionFailed", err)
	}
	if got := p.Metrics().SubscriptionsFail.Load(); got != 1 {
		t.Errorf("SubscriptionsFail = %d", got)
	}
}

func TestSubscribeUnknownNode(t *testing.T) {
	p := NewPlatform(sdl.New())
	defer p.Close()
	x, _ := p.RegisterXApp("x")
	if _, err := x.Subscribe("nowhere", 2, nil, nil, 1); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("err = %v, want ErrNoSuchNode", err)
	}
}

func TestSubscriptionDelete(t *testing.T) {
	p := NewPlatform(sdl.New())
	defer p.Close()
	node := startFakeNode(t, p, "gnb-1", false)
	waitFor(t, func() bool { return len(p.Nodes()) == 1 })

	x, _ := p.RegisterXApp("x")
	sub, err := x.Subscribe("gnb-1", 2, nil, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Delete(); err != nil {
		t.Fatal(err)
	}
	// Channel closed.
	if _, open := <-sub.C(); open {
		t.Error("channel open after delete")
	}
	// Indications after delete are dropped, not delivered.
	node.indicate(sub.ID, 9, []byte("late"))
	waitFor(t, func() bool { return p.Metrics().IndicationsDropped.Load() == 1 })
}

func TestControlRoundTrip(t *testing.T) {
	p := NewPlatform(sdl.New())
	defer p.Close()
	startFakeNode(t, p, "gnb-1", false)
	waitFor(t, func() bool { return len(p.Nodes()) == 1 })

	x, _ := p.RegisterXApp("x")
	if err := x.Control("gnb-1", 3, []byte("hdr"), []byte("release")); err != nil {
		t.Fatal(err)
	}
	if err := x.Control("gnb-1", 3, nil, []byte("fail")); !errors.Is(err, ErrControlFailed) {
		t.Errorf("err = %v, want ErrControlFailed", err)
	}
	m := p.Metrics()
	if m.ControlsOK.Load() != 1 || m.ControlsFail.Load() != 1 {
		t.Errorf("controls ok=%d fail=%d", m.ControlsOK.Load(), m.ControlsFail.Load())
	}
}

func TestControlContextTimeout(t *testing.T) {
	p := NewPlatform(sdl.New(), WithTimeout(5*time.Second))
	defer p.Close()

	// A node that completes setup but never acks controls: a hung gNB.
	ricEnd, nodeEnd := e2ap.Pipe()
	go p.AttachNode(ricEnd)
	nodeEnd.Send(&e2ap.Message{Type: e2ap.TypeE2SetupRequest, NodeID: "hung"})
	if _, err := nodeEnd.Recv(); err != nil {
		t.Fatal(err)
	}
	go func() { // swallow the control request silently
		for {
			if _, err := nodeEnd.Recv(); err != nil {
				return
			}
		}
	}()

	x, _ := p.RegisterXApp("x")
	failsBefore := obsProcedures.With("control", "fail").Value()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := x.ControlContext(ctx, "hung", 3, nil, []byte("block"))
	if !errors.Is(err, ErrTimeout) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want ErrTimeout wrapping context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("control took %v; per-request deadline not honored", elapsed)
	}
	if got := p.Metrics().ControlsFail.Load(); got != 1 {
		t.Errorf("ControlsFail = %d", got)
	}
	if got := obsProcedures.With("control", "fail").Value() - failsBefore; got != 1 {
		t.Errorf("control/fail procedure metric delta = %d", got)
	}
	// The pending slot is reclaimed: a late ack no longer matches.
	p.mu.Lock()
	pending := len(p.pending)
	p.mu.Unlock()
	if pending != 0 {
		t.Errorf("pending requests after timeout = %d", pending)
	}
}

func TestNodeDisconnectClosesSubscriptions(t *testing.T) {
	p := NewPlatform(sdl.New())
	defer p.Close()
	node := startFakeNode(t, p, "gnb-1", false)
	waitFor(t, func() bool { return len(p.Nodes()) == 1 })

	x, _ := p.RegisterXApp("x")
	sub, err := x.Subscribe("gnb-1", 2, nil, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	node.ep.Close()
	select {
	case _, open := <-sub.C():
		if open {
			t.Error("expected closed channel after node disconnect")
		}
	case <-time.After(time.Second):
		t.Fatal("channel not closed after disconnect")
	}
	waitFor(t, func() bool { return len(p.Nodes()) == 0 })
}

func TestXAppNamesUnique(t *testing.T) {
	p := NewPlatform(sdl.New())
	defer p.Close()
	if _, err := p.RegisterXApp("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RegisterXApp("a"); err == nil {
		t.Error("duplicate xApp name accepted")
	}
}

func TestProcedureTimeout(t *testing.T) {
	p := NewPlatform(sdl.New(), WithTimeout(50*time.Millisecond))
	defer p.Close()

	// A node that completes setup but never answers subscriptions.
	ricEnd, nodeEnd := e2ap.Pipe()
	go p.AttachNode(ricEnd)
	nodeEnd.Send(&e2ap.Message{Type: e2ap.TypeE2SetupRequest, NodeID: "mute"})
	if _, err := nodeEnd.Recv(); err != nil {
		t.Fatal(err)
	}
	go func() { // swallow the subscription request silently
		for {
			if _, err := nodeEnd.Recv(); err != nil {
				return
			}
		}
	}()

	x, _ := p.RegisterXApp("x")
	if _, err := x.Subscribe("mute", 2, nil, nil, 1); !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestServeE2OverTCP(t *testing.T) {
	p := NewPlatform(sdl.New())
	defer p.Close()
	l, err := wire.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go p.ServeE2(l)

	conn, err := wire.Dial(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ep := e2ap.NewEndpoint(conn)
	defer ep.Close()
	if err := ep.Send(&e2ap.Message{Type: e2ap.TypeE2SetupRequest, NodeID: "gnb-tcp"}); err != nil {
		t.Fatal(err)
	}
	resp, err := ep.Recv()
	if err != nil || resp.Type != e2ap.TypeE2SetupResponse {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
	waitFor(t, func() bool { return len(p.Nodes()) == 1 })
}

func TestPlatformClose(t *testing.T) {
	p := NewPlatform(sdl.New())
	node := startFakeNode(t, p, "gnb-1", false)
	waitFor(t, func() bool { return len(p.Nodes()) == 1 })
	p.Close()
	select {
	case <-node.done:
	case <-time.After(time.Second):
		t.Fatal("node serve loop did not stop on platform close")
	}
	if _, err := p.RegisterXApp("late"); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	p.Close() // idempotent
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not met within deadline")
}

var _ = io.EOF
