// Package ric implements the near-real-time RAN Intelligent Controller
// platform of the 6G-XSec framework (§2.1, §3 of the paper): the E2
// Termination that gNBs connect to, the subscription manager that pairs
// xApp requests with E2 nodes, the message routing that dispatches RIC
// Indications to subscribed xApps (the OSC RMR analog), the Shared Data
// Layer handle, and the xApp registration API used by MobiWatch and the
// LLM Analyzer.
//
// The platform accepts E2 connections either over TCP (wire.Listen) or
// in-process (e2ap.Pipe), so integration tests and the testbed binary use
// identical code paths.
package ric

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/6g-xsec/xsec/internal/e2ap"
	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/prov"
	"github.com/6g-xsec/xsec/internal/sdl"
	"github.com/6g-xsec/xsec/internal/wire"
)

// Platform-level observability. Indication routing is labeled per xApp
// so backpressure loss is attributable: the per-subscription handles
// are interned at Subscribe time and the delivery path pays one atomic
// add per indication.
var (
	obsIndications = obs.NewCounterVec("xsec_ric_indications_total",
		"RIC indications routed toward xApp subscriptions, by xApp and outcome.", "xapp", "outcome")
	obsUnmatched = obsIndications.With("_none", "unmatched")
	// Per-shard dispatch counters make backpressure attributable to the
	// exact queue that filled, not just the xApp.
	obsShardIndications = obs.NewCounterVec("xsec_ric_shard_indications_total",
		"Indications entering per-shard xApp dispatch queues, by xApp, shard, and outcome.",
		"xapp", "shard", "outcome")
	obsNodes = obs.NewGauge("xsec_ric_e2_nodes",
		"Currently connected E2 nodes.")
	obsProcedures = obs.NewCounterVec("xsec_ric_procedures_total",
		"E2 procedures initiated by the platform, by procedure and outcome.", "procedure", "outcome")
)

// Errors returned by platform operations.
var (
	ErrNoSuchNode         = errors.New("ric: no such E2 node")
	ErrSubscriptionFailed = errors.New("ric: subscription rejected by E2 node")
	ErrControlFailed      = errors.New("ric: control rejected by E2 node")
	ErrTimeout            = errors.New("ric: E2 procedure timed out")
	ErrClosed             = errors.New("ric: platform closed")
)

// DefaultProcedureTimeout bounds subscription and control round trips.
// The near-RT control loop must complete within 10 ms – 1 s (§2.1), so a
// second is the hard ceiling.
const DefaultProcedureTimeout = time.Second

// Indication is a routed RIC Indication delivered to an xApp handler.
type Indication struct {
	NodeID    string
	RequestID e2ap.RequestID
	ActionID  uint16
	SN        uint64
	Header    []byte
	Message   []byte
	// ReceivedAt is stamped by the E2 Termination on arrival, enabling
	// control-loop latency accounting.
	ReceivedAt time.Time
}

// NodeInfo describes a connected E2 node.
type NodeInfo struct {
	NodeID       string
	RANFunctions []e2ap.RANFunction
	ConnectedAt  time.Time
}

// Metrics exposes platform counters.
type Metrics struct {
	IndicationsRouted  atomic.Uint64
	IndicationsDropped atomic.Uint64
	SubscriptionsOK    atomic.Uint64
	SubscriptionsFail  atomic.Uint64
	ControlsOK         atomic.Uint64
	ControlsFail       atomic.Uint64
}

// Platform is the near-RT RIC.
type Platform struct {
	store   *sdl.Store
	timeout time.Duration
	clock   func() time.Time

	mu      sync.Mutex
	nodes   map[string]*nodeConn
	subs    map[e2ap.RequestID]*Subscription
	pending map[e2ap.RequestID]chan *e2ap.Message
	xapps   map[string]*XApp
	nextReq uint32
	closed  bool

	metrics Metrics
}

type nodeConn struct {
	info NodeInfo
	ep   *e2ap.Endpoint
}

// Option configures the platform.
type Option func(*Platform)

// WithTimeout overrides the E2 procedure timeout.
func WithTimeout(d time.Duration) Option {
	return func(p *Platform) { p.timeout = d }
}

// WithClock injects a clock (tests).
func WithClock(clock func() time.Time) Option {
	return func(p *Platform) { p.clock = clock }
}

// NewPlatform creates a RIC platform around an SDL store (pass sdl.New()
// unless sharing a store across services).
func NewPlatform(store *sdl.Store, opts ...Option) *Platform {
	p := &Platform{
		store:   store,
		timeout: DefaultProcedureTimeout,
		clock:   time.Now,
		nodes:   make(map[string]*nodeConn),
		subs:    make(map[e2ap.RequestID]*Subscription),
		pending: make(map[e2ap.RequestID]chan *e2ap.Message),
		xapps:   make(map[string]*XApp),
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// SDL returns the shared data layer.
func (p *Platform) SDL() *sdl.Store { return p.store }

// Metrics returns the live counter set.
func (p *Platform) Metrics() *Metrics { return &p.metrics }

// Nodes lists connected E2 nodes sorted by ID.
func (p *Platform) Nodes() []NodeInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]NodeInfo, 0, len(p.nodes))
	for _, n := range p.nodes {
		out = append(out, n.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].NodeID < out[j].NodeID })
	return out
}

// ServeE2 accepts gNB connections on a framed listener until it closes.
func (p *Platform) ServeE2(l *wire.Listener) error {
	return wire.Serve(l, func(c *wire.Conn) {
		if err := p.AttachNode(e2ap.NewEndpoint(c)); err != nil && !errors.Is(err, io.EOF) {
			// Connection-level failure; the node is already detached.
			_ = err
		}
	})
}

// AttachNode runs the E2 Termination for one node connection: it performs
// the E2 Setup handshake, then routes messages until the peer disconnects.
// It blocks; run it in a goroutine for loopback deployments.
func (p *Platform) AttachNode(ep *e2ap.Endpoint) error {
	first, err := ep.Recv()
	if err != nil {
		ep.Close()
		return fmt.Errorf("ric: awaiting E2 setup: %w", err)
	}
	if first.Type != e2ap.TypeE2SetupRequest || first.NodeID == "" {
		ep.Send(&e2ap.Message{Type: e2ap.TypeE2SetupFailure, Cause: "expected E2SetupRequest with node ID"})
		ep.Close()
		return fmt.Errorf("ric: first message %s: %w", first.Type, e2ap.ErrBadMessage)
	}

	node := &nodeConn{
		info: NodeInfo{NodeID: first.NodeID, RANFunctions: first.RANFunctions, ConnectedAt: p.clock()},
		ep:   ep,
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ep.Close()
		return ErrClosed
	}
	if _, dup := p.nodes[first.NodeID]; dup {
		p.mu.Unlock()
		ep.Send(&e2ap.Message{Type: e2ap.TypeE2SetupFailure, Cause: "duplicate node ID"})
		ep.Close()
		return fmt.Errorf("ric: node %q already connected", first.NodeID)
	}
	p.nodes[first.NodeID] = node
	obsNodes.Set(float64(len(p.nodes)))
	p.mu.Unlock()
	obs.L().Info("ric: E2 node attached", "node", first.NodeID, "functions", len(first.RANFunctions))

	if err := ep.Send(&e2ap.Message{Type: e2ap.TypeE2SetupResponse, NodeID: "ric-0", TransactionID: first.TransactionID}); err != nil {
		p.detachNode(first.NodeID)
		return fmt.Errorf("ric: E2 setup response: %w", err)
	}

	for {
		msg, err := ep.Recv()
		if err != nil {
			p.detachNode(first.NodeID)
			return err
		}
		p.route(node, msg)
	}
}

func (p *Platform) detachNode(nodeID string) {
	p.mu.Lock()
	node, ok := p.nodes[nodeID]
	if ok {
		delete(p.nodes, nodeID)
		obsNodes.Set(float64(len(p.nodes)))
	}
	// Tear down subscriptions bound to this node.
	var gone []*Subscription
	for id, sub := range p.subs {
		if sub.nodeID == nodeID {
			gone = append(gone, sub)
			delete(p.subs, id)
		}
	}
	p.mu.Unlock()
	if ok {
		node.ep.Close()
	}
	for _, sub := range gone {
		sub.closeCh()
	}
}

// route dispatches one node→RIC message.
func (p *Platform) route(node *nodeConn, msg *e2ap.Message) {
	switch msg.Type {
	case e2ap.TypeIndication:
		p.mu.Lock()
		sub := p.subs[msg.RequestID]
		p.mu.Unlock()
		if sub == nil {
			p.metrics.IndicationsDropped.Add(1)
			obsUnmatched.Inc()
			prov.Record(prov.Event{
				Chain: prov.ChainID{Node: node.info.NodeID, SN: msg.IndicationSN},
				Kind:  prov.KindIndication,
				At:    p.clock(),
				Label: "unmatched",
			})
			obs.L().Debug("ric: indication without subscription dropped",
				"node", node.info.NodeID, "request", msg.RequestID)
			return
		}
		ind := Indication{
			NodeID:     node.info.NodeID,
			RequestID:  msg.RequestID,
			ActionID:   msg.ActionID,
			SN:         msg.IndicationSN,
			Header:     msg.IndicationHeader,
			Message:    msg.IndicationMessage,
			ReceivedAt: p.clock(),
		}
		routeLabel := "routed"
		if sub.deliver(ind) {
			p.metrics.IndicationsRouted.Add(1)
			sub.obsRouted.Inc()
		} else {
			routeLabel = "dropped"
			// The xApp's buffer is full: the loss is counted per xApp
			// and logged so backpressure is visible, not silent.
			p.metrics.IndicationsDropped.Add(1)
			sub.obsDropped.Inc()
			obs.L().Warn("ric: xApp subscription buffer full, indication dropped",
				"xapp", sub.xapp.name, "node", node.info.NodeID, "sn", msg.IndicationSN)
		}
		obs.RecordSpan(obs.IndicationKey(node.info.NodeID, msg.IndicationSN),
			"ric.route", ind.ReceivedAt, p.clock())
		prov.Record(prov.Event{
			Chain: prov.ChainID{Node: node.info.NodeID, SN: msg.IndicationSN},
			Kind:  prov.KindIndication,
			At:    ind.ReceivedAt,
			Label: routeLabel,
		})
	case e2ap.TypeSubscriptionResponse, e2ap.TypeSubscriptionFailure,
		e2ap.TypeSubscriptionDeleteResponse,
		e2ap.TypeControlAck, e2ap.TypeControlFailure:
		p.mu.Lock()
		ch := p.pending[msg.RequestID]
		delete(p.pending, msg.RequestID)
		p.mu.Unlock()
		if ch != nil {
			ch <- msg
		}
	case e2ap.TypeErrorIndication:
		// Logged by counters only; a production RIC would alarm here.
		p.metrics.ControlsFail.Add(1)
	}
}

// Close shuts the platform down, closing node connections and
// subscription channels.
func (p *Platform) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	nodes := make([]string, 0, len(p.nodes))
	for id := range p.nodes {
		nodes = append(nodes, id)
	}
	p.mu.Unlock()
	for _, id := range nodes {
		p.detachNode(id)
	}
}
