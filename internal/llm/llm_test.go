package llm

import (
	"context"
	"strings"
	"testing"

	"github.com/6g-xsec/xsec/internal/dataset"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/ue"
)

// mixed generates the shared attack dataset for the tests.
func mixed(t *testing.T) *dataset.Labeled {
	t.Helper()
	l, err := dataset.GenerateMixed(dataset.MixedConfig{
		BenignConfig:       dataset.BenignConfig{Fleet: 8, Seed: 17},
		InstancesPerAttack: 1,
		BenignBetween:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// attackWindow extracts the telemetry of one attack event.
func attackWindow(l *dataset.Labeled, kind ue.AttackKind) mobiflow.Trace {
	var w mobiflow.Trace
	for i, r := range l.Trace {
		if l.AttackOf[i] == int(kind) {
			w = append(w, r)
		}
	}
	return w
}

// benignWindow extracts a window of benign records.
func benignWindow(l *dataset.Labeled, skip, n int) mobiflow.Trace {
	var w mobiflow.Trace
	seen := 0
	for i, r := range l.Trace {
		if l.AttackOf[i] == -1 {
			seen++
			if seen > skip {
				w = append(w, r)
				if len(w) == n {
					break
				}
			}
		}
	}
	return w
}

var expectedClass = map[ue.AttackKind]AttackClass{
	ue.AttackBTSDoS:               ClassBTSDoS,
	ue.AttackBlindDoS:             ClassBlindDoS,
	ue.AttackUplinkIDExtraction:   ClassUplinkIDExtraction,
	ue.AttackDownlinkIDExtraction: ClassDownlinkIDExtraction,
	ue.AttackNullCipher:           ClassNullCipher,
}

func TestPromptRenderAndExtract(t *testing.T) {
	l := mixed(t)
	w := benignWindow(l, 0, 6)
	prompt := RenderPrompt(w)
	for _, want := range []string{"AI security analyst", "DATA:", "anomalous or benign", "top 3"} {
		if !strings.Contains(prompt, want) {
			t.Errorf("prompt missing %q", want)
		}
	}
	lines, err := ExtractData(prompt)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 6 {
		t.Errorf("extracted %d lines, want 6", len(lines))
	}
	if _, err := ExtractData("no data here"); err == nil {
		t.Error("prompt without DATA accepted")
	}
}

func TestParseLine(t *testing.T) {
	line := "#42 UL NAS IdentityResponse rnti=0x4601 tmsi=0xCAFEBABE supi=imsi-001010000000001(PLAINTEXT) cipher=NEA0 integ=NIA0 sec=off cause=mo-Signalling rrc=CONNECTED nas=REG_INITIATED OUT-OF-ORDER"
	rec, err := parseLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if rec.seq != 42 || rec.dir != "UL" || rec.layer != "NAS" || rec.msg != "IdentityResponse" {
		t.Errorf("parsed %+v", rec)
	}
	if rec.rnti != "0x4601" || rec.tmsi != "0xCAFEBABE" || !rec.supiPlain {
		t.Errorf("identity fields: %+v", rec)
	}
	if !rec.cipherNull || !rec.integNull || rec.secOn || !rec.outOfOrder || rec.retx {
		t.Errorf("flags: %+v", rec)
	}
	if _, err := parseLine("garbage"); err == nil {
		t.Error("garbage line accepted")
	}
}

func TestEngineDetectsEveryAttack(t *testing.T) {
	l := mixed(t)
	for kind, wantClass := range expectedClass {
		w := attackWindow(l, kind)
		if len(w) == 0 {
			t.Fatalf("%v: empty window", kind)
		}
		findings, err := AnalyzePrompt(RenderPrompt(w))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		found := false
		for _, f := range findings {
			if f.Class == wantClass {
				found = true
			}
		}
		if !found {
			t.Errorf("%v: engine findings %v lack %v", kind, findings, wantClass)
		}
	}
}

func TestEngineBenignHasNoFindings(t *testing.T) {
	l := mixed(t)
	for skip := 0; skip < 40; skip += 20 {
		w := benignWindow(l, skip, 15)
		findings, err := AnalyzePrompt(RenderPrompt(w))
		if err != nil {
			t.Fatal(err)
		}
		if len(findings) != 0 {
			t.Errorf("benign window (skip %d) produced findings %v", skip, findings)
		}
	}
}

// TestTable3Matrix verifies the five personalities reproduce the paper's
// Table 3 exactly: which model correctly classifies which attack.
func TestTable3Matrix(t *testing.T) {
	l := mixed(t)

	// Table 3 of the paper: rows = attacks, columns = models.
	want := map[ue.AttackKind]map[string]bool{
		ue.AttackBTSDoS:               {"chatgpt-4o": true, "gemini": true, "copilot": true, "llama3": false, "claude-3-sonnet": false},
		ue.AttackBlindDoS:             {"chatgpt-4o": true, "gemini": false, "copilot": false, "llama3": true, "claude-3-sonnet": false},
		ue.AttackUplinkIDExtraction:   {"chatgpt-4o": false, "gemini": false, "copilot": false, "llama3": false, "claude-3-sonnet": true},
		ue.AttackDownlinkIDExtraction: {"chatgpt-4o": true, "gemini": true, "copilot": false, "llama3": true, "claude-3-sonnet": true},
		ue.AttackNullCipher:           {"chatgpt-4o": true, "gemini": true, "copilot": false, "llama3": true, "claude-3-sonnet": true},
	}

	for kind, row := range want {
		w := attackWindow(l, kind)
		findings, err := AnalyzePrompt(RenderPrompt(w))
		if err != nil {
			t.Fatal(err)
		}
		for _, model := range DefaultModels {
			analysis, err := ParseResponse(model.Respond(findings))
			if err != nil {
				t.Fatalf("%v/%s: %v", kind, model.Name, err)
			}
			correct := analysis.Verdict == VerdictAnomalous && analysis.TopClass() == expectedClass[kind]
			if correct != row[model.Name] {
				t.Errorf("%v / %s: correct=%v, Table 3 says %v (top=%v verdict=%v)",
					kind, model.Name, correct, row[model.Name], analysis.TopClass(), analysis.Verdict)
			}
		}
	}

	// The two benign rows: every model classifies them correctly.
	for i, skip := range []int{0, 30} {
		w := benignWindow(l, skip, 15)
		findings, err := AnalyzePrompt(RenderPrompt(w))
		if err != nil {
			t.Fatal(err)
		}
		for _, model := range DefaultModels {
			analysis, err := ParseResponse(model.Respond(findings))
			if err != nil {
				t.Fatal(err)
			}
			if analysis.Verdict != VerdictBenign {
				t.Errorf("benign %d / %s: verdict %v", i+1, model.Name, analysis.Verdict)
			}
		}
	}
}

func TestResponsesAreDeterministic(t *testing.T) {
	// §4.2: repeated experiments observed consistent results.
	l := mixed(t)
	w := attackWindow(l, ue.AttackBTSDoS)
	prompt := RenderPrompt(w)
	findings, err := AnalyzePrompt(prompt)
	if err != nil {
		t.Fatal(err)
	}
	first := ChatGPT4o.Respond(findings)
	for i := 0; i < 5; i++ {
		if got := ChatGPT4o.Respond(findings); got != first {
			t.Fatal("responses differ across repetitions")
		}
	}
}

func TestServerClientEndToEnd(t *testing.T) {
	l := mixed(t)
	srv := NewServer()
	addr, shutdown, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	client := NewClient("http://"+addr, "chatgpt-4o")
	models, err := client.Models(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 5 || models[0] != "chatgpt-4o" {
		t.Errorf("models = %v", models)
	}

	analysis, err := client.AnalyzeWindow(context.Background(), attackWindow(l, ue.AttackBTSDoS))
	if err != nil {
		t.Fatal(err)
	}
	if analysis.Verdict != VerdictAnomalous || analysis.TopClass() != ClassBTSDoS {
		t.Errorf("analysis = verdict %v, top %v", analysis.Verdict, analysis.TopClass())
	}
	if analysis.Explanation == "" || analysis.Attribution == "" || len(analysis.Remediation) == 0 {
		t.Error("analysis missing explanation/attribution/remediation")
	}
	if analysis.Model != "chatgpt-4o" {
		t.Errorf("model = %q", analysis.Model)
	}
	if srv.Requests() != 1 {
		t.Errorf("server requests = %d", srv.Requests())
	}
}

func TestServerErrors(t *testing.T) {
	srv := NewServer()
	addr, shutdown, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	// Unknown model.
	c := NewClient("http://"+addr, "gpt-99")
	if _, err := c.AnalyzePromptText(context.Background(), "DATA:\n#1 UL RRC RRCSetupRequest rnti=0x1\nDetermine"); err == nil {
		t.Error("unknown model accepted")
	}
	// Empty window at the client.
	c = NewClient("http://"+addr, "gemini")
	if _, err := c.AnalyzeWindow(context.Background(), nil); err == nil {
		t.Error("empty window accepted")
	}
	// Prompt without data.
	if _, err := c.AnalyzePromptText(context.Background(), "hello"); err == nil {
		t.Error("dataless prompt accepted")
	}
}

func TestParseResponseEdgeCases(t *testing.T) {
	if _, err := ParseResponse("no signal words here"); err == nil {
		t.Error("verdictless response accepted")
	}
	a, err := ParseResponse("this sequence looks benign to me")
	if err != nil || a.Verdict != VerdictBenign {
		t.Errorf("free-form benign: %+v, %v", a, err)
	}
	a, err = ParseResponse("I believe this is anomalous traffic")
	if err != nil || a.Verdict != VerdictAnomalous {
		t.Errorf("free-form anomalous: %+v, %v", a, err)
	}
}

func TestVerdictAndClassStrings(t *testing.T) {
	if VerdictBenign.String() != "BENIGN" || VerdictAnomalous.String() != "ANOMALOUS" {
		t.Error("verdict names wrong")
	}
	if ClassBTSDoS.String() != "Signaling Storm (BTS DoS)" {
		t.Errorf("got %q", ClassBTSDoS.String())
	}
	if AttackClass(99).String() != "AttackClass(99)" {
		t.Error("unknown class name wrong")
	}
}

func TestFigure5StyleResponse(t *testing.T) {
	// Figure 5: the BTS DoS response must identify a signaling storm
	// from repeated connection patterns.
	l := mixed(t)
	findings, err := AnalyzePrompt(RenderPrompt(attackWindow(l, ue.AttackBTSDoS)))
	if err != nil {
		t.Fatal(err)
	}
	text := ChatGPT4o.Respond(findings)
	for _, want := range []string{"ANOMALOUS", "Signaling Storm", "Recommended remediation"} {
		if !strings.Contains(text, want) {
			t.Errorf("response missing %q:\n%s", want, text)
		}
	}
}
