// Package llm implements the expert-referencing layer of 6G-XSec (§3.3
// and §4.2 of the paper): prompt templates that render flagged telemetry
// windows into an analyst brief (Figure 5), a REST client that queries a
// model endpoint, response parsing into a structured Analysis
// (classification / explanation / attribution / remediation), and an HTTP
// expert service hosting five model personalities whose per-attack
// capabilities are calibrated to the paper's Table 3.
//
// The expert service is the repository's LLM substitute (DESIGN.md §1):
// it reads the same prompt text a web LLM would receive, reasons over the
// telemetry with a cellular-security rule base, and answers in natural
// language filtered through the queried model's capability profile. The
// client code path — template → REST → text → parse → cross-compare — is
// exactly what a production deployment pointing at a real endpoint runs.
package llm

import (
	"fmt"

	"github.com/6g-xsec/xsec/internal/prov"
)

// Verdict is the analyst's binary decision for a sequence.
type Verdict uint8

// Verdicts.
const (
	VerdictBenign Verdict = iota
	VerdictAnomalous
)

// String returns "BENIGN" or "ANOMALOUS".
func (v Verdict) String() string {
	if v == VerdictAnomalous {
		return "ANOMALOUS"
	}
	return "BENIGN"
}

// AttackClass enumerates the attack taxonomy the expert reasons over.
type AttackClass uint8

// Attack classes, matching the paper's five evaluated attacks.
const (
	ClassUnknown AttackClass = iota
	ClassBTSDoS
	ClassBlindDoS
	ClassUplinkIDExtraction
	ClassDownlinkIDExtraction
	ClassNullCipher
)

var classNames = [...]string{
	"Unknown",
	"Signaling Storm (BTS DoS)",
	"Blind DoS (TMSI replay)",
	"Uplink Identity Extraction",
	"Downlink Identity Extraction",
	"Null Cipher & Integrity Downgrade",
}

// String returns the class label used in responses.
func (c AttackClass) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("AttackClass(%d)", uint8(c))
}

// Hypothesis is one ranked attack explanation.
type Hypothesis struct {
	Class        AttackClass
	Likelihood   float64 // 0..1
	Implications string
}

// Serving sources: how an Analysis reached the caller. The provenance
// ledger records non-live sources on the verdict event so audit chains
// distinguish a fresh expert opinion from a cache replay or a degraded
// rule-based fallback.
const (
	// ServedLive: a fresh upstream REST round trip answered.
	ServedLive = "live"
	// ServedCache: the verdict cache short-circuited the round trip.
	ServedCache = "cache"
	// ServedCoalesced: a concurrent identical request was already in
	// flight; this caller shared its result.
	ServedCoalesced = "coalesced"
	// ServedDegraded: the budget governor shed the request and the
	// local rule base answered instead.
	ServedDegraded = "degraded"
)

// Analysis is the structured result of one expert referencing round —
// the four capabilities of §3.3: what (classification), why
// (explainability), who (attribution), how to mitigate (remediation).
type Analysis struct {
	Model       string
	Verdict     Verdict
	Confidence  float64
	Hypotheses  []Hypothesis // top attack hypotheses, most likely first
	Explanation string
	Attribution string
	Remediation []string
	// Raw is the full response text from the model.
	Raw string
	// PromptDigest fingerprints the exact prompt the verdict answers, so
	// the provenance ledger can bind verdict to evidence (set by
	// Client.AnalyzePromptText).
	PromptDigest prov.Digest
	// Served reports how the analysis reached the caller: ServedLive,
	// ServedCache, ServedCoalesced, or ServedDegraded ("" means live
	// from a bare Client).
	Served string
}

// clone returns a shallow copy — cache hits and coalesced followers get
// their own struct (Served differs per caller) over the same immutable
// slices.
func (a *Analysis) clone() *Analysis {
	cp := *a
	return &cp
}

// TopClass returns the most likely attack class, or ClassUnknown for a
// benign verdict.
func (a *Analysis) TopClass() AttackClass {
	if a.Verdict == VerdictBenign || len(a.Hypotheses) == 0 {
		return ClassUnknown
	}
	return a.Hypotheses[0].Class
}
