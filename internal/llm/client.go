package llm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/prov"
)

// LLM client observability: round-trip latency, request outcomes per
// model, approximate prompt volume, and the verdict distribution.
// xsec_llm_request_seconds and xsec_llm_requests_total count individual
// REST attempts (a hedged request observes twice); the prompt-token
// counter is maintained at the logical-request level — one rendered
// prompt counts once no matter how many attempts it takes to answer it.
var (
	obsRequests = obs.NewCounterVec("xsec_llm_requests_total",
		"LLM REST queries, by model and outcome.", "model", "outcome")
	obsReqSeconds = obs.NewHistogram("xsec_llm_request_seconds",
		"LLM REST round-trip latency, including response parsing.",
		obs.ExpBuckets(1e-4, 2, 16))
	obsPromptTokens = obs.NewCounter("xsec_llm_prompt_tokens_total",
		"Approximate prompt tokens submitted (chars/4 heuristic), counted once per rendered prompt.")
	obsVerdicts = obs.NewCounterVec("xsec_llm_verdicts_total",
		"Parsed verdicts returned by the LLM.", "verdict")
)

// DefaultRequestTimeout bounds one REST attempt when the caller's
// context carries no deadline of its own.
const DefaultRequestTimeout = 30 * time.Second

// Client queries a model endpoint over REST (§3.3: "accesses the LLMs
// through RESTful web APIs"). Point BaseURL at the built-in expert
// service or at any compatible real endpoint. All query methods take a
// context.Context: cancellation propagates into the HTTP round trip, so
// an analyzer shutting down (or a hedged attempt losing the race)
// aborts the in-flight request instead of blocking on a wall-clock
// timeout.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8090".
	BaseURL string
	// Model selects the personality / model identifier.
	Model string
	// RAG enables retrieval-augmented prompting: relevant 3GPP
	// specification passages are retrieved from the knowledge base and
	// appended to every prompt (§5, "Specialized LLM for 6G").
	RAG bool
	// Knowledge overrides the retrieval corpus (DefaultKnowledgeBase
	// when nil and RAG is set).
	Knowledge []KnowledgeEntry
	// Timeout bounds one REST attempt when the context has no deadline
	// (DefaultRequestTimeout when zero). Contexts with deadlines win.
	Timeout time.Duration
	// HTTPClient defaults to a plain client; per-request deadlines come
	// from the context, not from http.Client.Timeout.
	HTTPClient *http.Client
}

// NewClient builds a client for one model at a base URL.
func NewClient(baseURL, model string) *Client {
	return &Client{
		BaseURL:    strings.TrimRight(baseURL, "/"),
		Model:      model,
		HTTPClient: &http.Client{},
	}
}

// renderPrompt renders the window into the (optionally RAG-augmented)
// prompt text this client would submit.
func (c *Client) renderPrompt(window mobiflow.Trace) string {
	prompt := RenderPrompt(window)
	if c.RAG {
		kb := c.Knowledge
		if kb == nil {
			kb = DefaultKnowledgeBase
		}
		prompt = AugmentPrompt(prompt, kb)
	}
	return prompt
}

// AnalyzeWindow renders the prompt for a telemetry window, queries the
// model, and parses the structured analysis out of the response text.
func (c *Client) AnalyzeWindow(ctx context.Context, window mobiflow.Trace) (*Analysis, error) {
	if len(window) == 0 {
		return nil, fmt.Errorf("llm: empty window")
	}
	return c.AnalyzePromptText(ctx, c.renderPrompt(window))
}

// AnalyzePromptText sends an already-rendered prompt. The prompt-token
// metric is charged here, once per call, before any transport attempt.
func (c *Client) AnalyzePromptText(ctx context.Context, prompt string) (*Analysis, error) {
	CountPromptTokens(prompt)
	return c.do(ctx, prompt)
}

// CountPromptTokens charges the prompt-token metric for one rendered
// prompt (chars/4 heuristic). The serving layer calls it once per
// logical request, however many hedged or retried attempts follow.
func CountPromptTokens(prompt string) {
	obsPromptTokens.Add(uint64(len(prompt)+3) / 4)
}

// withDeadline applies the client's fallback timeout when the caller's
// context has none.
func (c *Client) withDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = DefaultRequestTimeout
	}
	return context.WithTimeout(ctx, timeout)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do performs one REST attempt: no token accounting, no caching — the
// raw transport the serving layer hedges over.
func (c *Client) do(ctx context.Context, prompt string) (*Analysis, error) {
	start := time.Now()
	defer func() { obsReqSeconds.ObserveSeconds(time.Since(start).Nanoseconds()) }()

	body, err := json.Marshal(ChatRequest{Model: c.Model, Prompt: prompt})
	if err != nil {
		return nil, fmt.Errorf("llm: encoding request: %w", err)
	}
	ctx, cancel := c.withDeadline(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("llm: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		obsRequests.With(c.Model, "transport_error").Inc()
		return nil, fmt.Errorf("llm: querying %s: %w", c.Model, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var apiErr ErrorResponse
		json.NewDecoder(resp.Body).Decode(&apiErr)
		obsRequests.With(c.Model, "http_error").Inc()
		return nil, fmt.Errorf("llm: %s returned HTTP %d: %s", c.Model, resp.StatusCode, apiErr.Error)
	}
	var chat ChatResponse
	if err := json.NewDecoder(resp.Body).Decode(&chat); err != nil {
		obsRequests.With(c.Model, "bad_response").Inc()
		return nil, fmt.Errorf("llm: decoding response: %w", err)
	}
	analysis, err := ParseResponse(chat.Text)
	if err != nil {
		// An unparseable verdict is itself a signal (§3.3); count it
		// apart from transport failures.
		obsRequests.With(c.Model, "unparseable").Inc()
		return nil, err
	}
	analysis.Model = c.Model
	analysis.Served = ServedLive
	analysis.PromptDigest = prov.DigestText(prompt)
	obsRequests.With(c.Model, "ok").Inc()
	obsVerdicts.With(analysis.Verdict.String()).Inc()
	return analysis, nil
}

// Models lists the models the endpoint hosts.
func (c *Client) Models(ctx context.Context) ([]string, error) {
	ctx, cancel := c.withDeadline(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/models", nil)
	if err != nil {
		return nil, fmt.Errorf("llm: building request: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("llm: listing models: %w", err)
	}
	defer resp.Body.Close()
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		return nil, fmt.Errorf("llm: decoding model list: %w", err)
	}
	return names, nil
}

// classByLabel resolves a rendered class label back to its enum.
var classByLabel = func() map[string]AttackClass {
	m := make(map[string]AttackClass)
	for c := ClassBTSDoS; c <= ClassNullCipher; c++ {
		m[c.String()] = c
	}
	return m
}()

// ParseResponse extracts the structured Analysis from a model's response
// text. It is intentionally tolerant: models phrase things differently,
// and an unparseable verdict is itself a signal the xApp must escalate
// (the hallucination problem, §3.3).
func ParseResponse(text string) (*Analysis, error) {
	a := &Analysis{Raw: text, Confidence: 0.5}
	lower := strings.ToLower(text)
	switch {
	case strings.Contains(lower, "verdict: anomalous"):
		a.Verdict = VerdictAnomalous
	case strings.Contains(lower, "verdict: benign"):
		a.Verdict = VerdictBenign
	case strings.Contains(lower, "anomalous"):
		a.Verdict = VerdictAnomalous
	case strings.Contains(lower, "benign"):
		a.Verdict = VerdictBenign
	default:
		return nil, fmt.Errorf("llm: response contains no verdict")
	}

	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.Contains(line, "confidence"):
			if start := strings.Index(line, "confidence "); start >= 0 {
				numStr := strings.TrimRight(line[start+len("confidence "):], ")")
				if v, err := strconv.ParseFloat(numStr, 64); err == nil {
					a.Confidence = v
				}
			}
		case strings.HasPrefix(line, "Explanation: "):
			a.Explanation = strings.TrimPrefix(line, "Explanation: ")
		case strings.HasPrefix(line, "Attribution: "):
			a.Attribution = strings.TrimPrefix(line, "Attribution: ")
		case strings.HasPrefix(line, "- "):
			a.Remediation = append(a.Remediation, strings.TrimPrefix(line, "- "))
		case len(line) > 3 && line[0] >= '1' && line[0] <= '9' && line[1] == '.':
			// Ranked hypothesis: "N. <class> (likelihood X): ..."
			h := Hypothesis{Class: ClassUnknown}
			for label, class := range classByLabel {
				if strings.Contains(line, label) {
					h.Class = class
					break
				}
			}
			if idx := strings.Index(line, "likelihood "); idx >= 0 {
				numStr := line[idx+len("likelihood "):]
				if end := strings.IndexAny(numStr, ")"); end > 0 {
					if v, err := strconv.ParseFloat(numStr[:end], 64); err == nil {
						h.Likelihood = v
					}
				}
			}
			if idx := strings.Index(line, "): "); idx >= 0 {
				h.Implications = line[idx+3:]
			}
			a.Hypotheses = append(a.Hypotheses, h)
		}
	}
	return a, nil
}
