package llm

import (
	"container/list"
	"sync"
	"time"

	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/prov"
)

// Verdict-cache observability. Entries is sampled at scrape time from
// the most recently constructed Service (last writer wins, the obs
// GaugeFunc contract).
var (
	obsCacheHits = obs.NewCounter("xsec_llm_cache_hits_total",
		"Analyses served from the verdict cache without an upstream round trip.")
	obsCacheMisses = obs.NewCounter("xsec_llm_cache_misses_total",
		"Analyses that missed the verdict cache.")
	obsCacheEvictions = obs.NewCounterVec("xsec_llm_cache_evictions_total",
		"Verdict-cache evictions, by reason.", "reason")
	obsCacheEvictLRU = obsCacheEvictions.With("lru")
	obsCacheEvictTTL = obsCacheEvictions.With("ttl")
)

// CacheKey identifies one logical expert question: the model asked plus
// the exact rendered prompt. Mixing the model into the digest keeps two
// personalities' answers to the same window from colliding — the same
// prompt legitimately yields different verdicts per model (Table 3).
func CacheKey(model, prompt string) prov.Digest {
	return prov.NewDigest().Str(model).Str(prompt)
}

// WindowCacheKey is the cache key a client with this configuration
// would use for the window — the prompt is rendered exactly as
// AnalyzeWindow renders it, RAG augmentation included.
func (c *Client) WindowCacheKey(window mobiflow.Trace) prov.Digest {
	return CacheKey(c.Model, c.renderPrompt(window))
}

// cacheEntry is one cached verdict.
type cacheEntry struct {
	key      prov.Digest
	analysis *Analysis
	expires  time.Time // zero = no TTL
}

// verdictCache is a bounded LRU with per-entry TTL. Repeated windows
// from the same attack pattern render byte-identical prompts, so their
// digests collide on purpose and the REST round trip is skipped.
type verdictCache struct {
	mu    sync.Mutex
	max   int
	ttl   time.Duration
	ll    *list.List // front = most recently used
	items map[prov.Digest]*list.Element
	clock func() time.Time
}

func newVerdictCache(max int, ttl time.Duration, clock func() time.Time) *verdictCache {
	if clock == nil {
		clock = time.Now
	}
	return &verdictCache{
		max: max, ttl: ttl, clock: clock,
		ll: list.New(), items: make(map[prov.Digest]*list.Element),
	}
}

// get returns the cached analysis, expiring it instead when its TTL
// lapsed. The caller owns the returned pointer (it is a clone).
func (vc *verdictCache) get(key prov.Digest) (*Analysis, bool) {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	el, ok := vc.items[key]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if !ent.expires.IsZero() && vc.clock().After(ent.expires) {
		vc.ll.Remove(el)
		delete(vc.items, key)
		obsCacheEvictTTL.Inc()
		return nil, false
	}
	vc.ll.MoveToFront(el)
	return ent.analysis.clone(), true
}

// put stores a verdict, evicting the least recently used entry when the
// bound is exceeded.
func (vc *verdictCache) put(key prov.Digest, a *Analysis) {
	if vc.max <= 0 {
		return
	}
	vc.mu.Lock()
	defer vc.mu.Unlock()
	ent := &cacheEntry{key: key, analysis: a.clone()}
	if vc.ttl > 0 {
		ent.expires = vc.clock().Add(vc.ttl)
	}
	if el, ok := vc.items[key]; ok {
		el.Value = ent
		vc.ll.MoveToFront(el)
		return
	}
	vc.items[key] = vc.ll.PushFront(ent)
	for vc.ll.Len() > vc.max {
		back := vc.ll.Back()
		vc.ll.Remove(back)
		delete(vc.items, back.Value.(*cacheEntry).key)
		obsCacheEvictLRU.Inc()
	}
}

// len reports the live entry count.
func (vc *verdictCache) len() int {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return vc.ll.Len()
}
