package llm

import (
	"context"
	"strings"
	"testing"

	"github.com/6g-xsec/xsec/internal/ue"
)

func TestRetrieveKnowledge(t *testing.T) {
	prompt := "DATA:\n#1 UL NAS AuthenticationRequest rnti=0x1\n#2 UL NAS IdentityResponse rnti=0x1\nDetermine"
	entries := RetrieveKnowledge(prompt, DefaultKnowledgeBase)
	found := false
	for _, e := range entries {
		if e.ID == "TS33.501-6.1.3" {
			found = true
		}
	}
	if !found {
		t.Errorf("auth/identity passage not retrieved; got %d entries", len(entries))
	}
	// A prompt with none of the triggers retrieves nothing.
	if got := RetrieveKnowledge("DATA:\n#1 hello\nDetermine", DefaultKnowledgeBase); len(got) != 0 {
		t.Errorf("irrelevant prompt retrieved %d entries", len(got))
	}
}

func TestAugmentPrompt(t *testing.T) {
	prompt := "DATA:\n#1 DL NAS NASSecurityModeCommand cipher=NEA0 integ=NIA0\nDetermine"
	aug := AugmentPrompt(prompt, DefaultKnowledgeBase)
	if !HasKnowledge(aug) {
		t.Fatal("augmented prompt has no knowledge section")
	}
	if !strings.Contains(aug, "TS 33.501") {
		t.Error("null-cipher passage missing")
	}
	// No triggers → prompt unchanged.
	plain := AugmentPrompt("DATA:\n#1 nothing\nDetermine", DefaultKnowledgeBase)
	if HasKnowledge(plain) {
		t.Error("knowledge appended with no triggers")
	}
}

// TestRAGLiftsUplinkBlindSpot reproduces the paper's §5 hypothesis: with
// retrieved specification context, models that miss the uplink identity
// extraction zero-shot (every baseline except Claude 3 Sonnet in Table 3)
// classify it correctly.
func TestRAGLiftsUplinkBlindSpot(t *testing.T) {
	l := mixed(t)
	window := attackWindow(l, ue.AttackUplinkIDExtraction)

	srv := NewServer()
	addr, shutdown, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	for _, model := range []string{"chatgpt-4o", "gemini", "copilot", "llama3"} {
		// Zero-shot: missed.
		zero := NewClient("http://"+addr, model)
		a0, err := zero.AnalyzeWindow(context.Background(), window)
		if err != nil {
			t.Fatal(err)
		}
		if a0.Verdict == VerdictAnomalous && a0.TopClass() == ClassUplinkIDExtraction {
			t.Errorf("%s: zero-shot unexpectedly correct", model)
		}
		// RAG: correct.
		rag := NewClient("http://"+addr, model)
		rag.RAG = true
		a1, err := rag.AnalyzeWindow(context.Background(), window)
		if err != nil {
			t.Fatal(err)
		}
		if a1.Verdict != VerdictAnomalous || a1.TopClass() != ClassUplinkIDExtraction {
			t.Errorf("%s: RAG verdict %v / %v, want anomalous uplink extraction",
				model, a1.Verdict, a1.TopClass())
		}
	}
}

// TestRAGDoesNotCreateBenignFalsePositives: retrieved context must not
// make models flag benign traffic.
func TestRAGDoesNotCreateBenignFalsePositives(t *testing.T) {
	l := mixed(t)
	window := benignWindow(l, 0, 15)

	srv := NewServer()
	addr, shutdown, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	for _, m := range DefaultModels {
		c := NewClient("http://"+addr, m.Name)
		c.RAG = true
		a, err := c.AnalyzeWindow(context.Background(), window)
		if err != nil {
			t.Fatal(err)
		}
		if a.Verdict != VerdictBenign {
			t.Errorf("%s: RAG flagged benign traffic", m.Name)
		}
	}
}

func TestCustomKnowledgeBase(t *testing.T) {
	kb := []KnowledgeEntry{{ID: "custom-1", Triggers: []string{"RRCSetupRequest"}, Text: "custom passage"}}
	prompt := AugmentPrompt("DATA:\n#1 UL RRC RRCSetupRequest\nDetermine", kb)
	if !strings.Contains(prompt, "custom passage") {
		t.Error("custom knowledge not injected")
	}
}
