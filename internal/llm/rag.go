package llm

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the paper's "Specialized LLM for 6G" direction
// (§5): Retrieval-Augmented Generation over cellular protocol knowledge.
// A small knowledge base of 3GPP security facts is indexed by telemetry
// signals; RetrieveKnowledge selects the passages relevant to a window
// and AugmentPrompt appends them to the zero-shot prompt. Models
// reasoning with the retrieved specification context overcome their
// zero-shot blind spots — most notably the uplink identity extraction
// that every baseline but one misses in Table 3.

// KnowledgeEntry is one retrievable passage of domain knowledge.
type KnowledgeEntry struct {
	// ID names the source (spec section or paper).
	ID string
	// Triggers are telemetry signals whose presence makes the passage
	// relevant: message names or signal keywords found in the rendered
	// window.
	Triggers []string
	// Text is the passage injected into the prompt.
	Text string
}

// DefaultKnowledgeBase is the 3GPP-derived rule set the paper's RAG
// direction would retrieve from.
var DefaultKnowledgeBase = []KnowledgeEntry{
	{
		ID:       "TS33.501-6.1.3",
		Triggers: []string{"AuthenticationRequest", "IdentityResponse"},
		Text:     "TS 33.501 §6.1.3: after the network issues an Authentication Request, the UE shall answer with an Authentication Response carrying RES*, or an Authentication Failure. An Identity Response in place of the RES* indicates the uplink was substituted — the AdaptOver overshadowing attack harvests the permanent identity exactly this way.",
	},
	{
		ID:       "TS24.501-5.4.3",
		Triggers: []string{"IdentityResponse"},
		Text:     "TS 24.501 §5.4.3: the identification procedure is network-initiated; an Identity Response without a preceding network Identity Request means the request was injected over the air by a third party (IMSI-catcher behavior).",
	},
	{
		ID:       "TS33.501-5.11.1",
		Triggers: []string{"NEA0", "NIA0", "NASSecurityModeCommand"},
		Text:     "TS 33.501 §5.11.1: NIA0 (null integrity) shall only be used for unauthenticated emergency sessions; selecting NEA0 together with NIA0 for a normal registration indicates a bidding-down attack on the security negotiation.",
	},
	{
		ID:       "TS38.331-5.3.3",
		Triggers: []string{"RRCSetupRequest"},
		Text:     "TS 38.331 §5.3.3: each RRC connection establishment allocates RAN resources before any authentication; rapid repeated setup requests that never complete registration exhaust the gNB's UE contexts (signaling-storm DoS).",
	},
	{
		ID:       "TS23.003-2.4",
		Triggers: []string{"tmsi", "RRCSetupRequest"},
		Text:     "TS 23.003 §2.4: the 5G-S-TMSI is bound to a single registered UE; the same temporary identity presented concurrently on multiple connections means it was replayed by an attacker to hijack or disrupt the victim's signalling.",
	},
}

// RetrieveKnowledge selects the passages relevant to a rendered prompt's
// DATA section, most relevant first (by trigger hit count).
func RetrieveKnowledge(prompt string, kb []KnowledgeEntry) []KnowledgeEntry {
	type scored struct {
		entry KnowledgeEntry
		hits  int
	}
	var out []scored
	lower := strings.ToLower(prompt)
	for _, e := range kb {
		hits := 0
		for _, trig := range e.Triggers {
			if strings.Contains(lower, strings.ToLower(trig)) {
				hits++
			}
		}
		if hits == len(e.Triggers) { // all triggers present
			out = append(out, scored{e, hits})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].hits > out[j].hits })
	entries := make([]KnowledgeEntry, len(out))
	for i, s := range out {
		entries[i] = s.entry
	}
	return entries
}

const knowledgeHeader = "RETRIEVED SPECIFICATION CONTEXT:"

// AugmentPrompt appends retrieved passages to a rendered prompt.
func AugmentPrompt(prompt string, kb []KnowledgeEntry) string {
	entries := RetrieveKnowledge(prompt, kb)
	if len(entries) == 0 {
		return prompt
	}
	var b strings.Builder
	b.WriteString(prompt)
	b.WriteString("\n\n")
	b.WriteString(knowledgeHeader)
	b.WriteString("\n")
	for _, e := range entries {
		fmt.Fprintf(&b, "[%s] %s\n", e.ID, e.Text)
	}
	return b.String()
}

// HasKnowledge reports whether a prompt carries retrieved context.
func HasKnowledge(prompt string) bool {
	return strings.Contains(prompt, knowledgeHeader)
}

// respondWithKnowledge lifts a personality's blind spots when the prompt
// carries the relevant retrieved passage: a model that cannot infer a
// subtle pattern zero-shot can follow an explicit specification rule.
// The skill upgrade applies only to findings whose knowledge entry was
// retrieved.
func (p ModelProfile) respondWithKnowledge(findings []Finding, prompt string) string {
	boosted := ModelProfile{Name: p.Name, Style: p.Style, Skills: make(map[AttackClass]bool, len(p.Skills))}
	for class, able := range p.Skills {
		boosted.Skills[class] = able
	}
	for class, entryID := range map[AttackClass]string{
		ClassUplinkIDExtraction:   "TS33.501-6.1.3",
		ClassDownlinkIDExtraction: "TS24.501-5.4.3",
		ClassNullCipher:           "TS33.501-5.11.1",
		ClassBTSDoS:               "TS38.331-5.3.3",
		ClassBlindDoS:             "TS23.003-2.4",
	} {
		if strings.Contains(prompt, "["+entryID+"]") {
			boosted.Skills[class] = true
		}
	}
	return boosted.Respond(findings)
}
