package llm

import (
	"fmt"
	"sort"
	"strings"
)

// ModelProfile is one hosted model personality: which attack patterns it
// recognizes when reasoning zero-shot over cellular telemetry. The five
// shipped profiles are calibrated to the paper's Table 3 evaluation
// (manual verification of five web LLMs against five attacks), so the
// matrix bench regenerates that table; the engine supplies the candidate
// findings and the profile decides what the model actually "sees".
type ModelProfile struct {
	// Name is the model identifier used on the API.
	Name string
	// Skills maps attack classes to recognition ability.
	Skills map[AttackClass]bool
	// Style tweaks the response phrasing.
	Style string
}

// The five personalities of Table 3.
var (
	ChatGPT4o = ModelProfile{
		Name: "chatgpt-4o",
		Skills: map[AttackClass]bool{
			ClassBTSDoS: true, ClassBlindDoS: true,
			ClassUplinkIDExtraction:   false,
			ClassDownlinkIDExtraction: true, ClassNullCipher: true,
		},
		Style: "thorough",
	}
	Gemini = ModelProfile{
		Name: "gemini",
		Skills: map[AttackClass]bool{
			ClassBTSDoS: true, ClassBlindDoS: false,
			ClassUplinkIDExtraction:   false,
			ClassDownlinkIDExtraction: true, ClassNullCipher: true,
		},
		Style: "structured",
	}
	Copilot = ModelProfile{
		Name: "copilot",
		Skills: map[AttackClass]bool{
			ClassBTSDoS: true, ClassBlindDoS: false,
			ClassUplinkIDExtraction:   false,
			ClassDownlinkIDExtraction: false, ClassNullCipher: false,
		},
		Style: "terse",
	}
	Llama3 = ModelProfile{
		Name: "llama3",
		Skills: map[AttackClass]bool{
			ClassBTSDoS: false, ClassBlindDoS: true,
			ClassUplinkIDExtraction:   false,
			ClassDownlinkIDExtraction: true, ClassNullCipher: true,
		},
		Style: "conversational",
	}
	Claude3Sonnet = ModelProfile{
		Name: "claude-3-sonnet",
		Skills: map[AttackClass]bool{
			ClassBTSDoS: false, ClassBlindDoS: false,
			ClassUplinkIDExtraction:   true,
			ClassDownlinkIDExtraction: true, ClassNullCipher: true,
		},
		Style: "careful",
	}
)

// DefaultModels lists the hosted personalities in the paper's column
// order.
var DefaultModels = []ModelProfile{ChatGPT4o, Gemini, Copilot, Llama3, Claude3Sonnet}

// classRank orders findings by specificity for the top-hypothesis list:
// the most pattern-specific explanation leads.
var classRank = map[AttackClass]int{
	ClassUplinkIDExtraction:   0,
	ClassDownlinkIDExtraction: 1,
	ClassNullCipher:           2,
	ClassBlindDoS:             3,
	ClassBTSDoS:               4,
}

// Respond generates the model's natural-language answer for a set of
// candidate findings (from the engine). Findings the profile lacks the
// skill for are invisible to the model; with nothing visible the model
// declares the sequence benign — the failure mode the paper observes.
func (p ModelProfile) Respond(findings []Finding) string {
	var visible []Finding
	for _, f := range findings {
		if p.Skills[f.Class] {
			visible = append(visible, f)
		}
	}
	sort.SliceStable(visible, func(i, j int) bool {
		return classRank[visible[i].Class] < classRank[visible[j].Class]
	})

	var b strings.Builder
	if len(visible) == 0 {
		b.WriteString("Verdict: BENIGN (confidence 0.85)\n\n")
		b.WriteString("The sequence follows the expected 5G registration call flow: connection establishment, registration, authentication, security-mode control, and configuration proceed in order, identities appear only where the procedures require them, and the selected security algorithms provide ciphering and integrity protection. ")
		b.WriteString("I found no deviation that would indicate an attack.\n")
		return b.String()
	}

	top := visible[0]
	confidence := 0.92
	if top.Subtle {
		confidence = 0.74
	}
	fmt.Fprintf(&b, "Verdict: ANOMALOUS (confidence %.2f)\n\n", confidence)
	fmt.Fprintf(&b, "Classification: %s\n\n", top.Class)
	fmt.Fprintf(&b, "Explanation: %s.\n\n", top.Evidence)

	b.WriteString("Top attack hypotheses:\n")
	for i, f := range visible {
		if i == 3 {
			break
		}
		likelihood := 0.9 - 0.25*float64(i)
		fmt.Fprintf(&b, "%d. %s (likelihood %.2f): %s.\n", i+1, f.Class, likelihood, implications(f.Class))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "Attribution: %s\n\n", attribution(top.Class))
	b.WriteString("Recommended remediation:\n")
	for _, r := range remediation(top.Class) {
		fmt.Fprintf(&b, "- %s\n", r)
	}
	return b.String()
}

func implications(c AttackClass) string {
	switch c {
	case ClassBTSDoS:
		return "excessive load on the gNodeB's RRC and registration contexts can deny service to legitimate subscribers cell-wide"
	case ClassBlindDoS:
		return "the victim whose temporary identity is replayed loses pending services and may be forced into repeated re-registration"
	case ClassUplinkIDExtraction:
		return "the subscriber's permanent identity is harvested, enabling persistent tracking of the victim's location and presence"
	case ClassDownlinkIDExtraction:
		return "an injected identity procedure discloses the permanent identity in plaintext, enabling IMSI-catcher-style tracking"
	case ClassNullCipher:
		return "all user and signalling traffic is readable and forgeable by a passive or active adversary"
	}
	return "unknown impact"
}

func attribution(c AttackClass) string {
	switch c {
	case ClassBTSDoS, ClassBlindDoS:
		return "a rogue UE implemented on a software-defined radio within the cell's coverage, programmatically issuing connection attempts"
	case ClassUplinkIDExtraction, ClassDownlinkIDExtraction:
		return "a man-in-the-middle relay or overshadowing transmitter positioned between the victim and the base station"
	case ClassNullCipher:
		return "an active adversary tampering with the security negotiation (bidding-down), typically via a MiTM relay"
	}
	return "unknown actor"
}

func remediation(c AttackClass) []string {
	switch c {
	case ClassBTSDoS:
		return []string{
			"rate-limit RRC setup requests per cell and back off with RRCReject wait timers",
			"release stale UE contexts aggressively and alert on context-pool exhaustion",
			"deploy the RIC control action releasing contexts stuck at the authentication stage",
		}
	case ClassBlindDoS:
		return []string{
			"block setup requests presenting the replayed TMSI at the DU (RIC block-tmsi control)",
			"reallocate the victim's 5G-GUTI immediately",
			"require NAS authentication before honoring mobility updates for contested identities",
		}
	case ClassUplinkIDExtraction, ClassDownlinkIDExtraction:
		return []string{
			"enable SUCI concealment (non-null protection scheme) so identity responses reveal nothing",
			"alert the subscriber's home network of potential tracking exposure",
			"investigate the radio environment for overshadowing transmitters",
		}
	case ClassNullCipher:
		return []string{
			"enforce a strong-security policy refusing NEA0/NIA0 outside emergency services (RIC require-strong-security control)",
			"release and re-authenticate the affected session with mandatory ciphering",
			"audit the core's security-mode selection configuration",
		}
	}
	return []string{"escalate to a human analyst"}
}
