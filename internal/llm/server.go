package llm

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// ChatRequest is the REST request body of the expert service, shaped like
// the chat-completion APIs the paper's xApp targets.
type ChatRequest struct {
	Model  string `json:"model"`
	Prompt string `json:"prompt"`
}

// ChatResponse is the REST response body.
type ChatResponse struct {
	Model string `json:"model"`
	Text  string `json:"text"`
}

// ErrorResponse is the REST error body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Server hosts the model personalities behind an HTTP API:
//
//	POST /v1/analyze  {"model": "...", "prompt": "..."}  →  {"text": "..."}
//	GET  /v1/models                                      →  ["chatgpt-4o", ...]
type Server struct {
	models   map[string]ModelProfile
	requests atomic.Uint64
	// Latency adds artificial per-request service time, modeling remote
	// LLM inference for the latency benchmarks.
	Latency time.Duration
}

// NewServer hosts the given personalities (DefaultModels if none).
func NewServer(models ...ModelProfile) *Server {
	if len(models) == 0 {
		models = DefaultModels
	}
	s := &Server{models: make(map[string]ModelProfile, len(models))}
	for _, m := range models {
		s.models[m.Name] = m
	}
	return s
}

// Requests reports how many analyze calls the server has handled.
func (s *Server) Requests() uint64 { return s.requests.Load() }

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	mux.HandleFunc("/v1/models", s.handleModels)
	return mux
}

// Listen serves the API on addr (use "127.0.0.1:0" for an ephemeral
// port) and returns the bound address and a shutdown function.
func (s *Server) Listen(addr string) (string, func() error, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("llm: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(l)
	return l.Addr().String(), srv.Close, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "GET only"})
		return
	}
	names := make([]string, 0, len(s.models))
	for _, m := range DefaultModels {
		if _, ok := s.models[m.Name]; ok {
			names = append(names, m.Name)
		}
	}
	// Include any custom models not in the default order.
	for name := range s.models {
		if !contains(names, name) {
			names = append(names, name)
		}
	}
	writeJSON(w, http.StatusOK, names)
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return
	}
	var req ChatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "invalid JSON body"})
		return
	}
	model, ok := s.models[req.Model]
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("unknown model %q", req.Model)})
		return
	}
	if strings.TrimSpace(req.Prompt) == "" {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "empty prompt"})
		return
	}
	findings, err := AnalyzePrompt(req.Prompt)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	if s.Latency > 0 {
		time.Sleep(s.Latency)
	}
	s.requests.Add(1)
	var text string
	if HasKnowledge(req.Prompt) {
		// RAG mode: the prompt carries retrieved specification context,
		// which lifts the model's zero-shot blind spots (§5).
		text = model.respondWithKnowledge(findings, req.Prompt)
	} else {
		text = model.Respond(findings)
	}
	writeJSON(w, http.StatusOK, ChatResponse{Model: req.Model, Text: text})
}
