package llm

import (
	"context"
	"testing"

	"github.com/6g-xsec/xsec/internal/prov"
	"github.com/6g-xsec/xsec/internal/ue"
)

// TestCacheKeyStability pins the cache-key contract the serving layer
// depends on: identical windows must digest identically (that is the
// whole cache), across every model personality and with RAG on or off —
// while divergent windows, divergent models, and divergent RAG settings
// must not collide.
func TestCacheKeyStability(t *testing.T) {
	l := mixed(t)
	w1 := attackWindow(l, ue.AttackBTSDoS)
	w2 := attackWindow(l, ue.AttackBlindDoS)

	for _, m := range DefaultModels {
		for _, rag := range []bool{false, true} {
			a := NewClient("http://unused", m.Name)
			a.RAG = rag
			b := NewClient("http://unused", m.Name)
			b.RAG = rag
			if a.WindowCacheKey(w1) != b.WindowCacheKey(w1) {
				t.Errorf("%s rag=%v: identical windows produced different keys", m.Name, rag)
			}
			if a.WindowCacheKey(w1) == a.WindowCacheKey(w2) {
				t.Errorf("%s rag=%v: divergent windows collided", m.Name, rag)
			}
			// Rendering must be pure: repeated renders of the same window
			// cannot drift.
			if a.renderPrompt(w1) != a.renderPrompt(w1) {
				t.Errorf("%s rag=%v: prompt rendering is not deterministic", m.Name, rag)
			}
		}
	}

	// RAG augmentation changes the prompt, so it must change the key: a
	// RAG verdict answers a different question than a zero-shot one.
	zero := NewClient("http://unused", "chatgpt-4o")
	rag := NewClient("http://unused", "chatgpt-4o")
	rag.RAG = true
	if zero.WindowCacheKey(w1) == rag.WindowCacheKey(w1) {
		t.Error("RAG on/off collided on the same window")
	}

	// Same prompt, different personality: per Table 3 the verdicts
	// legitimately differ, so the keys must too.
	gpt := NewClient("http://unused", "chatgpt-4o")
	llama := NewClient("http://unused", "llama3")
	if gpt.WindowCacheKey(w1) == llama.WindowCacheKey(w1) {
		t.Error("two model personalities collided on the same window")
	}
}

// TestPromptDigestMatchesServedAnalysis verifies a served analysis
// carries the digest of the exact prompt it answers, whichever serving
// path produced it — the binding xsec-audit chains rely on.
func TestPromptDigestMatchesServedAnalysis(t *testing.T) {
	l := mixed(t)
	_, base := startServer(t)
	svc := NewService(NewClient(base, "chatgpt-4o"), ServingOptions{})
	defer svc.Close()

	window := attackWindow(l, ue.AttackUplinkIDExtraction)
	want := svc.Client().renderPrompt(window)
	live, err := svc.AnalyzeWindow(context.Background(), window)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := svc.AnalyzeWindow(context.Background(), window)
	if err != nil {
		t.Fatal(err)
	}
	degraded, err := DegradedAnalysis(want)
	if err != nil {
		t.Fatal(err)
	}
	wantDigest := prov.DigestText(want)
	for _, tc := range []struct {
		name string
		a    *Analysis
	}{{"live", live}, {"cached", cached}, {"degraded", degraded}} {
		if tc.a.PromptDigest != wantDigest {
			t.Errorf("%s: digest %v, want %v", tc.name, tc.a.PromptDigest, wantDigest)
		}
	}
}
