// LLM serving layer: the production-grade front-end between the
// analyzer xApp and the expert endpoint. A burst of anomalies — the
// alert flood a volumetric attack generates — must not turn the one
// REST-bound stage of the loop into a bottleneck or a single point of
// failure, so the Service wraps the raw Client with four mechanisms:
//
//   - a verdict cache keyed by (model, prompt) digest with TTL and
//     bounded LRU eviction, so repeated windows from the same attack
//     pattern short-circuit the round trip entirely;
//   - single-flight request coalescing, so N concurrent identical
//     prompts issue one upstream call and share its answer;
//   - hedged retries: when the primary attempt is slow a second one is
//     launched after HedgeDelay and the first response wins, taming the
//     latency tail of a flaky endpoint;
//   - a token/latency budget governor: upstream concurrency is bounded,
//     admission waits are capped, and when the endpoint saturates the
//     request is shed to a rule-based degraded verdict produced locally
//     by the expert engine — every alert still gets a verdict. Governor
//     state transitions are journaled to the SDL and surface on
//     /healthz.
package llm

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/prov"
	"github.com/6g-xsec/xsec/internal/sdl"
)

// Serving-layer observability (the cache counters live in cache.go).
var (
	obsServed = obs.NewCounterVec("xsec_llm_served_total",
		"Analyses served, by source.", "source")
	obsServedLive      = obsServed.With(ServedLive)
	obsServedCache     = obsServed.With(ServedCache)
	obsServedCoalesced = obsServed.With(ServedCoalesced)
	obsServedDegraded  = obsServed.With(ServedDegraded)
	obsCoalesced       = obs.NewCounter("xsec_llm_coalesced_total",
		"Requests that joined an identical in-flight upstream call.")
	obsHedgeAttempts = obs.NewCounter("xsec_llm_hedge_attempts_total",
		"Hedge attempts launched against the expert endpoint.")
	obsHedgeWins = obs.NewCounter("xsec_llm_hedge_wins_total",
		"Requests answered by the hedge attempt instead of the primary.")
	obsShed = obs.NewCounter("xsec_llm_shed_total",
		"Requests shed to the rule-based degraded verdict.")
)

// DegradedModel names the local rule-based fallback in Analysis.Model
// and in provenance verdict events.
const DegradedModel = "rulebase-degraded"

// GovernorNamespace is the SDL namespace the budget governor journals
// its state transitions into.
const GovernorNamespace = "llm/governor"

// ServingOptions tunes the Service. The zero value means defaults.
type ServingOptions struct {
	// CacheSize bounds the verdict cache (default 4096 entries;
	// negative disables caching).
	CacheSize int
	// CacheTTL expires cached verdicts (default 5 min; negative means
	// no TTL). A TTL keeps a stale "benign" from suppressing analysis
	// of traffic that has since turned hostile.
	CacheTTL time.Duration
	// MaxInflight bounds concurrent upstream REST calls (default 8).
	MaxInflight int
	// AdmitWait caps how long a request may wait for an upstream slot
	// before the governor sheds it (default 250 ms).
	AdmitWait time.Duration
	// HedgeDelay launches a second attempt when the primary has not
	// answered within this duration (default 500 ms; negative disables
	// hedging). The first response wins; the loser is canceled.
	HedgeDelay time.Duration
	// RequestTimeout bounds one logical upstream exchange, hedges
	// included (default 10 s).
	RequestTimeout time.Duration
	// BreakerTrip is how many consecutive saturation events (admission
	// timeouts or failed exchanges) open the governor (default 4).
	// While open, requests shed immediately; one probe per
	// BreakerCooldown tests for recovery.
	BreakerTrip int
	// BreakerCooldown spaces recovery probes while open (default 2 s).
	BreakerCooldown time.Duration
	// Store, when non-nil, receives the governor's state-transition
	// journal in GovernorNamespace.
	Store *sdl.Store
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

func (o *ServingOptions) defaults() {
	if o.CacheSize == 0 {
		o.CacheSize = 4096
	}
	if o.CacheTTL == 0 {
		o.CacheTTL = 5 * time.Minute
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 8
	}
	if o.AdmitWait <= 0 {
		o.AdmitWait = 250 * time.Millisecond
	}
	if o.HedgeDelay == 0 {
		o.HedgeDelay = 500 * time.Millisecond
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.BreakerTrip <= 0 {
		o.BreakerTrip = 4
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
}

// ServingStats counts serving-layer activity for one Service instance
// (the obs counters aggregate process-wide).
type ServingStats struct {
	Live          atomic.Uint64 // fresh upstream answers
	CacheHits     atomic.Uint64 // verdict-cache short-circuits
	Coalesced     atomic.Uint64 // joined an identical in-flight call
	Shed          atomic.Uint64 // degraded rule-based fallbacks
	HedgeAttempts atomic.Uint64 // second attempts launched
	HedgeWins     atomic.Uint64 // answered by the hedge
}

// flightCall is one in-flight upstream exchange followers wait on.
type flightCall struct {
	done     chan struct{}
	analysis *Analysis
	err      error
}

// Service is the serving layer around one Client. Safe for concurrent
// use by any number of analyzer workers.
type Service struct {
	client *Client
	opts   ServingOptions
	cache  *verdictCache
	stats  ServingStats

	flightMu sync.Mutex
	flight   map[prov.Digest]*flightCall

	sem chan struct{} // upstream admission slots

	satMu      sync.Mutex
	satStreak  int  // consecutive saturation events
	satOpen    bool // breaker open: shedding
	lastProbe  time.Time
	journalSeq uint64

	healthName string
}

// NewService wraps client with the serving layer.
func NewService(client *Client, opts ServingOptions) *Service {
	opts.defaults()
	s := &Service{
		client: client,
		opts:   opts,
		cache:  newVerdictCache(opts.CacheSize, opts.CacheTTL, opts.Clock),
		flight: make(map[prov.Digest]*flightCall),
		sem:    make(chan struct{}, opts.MaxInflight),
	}
	obs.NewGaugeFunc("xsec_llm_cache_entries",
		"Verdicts currently held by the cache.", func() float64 { return float64(s.cache.len()) })
	obs.NewGaugeFunc("xsec_llm_inflight",
		"Upstream REST calls currently in flight.", func() float64 { return float64(len(s.sem)) })
	return s
}

// Client returns the wrapped client.
func (s *Service) Client() *Client { return s.client }

// Stats returns the per-instance counters.
func (s *Service) Stats() *ServingStats { return &s.stats }

// CacheLen reports live verdict-cache entries.
func (s *Service) CacheLen() int { return s.cache.len() }

// Saturated reports whether the governor is currently open (shedding).
func (s *Service) Saturated() bool {
	s.satMu.Lock()
	defer s.satMu.Unlock()
	return s.satOpen
}

// Models lists the models the endpoint hosts.
func (s *Service) Models(ctx context.Context) ([]string, error) {
	return s.client.Models(ctx)
}

// RegisterHealth joins /healthz under name: the check fails while the
// governor is open, with live detail either way.
func (s *Service) RegisterHealth(name string) {
	s.healthName = name
	obs.RegisterHealthDetail(name, func() (string, error) {
		detail := fmt.Sprintf("model=%s cache=%d inflight=%d/%d shed=%d hedges=%d",
			s.client.Model, s.cache.len(), len(s.sem), cap(s.sem),
			s.stats.Shed.Load(), s.stats.HedgeAttempts.Load())
		if s.Saturated() {
			return detail, errors.New("expert endpoint saturated; shedding to rule-based verdicts")
		}
		return detail, nil
	})
}

// Close unregisters the health check. In-flight requests finish on
// their own contexts.
func (s *Service) Close() {
	if s.healthName != "" {
		obs.UnregisterHealth(s.healthName)
		s.healthName = ""
	}
}

// AnalyzeWindow answers for a telemetry window through the serving
// layer: cache, coalesce, hedge, or — when the endpoint saturates —
// degrade, in that order.
func (s *Service) AnalyzeWindow(ctx context.Context, window mobiflow.Trace) (*Analysis, error) {
	if len(window) == 0 {
		return nil, fmt.Errorf("llm: empty window")
	}
	return s.AnalyzePromptText(ctx, s.client.renderPrompt(window))
}

// AnalyzePromptText answers for an already-rendered prompt through the
// serving layer.
func (s *Service) AnalyzePromptText(ctx context.Context, prompt string) (*Analysis, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	key := CacheKey(s.client.Model, prompt)
	if a, ok := s.cache.get(key); ok {
		s.stats.CacheHits.Add(1)
		obsCacheHits.Inc()
		obsServedCache.Inc()
		a.Served = ServedCache
		return a, nil
	}
	obsCacheMisses.Inc()

	// Single flight: concurrent identical digests share one upstream
	// exchange.
	s.flightMu.Lock()
	if call, ok := s.flight[key]; ok {
		s.flightMu.Unlock()
		s.stats.Coalesced.Add(1)
		obsCoalesced.Inc()
		select {
		case <-call.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if call.err != nil {
			return nil, call.err
		}
		a := call.analysis.clone()
		if a.Served != ServedDegraded {
			a.Served = ServedCoalesced
		}
		obsServedCoalesced.Inc()
		return a, nil
	}
	call := &flightCall{done: make(chan struct{})}
	s.flight[key] = call
	s.flightMu.Unlock()

	a, err := s.resolve(ctx, key, prompt)
	call.analysis, call.err = a, err
	s.flightMu.Lock()
	delete(s.flight, key)
	s.flightMu.Unlock()
	close(call.done)
	return a, err
}

// resolve is the leader path: governor check, upstream exchange, cache
// fill, degraded fallback.
func (s *Service) resolve(ctx context.Context, key prov.Digest, prompt string) (*Analysis, error) {
	if s.shedNow() {
		return s.degrade(prompt, "governor open")
	}
	a, err := s.upstream(ctx, prompt)
	if err == nil {
		s.recovered()
		s.stats.Live.Add(1)
		obsServedLive.Inc()
		s.cache.put(key, a)
		return a, nil
	}
	// A canceled caller (analyzer shutdown) is not the endpoint's
	// fault; degrade so the alert still gets a verdict, but leave the
	// breaker alone.
	if ctx.Err() == nil {
		s.saturation(err)
	}
	return s.degrade(prompt, err.Error())
}

// errAdmission marks a request the governor refused an upstream slot.
var errAdmission = errors.New("llm: upstream admission timed out")

// upstream performs the bounded, hedged exchange. One admission slot
// covers the primary and its hedge; the prompt-token metric is charged
// once here regardless of how many attempts run.
func (s *Service) upstream(ctx context.Context, prompt string) (*Analysis, error) {
	admit := time.NewTimer(s.opts.AdmitWait)
	defer admit.Stop()
	select {
	case s.sem <- struct{}{}:
	case <-admit.C:
		return nil, errAdmission
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-s.sem }()

	CountPromptTokens(prompt)

	actx, cancel := context.WithTimeout(ctx, s.opts.RequestTimeout)
	defer cancel() // the losing attempt is aborted, not leaked

	type result struct {
		a     *Analysis
		err   error
		hedge bool
	}
	ch := make(chan result, 2)
	attempt := func(hedge bool) {
		a, err := s.client.do(actx, prompt)
		ch <- result{a, err, hedge}
	}
	go attempt(false)
	pending, hedged := 1, false
	launchHedge := func() {
		hedged = true
		pending++
		s.stats.HedgeAttempts.Add(1)
		obsHedgeAttempts.Inc()
		go attempt(true)
	}
	var hedgeTimer <-chan time.Time
	if s.opts.HedgeDelay > 0 {
		t := time.NewTimer(s.opts.HedgeDelay)
		defer t.Stop()
		hedgeTimer = t.C
	}
	var firstErr error
	for pending > 0 {
		select {
		case r := <-ch:
			pending--
			if r.err == nil {
				if r.hedge {
					s.stats.HedgeWins.Add(1)
					obsHedgeWins.Inc()
				}
				return r.a, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			// The primary failed before the hedge fired: spend the
			// hedge as an immediate retry.
			if !hedged && hedgeTimer != nil && pending == 0 && actx.Err() == nil {
				launchHedge()
			}
		case <-hedgeTimer:
			hedgeTimer = nil
			if !hedged {
				launchHedge()
			}
		}
	}
	return nil, firstErr
}

// degrade serves the rule-based fallback verdict.
func (s *Service) degrade(prompt, reason string) (*Analysis, error) {
	a, err := DegradedAnalysis(prompt)
	if err != nil {
		return nil, fmt.Errorf("llm: degraded fallback after %s: %w", reason, err)
	}
	s.stats.Shed.Add(1)
	obsShed.Inc()
	obsServedDegraded.Inc()
	return a, nil
}

// shedNow reports whether the governor is open, letting one probe
// through per cooldown to detect recovery.
func (s *Service) shedNow() bool {
	s.satMu.Lock()
	defer s.satMu.Unlock()
	if !s.satOpen {
		return false
	}
	now := s.opts.Clock()
	if now.Sub(s.lastProbe) >= s.opts.BreakerCooldown {
		s.lastProbe = now
		return false
	}
	return true
}

// saturation records one saturation event; enough in a row open the
// governor.
func (s *Service) saturation(cause error) {
	s.satMu.Lock()
	defer s.satMu.Unlock()
	s.satStreak++
	if !s.satOpen && s.satStreak >= s.opts.BreakerTrip {
		s.satOpen = true
		s.lastProbe = s.opts.Clock()
		s.journalLocked("saturated", cause.Error())
		obs.L().Warn("llm: expert endpoint saturated; shedding to rule-based verdicts",
			"model", s.client.Model, "cause", cause)
	}
}

// recovered closes the governor after a live success.
func (s *Service) recovered() {
	s.satMu.Lock()
	defer s.satMu.Unlock()
	if s.satOpen {
		s.satOpen = false
		s.journalLocked("ok", "upstream recovered")
		obs.L().Info("llm: expert endpoint recovered; live verdicts resumed",
			"model", s.client.Model)
	}
	s.satStreak = 0
}

// GovernorTransition is one journaled governor state change.
type GovernorTransition struct {
	Seq    uint64    `json:"seq"`
	At     time.Time `json:"at"`
	State  string    `json:"state"` // "ok" | "saturated"
	Reason string    `json:"reason"`
	Shed   uint64    `json:"shed_total"`
}

// journalLocked persists one transition (satMu held).
func (s *Service) journalLocked(state, reason string) {
	s.journalSeq++
	if s.opts.Store == nil {
		return
	}
	tr := GovernorTransition{
		Seq: s.journalSeq, At: s.opts.Clock(),
		State: state, Reason: reason, Shed: s.stats.Shed.Load(),
	}
	data, err := json.Marshal(tr)
	if err != nil {
		return
	}
	s.opts.Store.Set(GovernorNamespace, fmt.Sprintf("%06d", tr.Seq), data)
}

// GovernorJournal reads the journaled transitions, oldest first.
func GovernorJournal(store *sdl.Store) []GovernorTransition {
	keys := store.Keys(GovernorNamespace, "")
	sort.Strings(keys)
	out := make([]GovernorTransition, 0, len(keys))
	for _, k := range keys {
		data, _, ok := store.Get(GovernorNamespace, k)
		if !ok {
			continue
		}
		var tr GovernorTransition
		if json.Unmarshal(data, &tr) == nil {
			out = append(out, tr)
		}
	}
	return out
}

// DegradedAnalysis runs the local expert engine over a rendered prompt
// and builds the rule-based fallback verdict directly — no REST, no
// personality filter, confidence discounted so downstream consumers can
// tell it from a live expert opinion.
func DegradedAnalysis(prompt string) (*Analysis, error) {
	findings, err := AnalyzePrompt(prompt)
	if err != nil {
		return nil, err
	}
	a := &Analysis{
		Model:        DegradedModel,
		Served:       ServedDegraded,
		PromptDigest: prov.DigestText(prompt),
	}
	if len(findings) == 0 {
		a.Verdict = VerdictBenign
		a.Confidence = 0.6
		a.Explanation = "rule-based fallback: the telemetry matches no known attack pattern"
		a.Raw = "Verdict: BENIGN (degraded rule-based verdict; expert endpoint shed)"
		obsVerdicts.With(a.Verdict.String()).Inc()
		return a, nil
	}
	sort.SliceStable(findings, func(i, j int) bool {
		return classRank[findings[i].Class] < classRank[findings[j].Class]
	})
	top := findings[0]
	a.Verdict = VerdictAnomalous
	a.Confidence = 0.7
	if top.Subtle {
		a.Confidence = 0.55
	}
	a.Explanation = "rule-based fallback: " + top.Evidence
	a.Attribution = attribution(top.Class)
	a.Remediation = remediation(top.Class)
	for i, f := range findings {
		if i == 3 {
			break
		}
		a.Hypotheses = append(a.Hypotheses, Hypothesis{
			Class:        f.Class,
			Likelihood:   0.8 - 0.25*float64(i),
			Implications: implications(f.Class),
		})
	}
	a.Raw = fmt.Sprintf("Verdict: ANOMALOUS (degraded rule-based verdict; expert endpoint shed)\nClassification: %s", top.Class)
	obsVerdicts.With(a.Verdict.String()).Inc()
	return a, nil
}
