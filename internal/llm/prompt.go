package llm

import (
	"fmt"
	"strings"

	"github.com/6g-xsec/xsec/internal/mobiflow"
)

// The zero-shot prompt template of Figure 5. The data description block
// explains each telemetry attribute so a general-purpose model can reason
// over the sequence without examples.
const (
	promptPreamble = `You are an AI security analyst tasked with identifying potential attacks within a 5G network. You have access to a cellular traffic sequence with the following attributes:`

	promptDataDescriptions = `- seq: monotonically increasing telemetry sequence number (prefixed #)
- direction: UL (device to network) or DL (network to device)
- layer: RRC (radio control) or NAS (mobility/session management)
- message: the RRC or NAS protocol message name
- rnti: Radio Network Temporary Identifier of the device connection
- tmsi: Temporary Mobile Subscriber Identity, if assigned
- supi: permanent subscriber identity; (PLAINTEXT) marks unprotected exposure
- cipher/integ: selected ciphering and integrity algorithms (NEA0/NIA0 are null)
- sec: whether NAS security is activated
- cause: RRC establishment cause
- rrc/nas: tracked protocol states
- OUT-OF-ORDER marks messages violating the protocol state machine
- RETX marks radio retransmissions`

	promptQuestion = `Determine whether this sequence is anomalous or benign and explain why. Next, if the sequence constitutes attacks, provide the top 3 most possible attacks, and describe the implications.`

	dataHeader = "DATA:"
)

// RenderPrompt builds the zero-shot analysis prompt for a telemetry
// window.
func RenderPrompt(window mobiflow.Trace) string {
	var b strings.Builder
	b.WriteString(promptPreamble)
	b.WriteString("\n")
	b.WriteString(promptDataDescriptions)
	b.WriteString("\n\n")
	b.WriteString(dataHeader)
	b.WriteString("\n")
	for _, r := range window {
		b.WriteString(r.String())
		b.WriteString("\n")
	}
	b.WriteString("\n")
	b.WriteString(promptQuestion)
	return b.String()
}

// ExtractData recovers the telemetry lines from a rendered prompt — the
// expert service "reads" the prompt the way a web LLM would.
func ExtractData(prompt string) ([]string, error) {
	idx := strings.Index(prompt, dataHeader)
	if idx < 0 {
		return nil, fmt.Errorf("llm: prompt has no %q section", dataHeader)
	}
	rest := prompt[idx+len(dataHeader):]
	var lines []string
	for _, line := range strings.Split(rest, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "#") {
			break // question section reached
		}
		lines = append(lines, line)
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("llm: prompt DATA section is empty")
	}
	return lines, nil
}
