package llm

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/sdl"
	"github.com/6g-xsec/xsec/internal/ue"
)

// fakeClock is a manually advanced clock for TTL and breaker tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

// startServer hosts the real expert service for serving-layer tests.
func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := NewServer()
	addr, shutdown, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shutdown() })
	return srv, "http://" + addr
}

func TestServingCacheHit(t *testing.T) {
	l := mixed(t)
	srv, base := startServer(t)
	svc := NewService(NewClient(base, "chatgpt-4o"), ServingOptions{})
	defer svc.Close()

	window := attackWindow(l, ue.AttackBTSDoS)
	first, err := svc.AnalyzeWindow(context.Background(), window)
	if err != nil {
		t.Fatal(err)
	}
	if first.Served != ServedLive {
		t.Errorf("first served = %q, want live", first.Served)
	}
	second, err := svc.AnalyzeWindow(context.Background(), window)
	if err != nil {
		t.Fatal(err)
	}
	if second.Served != ServedCache {
		t.Errorf("second served = %q, want cache", second.Served)
	}
	if second.Verdict != first.Verdict || second.TopClass() != first.TopClass() {
		t.Error("cached analysis differs from live analysis")
	}
	if second.PromptDigest != first.PromptDigest {
		t.Error("cached analysis lost the prompt digest")
	}
	if got := srv.Requests(); got != 1 {
		t.Errorf("upstream requests = %d, want 1 (cache must short-circuit)", got)
	}
	if svc.Stats().CacheHits.Load() != 1 || svc.Stats().Live.Load() != 1 {
		t.Errorf("stats = live %d cache %d", svc.Stats().Live.Load(), svc.Stats().CacheHits.Load())
	}
	// The cached copy is the caller's own: mutating it must not poison
	// the cache.
	second.Explanation = "mutated"
	third, _ := svc.AnalyzeWindow(context.Background(), window)
	if third.Explanation == "mutated" {
		t.Error("cache returned a shared pointer")
	}
}

func TestServingCacheTTL(t *testing.T) {
	l := mixed(t)
	srv, base := startServer(t)
	clk := newFakeClock()
	svc := NewService(NewClient(base, "chatgpt-4o"), ServingOptions{
		CacheTTL: time.Minute, Clock: clk.Now,
	})
	defer svc.Close()

	window := attackWindow(l, ue.AttackNullCipher)
	if _, err := svc.AnalyzeWindow(context.Background(), window); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Minute)
	a, err := svc.AnalyzeWindow(context.Background(), window)
	if err != nil {
		t.Fatal(err)
	}
	if a.Served != ServedLive {
		t.Errorf("post-TTL served = %q, want live (entry must expire)", a.Served)
	}
	if got := srv.Requests(); got != 2 {
		t.Errorf("upstream requests = %d, want 2", got)
	}
}

func TestVerdictCacheLRU(t *testing.T) {
	vc := newVerdictCache(2, 0, nil)
	k1 := CacheKey("m", "p1")
	k2 := CacheKey("m", "p2")
	k3 := CacheKey("m", "p3")
	vc.put(k1, &Analysis{Explanation: "1"})
	vc.put(k2, &Analysis{Explanation: "2"})
	if _, ok := vc.get(k1); !ok { // touch k1: k2 becomes LRU
		t.Fatal("k1 missing before eviction")
	}
	vc.put(k3, &Analysis{Explanation: "3"})
	if _, ok := vc.get(k2); ok {
		t.Error("k2 survived, but it was the least recently used")
	}
	if _, ok := vc.get(k1); !ok {
		t.Error("k1 evicted despite being recently used")
	}
	if _, ok := vc.get(k3); !ok {
		t.Error("k3 missing")
	}
	if vc.len() != 2 {
		t.Errorf("len = %d, want 2", vc.len())
	}
}

func TestServingCoalesce(t *testing.T) {
	l := mixed(t)
	srv, base := startServer(t)
	srv.Latency = 50 * time.Millisecond // hold the flight open for followers
	svc := NewService(NewClient(base, "chatgpt-4o"), ServingOptions{
		HedgeDelay: time.Second, // must not fire during the held flight
	})
	defer svc.Close()

	window := attackWindow(l, ue.AttackBlindDoS)
	const callers = 8
	results := make([]*Analysis, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			a, err := svc.AnalyzeWindow(context.Background(), window)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = a
		}(i)
	}
	wg.Wait()
	if got := srv.Requests(); got != 1 {
		t.Errorf("upstream requests = %d, want 1 (coalescing must share the flight)", got)
	}
	live, coalesced := 0, 0
	for _, a := range results {
		switch a.Served {
		case ServedLive:
			live++
		case ServedCoalesced, ServedCache:
			// A caller arriving after the flight resolves hits the cache
			// instead; both mean "no extra upstream call".
			coalesced++
		default:
			t.Errorf("unexpected served source %q", a.Served)
		}
		if a.Verdict != VerdictAnomalous {
			t.Errorf("verdict = %v", a.Verdict)
		}
	}
	if live != 1 || coalesced != callers-1 {
		t.Errorf("live = %d coalesced/cache = %d, want 1 and %d", live, coalesced, callers-1)
	}
}

func TestServingHedgeWins(t *testing.T) {
	l := mixed(t)
	// Custom endpoint: the first request hangs, later ones answer fast —
	// the shape of a straggling LLM backend the hedge exists for.
	var reqs atomic.Uint64
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := reqs.Add(1)
		var req ChatRequest
		json.NewDecoder(r.Body).Decode(&req)
		findings, err := AnalyzePrompt(req.Prompt)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
			return
		}
		if n == 1 {
			time.Sleep(400 * time.Millisecond)
		}
		writeJSON(w, http.StatusOK, ChatResponse{Model: req.Model, Text: ChatGPT4o.Respond(findings)})
	})
	ts := httptest.NewServer(handler)
	defer ts.Close()

	svc := NewService(NewClient(ts.URL, "chatgpt-4o"), ServingOptions{
		HedgeDelay: 20 * time.Millisecond,
	})
	defer svc.Close()

	start := time.Now()
	a, err := svc.AnalyzeWindow(context.Background(), attackWindow(l, ue.AttackBTSDoS))
	if err != nil {
		t.Fatal(err)
	}
	if a.Served != ServedLive {
		t.Errorf("served = %q", a.Served)
	}
	if elapsed := time.Since(start); elapsed >= 400*time.Millisecond {
		t.Errorf("hedge did not cut the tail: %v elapsed", elapsed)
	}
	if svc.Stats().HedgeAttempts.Load() != 1 || svc.Stats().HedgeWins.Load() != 1 {
		t.Errorf("hedge stats = attempts %d wins %d, want 1/1",
			svc.Stats().HedgeAttempts.Load(), svc.Stats().HedgeWins.Load())
	}
}

func TestServingDegradesOnFailure(t *testing.T) {
	l := mixed(t)
	// No server listening: every upstream attempt fails, yet the alert
	// must still get a verdict — the rule-based fallback.
	svc := NewService(NewClient("http://127.0.0.1:1", "chatgpt-4o"), ServingOptions{
		HedgeDelay: -1, // disabled: fail fast
	})
	defer svc.Close()

	a, err := svc.AnalyzeWindow(context.Background(), attackWindow(l, ue.AttackBTSDoS))
	if err != nil {
		t.Fatal(err)
	}
	if a.Served != ServedDegraded || a.Model != DegradedModel {
		t.Errorf("served = %q model = %q", a.Served, a.Model)
	}
	if a.Verdict != VerdictAnomalous || a.TopClass() != ClassBTSDoS {
		t.Errorf("degraded verdict = %v top = %v", a.Verdict, a.TopClass())
	}
	if a.PromptDigest == 0 {
		t.Error("degraded analysis lost the prompt digest; prov chains would break")
	}
	if svc.Stats().Shed.Load() != 1 {
		t.Errorf("shed = %d", svc.Stats().Shed.Load())
	}

	// Benign window: the fallback must not cry wolf.
	b, err := svc.AnalyzeWindow(context.Background(), benignWindow(l, 0, 12))
	if err != nil {
		t.Fatal(err)
	}
	if b.Verdict != VerdictBenign || b.Served != ServedDegraded {
		t.Errorf("benign degraded = %v/%q", b.Verdict, b.Served)
	}
}

func TestServingGovernorTripAndRecover(t *testing.T) {
	l := mixed(t)
	var failing atomic.Bool
	var hits atomic.Uint64
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if failing.Load() {
			writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "overloaded"})
			return
		}
		var req ChatRequest
		json.NewDecoder(r.Body).Decode(&req)
		findings, err := AnalyzePrompt(req.Prompt)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, ChatResponse{Model: req.Model, Text: ChatGPT4o.Respond(findings)})
	})
	ts := httptest.NewServer(handler)
	defer ts.Close()

	clk := newFakeClock()
	store := sdl.New()
	svc := NewService(NewClient(ts.URL, "chatgpt-4o"), ServingOptions{
		CacheSize:       -1, // force every request upstream
		HedgeDelay:      -1,
		BreakerTrip:     2,
		BreakerCooldown: time.Minute,
		Store:           store,
		Clock:           clk.Now,
	})
	defer svc.Close()

	windows := []ue.AttackKind{ue.AttackBTSDoS, ue.AttackBlindDoS, ue.AttackNullCipher}
	failing.Store(true)
	for i := 0; i < 2; i++ { // two consecutive failures trip the breaker
		a, err := svc.AnalyzeWindow(context.Background(), attackWindow(l, windows[i]))
		if err != nil {
			t.Fatal(err)
		}
		if a.Served != ServedDegraded {
			t.Fatalf("failure %d served = %q", i, a.Served)
		}
	}
	if !svc.Saturated() {
		t.Fatal("governor did not open after BreakerTrip consecutive failures")
	}

	// Open breaker, inside the cooldown: shed without touching upstream.
	before := hits.Load()
	a, err := svc.AnalyzeWindow(context.Background(), attackWindow(l, windows[2]))
	if err != nil {
		t.Fatal(err)
	}
	if a.Served != ServedDegraded {
		t.Errorf("open-breaker served = %q", a.Served)
	}
	if hits.Load() != before {
		t.Error("open breaker still sent a request upstream")
	}

	// Past the cooldown with a healthy upstream: the probe recovers.
	failing.Store(false)
	clk.Advance(2 * time.Minute)
	a, err = svc.AnalyzeWindow(context.Background(), attackWindow(l, windows[2]))
	if err != nil {
		t.Fatal(err)
	}
	if a.Served != ServedLive {
		t.Errorf("probe served = %q, want live", a.Served)
	}
	if svc.Saturated() {
		t.Error("governor still open after a successful probe")
	}

	// The SDL journal recorded both transitions, in order.
	journal := GovernorJournal(store)
	if len(journal) != 2 {
		t.Fatalf("journal has %d transitions, want 2: %+v", len(journal), journal)
	}
	if journal[0].State != "saturated" || journal[1].State != "ok" {
		t.Errorf("journal states = %q, %q", journal[0].State, journal[1].State)
	}
	if journal[0].Seq >= journal[1].Seq {
		t.Error("journal sequence not monotonic")
	}
}

func TestServingAdmissionShed(t *testing.T) {
	l := mixed(t)
	srv, base := startServer(t)
	srv.Latency = 200 * time.Millisecond
	svc := NewService(NewClient(base, "chatgpt-4o"), ServingOptions{
		CacheSize:   -1, // every request wants an upstream slot
		MaxInflight: 1,
		AdmitWait:   5 * time.Millisecond,
		HedgeDelay:  time.Second,
	})
	defer svc.Close()

	// Two distinct windows at once through one slot: the loser times out
	// of admission and degrades instead of queueing unboundedly.
	var wg sync.WaitGroup
	served := make([]string, 2)
	for i, kind := range []ue.AttackKind{ue.AttackBTSDoS, ue.AttackBlindDoS} {
		wg.Add(1)
		go func(i int, kind ue.AttackKind) {
			defer wg.Done()
			a, err := svc.AnalyzeWindow(context.Background(), attackWindow(l, kind))
			if err != nil {
				t.Error(err)
				return
			}
			served[i] = a.Served
		}(i, kind)
	}
	wg.Wait()
	lives, degraded := 0, 0
	for _, s := range served {
		switch s {
		case ServedLive:
			lives++
		case ServedDegraded:
			degraded++
		}
	}
	if lives != 1 || degraded != 1 {
		t.Errorf("served = %v, want one live and one degraded", served)
	}
}

func TestServingHealthCheck(t *testing.T) {
	svc := NewService(NewClient("http://127.0.0.1:1", "chatgpt-4o"), ServingOptions{
		HedgeDelay: -1, BreakerTrip: 1,
	})
	const name = "llm-serving-test"
	svc.RegisterHealth(name)
	defer svc.Close()

	find := func() (obs.HealthStatus, bool) {
		for _, st := range obs.HealthSnapshot() {
			if st.Name == name {
				return st, true
			}
		}
		return obs.HealthStatus{}, false
	}
	st, ok := find()
	if !ok {
		t.Fatal("health check not registered")
	}
	if !st.OK {
		t.Errorf("healthy service reports not-OK: %+v", st)
	}

	// One failure trips the breaker (BreakerTrip: 1); /healthz must flip.
	l := mixed(t)
	if _, err := svc.AnalyzeWindow(context.Background(), attackWindow(l, ue.AttackBTSDoS)); err != nil {
		t.Fatal(err)
	}
	st, _ = find()
	if st.OK {
		t.Error("saturated service still reports OK")
	}
	if st.Detail == "" {
		t.Error("health detail empty")
	}

	svc.Close()
	if _, ok := find(); ok {
		t.Error("health check survived Close")
	}
}
