package llm

import (
	"fmt"
	"strconv"
	"strings"
)

// lineRecord is the expert's parsed view of one telemetry line — what a
// capable model extracts from the prompt text.
type lineRecord struct {
	seq        uint64
	dir        string // UL / DL
	layer      string // RRC / NAS
	msg        string
	rnti       string
	tmsi       string
	supiPlain  bool
	cipherNull bool
	integNull  bool
	secOn      bool
	rrcState   string
	nasState   string
	outOfOrder bool
	retx       bool
}

// parseLine parses one rendered telemetry line (mobiflow.Record.String
// format).
func parseLine(line string) (lineRecord, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "#") {
		return lineRecord{}, fmt.Errorf("llm: malformed telemetry line %q", line)
	}
	seq, err := strconv.ParseUint(fields[0][1:], 10, 64)
	if err != nil {
		return lineRecord{}, fmt.Errorf("llm: bad sequence in %q: %w", line, err)
	}
	rec := lineRecord{seq: seq, dir: fields[1], layer: fields[2], msg: fields[3]}
	for _, f := range fields[4:] {
		switch {
		case strings.HasPrefix(f, "rnti="):
			rec.rnti = f[len("rnti="):]
		case strings.HasPrefix(f, "tmsi="):
			rec.tmsi = f[len("tmsi="):]
		case strings.HasPrefix(f, "supi="):
			rec.supiPlain = strings.Contains(f, "(PLAINTEXT)")
		case strings.HasPrefix(f, "cipher="):
			rec.cipherNull = f == "cipher=NEA0"
		case strings.HasPrefix(f, "integ="):
			rec.integNull = f == "integ=NIA0"
		case strings.HasPrefix(f, "sec="):
			rec.secOn = f == "sec=on"
		case strings.HasPrefix(f, "rrc="):
			rec.rrcState = f[len("rrc="):]
		case strings.HasPrefix(f, "nas="):
			rec.nasState = f[len("nas="):]
		case f == "OUT-OF-ORDER":
			rec.outOfOrder = true
		case f == "RETX":
			rec.retx = true
		}
	}
	return rec, nil
}

// Finding is one attack pattern the expert engine identified in a window.
type Finding struct {
	Class    AttackClass
	Evidence string
	// Subtle marks findings whose traces are near standard-compliant —
	// the uplink identity extraction the paper notes most models miss.
	Subtle bool
}

// analyzeLines runs the cellular-security rule base over a parsed window
// and returns the findings, most severe first. An empty result means the
// window is consistent with benign traffic.
func analyzeLines(recs []lineRecord) []Finding {
	var findings []Finding

	// Per-connection outcome: which RNTIs reached an accepted
	// registration within the window.
	setupRNTIs := make(map[string]bool)
	acceptedRNTI := make(map[string]bool)
	for _, r := range recs {
		switch r.msg {
		case "RRCSetupRequest":
			setupRNTIs[r.rnti] = true
		case "RegistrationAccept":
			acceptedRNTI[r.rnti] = true
		}
	}

	// --- Signaling storm (BTS DoS, Figure 2b): a burst of connection
	// attempts on distinct fresh RNTIs, none of which reaches an
	// accepted registration; or its aftermath — a bulk teardown of
	// contexts that never registered.
	incomplete := 0
	for rnti := range setupRNTIs {
		if !acceptedRNTI[rnti] {
			incomplete++
		}
	}
	releasedUnregistered := make(map[string]bool)
	for _, r := range recs {
		if r.msg == "RRCRelease" && !acceptedRNTI[r.rnti] && r.nasState != "REGISTERED" {
			releasedUnregistered[r.rnti] = true
		}
	}
	switch {
	case incomplete >= 3:
		findings = append(findings, Finding{
			Class: ClassBTSDoS,
			Evidence: fmt.Sprintf("%d connection attempts on distinct RNTIs (%s...) with repeated truncated registrations and no completion — a rapid succession of fabricated sessions exhausting RAN contexts",
				incomplete, firstKey(setupRNTIs)),
		})
	case len(releasedUnregistered) >= 3:
		findings = append(findings, Finding{
			Class: ClassBTSDoS,
			Evidence: fmt.Sprintf("bulk teardown of %d contexts (%s...) that never completed registration — the residue of a signaling-storm flood being purged",
				len(releasedUnregistered), firstKey(releasedUnregistered)),
		})
	}

	// --- Blind DoS (TMSI replay): the same TMSI presented across
	// multiple distinct connections that never authenticate.
	tmsiConns := make(map[string]map[string]bool)
	for _, r := range recs {
		if r.tmsi == "" || r.rnti == "" {
			continue
		}
		if tmsiConns[r.tmsi] == nil {
			tmsiConns[r.tmsi] = make(map[string]bool)
		}
		tmsiConns[r.tmsi][r.rnti] = true
	}
	for tmsi, conns := range tmsiConns {
		failed := 0
		for rnti := range conns {
			if !acceptedRNTI[rnti] {
				failed++
			}
		}
		if len(conns) >= 2 && failed >= 2 {
			findings = append(findings, Finding{
				Class: ClassBlindDoS,
				Evidence: fmt.Sprintf("temporary identity %s replayed across %d different connections of which %d never complete authentication — consistent with spoofed setup requests disrupting the victim's sessions",
					tmsi, len(conns), failed),
			})
			break
		}
	}

	// --- Identity extraction: a plaintext permanent identity disclosed
	// by an IdentityResponse the network context does not justify.
	idRequested := false
	var prevMsg string
	for _, r := range recs {
		if r.msg == "IdentityRequest" {
			idRequested = true
		}
		if r.msg == "IdentityResponse" && r.supiPlain && !idRequested {
			if prevMsg == "AuthenticationRequest" {
				findings = append(findings, Finding{
					Class:    ClassUplinkIDExtraction,
					Subtle:   true,
					Evidence: "an authentication request is answered by a plaintext identity response instead of the expected authentication response; apart from this single substitution the trace is standard-compliant — consistent with an adaptive uplink overshadowing attack harvesting the subscriber identity",
				})
			} else {
				findings = append(findings, Finding{
					Class:    ClassDownlinkIDExtraction,
					Evidence: "a plaintext identity response appears although the network never issued an identity request — consistent with an attacker-injected downlink identity request tricking the device into disclosing its permanent identity",
				})
			}
		}
		if !r.retx {
			prevMsg = r.msg
		}
	}

	// --- Null cipher & integrity: security reported active while both
	// selected algorithms are null.
	for _, r := range recs {
		if r.secOn && r.cipherNull && r.integNull {
			findings = append(findings, Finding{
				Class:    ClassNullCipher,
				Evidence: "the session activated NAS security with NEA0/NIA0 — null ciphering and null integrity — leaving all traffic unprotected; TS 33.501 forbids this outside emergency services, so a bidding-down attack is likely",
			})
			break
		}
	}

	return dedupeFindings(findings)
}

func dedupeFindings(in []Finding) []Finding {
	seen := make(map[AttackClass]bool)
	var out []Finding
	for _, f := range in {
		if !seen[f.Class] {
			seen[f.Class] = true
			out = append(out, f)
		}
	}
	return out
}

func firstKey(m map[string]bool) string {
	best := ""
	for k := range m {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// AnalyzePrompt parses the DATA section of a rendered prompt and runs the
// rule base — the "perfect analyst" upper bound the personalities filter.
func AnalyzePrompt(prompt string) ([]Finding, error) {
	lines, err := ExtractData(prompt)
	if err != nil {
		return nil, err
	}
	recs := make([]lineRecord, 0, len(lines))
	for _, line := range lines {
		rec, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	return analyzeLines(recs), nil
}
