package rrc

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/6g-xsec/xsec/internal/cell"
)

// allMessages returns one populated instance of every message type.
func allMessages() []Message {
	return []Message{
		&SetupRequest{Identity: UEIdentity{Kind: IdentityRandom, Random: 0x1234567890}, Cause: cell.CauseMOSignalling},
		&SetupRequest{Identity: UEIdentity{Kind: IdentityTMSI, TMSI: 0xCAFEBABE}, Cause: cell.CauseMTAccess},
		&Setup{TransactionID: 1, SRBCount: 2},
		&SetupComplete{TransactionID: 1, SelectedPLMN: "001-01", NASPDU: []byte{9, 8, 7}},
		&Reject{WaitTime: 16},
		&SecurityModeCommand{TransactionID: 2, CipherAlg: cell.NEA2, IntegAlg: cell.NIA2},
		&SecurityModeComplete{TransactionID: 2},
		&SecurityModeFailure{TransactionID: 2},
		&Reconfiguration{TransactionID: 3, NASPDU: []byte{1}},
		&ReconfigurationComplete{TransactionID: 3},
		&ULInformationTransfer{NASPDU: []byte{0xAA, 0xBB}},
		&DLInformationTransfer{NASPDU: []byte{0xCC}},
		&ReestablishmentRequest{RNTI: 0x4601, Cause: cell.CauseMOData},
		&Reestablishment{TransactionID: 4},
		&Release{Cause: ReleaseDeregistration},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, in := range allMessages() {
		data := Encode(in)
		out, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: Decode: %v", in.Type(), err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("%s: round trip:\n got %#v\nwant %#v", in.Type(), out, in)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) succeeded")
	}
	if _, err := Decode([]byte{0xFF}); !errors.Is(err, ErrUnknownType) {
		t.Errorf("unknown type: err = %v, want ErrUnknownType", err)
	}
	if _, err := Decode([]byte{byte(TypeSetupRequest), 0x01}); err == nil {
		t.Error("truncated body decoded without error")
	}
}

func TestMessageDirections(t *testing.T) {
	uplink := map[MsgType]bool{
		TypeSetupRequest: true, TypeSetupComplete: true,
		TypeSecurityModeComplete: true, TypeSecurityModeFailure: true,
		TypeReconfigurationComplete: true, TypeULInformationTransfer: true,
		TypeReestablishmentRequest: true,
	}
	for _, m := range allMessages() {
		want := cell.Downlink
		if uplink[m.Type()] {
			want = cell.Uplink
		}
		if m.Direction() != want {
			t.Errorf("%s: direction = %v, want %v", m.Type(), m.Direction(), want)
		}
	}
}

func TestTypeNames(t *testing.T) {
	if TypeSetupRequest.String() != "RRCSetupRequest" {
		t.Errorf("got %q", TypeSetupRequest.String())
	}
	if !TypeRelease.Valid() || TypeInvalid.Valid() || MsgType(200).Valid() {
		t.Error("Valid() misclassifies")
	}
	if MsgType(200).String() != "MsgType(200)" {
		t.Errorf("got %q", MsgType(200).String())
	}
}

func TestUEIdentityString(t *testing.T) {
	id := UEIdentity{Kind: IdentityTMSI, TMSI: 0x10}
	if id.String() != "s-tmsi:0x00000010" {
		t.Errorf("got %q", id.String())
	}
	id = UEIdentity{Kind: IdentityRandom, Random: 0x1F}
	if id.String() != "random:0x000000001F" {
		t.Errorf("got %q", id.String())
	}
}

func TestBenignStateProgression(t *testing.T) {
	var m Machine
	steps := []struct {
		msg  Message
		want State
	}{
		{&SetupRequest{}, StateSetupRequested},
		{&Setup{}, StateSetupRequested},
		{&SetupComplete{}, StateConnected},
		{&SecurityModeCommand{}, StateConnected},
		{&SecurityModeComplete{}, StateSecurityActivated},
		{&Reconfiguration{}, StateSecurityActivated},
		{&ReconfigurationComplete{}, StateReconfigured},
		{&ULInformationTransfer{}, StateReconfigured},
		{&Release{}, StateReleased},
	}
	for i, s := range steps {
		if err := m.Observe(s.msg); err != nil {
			t.Fatalf("step %d (%s): unexpected error %v", i, s.msg.Type(), err)
		}
		if m.State() != s.want {
			t.Fatalf("step %d (%s): state = %v, want %v", i, s.msg.Type(), m.State(), s.want)
		}
	}
	if m.Transitions() == 0 {
		t.Error("Transitions() = 0 after full session")
	}
}

func TestOutOfOrderMessageFlagged(t *testing.T) {
	var m Machine
	// SecurityModeComplete in IDLE is illegal.
	err := m.Observe(&SecurityModeComplete{})
	var te *TransitionError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want TransitionError", err)
	}
	if te.State != StateIdle || te.Msg != TypeSecurityModeComplete {
		t.Errorf("TransitionError = %+v", te)
	}
	if te.Error() == "" {
		t.Error("empty error string")
	}
}

func TestIdentityResponseStyleAnomaly(t *testing.T) {
	// The downlink ID-extraction attack sends DLInformationTransfer
	// (Identity Request) right after SetupRequest, before the connection
	// completes. The state machine must flag it.
	var m Machine
	m.Observe(&SetupRequest{})
	if err := m.Observe(&DLInformationTransfer{}); err == nil {
		t.Error("DLInformationTransfer in SETUP_REQUESTED not flagged")
	}
}

func TestRetransmissionTolerated(t *testing.T) {
	var m Machine
	m.Observe(&SetupRequest{})
	if err := m.Observe(&SetupRequest{}); err != nil {
		t.Errorf("retransmitted SetupRequest flagged: %v", err)
	}
}

func TestMachineReset(t *testing.T) {
	var m Machine
	m.Observe(&SetupRequest{})
	m.Observe(&SetupComplete{})
	m.Reset()
	if m.State() != StateIdle || m.Transitions() != 0 {
		t.Errorf("after Reset: state=%v transitions=%d", m.State(), m.Transitions())
	}
}

func TestReleasedAllowsNewSetup(t *testing.T) {
	var m Machine
	m.Observe(&SetupRequest{})
	m.Observe(&SetupComplete{})
	m.Observe(&Release{})
	if err := m.Observe(&SetupRequest{}); err != nil {
		t.Errorf("new SetupRequest after release flagged: %v", err)
	}
}

func TestStateString(t *testing.T) {
	if StateSecurityActivated.String() != "SECURITY_ACTIVATED" {
		t.Errorf("got %q", StateSecurityActivated.String())
	}
	if State(77).String() != "State(77)" {
		t.Errorf("got %q", State(77).String())
	}
}

// Property: SetupRequest round-trips for arbitrary identities and causes.
func TestQuickSetupRequestRoundTrip(t *testing.T) {
	f := func(random uint64, tmsi uint32, useTMSI bool, cause uint8) bool {
		in := &SetupRequest{Cause: cell.EstablishmentCause(cause)}
		if useTMSI {
			in.Identity = UEIdentity{Kind: IdentityTMSI, TMSI: cell.TMSI(tmsi)}
		} else {
			in.Identity = UEIdentity{Kind: IdentityRandom, Random: random & (1<<39 - 1)}
		}
		out, err := Decode(Encode(in))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoder never panics on arbitrary bytes.
func TestQuickDecodeRobust(t *testing.T) {
	f := func(data []byte) bool {
		Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeSetupRequest(b *testing.B) {
	m := &SetupRequest{Identity: UEIdentity{Kind: IdentityTMSI, TMSI: 0xCAFEBABE}, Cause: cell.CauseMOData}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(m)
	}
}

func BenchmarkDecodeSetupRequest(b *testing.B) {
	data := Encode(&SetupRequest{Identity: UEIdentity{Kind: IdentityTMSI, TMSI: 0xCAFEBABE}, Cause: cell.CauseMOData})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}
