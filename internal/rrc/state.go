package rrc

import (
	"fmt"
)

// State is the RRC connection state of a UE context, as tracked by the CU
// and reported in MobiFlow telemetry.
type State uint8

// RRC states (TS 38.331 §4.2.1, plus intermediate procedure states the CU
// tracks internally).
const (
	StateIdle State = iota
	StateSetupRequested
	StateConnected         // setup complete received
	StateSecurityActivated // AS security mode complete
	StateReconfigured      // bearers configured
	StateReleased
	stateCount
)

var stateNames = [...]string{
	"IDLE", "SETUP_REQUESTED", "CONNECTED", "SECURITY_ACTIVATED",
	"RECONFIGURED", "RELEASED",
}

// String returns the state name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// TransitionError reports an RRC message that is illegal in the current
// state. The CU logs these and MobiWatch treats the affected sequence as
// protocol-anomalous context.
type TransitionError struct {
	State State
	Msg   MsgType
}

// Error implements error.
func (e *TransitionError) Error() string {
	return fmt.Sprintf("rrc: message %s illegal in state %s", e.Msg, e.State)
}

// Machine tracks the RRC state of one UE context. The zero value is a UE
// in IDLE. Machine is not safe for concurrent use; the CU serializes
// per-UE events.
type Machine struct {
	state State
	// Transitions counts state changes, exposing session "churn" to
	// telemetry.
	transitions int
}

// State returns the current state.
func (m *Machine) State() State { return m.state }

// Transitions returns the number of completed state transitions.
func (m *Machine) Transitions() int { return m.transitions }

// Reset returns the machine to IDLE (used when an RNTI is recycled).
func (m *Machine) Reset() {
	m.state = StateIdle
	m.transitions = 0
}

func (m *Machine) to(s State) {
	if m.state != s {
		m.state = s
		m.transitions++
	}
}

// Observe applies a message to the state machine, validating that the
// message is legal in the current state. It returns a *TransitionError for
// out-of-order messages but still applies a best-effort transition, since
// the CU must keep tracking a noncompliant UE rather than lose visibility.
func (m *Machine) Observe(msg Message) error {
	t := msg.Type()
	before := m.state
	legal := m.legal(t)
	switch t {
	case TypeSetupRequest:
		m.to(StateSetupRequested)
	case TypeSetup:
		// DL response; remain in SETUP_REQUESTED.
	case TypeReject, TypeRelease:
		m.to(StateReleased)
	case TypeSetupComplete:
		m.to(StateConnected)
	case TypeSecurityModeComplete:
		m.to(StateSecurityActivated)
	case TypeSecurityModeFailure:
		// Stay connected without AS security.
	case TypeReconfigurationComplete:
		m.to(StateReconfigured)
	case TypeReestablishmentRequest:
		m.to(StateSetupRequested)
	}
	if !legal {
		return &TransitionError{State: before, Msg: t}
	}
	return nil
}

// legal reports whether message t is permitted in the current state, per
// the procedure ordering of TS 38.331. The check is evaluated before the
// transition is applied.
func (m *Machine) legal(t MsgType) bool {
	switch m.state {
	case StateIdle, StateReleased:
		return t == TypeSetupRequest || t == TypeReestablishmentRequest
	case StateSetupRequested:
		switch t {
		case TypeSetup, TypeSetupComplete, TypeReject, TypeReestablishment, TypeSetupRequest:
			// A repeated SetupRequest is a retransmission: tolerated,
			// though telemetry still records it.
			return true
		}
		return false
	case StateConnected:
		switch t {
		case TypeSecurityModeCommand, TypeSecurityModeComplete,
			TypeSecurityModeFailure, TypeULInformationTransfer,
			TypeDLInformationTransfer, TypeRelease:
			return true
		}
		return false
	case StateSecurityActivated:
		switch t {
		case TypeReconfiguration, TypeReconfigurationComplete,
			TypeULInformationTransfer, TypeDLInformationTransfer,
			TypeRelease:
			return true
		}
		return false
	case StateReconfigured:
		switch t {
		case TypeULInformationTransfer, TypeDLInformationTransfer,
			TypeRelease, TypeReconfiguration, TypeReconfigurationComplete:
			return true
		}
		return false
	}
	return false
}
