package rrc

import (
	"errors"
	"fmt"

	"github.com/6g-xsec/xsec/internal/asn1lite"
)

// ErrUnknownType is returned by Decode for an unrecognized message type.
var ErrUnknownType = errors.New("rrc: unknown message type")

// Encode serializes an RRC message to its wire form: a one-byte message
// type followed by the TLV-encoded body.
func Encode(m Message) []byte {
	var e asn1lite.Encoder
	m.MarshalTLV(&e)
	body := e.Bytes()
	out := make([]byte, 0, 1+len(body))
	out = append(out, byte(m.Type()))
	return append(out, body...)
}

// Decode parses a wire-form RRC message produced by Encode.
func Decode(data []byte) (Message, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("rrc: empty PDU: %w", asn1lite.ErrTruncated)
	}
	t := MsgType(data[0])
	m := newMessage(t)
	if m == nil {
		return nil, fmt.Errorf("decoding type %d: %w", data[0], ErrUnknownType)
	}
	d := asn1lite.NewDecoder(data[1:])
	if err := m.(asn1lite.Unmarshaler).UnmarshalTLV(d); err != nil {
		return nil, fmt.Errorf("rrc: decoding %s: %w", t, err)
	}
	return m, nil
}

// newMessage allocates the concrete struct for a message type, or nil if
// the type is unknown.
func newMessage(t MsgType) Message {
	switch t {
	case TypeSetupRequest:
		return &SetupRequest{}
	case TypeSetup:
		return &Setup{}
	case TypeSetupComplete:
		return &SetupComplete{}
	case TypeReject:
		return &Reject{}
	case TypeSecurityModeCommand:
		return &SecurityModeCommand{}
	case TypeSecurityModeComplete:
		return &SecurityModeComplete{}
	case TypeSecurityModeFailure:
		return &SecurityModeFailure{}
	case TypeReconfiguration:
		return &Reconfiguration{}
	case TypeReconfigurationComplete:
		return &ReconfigurationComplete{}
	case TypeULInformationTransfer:
		return &ULInformationTransfer{}
	case TypeDLInformationTransfer:
		return &DLInformationTransfer{}
	case TypeReestablishmentRequest:
		return &ReestablishmentRequest{}
	case TypeReestablishment:
		return &Reestablishment{}
	case TypeRelease:
		return &Release{}
	default:
		return nil
	}
}
