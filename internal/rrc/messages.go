// Package rrc models the NR Radio Resource Control protocol (3GPP
// TS 38.331) at the fidelity 6G-XSec's telemetry and attack scenarios
// require: connection establishment, security activation, information
// transfer (NAS piggybacking), reconfiguration, reestablishment, and
// release.
//
// Each procedure message is its own type implementing Message; Encode and
// Decode convert to and from the asn1lite wire form used on the simulated
// Uu/F1 path.
package rrc

import (
	"fmt"

	"github.com/6g-xsec/xsec/internal/asn1lite"
	"github.com/6g-xsec/xsec/internal/cell"
)

// MsgType enumerates the RRC messages the simulator exchanges.
type MsgType uint8

// RRC message types. The names match TS 38.331 message names; the paper's
// figures abbreviate them (e.g. "RRC Conn." = RRCSetupRequest).
const (
	TypeInvalid MsgType = iota
	TypeSetupRequest
	TypeSetup
	TypeSetupComplete
	TypeReject
	TypeSecurityModeCommand
	TypeSecurityModeComplete
	TypeSecurityModeFailure
	TypeReconfiguration
	TypeReconfigurationComplete
	TypeULInformationTransfer
	TypeDLInformationTransfer
	TypeReestablishmentRequest
	TypeReestablishment
	TypeRelease
	typeCount
)

var typeNames = [...]string{
	"Invalid",
	"RRCSetupRequest",
	"RRCSetup",
	"RRCSetupComplete",
	"RRCReject",
	"RRCSecurityModeCommand",
	"RRCSecurityModeComplete",
	"RRCSecurityModeFailure",
	"RRCReconfiguration",
	"RRCReconfigurationComplete",
	"ULInformationTransfer",
	"DLInformationTransfer",
	"RRCReestablishmentRequest",
	"RRCReestablishment",
	"RRCRelease",
}

// String returns the TS 38.331 message name.
func (t MsgType) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Valid reports whether t is a defined message type.
func (t MsgType) Valid() bool { return t > TypeInvalid && t < typeCount }

// Message is implemented by all RRC messages.
type Message interface {
	asn1lite.Marshaler
	// Type identifies the message.
	Type() MsgType
	// Direction reports whether the message is sent by the UE (uplink)
	// or the network (downlink).
	Direction() cell.Direction
}

// UEIdentityKind distinguishes the identity variants a SetupRequest may
// carry (TS 38.331 InitialUE-Identity).
type UEIdentityKind uint8

// Identity kinds.
const (
	// IdentityRandom is a 39-bit random value used on first contact.
	IdentityRandom UEIdentityKind = iota
	// IdentityTMSI is the ng-5G-S-TMSI-Part1 of a previously registered
	// UE. Replaying a victim's TMSI here is the basis of the Blind DoS
	// attack.
	IdentityTMSI
)

// UEIdentity is the initial UE identity in an RRC setup request.
type UEIdentity struct {
	Kind   UEIdentityKind
	Random uint64    // 39-bit random value when Kind == IdentityRandom
	TMSI   cell.TMSI // when Kind == IdentityTMSI
}

// String renders the identity for diagnostics.
func (id UEIdentity) String() string {
	if id.Kind == IdentityTMSI {
		return "s-tmsi:" + id.TMSI.String()
	}
	return fmt.Sprintf("random:0x%010X", id.Random)
}

// Field tags shared by the message encodings.
const (
	tagIdentityKind = 1
	tagRandom       = 2
	tagTMSI         = 3
	tagCause        = 4
	tagTransaction  = 5
	tagNASPDU       = 6
	tagCipherAlg    = 7
	tagIntegAlg     = 8
	tagWaitTime     = 9
	tagReleaseCause = 10
	tagRNTI         = 11
	tagPLMN         = 12
	tagSRBCount     = 13
)

// SetupRequest (UL) initiates an RRC connection ("RRC Conn." in Figure 2).
type SetupRequest struct {
	Identity UEIdentity
	Cause    cell.EstablishmentCause
}

// Type implements Message.
func (*SetupRequest) Type() MsgType { return TypeSetupRequest }

// Direction implements Message.
func (*SetupRequest) Direction() cell.Direction { return cell.Uplink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *SetupRequest) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(tagIdentityKind, uint64(m.Identity.Kind))
	switch m.Identity.Kind {
	case IdentityRandom:
		e.PutUint(tagRandom, m.Identity.Random)
	case IdentityTMSI:
		e.PutUint(tagTMSI, uint64(m.Identity.TMSI))
	}
	e.PutUint(tagCause, uint64(m.Cause))
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *SetupRequest) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case tagIdentityKind:
			v, err := d.Uint()
			if err != nil {
				return err
			}
			m.Identity.Kind = UEIdentityKind(v)
		case tagRandom:
			v, err := d.Uint()
			if err != nil {
				return err
			}
			m.Identity.Random = v
		case tagTMSI:
			v, err := d.Uint()
			if err != nil {
				return err
			}
			m.Identity.TMSI = cell.TMSI(v)
		case tagCause:
			v, err := d.Uint()
			if err != nil {
				return err
			}
			m.Cause = cell.EstablishmentCause(v)
		}
	}
	return d.Err()
}

// Setup (DL) admits the UE and configures SRB1 ("RRC Setup" in Figure 2).
type Setup struct {
	TransactionID uint8
	SRBCount      uint8 // configured signalling radio bearers
}

// Type implements Message.
func (*Setup) Type() MsgType { return TypeSetup }

// Direction implements Message.
func (*Setup) Direction() cell.Direction { return cell.Downlink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *Setup) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(tagTransaction, uint64(m.TransactionID))
	e.PutUint(tagSRBCount, uint64(m.SRBCount))
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *Setup) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case tagTransaction:
			v, err := d.Uint()
			if err != nil {
				return err
			}
			m.TransactionID = uint8(v)
		case tagSRBCount:
			v, err := d.Uint()
			if err != nil {
				return err
			}
			m.SRBCount = uint8(v)
		}
	}
	return d.Err()
}

// SetupComplete (UL) finishes establishment and piggybacks the first NAS
// message ("RRC Comp." in Figure 2; the NAS PDU is typically a
// Registration Request).
type SetupComplete struct {
	TransactionID uint8
	SelectedPLMN  string
	NASPDU        []byte
}

// Type implements Message.
func (*SetupComplete) Type() MsgType { return TypeSetupComplete }

// Direction implements Message.
func (*SetupComplete) Direction() cell.Direction { return cell.Uplink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *SetupComplete) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(tagTransaction, uint64(m.TransactionID))
	e.PutString(tagPLMN, m.SelectedPLMN)
	e.PutBytes(tagNASPDU, m.NASPDU)
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *SetupComplete) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case tagTransaction:
			v, err := d.Uint()
			if err != nil {
				return err
			}
			m.TransactionID = uint8(v)
		case tagPLMN:
			s, err := d.String()
			if err != nil {
				return err
			}
			m.SelectedPLMN = s
		case tagNASPDU:
			b, err := d.Bytes()
			if err != nil {
				return err
			}
			m.NASPDU = b
		}
	}
	return d.Err()
}

// Reject (DL) denies establishment, e.g. under overload — the visible
// symptom of a successful BTS DoS.
type Reject struct {
	WaitTime uint8 // seconds the UE must back off
}

// Type implements Message.
func (*Reject) Type() MsgType { return TypeReject }

// Direction implements Message.
func (*Reject) Direction() cell.Direction { return cell.Downlink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *Reject) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(tagWaitTime, uint64(m.WaitTime))
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *Reject) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
		if d.Tag() == tagWaitTime {
			v, err := d.Uint()
			if err != nil {
				return err
			}
			m.WaitTime = uint8(v)
		}
	}
	return d.Err()
}

// SecurityModeCommand (DL) activates AS security with the selected
// algorithms. A command selecting NEA0/NIA0 outside emergency service is
// the Null Cipher & Integrity attack signature.
type SecurityModeCommand struct {
	TransactionID uint8
	CipherAlg     cell.CipherAlg
	IntegAlg      cell.IntegAlg
}

// Type implements Message.
func (*SecurityModeCommand) Type() MsgType { return TypeSecurityModeCommand }

// Direction implements Message.
func (*SecurityModeCommand) Direction() cell.Direction { return cell.Downlink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *SecurityModeCommand) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(tagTransaction, uint64(m.TransactionID))
	e.PutUint(tagCipherAlg, uint64(m.CipherAlg))
	e.PutUint(tagIntegAlg, uint64(m.IntegAlg))
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *SecurityModeCommand) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case tagTransaction:
			v, err := d.Uint()
			if err != nil {
				return err
			}
			m.TransactionID = uint8(v)
		case tagCipherAlg:
			v, err := d.Uint()
			if err != nil {
				return err
			}
			m.CipherAlg = cell.CipherAlg(v)
		case tagIntegAlg:
			v, err := d.Uint()
			if err != nil {
				return err
			}
			m.IntegAlg = cell.IntegAlg(v)
		}
	}
	return d.Err()
}

// SecurityModeComplete (UL) confirms AS security activation.
type SecurityModeComplete struct {
	TransactionID uint8
}

// Type implements Message.
func (*SecurityModeComplete) Type() MsgType { return TypeSecurityModeComplete }

// Direction implements Message.
func (*SecurityModeComplete) Direction() cell.Direction { return cell.Uplink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *SecurityModeComplete) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(tagTransaction, uint64(m.TransactionID))
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *SecurityModeComplete) UnmarshalTLV(d *asn1lite.Decoder) error {
	return decodeTransactionOnly(d, &m.TransactionID)
}

// SecurityModeFailure (UL) rejects AS security activation.
type SecurityModeFailure struct {
	TransactionID uint8
}

// Type implements Message.
func (*SecurityModeFailure) Type() MsgType { return TypeSecurityModeFailure }

// Direction implements Message.
func (*SecurityModeFailure) Direction() cell.Direction { return cell.Uplink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *SecurityModeFailure) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(tagTransaction, uint64(m.TransactionID))
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *SecurityModeFailure) UnmarshalTLV(d *asn1lite.Decoder) error {
	return decodeTransactionOnly(d, &m.TransactionID)
}

// Reconfiguration (DL) reconfigures the connection (bearer setup after
// registration).
type Reconfiguration struct {
	TransactionID uint8
	NASPDU        []byte // optional piggybacked NAS
}

// Type implements Message.
func (*Reconfiguration) Type() MsgType { return TypeReconfiguration }

// Direction implements Message.
func (*Reconfiguration) Direction() cell.Direction { return cell.Downlink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *Reconfiguration) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(tagTransaction, uint64(m.TransactionID))
	if len(m.NASPDU) > 0 {
		e.PutBytes(tagNASPDU, m.NASPDU)
	}
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *Reconfiguration) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case tagTransaction:
			v, err := d.Uint()
			if err != nil {
				return err
			}
			m.TransactionID = uint8(v)
		case tagNASPDU:
			b, err := d.Bytes()
			if err != nil {
				return err
			}
			m.NASPDU = b
		}
	}
	return d.Err()
}

// ReconfigurationComplete (UL) confirms reconfiguration.
type ReconfigurationComplete struct {
	TransactionID uint8
}

// Type implements Message.
func (*ReconfigurationComplete) Type() MsgType { return TypeReconfigurationComplete }

// Direction implements Message.
func (*ReconfigurationComplete) Direction() cell.Direction { return cell.Uplink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *ReconfigurationComplete) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(tagTransaction, uint64(m.TransactionID))
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *ReconfigurationComplete) UnmarshalTLV(d *asn1lite.Decoder) error {
	return decodeTransactionOnly(d, &m.TransactionID)
}

// ULInformationTransfer (UL) carries a NAS PDU from UE to network.
type ULInformationTransfer struct {
	NASPDU []byte
}

// Type implements Message.
func (*ULInformationTransfer) Type() MsgType { return TypeULInformationTransfer }

// Direction implements Message.
func (*ULInformationTransfer) Direction() cell.Direction { return cell.Uplink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *ULInformationTransfer) MarshalTLV(e *asn1lite.Encoder) {
	e.PutBytes(tagNASPDU, m.NASPDU)
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *ULInformationTransfer) UnmarshalTLV(d *asn1lite.Decoder) error {
	return decodeNASPDUOnly(d, &m.NASPDU)
}

// DLInformationTransfer (DL) carries a NAS PDU from network to UE.
type DLInformationTransfer struct {
	NASPDU []byte
}

// Type implements Message.
func (*DLInformationTransfer) Type() MsgType { return TypeDLInformationTransfer }

// Direction implements Message.
func (*DLInformationTransfer) Direction() cell.Direction { return cell.Downlink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *DLInformationTransfer) MarshalTLV(e *asn1lite.Encoder) {
	e.PutBytes(tagNASPDU, m.NASPDU)
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *DLInformationTransfer) UnmarshalTLV(d *asn1lite.Decoder) error {
	return decodeNASPDUOnly(d, &m.NASPDU)
}

// ReestablishmentRequest (UL) asks to resume after radio-link failure.
type ReestablishmentRequest struct {
	RNTI  cell.RNTI // C-RNTI of the failed connection
	Cause cell.EstablishmentCause
}

// Type implements Message.
func (*ReestablishmentRequest) Type() MsgType { return TypeReestablishmentRequest }

// Direction implements Message.
func (*ReestablishmentRequest) Direction() cell.Direction { return cell.Uplink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *ReestablishmentRequest) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(tagRNTI, uint64(m.RNTI))
	e.PutUint(tagCause, uint64(m.Cause))
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *ReestablishmentRequest) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case tagRNTI:
			v, err := d.Uint()
			if err != nil {
				return err
			}
			m.RNTI = cell.RNTI(v)
		case tagCause:
			v, err := d.Uint()
			if err != nil {
				return err
			}
			m.Cause = cell.EstablishmentCause(v)
		}
	}
	return d.Err()
}

// Reestablishment (DL) accepts a reestablishment request.
type Reestablishment struct {
	TransactionID uint8
}

// Type implements Message.
func (*Reestablishment) Type() MsgType { return TypeReestablishment }

// Direction implements Message.
func (*Reestablishment) Direction() cell.Direction { return cell.Downlink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *Reestablishment) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(tagTransaction, uint64(m.TransactionID))
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *Reestablishment) UnmarshalTLV(d *asn1lite.Decoder) error {
	return decodeTransactionOnly(d, &m.TransactionID)
}

// ReleaseCause enumerates why the network released a connection.
type ReleaseCause uint8

// Release causes.
const (
	ReleaseOther ReleaseCause = iota
	ReleaseLoadBalancing
	ReleaseDeregistration
	ReleaseRLF // radio link failure detected by the network
)

// Release (DL) tears down the RRC connection.
type Release struct {
	Cause ReleaseCause
}

// Type implements Message.
func (*Release) Type() MsgType { return TypeRelease }

// Direction implements Message.
func (*Release) Direction() cell.Direction { return cell.Downlink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *Release) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(tagReleaseCause, uint64(m.Cause))
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *Release) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
		if d.Tag() == tagReleaseCause {
			v, err := d.Uint()
			if err != nil {
				return err
			}
			m.Cause = ReleaseCause(v)
		}
	}
	return d.Err()
}

func decodeTransactionOnly(d *asn1lite.Decoder, out *uint8) error {
	for d.Next() {
		if d.Tag() == tagTransaction {
			v, err := d.Uint()
			if err != nil {
				return err
			}
			*out = uint8(v)
		}
	}
	return d.Err()
}

func decodeNASPDUOnly(d *asn1lite.Decoder, out *[]byte) error {
	for d.Next() {
		if d.Tag() == tagNASPDU {
			b, err := d.Bytes()
			if err != nil {
				return err
			}
			*out = b
		}
	}
	return d.Err()
}
