package mobiflow

import (
	"reflect"
	"testing"
	"time"
)

// TestDecodeTraceIntoReusesBuffer pins the slice-reuse contract: decoding
// into a truncated previous batch appends the new records without
// growing a fresh backing array, and matches DecodeTrace.
func TestDecodeTraceIntoReusesBuffer(t *testing.T) {
	mk := func(n int, base uint64) Trace {
		tr := make(Trace, n)
		for i := range tr {
			tr[i] = Record{
				Seq: base + uint64(i), UEID: 7, Msg: "RRCSetupRequest",
				Timestamp: time.Unix(1700000000+int64(i), 0).UTC(),
			}
		}
		return tr
	}

	first := mk(6, 1)
	buf, err := DecodeTraceInto(nil, EncodeTrace(first))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(buf, first) {
		t.Fatalf("first decode = %+v", buf)
	}

	// Second, smaller batch into the truncated slice: same backing array.
	second := mk(4, 100)
	prev := &buf[:1][0]
	buf, err = DecodeTraceInto(buf[:0], EncodeTrace(second))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(buf, second) {
		t.Fatalf("second decode = %+v", buf)
	}
	if &buf[0] != prev {
		t.Error("reused decode grew a new backing array")
	}

	// DecodeTrace stays equivalent.
	direct, err := DecodeTrace(EncodeTrace(second))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, second) {
		t.Fatalf("DecodeTrace = %+v", direct)
	}

	// Garbage is rejected.
	if _, err := DecodeTraceInto(nil, []byte{0xff, 0x01, 0x02}); err == nil {
		t.Error("garbage accepted")
	}
}
