package mobiflow

import (
	"sync"
	"time"

	"github.com/6g-xsec/xsec/internal/cell"
	"github.com/6g-xsec/xsec/internal/nas"
	"github.com/6g-xsec/xsec/internal/rrc"
)

// Extractor is the telemetry-extraction engine embedded in the gNB's RIC
// agent. It consumes decoded RRC and NAS control messages per UE context,
// maintains the protocol state and identity bindings the telemetry schema
// requires, and emits one Record per message — "the RIC agent at the RAN
// data plane extracts, encodes, and reports the telemetry" (§3.1).
//
// Extractor is safe for concurrent use; the gNB may process UEs on
// separate goroutines.
type Extractor struct {
	clock func() time.Time

	mu  sync.Mutex
	seq uint64
	ues map[uint64]*ueView
}

// ueView is the per-UE state snapshot that fills the parameter set K.
type ueView struct {
	rnti       cell.RNTI
	tmsi       cell.TMSI
	supi       cell.SUPI
	cipher     cell.CipherAlg
	integ      cell.IntegAlg
	securityOn bool
	estCause   cell.EstablishmentCause
	rrcM       rrc.Machine
	nasM       nas.Machine
}

// NewExtractor returns an Extractor stamping records with clock (pass
// time.Now in production; tests pass a fake clock for determinism).
func NewExtractor(clock func() time.Time) *Extractor {
	return &Extractor{clock: clock, ues: make(map[uint64]*ueView)}
}

func (x *Extractor) view(ueID uint64) *ueView {
	v, ok := x.ues[ueID]
	if !ok {
		v = &ueView{}
		x.ues[ueID] = v
	}
	return v
}

// OnRRC records an RRC message observed on UE context ueID carried on
// rnti. retransmission marks duplicates detected at lower layers.
func (x *Extractor) OnRRC(ueID uint64, rnti cell.RNTI, m rrc.Message, retransmission bool) Record {
	x.mu.Lock()
	defer x.mu.Unlock()
	v := x.view(ueID)
	v.rnti = rnti

	switch msg := m.(type) {
	case *rrc.SetupRequest:
		v.estCause = msg.Cause
		if msg.Identity.Kind == rrc.IdentityTMSI {
			v.tmsi = msg.Identity.TMSI
		}
	case *rrc.SecurityModeCommand:
		// AS security algorithms; NAS SMC normally sets the same pair
		// first, but record whichever the UE actually employs.
		v.cipher = msg.CipherAlg
		v.integ = msg.IntegAlg
	}
	err := v.rrcM.Observe(m)
	// A duplicate of an already-accepted message is radio noise, not a
	// protocol violation; only first deliveries can be out of order.
	ooo := err != nil && !retransmission
	return x.emit(v, ueID, m.Type().String(), LayerRRC, m.Direction(), ooo, retransmission)
}

// OnNAS records a NAS message observed on UE context ueID.
func (x *Extractor) OnNAS(ueID uint64, m nas.Message, retransmission bool) Record {
	x.mu.Lock()
	defer x.mu.Unlock()
	v := x.view(ueID)

	switch msg := m.(type) {
	case *nas.RegistrationRequest:
		switch msg.Identity.Type {
		case nas.IdentityGUTI:
			v.tmsi = msg.Identity.GUTI.TMSI
		case nas.IdentitySUCI:
			x.noteSUCI(v, msg.Identity.SUCI)
		}
	case *nas.RegistrationAccept:
		v.tmsi = msg.GUTI.TMSI
	case *nas.SecurityModeCommand:
		v.cipher = msg.CipherAlg
		v.integ = msg.IntegAlg
	case *nas.SecurityModeComplete:
		v.securityOn = true
	case *nas.IdentityResponse:
		if msg.Identity.Type == nas.IdentitySUCI {
			x.noteSUCI(v, msg.Identity.SUCI)
		}
	case *nas.ServiceRequest:
		v.tmsi = msg.TMSI
	}
	err := v.nasM.Observe(m)
	ooo := err != nil && !retransmission
	return x.emit(v, ueID, m.Type().String(), LayerNAS, m.Direction(), ooo, retransmission)
}

// noteSUCI records a plaintext permanent identity when the SUCI uses the
// null protection scheme and NAS security is not yet active — the exposure
// identity-extraction attacks harvest.
func (x *Extractor) noteSUCI(v *ueView, suci cell.SUCI) {
	if suci.NullScheme() && !v.securityOn {
		v.supi = cell.SUPI("imsi-" + suci.PLMN.MCC + suci.PLMN.MNC + suci.MSIN)
	}
}

func (x *Extractor) emit(v *ueView, ueID uint64, msg string, layer Layer, dir cell.Direction, outOfOrder, retx bool) Record {
	x.seq++
	return Record{
		Seq:            x.seq,
		Timestamp:      x.clock(),
		UEID:           ueID,
		Msg:            msg,
		Layer:          layer,
		Dir:            dir,
		RNTI:           v.rnti,
		TMSI:           v.tmsi,
		SUPI:           v.supi,
		CipherAlg:      v.cipher,
		IntegAlg:       v.integ,
		SecurityOn:     v.securityOn,
		EstCause:       v.estCause,
		RRCState:       v.rrcM.State(),
		NASState:       v.nasM.State(),
		OutOfOrder:     outOfOrder,
		Retransmission: retx,
	}
}

// ReleaseUE drops the state for a UE context (after RRC release or
// context teardown). Subsequent messages on the same ID start fresh.
func (x *Extractor) ReleaseUE(ueID uint64) {
	x.mu.Lock()
	defer x.mu.Unlock()
	delete(x.ues, ueID)
}

// ActiveUEs reports how many UE contexts the extractor is tracking.
func (x *Extractor) ActiveUEs() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return len(x.ues)
}
