package mobiflow

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/6g-xsec/xsec/internal/cell"
	"github.com/6g-xsec/xsec/internal/nas"
	"github.com/6g-xsec/xsec/internal/rrc"
)

func sampleRecord() Record {
	return Record{
		Seq:        7,
		Timestamp:  time.Unix(1700000000, 123).UTC(),
		UEID:       3,
		Msg:        "RRCSetupRequest",
		Layer:      LayerRRC,
		Dir:        cell.Uplink,
		RNTI:       0x4601,
		TMSI:       0xCAFEBABE,
		SUPI:       "imsi-001010000000001",
		CipherAlg:  cell.NEA2,
		IntegAlg:   cell.NIA2,
		SecurityOn: true,
		EstCause:   cell.CauseMOSignalling,
		RRCState:   rrc.StateConnected,
		NASState:   nas.StateRegistered,
		OutOfOrder: true,
	}
}

func TestRecordTLVRoundTrip(t *testing.T) {
	in := sampleRecord()
	out, err := Decode(Encode(&in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip:\n got %#v\nwant %#v", out, in)
	}
}

func TestZeroRecordRoundTrip(t *testing.T) {
	in := Record{Timestamp: time.Unix(0, 0).UTC()}
	out, err := Decode(Encode(&in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("zero record round trip:\n got %#v\nwant %#v", out, in)
	}
}

func TestTraceEncodeDecode(t *testing.T) {
	in := Trace{sampleRecord(), sampleRecord()}
	in[1].Seq = 8
	in[1].Msg = "RegistrationRequest"
	in[1].Layer = LayerNAS
	out, err := DecodeTrace(EncodeTrace(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("trace round trip mismatch")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	in := Trace{sampleRecord()}
	in[0].Timestamp = time.Unix(1700000000, 123).UTC()
	var buf bytes.Buffer
	if err := in.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("CSV round trip:\n got %#v\nwant %#v", out[0], in[0])
	}
}

func TestCSVEmpty(t *testing.T) {
	tr, err := ReadCSV(strings.NewReader(""))
	if err != nil || tr != nil {
		t.Errorf("empty CSV: tr=%v err=%v", tr, err)
	}
}

func TestCSVMalformed(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b,c\n1,2,3\n")); err == nil {
		t.Error("malformed CSV accepted")
	}
}

func TestRecordString(t *testing.T) {
	s := sampleRecord().String()
	for _, want := range []string{"RRCSetupRequest", "0x4601", "0xCAFEBABE", "PLAINTEXT", "NEA2", "OUT-OF-ORDER"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestTraceHelpers(t *testing.T) {
	base := time.Unix(1000, 0).UTC()
	tr := Trace{
		{Seq: 3, UEID: 1, Msg: "c", Timestamp: base.Add(2 * time.Second)},
		{Seq: 1, UEID: 2, Msg: "a", Timestamp: base},
		{Seq: 2, UEID: 1, Msg: "b", Timestamp: base.Add(time.Second)},
	}
	tr.SortBySeq()
	if got := tr.Messages(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Messages() = %v", got)
	}
	if got := tr.UEs(); !reflect.DeepEqual(got, []uint64{1, 2}) {
		t.Errorf("UEs() = %v", got)
	}
	if got := tr.FilterUE(1); len(got) != 2 {
		t.Errorf("FilterUE(1) len = %d", len(got))
	}
	mid := tr.Between(base, base.Add(1500*time.Millisecond))
	if len(mid) != 2 {
		t.Errorf("Between len = %d, want 2", len(mid))
	}
}

func fakeClock() func() time.Time {
	t := time.Unix(1700000000, 0).UTC()
	return func() time.Time {
		t = t.Add(10 * time.Millisecond)
		return t
	}
}

func TestExtractorBenignSession(t *testing.T) {
	x := NewExtractor(fakeClock())
	const ue = 1
	suci := cell.SUCI{PLMN: cell.TestPLMN, Scheme: 0, MSIN: "0000000001"}

	var tr Trace
	add := func(r Record) { tr = append(tr, r) }

	add(x.OnRRC(ue, 0x4601, &rrc.SetupRequest{Identity: rrc.UEIdentity{Kind: rrc.IdentityRandom, Random: 1}, Cause: cell.CauseMOSignalling}, false))
	add(x.OnRRC(ue, 0x4601, &rrc.Setup{}, false))
	add(x.OnRRC(ue, 0x4601, &rrc.SetupComplete{}, false))
	add(x.OnNAS(ue, &nas.RegistrationRequest{Identity: nas.MobileIdentity{Type: nas.IdentitySUCI, SUCI: suci}}, false))
	add(x.OnNAS(ue, &nas.AuthenticationRequest{}, false))
	add(x.OnNAS(ue, &nas.AuthenticationResponse{}, false))
	add(x.OnNAS(ue, &nas.SecurityModeCommand{CipherAlg: cell.NEA2, IntegAlg: cell.NIA2}, false))
	add(x.OnNAS(ue, &nas.SecurityModeComplete{}, false))
	add(x.OnNAS(ue, &nas.RegistrationAccept{GUTI: cell.GUTI{PLMN: cell.TestPLMN, TMSI: 0xAB}}, false))

	for i, r := range tr {
		if r.OutOfOrder {
			t.Errorf("record %d (%s) flagged out-of-order", i, r.Msg)
		}
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d Seq = %d", i, r.Seq)
		}
	}
	last := tr[len(tr)-1]
	if last.TMSI != 0xAB {
		t.Errorf("final TMSI = %s", last.TMSI)
	}
	if !last.SecurityOn || last.CipherAlg != cell.NEA2 || last.IntegAlg != cell.NIA2 {
		t.Errorf("security state = on=%v %s/%s", last.SecurityOn, last.CipherAlg, last.IntegAlg)
	}
	if last.NASState != nas.StateRegistered {
		t.Errorf("NAS state = %v", last.NASState)
	}
	if last.EstCause != cell.CauseMOSignalling {
		t.Errorf("cause = %v", last.EstCause)
	}
	// Null-scheme SUCI in a registration before security reveals the SUPI.
	if last.SUPI != "imsi-001010000000001" {
		t.Errorf("SUPI = %q", last.SUPI)
	}
	// Timestamps strictly increase.
	for i := 1; i < len(tr); i++ {
		if !tr[i].Timestamp.After(tr[i-1].Timestamp) {
			t.Errorf("timestamp %d not increasing", i)
		}
	}
}

func TestExtractorFlagsOutOfOrder(t *testing.T) {
	x := NewExtractor(fakeClock())
	// Identity Response with no preceding registration → NAS out-of-order.
	r := x.OnNAS(5, &nas.IdentityResponse{Identity: nas.MobileIdentity{Type: nas.IdentitySUCI, SUCI: cell.SUCI{PLMN: cell.TestPLMN, MSIN: "42"}}}, false)
	if !r.OutOfOrder {
		t.Error("IdentityResponse in DEREGISTERED not flagged")
	}
	if r.SUPI == "" {
		t.Error("plaintext identity not captured")
	}
}

func TestExtractorConcealedSUCINotRevealed(t *testing.T) {
	x := NewExtractor(fakeClock())
	suci := cell.SUCI{PLMN: cell.TestPLMN, Scheme: 1, MSIN: "**********"}
	r := x.OnNAS(1, &nas.RegistrationRequest{Identity: nas.MobileIdentity{Type: nas.IdentitySUCI, SUCI: suci}}, false)
	if r.SUPI != "" {
		t.Errorf("concealed SUCI revealed SUPI %q", r.SUPI)
	}
}

func TestExtractorTMSIFromRRCSetup(t *testing.T) {
	x := NewExtractor(fakeClock())
	r := x.OnRRC(1, 0x11, &rrc.SetupRequest{Identity: rrc.UEIdentity{Kind: rrc.IdentityTMSI, TMSI: 0xFEED}}, false)
	if r.TMSI != 0xFEED {
		t.Errorf("TMSI = %s", r.TMSI)
	}
}

func TestExtractorRelease(t *testing.T) {
	x := NewExtractor(fakeClock())
	x.OnRRC(1, 0x11, &rrc.SetupRequest{}, false)
	if x.ActiveUEs() != 1 {
		t.Fatalf("ActiveUEs = %d", x.ActiveUEs())
	}
	x.ReleaseUE(1)
	if x.ActiveUEs() != 0 {
		t.Fatalf("ActiveUEs after release = %d", x.ActiveUEs())
	}
	// Fresh context: old state must be gone.
	r := x.OnRRC(1, 0x12, &rrc.SetupRequest{}, false)
	if r.OutOfOrder {
		t.Error("fresh context inherited stale state")
	}
	if r.Seq != 2 {
		t.Errorf("Seq = %d, want global sequence to continue", r.Seq)
	}
}

func TestExtractorRetransmissionMarked(t *testing.T) {
	x := NewExtractor(fakeClock())
	x.OnRRC(1, 0x11, &rrc.SetupRequest{}, false)
	r := x.OnRRC(1, 0x11, &rrc.SetupRequest{}, true)
	if !r.Retransmission {
		t.Error("retransmission not marked")
	}
	if r.OutOfOrder {
		t.Error("retransmitted SetupRequest flagged out-of-order")
	}
}

// Property: records with arbitrary field values survive the TLV round trip.
func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(seq, ue uint64, msg string, rnti uint16, tmsi uint32, dir, layer, cipher, integ, cause, rrcS, nasS uint8, secOn, ooo, retx bool, ns int64) bool {
		in := Record{
			Seq: seq, Timestamp: time.Unix(0, ns).UTC(), UEID: ue, Msg: msg,
			Layer: Layer(layer % 2), Dir: cell.Direction(dir % 2),
			RNTI: cell.RNTI(rnti), TMSI: cell.TMSI(tmsi),
			CipherAlg: cell.CipherAlg(cipher % 4), IntegAlg: cell.IntegAlg(integ % 4),
			SecurityOn: secOn, EstCause: cell.EstablishmentCause(cause % 10),
			RRCState: rrc.State(rrcS % 6), NASState: nas.State(nasS % 6),
			OutOfOrder: ooo, Retransmission: retx,
		}
		out, err := Decode(Encode(&in))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExtractorOnRRC(b *testing.B) {
	x := NewExtractor(time.Now)
	msg := &rrc.SetupRequest{Identity: rrc.UEIdentity{Kind: rrc.IdentityTMSI, TMSI: 1}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.OnRRC(uint64(i%100), cell.RNTI(i), msg, false)
	}
}

func BenchmarkRecordEncode(b *testing.B) {
	r := sampleRecord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(&r)
	}
}
