package mobiflow

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"github.com/6g-xsec/xsec/internal/cell"
	"github.com/6g-xsec/xsec/internal/nas"
	"github.com/6g-xsec/xsec/internal/rrc"
)

// Trace is a time series τ = {x_1, ..., x_M} of telemetry records, ordered
// by sequence number.
type Trace []Record

// SortBySeq orders the trace by sequence number (stable for equal Seq).
func (t Trace) SortBySeq() {
	sort.SliceStable(t, func(i, j int) bool { return t[i].Seq < t[j].Seq })
}

// FilterUE returns the sub-trace belonging to one UE context.
func (t Trace) FilterUE(ueID uint64) Trace {
	var out Trace
	for _, r := range t {
		if r.UEID == ueID {
			out = append(out, r)
		}
	}
	return out
}

// FirstSeq returns the lowest sequence number in the trace (0 when
// empty). The trace need not be sorted.
func (t Trace) FirstSeq() uint64 {
	if len(t) == 0 {
		return 0
	}
	first := t[0].Seq
	for _, r := range t[1:] {
		if r.Seq < first {
			first = r.Seq
		}
	}
	return first
}

// LastSeq returns the highest sequence number in the trace (0 when
// empty). The trace need not be sorted.
func (t Trace) LastSeq() uint64 {
	var last uint64
	for _, r := range t {
		if r.Seq > last {
			last = r.Seq
		}
	}
	return last
}

// UEs returns the distinct UE context IDs in the trace, sorted.
func (t Trace) UEs() []uint64 {
	seen := make(map[uint64]bool)
	for _, r := range t {
		seen[r.UEID] = true
	}
	ids := make([]uint64, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Between returns records with Timestamp in [from, to).
func (t Trace) Between(from, to time.Time) Trace {
	var out Trace
	for _, r := range t {
		if !r.Timestamp.Before(from) && r.Timestamp.Before(to) {
			out = append(out, r)
		}
	}
	return out
}

// Messages returns the message-name sequence, the m_i series.
func (t Trace) Messages() []string {
	out := make([]string, len(t))
	for i, r := range t {
		out[i] = r.Msg
	}
	return out
}

// csvHeader lists the exported CSV columns, mirroring Table 1.
var csvHeader = []string{
	"seq", "timestamp_ns", "ue_id", "msg", "layer", "dir",
	"rnti", "s_tmsi", "supi", "cipher_alg", "integrity_alg", "security_on",
	"establish_cause", "rrc_state", "nas_state", "out_of_order", "retransmission",
}

// WriteCSV exports the trace in the CSV form used by the dataset tooling.
func (t Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("mobiflow: writing CSV header: %w", err)
	}
	for _, r := range t {
		row := []string{
			strconv.FormatUint(r.Seq, 10),
			strconv.FormatInt(r.Timestamp.UnixNano(), 10),
			strconv.FormatUint(r.UEID, 10),
			r.Msg,
			r.Layer.String(),
			r.Dir.String(),
			strconv.FormatUint(uint64(r.RNTI), 10),
			strconv.FormatUint(uint64(r.TMSI), 10),
			string(r.SUPI),
			strconv.Itoa(int(r.CipherAlg)),
			strconv.Itoa(int(r.IntegAlg)),
			strconv.FormatBool(r.SecurityOn),
			strconv.Itoa(int(r.EstCause)),
			strconv.Itoa(int(r.RRCState)),
			strconv.Itoa(int(r.NASState)),
			strconv.FormatBool(r.OutOfOrder),
			strconv.FormatBool(r.Retransmission),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("mobiflow: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace exported by WriteCSV.
func ReadCSV(r io.Reader) (Trace, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.FieldsPerRecord = len(csvHeader)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("mobiflow: reading CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, nil
	}
	var tr Trace
	for i, row := range rows {
		if i == 0 {
			continue // header
		}
		rec, err := parseCSVRow(row)
		if err != nil {
			return nil, fmt.Errorf("mobiflow: CSV row %d: %w", i, err)
		}
		tr = append(tr, rec)
	}
	return tr, nil
}

func parseCSVRow(row []string) (Record, error) {
	var r Record
	var err error
	fail := func(col string, e error) (Record, error) {
		return Record{}, fmt.Errorf("column %s: %w", col, e)
	}
	if r.Seq, err = strconv.ParseUint(row[0], 10, 64); err != nil {
		return fail("seq", err)
	}
	ns, err := strconv.ParseInt(row[1], 10, 64)
	if err != nil {
		return fail("timestamp_ns", err)
	}
	r.Timestamp = time.Unix(0, ns).UTC()
	if r.UEID, err = strconv.ParseUint(row[2], 10, 64); err != nil {
		return fail("ue_id", err)
	}
	r.Msg = row[3]
	if row[4] == "NAS" {
		r.Layer = LayerNAS
	}
	if row[5] == "DL" {
		r.Dir = cell.Downlink
	}
	rnti, err := strconv.ParseUint(row[6], 10, 16)
	if err != nil {
		return fail("rnti", err)
	}
	r.RNTI = cell.RNTI(rnti)
	tmsi, err := strconv.ParseUint(row[7], 10, 32)
	if err != nil {
		return fail("s_tmsi", err)
	}
	r.TMSI = cell.TMSI(tmsi)
	r.SUPI = cell.SUPI(row[8])
	ca, err := strconv.Atoi(row[9])
	if err != nil {
		return fail("cipher_alg", err)
	}
	r.CipherAlg = cell.CipherAlg(ca)
	ia, err := strconv.Atoi(row[10])
	if err != nil {
		return fail("integrity_alg", err)
	}
	r.IntegAlg = cell.IntegAlg(ia)
	if r.SecurityOn, err = strconv.ParseBool(row[11]); err != nil {
		return fail("security_on", err)
	}
	ec, err := strconv.Atoi(row[12])
	if err != nil {
		return fail("establish_cause", err)
	}
	r.EstCause = cell.EstablishmentCause(ec)
	rs, err := strconv.Atoi(row[13])
	if err != nil {
		return fail("rrc_state", err)
	}
	r.RRCState = rrc.State(rs)
	nsState, err := strconv.Atoi(row[14])
	if err != nil {
		return fail("nas_state", err)
	}
	r.NASState = nas.State(nsState)
	if r.OutOfOrder, err = strconv.ParseBool(row[15]); err != nil {
		return fail("out_of_order", err)
	}
	if r.Retransmission, err = strconv.ParseBool(row[16]); err != nil {
		return fail("retransmission", err)
	}
	return r, nil
}
