// Package mobiflow implements the MOBIFLOW security-telemetry stream
// (§3.1 of the 6G-XSec paper, following Wen et al., "A fine-grained
// telemetry stream for security services in 5G open radio access
// networks").
//
// A telemetry entry x_i is collected at each control-message transmission:
//
//	x_i = [t_i, m_i, p_1 ... p_k]
//
// where m_i is the RRC or NAS message and the p_k are UE-specific
// parameters (Table 1): RNTI, S-TMSI, SUPI, ciphering and integrity
// algorithms, and the RRC establishment cause, plus the RRC/NAS protocol
// states the CU tracks. A time series τ = {x_1 ... x_M} from the RAN is a
// Trace.
//
// Records are produced by the gNB's RIC agent (internal/gnb), transported
// over E2 inside the E2SM-MOBIFLOW service model (internal/e2sm), stored
// in the SDL (internal/sdl), and consumed by the MobiWatch and LLM
// Analyzer xApps.
package mobiflow

import (
	"fmt"
	"strings"
	"time"

	"github.com/6g-xsec/xsec/internal/asn1lite"
	"github.com/6g-xsec/xsec/internal/cell"
	"github.com/6g-xsec/xsec/internal/nas"
	"github.com/6g-xsec/xsec/internal/rrc"
)

// Layer identifies which protocol produced the message field of a record.
type Layer uint8

// Protocol layers.
const (
	LayerRRC Layer = iota
	LayerNAS
)

// String returns "RRC" or "NAS".
func (l Layer) String() string {
	if l == LayerRRC {
		return "RRC"
	}
	return "NAS"
}

// Record is one MOBIFLOW telemetry entry. Fields correspond to Table 1 of
// the paper; zero values mean "not (yet) known" (e.g. TMSI before the AMF
// assigns one, SUPI unless it was revealed in plaintext).
type Record struct {
	// Seq is the gNB-assigned monotonic sequence number of the entry.
	Seq uint64
	// Timestamp is the collection time t_i.
	Timestamp time.Time
	// UEID is the CU-local UE context identifier the entry belongs to.
	UEID uint64

	// Msg is the RRC or NAS message name m_i.
	Msg string
	// Layer tells which protocol Msg belongs to.
	Layer Layer
	// Dir is the transmission direction.
	Dir cell.Direction

	// RNTI is the UE's C-RNTI at collection time.
	RNTI cell.RNTI
	// TMSI is the 5G-S-TMSI if one is associated with the UE context.
	TMSI cell.TMSI
	// SUPI is the permanent identifier if (and only if) it has been
	// observed in plaintext on the air interface.
	SUPI cell.SUPI

	// CipherAlg and IntegAlg are the security algorithms currently
	// selected for the UE (NEA0/NIA0 until security activation).
	CipherAlg cell.CipherAlg
	IntegAlg  cell.IntegAlg
	// SecurityOn reports whether NAS security has been activated, which
	// disambiguates "NEA0 because no security yet" from "NEA0 selected".
	SecurityOn bool

	// EstCause is the RRC establishment cause from the UE.
	EstCause cell.EstablishmentCause

	// RRCState and NASState are the CU-tracked protocol states after
	// this message.
	RRCState rrc.State
	NASState nas.State

	// OutOfOrder is set when the message violated the protocol state
	// machine (a TransitionError), the univariate anomaly signal of
	// Figure 2a.
	OutOfOrder bool
	// Retransmission marks duplicate messages caused by radio noise —
	// the main source of benign false positives in the paper (§4.1).
	Retransmission bool
}

// String renders a compact single-line form used in logs and LLM prompts.
func (r Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %s %s %s rnti=%s", r.Seq, r.Dir, r.Layer, r.Msg, r.RNTI)
	if r.TMSI != cell.InvalidTMSI {
		fmt.Fprintf(&b, " tmsi=%s", r.TMSI)
	}
	if r.SUPI != "" {
		fmt.Fprintf(&b, " supi=%s(PLAINTEXT)", r.SUPI)
	}
	sec := "off"
	if r.SecurityOn {
		sec = "on"
	}
	fmt.Fprintf(&b, " cipher=%s integ=%s sec=%s cause=%s rrc=%s nas=%s",
		r.CipherAlg, r.IntegAlg, sec, r.EstCause, r.RRCState, r.NASState)
	if r.OutOfOrder {
		b.WriteString(" OUT-OF-ORDER")
	}
	if r.Retransmission {
		b.WriteString(" RETX")
	}
	return b.String()
}

// TLV field tags for the E2 encoding of a record.
const (
	tagSeq        = 1
	tagTimestamp  = 2
	tagUEID       = 3
	tagMsg        = 4
	tagLayer      = 5
	tagDir        = 6
	tagRNTI       = 7
	tagTMSI       = 8
	tagSUPI       = 9
	tagCipherAlg  = 10
	tagIntegAlg   = 11
	tagSecurityOn = 12
	tagEstCause   = 13
	tagRRCState   = 14
	tagNASState   = 15
	tagOutOfOrder = 16
	tagRetrans    = 17
)

// MarshalTLV implements asn1lite.Marshaler.
func (r *Record) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(tagSeq, r.Seq)
	e.PutInt(tagTimestamp, r.Timestamp.UnixNano())
	e.PutUint(tagUEID, r.UEID)
	e.PutString(tagMsg, r.Msg)
	e.PutUint(tagLayer, uint64(r.Layer))
	e.PutUint(tagDir, uint64(r.Dir))
	e.PutUint(tagRNTI, uint64(r.RNTI))
	e.PutUint(tagTMSI, uint64(r.TMSI))
	e.PutString(tagSUPI, string(r.SUPI))
	e.PutUint(tagCipherAlg, uint64(r.CipherAlg))
	e.PutUint(tagIntegAlg, uint64(r.IntegAlg))
	e.PutBool(tagSecurityOn, r.SecurityOn)
	e.PutUint(tagEstCause, uint64(r.EstCause))
	e.PutUint(tagRRCState, uint64(r.RRCState))
	e.PutUint(tagNASState, uint64(r.NASState))
	e.PutBool(tagOutOfOrder, r.OutOfOrder)
	e.PutBool(tagRetrans, r.Retransmission)
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (r *Record) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
		var err error
		switch d.Tag() {
		case tagSeq:
			r.Seq, err = d.Uint()
		case tagTimestamp:
			var ns int64
			ns, err = d.Int()
			if err == nil {
				r.Timestamp = time.Unix(0, ns).UTC()
			}
		case tagUEID:
			r.UEID, err = d.Uint()
		case tagMsg:
			r.Msg, err = d.String()
		case tagLayer:
			var v uint64
			v, err = d.Uint()
			r.Layer = Layer(v)
		case tagDir:
			var v uint64
			v, err = d.Uint()
			r.Dir = cell.Direction(v)
		case tagRNTI:
			var v uint64
			v, err = d.Uint()
			r.RNTI = cell.RNTI(v)
		case tagTMSI:
			var v uint64
			v, err = d.Uint()
			r.TMSI = cell.TMSI(v)
		case tagSUPI:
			var s string
			s, err = d.String()
			r.SUPI = cell.SUPI(s)
		case tagCipherAlg:
			var v uint64
			v, err = d.Uint()
			r.CipherAlg = cell.CipherAlg(v)
		case tagIntegAlg:
			var v uint64
			v, err = d.Uint()
			r.IntegAlg = cell.IntegAlg(v)
		case tagSecurityOn:
			r.SecurityOn, err = d.Bool()
		case tagEstCause:
			var v uint64
			v, err = d.Uint()
			r.EstCause = cell.EstablishmentCause(v)
		case tagRRCState:
			var v uint64
			v, err = d.Uint()
			r.RRCState = rrc.State(v)
		case tagNASState:
			var v uint64
			v, err = d.Uint()
			r.NASState = nas.State(v)
		case tagOutOfOrder:
			r.OutOfOrder, err = d.Bool()
		case tagRetrans:
			r.Retransmission, err = d.Bool()
		}
		if err != nil {
			return fmt.Errorf("mobiflow: record tag %d: %w", d.Tag(), err)
		}
	}
	return d.Err()
}

// Encode serializes a record for E2 transport.
func Encode(r *Record) []byte { return asn1lite.Marshal(r) }

// Decode parses a record from its E2 wire form.
func Decode(data []byte) (Record, error) {
	var r Record
	if err := asn1lite.Unmarshal(data, &r); err != nil {
		return Record{}, err
	}
	return r, nil
}

// EncodeTrace serializes a whole trace as repeated nested records.
func EncodeTrace(tr Trace) []byte {
	var e asn1lite.Encoder
	AppendTrace(&e, tr)
	return e.Bytes()
}

// AppendTrace appends tr's EncodeTrace wire form to e. Hot paths hold a
// long-lived encoder and call this per batch: the encoder's buffer and
// its nested-record child are reused, so steady-state encoding of a
// telemetry batch allocates nothing.
func AppendTrace(e *asn1lite.Encoder, tr Trace) {
	for i := range tr {
		e.PutMessage(1, &tr[i])
	}
}

// DecodeTrace parses a trace produced by EncodeTrace.
func DecodeTrace(data []byte) (Trace, error) {
	tr, err := DecodeTraceInto(nil, data)
	if err != nil {
		return nil, err
	}
	return tr, nil
}

// DecodeTraceInto parses a trace produced by EncodeTrace, appending its
// records to buf. Streaming consumers pass the previous batch's slice
// (truncated to buf[:0]) so steady-state batch decoding reuses one
// backing array instead of growing a fresh slice per indication. The
// appended records are returned even on error, alongside it.
func DecodeTraceInto(buf Trace, data []byte) (Trace, error) {
	d := asn1lite.NewDecoder(data)
	for d.Next() {
		if d.Tag() != 1 {
			continue
		}
		buf = append(buf, Record{})
		if err := d.Message(&buf[len(buf)-1]); err != nil {
			return buf, err
		}
	}
	return buf, d.Err()
}
