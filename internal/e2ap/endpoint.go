package e2ap

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/prov"
	"github.com/6g-xsec/xsec/internal/wire"
)

// encBufPool recycles encode buffers across Send calls (and across
// endpoints — the E2 Termination serves one goroutine per connected gNB,
// all drawing from the same pool). wire.Conn.Send hands the buffer to the
// kernel synchronously, so returning it to the pool right after Send is
// safe.
var encBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

// Per-direction, per-procedure transport counters. The series handles
// are interned once per message type at init so the Send/Recv hot
// paths pay a single atomic add each.
var (
	e2apMessages = obs.NewCounterVec("xsec_e2ap_messages_total",
		"E2AP messages crossing endpoints, by direction and procedure.", "dir", "type")
	e2apErrors = obs.NewCounterVec("xsec_e2ap_errors_total",
		"E2AP transport failures, by direction.", "dir")

	txByType, rxByType [typeCount]*obs.Counter
	txErrors           = e2apErrors.With("tx")
	rxErrors           = e2apErrors.With("rx")
)

func init() {
	for t := TypeInvalid; t < typeCount; t++ {
		txByType[t] = e2apMessages.With("tx", t.String())
		rxByType[t] = e2apMessages.With("rx", t.String())
	}
}

// Endpoint sends and receives E2AP messages over a framed connection. It
// is used by both sides of the E2 interface: the gNB's RIC agent and the
// RIC's E2 Termination.
type Endpoint struct {
	conn    *wire.Conn
	nextTxn atomic.Uint64
	// nodeID, when set, attributes outbound indications to their
	// emitting node so the transport hop joins the provenance chain.
	nodeID atomic.Value // string
}

// SetNodeID names the E2 node this endpoint transmits for (the gNB
// agent sets it before the setup handshake). Safe for concurrent use
// with Send.
func (ep *Endpoint) SetNodeID(id string) { ep.nodeID.Store(id) }

// NewEndpoint wraps an established framed connection.
func NewEndpoint(conn *wire.Conn) *Endpoint {
	return &Endpoint{conn: conn}
}

// Send encodes and transmits a message, assigning a fresh transaction ID
// when the message has none.
func (ep *Endpoint) Send(m *Message) error {
	if m.TransactionID == 0 {
		m.TransactionID = ep.nextTxn.Add(1)
	}
	bp := encBufPool.Get().(*[]byte)
	*bp = AppendEncode((*bp)[:0], m)
	err := ep.conn.Send(*bp)
	encBufPool.Put(bp)
	if err != nil {
		txErrors.Inc()
		return fmt.Errorf("e2ap: sending %s: %w", m.Type, err)
	}
	if m.Type < typeCount {
		txByType[m.Type].Inc()
	}
	if m.Type == TypeIndication {
		if n, ok := ep.nodeID.Load().(string); ok && n != "" {
			prov.Record(prov.Event{
				Chain: prov.ChainID{Node: n, SN: m.IndicationSN},
				Kind:  prov.KindTransport,
				Label: "sent",
			})
		}
	}
	return nil
}

// Recv blocks for the next message. io.EOF signals a clean peer close.
func (ep *Endpoint) Recv() (*Message, error) {
	data, err := ep.conn.Recv()
	if err != nil {
		return nil, err
	}
	m, err := Decode(data)
	if err != nil {
		rxErrors.Inc()
		return nil, fmt.Errorf("e2ap: receiving: %w", err)
	}
	if m.Type < typeCount {
		rxByType[m.Type].Inc()
	}
	return m, nil
}

// Close closes the underlying connection.
func (ep *Endpoint) Close() error { return ep.conn.Close() }

// Pipe returns a connected in-process endpoint pair for tests and
// loopback deployments.
func Pipe() (*Endpoint, *Endpoint) {
	a, b := wire.Pipe()
	return NewEndpoint(a), NewEndpoint(b)
}
