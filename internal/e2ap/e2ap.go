// Package e2ap implements the E2 Application Protocol (O-RAN WG3 E2AP)
// subset the 6G-XSec framework uses: E2 Setup, RIC Subscription
// (request/response/failure/delete), RIC Indication (the report primitive
// that carries telemetry), RIC Control (request/ack/failure, the
// closed-loop feedback primitive), and Error Indication.
//
// E2AP is a union of procedure PDUs; this package models it as a single
// Message struct with a Type discriminator, TLV-encoded via asn1lite and
// framed over internal/wire (substituting for ASN.1 PER over SCTP, see
// DESIGN.md §1).
package e2ap

import (
	"errors"
	"fmt"

	"github.com/6g-xsec/xsec/internal/asn1lite"
)

// MessageType discriminates E2AP procedure PDUs.
type MessageType uint8

// E2AP message types.
const (
	TypeInvalid MessageType = iota
	TypeE2SetupRequest
	TypeE2SetupResponse
	TypeE2SetupFailure
	TypeSubscriptionRequest
	TypeSubscriptionResponse
	TypeSubscriptionFailure
	TypeSubscriptionDeleteRequest
	TypeSubscriptionDeleteResponse
	TypeIndication
	TypeControlRequest
	TypeControlAck
	TypeControlFailure
	TypeErrorIndication
	typeCount
)

var typeNames = [...]string{
	"Invalid",
	"E2SetupRequest", "E2SetupResponse", "E2SetupFailure",
	"RICSubscriptionRequest", "RICSubscriptionResponse", "RICSubscriptionFailure",
	"RICSubscriptionDeleteRequest", "RICSubscriptionDeleteResponse",
	"RICIndication",
	"RICControlRequest", "RICControlAcknowledge", "RICControlFailure",
	"ErrorIndication",
}

// String returns the E2AP procedure name.
func (t MessageType) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("MessageType(%d)", uint8(t))
}

// Valid reports whether t is a defined type.
func (t MessageType) Valid() bool { return t > TypeInvalid && t < typeCount }

// ActionType is the E2 action kind within a subscription (§2.1 of the
// paper: report, insert, control, policy).
type ActionType uint8

// Action types.
const (
	ActionReport ActionType = iota
	ActionInsert
	ActionPolicy
)

// String returns the action name.
func (a ActionType) String() string {
	switch a {
	case ActionReport:
		return "report"
	case ActionInsert:
		return "insert"
	case ActionPolicy:
		return "policy"
	}
	return fmt.Sprintf("ActionType(%d)", uint8(a))
}

// RANFunction describes one service model exposed by an E2 node.
type RANFunction struct {
	ID  uint16
	OID string // service-model object identifier
	// Definition is the E2SM-specific function description.
	Definition []byte
}

// Action is one requested action within a RIC subscription.
type Action struct {
	ID   uint16
	Type ActionType
	// Definition is the E2SM-specific action definition.
	Definition []byte
}

// RequestID identifies an xApp's request (requestor + instance), echoed
// in all responses and indications for the subscription.
type RequestID struct {
	Requestor uint32
	Instance  uint32
}

// String renders "requestor/instance".
func (r RequestID) String() string { return fmt.Sprintf("%d/%d", r.Requestor, r.Instance) }

// Message is one E2AP PDU. Only the fields relevant to Type are
// populated; see the constructors for the per-procedure field sets.
type Message struct {
	Type          MessageType
	TransactionID uint64

	// E2 Setup.
	NodeID       string
	RANFunctions []RANFunction

	// Subscription / indication / control routing.
	RequestID     RequestID
	RANFunctionID uint16

	// Subscription contents.
	EventTrigger []byte
	Actions      []Action
	// AdmittedActions lists action IDs accepted in a response.
	AdmittedActions []uint16

	// Indication contents.
	ActionID          uint16
	IndicationSN      uint64
	IndicationHeader  []byte
	IndicationMessage []byte

	// Control contents.
	ControlHeader  []byte
	ControlMessage []byte

	// Failure / error cause.
	Cause string
}

// Reset clears m for reuse, retaining the capacity of its slice fields.
// A Message cycled through Reset + DecodeInto amortizes to zero
// allocations per PDU on the ingest hot path. Note that byte fields keep
// their empty-but-non-nil state after Reset, so a reused Message is not
// guaranteed to be DeepEqual to a freshly decoded one; the populated
// field values are identical.
func (m *Message) Reset() {
	m.Type = TypeInvalid
	m.TransactionID = 0
	m.NodeID = ""
	m.RANFunctions = m.RANFunctions[:0]
	m.RequestID = RequestID{}
	m.RANFunctionID = 0
	m.EventTrigger = m.EventTrigger[:0]
	m.Actions = m.Actions[:0]
	m.AdmittedActions = m.AdmittedActions[:0]
	m.ActionID = 0
	m.IndicationSN = 0
	m.IndicationHeader = m.IndicationHeader[:0]
	m.IndicationMessage = m.IndicationMessage[:0]
	m.ControlHeader = m.ControlHeader[:0]
	m.ControlMessage = m.ControlMessage[:0]
	m.Cause = ""
}

// appendField copies raw into dst's storage, preserving the decode
// contract that an empty field yields an empty non-nil slice (so encode →
// decode round-trips distinguish "absent" from "present but empty").
func appendField(dst, raw []byte) []byte {
	if len(raw) == 0 {
		if dst == nil {
			return []byte{}
		}
		return dst[:0]
	}
	return append(dst[:0], raw...)
}

// TLV tags.
const (
	tagType          = 1
	tagTransactionID = 2
	tagNodeID        = 3
	tagRANFunction   = 4
	tagRequestor     = 5
	tagInstance      = 6
	tagRANFunctionID = 7
	tagEventTrigger  = 8
	tagAction        = 9
	tagAdmitted      = 10
	tagActionID      = 11
	tagIndicationSN  = 12
	tagIndHeader     = 13
	tagIndMessage    = 14
	tagCtrlHeader    = 15
	tagCtrlMessage   = 16
	tagCause         = 17

	// nested RANFunction tags
	tagRFID  = 1
	tagRFOID = 2
	tagRFDef = 3

	// nested Action tags
	tagActID   = 1
	tagActType = 2
	tagActDef  = 3
)

// MarshalTLV implements asn1lite.Marshaler.
func (m *Message) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(tagType, uint64(m.Type))
	e.PutUint(tagTransactionID, m.TransactionID)
	if m.NodeID != "" {
		e.PutString(tagNodeID, m.NodeID)
	}
	for _, rf := range m.RANFunctions {
		rf := rf
		e.PutNested(tagRANFunction, func(inner *asn1lite.Encoder) {
			inner.PutUint(tagRFID, uint64(rf.ID))
			inner.PutString(tagRFOID, rf.OID)
			inner.PutBytes(tagRFDef, rf.Definition)
		})
	}
	e.PutUint(tagRequestor, uint64(m.RequestID.Requestor))
	e.PutUint(tagInstance, uint64(m.RequestID.Instance))
	e.PutUint(tagRANFunctionID, uint64(m.RANFunctionID))
	if m.EventTrigger != nil {
		e.PutBytes(tagEventTrigger, m.EventTrigger)
	}
	for _, a := range m.Actions {
		a := a
		e.PutNested(tagAction, func(inner *asn1lite.Encoder) {
			inner.PutUint(tagActID, uint64(a.ID))
			inner.PutUint(tagActType, uint64(a.Type))
			inner.PutBytes(tagActDef, a.Definition)
		})
	}
	for _, id := range m.AdmittedActions {
		e.PutUint(tagAdmitted, uint64(id))
	}
	e.PutUint(tagActionID, uint64(m.ActionID))
	e.PutUint(tagIndicationSN, m.IndicationSN)
	if m.IndicationHeader != nil {
		e.PutBytes(tagIndHeader, m.IndicationHeader)
	}
	if m.IndicationMessage != nil {
		e.PutBytes(tagIndMessage, m.IndicationMessage)
	}
	if m.ControlHeader != nil {
		e.PutBytes(tagCtrlHeader, m.ControlHeader)
	}
	if m.ControlMessage != nil {
		e.PutBytes(tagCtrlMessage, m.ControlMessage)
	}
	if m.Cause != "" {
		e.PutString(tagCause, m.Cause)
	}
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *Message) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
		var err error
		switch d.Tag() {
		case tagType:
			var v uint64
			v, err = d.Uint()
			m.Type = MessageType(v)
		case tagTransactionID:
			m.TransactionID, err = d.Uint()
		case tagNodeID:
			m.NodeID, err = d.String()
		case tagRANFunction:
			var rf RANFunction
			err = decodeRANFunction(d, &rf)
			m.RANFunctions = append(m.RANFunctions, rf)
		case tagRequestor:
			var v uint64
			v, err = d.Uint()
			m.RequestID.Requestor = uint32(v)
		case tagInstance:
			var v uint64
			v, err = d.Uint()
			m.RequestID.Instance = uint32(v)
		case tagRANFunctionID:
			var v uint64
			v, err = d.Uint()
			m.RANFunctionID = uint16(v)
		case tagEventTrigger:
			m.EventTrigger = appendField(m.EventTrigger, d.RawValue())
		case tagAction:
			var a Action
			err = decodeAction(d, &a)
			m.Actions = append(m.Actions, a)
		case tagAdmitted:
			var v uint64
			v, err = d.Uint()
			m.AdmittedActions = append(m.AdmittedActions, uint16(v))
		case tagActionID:
			var v uint64
			v, err = d.Uint()
			m.ActionID = uint16(v)
		case tagIndicationSN:
			m.IndicationSN, err = d.Uint()
		case tagIndHeader:
			m.IndicationHeader = appendField(m.IndicationHeader, d.RawValue())
		case tagIndMessage:
			m.IndicationMessage = appendField(m.IndicationMessage, d.RawValue())
		case tagCtrlHeader:
			m.ControlHeader = appendField(m.ControlHeader, d.RawValue())
		case tagCtrlMessage:
			m.ControlMessage = appendField(m.ControlMessage, d.RawValue())
		case tagCause:
			m.Cause, err = d.String()
		}
		if err != nil {
			return fmt.Errorf("e2ap: tag %d: %w", d.Tag(), err)
		}
	}
	return d.Err()
}

func decodeRANFunction(d *asn1lite.Decoder, rf *RANFunction) error {
	sub, err := d.Nested()
	if err != nil {
		return err
	}
	for sub.Next() {
		switch sub.Tag() {
		case tagRFID:
			v, err := sub.Uint()
			if err != nil {
				return err
			}
			rf.ID = uint16(v)
		case tagRFOID:
			s, err := sub.String()
			if err != nil {
				return err
			}
			rf.OID = s
		case tagRFDef:
			b, err := sub.Bytes()
			if err != nil {
				return err
			}
			rf.Definition = b
		}
	}
	return sub.Err()
}

func decodeAction(d *asn1lite.Decoder, a *Action) error {
	sub, err := d.Nested()
	if err != nil {
		return err
	}
	for sub.Next() {
		switch sub.Tag() {
		case tagActID:
			v, err := sub.Uint()
			if err != nil {
				return err
			}
			a.ID = uint16(v)
		case tagActType:
			v, err := sub.Uint()
			if err != nil {
				return err
			}
			a.Type = ActionType(v)
		case tagActDef:
			b, err := sub.Bytes()
			if err != nil {
				return err
			}
			a.Definition = b
		}
	}
	return sub.Err()
}

// ErrBadMessage reports a structurally invalid E2AP PDU.
var ErrBadMessage = errors.New("e2ap: invalid message")

// Encode serializes a message.
func Encode(m *Message) []byte { return asn1lite.Marshal(m) }

// AppendEncode serializes m, appending to dst, and returns the extended
// slice. Once dst has steady-state capacity the call performs zero heap
// allocations (the encoder lives on the caller's stack and the concrete
// MarshalTLV call does not escape it), which is what the per-indication
// send path needs at fleet scale.
func AppendEncode(dst []byte, m *Message) []byte {
	e := asn1lite.NewEncoder(dst)
	m.MarshalTLV(&e)
	return e.Bytes()
}

// Decode parses a message and validates its type.
func Decode(data []byte) (*Message, error) {
	var m Message
	if err := asn1lite.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	if !m.Type.Valid() {
		return nil, fmt.Errorf("type %d: %w", m.Type, ErrBadMessage)
	}
	return &m, nil
}

// DecodeInto parses data into m, reusing m's allocated capacity. It is
// the hot-path counterpart of Decode: a Message cycled through DecodeInto
// reaches zero allocations per PDU once its byte fields have grown to the
// working sizes. Unlike Decode, absent byte fields may come back empty
// rather than nil on a reused m (see Reset); all populated values are
// identical to Decode's.
func DecodeInto(data []byte, m *Message) error {
	m.Reset()
	var d asn1lite.Decoder
	d.Reset(data)
	if err := m.UnmarshalTLV(&d); err != nil {
		return err
	}
	if !m.Type.Valid() {
		return fmt.Errorf("type %d: %w", m.Type, ErrBadMessage)
	}
	return nil
}
