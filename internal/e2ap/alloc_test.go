package e2ap

import (
	"bytes"
	"reflect"
	"testing"
)

func sampleIndication() *Message {
	return &Message{
		Type:              TypeIndication,
		TransactionID:     42,
		RequestID:         RequestID{Requestor: 100, Instance: 1},
		RANFunctionID:     2,
		ActionID:          1,
		IndicationSN:      77,
		IndicationHeader:  bytes.Repeat([]byte("h"), 32),
		IndicationMessage: bytes.Repeat([]byte("m"), 256),
	}
}

func TestAppendEncodeMatchesEncode(t *testing.T) {
	for _, m := range sampleMessages() {
		want := Encode(m)
		got := AppendEncode(nil, m)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: AppendEncode != Encode", m.Type)
		}
		// Appending after a prefix keeps the prefix intact.
		withPrefix := AppendEncode([]byte("prefix"), m)
		if !bytes.Equal(withPrefix, append([]byte("prefix"), want...)) {
			t.Errorf("%s: AppendEncode did not append after prefix", m.Type)
		}
	}
}

func TestDecodeIntoMatchesDecode(t *testing.T) {
	var reused Message
	for _, in := range sampleMessages() {
		data := Encode(in)
		want, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: Decode: %v", in.Type, err)
		}
		if err := DecodeInto(data, &reused); err != nil {
			t.Fatalf("%s: DecodeInto: %v", in.Type, err)
		}
		// Compare semantically: DecodeInto may leave empty-non-nil byte
		// fields where Decode leaves nil (documented), so normalize both
		// sides to nil-for-empty before DeepEqual.
		a, b := normalizeEmpty(want), normalizeEmpty(&reused)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: DecodeInto mismatch\n got %+v\nwant %+v", in.Type, b, a)
		}
	}
}

func TestDecodeIntoRejectsInvalid(t *testing.T) {
	var m Message
	if err := DecodeInto([]byte{0xff}, &m); err == nil {
		t.Error("DecodeInto accepted garbage")
	}
	if err := DecodeInto(nil, &m); err == nil {
		t.Error("DecodeInto accepted empty input (invalid type)")
	}
}

func normalizeEmpty(m *Message) *Message {
	out := *m
	norm := func(b []byte) []byte {
		if len(b) == 0 {
			return nil
		}
		return b
	}
	out.EventTrigger = norm(out.EventTrigger)
	out.IndicationHeader = norm(out.IndicationHeader)
	out.IndicationMessage = norm(out.IndicationMessage)
	out.ControlHeader = norm(out.ControlHeader)
	out.ControlMessage = norm(out.ControlMessage)
	if len(out.RANFunctions) == 0 {
		out.RANFunctions = nil
	}
	if len(out.Actions) == 0 {
		out.Actions = nil
	}
	if len(out.AdmittedActions) == 0 {
		out.AdmittedActions = nil
	}
	return &out
}

// TestIndicationMarshalZeroAlloc is the acceptance gate for the pooled
// codec: encoding a RIC Indication into a warm buffer must not allocate.
func TestIndicationMarshalZeroAlloc(t *testing.T) {
	m := sampleIndication()
	buf := AppendEncode(nil, m) // warm the buffer to working capacity
	if allocs := testing.AllocsPerRun(200, func() {
		buf = AppendEncode(buf[:0], m)
	}); allocs != 0 {
		t.Errorf("AppendEncode(indication) = %.1f allocs/op, want 0", allocs)
	}
}

// TestIndicationUnmarshalZeroAlloc asserts the decode side: a reused
// Message reaches zero allocations per PDU once its fields are warm.
func TestIndicationUnmarshalZeroAlloc(t *testing.T) {
	data := Encode(sampleIndication())
	var m Message
	if err := DecodeInto(data, &m); err != nil { // warm field capacity
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if err := DecodeInto(data, &m); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("DecodeInto(indication) = %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkAppendEncodeIndication(b *testing.B) {
	m := sampleIndication()
	buf := AppendEncode(nil, m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendEncode(buf[:0], m)
	}
	_ = buf
}

func BenchmarkDecodeIntoIndication(b *testing.B) {
	data := Encode(sampleIndication())
	var m Message
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeInto(data, &m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndpointSendIndication(b *testing.B) {
	a, peer := Pipe()
	defer a.Close()
	defer peer.Close()
	go func() {
		for {
			if _, err := peer.Recv(); err != nil {
				return
			}
		}
	}()
	m := sampleIndication()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(m); err != nil {
			b.Fatal(err)
		}
	}
}
