package e2ap

import (
	"errors"
	"io"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleMessages() []*Message {
	return []*Message{
		{
			Type:   TypeE2SetupRequest,
			NodeID: "gnb-001",
			RANFunctions: []RANFunction{
				{ID: 2, OID: "1.3.6.1.4.1.53148.1.2.2.100", Definition: []byte("mobiflow")},
				{ID: 3, OID: "1.3.6.1.4.1.53148.1.2.2.2", Definition: []byte("kpm")},
			},
		},
		{Type: TypeE2SetupResponse, NodeID: "ric-0"},
		{Type: TypeE2SetupFailure, Cause: "duplicate node"},
		{
			Type:          TypeSubscriptionRequest,
			RequestID:     RequestID{Requestor: 100, Instance: 1},
			RANFunctionID: 2,
			EventTrigger:  []byte{1, 2},
			Actions: []Action{
				{ID: 1, Type: ActionReport, Definition: []byte{9}},
				{ID: 2, Type: ActionPolicy, Definition: []byte{}},
			},
		},
		{
			Type:            TypeSubscriptionResponse,
			RequestID:       RequestID{Requestor: 100, Instance: 1},
			RANFunctionID:   2,
			AdmittedActions: []uint16{1, 2},
		},
		{Type: TypeSubscriptionFailure, RequestID: RequestID{Requestor: 100, Instance: 1}, Cause: "unknown RAN function"},
		{Type: TypeSubscriptionDeleteRequest, RequestID: RequestID{Requestor: 100, Instance: 1}, RANFunctionID: 2},
		{Type: TypeSubscriptionDeleteResponse, RequestID: RequestID{Requestor: 100, Instance: 1}},
		{
			Type:              TypeIndication,
			RequestID:         RequestID{Requestor: 100, Instance: 1},
			RANFunctionID:     2,
			ActionID:          1,
			IndicationSN:      77,
			IndicationHeader:  []byte("hdr"),
			IndicationMessage: []byte("telemetry-payload"),
		},
		{
			Type:           TypeControlRequest,
			RequestID:      RequestID{Requestor: 100, Instance: 2},
			RANFunctionID:  2,
			ControlHeader:  []byte("ue=5"),
			ControlMessage: []byte("release"),
		},
		{Type: TypeControlAck, RequestID: RequestID{Requestor: 100, Instance: 2}},
		{Type: TypeControlFailure, RequestID: RequestID{Requestor: 100, Instance: 2}, Cause: "no such UE"},
		{Type: TypeErrorIndication, Cause: "decode error"},
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	for _, in := range sampleMessages() {
		in.TransactionID = 42
		out, err := Decode(Encode(in))
		if err != nil {
			t.Fatalf("%s: %v", in.Type, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("%s round trip:\n got %#v\nwant %#v", in.Type, out, in)
		}
	}
}

func TestDecodeRejectsInvalidType(t *testing.T) {
	m := &Message{Type: MessageType(99)}
	if _, err := Decode(Encode(m)); !errors.Is(err, ErrBadMessage) {
		t.Errorf("err = %v, want ErrBadMessage", err)
	}
	if _, err := Decode([]byte{}); err == nil {
		t.Error("empty PDU accepted")
	}
}

func TestTypeNames(t *testing.T) {
	if TypeIndication.String() != "RICIndication" {
		t.Errorf("got %q", TypeIndication.String())
	}
	if MessageType(99).String() != "MessageType(99)" {
		t.Errorf("got %q", MessageType(99).String())
	}
	if ActionReport.String() != "report" || ActionPolicy.String() != "policy" || ActionInsert.String() != "insert" {
		t.Error("action names wrong")
	}
	if ActionType(9).String() != "ActionType(9)" {
		t.Error("unknown action name wrong")
	}
	if (RequestID{1, 2}).String() != "1/2" {
		t.Error("RequestID format wrong")
	}
}

func TestEndpointSendRecv(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	go func() {
		a.Send(&Message{Type: TypeE2SetupRequest, NodeID: "gnb-7"})
	}()
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeE2SetupRequest || got.NodeID != "gnb-7" {
		t.Errorf("got %+v", got)
	}
	if got.TransactionID == 0 {
		t.Error("transaction ID not assigned")
	}
}

func TestEndpointTransactionIDsIncrease(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		for i := 0; i < 3; i++ {
			a.Send(&Message{Type: TypeErrorIndication})
		}
	}()
	var last uint64
	for i := 0; i < 3; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.TransactionID <= last {
			t.Errorf("txn %d after %d", m.TransactionID, last)
		}
		last = m.TransactionID
	}
}

func TestEndpointRecvAfterClose(t *testing.T) {
	a, b := Pipe()
	a.Close()
	if _, err := b.Recv(); !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want io.EOF", err)
	}
	b.Close()
}

func TestEndpointExplicitTransactionPreserved(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	go a.Send(&Message{Type: TypeControlAck, TransactionID: 999})
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.TransactionID != 999 {
		t.Errorf("txn = %d", m.TransactionID)
	}
}

// Property: indication payloads of arbitrary content round-trip intact.
func TestQuickIndicationRoundTrip(t *testing.T) {
	f := func(req, inst uint32, fn uint16, sn uint64, hdr, payload []byte) bool {
		in := &Message{
			Type: TypeIndication, TransactionID: 1,
			RequestID:        RequestID{Requestor: req, Instance: inst},
			RANFunctionID:    fn,
			IndicationSN:     sn,
			IndicationHeader: hdr, IndicationMessage: payload,
		}
		if in.IndicationHeader == nil {
			in.IndicationHeader = []byte{}
		}
		if in.IndicationMessage == nil {
			in.IndicationMessage = []byte{}
		}
		out, err := Decode(Encode(in))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Decode never panics on arbitrary bytes.
func TestQuickDecodeRobust(t *testing.T) {
	f := func(data []byte) bool {
		Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeIndication(b *testing.B) {
	m := &Message{
		Type: TypeIndication, TransactionID: 1,
		RequestID: RequestID{100, 1}, RANFunctionID: 2,
		IndicationHeader:  []byte("hdr"),
		IndicationMessage: make([]byte, 256),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(m)
	}
}

func BenchmarkDecodeIndication(b *testing.B) {
	data := Encode(&Message{
		Type: TypeIndication, TransactionID: 1,
		RequestID: RequestID{100, 1}, RANFunctionID: 2,
		IndicationHeader:  []byte("hdr"),
		IndicationMessage: make([]byte, 256),
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}
