package detect

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentileThreshold(t *testing.T) {
	scores := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		pct  float64
		want float64
	}{
		{100, 10},
		{50, 5.5},
		{10, 1.9},
	}
	for _, c := range cases {
		if got := PercentileThreshold(scores, c.pct); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("pct %v = %g, want %g", c.pct, got, c.want)
		}
	}
}

func TestPercentileSingleValue(t *testing.T) {
	if got := PercentileThreshold([]float64{3.5}, 99); got != 3.5 {
		t.Errorf("got %g", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { PercentileThreshold(nil, 99) },
		func() { PercentileThreshold([]float64{1}, 0) },
		func() { PercentileThreshold([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestSortedPercentileMatches verifies the sort-once fast path agrees
// with PercentileThreshold for every integer percentile — the contract
// threshold calibration relies on.
func TestSortedPercentileMatches(t *testing.T) {
	scores := []float64{4.2, 0.1, 9.9, 3.3, 7.5, 0.2, 5.1, 8.8, 2.4, 6.6, 1.7}
	sorted := append([]float64(nil), scores...)
	sort.Float64s(sorted)
	for p := 1; p <= 100; p++ {
		want := PercentileThreshold(scores, float64(p))
		if got := SortedPercentile(sorted, float64(p)); got != want {
			t.Errorf("pct %d: SortedPercentile = %g, PercentileThreshold = %g", p, got, want)
		}
	}
}

func TestSortedPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { SortedPercentile(nil, 99) },
		func() { SortedPercentile([]float64{1}, 0) },
		func() { SortedPercentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	scores := []float64{5, 1, 3}
	PercentileThreshold(scores, 99)
	if scores[0] != 5 || scores[1] != 1 || scores[2] != 3 {
		t.Error("input mutated")
	}
}

func TestClassifyAndEvaluate(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.95}
	truth := []bool{false, true, true, true}
	pred := Classify(scores, 0.8)
	c := Evaluate(pred, truth)
	if c.TP != 2 || c.FP != 0 || c.TN != 1 || c.FN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if got := c.Accuracy(); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("accuracy = %g", got)
	}
	if got := c.Precision(); got != 1 {
		t.Errorf("precision = %g", got)
	}
	if got := c.Recall(); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("recall = %g", got)
	}
	if got := c.F1(); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("f1 = %g", got)
	}
}

func TestConfusionEdgeCases(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.FalsePositiveRate() != 0 {
		t.Error("zero confusion should yield zero metrics")
	}
	c = Confusion{TN: 10}
	if c.Accuracy() != 1 {
		t.Error("all-TN accuracy should be 1")
	}
	if c.String() == "" {
		t.Error("empty String()")
	}
}

func TestEvaluatePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	Evaluate([]bool{true}, []bool{true, false})
}

// meanScorer scores by distance from the training mean — a stand-in model
// good enough to exercise the CV plumbing.
type meanScorer struct{ mean []float64 }

func fitMean(train [][]float64) Scorer {
	mean := make([]float64, len(train[0]))
	for _, x := range train {
		for i, v := range x {
			mean[i] += v
		}
	}
	for i := range mean {
		mean[i] /= float64(len(train))
	}
	return &meanScorer{mean: mean}
}

func (m *meanScorer) Score(x []float64) float64 {
	var s float64
	for i, v := range x {
		d := v - m.mean[i]
		s += d * d
	}
	return s
}

func TestKFoldBenign(t *testing.T) {
	// Benign data clusters near the origin; CV accuracy should be high.
	var data [][]float64
	for i := 0; i < 100; i++ {
		data = append(data, []float64{float64(i%7) * 0.01, float64(i%5) * 0.01})
	}
	folds, err := KFoldBenign(data, 5, 1, 99, fitMean)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	total := 0
	for _, f := range folds {
		total += f.TestSize
		if f.Accuracy < 0.8 {
			t.Errorf("fold accuracy %g suspiciously low", f.Accuracy)
		}
	}
	if total != len(data) {
		t.Errorf("fold test sizes sum to %d, want %d", total, len(data))
	}
	if m := MeanAccuracy(folds); m < 0.8 || m > 1 {
		t.Errorf("mean accuracy = %g", m)
	}
}

func TestKFoldErrors(t *testing.T) {
	data := [][]float64{{1}, {2}, {3}}
	if _, err := KFoldBenign(data, 1, 0, 99, fitMean); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := KFoldBenign(data, 5, 0, 99, fitMean); err == nil {
		t.Error("k > len(data) accepted")
	}
}

func TestMeanAccuracyEmpty(t *testing.T) {
	if MeanAccuracy(nil) != 0 {
		t.Error("MeanAccuracy(nil) != 0")
	}
}

func TestScorerFunc(t *testing.T) {
	s := ScorerFunc(func(x []float64) float64 { return x[0] * 2 })
	scores := ScoreAll(s, [][]float64{{1}, {2}})
	if scores[0] != 2 || scores[1] != 4 {
		t.Errorf("scores = %v", scores)
	}
}

// Property: the percentile threshold is monotone in pct and bounded by
// the score range.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []float64, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		a := float64(aRaw%100) + 0.5
		b := float64(bRaw%100) + 0.5
		if a > b {
			a, b = b, a
		}
		ta := PercentileThreshold(raw, a)
		tb := PercentileThreshold(raw, b)
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		return ta <= tb && ta >= sorted[0] && tb <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: confusion counts always sum to the sample count, and accuracy
// is within [0,1].
func TestQuickEvaluateInvariants(t *testing.T) {
	f := func(pred, truth []bool) bool {
		n := len(pred)
		if len(truth) < n {
			n = len(truth)
		}
		c := Evaluate(pred[:n], truth[:n])
		return c.Total() == n && c.Accuracy() >= 0 && c.Accuracy() <= 1 &&
			c.F1() >= 0 && c.F1() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPercentileThreshold(b *testing.B) {
	scores := make([]float64, 10000)
	for i := range scores {
		scores[i] = float64(i%997) / 997
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PercentileThreshold(scores, 99)
	}
}
