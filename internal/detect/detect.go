// Package detect implements the decision layer of MobiWatch (§3.2 and §4.1
// of the paper): anomaly scores (autoencoder reconstruction error or LSTM
// prediction error) are compared against a threshold chosen as a high
// percentile of the training-set scores — the paper uses the 99th
// percentile, "assuming 1% outliers within the training set caused by
// network noise" — and the resulting binary decisions are evaluated with
// accuracy / precision / recall / F1.
package detect

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// PercentileThreshold returns the pct-th percentile (0 < pct <= 100) of
// scores, using linear interpolation between order statistics. It panics
// on empty input or out-of-range pct, which indicate programmer error.
func PercentileThreshold(scores []float64, pct float64) float64 {
	if len(scores) == 0 {
		panic("detect: PercentileThreshold on empty scores")
	}
	sorted := append([]float64(nil), scores...)
	sort.Float64s(sorted)
	return SortedPercentile(sorted, pct)
}

// SortedPercentile is PercentileThreshold over an already ascending-
// sorted slice. Callers that need many percentiles of one distribution
// (threshold calibration derives 101) sort once and query this instead
// of paying a copy + O(n log n) sort per percentile.
func SortedPercentile(sorted []float64, pct float64) float64 {
	if len(sorted) == 0 {
		panic("detect: SortedPercentile on empty scores")
	}
	if pct <= 0 || pct > 100 {
		panic(fmt.Sprintf("detect: percentile %v out of (0,100]", pct))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := pct / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Classify labels each score anomalous (true) when it exceeds threshold.
func Classify(scores []float64, threshold float64) []bool {
	out := make([]bool, len(scores))
	for i, s := range scores {
		out[i] = s > threshold
	}
	return out
}

// Confusion is a binary confusion matrix with "anomalous" as the positive
// class.
type Confusion struct {
	TP, FP, TN, FN int
}

// Evaluate compares predictions against ground truth.
func Evaluate(pred, truth []bool) Confusion {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("detect: Evaluate length mismatch %d vs %d", len(pred), len(truth)))
	}
	var c Confusion
	for i := range pred {
		switch {
		case pred[i] && truth[i]:
			c.TP++
		case pred[i] && !truth[i]:
			c.FP++
		case !pred[i] && truth[i]:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Total returns the number of evaluated samples.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy is the fraction of correct decisions.
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// Precision is TP / (TP + FP); 0 when nothing was flagged.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is TP / (TP + FN); 0 when there are no positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// FalsePositiveRate is FP / (FP + TN).
func (c Confusion) FalsePositiveRate() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// String renders the matrix compactly.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d acc=%.2f%% prec=%.2f%% rec=%.2f%% f1=%.2f%%",
		c.TP, c.FP, c.TN, c.FN, 100*c.Accuracy(), 100*c.Precision(), 100*c.Recall(), 100*c.F1())
}

// Scorer is the model-side contract: a fitted model scores one window.
type Scorer interface {
	Score(x []float64) float64
}

// ScorerFunc adapts a function to Scorer.
type ScorerFunc func(x []float64) float64

// Score implements Scorer.
func (f ScorerFunc) Score(x []float64) float64 { return f(x) }

// ScoreAll applies a scorer to every window.
func ScoreAll(s Scorer, windows [][]float64) []float64 {
	out := make([]float64, len(windows))
	for i, w := range windows {
		out[i] = s.Score(w)
	}
	return out
}

// FoldResult reports one cross-validation fold on benign data.
type FoldResult struct {
	// Threshold is the percentile threshold fitted on the fold's
	// training scores.
	Threshold float64
	// Accuracy is the fraction of held-out benign windows below the
	// threshold (1 − false-positive rate).
	Accuracy float64
	// TestSize is the number of held-out windows.
	TestSize int
}

// Fit trains a model on benign windows and returns a scorer for new
// windows.
type Fit func(train [][]float64) Scorer

// KFoldBenign runs k-fold cross-validation on a benign-only dataset: each
// fold trains on k−1 parts, fits the percentile threshold on its own
// training scores, and measures how many held-out benign windows stay
// below it — the paper's "benign dataset accuracy" (Table 2, cross-
// validated).
func KFoldBenign(data [][]float64, k int, seed int64, pct float64, fit Fit) ([]FoldResult, error) {
	if k < 2 {
		return nil, fmt.Errorf("detect: k-fold needs k >= 2, got %d", k)
	}
	if len(data) < k {
		return nil, fmt.Errorf("detect: %d samples cannot fill %d folds", len(data), k)
	}
	idx := rand.New(rand.NewSource(seed)).Perm(len(data))
	results := make([]FoldResult, 0, k)
	for fold := 0; fold < k; fold++ {
		var train, test [][]float64
		for i, id := range idx {
			if i%k == fold {
				test = append(test, data[id])
			} else {
				train = append(train, data[id])
			}
		}
		scorer := fit(train)
		thr := PercentileThreshold(ScoreAll(scorer, train), pct)
		var below int
		for _, w := range test {
			if scorer.Score(w) <= thr {
				below++
			}
		}
		results = append(results, FoldResult{
			Threshold: thr,
			Accuracy:  float64(below) / float64(len(test)),
			TestSize:  len(test),
		})
	}
	return results, nil
}

// MeanAccuracy averages fold accuracies weighted by test size.
func MeanAccuracy(folds []FoldResult) float64 {
	var sum float64
	var n int
	for _, f := range folds {
		sum += f.Accuracy * float64(f.TestSize)
		n += f.TestSize
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
