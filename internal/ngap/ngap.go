// Package ngap implements the NG Application Protocol subset (3GPP
// TS 38.413) connecting the O-CU to the AMF in the simulated 5G core:
// initial UE message, uplink/downlink NAS transport, and UE context
// management. Together with internal/f1ap it forms the instrumented
// interface pair the paper's dataset pipeline captures (§4).
package ngap

import (
	"errors"
	"fmt"

	"github.com/6g-xsec/xsec/internal/asn1lite"
)

// MessageType discriminates NGAP procedure PDUs.
type MessageType uint8

// NGAP message types.
const (
	TypeInvalid MessageType = iota
	TypeInitialUEMessage
	TypeUplinkNASTransport
	TypeDownlinkNASTransport
	TypeInitialContextSetupRequest
	TypeInitialContextSetupResponse
	TypeUEContextReleaseCommand
	TypeUEContextReleaseComplete
	typeCount
)

var typeNames = [...]string{
	"Invalid",
	"InitialUEMessage",
	"UplinkNASTransport",
	"DownlinkNASTransport",
	"InitialContextSetupRequest",
	"InitialContextSetupResponse",
	"UEContextReleaseCommand",
	"UEContextReleaseComplete",
}

// String returns the TS 38.413 procedure name.
func (t MessageType) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("MessageType(%d)", uint8(t))
}

// Valid reports whether t is defined.
func (t MessageType) Valid() bool { return t > TypeInvalid && t < typeCount }

// Message is one NGAP PDU.
type Message struct {
	Type MessageType
	// RANUEID and AMFUEID are the RAN / AMF UE NGAP IDs.
	RANUEID uint64
	AMFUEID uint64
	// NASPDU carries the encoded NAS message for transport procedures.
	NASPDU []byte
	// Cause annotates release commands.
	Cause string
}

// TLV tags.
const (
	tagType    = 1
	tagRANUEID = 2
	tagAMFUEID = 3
	tagNASPDU  = 4
	tagCause   = 5
)

// MarshalTLV implements asn1lite.Marshaler.
func (m *Message) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(tagType, uint64(m.Type))
	e.PutUint(tagRANUEID, m.RANUEID)
	e.PutUint(tagAMFUEID, m.AMFUEID)
	if m.NASPDU != nil {
		e.PutBytes(tagNASPDU, m.NASPDU)
	}
	if m.Cause != "" {
		e.PutString(tagCause, m.Cause)
	}
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *Message) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
		var err error
		switch d.Tag() {
		case tagType:
			var v uint64
			v, err = d.Uint()
			m.Type = MessageType(v)
		case tagRANUEID:
			m.RANUEID, err = d.Uint()
		case tagAMFUEID:
			m.AMFUEID, err = d.Uint()
		case tagNASPDU:
			m.NASPDU, err = d.Bytes()
		case tagCause:
			m.Cause, err = d.String()
		}
		if err != nil {
			return fmt.Errorf("ngap: tag %d: %w", d.Tag(), err)
		}
	}
	return d.Err()
}

// ErrBadMessage reports a structurally invalid NGAP PDU.
var ErrBadMessage = errors.New("ngap: invalid message")

// Encode serializes a message.
func Encode(m *Message) []byte { return asn1lite.Marshal(m) }

// Decode parses and validates a message.
func Decode(data []byte) (*Message, error) {
	var m Message
	if err := asn1lite.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	if !m.Type.Valid() {
		return nil, fmt.Errorf("type %d: %w", m.Type, ErrBadMessage)
	}
	return &m, nil
}
