package ngap

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Type: TypeInitialUEMessage, RANUEID: 1, NASPDU: []byte{1, 2}},
		{Type: TypeUplinkNASTransport, RANUEID: 1, AMFUEID: 9, NASPDU: []byte{3}},
		{Type: TypeDownlinkNASTransport, RANUEID: 1, AMFUEID: 9, NASPDU: []byte{4, 5}},
		{Type: TypeInitialContextSetupRequest, RANUEID: 1, AMFUEID: 9},
		{Type: TypeInitialContextSetupResponse, RANUEID: 1, AMFUEID: 9},
		{Type: TypeUEContextReleaseCommand, AMFUEID: 9, Cause: "deregistration"},
		{Type: TypeUEContextReleaseComplete, RANUEID: 1, AMFUEID: 9},
	}
	for _, in := range msgs {
		out, err := Decode(Encode(in))
		if err != nil {
			t.Fatalf("%s: %v", in.Type, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("%s mismatch:\n got %#v\nwant %#v", in.Type, out, in)
		}
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	if _, err := Decode(Encode(&Message{Type: MessageType(77)})); !errors.Is(err, ErrBadMessage) {
		t.Errorf("err = %v", err)
	}
	if _, err := Decode(nil); err == nil {
		t.Error("nil accepted")
	}
}

func TestTypeNames(t *testing.T) {
	if TypeDownlinkNASTransport.String() != "DownlinkNASTransport" {
		t.Errorf("got %q", TypeDownlinkNASTransport.String())
	}
	if MessageType(88).String() != "MessageType(88)" {
		t.Errorf("got %q", MessageType(88).String())
	}
}

func TestQuickDecodeRobust(t *testing.T) {
	f := func(data []byte) bool { Decode(data); return true }
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
