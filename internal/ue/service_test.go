package ue

import (
	"errors"
	"testing"
)

func TestServiceSession(t *testing.T) {
	g, amf := testEnv(t)
	u := provision(amf, 1)[0]
	u.Profile.RetransProb = 0
	u.Profile.Deregisters = false

	// No GUTI yet: service request impossible.
	if _, err := u.RunServiceSession(g); err == nil {
		t.Fatal("service session without registration succeeded")
	}

	res, err := u.RunSession(g)
	if err != nil {
		t.Fatal(err)
	}
	g.ReleaseUE(res.UEID)
	amf.ReleaseUE(res.UEID)

	sres, err := u.RunServiceSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if !sres.Registered || sres.GUTI.TMSI != res.GUTI.TMSI {
		t.Errorf("service result = %+v", sres)
	}

	// Telemetry shows the service request and accept.
	tr := g.Records().FilterUE(sres.UEID)
	msgs := tr.Messages()
	var sawReq, sawAcc bool
	for _, m := range msgs {
		if m == "ServiceRequest" {
			sawReq = true
		}
		if m == "ServiceAccept" {
			sawAcc = true
		}
	}
	if !sawReq || !sawAcc {
		t.Errorf("service telemetry = %v", msgs)
	}
	for _, r := range tr {
		if r.OutOfOrder {
			t.Errorf("benign service record flagged: %s", r)
		}
	}
}

func TestServiceSessionWithStaleTMSI(t *testing.T) {
	g, amf := testEnv(t)
	ues := provision(amf, 2)
	u := ues[0]
	u.Profile.RetransProb = 0
	u.Profile.Deregisters = false

	res, err := u.RunSession(g)
	if err != nil {
		t.Fatal(err)
	}
	g.ReleaseUE(res.UEID)
	amf.ReleaseUE(res.UEID)

	// A second registration rotates the TMSI, invalidating the old one.
	res2, err := u.RunSession(g)
	if err != nil {
		t.Fatal(err)
	}
	g.ReleaseUE(res2.UEID)
	amf.ReleaseUE(res2.UEID)

	// Force the UE to remember the stale TMSI.
	stale := res.GUTI
	u.guti = &stale
	if _, err := u.RunServiceSession(g); !errors.Is(err, ErrRejected) {
		t.Errorf("stale TMSI service: err = %v, want ErrRejected", err)
	}
	if u.guti != nil {
		t.Error("stale GUTI not dropped after rejection")
	}
}
