package ue

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/6g-xsec/xsec/internal/cell"
	"github.com/6g-xsec/xsec/internal/gnb"
	"github.com/6g-xsec/xsec/internal/nas"
	"github.com/6g-xsec/xsec/internal/rrc"
)

// UE is one simulated device with a provisioned SIM.
type UE struct {
	SUPI    cell.SUPI
	K       [nas.KeySize]byte
	Profile Profile

	// Pace, when non-nil, is called before every uplink transmission;
	// the dataset generator uses it to advance a virtual clock.
	Pace func()

	rng  *rand.Rand
	guti *cell.GUTI // remembered from a prior registration
}

// New creates a UE. The seed drives per-UE behavioral randomness
// (establishment causes, retransmissions, identity choice).
func New(supi cell.SUPI, k [nas.KeySize]byte, profile Profile, seed int64) *UE {
	return &UE{SUPI: supi, K: k, Profile: profile, rng: rand.New(rand.NewSource(seed))}
}

// SessionResult summarizes one driven session.
type SessionResult struct {
	// UEID is the CU context the session used.
	UEID uint64
	// RNTI is the allocated C-RNTI.
	RNTI cell.RNTI
	// Registered reports whether registration completed.
	Registered bool
	// GUTI is the assigned temporary identity if registered.
	GUTI cell.GUTI
}

// Errors returned by session drivers.
var (
	ErrRejected = errors.New("ue: connection rejected by network")
	ErrStalled  = errors.New("ue: no downlink response")
)

func (u *UE) pace() {
	if u.Pace != nil {
		u.Pace()
	}
}

// send transmits an uplink message, duplicating it with the profile's
// retransmission probability (radio noise).
func (u *UE) send(link *gnb.Link, m rrc.Message) error {
	u.pace()
	if err := link.SendRRC(m); err != nil {
		return err
	}
	if u.rng.Float64() < u.Profile.RetransProb {
		u.pace()
		// A duplicate may land after the network released the context
		// (e.g. a retransmitted deregistration); over the air it is
		// simply not delivered, so the driver ignores it too.
		if err := link.SendRRC(m); err != nil && !errors.Is(err, gnb.ErrReleased) {
			return err
		}
	}
	return nil
}

func (u *UE) sendNAS(link *gnb.Link, m nas.Message) error {
	return u.send(link, &rrc.ULInformationTransfer{NASPDU: nas.Encode(m)})
}

// Registered reports whether the UE holds a GUTI from an earlier
// registration (and can therefore resume with a service request).
func (u *UE) Registered() bool { return u.guti != nil }

// suci returns the UE's null-scheme SUCI (test networks do not conceal).
func (u *UE) suci() cell.SUCI {
	s, err := cell.SUCIFromSUPI(u.SUPI, 0)
	if err != nil {
		panic(fmt.Sprintf("ue: invalid SUPI %q", u.SUPI))
	}
	return s
}

// cause draws an establishment cause from the profile.
func (u *UE) cause() cell.EstablishmentCause {
	return u.Profile.Causes[u.rng.Intn(len(u.Profile.Causes))]
}

// RunSession drives one benign session: RRC establishment, registration
// with 5G-AKA, NAS and AS security, reconfiguration, an idle dwell, and
// (per profile) deregistration.
func (u *UE) RunSession(g *gnb.GNB) (SessionResult, error) {
	link := g.Attach()
	res := SessionResult{UEID: link.UEID(), RNTI: link.RNTI()}

	// Initial identity: reuse the remembered GUTI when available.
	var rrcID rrc.UEIdentity
	var nasID nas.MobileIdentity
	regType := nas.RegInitial
	if u.guti != nil {
		rrcID = rrc.UEIdentity{Kind: rrc.IdentityTMSI, TMSI: u.guti.TMSI}
		nasID = nas.MobileIdentity{Type: nas.IdentityGUTI, GUTI: *u.guti}
		regType = nas.RegMobilityUpdate
	} else {
		rrcID = rrc.UEIdentity{Kind: rrc.IdentityRandom, Random: u.rng.Uint64() & (1<<39 - 1)}
		nasID = nas.MobileIdentity{Type: nas.IdentitySUCI, SUCI: u.suci()}
	}

	if err := u.send(link, &rrc.SetupRequest{Identity: rrcID, Cause: u.cause()}); err != nil {
		return res, err
	}
	dl, ok := link.TryRecv()
	if !ok {
		return res, ErrStalled
	}
	if _, rejected := dl.(*rrc.Reject); rejected {
		return res, ErrRejected
	}
	if _, isSetup := dl.(*rrc.Setup); !isSetup {
		return res, fmt.Errorf("ue: expected RRCSetup, got %s", dl.Type())
	}

	regReq := &nas.RegistrationRequest{
		RegType:    regType,
		Identity:   nasID,
		Capability: u.Profile.Capability,
	}
	if err := u.send(link, &rrc.SetupComplete{TransactionID: 0, SelectedPLMN: cell.TestPLMN.String(), NASPDU: nas.Encode(regReq)}); err != nil {
		return res, err
	}

	// Event loop: answer network procedures until registration settles.
	for guard := 0; guard < 64; guard++ {
		dl, ok := link.TryRecv()
		if !ok {
			break
		}
		done, err := u.handleDownlink(link, dl, &res)
		if err != nil {
			return res, err
		}
		if done {
			break
		}
	}

	if !res.Registered {
		return res, fmt.Errorf("ue: registration did not complete")
	}

	// Idle dwell, then detach per profile.
	u.pace()
	if u.Profile.Deregisters {
		if err := u.sendNAS(link, &nas.DeregistrationRequest{SwitchOff: false}); err != nil {
			return res, err
		}
		// Drain the deregistration accept and release.
		for {
			if _, ok := link.TryRecv(); !ok {
				break
			}
		}
	} else {
		link.Abandon()
	}
	return res, nil
}

// handleDownlink reacts to one downlink message during registration.
// It reports done=true once the session has settled.
func (u *UE) handleDownlink(link *gnb.Link, dl rrc.Message, res *SessionResult) (bool, error) {
	switch m := dl.(type) {
	case *rrc.DLInformationTransfer:
		nasMsg, err := nas.Decode(m.NASPDU)
		if err != nil {
			return false, fmt.Errorf("ue: downlink NAS: %w", err)
		}
		return u.handleNAS(link, nasMsg, res)

	case *rrc.SecurityModeCommand:
		if err := u.send(link, &rrc.SecurityModeComplete{TransactionID: m.TransactionID}); err != nil {
			return false, err
		}

	case *rrc.Reconfiguration:
		if err := u.send(link, &rrc.ReconfigurationComplete{TransactionID: m.TransactionID}); err != nil {
			return false, err
		}
		if len(m.NASPDU) > 0 {
			nasMsg, err := nas.Decode(m.NASPDU)
			if err != nil {
				return false, fmt.Errorf("ue: piggybacked NAS: %w", err)
			}
			return u.handleNAS(link, nasMsg, res)
		}

	case *rrc.Release:
		return true, nil
	}
	return false, nil
}

func (u *UE) handleNAS(link *gnb.Link, nasMsg nas.Message, res *SessionResult) (bool, error) {
	switch m := nasMsg.(type) {
	case *nas.AuthenticationRequest:
		return false, u.sendNAS(link, &nas.AuthenticationResponse{RES: nas.DeriveRES(u.K, m.RAND)})

	case *nas.SecurityModeCommand:
		return false, u.sendNAS(link, &nas.SecurityModeComplete{})

	case *nas.IdentityRequest:
		return false, u.sendNAS(link, &nas.IdentityResponse{
			Identity: nas.MobileIdentity{Type: nas.IdentitySUCI, SUCI: u.suci()},
		})

	case *nas.RegistrationAccept:
		res.Registered = true
		res.GUTI = m.GUTI
		u.guti = &m.GUTI
		if u.Profile.SendsRegistrationComplete {
			return false, u.sendNAS(link, &nas.RegistrationComplete{})
		}

	case *nas.RegistrationReject:
		u.guti = nil
		return true, fmt.Errorf("%w: 5GMM cause %d", ErrRejected, m.Cause)

	case *nas.DeregistrationAccept:
		return true, nil
	}
	return false, nil
}
