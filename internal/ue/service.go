package ue

import (
	"fmt"

	"github.com/6g-xsec/xsec/internal/gnb"
	"github.com/6g-xsec/xsec/internal/nas"
	"github.com/6g-xsec/xsec/internal/rrc"
)

// RunServiceSession drives an idle→connected service resumption for a UE
// that registered earlier in this process (it presents the remembered
// 5G-S-TMSI): RRC establishment with the TMSI identity, a NAS Service
// Request, and the network's Service Accept. It diversifies benign
// traffic beyond full registrations.
func (u *UE) RunServiceSession(g *gnb.GNB) (SessionResult, error) {
	if u.guti == nil {
		return SessionResult{}, fmt.Errorf("ue: no remembered GUTI; register first")
	}
	link := g.Attach()
	res := SessionResult{UEID: link.UEID(), RNTI: link.RNTI()}

	id := rrc.UEIdentity{Kind: rrc.IdentityTMSI, TMSI: u.guti.TMSI}
	if err := u.send(link, &rrc.SetupRequest{Identity: id, Cause: u.cause()}); err != nil {
		return res, err
	}
	dl, ok := link.TryRecv()
	if !ok {
		return res, ErrStalled
	}
	if _, rejected := dl.(*rrc.Reject); rejected {
		return res, ErrRejected
	}

	svc := &nas.ServiceRequest{TMSI: u.guti.TMSI}
	if err := u.send(link, &rrc.SetupComplete{NASPDU: nas.Encode(svc)}); err != nil {
		return res, err
	}
	dl, ok = link.TryRecv()
	if !ok {
		return res, ErrStalled
	}
	info, isInfo := dl.(*rrc.DLInformationTransfer)
	if !isInfo {
		return res, fmt.Errorf("ue: expected NAS transport, got %s", dl.Type())
	}
	nasMsg, err := nas.Decode(info.NASPDU)
	if err != nil {
		return res, err
	}
	switch nasMsg.(type) {
	case *nas.ServiceAccept:
		res.Registered = true
		res.GUTI = *u.guti
	case *nas.RegistrationReject:
		// The network no longer knows the TMSI; the UE falls back to a
		// full registration next time.
		u.guti = nil
		return res, fmt.Errorf("%w: service request rejected", ErrRejected)
	default:
		return res, fmt.Errorf("ue: unexpected NAS %s to service request", nasMsg.Type())
	}

	// Dwell, then vanish back to idle (no explicit signalling, as with
	// a real inactivity transition).
	u.pace()
	link.Abandon()
	return res, nil
}
