package ue

import (
	"fmt"

	"github.com/6g-xsec/xsec/internal/cell"
	"github.com/6g-xsec/xsec/internal/gnb"
	"github.com/6g-xsec/xsec/internal/nas"
	"github.com/6g-xsec/xsec/internal/rrc"
)

// This file implements the five end-to-end attacks the paper evaluates
// (§4, Table 2/3). Each returns an AttackResult naming the UE contexts it
// used so the dataset labeler can mark the malicious telemetry entries.

// AttackKind identifies one of the five implemented attacks.
type AttackKind uint8

// The five attacks of the paper's evaluation.
const (
	AttackBTSDoS AttackKind = iota
	AttackBlindDoS
	AttackUplinkIDExtraction
	AttackDownlinkIDExtraction
	AttackNullCipher
)

var attackNames = [...]string{
	"BTS DoS", "Blind DoS", "Uplink ID Extraction",
	"Downlink ID Extraction", "Null Cipher & Integrity",
}

// String returns the attack's name as used in the paper's tables.
func (k AttackKind) String() string {
	if int(k) < len(attackNames) {
		return attackNames[k]
	}
	return fmt.Sprintf("AttackKind(%d)", uint8(k))
}

// AttackResult reports the footprint of one attack execution.
type AttackResult struct {
	Kind AttackKind
	// UEIDs are the CU contexts the attacker consumed, in order.
	UEIDs []uint64
	// RNTIs are the corresponding C-RNTIs (the Figure 2b identifier
	// stream).
	RNTIs []cell.RNTI
}

// RunBTSDoS floods the RAN with fabricated RRC connections abandoned at
// the authentication stage (Kim et al. [38]; Figure 2b): a rapid burst of
// interleaved connection attempts, each with a fresh random identity,
// driven to the registration request and then abandoned — consuming a new
// RNTI and a CU/AMF context every time. The attempts are issued in waves
// (all setup requests back-to-back, then all completions), the "rapid
// succession of uncompleted UE connection requests" of the paper.
func (u *UE) RunBTSDoS(g *gnb.GNB, connections int) (AttackResult, error) {
	res := AttackResult{Kind: AttackBTSDoS}
	links := make([]*gnb.Link, connections)
	for i := range links {
		links[i] = g.Attach()
		res.UEIDs = append(res.UEIDs, links[i].UEID())
		res.RNTIs = append(res.RNTIs, links[i].RNTI())
	}
	// Wave 1: burst of setup requests.
	for _, link := range links {
		id := rrc.UEIdentity{Kind: rrc.IdentityRandom, Random: u.rng.Uint64() & (1<<39 - 1)}
		if err := u.send(link, &rrc.SetupRequest{Identity: id, Cause: cell.CauseMOSignalling}); err != nil {
			return res, err
		}
	}
	// Wave 2: complete each and fire a registration, then vanish once
	// the authentication challenge arrives.
	regReq := &nas.RegistrationRequest{
		RegType:    nas.RegInitial,
		Identity:   nas.MobileIdentity{Type: nas.IdentitySUCI, SUCI: u.suci()},
		Capability: u.Profile.Capability,
	}
	for _, link := range links {
		if _, ok := link.TryRecv(); !ok { // RRCSetup
			return res, ErrStalled
		}
		if err := u.send(link, &rrc.SetupComplete{NASPDU: nas.Encode(regReq)}); err != nil {
			return res, err
		}
		link.Abandon()
	}
	return res, nil
}

// RunBlindDoS replays a victim's S-TMSI in spoofed setup/registration
// attempts across multiple sessions (Kim et al. [38]): the network
// observes the same temporary identity on overlapping fresh contexts,
// each aborted at authentication. The victim's pending procedures are
// disrupted while the attacker never authenticates.
func (u *UE) RunBlindDoS(g *gnb.GNB, victimTMSI cell.TMSI, attempts int) (AttackResult, error) {
	res := AttackResult{Kind: AttackBlindDoS}
	// Wave 1: burst of spoofed setup requests, all presenting the
	// victim's S-TMSI.
	var live []*gnb.Link
	for i := 0; i < attempts; i++ {
		link := g.Attach()
		res.UEIDs = append(res.UEIDs, link.UEID())
		res.RNTIs = append(res.RNTIs, link.RNTI())
		id := rrc.UEIdentity{Kind: rrc.IdentityTMSI, TMSI: victimTMSI}
		if err := u.send(link, &rrc.SetupRequest{Identity: id, Cause: cell.CauseMTAccess}); err != nil {
			return res, err
		}
		live = append(live, link)
	}
	// Wave 2: push each admitted connection to registration with the
	// victim's GUTI, then abandon at the challenge.
	for _, link := range live {
		dl, ok := link.TryRecv()
		if !ok {
			return res, ErrStalled
		}
		if _, rejected := dl.(*rrc.Reject); rejected {
			// The network blocked the TMSI (closed-loop response).
			continue
		}
		regReq := &nas.RegistrationRequest{
			RegType: nas.RegMobilityUpdate,
			Identity: nas.MobileIdentity{Type: nas.IdentityGUTI,
				GUTI: cell.GUTI{PLMN: cell.TestPLMN, AMFSetID: 1, TMSI: victimTMSI}},
			Capability: u.Profile.Capability,
		}
		if err := u.send(link, &rrc.SetupComplete{NASPDU: nas.Encode(regReq)}); err != nil {
			return res, err
		}
		link.Abandon()
	}
	return res, nil
}

// RunUplinkIDExtraction models the AdaptOver-style attack (Erni et
// al. [32]; Figure 2a): the MiTM overshadows the victim's uplink so the
// network receives a plaintext IdentityResponse where an
// AuthenticationResponse belongs. The remaining trace is standard-
// compliant — the paper notes this is the hardest pattern to detect.
func (u *UE) RunUplinkIDExtraction(g *gnb.GNB) (AttackResult, error) {
	res := AttackResult{Kind: AttackUplinkIDExtraction}
	link := g.Attach()
	res.UEIDs = append(res.UEIDs, link.UEID())
	res.RNTIs = append(res.RNTIs, link.RNTI())

	id := rrc.UEIdentity{Kind: rrc.IdentityRandom, Random: u.rng.Uint64() & (1<<39 - 1)}
	if err := u.send(link, &rrc.SetupRequest{Identity: id, Cause: u.cause()}); err != nil {
		return res, err
	}
	if _, ok := link.TryRecv(); !ok {
		return res, ErrStalled
	}
	regReq := &nas.RegistrationRequest{
		RegType:    nas.RegInitial,
		Identity:   nas.MobileIdentity{Type: nas.IdentitySUCI, SUCI: u.suci()},
		Capability: u.Profile.Capability,
	}
	if err := u.send(link, &rrc.SetupComplete{NASPDU: nas.Encode(regReq)}); err != nil {
		return res, err
	}
	// The authentication request arrives; the overshadowed uplink
	// carries an identity response instead of the RES*.
	dl, ok := link.TryRecv()
	if !ok {
		return res, ErrStalled
	}
	if _, isDL := dl.(*rrc.DLInformationTransfer); !isDL {
		return res, fmt.Errorf("ue: expected authentication request, got %s", dl.Type())
	}
	if err := u.sendNAS(link, &nas.IdentityResponse{
		Identity: nas.MobileIdentity{Type: nas.IdentitySUCI, SUCI: u.suci()},
	}); err != nil {
		return res, err
	}
	// The network re-challenges; the victim then completes normally, so
	// the overall session looks benign apart from the swapped message.
	sessRes := SessionResult{UEID: link.UEID(), RNTI: link.RNTI()}
	for guard := 0; guard < 64; guard++ {
		dl, ok := link.TryRecv()
		if !ok {
			break
		}
		if _, err := u.handleDownlink(link, dl, &sessRes); err != nil {
			return res, err
		}
	}
	return res, nil
}

// RunDownlinkIDExtraction models the LTrack-style attack (Kotuliak et
// al. [40]): the attacker injects a downlink IdentityRequest over the
// air, so the victim transmits a plaintext IdentityResponse the network
// never solicited — an out-of-place identity procedure right after
// connection establishment.
func (u *UE) RunDownlinkIDExtraction(g *gnb.GNB) (AttackResult, error) {
	res := AttackResult{Kind: AttackDownlinkIDExtraction}
	link := g.Attach()
	res.UEIDs = append(res.UEIDs, link.UEID())
	res.RNTIs = append(res.RNTIs, link.RNTI())

	id := rrc.UEIdentity{Kind: rrc.IdentityRandom, Random: u.rng.Uint64() & (1<<39 - 1)}
	if err := u.send(link, &rrc.SetupRequest{Identity: id, Cause: u.cause()}); err != nil {
		return res, err
	}
	if _, ok := link.TryRecv(); !ok {
		return res, ErrStalled
	}
	// The injected (attacker) IdentityRequest is invisible to the
	// network; the victim's answer is not: instead of a registration,
	// the first NAS the network sees is a plaintext identity response.
	idResp := &nas.IdentityResponse{
		Identity: nas.MobileIdentity{Type: nas.IdentitySUCI, SUCI: u.suci()},
	}
	if err := u.send(link, &rrc.SetupComplete{NASPDU: nas.Encode(idResp)}); err != nil {
		return res, err
	}
	link.Abandon()
	return res, nil
}

// RunNullCipher models the bid-down attack (Hussain et al. [37]): the
// MiTM strips the victim's security capabilities so registration
// completes with NEA0/NIA0 — no confidentiality or integrity — which the
// telemetry exposes as active null security.
func (u *UE) RunNullCipher(g *gnb.GNB) (AttackResult, error) {
	res := AttackResult{Kind: AttackNullCipher}
	// The bid-down is modeled by the capability mask the network sees.
	downgraded := *u
	downgraded.Profile.Capability = 1 | 1<<8 // NEA0 + NIA0 only
	downgraded.Profile.Deregisters = false

	link := g.Attach()
	res.UEIDs = append(res.UEIDs, link.UEID())
	res.RNTIs = append(res.RNTIs, link.RNTI())

	id := rrc.UEIdentity{Kind: rrc.IdentityRandom, Random: u.rng.Uint64() & (1<<39 - 1)}
	if err := downgraded.send(link, &rrc.SetupRequest{Identity: id, Cause: downgraded.cause()}); err != nil {
		return res, err
	}
	if _, ok := link.TryRecv(); !ok {
		return res, ErrStalled
	}
	regReq := &nas.RegistrationRequest{
		RegType:    nas.RegInitial,
		Identity:   nas.MobileIdentity{Type: nas.IdentitySUCI, SUCI: downgraded.suci()},
		Capability: downgraded.Profile.Capability,
	}
	if err := downgraded.send(link, &rrc.SetupComplete{NASPDU: nas.Encode(regReq)}); err != nil {
		return res, err
	}
	sessRes := SessionResult{UEID: link.UEID(), RNTI: link.RNTI()}
	for guard := 0; guard < 64; guard++ {
		dl, ok := link.TryRecv()
		if !ok {
			break
		}
		done, err := downgraded.handleDownlink(link, dl, &sessRes)
		if err != nil {
			return res, err
		}
		if done {
			break
		}
	}
	if !sessRes.Registered {
		return res, fmt.Errorf("ue: null-cipher session did not register (network hardened?)")
	}
	link.Abandon()
	return res, nil
}
