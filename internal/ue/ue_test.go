package ue

import (
	"fmt"
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/cell"
	"github.com/6g-xsec/xsec/internal/corenet"
	"github.com/6g-xsec/xsec/internal/gnb"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/nas"
)

func testEnv(t *testing.T) (*gnb.GNB, *corenet.AMF) {
	t.Helper()
	amf := corenet.NewAMF(11)
	clock := time.Unix(1700000000, 0)
	g, err := gnb.New(gnb.Config{
		NodeID: "gnb-ue-test",
		AMF:    amf,
		Clock: func() time.Time {
			clock = clock.Add(time.Millisecond)
			return clock
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, amf
}

func provision(amf *corenet.AMF, n int) []*UE {
	ues := make([]*UE, n)
	for i := range ues {
		supi := cell.SUPI(fmt.Sprintf("imsi-00101%010d", i+1))
		var k [nas.KeySize]byte
		copy(k[:], fmt.Sprintf("key-%012d", i+1))
		amf.AddSubscriber(corenet.Subscriber{SUPI: supi, K: k})
		ues[i] = New(supi, k, Profiles[i%len(Profiles)], int64(100+i))
	}
	return ues
}

func TestBenignSessionAllProfiles(t *testing.T) {
	g, amf := testEnv(t)
	ues := provision(amf, len(Profiles))
	for _, u := range ues {
		u.Profile.RetransProb = 0 // determinism for this test
		res, err := u.RunSession(g)
		if err != nil {
			t.Fatalf("%s: %v", u.Profile.Name, err)
		}
		if !res.Registered || res.GUTI.TMSI == cell.InvalidTMSI {
			t.Errorf("%s: result %+v", u.Profile.Name, res)
		}
	}
	// No benign record may be out-of-order.
	for _, r := range g.Records() {
		if r.OutOfOrder {
			t.Errorf("benign record flagged: %s", r)
		}
	}
}

func TestGUTIReusedOnSecondSession(t *testing.T) {
	g, amf := testEnv(t)
	u := provision(amf, 1)[0]
	u.Profile.RetransProb = 0
	u.Profile.Deregisters = false

	res1, err := u.RunSession(g)
	if err != nil {
		t.Fatal(err)
	}
	// Network must release the abandoned context before re-attach.
	g.ReleaseUE(res1.UEID)
	amf.ReleaseUE(res1.UEID)

	res2, err := u.RunSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if res1.GUTI.TMSI == res2.GUTI.TMSI {
		t.Error("TMSI not rotated across sessions")
	}
	// The second session must have used GUTI identity (mobility update).
	sawGUTIReg := false
	for _, r := range g.Records() {
		if r.UEID == res2.UEID && r.Msg == "RegistrationRequest" && r.TMSI == res1.GUTI.TMSI {
			sawGUTIReg = true
		}
	}
	if !sawGUTIReg {
		t.Error("second registration did not present the remembered GUTI")
	}
}

func TestBTSDoSFootprint(t *testing.T) {
	g, amf := testEnv(t)
	attacker := provision(amf, 1)[0]
	attacker.Profile.RetransProb = 0

	res, err := attacker.RunBTSDoS(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UEIDs) != 10 || len(res.RNTIs) != 10 {
		t.Fatalf("footprint = %d UEs, %d RNTIs", len(res.UEIDs), len(res.RNTIs))
	}
	// The Figure 2b signature: a stream of unique RNTIs...
	seen := make(map[cell.RNTI]bool)
	for _, r := range res.RNTIs {
		if seen[r] {
			t.Errorf("RNTI %s reused", r)
		}
		seen[r] = true
	}
	// ...whose sessions all stall at the authentication stage.
	tr := g.Records()
	for _, ueID := range res.UEIDs {
		sub := tr.FilterUE(ueID)
		last := sub[len(sub)-1]
		if last.Msg != "AuthenticationRequest" {
			t.Errorf("UE %d last message = %s, want AuthenticationRequest", ueID, last.Msg)
		}
		if last.NASState != nas.StateAuthInitiated {
			t.Errorf("UE %d final NAS state = %s", ueID, last.NASState)
		}
	}
	// Contexts leak (the resource exhaustion): all 10 still active.
	if g.ActiveUEs() != 10 {
		t.Errorf("ActiveUEs = %d, want 10", g.ActiveUEs())
	}
}

func TestBlindDoSReplaysVictimTMSI(t *testing.T) {
	g, amf := testEnv(t)
	ues := provision(amf, 2)
	victim, attacker := ues[0], ues[1]
	victim.Profile.RetransProb = 0
	attacker.Profile.RetransProb = 0

	vres, err := victim.RunSession(g)
	if err != nil {
		t.Fatal(err)
	}
	ares, err := attacker.RunBlindDoS(g, vres.GUTI.TMSI, 5)
	if err == nil {
		// Signature check below.
	} else {
		t.Fatal(err)
	}

	tr := g.Records()
	reuse := 0
	for _, ueID := range ares.UEIDs {
		for _, r := range tr.FilterUE(ueID) {
			if r.TMSI == vres.GUTI.TMSI {
				reuse++
				break
			}
		}
	}
	if reuse != 5 {
		t.Errorf("TMSI replayed in %d/5 attack sessions", reuse)
	}
}

func TestUplinkIDExtractionSignature(t *testing.T) {
	g, amf := testEnv(t)
	u := provision(amf, 1)[0]
	u.Profile.RetransProb = 0

	res, err := u.RunUplinkIDExtraction(g)
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Records().FilterUE(res.UEIDs[0])
	// Figure 2a: ... Auth Req → Iden Resp (instead of Auth Resp).
	var idx int = -1
	for i, r := range tr {
		if r.Msg == "IdentityResponse" {
			idx = i
			break
		}
	}
	if idx < 1 {
		t.Fatal("no IdentityResponse in attack trace")
	}
	if tr[idx-1].Msg != "AuthenticationRequest" {
		t.Errorf("message before IdentityResponse = %s", tr[idx-1].Msg)
	}
	if !tr[idx].OutOfOrder {
		t.Error("IdentityResponse not flagged out-of-order")
	}
	if tr[idx].SUPI == "" {
		t.Error("plaintext SUPI not captured")
	}
	// The session then completes: the overall trace ends registered.
	last := tr[len(tr)-1]
	if last.NASState != nas.StateRegistered {
		t.Errorf("final NAS state = %s, want REGISTERED", last.NASState)
	}
}

func TestDownlinkIDExtractionSignature(t *testing.T) {
	g, amf := testEnv(t)
	u := provision(amf, 1)[0]
	u.Profile.RetransProb = 0

	res, err := u.RunDownlinkIDExtraction(g)
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Records().FilterUE(res.UEIDs[0])
	found := false
	for _, r := range tr {
		if r.Msg == "IdentityResponse" {
			found = true
			if !r.OutOfOrder {
				t.Error("unsolicited IdentityResponse not flagged")
			}
			if r.SUPI == "" {
				t.Error("plaintext SUPI not captured")
			}
		}
	}
	if !found {
		t.Fatal("no IdentityResponse in attack trace")
	}
}

func TestNullCipherSignature(t *testing.T) {
	g, amf := testEnv(t)
	u := provision(amf, 1)[0]
	u.Profile.RetransProb = 0

	res, err := u.RunNullCipher(g)
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Records().FilterUE(res.UEIDs[0])
	last := tr[len(tr)-1]
	if !last.SecurityOn {
		t.Fatal("session did not activate security")
	}
	if !last.CipherAlg.Null() || !last.IntegAlg.Null() {
		t.Errorf("final algorithms %s/%s, want NEA0/NIA0", last.CipherAlg, last.IntegAlg)
	}
	if last.NASState != nas.StateRegistered {
		t.Errorf("final NAS state = %s", last.NASState)
	}
}

func TestNullCipherDefeatedByHardening(t *testing.T) {
	g, amf := testEnv(t)
	u := provision(amf, 1)[0]
	u.Profile.RetransProb = 0
	g.RequireStrongSecurity(true)

	if _, err := u.RunNullCipher(g); err == nil {
		t.Error("null-cipher attack succeeded against hardened network")
	}
}

func TestBlindDoSStoppedByTMSIBlock(t *testing.T) {
	g, amf := testEnv(t)
	ues := provision(amf, 2)
	victim, attacker := ues[0], ues[1]
	victim.Profile.RetransProb = 0
	attacker.Profile.RetransProb = 0

	vres, err := victim.RunSession(g)
	if err != nil {
		t.Fatal(err)
	}
	g.BlockTMSI(vres.GUTI.TMSI)
	before := len(g.Records())
	if _, err := attacker.RunBlindDoS(g, vres.GUTI.TMSI, 3); err != nil {
		t.Fatal(err)
	}
	// Each attempt must have been rejected: no registration request
	// from the attacker reached the AMF.
	for _, r := range g.Records()[before:] {
		if r.Msg == "RegistrationRequest" {
			t.Error("blocked TMSI still reached registration")
		}
	}
}

func TestPaceCallbackInvoked(t *testing.T) {
	g, amf := testEnv(t)
	u := provision(amf, 1)[0]
	u.Profile.RetransProb = 0
	calls := 0
	u.Pace = func() { calls++ }
	if _, err := u.RunSession(g); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("Pace never called")
	}
}

func TestAttackKindStrings(t *testing.T) {
	if AttackBTSDoS.String() != "BTS DoS" || AttackNullCipher.String() != "Null Cipher & Integrity" {
		t.Error("attack names wrong")
	}
	if AttackKind(99).String() != "AttackKind(99)" {
		t.Error("unknown attack name wrong")
	}
}

func TestTelemetrySequenceMatchesFigure2Benign(t *testing.T) {
	// The benign half of Figure 2a: RRC Conn → RRC Setup → RRC Comp →
	// Reg. Req → Auth. Req → Auth. Resp.
	g, amf := testEnv(t)
	u := provision(amf, 1)[0]
	u.Profile.RetransProb = 0
	if _, err := u.RunSession(g); err != nil {
		t.Fatal(err)
	}
	msgs := g.Records().Messages()
	wantPrefix := []string{
		"RRCSetupRequest", "RRCSetup", "RRCSetupComplete",
		"RegistrationRequest", "AuthenticationRequest", "AuthenticationResponse",
	}
	for i, want := range wantPrefix {
		if msgs[i] != want {
			t.Fatalf("message %d = %s, want %s (full: %v)", i, msgs[i], want, msgs[:6])
		}
	}
	_ = mobiflow.Trace{}
}
