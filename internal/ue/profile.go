// Package ue simulates user equipment against the simulated gNB: benign
// sessions driven by commodity-device profiles (the paper's Pixel 5/6,
// Galaxy A22/A53, and OAI soft-UE), and the five end-to-end attacks the
// paper evaluates (§2.2, §4): BTS DoS, Blind DoS, uplink and downlink
// identity extraction, and the null-cipher-and-integrity bid-down.
package ue

import (
	"github.com/6g-xsec/xsec/internal/cell"
	"github.com/6g-xsec/xsec/internal/corenet"
)

// Profile captures the behavioral fingerprint of a device model. The
// paper collects benign traffic from four commodity phones plus OAI UEs
// on COLOSSEUM to diversify the benign distribution; these profiles
// reproduce that diversity (establishment-cause mix, capability set,
// retransmission propensity, post-registration behavior).
type Profile struct {
	// Name identifies the device model.
	Name string
	// Capability is the NEA/NIA support bitmask advertised in the
	// registration request.
	Capability uint32
	// Causes is the establishment-cause repertoire; sessions draw
	// uniformly from it.
	Causes []cell.EstablishmentCause
	// RetransProb is the probability that an uplink message is
	// duplicated by radio noise — the paper's main benign-FP source.
	RetransProb float64
	// SendsRegistrationComplete: some baseband stacks acknowledge the
	// registration accept, some fold it into the next procedure.
	SendsRegistrationComplete bool
	// Deregisters: whether sessions end with an explicit
	// deregistration (vs. silently going out of coverage).
	Deregisters bool
}

// The benign device fleet.
var (
	// Pixel5 models the Google Pixel 5.
	Pixel5 = Profile{
		Name:       "pixel-5",
		Capability: corenet.CapAll,
		Causes: []cell.EstablishmentCause{
			cell.CauseMOSignalling, cell.CauseMOData, cell.CauseMTAccess,
		},
		RetransProb:               0.02,
		SendsRegistrationComplete: true,
		Deregisters:               true,
	}
	// Pixel6 models the Google Pixel 6.
	Pixel6 = Profile{
		Name:       "pixel-6",
		Capability: corenet.CapAll,
		Causes: []cell.EstablishmentCause{
			cell.CauseMOSignalling, cell.CauseMOData, cell.CauseMOVoiceCall,
		},
		RetransProb:               0.015,
		SendsRegistrationComplete: true,
		Deregisters:               true,
	}
	// GalaxyA22 models the Samsung Galaxy A22 (no NEA3/NIA3 support in
	// its modem firmware generation).
	GalaxyA22 = Profile{
		Name: "galaxy-a22",
		Capability: corenet.CapNEA0 | corenet.CapNEA1 | corenet.CapNEA2 |
			corenet.CapNIA0 | corenet.CapNIA1 | corenet.CapNIA2,
		Causes: []cell.EstablishmentCause{
			cell.CauseMOSignalling, cell.CauseMOData, cell.CauseMOSMS,
		},
		RetransProb:               0.04,
		SendsRegistrationComplete: false,
		Deregisters:               true,
	}
	// GalaxyA53 models the Samsung Galaxy A53.
	GalaxyA53 = Profile{
		Name:       "galaxy-a53",
		Capability: corenet.CapAll,
		Causes: []cell.EstablishmentCause{
			cell.CauseMOSignalling, cell.CauseMOData, cell.CauseMOSMS, cell.CauseMTAccess,
		},
		RetransProb:               0.03,
		SendsRegistrationComplete: false,
		Deregisters:               true,
	}
	// OAIUE models the OpenAirInterface software UE used on COLOSSEUM.
	OAIUE = Profile{
		Name:       "oai-ue",
		Capability: corenet.CapAll,
		Causes: []cell.EstablishmentCause{
			cell.CauseMOSignalling,
		},
		RetransProb:               0.01,
		SendsRegistrationComplete: true,
		Deregisters:               false, // soft UEs are usually killed, not detached
	}
)

// Profiles lists the benign fleet in a stable order.
var Profiles = []Profile{Pixel5, Pixel6, GalaxyA22, GalaxyA53, OAIUE}
