package fed

import "github.com/6g-xsec/xsec/internal/obs"

// Federation observability. Ownership and migration behavior must be
// visible per instance even when N instances share one process (tests,
// xsec-bench -fed), so every series is labeled by instance ID.
var (
	obsOwnedFraction = obs.NewGaugeVec("xsec_fed_owned_fraction",
		"Share of the UE-hash circle owned by each instance in the current ring epoch.",
		"instance")
	obsRingEpoch = obs.NewGaugeVec("xsec_fed_ring_epoch",
		"Ring epoch each instance has applied.", "instance")
	obsMigrations = obs.NewCounterVec("xsec_fed_migrations_total",
		"UE-state migrations, by instance and direction (out, in, failed).",
		"instance", "direction")
	obsMigrationsInflight = obs.NewGauge("xsec_fed_migrations_inflight",
		"Outbound migrations currently awaiting the destination's ack.")
	obsMigrationSeconds = obs.NewHistogram("xsec_fed_migration_seconds",
		"Checkpoint-to-ack latency of completed outbound migrations.",
		obs.ExpBuckets(0.0005, 2, 14))
	obsBusPublished = obs.NewCounterVec("xsec_fed_bus_published_total",
		"Messages published to the federation bus, by topic.", "topic")
	obsBusDelivered = obs.NewCounterVec("xsec_fed_bus_delivered_total",
		"Messages delivered to bus subscribers, by topic.", "topic")
	obsBusDropped = obs.NewCounterVec("xsec_fed_bus_dropped_total",
		"Bus messages dropped toward a slow subscriber, by topic.", "topic")
	obsBusPublishFailures = obs.NewCounterVec("xsec_fed_bus_publish_failures_total",
		"Publishes refused because the bus was unreachable (degraded mode).",
		"instance")
)
