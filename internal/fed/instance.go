package fed

import (
	"fmt"
	"sync"
	"time"

	"github.com/6g-xsec/xsec/internal/asn1lite"
	"github.com/6g-xsec/xsec/internal/e2ap"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/prov"
	"github.com/6g-xsec/xsec/internal/ric"
	"github.com/6g-xsec/xsec/internal/sdl"
	"github.com/6g-xsec/xsec/internal/smo"
	"github.com/6g-xsec/xsec/internal/wire"
)

// migrateMsg carries one UE's checkpointed state toward its new owner
// on TopicMigrate.
type migrateMsg struct {
	Epoch    uint64
	Source   string
	Dest     string
	UE       uint64
	Snapshot []byte
}

func (m *migrateMsg) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(1, m.Epoch)
	e.PutString(2, m.Source)
	e.PutString(3, m.Dest)
	e.PutUint(4, m.UE)
	e.PutBytes(5, m.Snapshot)
}

func (m *migrateMsg) UnmarshalTLV(d *asn1lite.Decoder) error {
	*m = migrateMsg{}
	for d.Next() {
		var err error
		switch d.Tag() {
		case 1:
			m.Epoch, err = d.Uint()
		case 2:
			m.Source, err = d.String()
		case 3:
			m.Dest, err = d.String()
		case 4:
			m.UE, err = d.Uint()
		case 5:
			m.Snapshot, err = d.Bytes()
		}
		if err != nil {
			return err
		}
	}
	return d.Err()
}

// migrateAck confirms a restore on TopicMigrateAck; Source addresses the
// instance that may now forget the UE.
type migrateAck struct {
	Source string
	Dest   string
	UE     uint64
}

func (m *migrateAck) MarshalTLV(e *asn1lite.Encoder) {
	e.PutString(1, m.Source)
	e.PutString(2, m.Dest)
	e.PutUint(3, m.UE)
}

func (m *migrateAck) UnmarshalTLV(d *asn1lite.Decoder) error {
	*m = migrateAck{}
	for d.Next() {
		var err error
		switch d.Tag() {
		case 1:
			m.Source, err = d.String()
		case 2:
			m.Dest, err = d.String()
		case 3:
			m.UE, err = d.Uint()
		}
		if err != nil {
			return err
		}
	}
	return d.Err()
}

// InstanceOptions configures one federated RIC instance.
type InstanceOptions struct {
	// ID is the instance's federation identity (e.g. "ric-0").
	ID string
	// Models are the deployed MobiWatch models (required).
	Models *mobiwatch.Models
	// BusAddr is the broker address; empty runs the instance standalone
	// (no federation, detection only).
	BusAddr string
	// Dial overrides the bus transport (tests inject failures).
	Dial func() (*wire.Conn, error)
	// Store is the instance's SDL (default: a fresh store).
	Store *sdl.Store
	// Shards / ShardBuffer / ReportPeriod tune the MobiWatch runtime.
	Shards       int
	ShardBuffer  int
	ReportPeriod time.Duration
	// MigrationTimeout bounds checkpoint-to-ack for one outbound
	// migration (default 5s); on expiry the UE stays local.
	MigrationTimeout time.Duration
	// MaxConcurrentMigrations bounds parallel outbound migrations during
	// a rebalance (default 4), so a ring change cannot stampede the bus.
	MaxConcurrentMigrations int
	// OwnerTTL is the ownership lease written on restore (default 10s).
	OwnerTTL time.Duration
}

func (o *InstanceOptions) defaults() error {
	if o.ID == "" {
		return fmt.Errorf("fed: instance ID required")
	}
	if o.Models == nil {
		return fmt.Errorf("fed: instance %s: models required", o.ID)
	}
	if o.Store == nil {
		o.Store = sdl.New()
	}
	if o.Shards == 0 {
		o.Shards = 2
	}
	if o.MigrationTimeout == 0 {
		o.MigrationTimeout = 5 * time.Second
	}
	if o.MaxConcurrentMigrations == 0 {
		o.MaxConcurrentMigrations = 4
	}
	if o.OwnerTTL == 0 {
		o.OwnerTTL = 10 * time.Second
	}
	return nil
}

// Instance is one federated near-RT RIC: a platform with an attached
// feeder node, the MobiWatch runtime scoring that node's telemetry, and
// the bus endpoints of the migration protocol. When the bus is
// unreachable the instance keeps detecting standalone — federation
// degrades, the security function does not.
type Instance struct {
	opts     InstanceOptions
	id       string
	store    *sdl.Store
	platform *ric.Platform
	rt       *mobiwatch.Runtime
	feeder   *Feeder
	bus      *Client

	mu       sync.Mutex
	ring     *Ring
	inflight map[uint64]*outMigration
	migSem   chan struct{}
	stopped  bool
}

type outMigration struct {
	start time.Time
	done  chan struct{}
}

// StartInstance brings one instance up and, when a bus address is
// configured, joins it to the federation topics.
func StartInstance(opts InstanceOptions) (*Instance, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	i := &Instance{
		opts:     opts,
		id:       opts.ID,
		store:    opts.Store,
		inflight: make(map[uint64]*outMigration),
		migSem:   make(chan struct{}, opts.MaxConcurrentMigrations),
	}
	i.platform = ric.NewPlatform(opts.Store)

	feederEp, platEp := e2ap.Pipe()
	go i.platform.AttachNode(platEp)
	i.feeder = NewFeeder("gnb-"+opts.ID, feederEp)

	deadline := time.Now().Add(2 * time.Second)
	for len(i.platform.Nodes()) == 0 {
		if time.Now().After(deadline) {
			i.teardown()
			return nil, fmt.Errorf("fed: instance %s: feeder node never attached", opts.ID)
		}
		time.Sleep(time.Millisecond)
	}

	xapp, err := i.platform.RegisterXApp("mobiwatch")
	if err != nil {
		i.teardown()
		return nil, fmt.Errorf("fed: instance %s: %w", opts.ID, err)
	}
	// Deploy a private copy of the models: A1 threshold policies mutate
	// the runtime's model state, and federated instances apply policies
	// independently.
	saved, err := opts.Models.Save()
	if err != nil {
		i.teardown()
		return nil, fmt.Errorf("fed: instance %s: %w", opts.ID, err)
	}
	models, err := mobiwatch.Load(saved)
	if err != nil {
		i.teardown()
		return nil, fmt.Errorf("fed: instance %s: %w", opts.ID, err)
	}
	i.rt, err = mobiwatch.Run(xapp, models, mobiwatch.RunOptions{
		NodeID:       i.feeder.NodeID(),
		Shards:       opts.Shards,
		ShardBuffer:  opts.ShardBuffer,
		ReportPeriod: opts.ReportPeriod,
	})
	if err != nil {
		i.teardown()
		return nil, fmt.Errorf("fed: instance %s: mobiwatch: %w", opts.ID, err)
	}
	if err := i.feeder.WaitReady(2 * time.Second); err != nil {
		i.teardown()
		return nil, err
	}

	dial := opts.Dial
	if dial == nil && opts.BusAddr != "" {
		addr := opts.BusAddr
		dial = func() (*wire.Conn, error) { return wire.Dial(addr, time.Second) }
	}
	if dial != nil {
		i.bus = NewClient(opts.ID, dial)
		i.bus.Subscribe(TopicRing, i.onRing)
		i.bus.Subscribe(TopicPolicy, i.onPolicy)
		i.bus.Subscribe(TopicMigrate, i.onMigrate)
		i.bus.Subscribe(TopicMigrateAck, i.onAck)
	}
	obs.RegisterHealth("fed/"+opts.ID, i.health)
	return i, nil
}

func (i *Instance) teardown() {
	if i.rt != nil {
		i.rt.Stop()
	}
	if i.feeder != nil {
		i.feeder.Close()
	}
	i.platform.Close()
}

// ID returns the instance's federation identity.
func (i *Instance) ID() string { return i.id }

// Feeder returns the instance's synthetic E2 node.
func (i *Instance) Feeder() *Feeder { return i.feeder }

// Runtime returns the MobiWatch runtime (alerts, stats, thresholds).
func (i *Instance) Runtime() *mobiwatch.Runtime { return i.rt }

// Store returns the instance's SDL.
func (i *Instance) Store() *sdl.Store { return i.store }

// Bus returns the instance's bus client (nil when standalone).
func (i *Instance) Bus() *Client { return i.bus }

// Records returns how many telemetry records this instance has scored.
// The counter is readable after Stop, so zero-loss accounting can still
// include retired instances.
func (i *Instance) Records() uint64 {
	return i.rt.Stats().RecordsSeen.Load()
}

// RingEpoch returns the last ring epoch this instance applied (0 before
// the first).
func (i *Instance) RingEpoch() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.ring == nil {
		return 0
	}
	return i.ring.Epoch
}

// Owns reports whether this instance owns ue in its applied ring; with
// no ring applied (standalone) it owns everything it sees.
func (i *Instance) Owns(ue uint64) bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.ring == nil {
		return true
	}
	return i.ring.Owner(ue) == i.id
}

// health is the /healthz readiness check: a federated instance is ready
// when it is running and its bus is reachable; degraded mode is
// reported, not hidden.
func (i *Instance) health() error {
	i.mu.Lock()
	stopped := i.stopped
	i.mu.Unlock()
	if stopped {
		return fmt.Errorf("instance stopped")
	}
	if i.bus != nil && !i.bus.Connected() {
		return fmt.Errorf("bus unreachable (degraded: standalone detection, no migration)")
	}
	return nil
}

// onRing applies a published ring epoch and migrates out every UE this
// instance holds but no longer owns. Migrations run concurrently under
// the MaxConcurrentMigrations semaphore.
func (i *Instance) onRing(_ uint64, payload []byte) {
	r, err := ParseRing(payload)
	if err != nil {
		obs.L().Warn("fed: bad ring payload", "instance", i.id, "err", err)
		return
	}
	i.mu.Lock()
	if i.stopped || (i.ring != nil && r.Epoch <= i.ring.Epoch) {
		i.mu.Unlock()
		return
	}
	i.ring = r
	i.mu.Unlock()
	obsRingEpoch.With(i.id).Set(float64(r.Epoch))
	obsOwnedFraction.With(i.id).Set(r.OwnedFraction(i.id))
	obs.L().Info("fed: ring applied", "instance", i.id, "epoch", r.Epoch,
		"instances", len(r.Instances), "owned", fmt.Sprintf("%.3f", r.OwnedFraction(i.id)))

	for _, ue := range i.rt.UEs() {
		owner := r.Owner(ue)
		if owner == "" || owner == i.id {
			continue
		}
		go func(ue uint64, owner string) {
			if err := i.MigrateUE(ue, owner); err != nil {
				obs.L().Warn("fed: rebalance migration failed, UE stays local",
					"instance", i.id, "ue", ue, "dest", owner, "err", err)
			}
		}(ue, owner)
	}
}

// onPolicy applies an A1 policy fanned out by the coordinator.
func (i *Instance) onPolicy(_ uint64, payload []byte) {
	p, err := smo.ParsePolicy(payload)
	if err != nil {
		obs.L().Warn("fed: bad policy payload", "instance", i.id, "err", err)
		return
	}
	if p.ThresholdPercentile > 0 {
		if err := i.rt.SetThresholdPercentile(p.ThresholdPercentile); err == nil {
			obs.L().Info("fed: policy applied", "instance", i.id,
				"policy", p.ID, "percentile", p.ThresholdPercentile)
		}
	}
}

// MigrateUE checkpoints ue, records the provenance hand-off, ships the
// snapshot to dest, and forgets the UE once dest acknowledges the
// restore. Until the ack arrives the UE keeps scoring locally, so a
// failed or timed-out migration degrades to the pre-migration state
// instead of losing the UE.
func (i *Instance) MigrateUE(ue uint64, dest string) error {
	if dest == i.id {
		return nil
	}
	if i.bus == nil {
		return fmt.Errorf("fed: instance %s is standalone, cannot migrate", i.id)
	}
	i.migSem <- struct{}{}
	defer func() { <-i.migSem }()
	obsMigrationsInflight.Add(1)
	defer obsMigrationsInflight.Add(-1)

	snap, err := i.rt.CheckpointUE(ue)
	if err != nil {
		return fmt.Errorf("fed: checkpoint UE %d: %w", ue, err)
	}
	start := time.Now()
	m := &outMigration{start: start, done: make(chan struct{})}
	i.mu.Lock()
	if _, dup := i.inflight[ue]; dup {
		i.mu.Unlock()
		return fmt.Errorf("fed: UE %d migration already in flight", ue)
	}
	epoch := 0
	if i.ring != nil {
		epoch = i.ring.Epoch
	}
	i.inflight[ue] = m
	i.mu.Unlock()

	// The hand-off is recorded on the chain of the UE's last scored
	// indication before the snapshot leaves this instance, so the
	// evidence trail cannot end without naming where the state went.
	prov.Record(prov.Event{
		Chain:    prov.ChainID{Node: snap.Node, SN: snap.LastSN},
		Kind:     prov.KindMigration,
		At:       start,
		Label:    "out",
		UEID:     ue,
		Target:   dest,
		SeqFirst: snap.Records.FirstSeq(),
		SeqLast:  snap.Records.LastSeq(),
	})

	msg := migrateMsg{
		Epoch: uint64(epoch), Source: i.id, Dest: dest, UE: ue,
		Snapshot: mobiwatch.EncodeSnapshot(snap),
	}
	if err := i.bus.Publish(TopicMigrate, asn1lite.Marshal(&msg)); err != nil {
		i.clearInflight(ue)
		obsMigrations.With(i.id, "failed").Inc()
		return err
	}

	select {
	case <-m.done:
		if err := i.rt.ForgetUE(ue); err != nil {
			obs.L().Warn("fed: forget after ack", "instance", i.id, "ue", ue, "err", err)
		}
		obsMigrations.With(i.id, "out").Inc()
		obsMigrationSeconds.Observe(time.Since(start).Seconds())
		return nil
	case <-time.After(i.opts.MigrationTimeout):
		i.clearInflight(ue)
		obsMigrations.With(i.id, "failed").Inc()
		return fmt.Errorf("fed: UE %d migration to %s: no ack within %v (UE stays local)",
			ue, dest, i.opts.MigrationTimeout)
	}
}

func (i *Instance) clearInflight(ue uint64) {
	i.mu.Lock()
	delete(i.inflight, ue)
	i.mu.Unlock()
}

// onMigrate restores a snapshot addressed to this instance and claims
// the UE's ownership lease before acknowledging, so the restored window
// state is in place before the first post-migration indication scores.
func (i *Instance) onMigrate(_ uint64, payload []byte) {
	var msg migrateMsg
	if err := asn1lite.Unmarshal(payload, &msg); err != nil || msg.Dest != i.id {
		return
	}
	snap, err := mobiwatch.DecodeSnapshot(msg.Snapshot)
	if err != nil {
		obs.L().Warn("fed: bad snapshot", "instance", i.id, "ue", msg.UE, "err", err)
		obsMigrations.With(i.id, "failed").Inc()
		return
	}
	if err := i.rt.RestoreUE(snap); err != nil {
		obs.L().Warn("fed: restore failed", "instance", i.id, "ue", msg.UE, "err", err)
		obsMigrations.With(i.id, "failed").Inc()
		return
	}
	i.store.SetOwnedTTL(OwnerNamespace, ownerKey(i.id, msg.UE),
		[]byte(i.id), i.opts.OwnerTTL)
	obsMigrations.With(i.id, "in").Inc()
	ack := migrateAck{Source: msg.Source, Dest: i.id, UE: msg.UE}
	if err := i.bus.Publish(TopicMigrateAck, asn1lite.Marshal(&ack)); err != nil {
		obs.L().Warn("fed: ack publish failed", "instance", i.id, "ue", msg.UE, "err", err)
	}
}

// onAck completes an outbound migration this instance is waiting on.
// An ack that arrives after the waiter timed out is still adopted when
// the applied ring assigns the UE elsewhere: the destination has
// restored the state and holds the lease, so keeping a second live copy
// here until the next ring change is strictly worse than dropping the
// few records scored locally since the timeout (they are already
// counted as scored; zero-loss accounting is unaffected). The ring
// guard keeps a replayed ack — the bus redelivers on reconnect — from
// forgetting a UE that has since migrated back.
func (i *Instance) onAck(_ uint64, payload []byte) {
	var ack migrateAck
	if err := asn1lite.Unmarshal(payload, &ack); err != nil || ack.Source != i.id {
		return
	}
	i.mu.Lock()
	m := i.inflight[ack.UE]
	delete(i.inflight, ack.UE)
	ownsStill := i.ring == nil || i.ring.Owner(ack.UE) == i.id
	i.mu.Unlock()
	if m != nil {
		close(m.done)
		return
	}
	if ownsStill {
		return
	}
	if err := i.rt.ForgetUE(ack.UE); err == nil {
		obsMigrations.With(i.id, "out").Inc()
		obs.L().Info("fed: late migration ack adopted",
			"instance", i.id, "ue", ack.UE, "dest", ack.Dest)
	}
}

func ownerKey(instance string, ue uint64) string {
	return fmt.Sprintf("owner/%s/%d", instance, ue)
}

// UEs lists the UE contexts this instance currently holds.
func (i *Instance) UEs() []uint64 { return i.rt.UEs() }

// Alerts exposes the runtime's alert stream.
func (i *Instance) Alerts() <-chan mobiwatch.Alert { return i.rt.Alerts() }

// Stop retires the instance: bus first (no new migrations in), then the
// scoring runtime, then the transports. The final record count stays
// readable through Records.
func (i *Instance) Stop() {
	i.mu.Lock()
	if i.stopped {
		i.mu.Unlock()
		return
	}
	i.stopped = true
	i.mu.Unlock()
	obs.UnregisterHealth("fed/" + i.id)
	if i.bus != nil {
		i.bus.Close()
	}
	i.rt.Stop()
	i.feeder.Close()
	i.platform.Close()
}
