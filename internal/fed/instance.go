package fed

import (
	"fmt"
	"sync"
	"time"

	"github.com/6g-xsec/xsec/internal/asn1lite"
	"github.com/6g-xsec/xsec/internal/e2ap"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/obs/fleet"
	"github.com/6g-xsec/xsec/internal/prov"
	"github.com/6g-xsec/xsec/internal/ric"
	"github.com/6g-xsec/xsec/internal/sdl"
	"github.com/6g-xsec/xsec/internal/smo"
	"github.com/6g-xsec/xsec/internal/wire"
)

// migrateMsg carries one UE's checkpointed state toward its new owner
// on TopicMigrate. Trace is the provenance chain key of the UE's last
// scored indication on the source — the trace context that lets the
// destination's restore span (and everything after it) stitch onto the
// source's trace.
type migrateMsg struct {
	Epoch    uint64
	Source   string
	Dest     string
	UE       uint64
	Snapshot []byte
	Trace    string
}

func (m *migrateMsg) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(1, m.Epoch)
	e.PutString(2, m.Source)
	e.PutString(3, m.Dest)
	e.PutUint(4, m.UE)
	e.PutBytes(5, m.Snapshot)
	if m.Trace != "" {
		e.PutString(6, m.Trace)
	}
}

func (m *migrateMsg) UnmarshalTLV(d *asn1lite.Decoder) error {
	*m = migrateMsg{}
	for d.Next() {
		var err error
		switch d.Tag() {
		case 1:
			m.Epoch, err = d.Uint()
		case 2:
			m.Source, err = d.String()
		case 3:
			m.Dest, err = d.String()
		case 4:
			m.UE, err = d.Uint()
		case 5:
			m.Snapshot, err = d.Bytes()
		case 6:
			m.Trace, err = d.String()
		}
		if err != nil {
			return err
		}
	}
	return d.Err()
}

// migrateAck confirms a restore on TopicMigrateAck; Source addresses the
// instance that may now forget the UE. Trace echoes the migration's
// trace context so the ack hop lands on the same distributed trace.
type migrateAck struct {
	Source string
	Dest   string
	UE     uint64
	Trace  string
}

func (m *migrateAck) MarshalTLV(e *asn1lite.Encoder) {
	e.PutString(1, m.Source)
	e.PutString(2, m.Dest)
	e.PutUint(3, m.UE)
	if m.Trace != "" {
		e.PutString(4, m.Trace)
	}
}

func (m *migrateAck) UnmarshalTLV(d *asn1lite.Decoder) error {
	*m = migrateAck{}
	for d.Next() {
		var err error
		switch d.Tag() {
		case 1:
			m.Source, err = d.String()
		case 2:
			m.Dest, err = d.String()
		case 3:
			m.UE, err = d.Uint()
		case 4:
			m.Trace, err = d.String()
		}
		if err != nil {
			return err
		}
	}
	return d.Err()
}

// InstanceOptions configures one federated RIC instance.
type InstanceOptions struct {
	// ID is the instance's federation identity (e.g. "ric-0").
	ID string
	// Models are the deployed MobiWatch models (required).
	Models *mobiwatch.Models
	// BusAddr is the broker address; empty runs the instance standalone
	// (no federation, detection only).
	BusAddr string
	// Dial overrides the bus transport (tests inject failures).
	Dial func() (*wire.Conn, error)
	// Store is the instance's SDL (default: a fresh store).
	Store *sdl.Store
	// Shards / ShardBuffer / ReportPeriod tune the MobiWatch runtime.
	Shards       int
	ShardBuffer  int
	ReportPeriod time.Duration
	// MigrationTimeout bounds checkpoint-to-ack for one outbound
	// migration (default 5s); on expiry the UE stays local.
	MigrationTimeout time.Duration
	// MaxConcurrentMigrations bounds parallel outbound migrations during
	// a rebalance (default 4), so a ring change cannot stampede the bus.
	MaxConcurrentMigrations int
	// OwnerTTL is the ownership lease written on restore (default 10s).
	OwnerTTL time.Duration
	// HeartbeatPeriod is the fleet-plane liveness beacon cadence
	// (default 500ms; negative disables heartbeats).
	HeartbeatPeriod time.Duration
}

func (o *InstanceOptions) defaults() error {
	if o.ID == "" {
		return fmt.Errorf("fed: instance ID required")
	}
	if o.Models == nil {
		return fmt.Errorf("fed: instance %s: models required", o.ID)
	}
	if o.Store == nil {
		o.Store = sdl.New()
	}
	if o.Shards == 0 {
		o.Shards = 2
	}
	if o.MigrationTimeout == 0 {
		o.MigrationTimeout = 5 * time.Second
	}
	if o.MaxConcurrentMigrations == 0 {
		o.MaxConcurrentMigrations = 4
	}
	if o.OwnerTTL == 0 {
		o.OwnerTTL = 10 * time.Second
	}
	if o.HeartbeatPeriod == 0 {
		o.HeartbeatPeriod = 500 * time.Millisecond
	}
	return nil
}

// Instance is one federated near-RT RIC: a platform with an attached
// feeder node, the MobiWatch runtime scoring that node's telemetry, and
// the bus endpoints of the migration protocol. When the bus is
// unreachable the instance keeps detecting standalone — federation
// degrades, the security function does not.
type Instance struct {
	opts     InstanceOptions
	id       string
	store    *sdl.Store
	platform *ric.Platform
	rt       *mobiwatch.Runtime
	feeder   *Feeder
	bus      *Client

	// scoreReg is a private registry holding this instance's
	// score-latency histogram: colocated instances share the process
	// Default registry, so instance-attributed series for the fleet
	// plane are built here instead (see ObsSnapshot).
	scoreReg  *obs.Registry
	scoreHist *obs.Histogram

	hbStop chan struct{}
	hbWG   sync.WaitGroup

	mu       sync.Mutex
	ring     *Ring
	inflight map[uint64]*outMigration
	migSem   chan struct{}
	stopped  bool
}

type outMigration struct {
	start time.Time
	done  chan struct{}
}

// StartInstance brings one instance up and, when a bus address is
// configured, joins it to the federation topics.
func StartInstance(opts InstanceOptions) (*Instance, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	i := &Instance{
		opts:     opts,
		id:       opts.ID,
		store:    opts.Store,
		inflight: make(map[uint64]*outMigration),
		migSem:   make(chan struct{}, opts.MaxConcurrentMigrations),
		scoreReg: obs.NewRegistry(),
		hbStop:   make(chan struct{}),
	}
	i.scoreHist = i.scoreReg.HistogramVec("xsec_mobiwatch_score_seconds",
		"Streaming-inference latency per telemetry batch (this instance only).",
		obs.ExpBuckets(1e-6, 4, 12)).With()
	i.platform = ric.NewPlatform(opts.Store)

	feederEp, platEp := e2ap.Pipe()
	go i.platform.AttachNode(platEp)
	i.feeder = NewFeeder("gnb-"+opts.ID, feederEp)

	deadline := time.Now().Add(2 * time.Second)
	for len(i.platform.Nodes()) == 0 {
		if time.Now().After(deadline) {
			i.teardown()
			return nil, fmt.Errorf("fed: instance %s: feeder node never attached", opts.ID)
		}
		time.Sleep(time.Millisecond)
	}

	xapp, err := i.platform.RegisterXApp("mobiwatch")
	if err != nil {
		i.teardown()
		return nil, fmt.Errorf("fed: instance %s: %w", opts.ID, err)
	}
	// Deploy a private copy of the models: A1 threshold policies mutate
	// the runtime's model state, and federated instances apply policies
	// independently.
	saved, err := opts.Models.Save()
	if err != nil {
		i.teardown()
		return nil, fmt.Errorf("fed: instance %s: %w", opts.ID, err)
	}
	models, err := mobiwatch.Load(saved)
	if err != nil {
		i.teardown()
		return nil, fmt.Errorf("fed: instance %s: %w", opts.ID, err)
	}
	i.rt, err = mobiwatch.Run(xapp, models, mobiwatch.RunOptions{
		NodeID:       i.feeder.NodeID(),
		Shards:       opts.Shards,
		ShardBuffer:  opts.ShardBuffer,
		ReportPeriod: opts.ReportPeriod,
		ScoreLatency: i.scoreHist,
	})
	if err != nil {
		i.teardown()
		return nil, fmt.Errorf("fed: instance %s: mobiwatch: %w", opts.ID, err)
	}
	if err := i.feeder.WaitReady(2 * time.Second); err != nil {
		i.teardown()
		return nil, err
	}

	dial := opts.Dial
	if dial == nil && opts.BusAddr != "" {
		addr := opts.BusAddr
		dial = func() (*wire.Conn, error) { return wire.Dial(addr, time.Second) }
	}
	if dial != nil {
		i.bus = NewClient(opts.ID, dial)
		i.bus.Subscribe(TopicRing, i.onRing)
		i.bus.Subscribe(TopicPolicy, i.onPolicy)
		i.bus.SubscribeTraced(TopicMigrate, i.onMigrate)
		i.bus.SubscribeTraced(TopicMigrateAck, i.onAck)
		i.bus.Subscribe(fleet.TopicScrape, i.onScrape)
		if opts.HeartbeatPeriod > 0 {
			i.hbWG.Add(1)
			go i.heartbeatLoop(opts.HeartbeatPeriod)
		}
	}
	obs.RegisterHealthDetail("fed/"+opts.ID, i.healthDetail)
	return i, nil
}

func (i *Instance) teardown() {
	if i.rt != nil {
		i.rt.Stop()
	}
	if i.feeder != nil {
		i.feeder.Close()
	}
	i.platform.Close()
}

// ID returns the instance's federation identity.
func (i *Instance) ID() string { return i.id }

// Feeder returns the instance's synthetic E2 node.
func (i *Instance) Feeder() *Feeder { return i.feeder }

// Runtime returns the MobiWatch runtime (alerts, stats, thresholds).
func (i *Instance) Runtime() *mobiwatch.Runtime { return i.rt }

// Store returns the instance's SDL.
func (i *Instance) Store() *sdl.Store { return i.store }

// Bus returns the instance's bus client (nil when standalone).
func (i *Instance) Bus() *Client { return i.bus }

// Records returns how many telemetry records this instance has scored.
// The counter is readable after Stop, so zero-loss accounting can still
// include retired instances.
func (i *Instance) Records() uint64 {
	return i.rt.Stats().RecordsSeen.Load()
}

// RingEpoch returns the last ring epoch this instance applied (0 before
// the first).
func (i *Instance) RingEpoch() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.ring == nil {
		return 0
	}
	return i.ring.Epoch
}

// Owns reports whether this instance owns ue in its applied ring; with
// no ring applied (standalone) it owns everything it sees.
func (i *Instance) Owns(ue uint64) bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.ring == nil {
		return true
	}
	return i.ring.Owner(ue) == i.id
}

// healthDetail is the /healthz readiness check: a federated instance is
// ready when it is running and its bus is reachable; degraded mode is
// reported, not hidden. The detail string carries per-subsystem state
// for the structured (JSON) health form.
func (i *Instance) healthDetail() (string, error) {
	i.mu.Lock()
	stopped := i.stopped
	epoch := 0
	if i.ring != nil {
		epoch = i.ring.Epoch
	}
	i.mu.Unlock()
	detail := fmt.Sprintf("bus=%s epoch=%d ues=%d shards=%d",
		map[bool]string{true: "connected", false: "disconnected"}[i.bus != nil && i.bus.Connected()],
		epoch, len(i.rt.UEs()), i.store.ShardCount())
	if stopped {
		return detail, fmt.Errorf("instance stopped")
	}
	if i.bus != nil && !i.bus.Connected() {
		return detail, fmt.Errorf("bus unreachable (degraded: standalone detection, no migration)")
	}
	return detail, nil
}

// onRing applies a published ring epoch and migrates out every UE this
// instance holds but no longer owns. Migrations run concurrently under
// the MaxConcurrentMigrations semaphore.
func (i *Instance) onRing(_ uint64, payload []byte) {
	r, err := ParseRing(payload)
	if err != nil {
		obs.L().Warn("fed: bad ring payload", "instance", i.id, "err", err)
		return
	}
	i.mu.Lock()
	if i.stopped || (i.ring != nil && r.Epoch <= i.ring.Epoch) {
		i.mu.Unlock()
		return
	}
	i.ring = r
	i.mu.Unlock()
	obsRingEpoch.With(i.id).Set(float64(r.Epoch))
	obsOwnedFraction.With(i.id).Set(r.OwnedFraction(i.id))
	obs.L().Info("fed: ring applied", "instance", i.id, "epoch", r.Epoch,
		"instances", len(r.Instances), "owned", fmt.Sprintf("%.3f", r.OwnedFraction(i.id)))

	for _, ue := range i.rt.UEs() {
		owner := r.Owner(ue)
		if owner == "" || owner == i.id {
			continue
		}
		go func(ue uint64, owner string) {
			if err := i.MigrateUE(ue, owner); err != nil {
				obs.L().Warn("fed: rebalance migration failed, UE stays local",
					"instance", i.id, "ue", ue, "dest", owner, "err", err)
			}
		}(ue, owner)
	}
}

// onPolicy applies an A1 policy fanned out by the coordinator.
func (i *Instance) onPolicy(_ uint64, payload []byte) {
	p, err := smo.ParsePolicy(payload)
	if err != nil {
		obs.L().Warn("fed: bad policy payload", "instance", i.id, "err", err)
		return
	}
	if p.ThresholdPercentile > 0 {
		if err := i.rt.SetThresholdPercentile(p.ThresholdPercentile); err == nil {
			obs.L().Info("fed: policy applied", "instance", i.id,
				"policy", p.ID, "percentile", p.ThresholdPercentile)
		}
	}
}

// MigrateUE checkpoints ue, records the provenance hand-off, ships the
// snapshot to dest, and forgets the UE once dest acknowledges the
// restore. Until the ack arrives the UE keeps scoring locally, so a
// failed or timed-out migration degrades to the pre-migration state
// instead of losing the UE.
func (i *Instance) MigrateUE(ue uint64, dest string) error {
	if dest == i.id {
		return nil
	}
	if i.bus == nil {
		return fmt.Errorf("fed: instance %s is standalone, cannot migrate", i.id)
	}
	i.migSem <- struct{}{}
	defer func() { <-i.migSem }()
	obsMigrationsInflight.Add(1)
	defer obsMigrationsInflight.Add(-1)

	cpStart := time.Now()
	snap, err := i.rt.CheckpointUE(ue)
	if err != nil {
		return fmt.Errorf("fed: checkpoint UE %d: %w", ue, err)
	}
	// The migration's trace context: the chain key of the UE's last
	// scored indication here. Every hop of the hand-off records spans on
	// it, and the destination keeps using it for the restore span.
	trace := prov.ChainID{Node: snap.Node, SN: snap.LastSN}.String()
	obs.RecordSpan(trace, "fed.checkpoint", cpStart, time.Now())
	start := time.Now()
	m := &outMigration{start: start, done: make(chan struct{})}
	i.mu.Lock()
	if _, dup := i.inflight[ue]; dup {
		i.mu.Unlock()
		return fmt.Errorf("fed: UE %d migration already in flight", ue)
	}
	epoch := 0
	if i.ring != nil {
		epoch = i.ring.Epoch
	}
	i.inflight[ue] = m
	i.mu.Unlock()

	// The hand-off is recorded on the chain of the UE's last scored
	// indication before the snapshot leaves this instance, so the
	// evidence trail cannot end without naming where the state went.
	prov.Record(prov.Event{
		Chain:    prov.ChainID{Node: snap.Node, SN: snap.LastSN},
		Kind:     prov.KindMigration,
		At:       start,
		Label:    "out",
		UEID:     ue,
		Target:   dest,
		SeqFirst: snap.Records.FirstSeq(),
		SeqLast:  snap.Records.LastSeq(),
	})

	msg := migrateMsg{
		Epoch: uint64(epoch), Source: i.id, Dest: dest, UE: ue,
		Snapshot: mobiwatch.EncodeSnapshot(snap), Trace: trace,
	}
	if err := i.bus.PublishTraced(TopicMigrate, asn1lite.Marshal(&msg), trace); err != nil {
		i.clearInflight(ue)
		obsMigrations.With(i.id, "failed").Inc()
		return err
	}

	select {
	case <-m.done:
		if err := i.rt.ForgetUE(ue); err != nil {
			obs.L().Warn("fed: forget after ack", "instance", i.id, "ue", ue, "err", err)
		}
		obsMigrations.With(i.id, "out").Inc()
		obsMigrationSeconds.Observe(time.Since(start).Seconds())
		obs.RecordSpan(trace, "fed.migrate", start, time.Now())
		return nil
	case <-time.After(i.opts.MigrationTimeout):
		i.clearInflight(ue)
		obsMigrations.With(i.id, "failed").Inc()
		return fmt.Errorf("fed: UE %d migration to %s: no ack within %v (UE stays local)",
			ue, dest, i.opts.MigrationTimeout)
	}
}

func (i *Instance) clearInflight(ue uint64) {
	i.mu.Lock()
	delete(i.inflight, ue)
	i.mu.Unlock()
}

// onMigrate restores a snapshot addressed to this instance and claims
// the UE's ownership lease before acknowledging, so the restored window
// state is in place before the first post-migration indication scores.
func (i *Instance) onMigrate(_ uint64, payload []byte, _ string) {
	var msg migrateMsg
	if err := asn1lite.Unmarshal(payload, &msg); err != nil || msg.Dest != i.id {
		return
	}
	restoreStart := time.Now()
	snap, err := mobiwatch.DecodeSnapshot(msg.Snapshot)
	if err != nil {
		obs.L().Warn("fed: bad snapshot", "instance", i.id, "ue", msg.UE, "err", err)
		obsMigrations.With(i.id, "failed").Inc()
		return
	}
	if err := i.rt.RestoreUE(snap); err != nil {
		obs.L().Warn("fed: restore failed", "instance", i.id, "ue", msg.UE, "err", err)
		obsMigrations.With(i.id, "failed").Inc()
		return
	}
	i.store.SetOwnedTTL(OwnerNamespace, ownerKey(i.id, msg.UE),
		[]byte(i.id), i.opts.OwnerTTL)
	obsMigrations.With(i.id, "in").Inc()
	if msg.Trace != "" {
		obs.RecordSpan(msg.Trace, "fed.restore", restoreStart, time.Now())
	}
	ack := migrateAck{Source: msg.Source, Dest: i.id, UE: msg.UE, Trace: msg.Trace}
	if err := i.bus.PublishTraced(TopicMigrateAck, asn1lite.Marshal(&ack), msg.Trace); err != nil {
		obs.L().Warn("fed: ack publish failed", "instance", i.id, "ue", msg.UE, "err", err)
	}
}

// onAck completes an outbound migration this instance is waiting on.
// An ack that arrives after the waiter timed out is still adopted when
// the applied ring assigns the UE elsewhere: the destination has
// restored the state and holds the lease, so keeping a second live copy
// here until the next ring change is strictly worse than dropping the
// few records scored locally since the timeout (they are already
// counted as scored; zero-loss accounting is unaffected). The ring
// guard keeps a replayed ack — the bus redelivers on reconnect — from
// forgetting a UE that has since migrated back.
func (i *Instance) onAck(_ uint64, payload []byte, _ string) {
	var ack migrateAck
	if err := asn1lite.Unmarshal(payload, &ack); err != nil || ack.Source != i.id {
		return
	}
	i.mu.Lock()
	m := i.inflight[ack.UE]
	delete(i.inflight, ack.UE)
	ownsStill := i.ring == nil || i.ring.Owner(ack.UE) == i.id
	i.mu.Unlock()
	if m != nil {
		close(m.done)
		return
	}
	if ownsStill {
		return
	}
	if err := i.rt.ForgetUE(ack.UE); err == nil {
		obsMigrations.With(i.id, "out").Inc()
		obs.L().Info("fed: late migration ack adopted",
			"instance", i.id, "ue", ack.UE, "dest", ack.Dest)
	}
}

func ownerKey(instance string, ue uint64) string {
	return fmt.Sprintf("owner/%s/%d", instance, ue)
}

// UEs lists the UE contexts this instance currently holds.
func (i *Instance) UEs() []uint64 { return i.rt.UEs() }

// Alerts exposes the runtime's alert stream.
func (i *Instance) Alerts() <-chan mobiwatch.Alert { return i.rt.Alerts() }

// Stop retires the instance: bus first (no new migrations in), then the
// scoring runtime, then the transports. The final record count stays
// readable through Records.
func (i *Instance) Stop() {
	i.mu.Lock()
	if i.stopped {
		i.mu.Unlock()
		return
	}
	i.stopped = true
	i.mu.Unlock()
	close(i.hbStop)
	i.hbWG.Wait()
	obs.UnregisterHealth("fed/" + i.id)
	if i.bus != nil {
		i.bus.Close()
	}
	i.rt.Stop()
	i.feeder.Close()
	i.platform.Close()
}

// heartbeatLoop publishes fleet liveness beacons until Stop. A beacon
// that fails to publish (bus degraded) is simply skipped — the missing
// heartbeats are exactly the signal the collector's failure detector
// consumes.
func (i *Instance) heartbeatLoop(period time.Duration) {
	defer i.hbWG.Done()
	t := time.NewTicker(period)
	defer t.Stop()
	var seq uint64
	for {
		select {
		case <-i.hbStop:
			return
		case <-t.C:
			seq++
			hb := fleet.Heartbeat{
				Instance:  i.id,
				Node:      i.feeder.NodeID(),
				Seq:       seq,
				UnixNanos: time.Now().UnixNano(),
				Epoch:     i.RingEpoch(),
				UEs:       len(i.rt.UEs()),
				Records:   i.Records(),
			}
			if payload, err := hb.Encode(); err == nil {
				i.bus.Publish(fleet.TopicHeartbeat, payload)
			}
		}
	}
}

// onScrape answers a fleet snapshot pull with this instance's metric
// snapshot and retained trace spans.
func (i *Instance) onScrape(_ uint64, payload []byte) {
	req, err := fleet.ParseScrapeRequest(payload)
	if err != nil {
		return
	}
	rep := fleet.Report{
		Instance:  i.id,
		Node:      i.feeder.NodeID(),
		Seq:       req.Seq,
		UnixNanos: time.Now().UnixNano(),
		Series:    i.ObsSnapshot(),
		Spans:     i.fleetSpans(),
	}
	data, err := rep.Encode()
	if err != nil {
		return
	}
	if err := i.bus.Publish(fleet.TopicReport, data); err != nil {
		obs.L().Warn("fed: scrape report publish failed", "instance", i.id, "err", err)
	}
}

// ObsSnapshot builds this instance's per-instance metric snapshot for
// the fleet plane. Colocated instances share the process-global Default
// registry, so the snapshot is assembled from instance-owned sources:
// the runtime's counters, ring state, the instance-labeled migration
// counters, and the private score-latency histogram.
func (i *Instance) ObsSnapshot() []obs.SeriesSnapshot {
	st := i.rt.Stats()
	node := i.feeder.NodeID()
	nodeLbl := func() map[string]string { return map[string]string{"node": node} }
	out := []obs.SeriesSnapshot{
		{Name: "xsec_mobiwatch_records_total", Kind: "counter", Labels: nodeLbl(),
			Value: float64(st.RecordsSeen.Load())},
		{Name: "xsec_mobiwatch_windows_scored_total", Kind: "counter", Labels: nodeLbl(),
			Value: float64(st.WindowsScored.Load())},
		{Name: "xsec_mobiwatch_alerts_total", Kind: "counter",
			Labels: map[string]string{"node": node, "outcome": "raised"},
			Value:  float64(st.AlertsRaised.Load())},
		{Name: "xsec_mobiwatch_alerts_total", Kind: "counter",
			Labels: map[string]string{"node": node, "outcome": "dropped"},
			Value:  float64(st.AlertsDropped.Load())},
		{Name: "xsec_fed_ues", Kind: "gauge", Value: float64(len(i.rt.UEs()))},
		{Name: "xsec_fed_ring_epoch", Kind: "gauge", Value: float64(i.RingEpoch())},
	}
	for _, dir := range []string{"out", "in", "failed"} {
		out = append(out, obs.SeriesSnapshot{
			Name: "xsec_fed_migrations_total", Kind: "counter",
			Labels: map[string]string{"direction": dir},
			Value:  float64(obsMigrations.With(i.id, dir).Value()),
		})
	}
	out = append(out, i.scoreReg.Snapshot()...)
	return out
}

// fleetSpans returns this instance's retained pipeline spans: the
// process tracer filtered to keys minted by this instance's node (all
// chain keys are "node/sn", and restore spans adopt the source chain's
// key, so span attribution follows the trace context, not the
// process).
func (i *Instance) fleetSpans() []obs.Span {
	prefix := i.feeder.NodeID() + "/"
	var out []obs.Span
	for _, sp := range obs.DefaultTracer.Spans() {
		if len(sp.Key) > len(prefix) && sp.Key[:len(prefix)] == prefix {
			out = append(out, sp)
		}
	}
	return out
}
