package fed

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"

	"github.com/6g-xsec/xsec/internal/sdl"
)

// SDL layout. The ring is published under RingNamespace/RingKey by the
// coordinator; per-UE ownership leases live under OwnerNamespace with
// keys "owner/<instance>/<ue>", so an instance watches its own prefix
// and TTL expiry silently retires the previous owner's lease (see
// internal/sdl's ownership-transfer semantics).
const (
	RingNamespace  = "fed/ring"
	RingKey        = "current"
	OwnerNamespace = "fed/ue"

	// DefaultVnodes is the virtual-node count per instance. 64 tokens
	// per instance keeps the owned fractions within a few percent of
	// even for small federations.
	DefaultVnodes = 64
)

// Ring is one epoch of the consistent-hash ownership map: every UE ID
// hashes to a point on a 64-bit circle, and the instance owning the
// first virtual-node token at or after that point owns the UE. Epochs
// are totally ordered; instances ignore any ring older than the one
// they already applied.
type Ring struct {
	Epoch     int      `json:"epoch"`
	Vnodes    int      `json:"vnodes"`
	Instances []string `json:"instances"`

	tokens []ringToken
}

type ringToken struct {
	point    uint64
	instance string
}

// NewRing builds a ring over instances (order-insensitive; the token
// positions depend only on instance IDs and vnodes).
func NewRing(epoch int, instances []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{Epoch: epoch, Vnodes: vnodes, Instances: append([]string(nil), instances...)}
	sort.Strings(r.Instances)
	r.build()
	return r
}

func (r *Ring) build() {
	r.tokens = r.tokens[:0]
	for _, inst := range r.Instances {
		for v := 0; v < r.Vnodes; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", inst, v)
			// Finalize through the avalanche mixer: FNV sums of strings
			// differing only in the vnode suffix are themselves adjacent,
			// which would cluster an instance's tokens on one arc.
			r.tokens = append(r.tokens, ringToken{point: mix64(h.Sum64()), instance: inst})
		}
	}
	sort.Slice(r.tokens, func(i, j int) bool {
		if r.tokens[i].point != r.tokens[j].point {
			return r.tokens[i].point < r.tokens[j].point
		}
		return r.tokens[i].instance < r.tokens[j].instance
	})
}

// mix64 is the splitmix64 finalizer: full avalanche, so adjacent inputs
// land on unrelated circle points.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashUE places a UE ID on the circle. Testbed UE IDs are small
// sequential integers, so they need the mixer's avalanche to spread
// across the token space.
func hashUE(ue uint64) uint64 {
	return mix64(ue + 0x9e3779b97f4a7c15)
}

// Owner returns the instance owning ue, or "" for an empty ring.
func (r *Ring) Owner(ue uint64) string {
	if len(r.tokens) == 0 {
		return ""
	}
	p := hashUE(ue)
	i := sort.Search(len(r.tokens), func(i int) bool { return r.tokens[i].point >= p })
	if i == len(r.tokens) {
		i = 0 // wrap past the highest token to the lowest
	}
	return r.tokens[i].instance
}

// Contains reports whether instance participates in this epoch.
func (r *Ring) Contains(instance string) bool {
	for _, id := range r.Instances {
		if id == instance {
			return true
		}
	}
	return false
}

// OwnedFraction returns the share of the hash circle owned by instance,
// the xsec_fed_owned_fraction gauge. Each token owns the arc from its
// predecessor (exclusive) to itself (inclusive).
func (r *Ring) OwnedFraction(instance string) float64 {
	if len(r.tokens) == 0 {
		return 0
	}
	var owned uint64
	prev := r.tokens[len(r.tokens)-1].point
	for _, t := range r.tokens {
		arc := t.point - prev // wraps correctly in uint64 arithmetic
		if t.instance == instance {
			owned += arc
		}
		prev = t.point
	}
	const circle = float64(1 << 63)
	return float64(owned) / (2 * circle)
}

// WithJoined returns the next epoch with instance added (a no-op clone
// with a bumped epoch if it is already a member).
func (r *Ring) WithJoined(instance string) *Ring {
	ids := append([]string(nil), r.Instances...)
	if !r.Contains(instance) {
		ids = append(ids, instance)
	}
	return NewRing(r.Epoch+1, ids, r.Vnodes)
}

// WithLeft returns the next epoch with instance removed.
func (r *Ring) WithLeft(instance string) *Ring {
	ids := make([]string, 0, len(r.Instances))
	for _, id := range r.Instances {
		if id != instance {
			ids = append(ids, id)
		}
	}
	return NewRing(r.Epoch+1, ids, r.Vnodes)
}

// Encode renders the ring for the SDL and the bus.
func (r *Ring) Encode() ([]byte, error) {
	data, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("fed: encoding ring: %w", err)
	}
	return data, nil
}

// ParseRing decodes a published ring and rebuilds its token table.
func ParseRing(data []byte) (*Ring, error) {
	var r Ring
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("fed: decoding ring: %w", err)
	}
	if r.Vnodes <= 0 {
		r.Vnodes = DefaultVnodes
	}
	sort.Strings(r.Instances)
	r.build()
	return &r, nil
}

// PublishRing stores the ring as the current epoch in an SDL store.
func PublishRing(store *sdl.Store, r *Ring) error {
	data, err := r.Encode()
	if err != nil {
		return err
	}
	store.Set(RingNamespace, RingKey, data)
	return nil
}

// LoadRing reads the current ring from an SDL store.
func LoadRing(store *sdl.Store) (*Ring, bool) {
	raw, _, ok := store.Get(RingNamespace, RingKey)
	if !ok {
		return nil, false
	}
	r, err := ParseRing(raw)
	if err != nil {
		return nil, false
	}
	return r, true
}
