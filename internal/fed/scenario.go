package fed

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/6g-xsec/xsec/internal/dataset"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/prov"
	"github.com/6g-xsec/xsec/internal/sdl"
	"github.com/6g-xsec/xsec/internal/ue"
)

// ScenarioOptions configures the mid-attack migration scenario.
type ScenarioOptions struct {
	// Instances is the federation size (default 2; the attack source is
	// "ric-0", the handover destination "ric-1").
	Instances int
	// Seed drives dataset generation and training (default 1).
	Seed int64
	// Models and Mixed, when set, skip the scenario's own dataset
	// generation and training (tests and benches reuse a cached
	// environment; the CLIs let the scenario build its own).
	Models *mobiwatch.Models
	Mixed  *dataset.Labeled
	// AlertTimeout bounds the wait for the post-migration detection
	// (default 10s).
	AlertTimeout time.Duration
}

// ScenarioResult reports what the migration scenario observed.
type ScenarioResult struct {
	// AttackUEs are the BTS-DoS flood's UE contexts; all of them are
	// migrated mid-attack from Source to Dest.
	AttackUEs []uint64 `json:"attack_ues"`
	Source    string   `json:"source"`
	Dest      string   `json:"dest"`
	// PreRecords/PostRecords split the attack stream at the handover.
	PreRecords  int `json:"pre_records"`
	PostRecords int `json:"post_records"`
	// BoundarySeq is the highest record sequence fed before migration.
	BoundarySeq uint64 `json:"boundary_seq"`
	// AlertsOnDest counts attack alerts raised by the destination after
	// the handover; detection continuity requires at least one.
	AlertsOnDest int `json:"alerts_on_dest"`
	// AlertSpansBoundary is the direct continuity witness: some alert
	// window on the destination contains pre-migration records, which is
	// only possible if the restored state was used.
	AlertSpansBoundary bool `json:"alert_spans_boundary"`
	// Audits holds one provenance verdict per migrated UE.
	Audits []prov.MigrationAudit `json:"audits"`
	// AuditsOK is true when every migrated UE's chains are joined with
	// no scoring gap.
	AuditsOK bool `json:"audits_ok"`
	// Reachbacks counts audits whose first post-migration window also
	// directly contains the UE's restored records (sequence-level
	// witness; best-effort for interleaved floods, see prov.MigrationAudit).
	Reachbacks int `json:"reachbacks"`
	// TotalRecords is the cluster-wide scored-record count at the end;
	// zero-loss means it equals PreRecords+PostRecords.
	TotalRecords uint64 `json:"total_records"`
	// Store keeps the cluster's provenance store readable after the
	// cluster is torn down, so callers (xsec-audit) can render the
	// joined chains the Audits refer to.
	Store *sdl.Store `json:"-"`
}

// buildScenarioEnv trains models and generates the attack dataset with
// the quick settings the repo's unit tests use.
func buildScenarioEnv(seed int64) (*mobiwatch.Models, *dataset.Labeled, error) {
	benign, err := dataset.GenerateBenign(dataset.BenignConfig{
		Sessions: 40, Fleet: 10, Seed: seed,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("fed: benign dataset: %w", err)
	}
	models, err := mobiwatch.Train(benign, mobiwatch.TrainOptions{
		Window: 4, Percentile: 99, Epochs: 12, Seed: seed + 2,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("fed: training: %w", err)
	}
	mixed, err := dataset.GenerateMixed(dataset.MixedConfig{
		BenignConfig:       dataset.BenignConfig{Fleet: 10, Seed: seed + 1},
		InstancesPerAttack: 1,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("fed: attack dataset: %w", err)
	}
	return models, mixed, nil
}

// RunMigrationScenario replays a BTS-DoS flood against a federated
// cluster and hands the attacking UEs over from ric-0 to ric-1 in the
// middle of it: the first half of the attack stream arrives at the
// source, every flood UE's window state is checkpointed and migrated,
// and the second half arrives at the destination. It reports whether
// the destination still detected the attack (using the restored
// pre-migration history) and whether the provenance ledger shows every
// migrated UE's evidence chains joined without a scoring gap.
func RunMigrationScenario(opts ScenarioOptions) (*ScenarioResult, error) {
	if opts.Instances < 2 {
		opts.Instances = 2
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.AlertTimeout == 0 {
		opts.AlertTimeout = 10 * time.Second
	}
	models, mixed := opts.Models, opts.Mixed
	if models == nil || mixed == nil {
		var err error
		models, mixed, err = buildScenarioEnv(opts.Seed)
		if err != nil {
			return nil, err
		}
	}

	// The BTS-DoS flood: every record of the attack's UE contexts, in
	// stream order.
	var attackUEs []uint64
	for _, ev := range mixed.Events {
		if ev.Kind == ue.AttackBTSDoS {
			attackUEs = append(attackUEs, ev.UEIDs...)
			break
		}
	}
	if len(attackUEs) == 0 {
		return nil, fmt.Errorf("fed: dataset contains no BTS-DoS event")
	}
	isAttack := make(map[uint64]bool, len(attackUEs))
	for _, u := range attackUEs {
		isAttack[u] = true
	}
	var flood mobiflow.Trace
	for _, rec := range mixed.Trace {
		if isAttack[rec.UEID] {
			flood = append(flood, rec)
		}
	}
	if len(flood) < 8 {
		return nil, fmt.Errorf("fed: flood too short (%d records)", len(flood))
	}
	boundary := len(flood) / 2

	cl, err := StartCluster(ClusterOptions{
		Instances:     opts.Instances,
		Models:        models,
		InstallLedger: true,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	src, dest := cl.Instance("ric-0"), cl.Instance("ric-1")
	res := &ScenarioResult{
		AttackUEs:   attackUEs,
		Source:      src.ID(),
		Dest:        dest.ID(),
		PreRecords:  boundary,
		PostRecords: len(flood) - boundary,
		BoundarySeq: flood[:boundary].LastSeq(),
	}

	// Drain destination alerts continuously; the channel is bounded.
	var alertMu sync.Mutex
	var destAlerts []mobiwatch.Alert
	go func() {
		for a := range dest.Alerts() {
			alertMu.Lock()
			destAlerts = append(destAlerts, a)
			alertMu.Unlock()
		}
	}()
	go func() {
		for range src.Alerts() {
		}
	}()
	snapshotAlerts := func() []mobiwatch.Alert {
		alertMu.Lock()
		defer alertMu.Unlock()
		return append([]mobiwatch.Alert(nil), destAlerts...)
	}

	// First half of the flood hits the source's cells.
	for _, rec := range flood[:boundary] {
		if err := src.Feeder().Emit(rec.UEID, mobiflow.Trace{rec}); err != nil {
			return nil, err
		}
	}
	if err := cl.WaitRecords(uint64(boundary), 10*time.Second); err != nil {
		return nil, err
	}

	// Handover mid-attack: every flood UE the source holds moves to the
	// destination, state and all.
	migrated := map[uint64]bool{}
	for _, u := range attackUEs {
		if migrated[u] {
			continue
		}
		migrated[u] = true
		if err := cl.MigrateUE(u, src.ID(), dest.ID()); err != nil {
			return nil, fmt.Errorf("fed: migrating UE %d: %w", u, err)
		}
	}

	// Second half of the flood arrives at the destination.
	for _, rec := range flood[boundary:] {
		if err := dest.Feeder().Emit(rec.UEID, mobiflow.Trace{rec}); err != nil {
			return nil, err
		}
	}
	if err := cl.WaitRecords(uint64(len(flood)), 10*time.Second); err != nil {
		return nil, err
	}

	// Wait for the destination to flag the flood and for the deferred
	// window flushes to land in the ledger: the batched scoring path
	// records window provenance at the next tensor flush (BatchAge), so
	// the ledger can trail the record counters by a few milliseconds.
	deadline := time.Now().Add(opts.AlertTimeout)
	for {
		res.AlertsOnDest, res.AlertSpansBoundary =
			summarizeAlerts(snapshotAlerts(), isAttack, res.BoundarySeq)
		res.Audits = cl.AuditMigrations()
		res.AuditsOK = len(res.Audits) > 0
		for _, a := range res.Audits {
			if !a.OK() {
				res.AuditsOK = false
			}
		}
		if (res.AlertsOnDest > 0 && res.AuditsOK) || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	res.TotalRecords = cl.TotalRecords()
	res.Store = cl.Store
	for _, a := range res.Audits {
		if a.Reachback {
			res.Reachbacks++
		}
	}
	sort.Slice(res.Audits, func(i, j int) bool { return res.Audits[i].UEID < res.Audits[j].UEID })
	return res, nil
}

func summarizeAlerts(alerts []mobiwatch.Alert, isAttack map[uint64]bool, boundarySeq uint64) (int, bool) {
	count, spans := 0, false
	for _, a := range alerts {
		hit := false
		for _, rec := range a.Window {
			if isAttack[rec.UEID] {
				hit = true
			}
		}
		if !hit {
			continue
		}
		count++
		if a.Window.FirstSeq() <= boundarySeq {
			spans = true
		}
	}
	return count, spans
}
