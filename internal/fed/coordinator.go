package fed

import (
	"fmt"
	"sync"

	"github.com/6g-xsec/xsec/internal/sdl"
	"github.com/6g-xsec/xsec/internal/smo"
)

// Coordinator is the SMO side of the federation: it owns the ring —
// minting a new epoch on every membership change — and fans out A1
// policies to all instances at once over the bus, alongside the
// SDL-backed A1 store the non-federated path already uses.
type Coordinator struct {
	store  *sdl.Store
	broker *Broker
	a1     *smo.A1
	vnodes int

	mu   sync.Mutex
	ring *Ring
}

// NewCoordinator wraps the SMO's store and the federation broker.
func NewCoordinator(store *sdl.Store, broker *Broker, vnodes int) *Coordinator {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Coordinator{store: store, broker: broker, a1: smo.NewA1(store), vnodes: vnodes}
}

// A1 returns the coordinator's policy store.
func (c *Coordinator) A1() *smo.A1 { return c.a1 }

// Ring returns the current epoch (nil before SetInstances).
func (c *Coordinator) Ring() *Ring {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring
}

// SetInstances publishes a fresh ring over the given membership.
func (c *Coordinator) SetInstances(ids []string) (*Ring, error) {
	c.mu.Lock()
	epoch := 1
	if c.ring != nil {
		epoch = c.ring.Epoch + 1
	}
	r := NewRing(epoch, ids, c.vnodes)
	c.ring = r
	c.mu.Unlock()
	return r, c.publish(r)
}

// Join admits an instance and publishes the next epoch.
func (c *Coordinator) Join(id string) (*Ring, error) {
	c.mu.Lock()
	if c.ring == nil {
		c.mu.Unlock()
		return c.SetInstances([]string{id})
	}
	r := c.ring.WithJoined(id)
	c.ring = r
	c.mu.Unlock()
	return r, c.publish(r)
}

// Leave retires an instance and publishes the next epoch. Surviving
// instances take over its hash range; the leaver (if still running)
// sees a ring it is absent from and migrates everything out.
func (c *Coordinator) Leave(id string) (*Ring, error) {
	c.mu.Lock()
	if c.ring == nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("fed: no ring to leave")
	}
	r := c.ring.WithLeft(id)
	c.ring = r
	c.mu.Unlock()
	return r, c.publish(r)
}

func (c *Coordinator) publish(r *Ring) error {
	data, err := r.Encode()
	if err != nil {
		return err
	}
	c.store.Set(RingNamespace, RingKey, data)
	return c.broker.Publish(TopicRing, data)
}

// PushPolicy stores an A1 policy and fans it out to every federated
// instance on the bus.
func (c *Coordinator) PushPolicy(p smo.Policy) error {
	if err := c.a1.Put(p); err != nil {
		return err
	}
	stamped, ok := c.a1.Get(p.ID)
	if !ok {
		return fmt.Errorf("fed: policy %q vanished after put", p.ID)
	}
	data, err := stamped.Encode()
	if err != nil {
		return err
	}
	return c.broker.Publish(TopicPolicy, data)
}
