package fed

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/asn1lite"
	"github.com/6g-xsec/xsec/internal/obs"
)

func waitConnected(t *testing.T, c *Client) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !c.Connected() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !c.Connected() {
		t.Fatal("client never connected to broker")
	}
}

func TestBusFrameTraceRoundTrip(t *testing.T) {
	in := frame{
		Op: opDeliver, Topic: "migrate", Offset: 42,
		Payload: []byte("snapshot"),
		Trace:   "gnb-ric-0/17",
		Pub:     uint64(time.Now().UnixNano()),
	}
	var out frame
	if err := asn1lite.Unmarshal(asn1lite.Marshal(&in), &out); err != nil {
		t.Fatal(err)
	}
	if out.Trace != in.Trace || out.Pub != in.Pub || out.Offset != 42 ||
		out.Topic != "migrate" || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}

	// Untraced frames omit the context tags entirely and decode with
	// zero values — the pre-trace wire format is unchanged.
	plain := frame{Op: opPublish, Topic: "policy", Payload: []byte("p")}
	raw := asn1lite.Marshal(&plain)
	traced := asn1lite.Marshal(&in)
	if len(raw) >= len(traced) {
		t.Fatalf("untraced frame (%dB) not smaller than traced (%dB)", len(raw), len(traced))
	}
	var back frame
	if err := asn1lite.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Trace != "" || back.Pub != 0 {
		t.Fatalf("untraced frame decoded trace context: %+v", back)
	}
}

func TestBusTracePropagatesEndToEnd(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	pub := DialBus("ric-pub", b.Addr())
	defer pub.Close()
	sub := DialBus("ric-sub", b.Addr())
	defer sub.Close()

	var mu sync.Mutex
	var traces []string
	subDone := make(chan struct{})
	sub.SubscribeTraced("tr-topic", func(_ uint64, payload []byte, trace string) {
		mu.Lock()
		traces = append(traces, trace)
		mu.Unlock()
		if len(traces) == 2 {
			close(subDone)
		}
	})

	waitConnected(t, pub)
	const key = "gnb-trace-test/1"
	if err := pub.PublishTraced("tr-topic", []byte("hello"), key); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("tr-topic", []byte("plain")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-subDone:
	case <-time.After(5 * time.Second):
		t.Fatalf("deliveries never arrived; have %v", traces)
	}
	mu.Lock()
	got := append([]string(nil), traces...)
	mu.Unlock()
	if got[0] != key || got[1] != "" {
		t.Fatalf("delivered traces = %v", got)
	}

	// The traced delivery recorded the bus hop as a span on the
	// message's distributed trace.
	deadline := time.Now().Add(5 * time.Second)
	for {
		spans := obs.DefaultTracer.ByKey(key)
		if len(spans) > 0 {
			if spans[0].Stage != "fed.bus.tr-topic" {
				t.Fatalf("bus hop stage = %q", spans[0].Stage)
			}
			if spans[0].End.Before(spans[0].Start) {
				t.Fatalf("bus hop span runs backwards: %+v", spans[0])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("bus hop span never recorded")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Reconnect replay retains the context: a late subscriber sees the
	// same trace on the retained message.
	late := DialBus("ric-late", b.Addr())
	defer late.Close()
	replayed := make(chan string, 4)
	late.SubscribeTraced("tr-topic", func(_ uint64, _ []byte, trace string) { replayed <- trace })
	select {
	case tr := <-replayed:
		if tr != key {
			t.Fatalf("replayed trace = %q, want %q", tr, key)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retained message never replayed")
	}
}

func TestBrokerSubscribeLocal(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	type delivery struct {
		offset uint64
		trace  string
		body   string
	}
	got := make(chan delivery, 4)
	b.SubscribeLocal("hb", func(offset uint64, payload []byte, trace string) {
		got <- delivery{offset, trace, string(payload)}
	})

	// Local handlers see broker-side publishes without a loopback
	// connection and without replay of prior history.
	if err := b.PublishTraced("hb", []byte("beacon"), "gnb-x/9"); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-got:
		if d.body != "beacon" || d.trace != "gnb-x/9" {
			t.Fatalf("local delivery = %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("local handler never invoked")
	}

	// Client publishes reach local handlers too.
	c := DialBus("ric-0", b.Addr())
	defer c.Close()
	waitConnected(t, c)
	if err := c.Publish("hb", []byte("client-beacon")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-got:
		if d.body != "client-beacon" {
			t.Fatalf("client publish delivery = %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client publish never reached local handler")
	}
}
