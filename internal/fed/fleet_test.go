package fed

import (
	"strings"
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/obs/fleet"
)

// TestFleetDrill is the fleet observability acceptance test: one drill
// must produce a stitched cross-instance trace for the migrated UE,
// timed scrape rounds with a merged exposition, and an automatic ring
// eviction after an unannounced crash.
func TestFleetDrill(t *testing.T) {
	models, mixed := testEnv(t)
	res, err := RunFleetDrill(FleetDrillOptions{
		Instances: 3, Seed: 1, Models: models, Mixed: mixed,
		ScrapeRounds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Trace stitching: the migrated UE's spans from source and
	// destination assemble into one distributed trace.
	if res.StitchedTraces == 0 {
		t.Fatal("no stitched traces")
	}
	if res.TraceSegments < 2 || res.TraceInstances < 2 {
		t.Fatalf("migrated UE %d trace: %d segments across %d instances, want >=2 each",
			res.MigratedUE, res.TraceSegments, res.TraceInstances)
	}
	if !res.TraceComplete {
		t.Fatal("migrated UE's trace has an unjoined hop")
	}
	if res.TraceSpans == 0 {
		t.Fatal("stitched trace carries no spans")
	}

	// Scrapes completed and merged per-instance series under the
	// instance label plus fleet rollups.
	if res.ScrapeRounds != 2 {
		t.Fatalf("scrape rounds = %d", res.ScrapeRounds)
	}
	if res.MergedSeries == 0 {
		t.Fatal("merged exposition is empty")
	}

	// Failure detection: the crashed instance was evicted by the
	// detector (no Leave call) within its deadline budget.
	if !res.EvictedFromRing {
		t.Fatalf("victim %s still in the ring", res.Victim)
	}
	if res.KillToEvictSecs <= 0 || res.KillToEvictSecs > 5 {
		t.Fatalf("kill-to-evict = %vs", res.KillToEvictSecs)
	}
	if res.JournalTransitions < 2 {
		t.Fatalf("journal transitions = %d, want suspect+dead", res.JournalTransitions)
	}

	// The journal names the victim's suspect -> dead path.
	journal := fleet.ReadJournal(res.Store)
	var sawSuspect, sawDead bool
	for _, tr := range journal {
		if tr.Instance != res.Victim {
			continue
		}
		switch tr.To {
		case fleet.StateSuspect:
			sawSuspect = true
		case fleet.StateDead:
			sawDead = true
		}
	}
	if !sawSuspect || !sawDead {
		t.Fatalf("victim transitions missing (suspect=%v dead=%v): %+v", sawSuspect, sawDead, journal)
	}
}

// TestClusterFleetMergedExposition checks the merged series surface of
// a live cluster: per-instance families under the instance label and
// xsec_fleet_* rollups over them.
func TestClusterFleetMergedExposition(t *testing.T) {
	models, mixed := testEnv(t)
	cl, err := StartCluster(ClusterOptions{
		Instances: 2, Models: models,
		HeartbeatPeriod: 20 * time.Millisecond,
		Fleet: &fleet.CollectorOptions{
			SuspectAfter: time.Second, DeadAfter: 2 * time.Second,
			ScrapePeriod: time.Hour, // scrapes driven manually
			SweepPeriod:  10 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	col := cl.Fleet()
	for _, inst := range cl.Instances() {
		drain := inst.Alerts()
		go func() {
			for range drain {
			}
		}()
	}

	if err := waitFor(5*time.Second, func() bool { return col.Alive() >= 2 }); err != nil {
		t.Fatalf("collector never saw both instances: %v", err)
	}

	// Feed a few records so counters move.
	inst := cl.Instances()[0]
	for _, rec := range mixed.Trace[:4] {
		if err := inst.Feeder().Emit(rec.UEID, mobiflow.Trace{rec}); err != nil {
			t.Fatal(err)
		}
	}

	done := col.ScrapeOnce()
	if done == nil {
		t.Fatal("scrape refused")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("scrape never completed")
	}

	series := col.MergedSeries()
	var perInstance, rollups int
	for _, s := range series {
		if strings.HasPrefix(s.Name, "xsec_fleet_") {
			rollups++
			continue
		}
		if s.Labels["instance"] != "" {
			perInstance++
		}
	}
	if perInstance == 0 || rollups == 0 {
		t.Fatalf("merged exposition: %d instance-labeled, %d rollups", perInstance, rollups)
	}

	// Every per-instance series must attribute to a real instance.
	valid := map[string]bool{"ric-0": true, "ric-1": true}
	for _, s := range series {
		if inst := s.Labels["instance"]; inst != "" && !valid[inst] {
			t.Fatalf("series %s attributed to unknown instance %q", s.Name, inst)
		}
	}

	// The text exposition renders without error and carries both forms.
	var b strings.Builder
	obs.WriteSeries(&b, series)
	out := b.String()
	if !strings.Contains(out, `instance="ric-0"`) || !strings.Contains(out, "xsec_fleet_records_total") {
		t.Fatalf("text exposition missing expected content:\n%s", out)
	}
}
