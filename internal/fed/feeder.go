package fed

import (
	"fmt"
	"sync"
	"time"

	"github.com/6g-xsec/xsec/internal/asn1lite"
	"github.com/6g-xsec/xsec/internal/e2ap"
	"github.com/6g-xsec/xsec/internal/e2sm"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/prov"
)

// Feeder is a synthetic E2 node: it speaks the gNB-side E2 Setup and
// subscription handshake over an endpoint, then emits caller-supplied
// MobiFlow records as UE-scoped RIC Indications. Unlike the full gnb
// stack — whose attack drivers mint a fresh CU UE context per connection
// — the feeder gives federation tests and benches exact control of UE
// identity, so the same UEID keeps transmitting after its state has
// migrated to another instance.
type Feeder struct {
	nodeID string
	ep     *e2ap.Endpoint

	mu       sync.Mutex
	reqID    e2ap.RequestID
	actionID uint16
	admitted bool
	sn       uint64
	hdrEnc   asn1lite.Encoder
	msgEnc   asn1lite.Encoder
	closed   bool

	ready chan struct{}
	done  chan struct{}
}

// NewFeeder starts the E2 handshake on ep and returns immediately; use
// WaitReady to block until an xApp subscription has been admitted.
func NewFeeder(nodeID string, ep *e2ap.Endpoint) *Feeder {
	f := &Feeder{
		nodeID: nodeID,
		ep:     ep,
		ready:  make(chan struct{}),
		done:   make(chan struct{}),
	}
	ep.SetNodeID(nodeID)
	go f.run()
	return f
}

// NodeID returns the E2 node identity this feeder registered with.
func (f *Feeder) NodeID() string { return f.nodeID }

func (f *Feeder) run() {
	defer close(f.done)
	setup := &e2ap.Message{
		Type:   e2ap.TypeE2SetupRequest,
		NodeID: f.nodeID,
		RANFunctions: []e2ap.RANFunction{
			{
				ID:         e2sm.MobiFlowRANFunctionID,
				OID:        e2sm.MobiFlowOID,
				Definition: asn1lite.Marshal(e2sm.MobiFlowFunctionDefinition()),
			},
			{
				ID:         e2sm.XRCRANFunctionID,
				OID:        e2sm.XRCOID,
				Definition: asn1lite.Marshal(e2sm.XRCFunctionDefinition()),
			},
		},
	}
	if err := f.ep.Send(setup); err != nil {
		return
	}
	first, err := f.ep.Recv()
	if err != nil || first.Type != e2ap.TypeE2SetupResponse {
		return
	}
	for {
		msg, err := f.ep.Recv()
		if err != nil {
			return
		}
		switch msg.Type {
		case e2ap.TypeSubscriptionRequest:
			f.handleSubscribe(msg)
		case e2ap.TypeSubscriptionDeleteRequest:
			f.ep.Send(&e2ap.Message{
				Type: e2ap.TypeSubscriptionDeleteResponse, RequestID: msg.RequestID,
				RANFunctionID: msg.RANFunctionID,
			})
		case e2ap.TypeControlRequest:
			// The feeder carries telemetry only; acknowledge control so a
			// mitigation engine wired to the same node does not time out.
			f.ep.Send(&e2ap.Message{
				Type: e2ap.TypeControlAck, RequestID: msg.RequestID,
				RANFunctionID: msg.RANFunctionID,
			})
		}
	}
}

func (f *Feeder) handleSubscribe(msg *e2ap.Message) {
	if msg.RANFunctionID != e2sm.MobiFlowRANFunctionID {
		f.ep.Send(&e2ap.Message{
			Type: e2ap.TypeSubscriptionFailure, RequestID: msg.RequestID,
			RANFunctionID: msg.RANFunctionID, Cause: "unsupported RAN function",
		})
		return
	}
	var admitted []uint16
	for _, act := range msg.Actions {
		if act.Type == e2ap.ActionReport {
			admitted = append(admitted, act.ID)
		}
	}
	if len(admitted) == 0 {
		f.ep.Send(&e2ap.Message{
			Type: e2ap.TypeSubscriptionFailure, RequestID: msg.RequestID,
			RANFunctionID: msg.RANFunctionID, Cause: "no report action",
		})
		return
	}
	f.ep.Send(&e2ap.Message{
		Type: e2ap.TypeSubscriptionResponse, RequestID: msg.RequestID,
		RANFunctionID: msg.RANFunctionID, AdmittedActions: admitted,
	})
	f.mu.Lock()
	f.reqID, f.actionID = msg.RequestID, admitted[0]
	if !f.admitted {
		f.admitted = true
		close(f.ready)
	}
	f.mu.Unlock()
}

// WaitReady blocks until an xApp subscription has been admitted, so
// emitted indications have a route.
func (f *Feeder) WaitReady(timeout time.Duration) error {
	select {
	case <-f.ready:
		return nil
	case <-f.done:
		return fmt.Errorf("fed: feeder %s: handshake ended before subscription", f.nodeID)
	case <-time.After(timeout):
		return fmt.Errorf("fed: feeder %s: no subscription within %v", f.nodeID, timeout)
	}
}

// Emit ships one UE-scoped indication carrying records and roots its
// provenance chain, exactly like the gNB agent's reporter.
func (f *Feeder) Emit(ue uint64, records mobiflow.Trace) error {
	if len(records) == 0 {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fmt.Errorf("fed: feeder %s closed", f.nodeID)
	}
	if !f.admitted {
		return fmt.Errorf("fed: feeder %s has no admitted subscription", f.nodeID)
	}
	f.sn++
	hdr := e2sm.IndicationHeader{
		NodeID:          f.nodeID,
		CollectionStart: records[0].Timestamp,
		BatchSeq:        f.sn,
		UEID:            ue,
	}
	f.hdrEnc.Reset()
	hdr.MarshalTLV(&f.hdrEnc)
	f.msgEnc.Reset()
	mobiflow.AppendTrace(&f.msgEnc, records)
	ind := e2ap.Message{
		Type:              e2ap.TypeIndication,
		RequestID:         f.reqID,
		RANFunctionID:     e2sm.MobiFlowRANFunctionID,
		ActionID:          f.actionID,
		IndicationSN:      f.sn,
		IndicationHeader:  f.hdrEnc.Bytes(),
		IndicationMessage: f.msgEnc.Bytes(),
	}
	if err := f.ep.Send(&ind); err != nil {
		return fmt.Errorf("fed: feeder %s emit: %w", f.nodeID, err)
	}
	prov.Record(prov.Event{
		Chain:    prov.ChainID{Node: f.nodeID, SN: f.sn},
		Kind:     prov.KindEmit,
		At:       records[0].Timestamp,
		SeqFirst: records.FirstSeq(),
		SeqLast:  records.LastSeq(),
		Records:  uint32(len(records)),
		Digest:   prov.DigestRecords(records),
	})
	return nil
}

// Close tears the feeder's transport down.
func (f *Feeder) Close() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	f.ep.Close()
	<-f.done
}
