package fed

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/dataset"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/smo"
	"github.com/6g-xsec/xsec/internal/wire"
)

// The trained models and attack dataset are the expensive fixtures;
// build them once for the whole package.
var (
	envOnce   sync.Once
	envModels *mobiwatch.Models
	envMixed  *dataset.Labeled
	envErr    error
)

func testEnv(t *testing.T) (*mobiwatch.Models, *dataset.Labeled) {
	t.Helper()
	envOnce.Do(func() {
		envModels, envMixed, envErr = buildScenarioEnv(1)
	})
	if envErr != nil {
		t.Fatalf("building test env: %v", envErr)
	}
	return envModels, envMixed
}

// TestMigrationScenarioContinuity is the federation acceptance test: a
// BTS-DoS flood is handed over from ric-0 to ric-1 mid-attack, and the
// destination must still detect it — with alert windows reaching back
// into pre-migration history — while the provenance ledger shows every
// migrated UE's chains joined with no scoring gap.
func TestMigrationScenarioContinuity(t *testing.T) {
	models, mixed := testEnv(t)
	res, err := RunMigrationScenario(ScenarioOptions{
		Instances: 2, Seed: 1, Models: models, Mixed: mixed,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("scenario: %d UEs, %d+%d records, %d dest alerts (spansBoundary=%v), %d audits",
		len(res.AttackUEs), res.PreRecords, res.PostRecords,
		res.AlertsOnDest, res.AlertSpansBoundary, len(res.Audits))

	if res.AlertsOnDest == 0 {
		t.Fatal("destination raised no alert for the migrated attack")
	}
	if !res.AlertSpansBoundary {
		t.Error("no destination alert window reaches into pre-migration history")
	}
	if want := uint64(res.PreRecords + res.PostRecords); res.TotalRecords != want {
		t.Errorf("records scored = %d, want %d (zero loss)", res.TotalRecords, want)
	}
	if len(res.Audits) == 0 {
		t.Fatal("ledger holds no migration audits")
	}
	if len(res.Audits) != len(res.AttackUEs) {
		t.Errorf("audits for %d UEs, migrated %d", len(res.Audits), len(res.AttackUEs))
	}
	for _, a := range res.Audits {
		if !a.OK() {
			t.Errorf("UE %d: migration audit failed: %s (joined=%v continuous=%v)",
				a.UEID, a.Err, a.Joined, a.Continuous)
		}
	}
	if !res.AuditsOK {
		t.Error("scenario reports AuditsOK=false")
	}
}

// TestClusterJoinRebalance checks ring-driven migration: when a new
// instance joins, existing members migrate exactly the UEs the new
// ring assigns to the joiner, with no scored records lost.
func TestClusterJoinRebalance(t *testing.T) {
	models, mixed := testEnv(t)
	cl, err := StartCluster(ClusterOptions{Instances: 2, Models: models, InstallLedger: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, inst := range cl.Instances() {
		go func(inst *Instance) {
			for range inst.Alerts() {
			}
		}(inst)
	}

	// Feed a handful of UEs to their ring owners.
	byUE := map[uint64]mobiflow.Trace{}
	for _, rec := range mixed.Trace {
		byUE[rec.UEID] = append(byUE[rec.UEID], rec)
	}
	var fed uint64
	var ues []uint64
	for u, tr := range byUE {
		if len(tr) < 4 || len(ues) >= 12 {
			continue
		}
		ues = append(ues, u)
		owner := cl.OwnerOf(u)
		if owner == nil {
			t.Fatalf("no owner for UE %d", u)
		}
		for _, rec := range tr[:4] {
			if err := owner.Feeder().Emit(u, mobiflow.Trace{rec}); err != nil {
				t.Fatal(err)
			}
			fed++
		}
	}
	if err := cl.WaitRecords(fed, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	oldRing := cl.Coordinator.Ring()
	joiner, err := cl.Join("ric-2")
	if err != nil {
		t.Fatal(err)
	}
	newRing := cl.Coordinator.Ring()

	// Which of our UEs should move? Those reassigned to the joiner.
	var moving []uint64
	for _, u := range ues {
		if oldRing.Owner(u) != newRing.Owner(u) {
			if got := newRing.Owner(u); got != "ric-2" {
				t.Fatalf("UE %d moved to %s on join of ric-2", u, got)
			}
			moving = append(moving, u)
		}
	}
	if len(moving) == 0 {
		t.Skip("hash placement moved none of the sampled UEs; nothing to assert")
	}

	// The joiner must end up holding exactly the reassigned UEs' state.
	deadline := time.Now().Add(10 * time.Second)
	for {
		held := map[uint64]bool{}
		for _, u := range joiner.UEs() {
			held[u] = true
		}
		all := true
		for _, u := range moving {
			if !held[u] {
				all = false
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("joiner holds %v, want at least %v", joiner.UEs(), moving)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, u := range moving {
		if src := cl.Instance(oldRing.Owner(u)); src != nil {
			srcDeadline := time.Now().Add(10 * time.Second)
			for {
				stillHeld := false
				for _, held := range src.UEs() {
					if held == u {
						stillHeld = true
					}
				}
				if !stillHeld {
					break
				}
				if time.Now().After(srcDeadline) {
					t.Fatalf("UE %d still held by %s after rebalance", u, src.ID())
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
	}

	if got := cl.TotalRecords(); got != fed {
		t.Errorf("records scored = %d, want %d (zero loss across rebalance)", got, fed)
	}
}

// TestDegradedStandalone checks that an instance without a reachable
// bus keeps detecting: records score, health reports the degradation,
// and migration fails fast instead of blocking.
func TestDegradedStandalone(t *testing.T) {
	models, mixed := testEnv(t)
	inst, err := StartInstance(InstanceOptions{
		ID: "ric-dark", Models: models,
		Dial:             func() (*wire.Conn, error) { return nil, fmt.Errorf("no route to broker") },
		MigrationTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()
	go func() {
		for range inst.Alerts() {
		}
	}()

	var u uint64
	var tr mobiflow.Trace
	for cand, recs := range func() map[uint64]mobiflow.Trace {
		m := map[uint64]mobiflow.Trace{}
		for _, rec := range mixed.Trace {
			m[rec.UEID] = append(m[rec.UEID], rec)
		}
		return m
	}() {
		if len(recs) >= 4 {
			u, tr = cand, recs[:4]
			break
		}
	}
	for _, rec := range tr {
		if err := inst.Feeder().Emit(u, mobiflow.Trace{rec}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for inst.Records() < uint64(len(tr)) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := inst.Records(); got < uint64(len(tr)) {
		t.Fatalf("degraded instance scored %d/%d records", got, len(tr))
	}

	if _, err := inst.healthDetail(); err == nil {
		t.Error("health check passes with unreachable bus")
	}
	if err := inst.MigrateUE(u, "ric-elsewhere"); err == nil {
		t.Error("migration succeeded with unreachable bus")
	}
	if inst.Bus().PublishFailures() == 0 {
		t.Error("degraded publish failures not counted")
	}
}

// TestPolicyFanout checks coordinator→bus→instance A1 distribution:
// one PushPolicy retunes the detection threshold on every instance.
func TestPolicyFanout(t *testing.T) {
	models, _ := testEnv(t)
	cl, err := StartCluster(ClusterOptions{Instances: 2, Models: models})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	before := map[string]float64{}
	for _, inst := range cl.Instances() {
		ae, _ := inst.Runtime().Thresholds()
		before[inst.ID()] = ae
	}
	if err := cl.Coordinator.PushPolicy(smo.Policy{ID: "fed-tune", ThresholdPercentile: 90}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for _, inst := range cl.Instances() {
		for {
			ae, _ := inst.Runtime().Thresholds()
			if ae != before[inst.ID()] {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("instance %s never applied the fanned-out policy", inst.ID())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}
