package fed

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/obs/fleet"
	"github.com/6g-xsec/xsec/internal/prov"
	"github.com/6g-xsec/xsec/internal/sdl"
)

// ClusterOptions configures an in-process federation.
type ClusterOptions struct {
	// Instances is the initial member count (default 2), named
	// "ric-0".."ric-N-1".
	Instances int
	// Models are deployed to every instance (required).
	Models *mobiwatch.Models
	// Vnodes, Shards, ShardBuffer, MigrationTimeout, and
	// MaxConcurrentMigrations are passed through (see InstanceOptions).
	Vnodes                  int
	Shards                  int
	ShardBuffer             int
	MigrationTimeout        time.Duration
	MaxConcurrentMigrations int
	// InstallLedger activates a provenance ledger backed by the
	// coordinator's store for the cluster's lifetime, so migration
	// hand-offs from every instance land in one auditable place.
	InstallLedger bool
	// HeartbeatPeriod is passed to every instance (see InstanceOptions).
	HeartbeatPeriod time.Duration
	// Fleet, when set, attaches a fleet collector (failure detection,
	// metrics federation, SLOs, trace stitching) to the coordinator.
	// Publish/Evict/Store are wired by the cluster.
	Fleet *fleet.CollectorOptions
}

// Cluster wires N federated instances to one coordinator and broker in
// a single process. Tests, xsec-bench -fed, xsec-testbed -federation,
// and xsec-audit -federation all drive federations through it, so the
// protocol exercised everywhere is the same one.
type Cluster struct {
	Store       *sdl.Store // coordinator/SMO-side store (ring, A1, ledger)
	Broker      *Broker
	Coordinator *Coordinator

	opts      ClusterOptions
	ledger    *prov.Ledger
	prev      *prov.Ledger
	collector *fleet.Collector

	mu        sync.Mutex
	instances map[string]*Instance
	order     []string
	retired   uint64 // records scored by instances that have been stopped
	nextID    int
}

// StartCluster brings up the broker, coordinator, and initial
// instances, and publishes the first ring epoch.
func StartCluster(opts ClusterOptions) (*Cluster, error) {
	if opts.Instances <= 0 {
		opts.Instances = 2
	}
	if opts.Models == nil {
		return nil, fmt.Errorf("fed: cluster requires models")
	}
	store := sdl.New()
	cl := &Cluster{
		Store:     store,
		opts:      opts,
		instances: make(map[string]*Instance),
	}
	if opts.InstallLedger {
		cl.ledger = prov.New(prov.Options{Store: store})
		cl.prev = prov.SetActive(cl.ledger)
	}
	broker, err := NewBroker("127.0.0.1:0")
	if err != nil {
		cl.Close()
		return nil, err
	}
	cl.Broker = broker
	cl.Coordinator = NewCoordinator(store, broker, opts.Vnodes)
	if opts.Fleet != nil {
		cl.collector = StartFleet(cl.Coordinator, broker, store, *opts.Fleet)
	}

	ids := make([]string, 0, opts.Instances)
	for n := 0; n < opts.Instances; n++ {
		id := fmt.Sprintf("ric-%d", n)
		if _, err := cl.startInstance(id); err != nil {
			cl.Close()
			return nil, err
		}
		ids = append(ids, id)
	}
	cl.nextID = opts.Instances
	ring, err := cl.Coordinator.SetInstances(ids)
	if err != nil {
		cl.Close()
		return nil, err
	}
	if err := cl.waitEpoch(ring.Epoch, 5*time.Second); err != nil {
		cl.Close()
		return nil, err
	}
	return cl, nil
}

func (cl *Cluster) startInstance(id string) (*Instance, error) {
	inst, err := StartInstance(InstanceOptions{
		ID:                      id,
		Models:                  cl.opts.Models,
		BusAddr:                 cl.Broker.Addr(),
		Shards:                  cl.opts.Shards,
		ShardBuffer:             cl.opts.ShardBuffer,
		MigrationTimeout:        cl.opts.MigrationTimeout,
		MaxConcurrentMigrations: cl.opts.MaxConcurrentMigrations,
		HeartbeatPeriod:         cl.opts.HeartbeatPeriod,
	})
	if err != nil {
		return nil, err
	}
	cl.mu.Lock()
	cl.instances[id] = inst
	cl.order = append(cl.order, id)
	cl.mu.Unlock()
	return inst, nil
}

// waitEpoch blocks until every live instance has applied epoch.
func (cl *Cluster) waitEpoch(epoch int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		lagging := ""
		for _, inst := range cl.Instances() {
			if inst.RingEpoch() < epoch {
				lagging = inst.ID()
				break
			}
		}
		if lagging == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fed: instance %s never applied ring epoch %d", lagging, epoch)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Instance returns a member by ID (nil if absent).
func (cl *Cluster) Instance(id string) *Instance {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.instances[id]
}

// Instances lists live members in join order.
func (cl *Cluster) Instances() []*Instance {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	out := make([]*Instance, 0, len(cl.instances))
	for _, id := range cl.order {
		if inst, ok := cl.instances[id]; ok {
			out = append(out, inst)
		}
	}
	return out
}

// OwnerOf returns the instance owning ue per the coordinator's ring.
func (cl *Cluster) OwnerOf(ue uint64) *Instance {
	r := cl.Coordinator.Ring()
	if r == nil {
		return nil
	}
	return cl.Instance(r.Owner(ue))
}

// MigrateUE moves one UE's state from src to dest explicitly (a
// directed handover), synchronously: it returns once dest has restored
// and src has forgotten the UE.
func (cl *Cluster) MigrateUE(ue uint64, src, dest string) error {
	s := cl.Instance(src)
	if s == nil {
		return fmt.Errorf("fed: no instance %q", src)
	}
	if cl.Instance(dest) == nil {
		return fmt.Errorf("fed: no instance %q", dest)
	}
	return s.MigrateUE(ue, dest)
}

// Join starts a new instance (default name "ric-<n>") and publishes the
// epoch admitting it; it returns after every member applied the ring —
// rebalancing migrations toward the joiner may still be draining.
func (cl *Cluster) Join(id string) (*Instance, error) {
	if id == "" {
		cl.mu.Lock()
		id = fmt.Sprintf("ric-%d", cl.nextID)
		cl.nextID++
		cl.mu.Unlock()
	}
	inst, err := cl.startInstance(id)
	if err != nil {
		return nil, err
	}
	ring, err := cl.Coordinator.Join(id)
	if err != nil {
		return nil, err
	}
	if err := cl.waitEpoch(ring.Epoch, 5*time.Second); err != nil {
		return nil, err
	}
	return inst, nil
}

// Leave gracefully retires an instance: the coordinator publishes a
// ring without it, the leaver migrates all of its UE state out, and the
// instance stops once it is drained (or drainTimeout passes, in which
// case undrained UEs cold-start on their new owners).
func (cl *Cluster) Leave(id string, drainTimeout time.Duration) error {
	inst := cl.Instance(id)
	if inst == nil {
		return fmt.Errorf("fed: no instance %q", id)
	}
	if _, err := cl.Coordinator.Leave(id); err != nil {
		return err
	}
	if drainTimeout <= 0 {
		drainTimeout = 10 * time.Second
	}
	deadline := time.Now().Add(drainTimeout)
	for len(inst.UEs()) > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	drained := len(inst.UEs()) == 0
	cl.retire(id, inst)
	if !drained {
		return fmt.Errorf("fed: instance %s left with undrained UE state", id)
	}
	return nil
}

// Fleet returns the attached fleet collector (nil without
// ClusterOptions.Fleet).
func (cl *Cluster) Fleet() *fleet.Collector { return cl.collector }

// Crash stops an instance abruptly WITHOUT telling the coordinator —
// simulating a real failure. Nothing removes it from the ring except
// the fleet collector's failure detector noticing the missing
// heartbeats and auto-evicting it; without a collector attached, the
// ring keeps routing to a dead member until a manual Leave.
func (cl *Cluster) Crash(id string) error {
	inst := cl.Instance(id)
	if inst == nil {
		return fmt.Errorf("fed: no instance %q", id)
	}
	cl.retire(id, inst)
	return nil
}

// Kill stops an instance abruptly — no drain, its un-migrated window
// state is lost (new owners cold-start those UEs) — then publishes the
// ring without it so survivors take over its hash range.
func (cl *Cluster) Kill(id string) error {
	inst := cl.Instance(id)
	if inst == nil {
		return fmt.Errorf("fed: no instance %q", id)
	}
	cl.retire(id, inst)
	_, err := cl.Coordinator.Leave(id)
	return err
}

func (cl *Cluster) retire(id string, inst *Instance) {
	inst.Stop()
	cl.mu.Lock()
	delete(cl.instances, id)
	cl.retired += inst.Records()
	cl.mu.Unlock()
}

// TotalRecords sums records scored across live and retired instances —
// the zero-loss invariant checked by the federation smoke: after
// quiescing, TotalRecords equals the number of records injected.
func (cl *Cluster) TotalRecords() uint64 {
	cl.mu.Lock()
	total := cl.retired
	insts := make([]*Instance, 0, len(cl.instances))
	for _, inst := range cl.instances {
		insts = append(insts, inst)
	}
	cl.mu.Unlock()
	for _, inst := range insts {
		total += inst.Records()
	}
	return total
}

// WaitRecords blocks until TotalRecords reaches n (quiescence barrier
// for paced feeding).
func (cl *Cluster) WaitRecords(n uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if got := cl.TotalRecords(); got >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fed: %d/%d records scored before timeout", cl.TotalRecords(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// FlushProv drains the cluster ledger to its store so audits read
// everything recorded so far.
func (cl *Cluster) FlushProv() {
	if cl.ledger != nil {
		cl.ledger.Flush()
	}
}

// AuditMigrations flushes the ledger and verifies every migrated UE's
// chains are joined with no scoring gap.
func (cl *Cluster) AuditMigrations() []prov.MigrationAudit {
	cl.FlushProv()
	return prov.AuditMigrations(cl.Store)
}

// Close stops every instance, the broker, and the ledger.
func (cl *Cluster) Close() {
	cl.mu.Lock()
	ids := append([]string(nil), cl.order...)
	sort.Strings(ids)
	insts := make([]*Instance, 0, len(ids))
	for _, id := range ids {
		if inst, ok := cl.instances[id]; ok {
			insts = append(insts, inst)
			delete(cl.instances, id)
		}
	}
	cl.mu.Unlock()
	for _, inst := range insts {
		inst.Stop()
	}
	if cl.collector != nil {
		cl.collector.Stop()
	}
	if cl.Broker != nil {
		cl.Broker.Close()
	}
	if cl.ledger != nil {
		prov.SetActive(cl.prev)
		cl.ledger.Close()
	}
}
