package fed

import (
	"github.com/6g-xsec/xsec/internal/obs/fleet"
	"github.com/6g-xsec/xsec/internal/sdl"
)

// StartFleet attaches a fleet collector to a federation: heartbeats and
// scrape reports are consumed broker-side (no loopback connection), the
// scrape requests go out on the broker's bus, and a dead instance is
// auto-evicted through the coordinator's Leave — survivors take over
// its hash range on the next ring epoch. The collector's loops are
// started; the caller owns Stop.
func StartFleet(coord *Coordinator, broker *Broker, store *sdl.Store, opts fleet.CollectorOptions) *fleet.Collector {
	opts.Publish = broker.Publish
	opts.Store = store
	if opts.Evict == nil {
		opts.Evict = func(instance string) error {
			_, err := coord.Leave(instance)
			return err
		}
	}
	col := fleet.NewCollector(opts)
	broker.SubscribeLocal(fleet.TopicHeartbeat, func(_ uint64, payload []byte, _ string) {
		if hb, err := fleet.ParseHeartbeat(payload); err == nil {
			col.OnHeartbeat(hb)
		}
	})
	broker.SubscribeLocal(fleet.TopicReport, func(_ uint64, payload []byte, _ string) {
		if rep, err := fleet.ParseReport(payload); err == nil {
			col.OnReport(rep)
		}
	})
	col.Mount()
	col.Start()
	return col
}
