package fed

import (
	"fmt"
	"sort"
	"time"

	"github.com/6g-xsec/xsec/internal/dataset"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/obs/fleet"
	"github.com/6g-xsec/xsec/internal/sdl"
	"github.com/6g-xsec/xsec/internal/ue"
)

// FleetDrillOptions configure the fleet observability drill.
type FleetDrillOptions struct {
	// Instances is the federation size (default 4).
	Instances int
	// Seed drives dataset generation and training (default 1).
	Seed int64
	// Models and Mixed, when set, skip the drill's own dataset
	// generation and training (benches and tests reuse a cached
	// environment).
	Models *mobiwatch.Models
	Mixed  *dataset.Labeled
	// HeartbeatPeriod, SuspectAfter, and DeadAfter compress the failure
	// detector's timebase for the drill (defaults 50ms / 250ms / 600ms).
	HeartbeatPeriod time.Duration
	SuspectAfter    time.Duration
	DeadAfter       time.Duration
	// ScrapeRounds is how many timed federation scrapes to run
	// (default 5).
	ScrapeRounds int
	// EvictTimeout bounds the wait for the killed instance's automatic
	// eviction (default 10s).
	EvictTimeout time.Duration
}

// FleetDrillResult reports what the drill observed.
type FleetDrillResult struct {
	Instances int `json:"instances"`

	// Trace stitching: a UE migrated mid-attack must yield one stitched
	// cross-instance trace with at least two segments.
	MigratedUE     uint64 `json:"migrated_ue"`
	StitchedTraces int    `json:"stitched_traces"`
	// TraceSegments/TraceSpans describe the migrated UE's trace.
	TraceSegments  int  `json:"trace_segments"`
	TraceSpans     int  `json:"trace_spans"`
	TraceComplete  bool `json:"trace_complete"`
	TraceInstances int  `json:"trace_instances"`
	// StitchSeconds is how long assembling all stitched traces took.
	StitchSeconds float64 `json:"stitch_seconds"`

	// Federation scrape cost: wall-clock per full round (request out to
	// every live instance's report merged).
	ScrapeRounds  int       `json:"scrape_rounds"`
	ScrapeSeconds []float64 `json:"scrape_seconds"`

	// Failure detection: Crash(victim) to the collector's auto-eviction.
	Victim             string  `json:"victim"`
	KillToEvictSecs    float64 `json:"kill_to_evict_seconds"`
	EvictedFromRing    bool    `json:"evicted_from_ring"`
	JournalTransitions int     `json:"journal_transitions"`

	// Fleet surface at the end of the drill.
	MergedSeries int                    `json:"merged_series"`
	Health       []fleet.InstanceHealth `json:"health"`
	SLOs         []fleet.SLOStatus      `json:"slos"`
	FiringSLOs   int                    `json:"firing_slos"`

	// Store keeps the SMO store readable after teardown (journal, prov).
	Store *sdl.Store `json:"-"`
}

// RunFleetDrill exercises the whole fleet observability plane in one
// pass: it stands up a federation with an attached collector, replays a
// BTS-DoS flood with a mid-attack migration (producing a stitched
// cross-instance trace), times federation scrape rounds, then crashes
// an instance and measures how long the failure detector takes to
// auto-evict it from the ring.
func RunFleetDrill(opts FleetDrillOptions) (*FleetDrillResult, error) {
	if opts.Instances < 2 {
		opts.Instances = 4
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.HeartbeatPeriod == 0 {
		opts.HeartbeatPeriod = 50 * time.Millisecond
	}
	if opts.SuspectAfter == 0 {
		opts.SuspectAfter = 250 * time.Millisecond
	}
	if opts.DeadAfter == 0 {
		opts.DeadAfter = 600 * time.Millisecond
	}
	if opts.ScrapeRounds == 0 {
		opts.ScrapeRounds = 5
	}
	if opts.EvictTimeout == 0 {
		opts.EvictTimeout = 10 * time.Second
	}
	models, mixed := opts.Models, opts.Mixed
	if models == nil || mixed == nil {
		var err error
		models, mixed, err = buildScenarioEnv(opts.Seed)
		if err != nil {
			return nil, err
		}
	}

	var attackUEs []uint64
	for _, ev := range mixed.Events {
		if ev.Kind == ue.AttackBTSDoS {
			attackUEs = append(attackUEs, ev.UEIDs...)
			break
		}
	}
	if len(attackUEs) == 0 {
		return nil, fmt.Errorf("fed: dataset contains no BTS-DoS event")
	}
	isAttack := make(map[uint64]bool, len(attackUEs))
	for _, u := range attackUEs {
		isAttack[u] = true
	}
	var flood mobiflow.Trace
	for _, rec := range mixed.Trace {
		if isAttack[rec.UEID] {
			flood = append(flood, rec)
		}
	}
	if len(flood) < 8 {
		return nil, fmt.Errorf("fed: flood too short (%d records)", len(flood))
	}
	boundary := len(flood) / 2

	cl, err := StartCluster(ClusterOptions{
		Instances:       opts.Instances,
		Models:          models,
		InstallLedger:   true,
		HeartbeatPeriod: opts.HeartbeatPeriod,
		Fleet: &fleet.CollectorOptions{
			SuspectAfter: opts.SuspectAfter,
			DeadAfter:    opts.DeadAfter,
			ScrapePeriod: 500 * time.Millisecond,
			SweepPeriod:  opts.HeartbeatPeriod / 2,
		},
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	col := cl.Fleet()

	res := &FleetDrillResult{Instances: opts.Instances, Store: cl.Store}

	// Drain every alert stream so the bounded channels never stall.
	for _, inst := range cl.Instances() {
		go func(ch <-chan mobiwatch.Alert) {
			for range ch {
			}
		}(inst.Alerts())
	}

	// Wait for the first heartbeats so the detector knows the fleet.
	if err := waitFor(5*time.Second, func() bool { return col.Alive() >= opts.Instances }); err != nil {
		return nil, fmt.Errorf("fed: collector never saw all %d instances: %w", opts.Instances, err)
	}

	// Mid-attack migration: first half of the flood at ric-0, migrate
	// the attacking UEs to ric-1, second half there.
	src, dest := cl.Instance("ric-0"), cl.Instance("ric-1")
	for _, rec := range flood[:boundary] {
		if err := src.Feeder().Emit(rec.UEID, mobiflow.Trace{rec}); err != nil {
			return nil, err
		}
	}
	if err := cl.WaitRecords(uint64(boundary), 10*time.Second); err != nil {
		return nil, err
	}
	migrated := map[uint64]bool{}
	for _, u := range attackUEs {
		if migrated[u] {
			continue
		}
		migrated[u] = true
		if err := cl.MigrateUE(u, src.ID(), dest.ID()); err != nil {
			return nil, fmt.Errorf("fed: migrating UE %d: %w", u, err)
		}
	}
	res.MigratedUE = attackUEs[0]
	for _, rec := range flood[boundary:] {
		if err := dest.Feeder().Emit(rec.UEID, mobiflow.Trace{rec}); err != nil {
			return nil, err
		}
	}
	if err := cl.WaitRecords(uint64(len(flood)), 10*time.Second); err != nil {
		return nil, err
	}
	cl.FlushProv()

	// Timed federation scrapes. Each round waits for every live
	// instance's report, so the measurement covers request fan-out,
	// snapshot assembly, bus transit, and merge.
	for n := 0; n < opts.ScrapeRounds; n++ {
		start := time.Now()
		done := col.ScrapeOnce()
		if done == nil {
			return nil, fmt.Errorf("fed: scrape round %d refused", n)
		}
		select {
		case <-done:
			res.ScrapeSeconds = append(res.ScrapeSeconds, time.Since(start).Seconds())
		case <-time.After(5 * time.Second):
			return nil, fmt.Errorf("fed: scrape round %d never completed", n)
		}
	}
	res.ScrapeRounds = len(res.ScrapeSeconds)

	// Trace stitching: the migrated UE's spans from both instances must
	// assemble into one cross-instance trace.
	stitchStart := time.Now()
	traces := col.Traces()
	res.StitchSeconds = time.Since(stitchStart).Seconds()
	res.StitchedTraces = len(traces)
	for _, tr := range traces {
		if tr.UEID != res.MigratedUE {
			continue
		}
		res.TraceSegments = len(tr.Segments)
		res.TraceComplete = tr.Complete
		insts := map[string]bool{}
		for _, seg := range tr.Segments {
			res.TraceSpans += len(seg.Spans)
			if seg.Instance != "" {
				insts[seg.Instance] = true
			}
		}
		res.TraceInstances = len(insts)
		break
	}

	// Kill drill: crash the last instance without telling the
	// coordinator; only the failure detector can notice.
	victim := fmt.Sprintf("ric-%d", opts.Instances-1)
	res.Victim = victim
	ringBefore := cl.Coordinator.Ring().Epoch
	killedAt := time.Now()
	if err := cl.Crash(victim); err != nil {
		return nil, err
	}
	err = waitFor(opts.EvictTimeout, func() bool {
		for _, h := range col.Health() {
			if h.Instance == victim && h.State == fleet.StateDead {
				return true
			}
		}
		return false
	})
	if err != nil {
		return nil, fmt.Errorf("fed: %s was never detected dead: %w", victim, err)
	}
	res.KillToEvictSecs = time.Since(killedAt).Seconds()

	// The eviction must have published a ring without the victim.
	ring := cl.Coordinator.Ring()
	res.EvictedFromRing = ring.Epoch > ringBefore
	for _, id := range ring.Instances {
		if id == victim {
			res.EvictedFromRing = false
		}
	}
	res.JournalTransitions = len(fleet.ReadJournal(cl.Store))

	res.MergedSeries = len(col.MergedSeries())
	res.Health = col.Health()
	res.SLOs = col.SLO()
	for _, s := range res.SLOs {
		if s.Firing {
			res.FiringSLOs++
		}
	}
	sort.Float64s(res.ScrapeSeconds)
	return res, nil
}

// waitFor polls cond until true or timeout.
func waitFor(timeout time.Duration, cond func() bool) error {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("condition not met within %v", timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
