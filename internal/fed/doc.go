// Package fed implements multi-RIC federation with live UE-state
// migration. A deployment runs several near-RT RIC instances, each
// owning a contiguous slice of the UE-hash space; an SMO-side
// coordinator publishes the ownership ring and A1 policies to every
// instance over a checkpointed pub/sub bus, and UEs migrate between
// instances without losing detection continuity.
//
// The pieces:
//
//   - Ring (ring.go): a consistent-hash ring mapping UE IDs to instance
//     IDs. Each epoch is published to the SDL and fanned out on the bus,
//     so instances converge on the same ownership view.
//   - Broker / Client (bus.go): the cross-instance bus. Topics are
//     retained, offset-numbered message logs; a subscriber names the
//     offset it resumes from, so a reconnecting instance replays what it
//     missed instead of starting blind. When the bus is unreachable an
//     instance degrades to standalone detection rather than stopping.
//   - Feeder (feeder.go): a synthetic E2 node speaking the real gNB
//     handshake, used by federation tests and benches to emit telemetry
//     with caller-controlled UE identity.
//   - Instance (instance.go): one federated RIC — platform, MobiWatch
//     runtime, bus client, and the migration protocol endpoints.
//   - Coordinator (coordinator.go): the SMO side — ring epochs on
//     join/leave and policy fan-out.
//   - Cluster (cluster.go): an in-process harness wiring N instances to
//     one coordinator, used by tests, xsec-bench -fed, and the testbed.
//
// Migration keeps the evidence trail intact: the source records a
// "migration out" provenance event on the UE's last chain, the
// destination records the matching "migration in" on the first chain it
// scores, and cmd/xsec-audit verifies every migrated UE's chains are
// joined with no scoring gap.
package fed
