package fed

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/6g-xsec/xsec/internal/asn1lite"
	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/wire"
)

// Bus topics used by the federation.
const (
	// TopicRing carries ring epochs (JSON, Ring.Encode).
	TopicRing = "ring"
	// TopicPolicy carries A1 policies (JSON, smo.Policy.Encode).
	TopicPolicy = "policy"
	// TopicMigrate carries UE snapshots toward their new owner.
	TopicMigrate = "migrate"
	// TopicMigrateAck carries the new owner's restore confirmations.
	TopicMigrateAck = "migrate-ack"
)

// DefaultRetain bounds each topic's retained log. Ring and policy
// history is tiny; migrate traffic is bounded by the concurrent
// migration cap, so a shallow log is enough for resume-after-reconnect.
const DefaultRetain = 1024

// Bus frame ops.
const (
	opPublish   = 1
	opSubscribe = 2
	opDeliver   = 3
)

// frame is the bus wire unit: op, topic, log offset (deliver and
// subscribe), payload (publish and deliver). Trace and Pub are the
// trace context: the originating chain key and the publisher's wall
// clock, so a subscriber can record the bus hop as a span on the
// message's distributed trace. Both are optional — untraced traffic
// omits the tags and decodes exactly as before.
type frame struct {
	Op      uint64
	Topic   string
	Offset  uint64
	Payload []byte
	Trace   string
	Pub     uint64 // publish wall clock, unix nanoseconds
}

func (f *frame) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(1, f.Op)
	e.PutString(2, f.Topic)
	e.PutUint(3, f.Offset)
	if len(f.Payload) > 0 {
		e.PutBytes(4, f.Payload)
	}
	if f.Trace != "" {
		e.PutString(5, f.Trace)
	}
	if f.Pub != 0 {
		e.PutUint(6, f.Pub)
	}
}

func (f *frame) UnmarshalTLV(d *asn1lite.Decoder) error {
	*f = frame{}
	for d.Next() {
		var err error
		switch d.Tag() {
		case 1:
			f.Op, err = d.Uint()
		case 2:
			f.Topic, err = d.String()
		case 3:
			f.Offset, err = d.Uint()
		case 4:
			f.Payload, err = d.Bytes()
		case 5:
			f.Trace, err = d.String()
		case 6:
			f.Pub, err = d.Uint()
		}
		if err != nil {
			return err
		}
	}
	return d.Err()
}

// busMsg is one retained message: payload plus its trace context, kept
// so replays after reconnect carry the same context as the original
// delivery.
type busMsg struct {
	payload []byte
	trace   string
	pub     uint64
}

// topicLog is one topic's retained, offset-numbered message log. base
// is the offset of msgs[0]; older messages have been trimmed.
type topicLog struct {
	base uint64
	msgs []busMsg
}

// busConn is one subscriber connection on the broker side. Frames are
// never written under the broker lock: they are enqueued on out and a
// dedicated writer goroutine drains it, so a slow or blocked peer can
// only lose its own messages (counted), never stall the broker.
type busConn struct {
	c    *wire.Conn
	out  chan frame
	subs map[string]bool
}

// Broker is the federation bus hub. Topics are retained logs, so a
// subscriber that names its resume offset replays everything it missed;
// publishes fan out to current subscribers with per-connection queues.
type Broker struct {
	ln     *wire.Listener
	retain int

	mu     sync.Mutex
	topics map[string]*topicLog
	conns  map[*busConn]struct{}
	local  map[string][]LocalHandler
	closed bool
}

// LocalHandler observes bus traffic broker-side without a connection.
// Handlers run synchronously after the broker lock is released, on the
// goroutine that published — keep them fast and non-blocking.
type LocalHandler func(offset uint64, payload []byte, trace string)

// NewBroker listens on addr (use "127.0.0.1:0" for an ephemeral port).
func NewBroker(addr string) (*Broker, error) {
	ln, err := wire.Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("fed: bus listen: %w", err)
	}
	b := &Broker{
		ln:     ln,
		retain: DefaultRetain,
		topics: make(map[string]*topicLog),
		conns:  make(map[*busConn]struct{}),
		local:  make(map[string][]LocalHandler),
	}
	go wire.Serve(ln, b.handle)
	return b, nil
}

// Addr returns the broker's listen address.
func (b *Broker) Addr() string { return b.ln.Addr().String() }

// Close stops the broker and severs every subscriber.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	conns := make([]*busConn, 0, len(b.conns))
	for bc := range b.conns {
		conns = append(conns, bc)
		delete(b.conns, bc)
	}
	b.mu.Unlock()
	b.ln.Close()
	for _, bc := range conns {
		close(bc.out)
		bc.c.Close()
	}
}

// Publish appends payload to topic's log and fans it out. The
// coordinator publishes through this local method; remote instances
// publish through their Client, which lands here via opPublish.
func (b *Broker) Publish(topic string, payload []byte) error {
	return b.publish(topic, payload, "", uint64(time.Now().UnixNano()))
}

// PublishTraced publishes with an attached trace context; subscribers
// record the bus hop as a span on that trace.
func (b *Broker) PublishTraced(topic string, payload []byte, trace string) error {
	return b.publish(topic, payload, trace, uint64(time.Now().UnixNano()))
}

// SubscribeLocal registers a broker-side observer for topic. It sees
// every future message on the topic (no replay of the retained log) and
// runs on the publisher's goroutine after the broker lock is released.
// The colocated fleet collector uses this to consume heartbeats and
// reports without a loopback connection.
func (b *Broker) SubscribeLocal(topic string, fn LocalHandler) {
	b.mu.Lock()
	b.local[topic] = append(b.local[topic], fn)
	b.mu.Unlock()
}

func (b *Broker) publish(topic string, payload []byte, trace string, pub uint64) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return errors.New("fed: bus closed")
	}
	log := b.topics[topic]
	if log == nil {
		log = &topicLog{}
		b.topics[topic] = log
	}
	offset := log.base + uint64(len(log.msgs))
	log.msgs = append(log.msgs, busMsg{payload: append([]byte(nil), payload...), trace: trace, pub: pub})
	if len(log.msgs) > b.retain {
		drop := len(log.msgs) - b.retain
		log.msgs = log.msgs[drop:]
		log.base += uint64(drop)
	}
	for bc := range b.conns {
		if bc.subs[topic] {
			b.enqueue(bc, frame{Op: opDeliver, Topic: topic, Offset: offset, Payload: payload, Trace: trace, Pub: pub})
		}
	}
	local := b.local[topic]
	b.mu.Unlock()
	obsBusPublished.With(topic).Inc()
	for _, fn := range local {
		fn(offset, payload, trace)
	}
	return nil
}

// enqueue hands a frame to a connection's writer without blocking;
// overflow drops the frame and counts it (the subscriber re-syncs from
// its resume offset on reconnect).
func (b *Broker) enqueue(bc *busConn, f frame) {
	select {
	case bc.out <- f:
		obsBusDelivered.With(f.Topic).Inc()
	default:
		obsBusDropped.With(f.Topic).Inc()
	}
}

func (b *Broker) handle(c *wire.Conn) {
	bc := &busConn{c: c, out: make(chan frame, 256), subs: make(map[string]bool)}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		c.Close()
		return
	}
	b.conns[bc] = struct{}{}
	b.mu.Unlock()

	// Writer: the only goroutine that sends on this connection.
	go func() {
		var enc asn1lite.Encoder
		for f := range bc.out {
			enc.Reset()
			f.MarshalTLV(&enc)
			if err := c.Send(enc.Bytes()); err != nil {
				return
			}
		}
	}()

	for {
		data, err := c.Recv()
		if err != nil {
			break
		}
		var f frame
		if err := asn1lite.Unmarshal(data, &f); err != nil {
			break
		}
		switch f.Op {
		case opPublish:
			pub := f.Pub
			if pub == 0 {
				pub = uint64(time.Now().UnixNano())
			}
			b.publish(f.Topic, f.Payload, f.Trace, pub)
		case opSubscribe:
			b.subscribe(bc, f.Topic, f.Offset)
		}
	}

	b.mu.Lock()
	if _, live := b.conns[bc]; live {
		delete(b.conns, bc)
		close(bc.out)
	}
	b.mu.Unlock()
	c.Close()
}

// subscribe registers bc on topic and replays the retained log from the
// requested offset, clamped to what is still retained.
func (b *Broker) subscribe(bc *busConn, topic string, from uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	bc.subs[topic] = true
	log := b.topics[topic]
	if log == nil {
		return
	}
	start := from
	if start < log.base {
		start = log.base
	}
	for off := start; off < log.base+uint64(len(log.msgs)); off++ {
		m := log.msgs[off-log.base]
		b.enqueue(bc, frame{Op: opDeliver, Topic: topic, Offset: off, Payload: m.payload, Trace: m.trace, Pub: m.pub})
	}
}

// Client is an instance's bus endpoint. It dials the broker, replays
// each subscribed topic from its per-topic resume offset, and
// reconnects with backoff after failures. While disconnected the
// instance is degraded, not dead: Publish returns an error the caller
// counts, subscriptions resume where they left off once the broker is
// reachable again.
type Client struct {
	instance string
	dial     func() (*wire.Conn, error)

	mu       sync.Mutex
	conn     *wire.Conn
	next     map[string]uint64
	handlers map[string]func(offset uint64, payload []byte, trace string)
	closed   bool

	connected atomic.Bool
	failures  atomic.Uint64
	done      chan struct{}
	wg        sync.WaitGroup
}

// NewClient starts a bus client using dial to (re)establish transport.
// instance labels this client's degraded-mode metrics.
func NewClient(instance string, dial func() (*wire.Conn, error)) *Client {
	c := &Client{
		instance: instance,
		dial:     dial,
		next:     make(map[string]uint64),
		handlers: make(map[string]func(uint64, []byte, string)),
		done:     make(chan struct{}),
	}
	c.wg.Add(1)
	go c.run()
	return c
}

// DialBus connects to a broker address.
func DialBus(instance, addr string) *Client {
	return NewClient(instance, func() (*wire.Conn, error) {
		return wire.Dial(addr, time.Second)
	})
}

// Connected reports whether the broker is currently reachable.
func (c *Client) Connected() bool { return c.connected.Load() }

// PublishFailures counts publishes refused while degraded.
func (c *Client) PublishFailures() uint64 { return c.failures.Load() }

// Subscribe registers a handler for topic, resuming from the earliest
// retained message (offset 0) on first subscription. Handlers run on
// the client's read goroutine and must not block.
func (c *Client) Subscribe(topic string, fn func(offset uint64, payload []byte)) {
	c.SubscribeTraced(topic, func(offset uint64, payload []byte, _ string) { fn(offset, payload) })
}

// SubscribeTraced is Subscribe with the message's trace context (empty
// for untraced traffic). The bus hop span is recorded by the client
// before the handler runs.
func (c *Client) SubscribeTraced(topic string, fn func(offset uint64, payload []byte, trace string)) {
	c.mu.Lock()
	c.handlers[topic] = fn
	if _, ok := c.next[topic]; !ok {
		c.next[topic] = 0
	}
	conn, from := c.conn, c.next[topic]
	c.mu.Unlock()
	if conn != nil {
		c.send(conn, frame{Op: opSubscribe, Topic: topic, Offset: from})
	}
}

// Publish sends payload to topic through the broker. While the broker
// is unreachable it fails fast — federation degrades to standalone
// operation instead of blocking the detection path.
func (c *Client) Publish(topic string, payload []byte) error {
	return c.PublishTraced(topic, payload, "")
}

// PublishTraced publishes with a trace context: the chain key travels
// in the frame (not the payload), and every subscriber records the bus
// hop as a span on that trace.
func (c *Client) PublishTraced(topic string, payload []byte, trace string) error {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if conn == nil || !c.connected.Load() {
		c.failures.Add(1)
		obsBusPublishFailures.With(c.instance).Inc()
		return errors.New("fed: bus unreachable (degraded)")
	}
	f := frame{Op: opPublish, Topic: topic, Payload: payload, Trace: trace, Pub: uint64(time.Now().UnixNano())}
	if err := c.send(conn, f); err != nil {
		c.failures.Add(1)
		obsBusPublishFailures.With(c.instance).Inc()
		conn.Close() // wake the read loop into reconnect
		return fmt.Errorf("fed: bus publish: %w", err)
	}
	return nil
}

func (c *Client) send(conn *wire.Conn, f frame) error {
	var enc asn1lite.Encoder
	f.MarshalTLV(&enc)
	return conn.Send(enc.Bytes())
}

// Close stops the client.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	close(c.done)
	if conn != nil {
		conn.Close()
	}
	c.wg.Wait()
}

func (c *Client) run() {
	defer c.wg.Done()
	backoff := 20 * time.Millisecond
	for {
		select {
		case <-c.done:
			return
		default:
		}
		conn, err := c.dial()
		if err != nil {
			if !c.sleep(backoff) {
				return
			}
			if backoff < 500*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		backoff = 20 * time.Millisecond

		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return
		}
		c.conn = conn
		resume := make(map[string]uint64, len(c.next))
		for topic := range c.handlers {
			resume[topic] = c.next[topic]
		}
		c.mu.Unlock()
		for topic, from := range resume {
			c.send(conn, frame{Op: opSubscribe, Topic: topic, Offset: from})
		}
		c.connected.Store(true)
		obs.L().Info("fed: bus connected", "instance", c.instance)

		c.read(conn)

		c.connected.Store(false)
		c.mu.Lock()
		c.conn = nil
		closed := c.closed
		c.mu.Unlock()
		conn.Close()
		if closed {
			return
		}
		obs.L().Warn("fed: bus disconnected, entering degraded mode", "instance", c.instance)
	}
}

func (c *Client) read(conn *wire.Conn) {
	for {
		data, err := conn.Recv()
		if err != nil {
			return
		}
		var f frame
		if err := asn1lite.Unmarshal(data, &f); err != nil {
			return
		}
		if f.Op != opDeliver {
			continue
		}
		c.mu.Lock()
		fn := c.handlers[f.Topic]
		if f.Offset >= c.next[f.Topic] {
			c.next[f.Topic] = f.Offset + 1
		} else {
			fn = nil // already seen before a reconnect; don't re-deliver
		}
		c.mu.Unlock()
		if fn != nil {
			if f.Trace != "" && f.Pub != 0 {
				// The bus hop itself becomes a span on the message's
				// distributed trace: publisher's clock to arrival here.
				obs.RecordSpan(f.Trace, "fed.bus."+f.Topic, time.Unix(0, int64(f.Pub)), time.Now())
			}
			fn(f.Offset, f.Payload, f.Trace)
		}
	}
}

// sleep waits d or until Close; it reports false when closing.
func (c *Client) sleep(d time.Duration) bool {
	select {
	case <-c.done:
		return false
	case <-time.After(d):
		return true
	}
}
