package fed

import (
	"math"
	"testing"

	"github.com/6g-xsec/xsec/internal/sdl"
)

func TestRingOwnershipPartition(t *testing.T) {
	r := NewRing(1, []string{"ric-0", "ric-1", "ric-2", "ric-3"}, 0)

	// Every UE has exactly one owner, deterministically.
	counts := map[string]int{}
	for ue := uint64(1); ue <= 4000; ue++ {
		owner := r.Owner(ue)
		if !r.Contains(owner) {
			t.Fatalf("UE %d owned by unknown instance %q", ue, owner)
		}
		if again := r.Owner(ue); again != owner {
			t.Fatalf("UE %d owner not deterministic: %q then %q", ue, owner, again)
		}
		counts[owner]++
	}
	// With 64 vnodes the split should be roughly even; allow a wide
	// tolerance so the test pins balance, not exact hash placement.
	for inst, n := range counts {
		share := float64(n) / 4000
		if share < 0.10 || share > 0.45 {
			t.Errorf("instance %s owns %.1f%% of UEs, outside sane balance", inst, 100*share)
		}
	}

	// Owned fractions cover the circle.
	var total float64
	for _, inst := range r.Instances {
		f := r.OwnedFraction(inst)
		if f <= 0 || f >= 1 {
			t.Errorf("OwnedFraction(%s) = %v", inst, f)
		}
		total += f
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("fractions sum to %v, want 1", total)
	}
}

func TestRingRebalanceIsIncremental(t *testing.T) {
	r3 := NewRing(1, []string{"ric-0", "ric-1", "ric-2"}, 0)
	r4 := r3.WithJoined("ric-3")
	if r4.Epoch != 2 || !r4.Contains("ric-3") {
		t.Fatalf("WithJoined: epoch %d instances %v", r4.Epoch, r4.Instances)
	}

	// Consistent hashing: a join may only move UEs *to* the joiner;
	// ownership between surviving instances is undisturbed.
	moved := 0
	for ue := uint64(1); ue <= 2000; ue++ {
		before, after := r3.Owner(ue), r4.Owner(ue)
		if before != after {
			moved++
			if after != "ric-3" {
				t.Fatalf("UE %d moved %s→%s on join of ric-3", ue, before, after)
			}
		}
	}
	if moved == 0 {
		t.Error("join moved no UEs to the new instance")
	}
	if moved > 1000 {
		t.Errorf("join moved %d/2000 UEs, want roughly 1/4", moved)
	}

	// And a leave only moves the leaver's UEs.
	r4b := r4.WithLeft("ric-3")
	for ue := uint64(1); ue <= 2000; ue++ {
		if r4.Owner(ue) != "ric-3" && r4b.Owner(ue) != r4.Owner(ue) {
			t.Fatalf("UE %d moved between survivors on leave", ue)
		}
	}
}

func TestRingPublishRoundtrip(t *testing.T) {
	store := sdl.New()
	r := NewRing(7, []string{"ric-a", "ric-b"}, 32)
	if err := PublishRing(store, r); err != nil {
		t.Fatal(err)
	}
	got, ok := LoadRing(store)
	if !ok {
		t.Fatal("ring not readable back")
	}
	if got.Epoch != 7 || got.Vnodes != 32 || len(got.Instances) != 2 {
		t.Fatalf("roundtrip = %+v", got)
	}
	for ue := uint64(1); ue <= 100; ue++ {
		if got.Owner(ue) != r.Owner(ue) {
			t.Fatalf("UE %d owner differs after roundtrip", ue)
		}
	}
	if _, err := ParseRing([]byte("not json")); err == nil {
		t.Error("ParseRing accepted garbage")
	}
}
