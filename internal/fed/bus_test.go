package fed

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/wire"
)

// collect gathers deliveries for assertions.
type collect struct {
	mu   sync.Mutex
	msgs []string
}

func (c *collect) add(payload []byte) {
	c.mu.Lock()
	c.msgs = append(c.msgs, string(payload))
	c.mu.Unlock()
}

func (c *collect) snapshot() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.msgs...)
}

func (c *collect) waitLen(t *testing.T, n int) []string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if got := c.snapshot(); len(got) >= n {
			return got
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d messages, have %v", n, c.snapshot())
	return nil
}

func TestBusRetainedResume(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Published before any subscriber exists — retained.
	for i := 0; i < 3; i++ {
		if err := b.Publish("policy", []byte(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	c := DialBus("ric-test", b.Addr())
	defer c.Close()
	var got collect
	c.Subscribe("policy", func(_ uint64, payload []byte) { got.add(payload) })

	msgs := got.waitLen(t, 3)
	for i, want := range []string{"p0", "p1", "p2"} {
		if msgs[i] != want {
			t.Fatalf("replayed log = %v", msgs)
		}
	}

	// Live messages continue from the retained history, in order.
	b.Publish("policy", []byte("p3"))
	msgs = got.waitLen(t, 4)
	if msgs[3] != "p3" {
		t.Fatalf("live tail = %v", msgs)
	}
}

func TestBusClientPublishRoutesThroughBroker(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	sub := DialBus("ric-sub", b.Addr())
	defer sub.Close()
	var got collect
	sub.Subscribe("migrate", func(_ uint64, payload []byte) { got.add(payload) })

	pub := DialBus("ric-pub", b.Addr())
	defer pub.Close()
	deadline := time.Now().Add(5 * time.Second)
	for !pub.Connected() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := pub.Publish("migrate", []byte("snapshot")); err != nil {
		t.Fatal(err)
	}
	if got.waitLen(t, 1)[0] != "snapshot" {
		t.Fatal("publish did not reach the subscriber")
	}
}

func TestBusDegradedModeAndReconnectResume(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Publish("ring", []byte("epoch1"))

	// A dial gate simulates the broker being unreachable.
	var reachable atomic.Bool
	c := NewClient("ric-flaky", func() (*wire.Conn, error) {
		if !reachable.Load() {
			return nil, fmt.Errorf("network unreachable")
		}
		return wire.Dial(b.Addr(), time.Second)
	})
	defer c.Close()
	var got collect
	c.Subscribe("ring", func(_ uint64, payload []byte) { got.add(payload) })

	// Degraded: not connected, publishes fail fast and are counted,
	// nothing delivered.
	time.Sleep(100 * time.Millisecond)
	if c.Connected() {
		t.Fatal("client claims connectivity with no reachable broker")
	}
	if err := c.Publish("ring", []byte("x")); err == nil {
		t.Fatal("degraded publish succeeded")
	}
	if c.PublishFailures() == 0 {
		t.Fatal("degraded publish not counted")
	}
	if len(got.snapshot()) != 0 {
		t.Fatalf("deliveries while unreachable: %v", got.snapshot())
	}

	// Broker becomes reachable: the client reconnects on its own and
	// resumes the topic from the first retained offset.
	b.Publish("ring", []byte("epoch2"))
	reachable.Store(true)
	msgs := got.waitLen(t, 2)
	if msgs[0] != "epoch1" || msgs[1] != "epoch2" {
		t.Fatalf("resume replay = %v", msgs)
	}

	deadline := time.Now().Add(5 * time.Second)
	for !c.Connected() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !c.Connected() {
		t.Fatal("client never reported reconnect")
	}
	if err := c.Publish("ring", []byte("epoch3")); err != nil {
		t.Fatalf("publish after reconnect: %v", err)
	}
	msgs = got.waitLen(t, 3)
	if msgs[2] != "epoch3" {
		t.Fatalf("post-reconnect tail = %v", msgs)
	}
}
