package smo

import (
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/dataset"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/sdl"
)

func TestRegistryVersioning(t *testing.T) {
	reg := NewRegistry(sdl.New())
	if _, _, ok := reg.Latest("m"); ok {
		t.Error("empty registry returned a model")
	}
	v1, err := reg.Publish("m", []byte("bundle-1"))
	if err != nil || v1 != 1 {
		t.Fatalf("v1=%d err=%v", v1, err)
	}
	v2, _ := reg.Publish("m", []byte("bundle-2"))
	if v2 != 2 {
		t.Fatalf("v2=%d", v2)
	}
	data, v, ok := reg.Latest("m")
	if !ok || v != 2 || string(data) != "bundle-2" {
		t.Errorf("Latest = %q v%d ok=%v", data, v, ok)
	}
	old, ok := reg.Get("m", 1)
	if !ok || string(old) != "bundle-1" {
		t.Errorf("Get v1 = %q", old)
	}
	if vs := reg.Versions("m"); len(vs) != 2 || vs[0] != 1 || vs[1] != 2 {
		t.Errorf("Versions = %v", vs)
	}
	if _, err := reg.Publish("", nil); err == nil {
		t.Error("empty name accepted")
	}
}

func TestTrainingJobAndDeploy(t *testing.T) {
	benign, err := dataset.GenerateBenign(dataset.BenignConfig{Sessions: 20, Fleet: 5, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(sdl.New())
	job := TrainingJob{Opts: mobiwatch.TrainOptions{Epochs: 3, Seed: 1}}
	models, version, err := job.Run(reg, benign)
	if err != nil {
		t.Fatal(err)
	}
	if models == nil || version != 1 {
		t.Fatalf("models=%v version=%d", models, version)
	}
	deployed, v, err := Deploy(reg, "mobiwatch")
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 || deployed.Window != models.Window || deployed.AEThreshold != models.AEThreshold {
		t.Errorf("deployed bundle mismatch: v=%d", v)
	}
	// Retraining publishes a new version.
	if _, v2, err := job.Run(reg, benign); err != nil || v2 != 2 {
		t.Errorf("v2=%d err=%v", v2, err)
	}
}

func TestDeployErrors(t *testing.T) {
	reg := NewRegistry(sdl.New())
	if _, _, err := Deploy(reg, "absent"); err == nil {
		t.Error("absent model deployed")
	}
	reg.Publish("broken", []byte("not a bundle"))
	if _, _, err := Deploy(reg, "broken"); err == nil {
		t.Error("broken bundle deployed")
	}
}

func TestTrainingJobBadData(t *testing.T) {
	reg := NewRegistry(sdl.New())
	job := TrainingJob{}
	if _, _, err := job.Run(reg, nil); err == nil {
		t.Error("empty trace trained")
	}
}

func TestA1Policies(t *testing.T) {
	a1 := NewA1(sdl.New())
	if err := a1.Put(Policy{}); err == nil {
		t.Error("policy without ID accepted")
	}
	events, cancel := a1.Watch(4)
	defer cancel()

	p := Policy{ID: "sec-1", ThresholdPercentile: 95, ReportPeriodMS: 100, AutoRespond: true}
	if err := a1.Put(p); err != nil {
		t.Fatal(err)
	}
	got, ok := a1.Get("sec-1")
	if !ok || got.ThresholdPercentile != 95 || !got.AutoRespond {
		t.Errorf("Get = %+v ok=%v", got, ok)
	}
	if got.UpdatedAt.IsZero() {
		t.Error("UpdatedAt not stamped")
	}
	select {
	case ev := <-events:
		if ev.Key != "sec-1" {
			t.Errorf("event key = %q", ev.Key)
		}
	case <-time.After(time.Second):
		t.Fatal("no watch event")
	}
	if ids := a1.List(); len(ids) != 1 || ids[0] != "sec-1" {
		t.Errorf("List = %v", ids)
	}
	if !a1.Delete("sec-1") {
		t.Error("Delete returned false")
	}
	if _, ok := a1.Get("sec-1"); ok {
		t.Error("policy survives delete")
	}
}
