// Package smo implements the Service Management and Orchestration layer
// (non-real-time RIC) of the framework: the rApp-side model training
// workflow ("time-insensitive tasks, e.g., ML model training, are handled
// within the SMO", §2.1), a versioned model registry backed by the SDL,
// and A1-style policy distribution to xApps (Figure 1's A1 interface).
package smo

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/sdl"
)

// Registry stores versioned model bundles in the SDL, the hand-off point
// of the SMO "Train → Deploy" workflow (Figure 3).
type Registry struct {
	store *sdl.Store
}

// NewRegistry wraps an SDL store.
func NewRegistry(store *sdl.Store) *Registry { return &Registry{store: store} }

const registryNS = "smo/models"

// Publish stores a new bundle version under name and returns its version
// number (starting at 1).
func (r *Registry) Publish(name string, bundle []byte) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("smo: model name required")
	}
	versions := r.Versions(name)
	next := 1
	if len(versions) > 0 {
		next = versions[len(versions)-1] + 1
	}
	r.store.Set(registryNS, versionKey(name, next), bundle)
	r.store.Set(registryNS, name+"/latest", []byte(strconv.Itoa(next)))
	return next, nil
}

// Latest returns the newest bundle and its version.
func (r *Registry) Latest(name string) ([]byte, int, bool) {
	raw, _, ok := r.store.Get(registryNS, name+"/latest")
	if !ok {
		return nil, 0, false
	}
	v, err := strconv.Atoi(string(raw))
	if err != nil {
		return nil, 0, false
	}
	bundle, _, ok := r.store.Get(registryNS, versionKey(name, v))
	return bundle, v, ok
}

// Get returns a specific version.
func (r *Registry) Get(name string, version int) ([]byte, bool) {
	bundle, _, ok := r.store.Get(registryNS, versionKey(name, version))
	return bundle, ok
}

// Versions lists the stored version numbers, ascending.
func (r *Registry) Versions(name string) []int {
	keys := r.store.Keys(registryNS, name+"/v")
	var out []int
	for _, k := range keys {
		v, err := strconv.Atoi(k[len(name)+2:])
		if err == nil {
			out = append(out, v)
		}
	}
	return out
}

func versionKey(name string, v int) string {
	return fmt.Sprintf("%s/v%08d", name, v)
}

// TrainingJob is the rApp workflow: fit MobiWatch models on collected
// benign telemetry and publish the bundle for deployment.
type TrainingJob struct {
	// Name is the registry entry (default "mobiwatch").
	Name string
	// Opts parameterizes the fit.
	Opts mobiwatch.TrainOptions
}

// Run trains and publishes; it returns the models and their version.
func (j TrainingJob) Run(reg *Registry, benign mobiflow.Trace) (*mobiwatch.Models, int, error) {
	name := j.Name
	if name == "" {
		name = "mobiwatch"
	}
	models, err := mobiwatch.Train(benign, j.Opts)
	if err != nil {
		return nil, 0, fmt.Errorf("smo: training: %w", err)
	}
	bundle, err := models.Save()
	if err != nil {
		return nil, 0, fmt.Errorf("smo: serializing bundle: %w", err)
	}
	version, err := reg.Publish(name, bundle)
	if err != nil {
		return nil, 0, err
	}
	return models, version, nil
}

// Deploy loads the latest published bundle for an xApp.
func Deploy(reg *Registry, name string) (*mobiwatch.Models, int, error) {
	bundle, version, ok := reg.Latest(name)
	if !ok {
		return nil, 0, fmt.Errorf("smo: no published model %q", name)
	}
	models, err := mobiwatch.Load(bundle)
	if err != nil {
		return nil, 0, fmt.Errorf("smo: loading bundle %q v%d: %w", name, version, err)
	}
	return models, version, nil
}

// Policy is an A1-style operator policy consumed by xApps.
type Policy struct {
	// ID names the policy instance.
	ID string `json:"id"`
	// ThresholdPercentile overrides MobiWatch's detection percentile.
	ThresholdPercentile float64 `json:"threshold_percentile,omitempty"`
	// ReportPeriodMS overrides the E2 report interval.
	ReportPeriodMS int `json:"report_period_ms,omitempty"`
	// AutoRespond enables closed-loop control without human approval.
	AutoRespond bool `json:"auto_respond"`
	// MitigationMode switches the mitigation engine between "off",
	// "dry-run", and "enforce". Empty leaves the engine unchanged.
	MitigationMode string `json:"mitigation_mode,omitempty"`
	// DenyActions lists E2SM-XRC action classes (by their canonical
	// names, e.g. "block-tmsi") the engine must never issue. A non-nil
	// empty list clears a previous deny list.
	DenyActions []string `json:"deny_actions,omitempty"`
	// MitigationTTLMS overrides the rollback TTL for reversible actions.
	MitigationTTLMS int `json:"mitigation_ttl_ms,omitempty"`
	// UpdatedAt stamps the last change.
	UpdatedAt time.Time `json:"updated_at"`
}

// Encode renders the policy in its A1 wire form (JSON), shared by the
// SDL distribution path and the federation bus fan-out.
func (p Policy) Encode() ([]byte, error) {
	data, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("smo: encoding policy: %w", err)
	}
	return data, nil
}

// ParsePolicy parses the A1 wire form produced by Encode.
func ParsePolicy(data []byte) (Policy, error) {
	var p Policy
	if err := json.Unmarshal(data, &p); err != nil {
		return Policy{}, fmt.Errorf("smo: decoding policy: %w", err)
	}
	return p, nil
}

const policyNS = "a1/policies"

// A1 distributes policies through the SDL.
type A1 struct {
	store *sdl.Store
	clock func() time.Time
}

// NewA1 wraps an SDL store.
func NewA1(store *sdl.Store) *A1 { return &A1{store: store, clock: time.Now} }

// Put creates or updates a policy.
func (a *A1) Put(p Policy) error {
	if p.ID == "" {
		return fmt.Errorf("smo: policy ID required")
	}
	p.UpdatedAt = a.clock()
	data, err := p.Encode()
	if err != nil {
		return err
	}
	a.store.Set(policyNS, p.ID, data)
	return nil
}

// Get fetches a policy by ID.
func (a *A1) Get(id string) (Policy, bool) {
	raw, _, ok := a.store.Get(policyNS, id)
	if !ok {
		return Policy{}, false
	}
	p, err := ParsePolicy(raw)
	if err != nil {
		return Policy{}, false
	}
	return p, true
}

// Delete removes a policy.
func (a *A1) Delete(id string) bool { return a.store.Delete(policyNS, id) }

// List returns all policy IDs.
func (a *A1) List() []string { return a.store.Keys(policyNS, "") }

// Watch streams policy changes to an xApp.
func (a *A1) Watch(buffer int) (<-chan sdl.Event, func()) {
	return a.store.Watch(policyNS, "", buffer)
}
