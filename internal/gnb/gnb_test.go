package gnb

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/cell"
	"github.com/6g-xsec/xsec/internal/corenet"
	"github.com/6g-xsec/xsec/internal/nas"
	"github.com/6g-xsec/xsec/internal/pcaplite"
	"github.com/6g-xsec/xsec/internal/rrc"
)

var testK = [nas.KeySize]byte{1, 2, 3, 4}

const testSUPI = cell.SUPI("imsi-001010000000001")

func newTestGNB(t *testing.T, capture *pcaplite.Writer) *GNB {
	t.Helper()
	amf := corenet.NewAMF(7)
	amf.AddSubscriber(corenet.Subscriber{SUPI: testSUPI, K: testK})
	clock := time.Unix(1700000000, 0)
	g, err := New(Config{
		NodeID: "gnb-test",
		AMF:    amf,
		Clock: func() time.Time {
			clock = clock.Add(time.Millisecond)
			return clock
		},
		Capture: capture,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{NodeID: "x"}); err == nil {
		t.Error("missing AMF accepted")
	}
	if _, err := New(Config{AMF: corenet.NewAMF(1)}); err == nil {
		t.Error("missing NodeID accepted")
	}
}

func TestAttachAllocatesDistinctRNTIs(t *testing.T) {
	g := newTestGNB(t, nil)
	seen := make(map[cell.RNTI]bool)
	for i := 0; i < 50; i++ {
		l := g.Attach()
		if seen[l.RNTI()] {
			t.Fatalf("duplicate RNTI %s", l.RNTI())
		}
		seen[l.RNTI()] = true
	}
	if g.ActiveUEs() != 50 {
		t.Errorf("ActiveUEs = %d", g.ActiveUEs())
	}
}

// driveRegistration pushes a full benign attach through raw link calls.
func driveRegistration(t *testing.T, g *GNB) *Link {
	t.Helper()
	link := g.Attach()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(link.SendRRC(&rrc.SetupRequest{Identity: rrc.UEIdentity{Kind: rrc.IdentityRandom, Random: 42}, Cause: cell.CauseMOSignalling}))
	if m, ok := link.TryRecv(); !ok || m.Type() != rrc.TypeSetup {
		t.Fatalf("expected RRCSetup, got %v", m)
	}
	suci, _ := cell.SUCIFromSUPI(testSUPI, 0)
	reg := &nas.RegistrationRequest{Identity: nas.MobileIdentity{Type: nas.IdentitySUCI, SUCI: suci}, Capability: corenet.CapAll}
	must(link.SendRRC(&rrc.SetupComplete{NASPDU: nas.Encode(reg)}))

	// Auth request comes down; answer it.
	dl, ok := link.TryRecv()
	if !ok {
		t.Fatal("no auth request")
	}
	authReq, err := nas.Decode(dl.(*rrc.DLInformationTransfer).NASPDU)
	must(err)
	res := nas.DeriveRES(testK, authReq.(*nas.AuthenticationRequest).RAND)
	must(link.SendRRC(&rrc.ULInformationTransfer{NASPDU: nas.Encode(&nas.AuthenticationResponse{RES: res})}))

	// NAS security mode.
	dl, _ = link.TryRecv()
	if _, err := nas.Decode(dl.(*rrc.DLInformationTransfer).NASPDU); err != nil {
		t.Fatal(err)
	}
	must(link.SendRRC(&rrc.ULInformationTransfer{NASPDU: nas.Encode(&nas.SecurityModeComplete{})}))

	// AS security mode.
	dl, ok = link.TryRecv()
	if !ok || dl.Type() != rrc.TypeSecurityModeCommand {
		t.Fatalf("expected RRC SMC, got %v", dl)
	}
	must(link.SendRRC(&rrc.SecurityModeComplete{}))

	// Reconfiguration with the registration accept.
	dl, ok = link.TryRecv()
	if !ok || dl.Type() != rrc.TypeReconfiguration {
		t.Fatalf("expected Reconfiguration, got %v", dl)
	}
	reconf := dl.(*rrc.Reconfiguration)
	if len(reconf.NASPDU) == 0 {
		t.Fatal("reconfiguration missing registration accept")
	}
	accept, err := nas.Decode(reconf.NASPDU)
	must(err)
	if _, ok := accept.(*nas.RegistrationAccept); !ok {
		t.Fatalf("piggybacked NAS = %T", accept)
	}
	must(link.SendRRC(&rrc.ReconfigurationComplete{}))
	return link
}

func TestBenignRegistrationTelemetry(t *testing.T) {
	g := newTestGNB(t, nil)
	driveRegistration(t, g)

	tr := g.Records()
	wantMsgs := []string{
		"RRCSetupRequest", "RRCSetup", "RRCSetupComplete",
		"RegistrationRequest", "AuthenticationRequest", "AuthenticationResponse",
		"NASSecurityModeCommand", "NASSecurityModeComplete",
		"RRCSecurityModeCommand", "RRCSecurityModeComplete",
		"RRCReconfiguration", "RegistrationAccept", "RRCReconfigurationComplete",
	}
	if len(tr) != len(wantMsgs) {
		var got []string
		for _, r := range tr {
			got = append(got, r.Msg)
		}
		t.Fatalf("telemetry sequence:\n got %v\nwant %v", got, wantMsgs)
	}
	for i, want := range wantMsgs {
		if tr[i].Msg != want {
			t.Errorf("record %d = %s, want %s", i, tr[i].Msg, want)
		}
		if tr[i].OutOfOrder {
			t.Errorf("record %d (%s) flagged out-of-order", i, tr[i].Msg)
		}
	}
	last := tr[len(tr)-1]
	if !last.SecurityOn || last.CipherAlg.Null() || last.IntegAlg.Null() {
		t.Errorf("final security state: on=%v %s/%s", last.SecurityOn, last.CipherAlg, last.IntegAlg)
	}
	if last.TMSI == cell.InvalidTMSI {
		t.Error("no TMSI in final telemetry")
	}
}

func TestDeregistrationReleasesContext(t *testing.T) {
	g := newTestGNB(t, nil)
	link := driveRegistration(t, g)
	if err := link.SendRRC(&rrc.ULInformationTransfer{NASPDU: nas.Encode(&nas.DeregistrationRequest{})}); err != nil {
		t.Fatal(err)
	}
	// Deregistration accept then RRC release.
	sawRelease := false
	for {
		m, ok := link.TryRecv()
		if !ok {
			break
		}
		if m.Type() == rrc.TypeRelease {
			sawRelease = true
		}
	}
	if !sawRelease {
		t.Error("no RRC release after deregistration")
	}
	if g.ActiveUEs() != 0 {
		t.Errorf("ActiveUEs = %d after deregistration", g.ActiveUEs())
	}
	if err := link.SendRRC(&rrc.SetupRequest{}); !errors.Is(err, ErrReleased) {
		t.Errorf("send on released context: err = %v", err)
	}
}

func TestRetransmissionRecordedOnce(t *testing.T) {
	g := newTestGNB(t, nil)
	link := g.Attach()
	msg := &rrc.SetupRequest{Identity: rrc.UEIdentity{Kind: rrc.IdentityRandom, Random: 1}}
	link.SendRRC(msg)
	link.SendRRC(msg) // duplicate
	tr := g.Records()
	if len(tr) != 3 { // request, DL setup, retransmitted request
		t.Fatalf("records = %d", len(tr))
	}
	retx := 0
	for _, r := range tr {
		if r.Retransmission {
			retx++
		}
	}
	if retx != 1 {
		t.Errorf("retransmissions recorded = %d, want 1", retx)
	}
	// Only one RRCSetup went downlink (no duplicate response).
	count := 0
	for {
		if _, ok := link.TryRecv(); !ok {
			break
		}
		count++
	}
	if count != 1 {
		t.Errorf("downlink responses = %d, want 1", count)
	}
}

func TestBlockedTMSIRejected(t *testing.T) {
	g := newTestGNB(t, nil)
	g.BlockTMSI(0xBEEF)
	link := g.Attach()
	link.SendRRC(&rrc.SetupRequest{Identity: rrc.UEIdentity{Kind: rrc.IdentityTMSI, TMSI: 0xBEEF}})
	m, ok := link.TryRecv()
	if !ok || m.Type() != rrc.TypeReject {
		t.Fatalf("expected RRCReject, got %v", m)
	}
	if g.ActiveUEs() != 0 {
		t.Error("blocked UE context not released")
	}
}

func TestReleaseUEControl(t *testing.T) {
	g := newTestGNB(t, nil)
	link := g.Attach()
	link.SendRRC(&rrc.SetupRequest{})
	if err := g.ReleaseUE(link.UEID()); err != nil {
		t.Fatal(err)
	}
	if err := g.ReleaseUE(999); !errors.Is(err, ErrNoSuchUE) {
		t.Errorf("err = %v, want ErrNoSuchUE", err)
	}
}

func TestDrainRecords(t *testing.T) {
	g := newTestGNB(t, nil)
	link := g.Attach()
	link.SendRRC(&rrc.SetupRequest{})
	if n := len(g.DrainRecords()); n == 0 {
		t.Fatal("drain returned nothing")
	}
	if n := len(g.DrainRecords()); n != 0 {
		t.Errorf("second drain = %d records", n)
	}
}

func TestCaptureProducesParseableStreams(t *testing.T) {
	var buf bytes.Buffer
	w := pcaplite.NewWriter(&buf)
	g := newTestGNB(t, w)
	driveRegistration(t, g)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	packets, err := pcaplite.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var f1, ng int
	for _, p := range packets {
		switch p.Iface {
		case pcaplite.IfF1AP:
			f1++
		case pcaplite.IfNGAP:
			ng++
		}
	}
	if f1 == 0 || ng == 0 {
		t.Errorf("capture: f1=%d ngap=%d", f1, ng)
	}
}

func TestRecvBlockingAndTimeout(t *testing.T) {
	g := newTestGNB(t, nil)
	link := g.Attach()
	if _, err := link.Recv(10 * time.Millisecond); err == nil {
		t.Error("Recv on empty queue did not time out")
	}
	link.SendRRC(&rrc.SetupRequest{})
	if m, err := link.Recv(time.Second); err != nil || m.Type() != rrc.TypeSetup {
		t.Errorf("Recv = %v, %v", m, err)
	}
}
