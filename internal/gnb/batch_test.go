package gnb

import (
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/asn1lite"
	"github.com/6g-xsec/xsec/internal/corenet"
	"github.com/6g-xsec/xsec/internal/e2ap"
	"github.com/6g-xsec/xsec/internal/e2sm"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/ric"
	"github.com/6g-xsec/xsec/internal/sdl"
)

// TestReportBatchesPerUE injects interleaved telemetry for several UEs
// and asserts the agent emits UE-scoped indications: every indication
// carries records of exactly one UE (matching its header UEID), chunks
// respect MaxRecords, per-UE sequence order is preserved, and nothing is
// lost or duplicated.
func TestReportBatchesPerUE(t *testing.T) {
	amf := corenet.NewAMF(7)
	g, err := New(Config{
		NodeID: "gnb-batch",
		AMF:    amf,
		Batch:  BatchPolicy{MaxRecords: 4},
	})
	if err != nil {
		t.Fatal(err)
	}

	p := ric.NewPlatform(sdl.New())
	t.Cleanup(p.Close)
	ricEnd, nodeEnd := e2ap.Pipe()
	go p.AttachNode(ricEnd)
	go g.ServeE2(nodeEnd)
	deadline := time.Now().Add(2 * time.Second)
	for len(p.Nodes()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("agent did not attach")
		}
		time.Sleep(time.Millisecond)
	}

	x, _ := p.RegisterXApp("batch-collector")
	sub := subscribe(t, x, "gnb-batch", 5*time.Millisecond)
	defer sub.Delete()

	// 3 UEs × 6 records each, interleaved in round-robin arrival order.
	const ues, perUE = 3, 6
	var tr mobiflow.Trace
	var seq uint64
	base := time.Unix(1700000000, 0)
	for i := 0; i < perUE; i++ {
		for ue := uint64(1); ue <= ues; ue++ {
			seq++
			tr = append(tr, mobiflow.Record{
				Seq: seq, UEID: ue, Msg: "RRCSetupRequest",
				Timestamp: base.Add(time.Duration(seq) * time.Millisecond),
			})
		}
	}
	g.InjectTelemetry(tr)

	lastSeq := make(map[uint64]uint64)
	counts := make(map[uint64]int)
	total := 0
	timeout := time.After(2 * time.Second)
	for total < ues*perUE {
		select {
		case ind := <-sub.C():
			var hdr e2sm.IndicationHeader
			if err := asn1lite.Unmarshal(ind.Header, &hdr); err != nil {
				t.Fatal(err)
			}
			if hdr.UEID == 0 {
				t.Fatalf("indication without UE scope: %+v", hdr)
			}
			if got := e2sm.PeekIndicationUE(ind.Header); got != hdr.UEID {
				t.Fatalf("PeekIndicationUE = %d, decoded header UEID = %d", got, hdr.UEID)
			}
			msg, err := e2sm.DecodeIndicationMessage(ind.Message)
			if err != nil {
				t.Fatal(err)
			}
			if len(msg.Records) == 0 || len(msg.Records) > 4 {
				t.Fatalf("chunk size %d violates MaxRecords=4", len(msg.Records))
			}
			for _, rec := range msg.Records {
				if rec.UEID != hdr.UEID {
					t.Fatalf("record for UE %d in indication scoped to UE %d", rec.UEID, hdr.UEID)
				}
				if rec.Seq <= lastSeq[rec.UEID] {
					t.Fatalf("UE %d: seq %d after %d (order broken)", rec.UEID, rec.Seq, lastSeq[rec.UEID])
				}
				lastSeq[rec.UEID] = rec.Seq
				counts[rec.UEID]++
				total++
			}
		case <-timeout:
			t.Fatalf("timed out with %d/%d records delivered", total, ues*perUE)
		}
	}
	for ue := uint64(1); ue <= ues; ue++ {
		if counts[ue] != perUE {
			t.Errorf("UE %d: %d records, want %d", ue, counts[ue], perUE)
		}
	}
}

// TestBatchPolicyDefaults pins the clamping rules the report loop
// applies to a zero or out-of-range policy.
func TestBatchPolicyDefaults(t *testing.T) {
	amf := corenet.NewAMF(7)
	g, err := New(Config{NodeID: "gnb-defaults", AMF: amf})
	if err != nil {
		t.Fatal(err)
	}
	if g.cfg.Batch.MaxRecords != 0 || g.cfg.Batch.MaxAge != 0 {
		t.Fatalf("zero policy mutated at construction: %+v", g.cfg.Batch)
	}
	// The defaults are applied per subscription in report(); exercise
	// one tick end to end with an explicit sub-period MaxAge.
	g2, err := New(Config{
		NodeID: "gnb-maxage",
		AMF:    amf,
		Batch:  BatchPolicy{MaxAge: time.Millisecond, MaxRecords: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := ric.NewPlatform(sdl.New())
	t.Cleanup(p.Close)
	ricEnd, nodeEnd := e2ap.Pipe()
	go p.AttachNode(ricEnd)
	go g2.ServeE2(nodeEnd)
	deadline := time.Now().Add(2 * time.Second)
	for len(p.Nodes()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("agent did not attach")
		}
		time.Sleep(time.Millisecond)
	}
	x, _ := p.RegisterXApp("maxage-collector")
	// Long period: the MaxAge bound, not the period, must flush this.
	sub := subscribe(t, x, "gnb-maxage", 500*time.Millisecond)
	defer sub.Delete()
	g2.InjectTelemetry(mobiflow.Trace{{Seq: 1, UEID: 1, Msg: "RRCSetupRequest", Timestamp: time.Now()}})
	select {
	case <-sub.C():
		// Flushed well before the 500ms period: MaxAge took effect.
	case <-time.After(250 * time.Millisecond):
		t.Fatal("MaxAge did not flush ahead of the period")
	}
}
