package gnb

import (
	"errors"
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/asn1lite"
	"github.com/6g-xsec/xsec/internal/cell"
	"github.com/6g-xsec/xsec/internal/e2ap"
	"github.com/6g-xsec/xsec/internal/e2sm"
	"github.com/6g-xsec/xsec/internal/ric"
	"github.com/6g-xsec/xsec/internal/rrc"
	"github.com/6g-xsec/xsec/internal/sdl"
	"github.com/6g-xsec/xsec/internal/wire"
)

// agentEnv attaches a gNB agent to a platform over an in-process pipe.
func agentEnv(t *testing.T) (*ric.Platform, *GNB) {
	t.Helper()
	p := ric.NewPlatform(sdl.New())
	t.Cleanup(p.Close)
	g := newTestGNB(t, nil)

	ricEnd, nodeEnd := e2ap.Pipe()
	go p.AttachNode(ricEnd)
	go g.ServeE2(nodeEnd)
	deadline := time.Now().Add(2 * time.Second)
	for len(p.Nodes()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("agent did not attach")
		}
		time.Sleep(time.Millisecond)
	}
	return p, g
}

func TestAgentAdvertisesServiceModels(t *testing.T) {
	p, _ := agentEnv(t)
	nodes := p.Nodes()
	if len(nodes) != 1 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	var ids []uint16
	for _, rf := range nodes[0].RANFunctions {
		ids = append(ids, rf.ID)
	}
	if len(ids) != 2 || ids[0] != e2sm.MobiFlowRANFunctionID || ids[1] != e2sm.XRCRANFunctionID {
		t.Errorf("RAN functions = %v", ids)
	}
}

func subscribe(t *testing.T, x *ric.XApp, nodeID string, period time.Duration) *ric.Subscription {
	t.Helper()
	trigger := asn1lite.Marshal(&e2sm.EventTrigger{Period: period})
	sub, err := x.Subscribe(nodeID, e2sm.MobiFlowRANFunctionID, trigger,
		[]e2ap.Action{{ID: 1, Type: e2ap.ActionReport}}, 64)
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

func TestAgentReportsTelemetry(t *testing.T) {
	p, g := agentEnv(t)
	x, _ := p.RegisterXApp("collector")
	sub := subscribe(t, x, "gnb-test", 5*time.Millisecond)

	driveRegistration(t, g)

	select {
	case ind := <-sub.C():
		var hdr e2sm.IndicationHeader
		if err := asn1lite.Unmarshal(ind.Header, &hdr); err != nil {
			t.Fatal(err)
		}
		if hdr.NodeID != "gnb-test" || hdr.BatchSeq == 0 {
			t.Errorf("header = %+v", hdr)
		}
		msg, err := e2sm.DecodeIndicationMessage(ind.Message)
		if err != nil {
			t.Fatal(err)
		}
		if len(msg.Records) == 0 || msg.Records[0].Msg != "RRCSetupRequest" {
			t.Errorf("first record = %+v", msg.Records[0])
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no indication")
	}
	if err := sub.Delete(); err != nil {
		t.Fatal(err)
	}
}

func TestAgentRejectsBadSubscriptions(t *testing.T) {
	p, _ := agentEnv(t)
	x, _ := p.RegisterXApp("bad")

	// Wrong RAN function.
	if _, err := x.Subscribe("gnb-test", 99, asn1lite.Marshal(&e2sm.EventTrigger{Period: time.Millisecond}),
		[]e2ap.Action{{ID: 1, Type: e2ap.ActionReport}}, 1); !errors.Is(err, ric.ErrSubscriptionFailed) {
		t.Errorf("wrong fn: err = %v", err)
	}
	// Invalid trigger.
	if _, err := x.Subscribe("gnb-test", e2sm.MobiFlowRANFunctionID, []byte{0xFF},
		[]e2ap.Action{{ID: 1, Type: e2ap.ActionReport}}, 1); !errors.Is(err, ric.ErrSubscriptionFailed) {
		t.Errorf("bad trigger: err = %v", err)
	}
	// No report action.
	if _, err := x.Subscribe("gnb-test", e2sm.MobiFlowRANFunctionID,
		asn1lite.Marshal(&e2sm.EventTrigger{Period: time.Millisecond}),
		[]e2ap.Action{{ID: 1, Type: e2ap.ActionPolicy}}, 1); !errors.Is(err, ric.ErrSubscriptionFailed) {
		t.Errorf("no report action: err = %v", err)
	}
}

func TestAgentControlActions(t *testing.T) {
	p, g := agentEnv(t)
	x, _ := p.RegisterXApp("controller")

	link := g.Attach()
	link.SendRRC(&rrc.SetupRequest{})

	// Release the UE.
	ctrl := asn1lite.Marshal(&e2sm.ControlRequest{Action: e2sm.ControlReleaseUE, UEID: link.UEID()})
	if err := x.Control("gnb-test", e2sm.XRCRANFunctionID, nil, ctrl); err != nil {
		t.Fatal(err)
	}
	if g.ActiveUEs() != 0 {
		t.Error("UE not released by control")
	}
	// Releasing again fails cleanly.
	if err := x.Control("gnb-test", e2sm.XRCRANFunctionID, nil, ctrl); !errors.Is(err, ric.ErrControlFailed) {
		t.Errorf("double release: err = %v", err)
	}
	// Block a TMSI and verify at the data plane.
	block := asn1lite.Marshal(&e2sm.ControlRequest{Action: e2sm.ControlBlockTMSI, TMSI: 0xFEED})
	if err := x.Control("gnb-test", e2sm.XRCRANFunctionID, nil, block); err != nil {
		t.Fatal(err)
	}
	l2 := g.Attach()
	l2.SendRRC(&rrc.SetupRequest{Identity: rrc.UEIdentity{Kind: rrc.IdentityTMSI, TMSI: 0xFEED}})
	if m, ok := l2.TryRecv(); !ok || m.Type() != rrc.TypeReject {
		t.Errorf("blocked TMSI got %v", m)
	}
	// Wrong RAN function for control.
	if err := x.Control("gnb-test", e2sm.MobiFlowRANFunctionID, nil, ctrl); !errors.Is(err, ric.ErrControlFailed) {
		t.Errorf("wrong fn control: err = %v", err)
	}
	// Undecodable control message.
	if err := x.Control("gnb-test", e2sm.XRCRANFunctionID, nil, []byte{0xFF}); !errors.Is(err, ric.ErrControlFailed) {
		t.Errorf("garbage control: err = %v", err)
	}
}

// TestControlFailureUnknownActionRoundTrip drives a control request with
// an undefined action code through a raw E2 connection, so the resulting
// ControlFailure is observed as the peer decodes it — proving the failure
// PDU survives the e2ap encode/decode round trip intact.
func TestControlFailureUnknownActionRoundTrip(t *testing.T) {
	g := newTestGNB(t, nil)
	ricEnd, nodeEnd := e2ap.Pipe()
	go g.ServeE2(nodeEnd)

	setup, err := ricEnd.Recv()
	if err != nil || setup.Type != e2ap.TypeE2SetupRequest {
		t.Fatalf("setup = %+v err=%v", setup, err)
	}
	if err := ricEnd.Send(&e2ap.Message{Type: e2ap.TypeE2SetupResponse, NodeID: "ric-test"}); err != nil {
		t.Fatal(err)
	}

	reqID := e2ap.RequestID{Requestor: 7, Instance: 1}
	ctrl := asn1lite.Marshal(&e2sm.ControlRequest{Action: e2sm.ControlAction(250), UEID: 1})
	if err := ricEnd.Send(&e2ap.Message{
		Type: e2ap.TypeControlRequest, RequestID: reqID,
		RANFunctionID: e2sm.XRCRANFunctionID, ControlMessage: ctrl,
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := ricEnd.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != e2ap.TypeControlFailure || resp.RequestID != reqID {
		t.Fatalf("response = %+v", resp)
	}
	if resp.Cause != "unknown control action 250" {
		t.Errorf("cause = %q", resp.Cause)
	}
	// The decoded failure re-encodes to the identical PDU.
	reenc, err := e2ap.Decode(e2ap.Encode(resp))
	if err != nil {
		t.Fatal(err)
	}
	if reenc.Type != resp.Type || reenc.RequestID != resp.RequestID || reenc.Cause != resp.Cause {
		t.Errorf("re-encoded failure = %+v", reenc)
	}
}

// TestDuplicateBlockAndUnblockTMSI covers the reversible mitigation pair:
// blocking twice is idempotent (both controls ack), and unblocking
// restores attach service for the identity.
func TestDuplicateBlockAndUnblockTMSI(t *testing.T) {
	p, g := agentEnv(t)
	x, _ := p.RegisterXApp("mitigator")

	const tmsi = cell.TMSI(0xCAFE)
	block := asn1lite.Marshal(&e2sm.ControlRequest{Action: e2sm.ControlBlockTMSI, TMSI: tmsi})
	for i := 0; i < 2; i++ { // duplicate block: both ack, one entry
		if err := x.Control("gnb-test", e2sm.XRCRANFunctionID, nil, block); err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
	}
	if g.BlockedTMSIs() != 1 {
		t.Errorf("blocked TMSIs = %d, want 1", g.BlockedTMSIs())
	}
	attempt := func() rrc.Message {
		l := g.Attach()
		l.SendRRC(&rrc.SetupRequest{Identity: rrc.UEIdentity{Kind: rrc.IdentityTMSI, TMSI: tmsi}})
		m, ok := l.TryRecv()
		if !ok {
			t.Fatal("no downlink response to setup request")
		}
		return m
	}
	if m := attempt(); m.Type() != rrc.TypeReject {
		t.Fatalf("blocked TMSI got %v, want reject", m.Type())
	}

	unblock := asn1lite.Marshal(&e2sm.ControlRequest{Action: e2sm.ControlUnblockTMSI, TMSI: tmsi})
	if err := x.Control("gnb-test", e2sm.XRCRANFunctionID, nil, unblock); err != nil {
		t.Fatal(err)
	}
	if g.BlockedTMSIs() != 0 {
		t.Errorf("blocked TMSIs after unblock = %d", g.BlockedTMSIs())
	}
	if m := attempt(); m.Type() != rrc.TypeSetup {
		t.Errorf("unblocked TMSI got %v, want RRCSetup", m.Type())
	}
	// Unblocking an unblocked TMSI still acks (no-op rollback retry).
	if err := x.Control("gnb-test", e2sm.XRCRANFunctionID, nil, unblock); err != nil {
		t.Errorf("no-op unblock: %v", err)
	}
}

func TestAgentOverTCP(t *testing.T) {
	p := ric.NewPlatform(sdl.New())
	defer p.Close()
	l, err := wire.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go p.ServeE2(l)

	g := newTestGNB(t, nil)
	conn, err := wire.Dial(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	go g.ServeE2(e2ap.NewEndpoint(conn))

	deadline := time.Now().Add(2 * time.Second)
	for len(p.Nodes()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("TCP agent did not attach")
		}
		time.Sleep(time.Millisecond)
	}

	// Full telemetry round trip over real sockets.
	x, _ := p.RegisterXApp("tcp-collector")
	sub := subscribe(t, x, "gnb-test", 5*time.Millisecond)
	driveRegistration(t, g)
	select {
	case ind := <-sub.C():
		msg, err := e2sm.DecodeIndicationMessage(ind.Message)
		if err != nil || len(msg.Records) == 0 {
			t.Fatalf("bad indication: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no indication over TCP")
	}
	_ = cell.RNTI(0)
}

func TestAgentSetupRejectedByRIC(t *testing.T) {
	// Two gNBs with the same node ID: the second setup fails and
	// ServeE2 returns an error.
	p := ric.NewPlatform(sdl.New())
	defer p.Close()
	g1 := newTestGNB(t, nil)
	g2 := newTestGNB(t, nil)

	r1, n1 := e2ap.Pipe()
	go p.AttachNode(r1)
	go g1.ServeE2(n1)
	deadline := time.Now().Add(2 * time.Second)
	for len(p.Nodes()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first agent did not attach")
		}
		time.Sleep(time.Millisecond)
	}

	r2, n2 := e2ap.Pipe()
	go p.AttachNode(r2)
	errc := make(chan error, 1)
	go func() { errc <- g2.ServeE2(n2) }()
	select {
	case err := <-errc:
		if err == nil {
			t.Error("duplicate node setup succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("second agent did not fail")
	}
}
