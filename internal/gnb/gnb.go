// Package gnb simulates an O-RAN gNodeB: the O-DU (RNTI allocation, RRC
// lower procedures), the O-CU (RRC/NAS relay, per-UE contexts, F1/NG
// interworking), and the RIC agent that extracts MOBIFLOW telemetry and
// serves the E2 interface (Figure 3 of the paper).
//
// The gNB processes each uplink RRC PDU synchronously through
// DU → CU → AMF and queues resulting downlink PDUs on the UE's link,
// which keeps multi-UE scenarios deterministic under a virtual clock
// while remaining safe for concurrent UE goroutines.
package gnb

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/6g-xsec/xsec/internal/cell"
	"github.com/6g-xsec/xsec/internal/corenet"
	"github.com/6g-xsec/xsec/internal/f1ap"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/nas"
	"github.com/6g-xsec/xsec/internal/ngap"
	"github.com/6g-xsec/xsec/internal/pcaplite"
	"github.com/6g-xsec/xsec/internal/rrc"
)

// Errors returned by gNB operations.
var (
	ErrReleased = errors.New("gnb: UE context released")
	ErrNoSuchUE = errors.New("gnb: no such UE context")
)

// Config configures a simulated gNB.
type Config struct {
	// NodeID is the E2 node identity (e.g. "gnb-001").
	NodeID string
	// AMF is the core-network control function. Required.
	AMF *corenet.AMF
	// Clock stamps telemetry; defaults to time.Now.
	Clock func() time.Time
	// Capture, when non-nil, receives F1AP/NGAP PDUs (the instrumented
	// pcap stream of §4).
	Capture *pcaplite.Writer
	// DLBuffer is the per-UE downlink queue depth (default 64).
	DLBuffer int
	// FirstRNTI seeds C-RNTI allocation (default 0x4601, as OAI).
	FirstRNTI cell.RNTI
	// Batch tunes how the E2 agent coalesces telemetry into RIC
	// Indications; the zero value keeps the defaults (see BatchPolicy).
	Batch BatchPolicy
}

// GNB is the simulated gNodeB.
type GNB struct {
	cfg Config

	mu        sync.Mutex
	extractor *mobiflow.Extractor
	nextRNTI  cell.RNTI
	nextUEID  uint64
	ues       map[uint64]*ueCtx
	byRNTI    map[cell.RNTI]uint64
	records   mobiflow.Trace

	blockedTMSI map[cell.TMSI]bool
}

// ueCtx is the CU-side context for one attached UE.
type ueCtx struct {
	ueID     uint64
	rnti     cell.RNTI
	dl       chan rrc.Message
	lastUL   []byte
	pendNAS  [][]byte // NAS PDUs awaiting the post-security reconfiguration
	sentIUE  bool     // InitialUEMessage already sent over NG
	released bool

	// negotiated NAS security algorithms, mirrored into the AS
	// security-mode command
	cipher cell.CipherAlg
	integ  cell.IntegAlg
}

// New creates a gNB.
func New(cfg Config) (*GNB, error) {
	if cfg.AMF == nil {
		return nil, fmt.Errorf("gnb: Config.AMF is required")
	}
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("gnb: Config.NodeID is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.DLBuffer == 0 {
		cfg.DLBuffer = 64
	}
	if cfg.FirstRNTI == 0 {
		cfg.FirstRNTI = 0x4601
	}
	g := &GNB{
		cfg:         cfg,
		extractor:   mobiflow.NewExtractor(cfg.Clock),
		nextRNTI:    cfg.FirstRNTI,
		ues:         make(map[uint64]*ueCtx),
		byRNTI:      make(map[cell.RNTI]uint64),
		blockedTMSI: make(map[cell.TMSI]bool),
	}
	return g, nil
}

// NodeID returns the configured E2 node identity.
func (g *GNB) NodeID() string { return g.cfg.NodeID }

// Link is a UE's Uu connection to the gNB.
type Link struct {
	g   *GNB
	ctx *ueCtx
}

// Attach performs random access: the DU allocates a C-RNTI and the CU
// creates a UE context. It models the RACH procedure preceding
// RRCSetupRequest.
func (g *GNB) Attach() *Link {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.nextUEID++
	// Allocate the next free RNTI, skipping reserved values.
	for {
		if g.nextRNTI == 0 || g.nextRNTI == 0xFFFF {
			g.nextRNTI = g.cfg.FirstRNTI
		}
		if _, used := g.byRNTI[g.nextRNTI]; !used {
			break
		}
		g.nextRNTI++
	}
	ctx := &ueCtx{
		ueID: g.nextUEID,
		rnti: g.nextRNTI,
		dl:   make(chan rrc.Message, g.cfg.DLBuffer),
	}
	g.nextRNTI++
	g.ues[ctx.ueID] = ctx
	g.byRNTI[ctx.rnti] = ctx.ueID
	return &Link{g: g, ctx: ctx}
}

// UEID returns the CU-local UE context identifier.
func (l *Link) UEID() uint64 { return l.ctx.ueID }

// RNTI returns the allocated C-RNTI.
func (l *Link) RNTI() cell.RNTI { return l.ctx.rnti }

// SendRRC transmits one uplink RRC message. Processing is synchronous:
// when it returns, all resulting downlink messages are queued on the link.
func (l *Link) SendRRC(m rrc.Message) error {
	l.g.mu.Lock()
	defer l.g.mu.Unlock()
	if l.ctx.released {
		return ErrReleased
	}
	return l.g.handleUplink(l.ctx, m)
}

// TryRecv returns the next queued downlink message, if any.
func (l *Link) TryRecv() (rrc.Message, bool) {
	select {
	case m, ok := <-l.ctx.dl:
		return m, ok
	default:
		return nil, false
	}
}

// Recv blocks for the next downlink message until timeout.
func (l *Link) Recv(timeout time.Duration) (rrc.Message, error) {
	select {
	case m, ok := <-l.ctx.dl:
		if !ok {
			return nil, ErrReleased
		}
		return m, nil
	case <-time.After(timeout):
		return nil, fmt.Errorf("gnb: downlink receive: %w", errTimeout)
	}
}

var errTimeout = errors.New("timeout")

// Abandon drops the UE side of the link without any signalling — the
// behavior of a flooding attacker or a UE losing radio contact. The CU
// context remains until released by the network.
func (l *Link) Abandon() {}

// Records returns a copy of the accumulated telemetry.
func (g *GNB) Records() mobiflow.Trace {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(mobiflow.Trace, len(g.records))
	copy(out, g.records)
	return out
}

// DrainRecords returns telemetry accumulated since the previous drain and
// clears the buffer; the RIC agent calls this per report interval.
func (g *GNB) DrainRecords() mobiflow.Trace {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := g.records
	g.records = nil
	return out
}

// DrainRecordsInto appends the accumulated telemetry to buf and returns
// the extended slice, truncating the internal buffer in place. It is the
// buffer-reusing form of DrainRecords for the batching report loop:
// records are plain values (no shared byte slices), so both sides keep
// their own backing arrays and the steady state allocates nothing.
func (g *GNB) DrainRecordsInto(buf mobiflow.Trace) mobiflow.Trace {
	g.mu.Lock()
	defer g.mu.Unlock()
	buf = append(buf, g.records...)
	g.records = g.records[:0]
	return buf
}

// InjectTelemetry appends pre-built records directly to the telemetry
// buffer, bypassing the RAN procedures. The ingest benchmark uses it to
// drive the E2 report path at controlled record rates and UE spreads.
func (g *GNB) InjectTelemetry(tr mobiflow.Trace) {
	g.mu.Lock()
	g.records = append(g.records, tr...)
	g.mu.Unlock()
}

// ActiveUEs reports the number of live UE contexts.
func (g *GNB) ActiveUEs() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.ues)
}

func (g *GNB) record(r mobiflow.Record) {
	g.records = append(g.records, r)
}

func (g *GNB) capture(iface pcaplite.Interface, payload []byte) {
	if g.cfg.Capture == nil {
		return
	}
	// Capture failures must not disturb the data plane; the writer's
	// error will surface at Flush time in the dataset tooling.
	_ = g.cfg.Capture.Write(pcaplite.Packet{Timestamp: g.cfg.Clock(), Iface: iface, Payload: payload})
}

// sendDL queues a downlink RRC message, recording it and capturing the
// F1AP DL transfer. A full queue models radio loss: the PDU is dropped.
func (g *GNB) sendDL(ctx *ueCtx, m rrc.Message) {
	encoded := rrc.Encode(m)
	g.capture(pcaplite.IfF1AP, f1ap.Encode(&f1ap.Message{
		Type: f1ap.TypeDLRRCTransfer, DUUEID: ctx.ueID, CUUEID: ctx.ueID,
		RNTI: ctx.rnti, RRCContainer: encoded,
	}))
	if recordableRRC(m.Type()) {
		g.record(g.extractor.OnRRC(ctx.ueID, ctx.rnti, m, false))
	}
	select {
	case ctx.dl <- m:
	default: // queue full: radio loss
	}
}

// recordableRRC reports whether an RRC message type is recorded as an RRC
// telemetry entry. Information-transfer wrappers are pure NAS transport;
// their payload is recorded as a NAS entry instead (Table 1 separates the
// RRC and NAS message categories).
func recordableRRC(t rrc.MsgType) bool {
	switch t {
	case rrc.TypeULInformationTransfer, rrc.TypeDLInformationTransfer:
		return false
	}
	return true
}

// handleUplink runs the CU logic for one uplink RRC PDU. Caller holds g.mu.
func (g *GNB) handleUplink(ctx *ueCtx, m rrc.Message) error {
	encoded := rrc.Encode(m)
	f1Type := f1ap.TypeULRRCTransfer
	if m.Type() == rrc.TypeSetupRequest {
		f1Type = f1ap.TypeInitialULRRCTransfer
	}
	g.capture(pcaplite.IfF1AP, f1ap.Encode(&f1ap.Message{
		Type: f1Type, DUUEID: ctx.ueID, CUUEID: ctx.ueID,
		RNTI: ctx.rnti, RRCContainer: encoded,
	}))

	retx := ctx.lastUL != nil && bytes.Equal(ctx.lastUL, encoded)
	ctx.lastUL = encoded

	if recordableRRC(m.Type()) {
		g.record(g.extractor.OnRRC(ctx.ueID, ctx.rnti, m, retx))
	}
	if retx {
		// Duplicate delivery: telemetry records it (including any NAS
		// payload — retransmissions are the paper's main benign-FP
		// source), but the CU suppresses duplicate protocol handling.
		var dup []byte
		switch msg := m.(type) {
		case *rrc.ULInformationTransfer:
			dup = msg.NASPDU
		case *rrc.SetupComplete:
			dup = msg.NASPDU
		}
		if len(dup) > 0 {
			if nm, err := nas.Decode(dup); err == nil {
				g.record(g.extractor.OnNAS(ctx.ueID, nm, true))
			}
		}
		return nil
	}

	switch msg := m.(type) {
	case *rrc.SetupRequest:
		if msg.Identity.Kind == rrc.IdentityTMSI && g.blockedTMSI[msg.Identity.TMSI] {
			g.sendDL(ctx, &rrc.Reject{WaitTime: 16})
			g.releaseLocked(ctx, "blocked TMSI")
			return nil
		}
		g.sendDL(ctx, &rrc.Setup{TransactionID: 0, SRBCount: 1})

	case *rrc.SetupComplete:
		if len(msg.NASPDU) > 0 {
			return g.uplinkNAS(ctx, msg.NASPDU, retx)
		}

	case *rrc.ULInformationTransfer:
		if len(msg.NASPDU) > 0 {
			return g.uplinkNAS(ctx, msg.NASPDU, retx)
		}

	case *rrc.SecurityModeComplete:
		// AS security is up: deliver the held NAS (registration accept)
		// inside the reconfiguration, per the standard call flow.
		var nasPDU []byte
		if len(ctx.pendNAS) > 0 {
			nasPDU = ctx.pendNAS[0]
			ctx.pendNAS = ctx.pendNAS[1:]
		}
		reconf := &rrc.Reconfiguration{TransactionID: 1, NASPDU: nasPDU}
		g.sendDL(ctx, reconf)
		if len(nasPDU) > 0 {
			if nm, err := nas.Decode(nasPDU); err == nil {
				g.record(g.extractor.OnNAS(ctx.ueID, nm, false))
			}
		}

	case *rrc.SecurityModeFailure, *rrc.ReconfigurationComplete:
		// No CU response required.

	case *rrc.ReestablishmentRequest:
		g.sendDL(ctx, &rrc.Reestablishment{TransactionID: 0})
	}
	return nil
}

// uplinkNAS relays an uplink NAS PDU to the AMF over NG and processes the
// AMF's downlink responses. Caller holds g.mu.
func (g *GNB) uplinkNAS(ctx *ueCtx, nasPDU []byte, retx bool) error {
	nasMsg, err := nas.Decode(nasPDU)
	if err != nil {
		// Undecodable NAS: telemetry cannot represent it, and the AMF
		// would reject it; drop with an error for the caller.
		return fmt.Errorf("gnb: uplink NAS: %w", err)
	}
	g.record(g.extractor.OnNAS(ctx.ueID, nasMsg, retx))

	ngType := ngap.TypeUplinkNASTransport
	if !ctx.sentIUE {
		ngType = ngap.TypeInitialUEMessage
		ctx.sentIUE = true
	}
	up := &ngap.Message{Type: ngType, RANUEID: ctx.ueID, NASPDU: nasPDU}
	g.capture(pcaplite.IfNGAP, ngap.Encode(up))

	responses, err := g.cfg.AMF.HandleNGAP(up)
	if err != nil {
		return fmt.Errorf("gnb: AMF: %w", err)
	}
	for _, resp := range responses {
		g.capture(pcaplite.IfNGAP, ngap.Encode(resp))
		g.handleNGDown(ctx, resp)
	}
	return nil
}

// handleNGDown processes one AMF→CU message. Caller holds g.mu.
func (g *GNB) handleNGDown(ctx *ueCtx, m *ngap.Message) {
	switch m.Type {
	case ngap.TypeDownlinkNASTransport:
		nasMsg, err := nas.Decode(m.NASPDU)
		if err != nil {
			return
		}
		switch nm := nasMsg.(type) {
		case *nas.RegistrationAccept:
			// Held until AS security completes; it is recorded when
			// actually transmitted inside the reconfiguration.
			ctx.pendNAS = append(ctx.pendNAS, m.NASPDU)
			return
		case *nas.SecurityModeCommand:
			ctx.cipher, ctx.integ = nm.CipherAlg, nm.IntegAlg
		}
		g.record(g.extractor.OnNAS(ctx.ueID, nasMsg, false))
		g.sendDL(ctx, &rrc.DLInformationTransfer{NASPDU: m.NASPDU})

	case ngap.TypeInitialContextSetupRequest:
		// Activate AS security with the NAS-selected algorithms.
		g.sendDL(ctx, &rrc.SecurityModeCommand{TransactionID: 1, CipherAlg: ctx.cipher, IntegAlg: ctx.integ})
		resp := &ngap.Message{Type: ngap.TypeInitialContextSetupResponse, RANUEID: ctx.ueID, AMFUEID: m.AMFUEID}
		g.capture(pcaplite.IfNGAP, ngap.Encode(resp))

	case ngap.TypeUEContextReleaseCommand:
		g.releaseLocked(ctx, m.Cause)
		resp := &ngap.Message{Type: ngap.TypeUEContextReleaseComplete, RANUEID: ctx.ueID, AMFUEID: m.AMFUEID}
		g.capture(pcaplite.IfNGAP, ngap.Encode(resp))
	}
}

// releaseLocked tears the UE context down: RRC Release downlink, context
// removal, AMF release. Caller holds g.mu.
func (g *GNB) releaseLocked(ctx *ueCtx, cause string) {
	if ctx.released {
		return
	}
	rel := &rrc.Release{Cause: rrc.ReleaseDeregistration}
	if cause == "blocked TMSI" {
		rel.Cause = rrc.ReleaseOther
	}
	g.sendDL(ctx, rel)
	ctx.released = true
	close(ctx.dl)
	delete(g.ues, ctx.ueID)
	delete(g.byRNTI, ctx.rnti)
	g.extractor.ReleaseUE(ctx.ueID)
	g.cfg.AMF.ReleaseUE(ctx.ueID)
}

// ReleaseUE releases a UE context by ID (used by RIC control actions).
func (g *GNB) ReleaseUE(ueID uint64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	ctx, ok := g.ues[ueID]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchUE, ueID)
	}
	g.releaseLocked(ctx, "ric control")
	return nil
}

// BlockTMSI denies future setup requests presenting the given TMSI (RIC
// control action against Blind DoS). Blocking an already-blocked TMSI is
// a no-op, so duplicate controls are idempotent.
func (g *GNB) BlockTMSI(tmsi cell.TMSI) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.blockedTMSI[tmsi] = true
}

// UnblockTMSI lifts a BlockTMSI entry, restoring attach service for the
// identity (the mitigation engine's TTL rollback). Unblocking a TMSI
// that is not blocked is a no-op.
func (g *GNB) UnblockTMSI(tmsi cell.TMSI) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.blockedTMSI, tmsi)
}

// BlockedTMSIs reports how many temporary identities are currently
// denied service.
func (g *GNB) BlockedTMSIs() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.blockedTMSI)
}

// RequireStrongSecurity forwards the hardening control to the core.
func (g *GNB) RequireStrongSecurity(on bool) {
	g.cfg.AMF.SetRequireStrongSecurity(on)
}
