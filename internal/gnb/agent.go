package gnb

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/6g-xsec/xsec/internal/asn1lite"
	"github.com/6g-xsec/xsec/internal/e2ap"
	"github.com/6g-xsec/xsec/internal/e2sm"
	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/prov"
)

// Telemetry-emission counters, labeled by reporting node.
var (
	obsRecords = obs.NewCounterVec("xsec_gnb_mobiflow_records_total",
		"MOBIFLOW telemetry records shipped over E2, by node.", "node")
	obsIndicationsSent = obs.NewCounterVec("xsec_gnb_indications_sent_total",
		"RIC indications emitted by the gNB agent, by node.", "node")
)

// ServeE2 runs the gNB's RIC agent over an E2 connection: it performs the
// E2 Setup handshake (advertising the E2SM-MOBIFLOW and E2SM-XRC RAN
// functions), serves RIC subscriptions by periodically reporting drained
// telemetry as RIC Indications, and applies RIC Control actions to the
// data plane — the full Figure 3 agent role.
//
// ServeE2 blocks until the connection closes. Telemetry reporting is
// single-consumer: concurrent report subscriptions share the drain.
func (g *GNB) ServeE2(ep *e2ap.Endpoint) error {
	ep.SetNodeID(g.cfg.NodeID)
	if err := ep.Send(&e2ap.Message{
		Type:   e2ap.TypeE2SetupRequest,
		NodeID: g.cfg.NodeID,
		RANFunctions: []e2ap.RANFunction{
			{ID: e2sm.MobiFlowRANFunctionID, OID: e2sm.MobiFlowOID, Definition: asn1lite.Marshal(e2sm.MobiFlowFunctionDefinition())},
			{ID: e2sm.XRCRANFunctionID, OID: e2sm.XRCOID, Definition: asn1lite.Marshal(e2sm.XRCFunctionDefinition())},
		},
	}); err != nil {
		return fmt.Errorf("gnb: E2 setup: %w", err)
	}
	resp, err := ep.Recv()
	if err != nil {
		return fmt.Errorf("gnb: awaiting E2 setup response: %w", err)
	}
	if resp.Type != e2ap.TypeE2SetupResponse {
		return fmt.Errorf("gnb: E2 setup rejected: %s (%s)", resp.Type, resp.Cause)
	}

	agent := &e2Agent{g: g, ep: ep, reporters: make(map[e2ap.RequestID]chan struct{})}
	defer agent.stopAll()
	for {
		msg, err := ep.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		agent.handle(msg)
	}
}

type e2Agent struct {
	g  *GNB
	ep *e2ap.Endpoint

	mu        sync.Mutex
	reporters map[e2ap.RequestID]chan struct{}
}

func (a *e2Agent) handle(msg *e2ap.Message) {
	switch msg.Type {
	case e2ap.TypeSubscriptionRequest:
		a.subscribe(msg)
	case e2ap.TypeSubscriptionDeleteRequest:
		a.unsubscribe(msg)
	case e2ap.TypeControlRequest:
		a.control(msg)
	}
}

func (a *e2Agent) subscribe(msg *e2ap.Message) {
	if msg.RANFunctionID != e2sm.MobiFlowRANFunctionID {
		a.ep.Send(&e2ap.Message{
			Type: e2ap.TypeSubscriptionFailure, RequestID: msg.RequestID,
			RANFunctionID: msg.RANFunctionID, Cause: "unsupported RAN function for report",
		})
		return
	}
	var trigger e2sm.EventTrigger
	if err := asn1lite.Unmarshal(msg.EventTrigger, &trigger); err != nil || trigger.Period <= 0 {
		a.ep.Send(&e2ap.Message{
			Type: e2ap.TypeSubscriptionFailure, RequestID: msg.RequestID,
			RANFunctionID: msg.RANFunctionID, Cause: "invalid event trigger",
		})
		return
	}
	var admitted []uint16
	actionID := uint16(0)
	for _, act := range msg.Actions {
		if act.Type == e2ap.ActionReport {
			admitted = append(admitted, act.ID)
			actionID = act.ID
		}
	}
	if len(admitted) == 0 {
		a.ep.Send(&e2ap.Message{
			Type: e2ap.TypeSubscriptionFailure, RequestID: msg.RequestID,
			RANFunctionID: msg.RANFunctionID, Cause: "no report action",
		})
		return
	}

	stop := make(chan struct{})
	a.mu.Lock()
	if old, dup := a.reporters[msg.RequestID]; dup {
		close(old)
	}
	a.reporters[msg.RequestID] = stop
	a.mu.Unlock()

	a.ep.Send(&e2ap.Message{
		Type: e2ap.TypeSubscriptionResponse, RequestID: msg.RequestID,
		RANFunctionID: msg.RANFunctionID, AdmittedActions: admitted,
	})
	go a.report(msg.RequestID, actionID, trigger.Period, stop)
}

// report drains telemetry every period and ships it as a RIC Indication.
func (a *e2Agent) report(reqID e2ap.RequestID, actionID uint16, period time.Duration, stop chan struct{}) {
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	records := obsRecords.With(a.g.cfg.NodeID)
	indications := obsIndicationsSent.With(a.g.cfg.NodeID)
	var batchSeq uint64
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			reportStart := time.Now()
			tr := a.g.DrainRecords()
			if len(tr) == 0 {
				continue
			}
			batchSeq++
			hdr := &e2sm.IndicationHeader{
				NodeID:          a.g.cfg.NodeID,
				CollectionStart: tr[0].Timestamp,
				BatchSeq:        batchSeq,
			}
			err := a.ep.Send(&e2ap.Message{
				Type:              e2ap.TypeIndication,
				RequestID:         reqID,
				RANFunctionID:     e2sm.MobiFlowRANFunctionID,
				ActionID:          actionID,
				IndicationSN:      batchSeq,
				IndicationHeader:  asn1lite.Marshal(hdr),
				IndicationMessage: e2sm.EncodeIndicationMessage(&e2sm.IndicationMessage{Records: tr}),
			})
			if err != nil {
				return
			}
			records.Add(uint64(len(tr)))
			indications.Inc()
			obs.RecordSpan(obs.IndicationKey(a.g.cfg.NodeID, batchSeq),
				"gnb.report", reportStart, time.Now())
			// Root of the evidence chain: what the node actually emitted,
			// fingerprinted before the batch crosses any trust boundary.
			prov.Record(prov.Event{
				Chain:    prov.ChainID{Node: a.g.cfg.NodeID, SN: batchSeq},
				Kind:     prov.KindEmit,
				At:       reportStart,
				SeqFirst: tr[0].Seq,
				SeqLast:  tr[len(tr)-1].Seq,
				Records:  uint32(len(tr)),
				Digest:   prov.DigestRecords(tr),
			})
		}
	}
}

func (a *e2Agent) unsubscribe(msg *e2ap.Message) {
	a.mu.Lock()
	if stop, ok := a.reporters[msg.RequestID]; ok {
		close(stop)
		delete(a.reporters, msg.RequestID)
	}
	a.mu.Unlock()
	a.ep.Send(&e2ap.Message{
		Type: e2ap.TypeSubscriptionDeleteResponse, RequestID: msg.RequestID,
		RANFunctionID: msg.RANFunctionID,
	})
}

func (a *e2Agent) control(msg *e2ap.Message) {
	fail := func(cause string) {
		a.ep.Send(&e2ap.Message{Type: e2ap.TypeControlFailure, RequestID: msg.RequestID, Cause: cause})
	}
	if msg.RANFunctionID != e2sm.XRCRANFunctionID {
		fail("unsupported RAN function for control")
		return
	}
	var req e2sm.ControlRequest
	if err := asn1lite.Unmarshal(msg.ControlMessage, &req); err != nil {
		fail("undecodable control message")
		return
	}
	switch req.Action {
	case e2sm.ControlReleaseUE:
		if err := a.g.ReleaseUE(req.UEID); err != nil {
			fail(err.Error())
			return
		}
	case e2sm.ControlBlockTMSI:
		a.g.BlockTMSI(req.TMSI)
	case e2sm.ControlUnblockTMSI:
		a.g.UnblockTMSI(req.TMSI)
	case e2sm.ControlRequireStrongSecurity:
		a.g.RequireStrongSecurity(true)
	case e2sm.ControlRelaxSecurity:
		a.g.RequireStrongSecurity(false)
	default:
		fail(fmt.Sprintf("unknown control action %d", req.Action))
		return
	}
	a.ep.Send(&e2ap.Message{Type: e2ap.TypeControlAck, RequestID: msg.RequestID})
}

func (a *e2Agent) stopAll() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for id, stop := range a.reporters {
		close(stop)
		delete(a.reporters, id)
	}
}
