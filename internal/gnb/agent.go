package gnb

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/6g-xsec/xsec/internal/asn1lite"
	"github.com/6g-xsec/xsec/internal/e2ap"
	"github.com/6g-xsec/xsec/internal/e2sm"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/prov"
)

// Telemetry-emission counters, labeled by reporting node.
var (
	obsRecords = obs.NewCounterVec("xsec_gnb_mobiflow_records_total",
		"MOBIFLOW telemetry records shipped over E2, by node.", "node")
	obsIndicationsSent = obs.NewCounterVec("xsec_gnb_indications_sent_total",
		"RIC indications emitted by the gNB agent, by node.", "node")
	obsBatchRecords = obs.NewHistogramVec("xsec_gnb_indication_batch_records",
		"Records coalesced into each RIC indication, by node.",
		obs.ExpBuckets(1, 2, 10), "node")
)

// DefaultBatchRecords is the per-indication record cap when
// Config.Batch.MaxRecords is unset.
const DefaultBatchRecords = 64

// BatchPolicy controls how the E2 agent coalesces drained MobiFlow
// records into RIC Indications (the max-records / max-age adaptive
// flush). The zero value picks the defaults.
type BatchPolicy struct {
	// MaxRecords caps the records carried by one indication; a flush
	// holding more splits into multiple indications per UE. A pending
	// set reaching MaxRecords also flushes immediately, so bursts ship
	// without waiting out the period. Default DefaultBatchRecords.
	MaxRecords int
	// MaxAge is the drain cadence and staleness bound: telemetry is
	// polled every MaxAge, and records flushed no later than one poll
	// after the one that drained them. It is clamped to the
	// subscription period; the default (the period itself) reproduces
	// the classic one-flush-per-period report loop.
	MaxAge time.Duration
}

// ServeE2 runs the gNB's RIC agent over an E2 connection: it performs the
// E2 Setup handshake (advertising the E2SM-MOBIFLOW and E2SM-XRC RAN
// functions), serves RIC subscriptions by periodically reporting drained
// telemetry as RIC Indications, and applies RIC Control actions to the
// data plane — the full Figure 3 agent role.
//
// ServeE2 blocks until the connection closes. Telemetry reporting is
// single-consumer: concurrent report subscriptions share the drain.
func (g *GNB) ServeE2(ep *e2ap.Endpoint) error {
	ep.SetNodeID(g.cfg.NodeID)
	if err := ep.Send(&e2ap.Message{
		Type:   e2ap.TypeE2SetupRequest,
		NodeID: g.cfg.NodeID,
		RANFunctions: []e2ap.RANFunction{
			{ID: e2sm.MobiFlowRANFunctionID, OID: e2sm.MobiFlowOID, Definition: asn1lite.Marshal(e2sm.MobiFlowFunctionDefinition())},
			{ID: e2sm.XRCRANFunctionID, OID: e2sm.XRCOID, Definition: asn1lite.Marshal(e2sm.XRCFunctionDefinition())},
		},
	}); err != nil {
		return fmt.Errorf("gnb: E2 setup: %w", err)
	}
	resp, err := ep.Recv()
	if err != nil {
		return fmt.Errorf("gnb: awaiting E2 setup response: %w", err)
	}
	if resp.Type != e2ap.TypeE2SetupResponse {
		return fmt.Errorf("gnb: E2 setup rejected: %s (%s)", resp.Type, resp.Cause)
	}

	agent := &e2Agent{g: g, ep: ep, reporters: make(map[e2ap.RequestID]chan struct{})}
	defer agent.stopAll()
	for {
		msg, err := ep.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		agent.handle(msg)
	}
}

type e2Agent struct {
	g  *GNB
	ep *e2ap.Endpoint

	mu        sync.Mutex
	reporters map[e2ap.RequestID]chan struct{}
}

func (a *e2Agent) handle(msg *e2ap.Message) {
	switch msg.Type {
	case e2ap.TypeSubscriptionRequest:
		a.subscribe(msg)
	case e2ap.TypeSubscriptionDeleteRequest:
		a.unsubscribe(msg)
	case e2ap.TypeControlRequest:
		a.control(msg)
	}
}

func (a *e2Agent) subscribe(msg *e2ap.Message) {
	if msg.RANFunctionID != e2sm.MobiFlowRANFunctionID {
		a.ep.Send(&e2ap.Message{
			Type: e2ap.TypeSubscriptionFailure, RequestID: msg.RequestID,
			RANFunctionID: msg.RANFunctionID, Cause: "unsupported RAN function for report",
		})
		return
	}
	var trigger e2sm.EventTrigger
	if err := asn1lite.Unmarshal(msg.EventTrigger, &trigger); err != nil || trigger.Period <= 0 {
		a.ep.Send(&e2ap.Message{
			Type: e2ap.TypeSubscriptionFailure, RequestID: msg.RequestID,
			RANFunctionID: msg.RANFunctionID, Cause: "invalid event trigger",
		})
		return
	}
	var admitted []uint16
	actionID := uint16(0)
	for _, act := range msg.Actions {
		if act.Type == e2ap.ActionReport {
			admitted = append(admitted, act.ID)
			actionID = act.ID
		}
	}
	if len(admitted) == 0 {
		a.ep.Send(&e2ap.Message{
			Type: e2ap.TypeSubscriptionFailure, RequestID: msg.RequestID,
			RANFunctionID: msg.RANFunctionID, Cause: "no report action",
		})
		return
	}

	stop := make(chan struct{})
	a.mu.Lock()
	if old, dup := a.reporters[msg.RequestID]; dup {
		close(old)
	}
	a.reporters[msg.RequestID] = stop
	a.mu.Unlock()

	a.ep.Send(&e2ap.Message{
		Type: e2ap.TypeSubscriptionResponse, RequestID: msg.RequestID,
		RANFunctionID: msg.RANFunctionID, AdmittedActions: admitted,
	})
	go a.report(msg.RequestID, actionID, trigger.Period, stop)
}

// reporter is the per-subscription batching state of the report loop.
// Everything it touches per flush — the pending drain buffer, the per-UE
// grouping, the header/message encoders, and the indication PDU — is
// reused, so the steady-state emit path allocates nothing.
type reporter struct {
	a        *e2Agent
	reqID    e2ap.RequestID
	actionID uint16
	pol      BatchPolicy

	batchSeq uint64
	pending  mobiflow.Trace
	byUE     map[uint64]mobiflow.Trace
	order    []uint64 // UEs with records this flush, in arrival order
	held     bool     // pending survived the previous poll unflushed

	hdrEnc asn1lite.Encoder
	msgEnc asn1lite.Encoder
	ind    e2ap.Message

	records     *obs.Counter
	indications *obs.Counter
	batchSize   *obs.Histogram
}

// report drains telemetry every BatchPolicy.MaxAge and coalesces it into
// UE-scoped RIC Indications under the max-records / max-age flush policy.
func (a *e2Agent) report(reqID e2ap.RequestID, actionID uint16, period time.Duration, stop chan struct{}) {
	pol := a.g.cfg.Batch
	if pol.MaxRecords <= 0 {
		pol.MaxRecords = DefaultBatchRecords
	}
	if pol.MaxAge <= 0 || pol.MaxAge > period {
		pol.MaxAge = period
	}
	// Flush at least once per subscription period, measured in polls so
	// ticker jitter cannot slip a flush by a whole extra period.
	ticksPerPeriod := int(period / pol.MaxAge)
	if ticksPerPeriod < 1 {
		ticksPerPeriod = 1
	}
	r := &reporter{
		a: a, reqID: reqID, actionID: actionID, pol: pol,
		byUE:        make(map[uint64]mobiflow.Trace),
		records:     obsRecords.With(a.g.cfg.NodeID),
		indications: obsIndicationsSent.With(a.g.cfg.NodeID),
		batchSize:   obsBatchRecords.With(a.g.cfg.NodeID),
	}
	ticker := time.NewTicker(pol.MaxAge)
	defer ticker.Stop()
	sinceFlush := 0
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			start := time.Now()
			r.pending = a.g.DrainRecordsInto(r.pending)
			sinceFlush++
			if len(r.pending) == 0 {
				continue
			}
			if r.held || len(r.pending) >= pol.MaxRecords || sinceFlush >= ticksPerPeriod {
				if !r.flush(start) {
					return
				}
				sinceFlush = 0
				r.held = false
			} else {
				r.held = true
			}
		}
	}
}

// flush groups the pending records by UE (preserving per-UE arrival
// order) and emits one indication per UE per MaxRecords chunk. It
// reports false when the transport failed and the loop should exit.
func (r *reporter) flush(start time.Time) bool {
	for i := range r.pending {
		ue := r.pending[i].UEID
		if len(r.byUE[ue]) == 0 {
			r.order = append(r.order, ue)
		}
		r.byUE[ue] = append(r.byUE[ue], r.pending[i])
	}
	r.pending = r.pending[:0]
	for _, ue := range r.order {
		chunk := r.byUE[ue]
		for len(chunk) > 0 {
			n := len(chunk)
			if n > r.pol.MaxRecords {
				n = r.pol.MaxRecords
			}
			if !r.emit(ue, chunk[:n], start) {
				return false
			}
			chunk = chunk[n:]
		}
		r.byUE[ue] = r.byUE[ue][:0]
	}
	r.order = r.order[:0]
	return true
}

// emit ships one UE-scoped chunk as a RIC Indication. Each chunk gets
// its own batch sequence number, so every indication still roots its own
// provenance chain with an exact digest of what it carried.
func (r *reporter) emit(ue uint64, chunk mobiflow.Trace, start time.Time) bool {
	nodeID := r.a.g.cfg.NodeID
	r.batchSeq++
	hdr := e2sm.IndicationHeader{
		NodeID:          nodeID,
		CollectionStart: chunk[0].Timestamp,
		BatchSeq:        r.batchSeq,
		UEID:            ue,
	}
	r.hdrEnc.Reset()
	hdr.MarshalTLV(&r.hdrEnc)
	r.msgEnc.Reset()
	mobiflow.AppendTrace(&r.msgEnc, chunk)
	r.ind = e2ap.Message{
		Type:              e2ap.TypeIndication,
		RequestID:         r.reqID,
		RANFunctionID:     e2sm.MobiFlowRANFunctionID,
		ActionID:          r.actionID,
		IndicationSN:      r.batchSeq,
		IndicationHeader:  r.hdrEnc.Bytes(),
		IndicationMessage: r.msgEnc.Bytes(),
	}
	if err := r.a.ep.Send(&r.ind); err != nil {
		return false
	}
	r.records.Add(uint64(len(chunk)))
	r.indications.Inc()
	r.batchSize.Observe(float64(len(chunk)))
	obs.RecordSpan(obs.IndicationKey(nodeID, r.batchSeq),
		"gnb.report", start, time.Now())
	// Root of the evidence chain: what the node actually emitted,
	// fingerprinted before the batch crosses any trust boundary.
	prov.Record(prov.Event{
		Chain:    prov.ChainID{Node: nodeID, SN: r.batchSeq},
		Kind:     prov.KindEmit,
		At:       start,
		SeqFirst: chunk[0].Seq,
		SeqLast:  chunk[len(chunk)-1].Seq,
		Records:  uint32(len(chunk)),
		Digest:   prov.DigestRecords(chunk),
	})
	return true
}

func (a *e2Agent) unsubscribe(msg *e2ap.Message) {
	a.mu.Lock()
	if stop, ok := a.reporters[msg.RequestID]; ok {
		close(stop)
		delete(a.reporters, msg.RequestID)
	}
	a.mu.Unlock()
	a.ep.Send(&e2ap.Message{
		Type: e2ap.TypeSubscriptionDeleteResponse, RequestID: msg.RequestID,
		RANFunctionID: msg.RANFunctionID,
	})
}

func (a *e2Agent) control(msg *e2ap.Message) {
	fail := func(cause string) {
		a.ep.Send(&e2ap.Message{Type: e2ap.TypeControlFailure, RequestID: msg.RequestID, Cause: cause})
	}
	if msg.RANFunctionID != e2sm.XRCRANFunctionID {
		fail("unsupported RAN function for control")
		return
	}
	var req e2sm.ControlRequest
	if err := asn1lite.Unmarshal(msg.ControlMessage, &req); err != nil {
		fail("undecodable control message")
		return
	}
	switch req.Action {
	case e2sm.ControlReleaseUE:
		if err := a.g.ReleaseUE(req.UEID); err != nil {
			fail(err.Error())
			return
		}
	case e2sm.ControlBlockTMSI:
		a.g.BlockTMSI(req.TMSI)
	case e2sm.ControlUnblockTMSI:
		a.g.UnblockTMSI(req.TMSI)
	case e2sm.ControlRequireStrongSecurity:
		a.g.RequireStrongSecurity(true)
	case e2sm.ControlRelaxSecurity:
		a.g.RequireStrongSecurity(false)
	default:
		fail(fmt.Sprintf("unknown control action %d", req.Action))
		return
	}
	a.ep.Send(&e2ap.Message{Type: e2ap.TypeControlAck, RequestID: msg.RequestID})
}

func (a *e2Agent) stopAll() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for id, stop := range a.reporters {
		close(stop)
		delete(a.reporters, id)
	}
}
