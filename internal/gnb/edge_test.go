package gnb

import (
	"testing"

	"github.com/6g-xsec/xsec/internal/cell"
	"github.com/6g-xsec/xsec/internal/rrc"
)

func TestReestablishmentFlow(t *testing.T) {
	g := newTestGNB(t, nil)
	link := driveRegistration(t, g)

	// Radio-link failure: the UE asks to reestablish with its C-RNTI.
	if err := link.SendRRC(&rrc.ReestablishmentRequest{RNTI: link.RNTI(), Cause: cell.CauseMOData}); err != nil {
		t.Fatal(err)
	}
	m, ok := link.TryRecv()
	if !ok || m.Type() != rrc.TypeReestablishment {
		t.Fatalf("expected RRCReestablishment, got %v", m)
	}
	// Telemetry recorded both legs.
	msgs := g.Records().Messages()
	var sawReq, sawResp bool
	for _, msg := range msgs {
		if msg == "RRCReestablishmentRequest" {
			sawReq = true
		}
		if msg == "RRCReestablishment" {
			sawResp = true
		}
	}
	if !sawReq || !sawResp {
		t.Errorf("reestablishment telemetry missing: %v", msgs[len(msgs)-4:])
	}
}

func TestDownlinkQueueOverflowDropsLikeRadioLoss(t *testing.T) {
	amf := newTestGNB(t, nil).cfg.AMF // reuse AMF construction path
	g, err := New(Config{NodeID: "tiny", AMF: amf, DLBuffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	link := g.Attach()
	// Two back-to-back uplinks produce two downlink responses; the
	// 1-deep queue keeps only the first.
	link.SendRRC(&rrc.SetupRequest{Identity: rrc.UEIdentity{Kind: rrc.IdentityRandom, Random: 1}})
	link.SendRRC(&rrc.ReestablishmentRequest{RNTI: link.RNTI()})
	count := 0
	for {
		if _, ok := link.TryRecv(); !ok {
			break
		}
		count++
	}
	if count != 1 {
		t.Errorf("delivered %d downlinks, want 1 (overflow drop)", count)
	}
	// The dropped response is still in telemetry: the network sent it.
	msgs := g.Records().Messages()
	saw := 0
	for _, m := range msgs {
		if m == "RRCSetup" || m == "RRCReestablishment" {
			saw++
		}
	}
	if saw != 2 {
		t.Errorf("telemetry shows %d downlink responses, want 2", saw)
	}
}

func TestAbandonedContextStaysUntilReleased(t *testing.T) {
	g := newTestGNB(t, nil)
	link := g.Attach()
	link.SendRRC(&rrc.SetupRequest{})
	link.Abandon()
	if g.ActiveUEs() != 1 {
		t.Fatalf("ActiveUEs = %d, want 1 (context leak is the DoS)", g.ActiveUEs())
	}
	g.ReleaseUE(link.UEID())
	if g.ActiveUEs() != 0 {
		t.Error("context not released")
	}
}

func TestSetupRequestAfterAbandonGetsFreshRNTIs(t *testing.T) {
	g := newTestGNB(t, nil)
	l1 := g.Attach()
	l1.SendRRC(&rrc.SetupRequest{})
	l1.Abandon()
	l2 := g.Attach()
	if l1.RNTI() == l2.RNTI() {
		t.Error("RNTI reused while context still allocated")
	}
}
