package obs

import (
	"testing"
	"time"
)

func TestTracerStartEnd(t *testing.T) {
	tr := NewTracer(8)
	now := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	tr.setClock(func() time.Time {
		now = now.Add(time.Millisecond)
		return now
	})

	sp := tr.Start(IndicationKey("gnb-001", 7), "ric.route")
	sp.End()

	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("len = %d", len(spans))
	}
	s := spans[0]
	if s.Key != "gnb-001/7" || s.Stage != "ric.route" {
		t.Fatalf("span = %+v", s)
	}
	if s.Duration() != time.Millisecond {
		t.Fatalf("duration = %v", s.Duration())
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Record(Span{Key: IndicationKey("n", uint64(i)), Stage: "s"})
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	spans := tr.Spans()
	// Oldest-first with the two earliest evicted.
	want := []string{"n/2", "n/3", "n/4"}
	for i, s := range spans {
		if s.Key != want[i] {
			t.Fatalf("spans[%d].Key = %q, want %q (all: %+v)", i, s.Key, want[i], spans)
		}
	}
}

func TestTracerByKey(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(Span{Key: "a/1", Stage: "gnb.report"})
	tr.Record(Span{Key: "a/2", Stage: "gnb.report"})
	tr.Record(Span{Key: "a/1", Stage: "ric.route"})
	got := tr.ByKey("a/1")
	if len(got) != 2 || got[0].Stage != "gnb.report" || got[1].Stage != "ric.route" {
		t.Fatalf("ByKey = %+v", got)
	}
}

func TestIndicationKey(t *testing.T) {
	if k := IndicationKey("gnb-oai-42", 1337); k != "gnb-oai-42/1337" {
		t.Fatalf("key = %q", k)
	}
}

func TestTracerByKeyAfterEviction(t *testing.T) {
	tr := NewTracer(3)
	tr.Record(Span{Key: "a/1", Stage: "gnb.report"})
	tr.Record(Span{Key: "a/2", Stage: "gnb.report"})
	tr.Record(Span{Key: "a/1", Stage: "ric.route"})
	tr.Record(Span{Key: "a/3", Stage: "gnb.report"}) // evicts a/1 "gnb.report"

	got := tr.ByKey("a/1")
	if len(got) != 1 || got[0].Stage != "ric.route" {
		t.Fatalf("ByKey after eviction = %+v, want only the surviving ric.route span", got)
	}
	if got := tr.ByKey("a/2"); len(got) != 1 {
		t.Fatalf("unevicted key lost: %+v", got)
	}
}

func TestTracerLenAtCapacity(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 16; i++ {
		tr.Record(Span{Key: IndicationKey("n", uint64(i)), Stage: "s"})
		if want := i + 1; want > 4 {
			want = 4
		} else if tr.Len() != want {
			t.Fatalf("Len after %d records = %d, want %d", i+1, tr.Len(), want)
		}
		if tr.Len() > 4 {
			t.Fatalf("Len = %d exceeds capacity", tr.Len())
		}
	}
	if tr.Len() != 4 {
		t.Fatalf("Len at capacity = %d, want 4", tr.Len())
	}
}

func TestTracerEvictedCounter(t *testing.T) {
	tr := NewTracer(2)
	before := traceEvicted.Value()
	for i := 0; i < 5; i++ {
		tr.Record(Span{Key: "k", Stage: "s"})
	}
	if tr.Evicted() != 3 {
		t.Fatalf("Evicted = %d, want 3", tr.Evicted())
	}
	if got := traceEvicted.Value() - before; got != 3 {
		t.Fatalf("xsec_trace_evicted_total advanced by %d, want 3", got)
	}
}
