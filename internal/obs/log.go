package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

// Log levels.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the logfmt level token.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "level(" + strconv.Itoa(int(l)) + ")"
}

// ParseLevel maps a level name to its Level (case-insensitive).
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q", s)
}

// logCore is the shared sink behind a Logger and all its With children.
type logCore struct {
	mu    sync.Mutex
	w     io.Writer
	level atomic.Int32
	clock func() time.Time
}

// Logger is a leveled structured logger emitting logfmt lines:
//
//	t=2026-08-06T12:00:00.000Z lvl=warn msg="buffer full" xapp=mobiwatch
//
// Loggers derived via With share the sink, level, and clock of their
// root. A disabled level costs one atomic load and no allocation for
// the argument-free call shapes; formatting happens only when the
// record is actually emitted.
type Logger struct {
	core *logCore
	ctx  string // pre-rendered " key=value" pairs from With
}

// NewLogger returns a logger writing to w at LevelInfo.
func NewLogger(w io.Writer) *Logger {
	c := &logCore{w: w, clock: time.Now}
	c.level.Store(int32(LevelInfo))
	return &Logger{core: c}
}

// SetOutput atomically swaps the sink (io.Discard silences).
func (l *Logger) SetOutput(w io.Writer) {
	l.core.mu.Lock()
	l.core.w = w
	l.core.mu.Unlock()
}

// SetLevel sets the minimum emitted level.
func (l *Logger) SetLevel(lv Level) { l.core.level.Store(int32(lv)) }

// Level reports the minimum emitted level.
func (l *Logger) Level() Level { return Level(l.core.level.Load()) }

// setClock injects a clock (tests).
func (l *Logger) setClock(clock func() time.Time) { l.core.clock = clock }

// With returns a child logger whose records carry the given key-value
// pairs. Keys must be strings; values are rendered immediately.
func (l *Logger) With(kv ...any) *Logger {
	var b strings.Builder
	b.WriteString(l.ctx)
	appendPairs(&b, kv)
	return &Logger{core: l.core, ctx: b.String()}
}

// Debug logs at LevelDebug. kv alternates string keys and values.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lv Level, msg string, kv []any) {
	if lv < Level(l.core.level.Load()) {
		return
	}
	var b strings.Builder
	b.WriteString("t=")
	b.WriteString(l.core.clock().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" lvl=")
	b.WriteString(lv.String())
	b.WriteString(" msg=")
	b.WriteString(quoteIfNeeded(msg))
	b.WriteString(l.ctx)
	appendPairs(&b, kv)
	b.WriteByte('\n')

	l.core.mu.Lock()
	defer l.core.mu.Unlock()
	io.WriteString(l.core.w, b.String())
}

// appendPairs renders alternating key-value pairs; a trailing odd value
// is reported rather than dropped.
func appendPairs(b *strings.Builder, kv []any) {
	for i := 0; i+1 < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		b.WriteByte(' ')
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(quoteIfNeeded(renderValue(kv[i+1])))
	}
	if len(kv)%2 == 1 {
		b.WriteString(" !ODD=")
		b.WriteString(quoteIfNeeded(renderValue(kv[len(kv)-1])))
	}
}

func renderValue(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case error:
		return x.Error()
	case fmt.Stringer:
		return x.String()
	}
	return fmt.Sprint(v)
}

// quoteIfNeeded quotes values containing logfmt-breaking characters.
func quoteIfNeeded(s string) string {
	if s == "" {
		return `""`
	}
	if strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}

// std is the process-wide logger; silent by default so library code can
// log unconditionally and binaries opt in with SetLogOutput.
var std = NewLogger(io.Discard)

// L returns the process-wide logger.
func L() *Logger { return std }

// SetLogOutput directs the process-wide logger at w.
func SetLogOutput(w io.Writer) { std.SetOutput(w) }

// SetLogLevel sets the process-wide minimum level.
func SetLogLevel(lv Level) { std.SetLevel(lv) }
