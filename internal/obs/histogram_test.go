package obs

import (
	"strings"
	"testing"
)

func TestObserveWithExemplarKeepsSlowest(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("xsec_test_exemplar_seconds", "help", []float64{1, 10}).With()

	// Same bucket (le=1): the larger observation wins the exemplar.
	h.ObserveWithExemplar(0.5, "gnb-001/1")
	h.ObserveWithExemplar(0.9, "gnb-001/2")
	h.ObserveWithExemplar(0.3, "gnb-001/3")
	// Other buckets keep their own.
	h.ObserveWithExemplar(5, "gnb-001/4")
	h.ObserveWithExemplar(100, "gnb-001/5")

	if e := h.exemplar(0); e == nil || e.Label != "gnb-001/2" || e.Value != 0.9 {
		t.Fatalf("bucket 0 exemplar = %+v, want the 0.9 observation", e)
	}
	if e := h.exemplar(1); e == nil || e.Label != "gnb-001/4" {
		t.Fatalf("bucket 1 exemplar = %+v", e)
	}
	if e := h.exemplar(2); e == nil || e.Label != "gnb-001/5" { // +Inf
		t.Fatalf("+Inf exemplar = %+v", e)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5 (exemplar path must still observe)", h.Count())
	}
}

func TestExemplarInSnapshotNotInText(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("xsec_test_exemplar_snap_seconds", "help", []float64{1}).With()
	h.ObserveWithExemplar(0.5, "gnb-001/42")
	h.Observe(0.1) // plain observations never install exemplars

	var found *Exemplar
	for _, s := range r.Snapshot() {
		if s.Name != "xsec_test_exemplar_snap_seconds" {
			continue
		}
		if len(s.Buckets) != 2 {
			t.Fatalf("buckets = %+v", s.Buckets)
		}
		found = s.Buckets[0].Exemplar
		if s.Buckets[1].Exemplar != nil {
			t.Fatalf("+Inf bucket grew an exemplar: %+v", s.Buckets[1].Exemplar)
		}
	}
	if found == nil || found.Label != "gnb-001/42" {
		t.Fatalf("snapshot exemplar = %+v", found)
	}

	// The 0.0.4 text exposition has no exemplar syntax; the chain ID must
	// not leak into /metrics.
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "gnb-001/42") {
		t.Fatalf("exemplar leaked into text exposition:\n%s", sb.String())
	}
}

func TestPlainObserveNoExemplarNoAlloc(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("xsec_test_exemplar_alloc_seconds", "help", DefLatencyBuckets).With()
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(0.005) }); allocs != 0 {
		t.Fatalf("Observe allocates %.1f per op", allocs)
	}
	if h.exemplar(h.bucket(0.005)) != nil {
		t.Fatal("plain Observe installed an exemplar")
	}
	// Repeated ObserveWithExemplar at a value that never beats the
	// incumbent is also allocation-free (CAS not taken).
	h.ObserveWithExemplar(1, "winner")
	if allocs := testing.AllocsPerRun(1000, func() { h.ObserveWithExemplar(0.5, "loser") }); allocs != 0 {
		t.Fatalf("losing ObserveWithExemplar allocates %.1f per op", allocs)
	}
}
