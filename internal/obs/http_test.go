package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerMetrics(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("xsec_test_http_total", "help").With().Add(5)
	srv := httptest.NewServer(NewHandler(r, NewTracer(4)))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content-type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "xsec_test_http_total 5\n") {
		t.Fatalf("metrics body:\n%s", body)
	}
}

func TestHandlerTraces(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Span{Key: "a/1", Stage: "gnb.report"})
	tr.Record(Span{Key: "b/1", Stage: "ric.route"})
	srv := httptest.NewServer(NewHandler(NewRegistry(), tr))
	defer srv.Close()

	get := func(url string) []Span {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content-type = %q", ct)
		}
		var spans []Span
		if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
			t.Fatal(err)
		}
		return spans
	}

	if spans := get(srv.URL + "/traces"); len(spans) != 2 {
		t.Fatalf("all spans = %+v", spans)
	}
	spans := get(srv.URL + "/traces?key=b/1")
	if len(spans) != 1 || spans[0].Stage != "ric.route" {
		t.Fatalf("filtered spans = %+v", spans)
	}
}

func TestHandlerHealthAndPprof(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewRegistry(), NewTracer(4)))
	defer srv.Close()

	for _, path := range []string{"/healthz", "/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
	}
}

func TestListenAndServe(t *testing.T) {
	addr, shutdown, err := ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
