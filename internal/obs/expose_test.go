package obs

import (
	"math"
	"strings"
	"testing"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("xsec_test_indications_total", "Routed indications.", "xapp", "outcome").
		With("mobiwatch", "routed").Add(12)
	r.GaugeVec("xsec_test_nodes", "Attached nodes.").With().Set(2)

	out := scrape(t, r)
	for _, want := range []string{
		"# HELP xsec_test_indications_total Routed indications.\n",
		"# TYPE xsec_test_indications_total counter\n",
		`xsec_test_indications_total{xapp="mobiwatch",outcome="routed"} 12` + "\n",
		"# TYPE xsec_test_nodes gauge\n",
		"xsec_test_nodes 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Families render sorted by name; the gauge family sorts after the
	// counter family.
	if strings.Index(out, "xsec_test_indications_total") > strings.Index(out, "xsec_test_nodes") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("xsec_test_seconds", "help", []float64{0.1, 0.2, 0.4}).With()

	// Prometheus `le` bounds are inclusive: an observation equal to an
	// upper bound belongs to that bucket, not the next.
	h.Observe(0.1)  // -> le=0.1
	h.Observe(0.15) // -> le=0.2
	h.Observe(0.2)  // -> le=0.2
	h.Observe(0.4)  // -> le=0.4
	h.Observe(99)   // -> +Inf only

	out := scrape(t, r)
	for _, want := range []string{
		"# TYPE xsec_test_seconds histogram\n",
		`xsec_test_seconds_bucket{le="0.1"} 1` + "\n",
		`xsec_test_seconds_bucket{le="0.2"} 3` + "\n",
		`xsec_test_seconds_bucket{le="0.4"} 4` + "\n",
		`xsec_test_seconds_bucket{le="+Inf"} 5` + "\n",
		"xsec_test_seconds_count 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	wantSum := 0.1 + 0.15 + 0.2 + 0.4 + 99
	if s := h.Sum(); math.Abs(s-wantSum) > 1e-12 {
		t.Errorf("sum = %v, want %v", s, wantSum)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("xsec_test_escape_total", "help", "v").
		With("a\"b\\c\nd").Inc()
	out := scrape(t, r)
	want := `xsec_test_escape_total{v="a\"b\\c\nd"} 1` + "\n"
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing %q:\n%s", want, out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{2.5, "2.5"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
	}
	for _, c := range cases {
		if got := formatFloat(c.in); got != c.want {
			t.Errorf("formatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := formatFloat(math.NaN()); got != "NaN" {
		t.Errorf("formatFloat(NaN) = %q", got)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("xsec_test_snap_total", "help", "k").With("v").Add(3)
	h := r.HistogramVec("xsec_test_snap_seconds", "help", []float64{1, 2}).With()
	h.Observe(1.5)

	snaps := r.Snapshot()
	byName := map[string]SeriesSnapshot{}
	for _, s := range snaps {
		byName[s.Name] = s
	}
	c, ok := byName["xsec_test_snap_total"]
	if !ok || c.Value != 3 || c.Labels["k"] != "v" || c.Kind != "counter" {
		t.Fatalf("counter snapshot wrong: %+v", c)
	}
	hs, ok := byName["xsec_test_snap_seconds"]
	if !ok || hs.Count != 1 || hs.Sum != 1.5 || len(hs.Buckets) != 3 {
		t.Fatalf("histogram snapshot wrong: %+v", hs)
	}
	// Buckets are cumulative; the final +Inf bucket equals the count.
	if hs.Buckets[0].Count != 0 || hs.Buckets[1].Count != 1 || hs.Buckets[2].Count != 1 {
		t.Fatalf("cumulative buckets wrong: %+v", hs.Buckets)
	}
	if hs.Buckets[2].LE != math.MaxFloat64 {
		t.Fatalf("+Inf bucket LE = %v", hs.Buckets[2].LE)
	}
}
