package fleet

import (
	"sync"
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/sdl"
)

// fakeClock injects a controllable timebase into the collector.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

func stateOf(c *Collector, instance string) State {
	for _, h := range c.Health() {
		if h.Instance == instance {
			return h.State
		}
	}
	return State(255)
}

func TestFailureDetectorLifecycle(t *testing.T) {
	clock := &fakeClock{now: time.Unix(10_000, 0)}
	store := sdl.New()
	var evicted []string
	col := NewCollector(CollectorOptions{
		SuspectAfter: 2 * time.Second,
		DeadAfter:    5 * time.Second,
		Store:        store,
		Clock:        clock.Now,
		Evict:        func(instance string) error { evicted = append(evicted, instance); return nil },
	})

	col.OnHeartbeat(Heartbeat{Instance: "ric-0", Node: "gnb-ric-0", Seq: 1})
	col.OnHeartbeat(Heartbeat{Instance: "ric-1", Node: "gnb-ric-1", Seq: 1})
	if got := col.Alive(); got != 2 {
		t.Fatalf("alive after heartbeats = %d", got)
	}

	// ric-1 keeps beating; ric-0 goes silent.
	col.Sweep(clock.Advance(time.Second))
	col.OnHeartbeat(Heartbeat{Instance: "ric-1", Seq: 2})
	if st := stateOf(col, "ric-0"); st != StateAlive {
		t.Fatalf("ric-0 before deadline = %v", st)
	}

	// Past SuspectAfter: suspect, not yet evicted.
	col.Sweep(clock.Advance(1500 * time.Millisecond))
	if st := stateOf(col, "ric-0"); st != StateSuspect {
		t.Fatalf("ric-0 past suspect deadline = %v", st)
	}
	if len(evicted) != 0 {
		t.Fatalf("evicted while suspect: %v", evicted)
	}

	// Past DeadAfter: dead, evicted exactly once, journaled. ric-1 keeps
	// beating through the whole window so it never lapses.
	col.OnHeartbeat(Heartbeat{Instance: "ric-1", Seq: 3})
	col.Sweep(clock.Advance(1500 * time.Millisecond))
	col.OnHeartbeat(Heartbeat{Instance: "ric-1", Seq: 4})
	col.Sweep(clock.Advance(1500 * time.Millisecond))
	if st := stateOf(col, "ric-0"); st != StateDead {
		t.Fatalf("ric-0 past dead deadline = %v", st)
	}
	if len(evicted) != 1 || evicted[0] != "ric-0" {
		t.Fatalf("evictions = %v", evicted)
	}
	col.OnHeartbeat(Heartbeat{Instance: "ric-1", Seq: 5})
	col.Sweep(clock.Advance(time.Second))
	if len(evicted) != 1 {
		t.Fatalf("dead instance evicted twice: %v", evicted)
	}
	for _, h := range col.Health() {
		if h.Instance == "ric-0" && h.EvictedAt.IsZero() {
			t.Fatal("EvictedAt not recorded")
		}
		if h.Instance == "ric-1" && h.State != StateAlive {
			t.Fatalf("healthy peer transitioned: %v", h.State)
		}
	}

	journal := ReadJournal(store)
	if len(journal) != 2 {
		t.Fatalf("journal = %+v, want alive->suspect, suspect->dead", journal)
	}
	if journal[0].To != StateSuspect || journal[1].To != StateDead || journal[1].Instance != "ric-0" {
		t.Fatalf("journal transitions = %+v", journal)
	}

	// Rejoin: a fresh heartbeat resurrects the instance and journals it.
	col.OnHeartbeat(Heartbeat{Instance: "ric-0", Seq: 2})
	if st := stateOf(col, "ric-0"); st != StateAlive {
		t.Fatalf("ric-0 after rejoin = %v", st)
	}
	for _, h := range col.Health() {
		if h.Instance == "ric-0" && !h.EvictedAt.IsZero() {
			t.Fatal("EvictedAt survived the rejoin")
		}
	}
	journal = ReadJournal(store)
	if len(journal) != 3 || journal[2].To != StateAlive {
		t.Fatalf("rejoin not journaled: %+v", journal)
	}
}

func TestHeartbeatReplayIgnored(t *testing.T) {
	clock := &fakeClock{now: time.Unix(20_000, 0)}
	col := NewCollector(CollectorOptions{Clock: clock.Now})

	col.OnHeartbeat(Heartbeat{Instance: "ric-0", Seq: 5, Epoch: 3})
	first := col.Health()[0].LastHeartbeat

	// The broker retains the heartbeat topic; a collector reconnect can
	// surface stale beacons. They must not refresh liveness.
	clock.Advance(time.Second)
	col.OnHeartbeat(Heartbeat{Instance: "ric-0", Seq: 3, Epoch: 1})
	h := col.Health()[0]
	if !h.LastHeartbeat.Equal(first) || h.HeartbeatSeq != 5 || h.Epoch != 3 {
		t.Fatalf("stale beacon applied: %+v", h)
	}

	// An equal-or-newer beacon does refresh.
	clock.Advance(time.Second)
	col.OnHeartbeat(Heartbeat{Instance: "ric-0", Seq: 6})
	if h := col.Health()[0]; h.HeartbeatSeq != 6 || !h.LastHeartbeat.After(first) {
		t.Fatalf("fresh beacon ignored: %+v", h)
	}
}

func TestScrapeRoundCompletion(t *testing.T) {
	clock := &fakeClock{now: time.Unix(30_000, 0)}
	var published []struct {
		topic   string
		payload []byte
	}
	col := NewCollector(CollectorOptions{
		Clock: clock.Now,
		Publish: func(topic string, payload []byte) error {
			published = append(published, struct {
				topic   string
				payload []byte
			}{topic, payload})
			return nil
		},
	})

	col.OnHeartbeat(Heartbeat{Instance: "ric-0", Seq: 1})
	col.OnHeartbeat(Heartbeat{Instance: "ric-1", Seq: 1})

	done := col.ScrapeOnce()
	if done == nil {
		t.Fatal("scrape refused with live instances")
	}
	if len(published) != 1 || published[0].topic != TopicScrape {
		t.Fatalf("published = %+v", published)
	}
	req, err := ParseScrapeRequest(published[0].payload)
	if err != nil {
		t.Fatal(err)
	}

	col.OnReport(Report{Instance: "ric-0", Seq: req.Seq})
	select {
	case <-done:
		t.Fatal("round completed with one of two reports")
	default:
	}
	col.OnReport(Report{Instance: "ric-1", Seq: req.Seq})
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("round never completed")
	}

	// The merged view now carries both instances.
	if got := len(col.MergedSeries()); got != 0 {
		// Empty reports merge to nothing; the point is no panic and a
		// completed round. Non-zero would mean phantom series.
		t.Fatalf("merged series from empty reports = %d", got)
	}
}

func TestScrapeSkipsDeadInstances(t *testing.T) {
	clock := &fakeClock{now: time.Unix(40_000, 0)}
	var rounds int
	col := NewCollector(CollectorOptions{
		SuspectAfter: time.Second,
		DeadAfter:    2 * time.Second,
		Clock:        clock.Now,
		Publish:      func(string, []byte) error { rounds++; return nil },
	})
	col.OnHeartbeat(Heartbeat{Instance: "ric-0", Seq: 1})
	col.OnHeartbeat(Heartbeat{Instance: "ric-1", Seq: 1})
	// The detector is staged: one sweep to suspect, another to dead.
	col.Sweep(clock.Advance(90 * time.Second))
	col.Sweep(clock.Now())

	if done := col.ScrapeOnce(); done != nil {
		t.Fatal("scrape proceeded with no live instance")
	}

	// One rejoins; the round waits only on it.
	col.OnHeartbeat(Heartbeat{Instance: "ric-1", Seq: 2})
	done := col.ScrapeOnce()
	if done == nil {
		t.Fatal("scrape refused after rejoin")
	}
	col.OnReport(Report{Instance: "ric-1", Seq: 2})
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("round blocked on a dead instance's report")
	}
}
