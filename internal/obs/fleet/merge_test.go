package fleet

import (
	"testing"

	"github.com/6g-xsec/xsec/internal/obs"
)

func TestRelabelInjectsInstance(t *testing.T) {
	s := relabel("ric-1", obs.SeriesSnapshot{
		Name: "xsec_mobiwatch_records_total", Kind: "counter",
		Labels: map[string]string{"node": "gnb-ric-1"},
	})
	if s.Labels["instance"] != "ric-1" {
		t.Fatalf("instance label = %q", s.Labels["instance"])
	}
	if s.Labels["node"] != "gnb-ric-1" {
		t.Fatalf("node label lost: %v", s.Labels)
	}
}

func TestRelabelCollisionMovesToExported(t *testing.T) {
	// A misbehaving (or re-exporting) instance reports a series already
	// carrying an "instance" label; the collector's identity must win and
	// the original value move aside, so one instance cannot impersonate
	// another in the merged view.
	s := relabel("ric-0", obs.SeriesSnapshot{
		Name: "up", Kind: "gauge",
		Labels: map[string]string{"instance": "ric-7"},
	})
	if s.Labels["instance"] != "ric-0" {
		t.Fatalf("collector identity lost: %v", s.Labels)
	}
	if s.Labels[ExportedInstanceLabel] != "ric-7" {
		t.Fatalf("original instance label not preserved: %v", s.Labels)
	}
}

func TestCounterResetAbsorption(t *testing.T) {
	m := newInstanceMerge()
	counter := func(v float64) []obs.SeriesSnapshot {
		return []obs.SeriesSnapshot{{Name: "xsec_mobiwatch_records_total", Kind: "counter", Value: v}}
	}

	m.absorb(counter(10))
	if got := m.adjusted[0].Value; got != 10 {
		t.Fatalf("first absorb = %v", got)
	}
	m.absorb(counter(25))
	if got := m.adjusted[0].Value; got != 25 {
		t.Fatalf("monotonic growth = %v", got)
	}

	// Instance restart: the counter re-reports from near zero. The merged
	// value must keep the old incarnation's high-water mark.
	m.absorb(counter(4))
	if got := m.adjusted[0].Value; got != 29 {
		t.Fatalf("after reset = %v, want 25+4", got)
	}
	m.absorb(counter(6))
	if got := m.adjusted[0].Value; got != 31 {
		t.Fatalf("post-reset growth = %v, want 25+6", got)
	}
}

func TestHistogramResetAbsorption(t *testing.T) {
	m := newInstanceMerge()
	hist := func(c1, c2 uint64, sum float64) []obs.SeriesSnapshot {
		return []obs.SeriesSnapshot{{
			Name: "xsec_mobiwatch_score_seconds", Kind: "histogram",
			Count: c1 + c2, Sum: sum,
			Buckets: []obs.BucketSnapshot{{LE: 0.01, Count: c1}, {LE: 0.1, Count: c1 + c2}},
		}}
	}

	m.absorb(hist(8, 2, 0.5))
	m.absorb(hist(1, 1, 0.05)) // restart: count went 10 -> 2

	adj := m.adjusted[0]
	if adj.Count != 12 {
		t.Fatalf("adjusted count = %d, want 10+2", adj.Count)
	}
	if adj.Sum != 0.55 {
		t.Fatalf("adjusted sum = %v, want 0.5+0.05", adj.Sum)
	}
	if adj.Buckets[0].Count != 9 || adj.Buckets[1].Count != 12 {
		t.Fatalf("adjusted buckets = %+v", adj.Buckets)
	}
	if q := obs.HistQuantile(adj.Buckets, 0.5); q <= 0 || q > 0.1 {
		t.Fatalf("median over merged buckets = %v", q)
	}
}

func TestComputeRollupsSumsAcrossInstances(t *testing.T) {
	perInstance := map[string]*instanceMerge{"ric-0": newInstanceMerge(), "ric-1": newInstanceMerge()}
	perInstance["ric-0"].absorb([]obs.SeriesSnapshot{
		{Name: "xsec_mobiwatch_records_total", Kind: "counter", Value: 100, Labels: map[string]string{"node": "gnb-ric-0"}},
		{Name: "xsec_mobiwatch_alerts_total", Kind: "counter", Value: 7, Labels: map[string]string{"outcome": "raised", "node": "gnb-ric-0"}},
		{Name: "xsec_fed_ues", Kind: "gauge", Value: 3}, // no rollup mapping: stays per-instance only
	})
	perInstance["ric-1"].absorb([]obs.SeriesSnapshot{
		{Name: "xsec_mobiwatch_records_total", Kind: "counter", Value: 50, Labels: map[string]string{"node": "gnb-ric-1"}},
		{Name: "xsec_mobiwatch_alerts_total", Kind: "counter", Value: 1, Labels: map[string]string{"outcome": "dropped", "node": "gnb-ric-1"}},
	})

	rollups := computeRollups(perInstance)
	find := func(name, labelK, labelV string) *obs.SeriesSnapshot {
		for i := range rollups {
			s := &rollups[i]
			if s.Name == name && (labelK == "" || s.Labels[labelK] == labelV) {
				return s
			}
		}
		return nil
	}

	if s := find("xsec_fleet_records_total", "", ""); s == nil || s.Value != 150 {
		t.Fatalf("records rollup = %+v, want 150", s)
	}
	// Discriminating labels survive; per-instance labels (node) do not.
	if s := find("xsec_fleet_alerts_total", "outcome", "raised"); s == nil || s.Value != 7 || s.Labels["node"] != "" {
		t.Fatalf("raised alerts rollup = %+v", s)
	}
	if s := find("xsec_fleet_alerts_total", "outcome", "dropped"); s == nil || s.Value != 1 {
		t.Fatalf("dropped alerts rollup = %+v", s)
	}
	if s := find("xsec_fleet_ues", "", ""); s != nil {
		t.Fatalf("unmapped family rolled up: %+v", s)
	}
}

func TestComputeRollupsLatencyQuantiles(t *testing.T) {
	perInstance := map[string]*instanceMerge{"ric-0": newInstanceMerge()}
	perInstance["ric-0"].absorb([]obs.SeriesSnapshot{{
		Name: "xsec_mobiwatch_score_seconds", Kind: "histogram",
		Count: 100, Sum: 1.0,
		Buckets: []obs.BucketSnapshot{{LE: 0.001, Count: 90}, {LE: 0.1, Count: 100}},
	}})
	rollups := computeRollups(perInstance)
	var sawHist, sawQuantile bool
	for _, s := range rollups {
		switch s.Name {
		case "xsec_fleet_detect_latency_seconds":
			sawHist = true
		case "xsec_fleet_detect_latency_quantile":
			sawQuantile = true
			if s.Value <= 0 {
				t.Fatalf("quantile q=%s is %v", s.Labels["q"], s.Value)
			}
		}
	}
	if !sawHist || !sawQuantile {
		t.Fatalf("latency rollups missing (hist=%v quantile=%v): %+v", sawHist, sawQuantile, rollups)
	}
}
