package fleet

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/prov"
	"github.com/6g-xsec/xsec/internal/sdl"
)

// CollectorOptions configure the SMO-side fleet collector.
type CollectorOptions struct {
	// SuspectAfter is how long without a heartbeat before an instance is
	// marked suspect (default 2s). DeadAfter marks it dead — and triggers
	// automatic ring eviction — after a further silence (default 5s total
	// from the last heartbeat).
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// ScrapePeriod is the cadence of snapshot pull rounds (default 2s).
	// SweepPeriod is the failure-detector tick (default 250ms).
	ScrapePeriod time.Duration
	SweepPeriod  time.Duration

	// Publish sends a payload on a federation bus topic — typically
	// Broker-local. Required for scraping; heartbeats and reports arrive
	// via OnHeartbeat/OnReport regardless.
	Publish func(topic string, payload []byte) error
	// Evict removes a dead instance from the federation ring. Called at
	// most once per death; a rejoin re-arms it. Optional.
	Evict func(instance string) error
	// Store persists the health journal and feeds the trace stitcher
	// (migration audits live in the same store). Optional.
	Store *sdl.Store

	// Objectives are the SLOs to evaluate (DefaultObjectives when nil).
	Objectives []Objective
	// BurnFastWindow/BurnSlowWindow are the multi-window burn-rate alert
	// windows (defaults 30s and 3m — scaled for the testbed's compressed
	// timebase; production deployments would use 5m/1h).
	BurnFastWindow time.Duration
	BurnSlowWindow time.Duration

	// Clock injects time (tests). Defaults to time.Now.
	Clock func() time.Time
}

func (o *CollectorOptions) fill() {
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 2 * time.Second
	}
	if o.DeadAfter <= 0 {
		o.DeadAfter = 5 * time.Second
	}
	if o.DeadAfter <= o.SuspectAfter {
		o.DeadAfter = o.SuspectAfter * 2
	}
	if o.ScrapePeriod <= 0 {
		o.ScrapePeriod = 2 * time.Second
	}
	if o.SweepPeriod <= 0 {
		o.SweepPeriod = 250 * time.Millisecond
	}
	if o.Objectives == nil {
		o.Objectives = DefaultObjectives()
	}
	if o.BurnFastWindow <= 0 {
		o.BurnFastWindow = 30 * time.Second
	}
	if o.BurnSlowWindow <= 0 {
		o.BurnSlowWindow = 3 * time.Minute
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
}

// Collector is the fleet observability plane's SMO half: failure
// detector, metrics federator, SLO engine, and trace stitcher.
type Collector struct {
	opts CollectorOptions

	mu      sync.Mutex
	health  map[string]*InstanceHealth
	merges  map[string]*instanceMerge
	reports map[string]Report // latest report per instance
	rollups []obs.SeriesSnapshot
	slos    []*sloState
	// rate tracking for the fleet indication-rate gauge
	lastRecords  map[string]uint64
	lastRecordAt time.Time
	indRate      float64
	scrapeSeq    uint64
	journalSeq   uint64
	pending      map[uint64]*scrapeRound

	stop chan struct{}
	done sync.WaitGroup
	once sync.Once
}

type scrapeRound struct {
	started time.Time
	want    map[string]bool
	got     map[string]bool
	doneCh  chan struct{}
}

// NewCollector builds a collector; call Start to run its loops, or
// drive OnHeartbeat/Sweep/ScrapeOnce directly in tests.
func NewCollector(opts CollectorOptions) *Collector {
	opts.fill()
	return &Collector{
		opts:        opts,
		health:      make(map[string]*InstanceHealth),
		merges:      make(map[string]*instanceMerge),
		reports:     make(map[string]Report),
		lastRecords: make(map[string]uint64),
		pending:     make(map[uint64]*scrapeRound),
		stop:        make(chan struct{}),
	}
}

// Start runs the sweep and scrape loops until Stop.
func (c *Collector) Start() {
	c.done.Add(2)
	go func() {
		defer c.done.Done()
		t := time.NewTicker(c.opts.SweepPeriod)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.Sweep(c.opts.Clock())
			}
		}
	}()
	go func() {
		defer c.done.Done()
		t := time.NewTicker(c.opts.ScrapePeriod)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.ScrapeOnce()
			}
		}
	}()
}

// Stop halts the loops. Safe to call more than once.
func (c *Collector) Stop() {
	c.once.Do(func() { close(c.stop) })
	c.done.Wait()
}

// OnHeartbeat ingests one instance heartbeat: refreshes the failure
// detector and rejoins suspect/dead instances.
func (c *Collector) OnHeartbeat(hb Heartbeat) {
	now := c.opts.Clock()
	obsHeartbeats.Inc()

	c.mu.Lock()
	h := c.health[hb.Instance]
	if h == nil {
		h = &InstanceHealth{Instance: hb.Instance, State: StateAlive, LastHeartbeat: now}
		c.health[hb.Instance] = h
		obsLogJoin(hb.Instance)
	}
	// Replayed heartbeats (the broker retains the topic) carry stale
	// sequence numbers; only newer beacons refresh liveness.
	if hb.Seq < h.HeartbeatSeq {
		c.mu.Unlock()
		return
	}
	var rejoined State
	var wasDown bool
	if h.State != StateAlive {
		rejoined, wasDown = h.State, true
	}
	h.State = StateAlive
	h.Node = hb.Node
	h.LastHeartbeat = now
	h.HeartbeatSeq = hb.Seq
	h.Epoch = hb.Epoch
	h.UEs = hb.UEs
	h.Records = hb.Records
	h.EvictedAt = time.Time{}
	c.updateStateGaugesLocked()
	c.mu.Unlock()

	if wasDown {
		c.journal(Transition{
			Instance: hb.Instance, From: rejoined, To: StateAlive,
			At: now, Reason: "heartbeat resumed",
		})
	}
}

// OnReport ingests one scrape report: relabels and reset-adjusts the
// instance's series, recomputes rollups, feeds the SLO engine, and
// completes any pending scrape round the report answers.
func (c *Collector) OnReport(rep Report) {
	now := c.opts.Clock()
	obsReports.With(rep.Instance).Inc()

	c.mu.Lock()
	m := c.merges[rep.Instance]
	if m == nil {
		m = newInstanceMerge()
		c.merges[rep.Instance] = m
	}
	relabeled := make([]obs.SeriesSnapshot, 0, len(rep.Series))
	for _, s := range rep.Series {
		relabeled = append(relabeled, relabel(rep.Instance, s))
	}
	m.absorb(relabeled)
	c.reports[rep.Instance] = rep
	c.recomputeLocked(now)

	// Close out the scrape round once every live instance has answered.
	if round := c.pending[rep.Seq]; round != nil {
		round.got[rep.Instance] = true
		doneAll := true
		for id := range round.want {
			if !round.got[id] {
				doneAll = false
				break
			}
		}
		if doneAll {
			obsScrapeSeconds.Observe(now.Sub(round.started).Seconds())
			close(round.doneCh)
			delete(c.pending, rep.Seq)
		}
	}
	c.mu.Unlock()
}

// recomputeLocked rebuilds rollups, the indication-rate gauge, and the
// SLO sample rings. Caller holds c.mu.
func (c *Collector) recomputeLocked(now time.Time) {
	c.rollups = computeRollups(c.merges)

	// Fleet indication rate from the merged records counter delta.
	var total float64
	for _, s := range c.rollups {
		if s.Name == "xsec_fleet_records_total" {
			total += s.Value
		}
	}
	if !c.lastRecordAt.IsZero() {
		dt := now.Sub(c.lastRecordAt).Seconds()
		if prev, ok := c.lastRecords["_fleet"]; ok && dt > 0 && total >= float64(prev) {
			c.indRate = (total - float64(prev)) / dt
			obsIndRate.Set(c.indRate)
		}
	}
	c.lastRecords["_fleet"] = uint64(total)
	c.lastRecordAt = now

	if c.slos == nil {
		for _, obj := range c.opts.Objectives {
			c.slos = append(c.slos, &sloState{obj: obj})
		}
	}
	keep := 2 * c.opts.BurnSlowWindow
	for _, st := range c.slos {
		st.observe(now, c.rollups, keep)
		fast := st.burnRate(now, c.opts.BurnFastWindow)
		slow := st.burnRate(now, c.opts.BurnSlowWindow)
		obsSLOBurn.With(st.obj.Name, "fast").Set(fast)
		obsSLOBurn.With(st.obj.Name, "slow").Set(slow)
		firing := 0.0
		if fast > st.obj.burnThreshold() && slow > st.obj.burnThreshold() {
			firing = 1
		}
		obsSLOFiring.With(st.obj.Name).Set(firing)
	}
}

// Sweep advances the failure detector to now: alive instances whose
// heartbeat deadline lapsed go suspect, suspects past the dead deadline
// go dead (triggering eviction). Exposed for deterministic tests; the
// Start loop calls it on every tick.
func (c *Collector) Sweep(now time.Time) {
	type evictee struct{ instance string }
	var transitions []Transition
	var evict []evictee

	c.mu.Lock()
	for id, h := range c.health {
		silent := now.Sub(h.LastHeartbeat)
		switch h.State {
		case StateAlive:
			if silent >= c.opts.SuspectAfter {
				h.State = StateSuspect
				transitions = append(transitions, Transition{
					Instance: id, From: StateAlive, To: StateSuspect, At: now,
					Reason: fmt.Sprintf("no heartbeat for %s", silent.Round(time.Millisecond)),
				})
			}
		case StateSuspect:
			if silent >= c.opts.DeadAfter {
				h.State = StateDead
				h.EvictedAt = now
				transitions = append(transitions, Transition{
					Instance: id, From: StateSuspect, To: StateDead, At: now,
					Reason: fmt.Sprintf("no heartbeat for %s, evicting", silent.Round(time.Millisecond)),
				})
				evict = append(evict, evictee{instance: id})
			}
		}
	}
	if len(transitions) > 0 {
		c.updateStateGaugesLocked()
	}
	c.mu.Unlock()

	for _, tr := range transitions {
		c.journal(tr)
	}
	for _, e := range evict {
		obsEvictions.Inc()
		if c.opts.Evict != nil {
			if err := c.opts.Evict(e.instance); err != nil {
				obs.L().Warn("fleet: evict failed", "instance", e.instance, "err", err)
			}
		}
	}
}

// updateStateGaugesLocked refreshes xsec_fleet_instances. Caller holds
// c.mu.
func (c *Collector) updateStateGaugesLocked() {
	counts := map[State]int{}
	for _, h := range c.health {
		counts[h.State]++
	}
	for st := StateAlive; st <= StateDead; st++ {
		obsInstances.With(st.String()).Set(float64(counts[st]))
	}
}

// journal persists a failure-detector transition to the SDL and the
// provenance ledger, and bumps the transition metrics.
func (c *Collector) journal(tr Transition) {
	c.mu.Lock()
	c.journalSeq++
	tr.Seq = c.journalSeq
	c.mu.Unlock()

	obsTransitions.With(tr.To.String()).Inc()
	obs.L().Info("fleet: state transition", "instance", tr.Instance,
		"from", tr.From.String(), "to", tr.To.String(), "reason", tr.Reason)

	if c.opts.Store != nil {
		if raw, err := json.Marshal(tr); err == nil {
			key := fmt.Sprintf("%08d/%s", tr.Seq, tr.Instance)
			c.opts.Store.Set(JournalNamespace, key, raw)
		}
	}
	prov.Record(prov.Event{
		Chain:  prov.ChainID{Node: JournalNode, SN: tr.Seq},
		Kind:   prov.KindFleet,
		At:     tr.At,
		Label:  tr.To.String(),
		Target: tr.Instance,
		Note:   tr.Reason,
	})
}

// ScrapeOnce publishes one snapshot pull request and returns a channel
// closed when every live instance has answered (nil when there is no
// Publish hook or no live instance — nothing to wait for).
func (c *Collector) ScrapeOnce() <-chan struct{} {
	if c.opts.Publish == nil {
		return nil
	}
	now := c.opts.Clock()

	c.mu.Lock()
	c.scrapeSeq++
	seq := c.scrapeSeq
	want := make(map[string]bool)
	for id, h := range c.health {
		if h.State != StateDead {
			want[id] = true
		}
	}
	var round *scrapeRound
	if len(want) > 0 {
		round = &scrapeRound{started: now, want: want, got: map[string]bool{}, doneCh: make(chan struct{})}
		c.pending[seq] = round
		// Drop stale rounds so a crashed instance can't leak them.
		for s := range c.pending {
			if s+4 < seq {
				delete(c.pending, s)
			}
		}
	}
	c.mu.Unlock()

	obsScrapes.Inc()
	req := ScrapeRequest{Seq: seq, UnixNanos: now.UnixNano()}
	payload, err := req.Encode()
	if err == nil {
		err = c.opts.Publish(TopicScrape, payload)
	}
	if err != nil {
		obs.L().Warn("fleet: scrape publish failed", "seq", seq, "err", err)
		return nil
	}
	if round == nil {
		return nil
	}
	return round.doneCh
}

// Health returns every instance's failure-detector row, sorted by
// instance ID.
func (c *Collector) Health() []InstanceHealth {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]InstanceHealth, 0, len(c.health))
	for _, h := range c.health {
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Instance < out[j].Instance })
	return out
}

// Alive reports how many instances the detector currently holds alive.
func (c *Collector) Alive() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, h := range c.health {
		if h.State == StateAlive {
			n++
		}
	}
	return n
}

// MergedSeries returns the federated snapshot: every instance's
// reset-adjusted series under its "instance" label, followed by the
// xsec_fleet_* rollups.
func (c *Collector) MergedSeries() []obs.SeriesSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []obs.SeriesSnapshot
	ids := make([]string, 0, len(c.merges))
	for id := range c.merges {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		out = append(out, c.merges[id].adjusted...)
	}
	out = append(out, c.rollups...)
	return out
}

// SLO evaluates every objective now and returns their statuses.
func (c *Collector) SLO() []SLOStatus {
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SLOStatus, 0, len(c.slos))
	for _, st := range c.slos {
		ratio, good, total := st.sli()
		s := SLOStatus{
			Name:        st.obj.Name,
			Description: st.obj.Description,
			Target:      st.obj.Target,
			SLI:         ratio,
			Good:        good,
			Total:       total,
			BurnFast:    st.burnRate(now, c.opts.BurnFastWindow),
			BurnSlow:    st.burnRate(now, c.opts.BurnSlowWindow),
			FastWindow:  c.opts.BurnFastWindow,
			SlowWindow:  c.opts.BurnSlowWindow,
			Threshold:   st.obj.burnThreshold(),
		}
		s.Firing = s.BurnFast > s.Threshold && s.BurnSlow > s.Threshold
		out = append(out, s)
	}
	return out
}

// Traces stitches cross-instance distributed traces from the prov
// ledger's migration links plus every instance's reported spans.
func (c *Collector) Traces() []StitchedTrace {
	if c.opts.Store == nil {
		return nil
	}
	c.mu.Lock()
	reports := make(map[string]Report, len(c.reports))
	for id, r := range c.reports {
		reports[id] = r
	}
	health := make(map[string]*InstanceHealth, len(c.health))
	for id, h := range c.health {
		cp := *h
		health[id] = &cp
	}
	c.mu.Unlock()
	return Stitch(c.opts.Store, buildSpanIndex(reports), health)
}

// IndicationRate returns the last computed fleet-aggregate record rate.
func (c *Collector) IndicationRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.indRate
}

// obsLogJoin notes the first sighting of an instance.
func obsLogJoin(instance string) {
	obs.L().Info("fleet: tracking instance", "instance", instance)
}
