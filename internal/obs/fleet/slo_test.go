package fleet

import (
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/obs"
)

func alertRollups(raised, dropped float64) []obs.SeriesSnapshot {
	return []obs.SeriesSnapshot{
		{Name: "xsec_fleet_alerts_total", Kind: "counter", Value: raised, Labels: map[string]string{"outcome": "raised"}},
		{Name: "xsec_fleet_alerts_total", Kind: "counter", Value: dropped, Labels: map[string]string{"outcome": "dropped"}},
	}
}

func TestSLOBurnRateRatioObjective(t *testing.T) {
	var obj Objective
	for _, o := range DefaultObjectives() {
		if o.Name == "alert-delivery" {
			obj = o
		}
	}
	if obj.Name == "" {
		t.Fatal("alert-delivery objective missing from defaults")
	}
	st := &sloState{obj: obj}
	t0 := time.Unix(1000, 0)
	keep := 10 * time.Minute

	// Healthy traffic: 1000 raised, nothing dropped.
	st.observe(t0, alertRollups(1000, 0), keep)
	st.observe(t0.Add(30*time.Second), alertRollups(2000, 0), keep)
	if burn := st.burnRate(t0.Add(30*time.Second), 30*time.Second); burn != 0 {
		t.Fatalf("healthy burn = %v", burn)
	}

	// Incident: 10% of the next 1000 windows dropped. Evaluated just
	// after the incident sample, the fast window's base is the t0+30s
	// sample — bad fraction 0.1 against a 0.001 budget = burn 100.
	st.observe(t0.Add(time.Minute), alertRollups(2900, 100), keep)
	now := t0.Add(61 * time.Second)
	burn := st.burnRate(now, 30*time.Second)
	if burn < 99 || burn > 101 {
		t.Fatalf("incident burn = %v, want ~100", burn)
	}
	// The slow window reaches back to t0, diluting the same incident
	// over twice the traffic.
	slow := st.burnRate(now, time.Minute)
	if slow < 49 || slow > 51 {
		t.Fatalf("slow burn = %v, want ~50", slow)
	}

	ratio, good, total := st.sli()
	if total != 3000 || good != 2900 {
		t.Fatalf("sli totals = %v/%v", good, total)
	}
	if ratio <= 0.96 || ratio >= 0.97 {
		t.Fatalf("lifetime sli = %v, want 2900/3000", ratio)
	}
}

func TestSLOLatencyObjective(t *testing.T) {
	obj := Objective{
		Name: "detect-latency", Target: 0.99,
		LatencySeries: "xsec_fleet_detect_latency_seconds", LatencyBound: 0.05,
	}
	st := &sloState{obj: obj}
	hist := func(under, over uint64) []obs.SeriesSnapshot {
		return []obs.SeriesSnapshot{{
			Name: "xsec_fleet_detect_latency_seconds", Kind: "histogram",
			Count:   under + over,
			Buckets: []obs.BucketSnapshot{{LE: 0.05, Count: under}, {LE: 1, Count: under + over}},
		}}
	}
	t0 := time.Unix(2000, 0)
	st.observe(t0, hist(100, 0), time.Hour)
	st.observe(t0.Add(30*time.Second), hist(150, 50), time.Hour)

	// 50 of the last 100 observations breached the bound: bad fraction
	// 0.5 against a 0.01 budget = burn 50.
	burn := st.burnRate(t0.Add(30*time.Second), 30*time.Second)
	if burn < 49 || burn > 51 {
		t.Fatalf("latency burn = %v, want ~50", burn)
	}
}

func TestSLONoTraffic(t *testing.T) {
	st := &sloState{obj: DefaultObjectives()[1]}
	if burn := st.burnRate(time.Unix(0, 0), time.Minute); burn != 0 {
		t.Fatalf("empty-history burn = %v", burn)
	}
	ratio, _, _ := st.sli()
	if ratio != 1 {
		t.Fatalf("no-traffic sli = %v, want 1", ratio)
	}
	st.observe(time.Unix(3000, 0), nil, time.Hour)
	if burn := st.burnRate(time.Unix(3030, 0), time.Minute); burn != 0 {
		t.Fatalf("zero-total burn = %v", burn)
	}
}

func TestSLOHistoryTrim(t *testing.T) {
	st := &sloState{obj: DefaultObjectives()[1]}
	t0 := time.Unix(4000, 0)
	for i := 0; i < 100; i++ {
		st.observe(t0.Add(time.Duration(i)*time.Second), alertRollups(float64(i), 0), 10*time.Second)
	}
	if len(st.history) > 12 {
		t.Fatalf("history not trimmed: %d samples kept for a 10s window", len(st.history))
	}
}

func TestBucketCountAtOrBelow(t *testing.T) {
	buckets := []obs.BucketSnapshot{{LE: 0.01, Count: 5}, {LE: 0.05, Count: 8}, {LE: 1, Count: 10}}
	for _, tc := range []struct {
		v    float64
		want uint64
	}{{0.005, 5}, {0.05, 8}, {0.5, 10}, {2, 10}} {
		if got := bucketCountAtOrBelow(buckets, tc.v); got != tc.want {
			t.Fatalf("bucketCountAtOrBelow(%v) = %d, want %d", tc.v, got, tc.want)
		}
	}
	if got := bucketCountAtOrBelow(nil, 1); got != 0 {
		t.Fatalf("empty buckets = %d", got)
	}
}
