// Package fleet is the SMO-side observability plane of a federated
// 6G-XSec deployment: it turns N per-instance observability surfaces
// into one.
//
// Instances publish deadline-based heartbeats and answer periodic
// scrape requests with their obs.Snapshot plus their retained trace
// spans, all over the existing federation bus topics. The Collector —
// colocated with the federation Coordinator — merges the snapshots
// under an "instance" label, computes xsec_fleet_* rollups (aggregate
// indication rate, cross-instance detect-latency quantiles, migration
// counts), detects failed instances (suspect → dead, with the dead
// transition triggering automatic ring eviction, an SDL journal entry,
// and a prov event), evaluates declarative SLOs with multi-window
// burn-rate alerting, and stitches one UE's spans across migration
// boundaries into a single distributed trace. The merged surface is
// served at /fleet/metrics, /fleet/health, /fleet/slo, and
// /fleet/traces.
package fleet

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/sdl"
)

// Bus topics of the fleet plane. They ride the same federation bus the
// ring, policy, and migration traffic uses; the broker retains them
// like any other topic, so a collector that restarts replays the
// heartbeats it missed.
const (
	// TopicHeartbeat carries instance liveness beacons (JSON Heartbeat).
	TopicHeartbeat = "fleet-hb"
	// TopicScrape carries the collector's snapshot pull requests
	// (JSON ScrapeRequest).
	TopicScrape = "fleet-scrape"
	// TopicReport carries instance snapshot responses (JSON Report).
	TopicReport = "fleet-report"
)

// Heartbeat is one instance liveness beacon. Instances publish them at
// a fixed cadence; the collector's failure detector turns missing
// beacons into suspect → dead transitions.
type Heartbeat struct {
	// Instance is the federation identity ("ric-0").
	Instance string `json:"instance"`
	// Node is the instance's E2 node ID ("gnb-ric-0") — the prefix of
	// every trace/chain key the instance mints, which is how the
	// stitcher attributes a chain to an instance.
	Node string `json:"node"`
	// Seq increases per beacon from this instance.
	Seq uint64 `json:"seq"`
	// UnixNanos is the sender's wall clock at publish.
	UnixNanos int64 `json:"unix_nanos"`
	// Epoch is the ring epoch the instance has applied.
	Epoch int `json:"epoch"`
	// UEs and Records summarize live load (cheap gauges; the full
	// snapshot travels only on scrape).
	UEs     int    `json:"ues"`
	Records uint64 `json:"records"`
}

// Encode renders the heartbeat for the bus.
func (h Heartbeat) Encode() ([]byte, error) { return json.Marshal(h) }

// ParseHeartbeat decodes a bus heartbeat payload.
func ParseHeartbeat(data []byte) (Heartbeat, error) {
	var h Heartbeat
	if err := json.Unmarshal(data, &h); err != nil {
		return Heartbeat{}, fmt.Errorf("fleet: heartbeat: %w", err)
	}
	if h.Instance == "" {
		return Heartbeat{}, fmt.Errorf("fleet: heartbeat without instance")
	}
	return h, nil
}

// ScrapeRequest asks every instance for its snapshot. Seq identifies
// the round, so the collector can tell which reports answer which pull.
type ScrapeRequest struct {
	Seq       uint64 `json:"seq"`
	UnixNanos int64  `json:"unix_nanos"`
}

// Encode renders the request for the bus.
func (s ScrapeRequest) Encode() ([]byte, error) { return json.Marshal(s) }

// ParseScrapeRequest decodes a scrape request payload.
func ParseScrapeRequest(data []byte) (ScrapeRequest, error) {
	var s ScrapeRequest
	if err := json.Unmarshal(data, &s); err != nil {
		return ScrapeRequest{}, fmt.Errorf("fleet: scrape request: %w", err)
	}
	return s, nil
}

// Report is one instance's answer to a scrape: its per-instance metric
// snapshot plus the trace spans it retains. Series carry no "instance"
// label — the collector injects it on merge, renaming any pre-existing
// one to "exported_instance" (the Prometheus federation convention).
type Report struct {
	Instance  string               `json:"instance"`
	Node      string               `json:"node"`
	Seq       uint64               `json:"seq"` // echoes ScrapeRequest.Seq
	UnixNanos int64                `json:"unix_nanos"`
	Series    []obs.SeriesSnapshot `json:"series"`
	Spans     []obs.Span           `json:"spans,omitempty"`
}

// Encode renders the report for the bus.
func (r Report) Encode() ([]byte, error) { return json.Marshal(r) }

// ParseReport decodes a bus report payload.
func ParseReport(data []byte) (Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("fleet: report: %w", err)
	}
	if r.Instance == "" {
		return Report{}, fmt.Errorf("fleet: report without instance")
	}
	return r, nil
}

// State is an instance's position in the failure detector's machine.
type State uint8

// Failure-detector states: a heartbeat keeps an instance Alive; missing
// beacons past SuspectAfter mark it Suspect, past DeadAfter Dead (and
// auto-evicted). A beacon from a Suspect or Dead instance rejoins it as
// Alive.
const (
	StateAlive State = iota
	StateSuspect
	StateDead
)

var stateNames = [...]string{"alive", "suspect", "dead"}

// String returns the journal spelling of the state.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// MarshalJSON renders the state as its name.
func (s State) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses a state name.
func (s *State) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for i, n := range stateNames {
		if n == name {
			*s = State(i)
			return nil
		}
	}
	return fmt.Errorf("fleet: unknown state %q", name)
}

// InstanceHealth is one instance's row in /fleet/health.
type InstanceHealth struct {
	Instance      string    `json:"instance"`
	Node          string    `json:"node,omitempty"`
	State         State     `json:"state"`
	LastHeartbeat time.Time `json:"last_heartbeat"`
	HeartbeatSeq  uint64    `json:"heartbeat_seq"`
	Epoch         int       `json:"epoch"`
	UEs           int       `json:"ues"`
	Records       uint64    `json:"records"`
	// EvictedAt is set once the dead transition triggered ring eviction.
	EvictedAt time.Time `json:"evicted_at,omitempty"`
}

// Transition is one failure-detector state change, journaled to the
// SDL under JournalNamespace.
type Transition struct {
	Instance string    `json:"instance"`
	From     State     `json:"from"`
	To       State     `json:"to"`
	At       time.Time `json:"at"`
	Reason   string    `json:"reason"`
	// Seq orders transitions; it is also the prov chain SN.
	Seq uint64 `json:"seq"`
}

// JournalNamespace is the SDL namespace holding fleet-health
// transitions, keyed "<seq>/<instance>".
const JournalNamespace = "fleet/health"

// JournalNode is the prov chain node under which fleet transitions are
// recorded: chain "smo-fleet/<seq>".
const JournalNode = "smo-fleet"

// ReadJournal returns every journaled transition in seq order.
func ReadJournal(store *sdl.Store) []Transition {
	all := store.GetAll(JournalNamespace, "")
	out := make([]Transition, 0, len(all))
	for _, raw := range all {
		var tr Transition
		if err := json.Unmarshal(raw, &tr); err == nil {
			out = append(out, tr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
