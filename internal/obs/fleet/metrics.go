package fleet

import "github.com/6g-xsec/xsec/internal/obs"

// Fleet-plane observability. These series live in the collector's own
// process registry (the SMO's /metrics), so an operator watching the
// coordinator sees fleet state without scraping /fleet/metrics; the
// merged exposition additionally carries them as rollups.
var (
	obsInstances = obs.NewGaugeVec("xsec_fleet_instances",
		"Federated instances known to the collector, by failure-detector state.",
		"state")
	obsHeartbeats = obs.NewCounter("xsec_fleet_heartbeats_total",
		"Instance heartbeats received by the collector.")
	obsScrapes = obs.NewCounter("xsec_fleet_scrapes_total",
		"Snapshot scrape rounds the collector has requested.")
	obsReports = obs.NewCounterVec("xsec_fleet_reports_total",
		"Snapshot reports received, by instance.", "instance")
	obsTransitions = obs.NewCounterVec("xsec_fleet_transitions_total",
		"Failure-detector state transitions, by new state (suspect, dead, alive).",
		"to")
	obsEvictions = obs.NewCounter("xsec_fleet_evictions_total",
		"Dead instances automatically evicted from the ring.")
	obsScrapeSeconds = obs.NewHistogram("xsec_fleet_scrape_seconds",
		"Scrape round-trip: request published to all live reports merged.",
		obs.ExpBuckets(0.0005, 2, 14))
	obsIndRate = obs.NewGauge("xsec_fleet_ind_per_second",
		"Aggregate fleet indication-record rate from the last two scrape rounds.")
	obsDetectP99 = obs.NewGauge("xsec_fleet_detect_p99_seconds",
		"p99 per-batch detection latency across all instances' merged histograms.")
	obsSLOBurn = obs.NewGaugeVec("xsec_fleet_slo_burn_rate",
		"SLO error-budget burn rate, by objective and window (fast, slow).",
		"slo", "window")
	obsSLOFiring = obs.NewGaugeVec("xsec_fleet_slo_firing",
		"1 while the objective's multi-window burn-rate alert is firing.",
		"slo")
)
