package fleet

import (
	"encoding/json"
	"net/http"
	"strconv"

	"github.com/6g-xsec/xsec/internal/obs"
)

// Mount registers the collector's fleet endpoints on the shared
// observability surface (obs.Handle), so the SMO process serves them
// alongside /metrics and /healthz:
//
//	/fleet/metrics  merged text exposition: every instance's series
//	                under its "instance" label plus xsec_fleet_* rollups
//	/fleet/health   failure-detector state of every instance (JSON)
//	/fleet/slo      objective evaluations with burn rates (JSON)
//	/fleet/traces   stitched cross-instance distributed traces (JSON);
//	                ?ue=<id> filters to one UE
func (c *Collector) Mount() {
	obs.Handle("/fleet/metrics", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WriteSeries(w, c.MergedSeries())
	}))
	obs.Handle("/fleet/health", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Instances []InstanceHealth `json:"instances"`
		}{Instances: c.Health()})
	}))
	obs.Handle("/fleet/slo", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		slos := c.SLO()
		firing := 0
		for _, s := range slos {
			if s.Firing {
				firing++
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Firing     int         `json:"firing"`
			Objectives []SLOStatus `json:"objectives"`
		}{Firing: firing, Objectives: slos})
	}))
	obs.Handle("/fleet/traces", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		traces := c.Traces()
		if ue := r.URL.Query().Get("ue"); ue != "" {
			var filtered []StitchedTrace
			for _, t := range traces {
				if strconv.FormatUint(t.UEID, 10) == ue {
					filtered = append(filtered, t)
				}
			}
			traces = filtered
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(traces)
	}))
}
