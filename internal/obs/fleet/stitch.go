package fleet

import (
	"sort"
	"time"

	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/prov"
	"github.com/6g-xsec/xsec/internal/sdl"
)

// Trace stitching: a UE that migrates mid-attack leaves spans on two
// (or more) instances under different chain keys — "gnb-a/17" on the
// source, "gnb-b/3" on the destination. The provenance ledger already
// links those chains (the migration "in" event's Note names the source
// chain), so the stitcher walks the link graph from AuditMigrations,
// orders the chains source→destination, and attaches each instance's
// reported spans to its segment. The result is one distributed trace
// for the UE's whole journey, queryable from the SMO without touching
// any instance.

// TraceSegment is one chain's worth of a stitched trace: the spans one
// instance recorded under one chain key.
type TraceSegment struct {
	// Chain is the trace key ("node/sn") of this segment.
	Chain string `json:"chain"`
	// Instance and Node identify who recorded the segment (resolved from
	// heartbeat metadata; empty when the node never heartbeated).
	Instance string `json:"instance,omitempty"`
	Node     string `json:"node,omitempty"`
	// Migrated is true when this segment ends in a migration out (i.e. a
	// later segment continues the trace elsewhere).
	Migrated bool       `json:"migrated,omitempty"`
	Spans    []obs.Span `json:"spans"`
}

// StitchedTrace is one UE's cross-instance distributed trace.
type StitchedTrace struct {
	UEID uint64 `json:"ue_id"`
	// Segments in causal order: source chain(s) first, final owner last.
	Segments []TraceSegment `json:"segments"`
	// Start/End bound the whole trace across all segments' spans (zero
	// when no spans were reported for any segment).
	Start time.Time `json:"start,omitempty"`
	End   time.Time `json:"end,omitempty"`
	// Complete is true when every migration hop in the chain was
	// provenance-audited as joined (the ledger saw both sides).
	Complete bool `json:"complete"`
}

// Duration is the stitched trace's end-to-end elapsed time.
func (t StitchedTrace) Duration() time.Duration {
	if t.Start.IsZero() || t.End.IsZero() {
		return 0
	}
	return t.End.Sub(t.Start)
}

// spanIndex groups reported spans by trace key across all instances.
type spanIndex map[string][]obs.Span

func buildSpanIndex(reports map[string]Report) spanIndex {
	idx := make(spanIndex)
	for _, rep := range reports {
		for _, sp := range rep.Spans {
			idx[sp.Key] = append(idx[sp.Key], sp)
		}
	}
	for key := range idx {
		spans := idx[key]
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
		idx[key] = spans
	}
	return idx
}

// nodeOwner maps a chain's node prefix ("gnb-ric-0") to the instance
// that owns it, from heartbeat metadata.
func nodeOwner(health map[string]*InstanceHealth, node string) string {
	for id, h := range health {
		if h.Node == node {
			return id
		}
	}
	return ""
}

// Stitch assembles cross-instance traces for every audited migration in
// the store. Chains that migrated more than once are followed
// transitively (a→b→c collapses into one three-segment trace).
func Stitch(store *sdl.Store, spans spanIndex, health map[string]*InstanceHealth) []StitchedTrace {
	audits := prov.AuditMigrations(store)
	if len(audits) == 0 {
		return nil
	}

	// Link graph: source chain → audit. A chain that appears as some
	// audit's From is not a trace head; heads are the earliest chains.
	byFrom := make(map[prov.ChainID]prov.MigrationAudit, len(audits))
	isDest := make(map[prov.ChainID]bool, len(audits))
	for _, a := range audits {
		if a.From != (prov.ChainID{}) {
			byFrom[a.From] = a
		}
		isDest[a.To] = true
	}

	var out []StitchedTrace
	for _, a := range audits {
		head := a.From
		if head == (prov.ChainID{}) || isDest[head] {
			continue // unparseable source, or a middle hop of a longer trace
		}
		tr := StitchedTrace{UEID: a.UEID, Complete: true}
		// Walk head → … → final owner, guarding against ledger cycles.
		cur, hops := head, 0
		for hops < 64 {
			hops++
			next, ok := byFrom[cur]
			seg := TraceSegment{
				Chain:    cur.String(),
				Node:     cur.Node,
				Instance: nodeOwner(health, cur.Node),
				Migrated: ok,
				Spans:    spans[cur.String()],
			}
			tr.Segments = append(tr.Segments, seg)
			if !ok {
				break
			}
			if !next.Joined {
				tr.Complete = false
			}
			cur = next.To
		}
		for _, seg := range tr.Segments {
			for _, sp := range seg.Spans {
				if tr.Start.IsZero() || sp.Start.Before(tr.Start) {
					tr.Start = sp.Start
				}
				if sp.End.After(tr.End) {
					tr.End = sp.End
				}
			}
		}
		out = append(out, tr)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].UEID != out[j].UEID {
			return out[i].UEID < out[j].UEID
		}
		return out[i].Segments[0].Chain < out[j].Segments[0].Chain
	})
	return out
}
