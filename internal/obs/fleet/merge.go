package fleet

import (
	"sort"
	"strings"

	"github.com/6g-xsec/xsec/internal/obs"
)

// This file is the metrics-federation half of the plane: per-instance
// snapshots are relabeled under an "instance" label, counter resets
// across instance restarts are absorbed so merged counters stay
// monotonic, and fleet rollups are computed across the adjusted series.

// ExportedInstanceLabel is where a pre-existing "instance" label on a
// reported series is moved when the collector injects its own — the
// same convention a Prometheus federation scrape uses for colliding
// target labels.
const ExportedInstanceLabel = "exported_instance"

// relabel returns a copy of s with the instance label injected. A label
// collision (the instance reported a series that already carries an
// "instance" label, e.g. a re-exported downstream scrape) moves the
// original value to ExportedInstanceLabel; the collector's own identity
// always wins, so one misbehaving instance cannot impersonate another
// in the merged view.
func relabel(instance string, s obs.SeriesSnapshot) obs.SeriesSnapshot {
	labels := make(map[string]string, len(s.Labels)+1)
	for k, v := range s.Labels {
		if k == "instance" {
			labels[ExportedInstanceLabel] = v
			continue
		}
		labels[k] = v
	}
	labels["instance"] = instance
	s.Labels = labels
	return s
}

// seriesKey identifies one series inside one instance's snapshot: the
// family name plus its sorted label pairs (before relabeling).
func seriesKey(s obs.SeriesSnapshot) string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for _, k := range keys {
		b.WriteByte('\xff')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Labels[k])
	}
	return b.String()
}

// resetTrack absorbs counter resets for one series of one instance: an
// instance that restarts re-reports its counters from zero, and a
// merged counter must never go backwards. When the raw value drops, the
// previous high-water mark folds into the base; the adjusted value is
// base + raw. Histograms get the same treatment via their total count
// (a count that went backwards means the whole histogram restarted, so
// bucket counts and sum re-accumulate on top of the saved base).
type resetTrack struct {
	base    float64
	lastRaw float64

	countBase uint64
	lastCount uint64
	sumBase   float64
	lastSum   float64
	buckets   []uint64 // per-bucket bases, parallel to the snapshot
}

// adjust applies reset absorption to one reported series in place and
// returns the adjusted copy.
func (t *resetTrack) adjust(s obs.SeriesSnapshot) obs.SeriesSnapshot {
	switch {
	case len(s.Buckets) > 0:
		if s.Count < t.lastCount {
			// Restart: fold the dead incarnation's totals into the base
			// (its final bucket counts were folded by noteHistogramReset).
			t.countBase += t.lastCount
			t.sumBase += t.lastSum
		}
		if t.buckets == nil {
			t.buckets = make([]uint64, len(s.Buckets))
		}
		t.lastCount, t.lastSum = s.Count, s.Sum
		adj := s
		adj.Count = t.countBase + s.Count
		adj.Sum = t.sumBase + s.Sum
		adj.Buckets = append([]obs.BucketSnapshot(nil), s.Buckets...)
		for i := range adj.Buckets {
			if i < len(t.buckets) {
				adj.Buckets[i].Count += t.buckets[i]
			}
		}
		return adj
	case s.Kind == "counter":
		if s.Value < t.lastRaw {
			t.base += t.lastRaw
		}
		t.lastRaw = s.Value
		adj := s
		adj.Value = t.base + s.Value
		return adj
	default:
		return s
	}
}

// noteHistogramReset records per-bucket high-water marks when a
// histogram restart is detected, so adjusted bucket counts stay
// cumulative across the restart.
func (t *resetTrack) noteHistogramReset(prev []obs.BucketSnapshot) {
	if t.buckets == nil {
		t.buckets = make([]uint64, len(prev))
	}
	for i := range prev {
		if i < len(t.buckets) {
			t.buckets[i] += prev[i].Count
		}
	}
}

// instanceMerge is the per-instance merge state the collector keeps
// between scrapes.
type instanceMerge struct {
	tracks map[string]*resetTrack
	// prevBuckets remembers the last raw bucket counts per histogram
	// series, needed to fold them into the base on restart detection.
	prevBuckets map[string][]obs.BucketSnapshot
	// adjusted is the last reset-adjusted snapshot.
	adjusted []obs.SeriesSnapshot
}

func newInstanceMerge() *instanceMerge {
	return &instanceMerge{
		tracks:      make(map[string]*resetTrack),
		prevBuckets: make(map[string][]obs.BucketSnapshot),
	}
}

// absorb ingests one raw snapshot, applying reset adjustment.
func (m *instanceMerge) absorb(series []obs.SeriesSnapshot) {
	out := make([]obs.SeriesSnapshot, 0, len(series))
	for _, s := range series {
		key := seriesKey(s)
		t := m.tracks[key]
		if t == nil {
			t = &resetTrack{}
			m.tracks[key] = t
		}
		if len(s.Buckets) > 0 && s.Count < t.lastCount {
			t.noteHistogramReset(m.prevBuckets[key])
		}
		adj := t.adjust(s)
		if len(s.Buckets) > 0 {
			m.prevBuckets[key] = append([]obs.BucketSnapshot(nil), s.Buckets...)
		}
		out = append(out, adj)
	}
	m.adjusted = out
}

// sumByName accumulates counter values across instances for rollups:
// map of family name → label-signature → merged series.
type rollupAcc struct {
	series map[string]obs.SeriesSnapshot
	order  []string
}

func newRollupAcc() *rollupAcc {
	return &rollupAcc{series: make(map[string]obs.SeriesSnapshot)}
}

// add accumulates one adjusted per-instance series into the fleet
// rollup under rollupName, keeping the given labels (typically a
// subset, never "instance").
func (a *rollupAcc) add(rollupName string, labels map[string]string, s obs.SeriesSnapshot) {
	key := rollupName + "\xff" + labelsSig(labels)
	cur, ok := a.series[key]
	if !ok {
		cur = obs.SeriesSnapshot{Name: rollupName, Kind: s.Kind, Labels: labels}
		a.order = append(a.order, key)
	}
	cur.Value += s.Value
	cur.Count += s.Count
	cur.Sum += s.Sum
	if len(s.Buckets) > 0 {
		if cur.Buckets == nil {
			cur.Buckets = make([]obs.BucketSnapshot, len(s.Buckets))
			for i := range s.Buckets {
				cur.Buckets[i].LE = s.Buckets[i].LE
			}
		}
		if len(cur.Buckets) == len(s.Buckets) {
			for i := range s.Buckets {
				if cur.Buckets[i].LE == s.Buckets[i].LE {
					cur.Buckets[i].Count += s.Buckets[i].Count
				}
			}
		}
	}
	a.series[key] = cur
}

func (a *rollupAcc) list() []obs.SeriesSnapshot {
	out := make([]obs.SeriesSnapshot, 0, len(a.order))
	for _, key := range a.order {
		out = append(out, a.series[key])
	}
	return out
}

func labelsSig(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte('\xff')
	}
	return b.String()
}

// rollupSource maps a per-instance family to its fleet rollup family.
// Only families every instance reports are rolled up; everything else
// still appears instance-labeled in the merged exposition.
var rollupSource = map[string]string{
	"xsec_mobiwatch_records_total":        "xsec_fleet_records_total",
	"xsec_mobiwatch_windows_scored_total": "xsec_fleet_windows_scored_total",
	"xsec_mobiwatch_alerts_total":         "xsec_fleet_alerts_total",
	"xsec_fed_migrations_total":           "xsec_fleet_migrations_total",
	"xsec_mobiwatch_score_seconds":        "xsec_fleet_detect_latency_seconds",
}

// computeRollups builds the xsec_fleet_* aggregate series from every
// instance's adjusted snapshot.
func computeRollups(perInstance map[string]*instanceMerge) []obs.SeriesSnapshot {
	acc := newRollupAcc()
	ids := make([]string, 0, len(perInstance))
	for id := range perInstance {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for _, s := range perInstance[id].adjusted {
			rollup, ok := rollupSource[s.Name]
			if !ok {
				continue
			}
			// Keep discriminating labels (outcome, direction) but never
			// the per-instance ones.
			var labels map[string]string
			for k, v := range s.Labels {
				if k == "instance" || k == "node" {
					continue
				}
				if labels == nil {
					labels = map[string]string{}
				}
				labels[k] = v
			}
			acc.add(rollup, labels, s)
		}
	}
	out := acc.list()

	// Cross-instance latency quantiles from the merged histogram.
	for _, s := range out {
		if s.Name == "xsec_fleet_detect_latency_seconds" && len(s.Buckets) > 0 {
			for _, q := range []struct {
				q     float64
				label string
			}{{0.5, "0.5"}, {0.9, "0.9"}, {0.99, "0.99"}} {
				out = append(out, obs.SeriesSnapshot{
					Name:   "xsec_fleet_detect_latency_quantile",
					Kind:   "gauge",
					Labels: map[string]string{"q": q.label},
					Value:  obs.HistQuantile(s.Buckets, q.q),
				})
			}
			obsDetectP99.Set(obs.HistQuantile(s.Buckets, 0.99))
		}
	}
	return out
}
