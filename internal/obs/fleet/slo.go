package fleet

import (
	"time"

	"github.com/6g-xsec/xsec/internal/obs"
)

// The SLO engine evaluates declarative objectives over the federated
// snapshot and alerts on error-budget burn rate in two windows at once
// (the SRE-workbook multi-window pattern): the fast window catches an
// active incident, the slow window keeps a transient blip from paging.
// Both must exceed the objective's burn threshold for the alert to
// fire.

// Selector matches counter series in the merged view by family name
// and an exact subset of labels (the injected "instance" label is
// ignored, so a selector naturally sums across instances).
type Selector struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
}

func (sel Selector) matches(s obs.SeriesSnapshot) bool {
	if s.Name != sel.Name {
		return false
	}
	for k, v := range sel.Labels {
		if s.Labels[k] != v {
			return false
		}
	}
	return true
}

// Objective is one declarative SLO. Exactly one of the two shapes is
// used: a ratio objective (Good/Total counter selectors) or a latency
// objective (a histogram family plus a bound; "good" is the fraction of
// observations at or under the bound).
type Objective struct {
	// Name identifies the objective in metrics and alerts.
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Target is the objective ratio (e.g. 0.999); 1-Target is the error
	// budget the burn rate is measured against.
	Target float64 `json:"target"`

	// Good / Total select counter series for a ratio objective. Multiple
	// selectors sum.
	Good  []Selector `json:"good,omitempty"`
	Total []Selector `json:"total,omitempty"`

	// LatencySeries and LatencyBound define a latency objective over a
	// merged histogram: good = observations with value <= bound.
	LatencySeries string  `json:"latency_series,omitempty"`
	LatencyBound  float64 `json:"latency_bound,omitempty"`

	// BurnThreshold is the burn-rate multiple that fires the alert in
	// both windows at once (default 2: burning the budget at twice the
	// sustainable rate).
	BurnThreshold float64 `json:"burn_threshold,omitempty"`
}

func (o Objective) burnThreshold() float64 {
	if o.BurnThreshold > 0 {
		return o.BurnThreshold
	}
	return 2
}

// DefaultObjectives are the paper-motivated fleet SLOs: detection stays
// inside the near-RT loop, alerts are not shed, and migrations do not
// lose state.
func DefaultObjectives() []Objective {
	return []Objective{
		{
			Name:          "detect-latency",
			Description:   "99% of telemetry batches score within 50ms across the fleet",
			Target:        0.99,
			LatencySeries: "xsec_fleet_detect_latency_seconds",
			LatencyBound:  0.05,
		},
		{
			Name:        "alert-delivery",
			Description: "flagged windows reach the analyzer stream instead of being shed",
			Target:      0.999,
			Good:        []Selector{{Name: "xsec_fleet_alerts_total", Labels: map[string]string{"outcome": "raised"}}},
			Total: []Selector{
				{Name: "xsec_fleet_alerts_total", Labels: map[string]string{"outcome": "raised"}},
				{Name: "xsec_fleet_alerts_total", Labels: map[string]string{"outcome": "dropped"}},
			},
		},
		{
			Name:        "migration-success",
			Description: "UE-state migrations complete without falling back to cold start",
			Target:      0.99,
			Good:        []Selector{{Name: "xsec_fleet_migrations_total", Labels: map[string]string{"direction": "out"}}},
			Total: []Selector{
				{Name: "xsec_fleet_migrations_total", Labels: map[string]string{"direction": "out"}},
				{Name: "xsec_fleet_migrations_total", Labels: map[string]string{"direction": "failed"}},
			},
		},
	}
}

// sloSample is one (good, total) cumulative observation at a point in
// time; the engine keeps a bounded history per objective to compute
// windowed deltas.
type sloSample struct {
	at    time.Time
	good  float64
	total float64
}

type sloState struct {
	obj     Objective
	history []sloSample
}

// observe extracts the objective's cumulative good/total from the
// merged+rollup series and appends a sample.
func (st *sloState) observe(now time.Time, rollups []obs.SeriesSnapshot, keep time.Duration) {
	var good, total float64
	if st.obj.LatencySeries != "" {
		for _, s := range rollups {
			if s.Name != st.obj.LatencySeries || len(s.Buckets) == 0 {
				continue
			}
			total += float64(s.Count)
			good += float64(bucketCountAtOrBelow(s.Buckets, st.obj.LatencyBound))
		}
	} else {
		for _, s := range rollups {
			for _, sel := range st.obj.Good {
				if sel.matches(s) {
					good += s.Value
				}
			}
			for _, sel := range st.obj.Total {
				if sel.matches(s) {
					total += s.Value
				}
			}
		}
	}
	st.history = append(st.history, sloSample{at: now, good: good, total: total})
	cutoff := now.Add(-keep)
	trim := 0
	for trim < len(st.history)-1 && st.history[trim].at.Before(cutoff) {
		trim++
	}
	st.history = st.history[trim:]
}

// bucketCountAtOrBelow returns the cumulative count of the first bucket
// whose bound is >= v — the observations known to be at or under v
// (conservative: observations between v and the bucket bound count as
// good, matching how Prometheus SLO recording rules bucket).
func bucketCountAtOrBelow(buckets []obs.BucketSnapshot, v float64) uint64 {
	for _, b := range buckets {
		if b.LE >= v {
			return b.Count
		}
	}
	if len(buckets) > 0 {
		return buckets[len(buckets)-1].Count
	}
	return 0
}

// burnRate computes the error-budget burn over the trailing window:
// (bad fraction in window) / (1 - target). 0 when the window saw no
// traffic or the history does not reach back that far.
func (st *sloState) burnRate(now time.Time, window time.Duration) float64 {
	if len(st.history) == 0 {
		return 0
	}
	latest := st.history[len(st.history)-1]
	start := now.Add(-window)
	// Oldest sample inside the window; fall back to the earliest sample
	// we have (a short history under-reports the window, never invents).
	base := st.history[0]
	for _, smp := range st.history {
		if !smp.at.Before(start) {
			break
		}
		base = smp
	}
	dTotal := latest.total - base.total
	if dTotal <= 0 {
		return 0
	}
	dBad := (latest.total - latest.good) - (base.total - base.good)
	if dBad < 0 {
		dBad = 0
	}
	budget := 1 - st.obj.Target
	if budget <= 0 {
		budget = 1e-9
	}
	return (dBad / dTotal) / budget
}

// sli returns the lifetime good/total ratio (1 when no traffic yet).
func (st *sloState) sli() (ratio float64, good, total float64) {
	if len(st.history) == 0 {
		return 1, 0, 0
	}
	latest := st.history[len(st.history)-1]
	if latest.total <= 0 {
		return 1, latest.good, latest.total
	}
	return latest.good / latest.total, latest.good, latest.total
}

// SLOStatus is one objective's evaluation in /fleet/slo.
type SLOStatus struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Target      float64 `json:"target"`
	// SLI is the lifetime good/total ratio of the objective.
	SLI   float64 `json:"sli"`
	Good  float64 `json:"good"`
	Total float64 `json:"total"`
	// BurnFast/BurnSlow are the budget burn rates in the two windows; a
	// burn of 1.0 consumes exactly the budget over the window.
	BurnFast   float64       `json:"burn_fast"`
	BurnSlow   float64       `json:"burn_slow"`
	FastWindow time.Duration `json:"fast_window_ns"`
	SlowWindow time.Duration `json:"slow_window_ns"`
	Threshold  float64       `json:"threshold"`
	// Firing is true while both windows burn above the threshold.
	Firing bool `json:"firing"`
}
