// Package obs is the observability layer of the 6G-XSec stack: a
// concurrency-safe metrics registry (counters, gauges, and histograms
// with fixed exponential buckets, all labelable), a leveled structured
// logger, and span-style pipeline tracing keyed by E2 indication ID.
// Everything is pure standard library and allocation-free on the hot
// paths (Counter.Inc, Gauge.Set, Histogram.Observe).
//
// The package follows the Prometheus data model: metrics belong to
// named families, label sets identify series within a family, and the
// whole registry renders to the Prometheus text exposition format
// (Registry.WritePrometheus) served by the HTTP handler in this
// package alongside net/http/pprof.
//
// Instrumented packages declare their metrics as package-level
// variables against the process-wide Default registry:
//
//	var routed = obs.NewCounterVec("xsec_ric_indications_total",
//	        "Indications routed to xApps.", "xapp", "outcome")
//	...
//	c := routed.With("mobiwatch", "routed") // intern once
//	c.Inc()                                 // hot path: zero alloc
//
// With interns the label set: calling it again with the same values
// returns the identical series, so handles should be resolved outside
// hot loops and the increment itself costs one atomic add.
package obs

// Default is the process-wide registry. The convenience constructors
// (NewCounter, NewGauge, NewHistogram, and their Vec variants) register
// against it; pipeline binaries expose it via ListenAndServe.
var Default = NewRegistry()

// NewCounter registers (or fetches) an unlabeled counter in Default.
func NewCounter(name, help string) *Counter {
	return Default.CounterVec(name, help).With()
}

// NewCounterVec registers (or fetches) a labeled counter family in
// Default.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return Default.CounterVec(name, help, labels...)
}

// NewGauge registers (or fetches) an unlabeled gauge in Default.
func NewGauge(name, help string) *Gauge {
	return Default.GaugeVec(name, help).With()
}

// NewGaugeVec registers (or fetches) a labeled gauge family in Default.
func NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return Default.GaugeVec(name, help, labels...)
}

// NewGaugeFunc registers a gauge in Default whose value is sampled by
// calling fn at scrape time. Re-registering replaces the callback
// (last writer wins), so restartable components can re-bind.
func NewGaugeFunc(name, help string, fn func() float64) {
	Default.GaugeFunc(name, help, fn)
}

// NewHistogram registers (or fetches) an unlabeled histogram in
// Default with the given bucket upper bounds.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return Default.HistogramVec(name, help, buckets).With()
}

// NewHistogramVec registers (or fetches) a labeled histogram family in
// Default.
func NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return Default.HistogramVec(name, help, buckets, labels...)
}
