package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestHealthzJSONFormat(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Default, DefaultTracer))
	defer srv.Close()

	RegisterHealthDetail("jsontest/bus", func() (string, error) { return "epoch=3 ues=12", nil })
	RegisterHealthDetail("jsontest/ring", func() (string, error) {
		return "stale", errors.New("epoch behind coordinator")
	})
	defer UnregisterHealth("jsontest/bus")
	defer UnregisterHealth("jsontest/ring")

	// ?format=json returns the structured per-subsystem view; a failing
	// check still flips the status code.
	resp, err := srv.Client().Get(srv.URL + "/healthz?format=json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("degraded JSON probe: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var top struct {
		Status string         `json:"status"`
		Checks []HealthStatus `json:"checks"`
	}
	if err := json.Unmarshal(body, &top); err != nil {
		t.Fatalf("healthz JSON %q: %v", body, err)
	}
	if top.Status != "degraded" {
		t.Fatalf("status = %q", top.Status)
	}
	byName := map[string]HealthStatus{}
	for _, st := range top.Checks {
		byName[st.Name] = st
	}
	if st := byName["jsontest/bus"]; !st.OK || st.Detail != "epoch=3 ues=12" {
		t.Fatalf("bus check = %+v", st)
	}
	if st := byName["jsontest/ring"]; st.OK || st.Err != "epoch behind coordinator" || st.Detail != "stale" {
		t.Fatalf("ring check = %+v", st)
	}

	// The plain-text contract is untouched: one "name: error" line per
	// failure on 503.
	resp, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 503 || string(body) != "jsontest/ring: epoch behind coordinator\n" {
		t.Fatalf("plain probe: %d %q", resp.StatusCode, body)
	}

	// The Accept header selects JSON too.
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	resp, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Accept negotiation Content-Type = %q", ct)
	}

	// Once healthy, JSON reports ok and plain text returns "ok\n".
	RegisterHealthDetail("jsontest/ring", func() (string, error) { return "synced", nil })
	resp, err = srv.Client().Get(srv.URL + "/healthz?format=json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthy JSON probe: HTTP %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &top); err != nil || top.Status != "ok" {
		t.Fatalf("healthy JSON = %q (%v)", body, err)
	}
}
