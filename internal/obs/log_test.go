package obs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func newTestLogger() (*Logger, *strings.Builder) {
	var sb strings.Builder
	l := NewLogger(&sb)
	l.setClock(func() time.Time {
		return time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	})
	return l, &sb
}

func TestLoggerLogfmt(t *testing.T) {
	l, sb := newTestLogger()
	l.Info("indication routed", "xapp", "mobiwatch", "sn", 42)
	want := "t=2026-08-06T12:00:00.000Z lvl=info msg=\"indication routed\" xapp=mobiwatch sn=42\n"
	if sb.String() != want {
		t.Fatalf("got  %q\nwant %q", sb.String(), want)
	}
}

func TestLoggerLevelGating(t *testing.T) {
	l, sb := newTestLogger()
	l.SetLevel(LevelWarn)
	l.Debug("hidden")
	l.Info("hidden")
	l.Warn("shown")
	l.Error("shown too")
	out := sb.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("below-level records emitted:\n%s", out)
	}
	if !strings.Contains(out, "lvl=warn msg=shown") || !strings.Contains(out, "lvl=error") {
		t.Fatalf("at-level records missing:\n%s", out)
	}
}

func TestLoggerWith(t *testing.T) {
	l, sb := newTestLogger()
	child := l.With("node", "gnb-001").With("xapp", "mobiwatch")
	child.Info("ok")
	if !strings.Contains(sb.String(), "msg=ok node=gnb-001 xapp=mobiwatch") {
		t.Fatalf("With context missing: %q", sb.String())
	}
	// The parent is unaffected.
	sb.Reset()
	l.Info("bare")
	if strings.Contains(sb.String(), "node=") {
		t.Fatalf("parent inherited child context: %q", sb.String())
	}
}

func TestLoggerValueRendering(t *testing.T) {
	l, sb := newTestLogger()
	l.Info("vals",
		"err", errors.New("boom failed"),
		"lvl", LevelWarn, // fmt.Stringer
		"quoted", `say "hi"`,
		"empty", "",
	)
	out := sb.String()
	for _, want := range []string{
		`err="boom failed"`,
		"lvl=warn",
		`quoted="say \"hi\""`,
		`empty=""`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

func TestLoggerOddPairs(t *testing.T) {
	l, sb := newTestLogger()
	l.Info("odd", "dangling")
	if !strings.Contains(sb.String(), "!ODD=dangling") {
		t.Fatalf("odd trailing value dropped: %q", sb.String())
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "Warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}
