package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates metric families.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry is a concurrency-safe collection of metric families. The
// zero value is not usable; call NewRegistry (or use Default).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// family is one named metric with a fixed kind and label schema. Series
// within the family are keyed by their interned label values.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histogram upper bounds, strictly increasing

	mu      sync.RWMutex
	series  map[string]any // *Counter | *Gauge | *Histogram
	gaugeFn func() float64 // sampled at scrape when non-nil
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName enforces the Prometheus metric/label name charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// family registers or fetches a family, panicking when an existing
// registration disagrees on kind, labels, or buckets — that is a
// programming error, not a runtime condition.
func (r *Registry) family(name, help string, kind Kind, labels []string, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) || l == "le" {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different schema", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]any),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// labelKey joins label values with an unprintable separator; the result
// identifies a series within its family.
func labelKey(values []string) string {
	return strings.Join(values, "\xff")
}

func splitKey(key string, n int) []string {
	if n == 0 {
		return nil
	}
	return strings.SplitN(key, "\xff", n)
}

// with interns the series for the given label values, creating it with
// mk on first use. The returned value is stable: equal label values
// always yield the identical series.
func (f *family) with(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s = mk()
	f.series[key] = s
	return s
}

// sortedKeys snapshots the family's series keys in render order.
func (f *family) sortedKeys() []string {
	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	f.mu.RUnlock()
	sort.Strings(keys)
	return keys
}

// Counter is a monotonically increasing series. Inc and Add are
// wait-free atomic operations and perform no allocation.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// CounterVec is a labeled counter family handle.
type CounterVec struct {
	f *family
}

// CounterVec registers (or fetches) a counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, KindCounter, labels, nil)}
}

// With interns and returns the series for the given label values.
// Resolve handles outside hot loops; the Counter itself is zero-alloc.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.with(values, func() any { return new(Counter) }).(*Counter)
}

// Gauge is a series that can go up and down. All operations are atomic
// and allocation-free.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits representation
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (negative to subtract).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// GaugeVec is a labeled gauge family handle.
type GaugeVec struct {
	f *family
}

// GaugeVec registers (or fetches) a gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, KindGauge, labels, nil)}
}

// With interns and returns the series for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.with(values, func() any { return new(Gauge) }).(*Gauge)
}

// GaugeFunc registers an unlabeled gauge sampled by fn at scrape time.
// Re-registering replaces the callback (last writer wins) so that
// restartable components can re-bind their live state.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, KindGauge, nil, nil)
	f.mu.Lock()
	f.gaugeFn = fn
	f.mu.Unlock()
}
