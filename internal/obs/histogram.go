package obs

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Histogram samples observations into fixed buckets. Observe is
// wait-free on the bucket and count updates (one atomic add each) and
// lock-free on the sum (a CAS loop), and performs no allocation, so it
// is safe on the streaming-inference hot path.
//
// Bucket semantics follow Prometheus: an observation v belongs to the
// first bucket whose upper bound is >= v (bounds are inclusive), and
// rendered bucket counts are cumulative with a final +Inf bucket equal
// to the total count.
type Histogram struct {
	upper   []float64 // shared with the family; strictly increasing
	counts  []atomic.Uint64
	inf     atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
	// exemplars holds one exemplar per bucket (+Inf last): the slowest
	// observation seen, annotated with its trace/chain key so a bad
	// bucket links straight to a /prov evidence chain.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar annotates a histogram bucket with the identity of a notable
// observation — in this stack, the provenance chain ID of the slowest
// indication that landed in the bucket. Exemplars appear only in the
// JSON Snapshot; the 0.0.4 text exposition has no syntax for them and
// stays unchanged.
type Exemplar struct {
	Value float64   `json:"value"`
	Label string    `json:"label"`
	At    time.Time `json:"at"`
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{
		upper:     upper,
		counts:    make([]atomic.Uint64, len(upper)),
		exemplars: make([]atomic.Pointer[Exemplar], len(upper)+1),
	}
}

// bucket returns the index of the bucket v belongs to (len(upper) for
// +Inf). Linear scan: bucket lists are small (≤ ~20) and fixed, so this
// beats binary search and stays allocation-free.
func (h *Histogram) bucket(v float64) int {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	return i
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.observe(h.bucket(v), v)
}

func (h *Histogram) observe(i int, v float64) {
	if i < len(h.counts) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveWithExemplar records a sample and, when it is the largest the
// bucket has seen, installs label as the bucket's exemplar (a CAS race
// lost to a larger value keeps the larger one). The exemplar allocates
// only when it replaces; call sites on the benign hot path should use
// plain Observe.
func (h *Histogram) ObserveWithExemplar(v float64, label string) {
	i := h.bucket(v)
	h.observe(i, v)
	for {
		cur := h.exemplars[i].Load()
		if cur != nil && cur.Value >= v {
			return
		}
		e := &Exemplar{Value: v, Label: label, At: time.Now()}
		if h.exemplars[i].CompareAndSwap(cur, e) {
			return
		}
	}
}

// exemplar returns bucket i's exemplar, nil if none recorded.
func (h *Histogram) exemplar(i int) *Exemplar {
	if h.exemplars == nil || i >= len(h.exemplars) {
		return nil
	}
	return h.exemplars[i].Load()
}

// ObserveSeconds records a duration given in nanoseconds as seconds —
// a convenience for time.Since(...).Nanoseconds() call sites that must
// not allocate.
func (h *Histogram) ObserveSeconds(ns int64) {
	h.Observe(float64(ns) / 1e9)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// cumulative fills cum with the cumulative per-bucket counts (len ==
// len(upper)+1, last entry is the +Inf total). Reading is not atomic
// across buckets; scrapes racing observations may be off by in-flight
// samples, as with any live histogram.
func (h *Histogram) cumulative(cum []uint64) {
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cum[i] = acc
	}
	cum[len(h.counts)] = acc + h.inf.Load()
}

// HistogramVec is a labeled histogram family handle.
type HistogramVec struct {
	f *family
}

// HistogramVec registers (or fetches) a histogram family with the given
// bucket upper bounds (strictly increasing, +Inf implicit).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets must increase strictly", name))
		}
	}
	return &HistogramVec{f: r.family(name, help, KindHistogram, labels, buckets)}
}

// With interns and returns the series for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.with(values, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// ExpBuckets returns count exponential bucket upper bounds starting at
// start (> 0) and growing by factor (> 1): start, start*factor, ...
func ExpBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, count >= 1")
	}
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefLatencyBuckets covers 100 µs … ~3.3 s exponentially — the span of
// the near-RT control loop (10 ms – 1 s) with headroom on both sides.
var DefLatencyBuckets = ExpBuckets(100e-6, 2, 16)
