package obs

import (
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHealthzRegistry(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Default, DefaultTracer))
	defer srv.Close()

	get := func() (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// No checks registered: plain liveness.
	if code, body := get(); code != 200 || body != "ok\n" {
		t.Fatalf("empty registry: %d %q", code, body)
	}

	RegisterHealth("test/bus", func() error { return nil })
	RegisterHealth("test/ring", func() error { return nil })
	defer UnregisterHealth("test/bus")
	defer UnregisterHealth("test/ring")
	if code, body := get(); code != 200 || body != "ok\n" {
		t.Fatalf("passing checks: %d %q", code, body)
	}

	// One failing check flips the probe to 503 and names the failure.
	RegisterHealth("test/bus", func() error { return errors.New("degraded: broker unreachable") })
	code, body := get()
	if code != 503 {
		t.Fatalf("failing check: HTTP %d, want 503", code)
	}
	if !strings.Contains(body, "test/bus: degraded: broker unreachable") {
		t.Fatalf("failing check body %q", body)
	}
	if strings.Contains(body, "test/ring") {
		t.Fatalf("passing check listed as failure: %q", body)
	}

	// Recovery and unregistration restore readiness.
	RegisterHealth("test/bus", func() error { return nil })
	if code, _ := get(); code != 200 {
		t.Fatalf("recovered check: HTTP %d", code)
	}
	UnregisterHealth("test/bus")
	UnregisterHealth("test/ring")
	if code, body := get(); code != 200 || body != "ok\n" {
		t.Fatalf("after unregister: %d %q", code, body)
	}
}
