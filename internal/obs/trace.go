package obs

import (
	"strconv"
	"sync"
	"time"
)

// Span is one timed pipeline stage attributed to a trace key — in this
// stack, the E2 indication ID minted by IndicationKey, so the journey
// of one telemetry batch (gNB report → E2 routing → MobiWatch scoring →
// LLM analysis) can be reassembled after the fact.
type Span struct {
	Key   string    `json:"key"`
	Stage string    `json:"stage"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
}

// Duration is the span's elapsed time.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Tracer records completed spans into a bounded ring buffer: the
// newest spans win, old ones are overwritten, and recording never
// blocks the pipeline on a slow consumer.
type Tracer struct {
	clock func() time.Time

	mu      sync.Mutex
	buf     []Span
	next    int
	full    bool
	evicted uint64
}

// traceEvicted counts ring-buffer overwrites across every tracer, so
// operators can tell when /traces is lying by omission.
var traceEvicted = NewCounter("xsec_trace_evicted_total",
	"Spans overwritten (evicted) from trace ring buffers before being read.")

// NewTracer returns a tracer retaining up to capacity finished spans.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{clock: time.Now, buf: make([]Span, capacity)}
}

// setClock injects a clock (tests).
func (t *Tracer) setClock(clock func() time.Time) { t.clock = clock }

// Record stores a finished span, evicting the oldest one once the ring
// is full (evictions are counted — see Evicted).
func (t *Tracer) Record(s Span) {
	t.mu.Lock()
	if t.full {
		t.evicted++
		traceEvicted.Inc()
	}
	t.buf[t.next] = s
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Evicted reports how many spans this tracer has overwritten.
func (t *Tracer) Evicted() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// ActiveSpan is an in-flight span; End records it.
type ActiveSpan struct {
	t    *Tracer
	span Span
}

// Start opens a span now; call End on the returned handle.
func (t *Tracer) Start(key, stage string) ActiveSpan {
	return ActiveSpan{t: t, span: Span{Key: key, Stage: stage, Start: t.clock()}}
}

// End stamps the span and records it.
func (a ActiveSpan) End() {
	a.span.End = a.t.clock()
	a.t.Record(a.span)
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Span(nil), t.buf[:t.next]...)
	}
	out := make([]Span, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	return append(out, t.buf[:t.next]...)
}

// ByKey returns the retained spans for one trace key, oldest first.
func (t *Tracer) ByKey(key string) []Span {
	var out []Span
	for _, s := range t.Spans() {
		if s.Key == key {
			out = append(out, s)
		}
	}
	return out
}

// Len reports how many spans are retained.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.buf)
	}
	return t.next
}

// DefaultTracer is the process-wide tracer the pipeline records into.
var DefaultTracer = NewTracer(4096)

// StartSpan opens a span on the default tracer.
func StartSpan(key, stage string) ActiveSpan { return DefaultTracer.Start(key, stage) }

// RecordSpan records an already-timed stage on the default tracer.
func RecordSpan(key, stage string, start, end time.Time) {
	DefaultTracer.Record(Span{Key: key, Stage: stage, Start: start, End: end})
}

// IndicationKey mints the trace key for one E2 indication: the emitting
// node plus the indication sequence number, unique per batch for the
// lifetime of a subscription.
func IndicationKey(nodeID string, sn uint64) string {
	return nodeID + "/" + strconv.FormatUint(sn, 10)
}
