package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterVecInterning(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_interning_total", "help", "xapp", "outcome")

	a := v.With("mobiwatch", "routed")
	b := v.With("mobiwatch", "routed")
	if a != b {
		t.Fatal("same label values returned distinct series")
	}
	c := v.With("mobiwatch", "dropped")
	if a == c {
		t.Fatal("distinct label values returned the same series")
	}
	// A second vec handle for the same family must intern into the same
	// series set.
	v2 := r.CounterVec("test_interning_total", "help", "xapp", "outcome")
	if v2.With("mobiwatch", "routed") != a {
		t.Fatal("re-registered family lost interned series")
	}

	a.Inc()
	a.Add(4)
	if a.Value() != 5 {
		t.Fatalf("counter = %d, want 5", a.Value())
	}
	if c.Value() != 0 {
		t.Fatalf("sibling series moved: %d", c.Value())
	}
}

func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("test_zero_alloc_total", "help", "l").With("v")
	g := r.GaugeVec("test_zero_alloc_gauge", "help").With()
	h := r.HistogramVec("test_zero_alloc_seconds", "help", ExpBuckets(0.001, 2, 10)).With()

	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Errorf("Counter.Add allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(2.5) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.017) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.ObserveSeconds(17e6) }); n != 0 {
		t.Errorf("Histogram.ObserveSeconds allocates %v per op, want 0", n)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.GaugeVec("test_gauge", "help").With()
	g.Set(4.5)
	if g.Value() != 4.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	g.Add(-1.5)
	if g.Value() != 3 {
		t.Fatalf("gauge after Add = %v", g.Value())
	}
}

func TestGaugeFuncSampledAtScrape(t *testing.T) {
	r := NewRegistry()
	depth := 0
	r.GaugeFunc("test_queue_depth", "help", func() float64 { return float64(depth) })
	depth = 7
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "test_queue_depth 7\n") {
		t.Fatalf("gauge func not sampled at scrape:\n%s", sb.String())
	}
	// Re-registration rebinds the callback (last writer wins).
	r.GaugeFunc("test_queue_depth", "help", func() float64 { return 9 })
	sb.Reset()
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "test_queue_depth 9\n") {
		t.Fatalf("gauge func not rebound:\n%s", sb.String())
	}
}

func TestConcurrentRegistryAccess(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Mix series creation, increments, observations, and
			// scrapes — the -race step of the verify recipe runs this.
			v := r.CounterVec("test_concurrent_total", "help", "worker")
			mine := v.With(string(rune('a' + id)))
			shared := v.With("shared")
			h := r.HistogramVec("test_concurrent_seconds", "help", ExpBuckets(0.001, 2, 8)).With()
			for i := 0; i < perWorker; i++ {
				mine.Inc()
				shared.Inc()
				h.Observe(float64(i) * 1e-4)
				if i%500 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	shared := r.CounterVec("test_concurrent_total", "help", "worker").With("shared")
	if shared.Value() != workers*perWorker {
		t.Fatalf("shared counter = %d, want %d", shared.Value(), workers*perWorker)
	}
	h := r.HistogramVec("test_concurrent_seconds", "help", ExpBuckets(0.001, 2, 8)).With()
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
}

func TestSchemaMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("test_schema_total", "help", "a")

	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	assertPanics("kind change", func() { r.GaugeVec("test_schema_total", "help", "a") })
	assertPanics("label change", func() { r.CounterVec("test_schema_total", "help", "b") })
	assertPanics("label count change", func() { r.CounterVec("test_schema_total", "help") })
	assertPanics("bad metric name", func() { r.CounterVec("0bad", "help") })
	assertPanics("reserved label", func() { r.CounterVec("test_le_total", "help", "le") })
	assertPanics("wrong arity With", func() { r.CounterVec("test_schema_total", "help", "a").With() })
	assertPanics("empty histogram", func() { r.HistogramVec("test_h_seconds", "help", nil) })
	assertPanics("non-monotonic buckets", func() {
		r.HistogramVec("test_h2_seconds", "help", []float64{1, 1})
	})
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.5, 2, 4)
	want := []float64{0.5, 1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("ExpBuckets(0, ...) did not panic")
		}
	}()
	ExpBuckets(0, 2, 4)
}
