package obs

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in the registry in the
// Prometheus text exposition format (version 0.0.4): families sorted by
// name, series sorted by label values, histograms as cumulative
// _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')

		f.mu.RLock()
		fn := f.gaugeFn
		f.mu.RUnlock()
		if fn != nil {
			writeSample(bw, f.name, "", nil, nil, formatFloat(fn()))
		}
		for _, key := range f.sortedKeys() {
			f.mu.RLock()
			s := f.series[key]
			f.mu.RUnlock()
			values := splitKey(key, len(f.labels))
			switch m := s.(type) {
			case *Counter:
				writeSample(bw, f.name, "", f.labels, values, strconv.FormatUint(m.Value(), 10))
			case *Gauge:
				writeSample(bw, f.name, "", f.labels, values, formatFloat(m.Value()))
			case *Histogram:
				cum := make([]uint64, len(m.upper)+1)
				m.cumulative(cum)
				// Fresh slices: appending to f.labels/values directly
				// could share backing arrays across scrapes.
				bucketLabels := append(append(make([]string, 0, len(f.labels)+1), f.labels...), "le")
				bucketValues := append(make([]string, 0, len(values)+1), values...)
				for i, ub := range m.upper {
					writeSample(bw, f.name, "_bucket", bucketLabels, append(bucketValues, formatFloat(ub)),
						strconv.FormatUint(cum[i], 10))
				}
				writeSample(bw, f.name, "_bucket", bucketLabels, append(bucketValues, "+Inf"),
					strconv.FormatUint(cum[len(cum)-1], 10))
				writeSample(bw, f.name, "_sum", f.labels, values, formatFloat(m.Sum()))
				writeSample(bw, f.name, "_count", f.labels, values, strconv.FormatUint(m.Count(), 10))
			}
		}
	}
	return bw.Flush()
}

// writeSample renders one `name_suffix{labels} value` line.
func writeSample(bw *bufio.Writer, name, suffix string, labels, values []string, value string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if len(labels) > 0 {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(values[i]))
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string (backslash and newline only).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// BucketSnapshot is one cumulative histogram bucket in a Snapshot.
type BucketSnapshot struct {
	LE    float64 `json:"le"` // +Inf encoded as the largest float
	Count uint64  `json:"count"`
	// Exemplar is the slowest observation the (non-cumulative) bucket
	// has seen, when the series was fed via ObserveWithExemplar.
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// SeriesSnapshot is one series' state, machine-readable — the benchmark
// harness persists these into BENCH_obs.json.
type SeriesSnapshot struct {
	Name    string            `json:"name"`
	Kind    string            `json:"kind"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value,omitempty"`
	Count   uint64            `json:"count,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Buckets []BucketSnapshot  `json:"buckets,omitempty"`
}

// WriteSeries renders a slice of series snapshots in the Prometheus
// text exposition format (version 0.0.4). It is the federation-side
// counterpart of Registry.WritePrometheus: the SMO merges per-instance
// Snapshot()s (relabeled and rolled up) and serves them as one text
// page. Series are grouped and sorted by family name, then by label
// values; one TYPE line is emitted per family (no HELP — snapshots do
// not carry help strings).
func WriteSeries(w io.Writer, series []SeriesSnapshot) error {
	sorted := append([]SeriesSnapshot(nil), series...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Name != sorted[j].Name {
			return sorted[i].Name < sorted[j].Name
		}
		return labelSig(sorted[i].Labels) < labelSig(sorted[j].Labels)
	})
	bw := bufio.NewWriter(w)
	prevFamily := ""
	for _, s := range sorted {
		if s.Name != prevFamily {
			bw.WriteString("# TYPE ")
			bw.WriteString(s.Name)
			bw.WriteByte(' ')
			kind := s.Kind
			if kind == "" {
				kind = "untyped"
			}
			bw.WriteString(kind)
			bw.WriteByte('\n')
			prevFamily = s.Name
		}
		labels, values := splitLabels(s.Labels)
		if len(s.Buckets) > 0 {
			bucketLabels := append(append(make([]string, 0, len(labels)+1), labels...), "le")
			for _, b := range s.Buckets {
				le := "+Inf"
				if b.LE != math.MaxFloat64 {
					le = formatFloat(b.LE)
				}
				writeSample(bw, s.Name, "_bucket", bucketLabels, append(values, le),
					strconv.FormatUint(b.Count, 10))
			}
			writeSample(bw, s.Name, "_sum", labels, values, formatFloat(s.Sum))
			writeSample(bw, s.Name, "_count", labels, values, strconv.FormatUint(s.Count, 10))
			continue
		}
		writeSample(bw, s.Name, "", labels, values, formatFloat(s.Value))
	}
	return bw.Flush()
}

// labelSig renders a label map as a stable sort key.
func labelSig(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\xff')
		b.WriteString(labels[k])
		b.WriteByte('\xff')
	}
	return b.String()
}

// splitLabels flattens a label map into sorted parallel name/value
// slices for writeSample.
func splitLabels(labels map[string]string) (names, values []string) {
	if len(labels) == 0 {
		return nil, nil
	}
	names = make([]string, 0, len(labels))
	for k := range labels {
		names = append(names, k)
	}
	sort.Strings(names)
	values = make([]string, 0, len(names))
	for _, k := range names {
		values = append(values, labels[k])
	}
	return names, values
}

// HistQuantile estimates the q-quantile (0..1) of a cumulative bucket
// snapshot with Prometheus-style linear interpolation inside the
// bucket containing the rank. The +Inf bucket reports the highest
// finite bound, so a quantile can never be invented beyond what the
// histogram resolved.
func HistQuantile(buckets []BucketSnapshot, q float64) float64 {
	if len(buckets) == 0 {
		return 0
	}
	total := buckets[len(buckets)-1].Count
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var prevCount uint64
	var prevBound float64
	for i, b := range buckets {
		if float64(b.Count) >= rank {
			if i == len(buckets)-1 {
				return prevBound
			}
			inBucket := float64(b.Count - prevCount)
			if inBucket == 0 {
				return b.LE
			}
			return prevBound + (b.LE-prevBound)*((rank-float64(prevCount))/inBucket)
		}
		prevCount, prevBound = b.Count, b.LE
	}
	return prevBound
}

// Snapshot captures every series in the registry, sorted like the text
// exposition.
func (r *Registry) Snapshot() []SeriesSnapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var out []SeriesSnapshot
	for _, f := range fams {
		f.mu.RLock()
		fn := f.gaugeFn
		f.mu.RUnlock()
		if fn != nil {
			out = append(out, SeriesSnapshot{Name: f.name, Kind: f.kind.String(), Value: fn()})
		}
		for _, key := range f.sortedKeys() {
			f.mu.RLock()
			s := f.series[key]
			f.mu.RUnlock()
			snap := SeriesSnapshot{Name: f.name, Kind: f.kind.String()}
			if values := splitKey(key, len(f.labels)); values != nil {
				snap.Labels = make(map[string]string, len(values))
				for i, l := range f.labels {
					snap.Labels[l] = values[i]
				}
			}
			switch m := s.(type) {
			case *Counter:
				snap.Value = float64(m.Value())
			case *Gauge:
				snap.Value = m.Value()
			case *Histogram:
				cum := make([]uint64, len(m.upper)+1)
				m.cumulative(cum)
				snap.Count = m.Count()
				snap.Sum = m.Sum()
				snap.Buckets = make([]BucketSnapshot, 0, len(cum))
				for i, ub := range m.upper {
					snap.Buckets = append(snap.Buckets,
						BucketSnapshot{LE: ub, Count: cum[i], Exemplar: m.exemplar(i)})
				}
				snap.Buckets = append(snap.Buckets,
					BucketSnapshot{LE: math.MaxFloat64, Count: cum[len(cum)-1], Exemplar: m.exemplar(len(m.upper))})
			}
			out = append(out, snap)
		}
	}
	return out
}
