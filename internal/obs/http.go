package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
)

var (
	extMu       sync.Mutex
	extHandlers map[string]http.Handler

	healthMu     sync.Mutex
	healthChecks map[string]func() (string, error)
)

// RegisterHealth adds a named readiness check to /healthz. The probe
// returns 200 only while every registered check returns nil; a failing
// check flips it to 503 with one "name: error" line per failure, so an
// orchestrator steering traffic across federated instances sees exactly
// which dependency is degraded. Re-registering a name replaces it.
func RegisterHealth(name string, check func() error) {
	RegisterHealthDetail(name, func() (string, error) { return "", check() })
}

// RegisterHealthDetail adds a readiness check that also reports
// per-subsystem detail (e.g. "bus=connected epoch=3 shards=16"). The
// plain-text /healthz contract is unchanged — detail appears only in
// the JSON form (?format=json or an Accept: application/json request).
func RegisterHealthDetail(name string, check func() (detail string, err error)) {
	healthMu.Lock()
	defer healthMu.Unlock()
	if healthChecks == nil {
		healthChecks = make(map[string]func() (string, error))
	}
	healthChecks[name] = check
}

// UnregisterHealth removes a readiness check (e.g. when the component
// that registered it shuts down).
func UnregisterHealth(name string) {
	healthMu.Lock()
	defer healthMu.Unlock()
	delete(healthChecks, name)
}

// HealthStatus is one subsystem's state in the structured /healthz
// response.
type HealthStatus struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
	Err    string `json:"err,omitempty"`
}

// HealthSnapshot evaluates every registered check, sorted by name.
func HealthSnapshot() []HealthStatus {
	healthMu.Lock()
	names := make([]string, 0, len(healthChecks))
	for n := range healthChecks {
		names = append(names, n)
	}
	sort.Strings(names)
	checks := make([]func() (string, error), 0, len(names))
	for _, n := range names {
		checks = append(checks, healthChecks[n])
	}
	healthMu.Unlock()

	out := make([]HealthStatus, 0, len(names))
	for i, check := range checks {
		detail, err := check()
		st := HealthStatus{Name: names[i], OK: err == nil, Detail: detail}
		if err != nil {
			st.Err = err.Error()
		}
		out = append(out, st)
	}
	return out
}

func serveHealthz(w http.ResponseWriter, r *http.Request) {
	statuses := HealthSnapshot()
	ok := true
	for _, st := range statuses {
		if !st.OK {
			ok = false
		}
	}

	wantJSON := r != nil && (r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json"))
	if wantJSON {
		w.Header().Set("Content-Type", "application/json")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(struct {
			Status string         `json:"status"`
			Checks []HealthStatus `json:"checks"`
		}{Status: map[bool]string{true: "ok", false: "degraded"}[ok], Checks: statuses})
		return
	}

	// Plain-text contract, unchanged since PR 2: "ok\n" on 200, one
	// "name: error" line per failure on 503.
	if !ok {
		w.WriteHeader(http.StatusServiceUnavailable)
		for _, st := range statuses {
			if !st.OK {
				fmt.Fprintf(w, "%s: %s\n", st.Name, st.Err)
			}
		}
		return
	}
	w.Write([]byte("ok\n"))
}

// Handle registers an extension endpoint mounted by every subsequent
// NewHandler call (and by ListenAndServe). Packages layered above obs
// (e.g. the provenance ledger's /prov) use it to join the observability
// surface without introducing an import cycle.
func Handle(pattern string, h http.Handler) {
	extMu.Lock()
	defer extMu.Unlock()
	if extHandlers == nil {
		extHandlers = make(map[string]http.Handler)
	}
	extHandlers[pattern] = h
}

// NewHandler returns the observability endpoint for a registry and
// tracer:
//
//	/metrics      Prometheus text exposition (version 0.0.4)
//	/traces       retained pipeline spans as JSON, oldest first
//	/healthz      readiness probe aggregating RegisterHealth checks
//	/debug/pprof  the standard Go profiler surface
func NewHandler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		spans := tr.Spans()
		if key := r.URL.Query().Get("key"); key != "" {
			spans = tr.ByKey(key)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(spans)
	})
	mux.HandleFunc("/healthz", serveHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	extMu.Lock()
	for p, h := range extHandlers {
		mux.Handle(p, h)
	}
	extMu.Unlock()
	return mux
}

// ListenAndServe exposes the Default registry and DefaultTracer on
// addr (e.g. ":9090", or "127.0.0.1:0" to pick a free port). It
// returns the bound address and a shutdown function.
func ListenAndServe(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewHandler(Default, DefaultTracer)}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
