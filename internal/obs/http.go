package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

var (
	extMu       sync.Mutex
	extHandlers map[string]http.Handler
)

// Handle registers an extension endpoint mounted by every subsequent
// NewHandler call (and by ListenAndServe). Packages layered above obs
// (e.g. the provenance ledger's /prov) use it to join the observability
// surface without introducing an import cycle.
func Handle(pattern string, h http.Handler) {
	extMu.Lock()
	defer extMu.Unlock()
	if extHandlers == nil {
		extHandlers = make(map[string]http.Handler)
	}
	extHandlers[pattern] = h
}

// NewHandler returns the observability endpoint for a registry and
// tracer:
//
//	/metrics      Prometheus text exposition (version 0.0.4)
//	/traces       retained pipeline spans as JSON, oldest first
//	/healthz      liveness probe
//	/debug/pprof  the standard Go profiler surface
func NewHandler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		spans := tr.Spans()
		if key := r.URL.Query().Get("key"); key != "" {
			spans = tr.ByKey(key)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(spans)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	extMu.Lock()
	for p, h := range extHandlers {
		mux.Handle(p, h)
	}
	extMu.Unlock()
	return mux
}

// ListenAndServe exposes the Default registry and DefaultTracer on
// addr (e.g. ":9090", or "127.0.0.1:0" to pick a free port). It
// returns the bound address and a shutdown function.
func ListenAndServe(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewHandler(Default, DefaultTracer)}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
