package dataset

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestLabeledRoundTrip(t *testing.T) {
	in, err := GenerateMixed(MixedConfig{
		BenignConfig:       BenignConfig{Fleet: 6, Seed: 61},
		InstancesPerAttack: 1,
		BenignBetween:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := in.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ReadLabeled(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in.Trace, out.Trace) {
		t.Error("trace mismatch after round trip")
	}
	if !reflect.DeepEqual(in.Malicious, out.Malicious) || !reflect.DeepEqual(in.AttackOf, out.AttackOf) {
		t.Error("labels mismatch after round trip")
	}
	if !reflect.DeepEqual(in.Events, out.Events) {
		t.Errorf("events mismatch: %v vs %v", in.Events, out.Events)
	}
	if in.MaliciousCount() != out.MaliciousCount() {
		t.Error("malicious counts differ")
	}
}

func TestReadLabeledErrors(t *testing.T) {
	if _, err := ReadLabeled(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadLabeled(strings.NewReader(`{"version":2}`)); err == nil {
		t.Error("unknown version accepted")
	}
	if _, err := ReadLabeled(strings.NewReader(`{"version":1,"records":[{}],"malicious":[],"attack_of":[]}`)); err == nil {
		t.Error("misaligned labels accepted")
	}
}
