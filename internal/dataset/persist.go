package dataset

import (
	"time"

	"encoding/json"
	"fmt"
	"github.com/6g-xsec/xsec/internal/cell"
	"github.com/6g-xsec/xsec/internal/nas"
	"github.com/6g-xsec/xsec/internal/rrc"
	"io"

	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/ue"
)

// This file persists labeled datasets, supporting the paper's open-science
// release of its traces: a labeled capture round-trips through a single
// JSON document (trace in the MOBIFLOW CSV columns plus per-record ground
// truth and the attack-event index).

// labeledJSON is the serialized form of a Labeled dataset.
type labeledJSON struct {
	Version   int               `json:"version"`
	Records   []json.RawMessage `json:"records"`
	Malicious []bool            `json:"malicious"`
	AttackOf  []int             `json:"attack_of"`
	Events    []attackEventJSON `json:"events"`
}

type attackEventJSON struct {
	Kind     uint8    `json:"kind"`
	Instance int      `json:"instance"`
	UEIDs    []uint64 `json:"ue_ids"`
}

// recordJSON mirrors mobiflow.Record for stable serialization.
type recordJSON struct {
	Seq            uint64 `json:"seq"`
	TimestampNS    int64  `json:"ts_ns"`
	UEID           uint64 `json:"ue_id"`
	Msg            string `json:"msg"`
	Layer          uint8  `json:"layer"`
	Dir            uint8  `json:"dir"`
	RNTI           uint16 `json:"rnti"`
	TMSI           uint32 `json:"tmsi"`
	SUPI           string `json:"supi,omitempty"`
	CipherAlg      uint8  `json:"cipher"`
	IntegAlg       uint8  `json:"integ"`
	SecurityOn     bool   `json:"sec_on"`
	EstCause       uint8  `json:"cause"`
	RRCState       uint8  `json:"rrc_state"`
	NASState       uint8  `json:"nas_state"`
	OutOfOrder     bool   `json:"ooo,omitempty"`
	Retransmission bool   `json:"retx,omitempty"`
}

// Write serializes the labeled dataset as JSON.
func (l *Labeled) Write(w io.Writer) error {
	doc := labeledJSON{
		Version:   1,
		Malicious: l.Malicious,
		AttackOf:  l.AttackOf,
	}
	for i := range l.Trace {
		r := &l.Trace[i]
		rec := recordJSON{
			Seq: r.Seq, TimestampNS: r.Timestamp.UnixNano(), UEID: r.UEID,
			Msg: r.Msg, Layer: uint8(r.Layer), Dir: uint8(r.Dir),
			RNTI: uint16(r.RNTI), TMSI: uint32(r.TMSI), SUPI: string(r.SUPI),
			CipherAlg: uint8(r.CipherAlg), IntegAlg: uint8(r.IntegAlg),
			SecurityOn: r.SecurityOn, EstCause: uint8(r.EstCause),
			RRCState: uint8(r.RRCState), NASState: uint8(r.NASState),
			OutOfOrder: r.OutOfOrder, Retransmission: r.Retransmission,
		}
		data, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("dataset: encoding record %d: %w", i, err)
		}
		doc.Records = append(doc.Records, data)
	}
	for _, ev := range l.Events {
		doc.Events = append(doc.Events, attackEventJSON{Kind: uint8(ev.Kind), Instance: ev.Instance, UEIDs: ev.UEIDs})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// ReadLabeled parses a dataset written by Write.
func ReadLabeled(r io.Reader) (*Labeled, error) {
	var doc labeledJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("dataset: parsing labeled dataset: %w", err)
	}
	if doc.Version != 1 {
		return nil, fmt.Errorf("dataset: unsupported version %d", doc.Version)
	}
	if len(doc.Malicious) != len(doc.Records) || len(doc.AttackOf) != len(doc.Records) {
		return nil, fmt.Errorf("dataset: label arrays misaligned with %d records", len(doc.Records))
	}
	l := &Labeled{Malicious: doc.Malicious, AttackOf: doc.AttackOf}
	for i, raw := range doc.Records {
		var rec recordJSON
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("dataset: record %d: %w", i, err)
		}
		l.Trace = append(l.Trace, rec.toRecord())
	}
	for _, ev := range doc.Events {
		l.Events = append(l.Events, AttackEvent{Kind: ue.AttackKind(ev.Kind), Instance: ev.Instance, UEIDs: ev.UEIDs})
	}
	return l, nil
}

func (rec recordJSON) toRecord() mobiflow.Record {
	return recordFromFields(rec)
}

func recordFromFields(rec recordJSON) mobiflow.Record {
	return mobiflow.Record{
		Seq:            rec.Seq,
		Timestamp:      time.Unix(0, rec.TimestampNS).UTC(),
		UEID:           rec.UEID,
		Msg:            rec.Msg,
		Layer:          mobiflow.Layer(rec.Layer),
		Dir:            cell.Direction(rec.Dir),
		RNTI:           cell.RNTI(rec.RNTI),
		TMSI:           cell.TMSI(rec.TMSI),
		SUPI:           cell.SUPI(rec.SUPI),
		CipherAlg:      cell.CipherAlg(rec.CipherAlg),
		IntegAlg:       cell.IntegAlg(rec.IntegAlg),
		SecurityOn:     rec.SecurityOn,
		EstCause:       cell.EstablishmentCause(rec.EstCause),
		RRCState:       rrc.State(rec.RRCState),
		NASState:       nas.State(rec.NASState),
		OutOfOrder:     rec.OutOfOrder,
		Retransmission: rec.Retransmission,
	}
}
