package dataset

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/6g-xsec/xsec/internal/cell"
	"github.com/6g-xsec/xsec/internal/corenet"
	"github.com/6g-xsec/xsec/internal/gnb"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/nas"
	"github.com/6g-xsec/xsec/internal/pcaplite"
	"github.com/6g-xsec/xsec/internal/ue"
)

// BenignConfig parameterizes benign dataset generation.
type BenignConfig struct {
	// Sessions is the number of UE sessions (the paper collects >100).
	Sessions int
	// Fleet is the number of distinct provisioned UEs; sessions cycle
	// through it so devices re-register with remembered GUTIs. Default
	// 20.
	Fleet int
	// Seed drives every random choice.
	Seed int64
	// ServiceProb is the probability that a registered UE resumes with
	// a service request instead of a fresh registration (default 0.25;
	// set negative to disable).
	ServiceProb float64
	// Capture optionally receives the instrumented F1AP/NGAP streams.
	Capture *pcaplite.Writer
	// Start is the virtual start time (default 2024-06-01T00:00Z).
	Start time.Time
}

func (c *BenignConfig) defaults() {
	if c.Sessions == 0 {
		c.Sessions = 120
	}
	if c.Fleet == 0 {
		c.Fleet = 20
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.ServiceProb == 0 {
		c.ServiceProb = 0.25
	}
	if c.ServiceProb < 0 {
		c.ServiceProb = 0
	}
}

// Scenario is a generated environment: the network, its fleet, and the
// collected telemetry.
type Scenario struct {
	GNB   *gnb.GNB
	AMF   *corenet.AMF
	Fleet []*ue.UE
	Clock *VClock

	rng         *rand.Rand
	serviceProb float64
}

// NewScenario builds a network with a provisioned fleet (no traffic yet).
func NewScenario(cfg BenignConfig) (*Scenario, error) {
	cfg.defaults()
	clock := NewVClock(cfg.Start)
	rng := rand.New(rand.NewSource(cfg.Seed))

	amf := corenet.NewAMF(cfg.Seed + 1)
	g, err := gnb.New(gnb.Config{
		NodeID:  "gnb-001",
		AMF:     amf,
		Clock:   clock.Now,
		Capture: cfg.Capture,
	})
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}

	fleet := make([]*ue.UE, cfg.Fleet)
	for i := range fleet {
		supi := cell.SUPI(fmt.Sprintf("imsi-00101%010d", i+1))
		var k [nas.KeySize]byte
		rng.Read(k[:])
		amf.AddSubscriber(corenet.Subscriber{SUPI: supi, K: k})
		u := ue.New(supi, k, ue.Profiles[i%len(ue.Profiles)], cfg.Seed+int64(i)+100)
		u.Pace = func() { clock.Advance(time.Duration(5+rng.Intn(45)) * time.Millisecond) }
		fleet[i] = u
	}
	return &Scenario{GNB: g, AMF: amf, Fleet: fleet, Clock: clock, rng: rng, serviceProb: cfg.ServiceProb}, nil
}

// RunBenignSessions drives n sessions round-robin across the fleet,
// releasing abandoned contexts between sessions (modeling inactivity
// timers). It returns the number of completed sessions.
func (s *Scenario) RunBenignSessions(n int) (int, error) {
	completed := 0
	for i := 0; i < n; i++ {
		u := s.Fleet[i%len(s.Fleet)]
		// A registered device sometimes resumes with a service request
		// instead of re-registering — real idle-mode behavior that
		// diversifies the benign distribution.
		service := u.Registered() && s.rng.Float64() < s.serviceProb
		var res ue.SessionResult
		var err error
		if service {
			res, err = u.RunServiceSession(s.GNB)
		} else {
			res, err = u.RunSession(s.GNB)
		}
		if err != nil {
			return completed, fmt.Errorf("dataset: session %d (%s): %w", i, u.Profile.Name, err)
		}
		completed++
		// Inter-session gap.
		s.Clock.Advance(time.Duration(200+s.rng.Intn(800)) * time.Millisecond)
		// Inactivity release for abandoned contexts (service sessions
		// always go back to idle without signalling).
		if service || !u.Profile.Deregisters {
			s.GNB.ReleaseUE(res.UEID)
			s.AMF.ReleaseUE(res.UEID)
		}
	}
	return completed, nil
}

// GenerateBenign produces the benign dataset: cfg.Sessions sessions of
// diverse device traffic, returned as a single RAN-wide trace.
func GenerateBenign(cfg BenignConfig) (mobiflow.Trace, error) {
	cfg.defaults()
	s, err := NewScenario(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := s.RunBenignSessions(cfg.Sessions); err != nil {
		return nil, err
	}
	return s.GNB.Records(), nil
}
