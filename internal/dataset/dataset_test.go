package dataset

import (
	"bytes"
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/pcaplite"
	"github.com/6g-xsec/xsec/internal/ue"
)

func TestVClock(t *testing.T) {
	c := NewVClock(time.Unix(100, 0))
	if c.Now() != time.Unix(100, 0) {
		t.Fatal("start time wrong")
	}
	c.Advance(time.Second)
	if c.Now() != time.Unix(101, 0) {
		t.Fatal("advance wrong")
	}
}

func TestGenerateBenign(t *testing.T) {
	tr, err := GenerateBenign(BenignConfig{Sessions: 30, Fleet: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) < 30*10 {
		t.Fatalf("only %d records for 30 sessions", len(tr))
	}
	// Benign traffic must not contain protocol violations.
	ooo := 0
	retx := 0
	for _, r := range tr {
		if r.OutOfOrder {
			ooo++
		}
		if r.Retransmission {
			retx++
		}
	}
	if ooo != 0 {
		t.Errorf("%d out-of-order records in benign data", ooo)
	}
	if retx == 0 {
		t.Error("no retransmissions in benign data (noise model inactive)")
	}
	// Sessions span multiple UE contexts and several device profiles.
	if ues := tr.UEs(); len(ues) < 25 {
		t.Errorf("only %d UE contexts", len(ues))
	}
	// Timestamps are non-decreasing (virtual clock).
	for i := 1; i < len(tr); i++ {
		if tr[i].Timestamp.Before(tr[i-1].Timestamp) {
			t.Fatalf("timestamp regression at %d", i)
		}
	}
}

func TestGenerateBenignDeterministic(t *testing.T) {
	a, err := GenerateBenign(BenignConfig{Sessions: 10, Fleet: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateBenign(BenignConfig{Sessions: 10, Fleet: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Msg != b[i].Msg || a[i].Timestamp != b[i].Timestamp || a[i].RNTI != b[i].RNTI {
			t.Fatalf("record %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c, err := GenerateBenign(BenignConfig{Sessions: 10, Fleet: 5, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].Msg != c[i].Msg || a[i].RNTI != c[i].RNTI {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGenerateMixedLabels(t *testing.T) {
	l, err := GenerateMixed(MixedConfig{
		BenignConfig:       BenignConfig{Fleet: 8, Seed: 3},
		InstancesPerAttack: 1,
		BenignBetween:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Trace) == 0 {
		t.Fatal("empty trace")
	}
	if len(l.Malicious) != len(l.Trace) || len(l.AttackOf) != len(l.Trace) {
		t.Fatal("label alignment broken")
	}
	if len(l.Events) != 5 {
		t.Fatalf("events = %d, want 5 (one per attack)", len(l.Events))
	}
	if l.MaliciousCount() == 0 {
		t.Fatal("no malicious records labeled")
	}
	// Each attack kind contributes at least one malicious record.
	perKind := make(map[int]int)
	for i, m := range l.Malicious {
		if m {
			perKind[l.AttackOf[i]]++
		}
	}
	for _, kind := range []ue.AttackKind{ue.AttackBTSDoS, ue.AttackBlindDoS, ue.AttackUplinkIDExtraction, ue.AttackDownlinkIDExtraction, ue.AttackNullCipher} {
		if perKind[int(kind)] == 0 {
			t.Errorf("attack %s has no malicious records", kind)
		}
	}
	// Benign context records must never be labeled malicious.
	for i, m := range l.Malicious {
		if m && l.AttackOf[i] == -1 {
			t.Errorf("record %d malicious but benign context", i)
		}
	}
	// The mixture property: a meaningful share of records is benign.
	benign := len(l.Trace) - l.MaliciousCount()
	if benign < l.MaliciousCount() {
		t.Errorf("dataset not benign-dominated: %d benign vs %d malicious", benign, l.MaliciousCount())
	}
}

func TestCaptureParityWithOnlineExtraction(t *testing.T) {
	var buf bytes.Buffer
	w := pcaplite.NewWriter(&buf)
	online, err := GenerateBenign(BenignConfig{Sessions: 12, Fleet: 4, Seed: 5, Capture: w})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	offline, err := ParseCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(online) != len(offline) {
		t.Fatalf("online %d records, offline %d", len(online), len(offline))
	}
	for i := range online {
		if online[i].Msg != offline[i].Msg {
			t.Fatalf("record %d: online %s, offline %s", i, online[i].Msg, offline[i].Msg)
		}
		if online[i].UEID != offline[i].UEID {
			t.Errorf("record %d: UEID %d vs %d", i, online[i].UEID, offline[i].UEID)
		}
		if online[i].OutOfOrder != offline[i].OutOfOrder {
			t.Errorf("record %d (%s): OutOfOrder %v vs %v", i, online[i].Msg, online[i].OutOfOrder, offline[i].OutOfOrder)
		}
		if online[i].Retransmission != offline[i].Retransmission {
			t.Errorf("record %d (%s): Retransmission %v vs %v", i, online[i].Msg, online[i].Retransmission, offline[i].Retransmission)
		}
		if online[i].TMSI != offline[i].TMSI || online[i].SUPI != offline[i].SUPI {
			t.Errorf("record %d: identity fields differ", i)
		}
	}
}

func TestParseCaptureAttackParity(t *testing.T) {
	var buf bytes.Buffer
	w := pcaplite.NewWriter(&buf)
	l, err := GenerateMixed(MixedConfig{
		BenignConfig:       BenignConfig{Fleet: 6, Seed: 9, Capture: w},
		InstancesPerAttack: 1,
		BenignBetween:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	offline, err := ParseCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(offline) != len(l.Trace) {
		t.Fatalf("offline %d records, online %d", len(offline), len(l.Trace))
	}
	for i := range offline {
		if offline[i].Msg != l.Trace[i].Msg || offline[i].OutOfOrder != l.Trace[i].OutOfOrder {
			t.Fatalf("record %d: offline (%s,%v) vs online (%s,%v)",
				i, offline[i].Msg, offline[i].OutOfOrder, l.Trace[i].Msg, l.Trace[i].OutOfOrder)
		}
	}
}

func TestParseCaptureGarbage(t *testing.T) {
	if _, err := ParseCapture(bytes.NewReader([]byte("not a capture"))); err == nil {
		t.Error("garbage capture accepted")
	}
}

func TestScenarioReuse(t *testing.T) {
	s, err := NewScenario(BenignConfig{Fleet: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.RunBenignSessions(6)
	if err != nil || n != 6 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if len(s.GNB.Records()) == 0 {
		t.Error("no records after sessions")
	}
	_ = mobiflow.Trace{}
}
