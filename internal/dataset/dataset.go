// Package dataset implements the data-collection pipeline of §4 of the
// paper: benign traffic generation across a diverse device fleet (the
// COLOSSEUM-scale substitute, see DESIGN.md §1), attack-scenario
// injection for the five attacks, ground-truth labeling per the paper's
// rules, and the offline pcap→MOBIFLOW parsing path.
package dataset

import (
	"sync"
	"time"
)

// VClock is a virtual clock shared by the generator, the gNB, and the
// UEs, making generated datasets fully deterministic.
type VClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewVClock starts a virtual clock at start.
func NewVClock(start time.Time) *VClock {
	return &VClock{t: start}
}

// Now returns the current virtual time.
func (c *VClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward.
func (c *VClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}
