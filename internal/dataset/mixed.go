package dataset

import (
	"fmt"
	"time"

	"github.com/6g-xsec/xsec/internal/cell"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/ue"
)

// Labeled is a dataset with per-record ground truth, following the
// paper's labeling rules (§4): benign records are benign; in attack
// captures each malicious telemetry entry x_i is identified, and any
// window containing one is malicious (the window rule lives in
// internal/feature).
type Labeled struct {
	Trace mobiflow.Trace
	// Malicious flags each record.
	Malicious []bool
	// AttackOf maps each record to its attack kind, or -1 for benign
	// context records. Used by the Figure 4 grouping.
	AttackOf []int
	// Events lists the executed attack instances in order.
	Events []AttackEvent
}

// AttackEvent describes one executed attack instance.
type AttackEvent struct {
	Kind     ue.AttackKind
	Instance int
	// UEIDs are the contexts the attack consumed.
	UEIDs []uint64
}

// MixedConfig parameterizes the attack-dataset generation.
type MixedConfig struct {
	BenignConfig
	// InstancesPerAttack is how many times each of the five attacks
	// runs (default 2, interleaved with benign traffic).
	InstancesPerAttack int
	// BenignBetween is how many benign sessions run between attack
	// instances (default 3).
	BenignBetween int
}

func (c *MixedConfig) defaults() {
	c.BenignConfig.defaults()
	if c.InstancesPerAttack == 0 {
		c.InstancesPerAttack = 2
	}
	if c.BenignBetween == 0 {
		c.BenignBetween = 3
	}
}

// attackOrder is the execution order; instances of all five kinds are
// interleaved with benign traffic.
var attackOrder = []ue.AttackKind{
	ue.AttackBTSDoS, ue.AttackBlindDoS, ue.AttackUplinkIDExtraction,
	ue.AttackDownlinkIDExtraction, ue.AttackNullCipher,
}

// GenerateMixed produces the attack dataset: benign background traffic
// with attack instances of all five kinds injected, plus ground truth.
func GenerateMixed(cfg MixedConfig) (*Labeled, error) {
	cfg.defaults()
	s, err := NewScenario(cfg.BenignConfig)
	if err != nil {
		return nil, err
	}

	// A victim registers first so DoS attacks have a TMSI to replay.
	victim := s.Fleet[0]
	vres, err := victim.RunSession(s.GNB)
	if err != nil {
		return nil, fmt.Errorf("dataset: victim session: %w", err)
	}
	victimTMSI := vres.GUTI.TMSI
	if !victim.Profile.Deregisters {
		s.GNB.ReleaseUE(vres.UEID)
		s.AMF.ReleaseUE(vres.UEID)
	}

	// A dedicated attacker SIM (provisioned last in the fleet).
	attacker := s.Fleet[len(s.Fleet)-1]

	var events []AttackEvent
	benignCursor := 1
	for instance := 0; instance < cfg.InstancesPerAttack; instance++ {
		for _, kind := range attackOrder {
			// Benign interlude.
			for b := 0; b < cfg.BenignBetween; b++ {
				u := s.Fleet[benignCursor%len(s.Fleet)]
				benignCursor++
				if u == attacker {
					u = s.Fleet[benignCursor%len(s.Fleet)]
					benignCursor++
				}
				res, err := u.RunSession(s.GNB)
				if err != nil {
					return nil, fmt.Errorf("dataset: benign interlude: %w", err)
				}
				if !u.Profile.Deregisters {
					s.GNB.ReleaseUE(res.UEID)
					s.AMF.ReleaseUE(res.UEID)
				}
				s.Clock.Advance(time.Duration(300) * time.Millisecond)
			}

			res, err := runAttack(s, attacker, kind, victimTMSI)
			if err != nil {
				return nil, fmt.Errorf("dataset: %s instance %d: %w", kind, instance, err)
			}
			events = append(events, AttackEvent{Kind: kind, Instance: instance, UEIDs: res.UEIDs})
			// Clean attacker contexts (inactivity release) so later
			// attacks start fresh.
			for _, id := range res.UEIDs {
				s.GNB.ReleaseUE(id)
				s.AMF.ReleaseUE(id)
			}
			s.Clock.Advance(time.Second)
		}
	}

	tr := s.GNB.Records()
	labeled := &Labeled{Trace: tr, Events: events}
	labeled.label()
	return labeled, nil
}

func runAttack(s *Scenario, attacker *ue.UE, kind ue.AttackKind, victimTMSI cell.TMSI) (ue.AttackResult, error) {
	switch kind {
	case ue.AttackBTSDoS:
		// Floods are machine-paced: messages arrive in a burst, far
		// faster than any real device's signalling cadence.
		defer s.withBurstPace(attacker)()
		return attacker.RunBTSDoS(s.GNB, 8)
	case ue.AttackBlindDoS:
		defer s.withBurstPace(attacker)()
		return attacker.RunBlindDoS(s.GNB, victimTMSI, 6)
	case ue.AttackUplinkIDExtraction:
		return attacker.RunUplinkIDExtraction(s.GNB)
	case ue.AttackDownlinkIDExtraction:
		return attacker.RunDownlinkIDExtraction(s.GNB)
	case ue.AttackNullCipher:
		return attacker.RunNullCipher(s.GNB)
	default:
		return ue.AttackResult{}, fmt.Errorf("dataset: unknown attack %v", kind)
	}
}

// withBurstPace switches a UE to flood pacing (sub-millisecond message
// spacing) and returns a restore function.
func (s *Scenario) withBurstPace(u *ue.UE) func() {
	old := u.Pace
	u.Pace = func() { s.Clock.Advance(500 * time.Microsecond) }
	return func() { u.Pace = old }
}

// label derives per-record ground truth from the attack events. The
// malicious-entry predicate is attack-specific, mirroring how the paper
// manually identifies malicious entries:
//
//   - DoS attacks: every record of an attacker context is malicious (the
//     whole fabricated session is the attack).
//   - Identity extraction: the plaintext IdentityResponse entries are the
//     malicious entries within an otherwise compliant session.
//   - Null cipher: the security-mode entries selecting null algorithms
//     and every subsequent record with null security active.
func (l *Labeled) label() {
	attackOf := make(map[uint64]ue.AttackKind)
	for _, ev := range l.Events {
		for _, id := range ev.UEIDs {
			attackOf[id] = ev.Kind
		}
	}
	l.Malicious = make([]bool, len(l.Trace))
	l.AttackOf = make([]int, len(l.Trace))
	for i, r := range l.Trace {
		kind, isAttack := attackOf[r.UEID]
		if !isAttack {
			l.AttackOf[i] = -1
			continue
		}
		l.AttackOf[i] = int(kind)
		switch kind {
		case ue.AttackBTSDoS, ue.AttackBlindDoS:
			l.Malicious[i] = true
		case ue.AttackUplinkIDExtraction, ue.AttackDownlinkIDExtraction:
			l.Malicious[i] = r.Msg == "IdentityResponse"
		case ue.AttackNullCipher:
			nullSMC := r.Msg == "NASSecurityModeCommand" && r.CipherAlg.Null() && r.IntegAlg.Null()
			nullActive := r.SecurityOn && (r.CipherAlg.Null() || r.IntegAlg.Null())
			l.Malicious[i] = nullSMC || nullActive
		}
	}
}

// MaliciousCount reports how many records are labeled malicious.
func (l *Labeled) MaliciousCount() int {
	n := 0
	for _, m := range l.Malicious {
		if m {
			n++
		}
	}
	return n
}
