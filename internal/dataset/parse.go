package dataset

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/6g-xsec/xsec/internal/f1ap"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/nas"
	"github.com/6g-xsec/xsec/internal/pcaplite"
	"github.com/6g-xsec/xsec/internal/rrc"
)

// ParseCapture replays an instrumented F1AP/NGAP capture into MOBIFLOW
// telemetry — the offline path of §4 ("parsed into MOBIFLOW security
// telemetry formats"). It reproduces the RIC agent's extraction policy,
// so a capture of a live run parses into the same telemetry sequence the
// online extractor produced.
//
// NAS is fully visible inside the F1AP RRC containers (information
// transfers, setup complete, reconfiguration), so NGAP packets carry no
// additional telemetry and are skipped.
func ParseCapture(r io.Reader) (mobiflow.Trace, error) {
	var current time.Time
	ex := mobiflow.NewExtractor(func() time.Time { return current })
	pr := pcaplite.NewReader(r)

	var trace mobiflow.Trace
	lastUL := make(map[uint64][]byte)
	for {
		pkt, err := pr.Next()
		if errors.Is(err, io.EOF) {
			return trace, nil
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading capture: %w", err)
		}
		if pkt.Iface != pcaplite.IfF1AP {
			continue
		}
		current = pkt.Timestamp

		f1msg, err := f1ap.Decode(pkt.Payload)
		if err != nil {
			return nil, fmt.Errorf("dataset: F1AP packet: %w", err)
		}
		if len(f1msg.RRCContainer) == 0 {
			continue
		}
		rrcMsg, err := rrc.Decode(f1msg.RRCContainer)
		if err != nil {
			return nil, fmt.Errorf("dataset: RRC container: %w", err)
		}
		ueID := f1msg.DUUEID

		uplink := f1msg.Type == f1ap.TypeInitialULRRCTransfer || f1msg.Type == f1ap.TypeULRRCTransfer
		retx := false
		if uplink {
			retx = lastUL[ueID] != nil && bytes.Equal(lastUL[ueID], f1msg.RRCContainer)
			lastUL[ueID] = f1msg.RRCContainer
		}

		switch m := rrcMsg.(type) {
		case *rrc.ULInformationTransfer:
			if rec, ok := parseNAS(ex, ueID, m.NASPDU, retx); ok {
				trace = append(trace, rec)
			}
		case *rrc.DLInformationTransfer:
			if rec, ok := parseNAS(ex, ueID, m.NASPDU, false); ok {
				trace = append(trace, rec)
			}
		case *rrc.SetupComplete:
			trace = append(trace, ex.OnRRC(ueID, f1msg.RNTI, rrcMsg, retx))
			if rec, ok := parseNAS(ex, ueID, m.NASPDU, retx); ok {
				trace = append(trace, rec)
			}
		case *rrc.Reconfiguration:
			trace = append(trace, ex.OnRRC(ueID, f1msg.RNTI, rrcMsg, retx))
			if len(m.NASPDU) > 0 {
				if rec, ok := parseNAS(ex, ueID, m.NASPDU, false); ok {
					trace = append(trace, rec)
				}
			}
		default:
			trace = append(trace, ex.OnRRC(ueID, f1msg.RNTI, rrcMsg, retx))
			if rrcMsg.Type() == rrc.TypeRelease {
				ex.ReleaseUE(ueID)
				delete(lastUL, ueID)
			}
		}
	}
}

func parseNAS(ex *mobiflow.Extractor, ueID uint64, pdu []byte, retx bool) (mobiflow.Record, bool) {
	if len(pdu) == 0 {
		return mobiflow.Record{}, false
	}
	nasMsg, err := nas.Decode(pdu)
	if err != nil {
		return mobiflow.Record{}, false
	}
	return ex.OnNAS(ueID, nasMsg, retx), true
}
