package sdl

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSetGetDelete(t *testing.T) {
	s := New()
	v1 := s.Set("ns", "k", []byte("one"))
	got, ver, ok := s.Get("ns", "k")
	if !ok || string(got) != "one" || ver != v1 {
		t.Fatalf("Get = %q v%d ok=%v", got, ver, ok)
	}
	v2 := s.Set("ns", "k", []byte("two"))
	if v2 <= v1 {
		t.Errorf("version did not advance: %d -> %d", v1, v2)
	}
	if !s.Delete("ns", "k") {
		t.Error("Delete returned false for existing key")
	}
	if _, _, ok := s.Get("ns", "k"); ok {
		t.Error("key present after delete")
	}
	if s.Delete("ns", "k") {
		t.Error("Delete returned true for absent key")
	}
}

func TestNamespaceIsolation(t *testing.T) {
	s := New()
	s.Set("a", "k", []byte("va"))
	s.Set("b", "k", []byte("vb"))
	got, _, _ := s.Get("a", "k")
	if string(got) != "va" {
		t.Errorf("namespace a = %q", got)
	}
	if s.Len("a") != 1 || s.Len("b") != 1 {
		t.Error("Len per namespace wrong")
	}
}

func TestValueIsCopied(t *testing.T) {
	s := New()
	buf := []byte("mutable")
	s.Set("ns", "k", buf)
	buf[0] = 'X'
	got, _, _ := s.Get("ns", "k")
	if string(got) != "mutable" {
		t.Errorf("stored value aliased caller buffer: %q", got)
	}
}

func TestKeysAndGetAll(t *testing.T) {
	s := New()
	s.Set("ns", "ue/1", []byte("a"))
	s.Set("ns", "ue/2", []byte("b"))
	s.Set("ns", "model/ae", []byte("m"))
	keys := s.Keys("ns", "ue/")
	if !reflect.DeepEqual(keys, []string{"ue/1", "ue/2"}) {
		t.Errorf("Keys = %v", keys)
	}
	all := s.GetAll("ns", "ue/")
	if len(all) != 2 || string(all["ue/1"]) != "a" {
		t.Errorf("GetAll = %v", all)
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	s := NewWithClock(func() time.Time { return now })
	s.SetTTL("ns", "k", []byte("v"), time.Second)
	if _, _, ok := s.Get("ns", "k"); !ok {
		t.Fatal("fresh TTL key missing")
	}
	now = now.Add(2 * time.Second)
	if _, _, ok := s.Get("ns", "k"); ok {
		t.Error("expired key still visible")
	}
	if s.Len("ns") != 0 {
		t.Error("expired key counted in Len")
	}
	if n := s.Purge(); n != 1 {
		t.Errorf("Purge = %d, want 1", n)
	}
}

func TestWatchDeliversMatchingEvents(t *testing.T) {
	s := New()
	events, cancel := s.Watch("ns", "ue/", 10)
	defer cancel()

	s.Set("ns", "ue/1", []byte("x"))
	s.Set("ns", "other", []byte("y"))   // prefix mismatch
	s.Set("other", "ue/1", []byte("z")) // namespace mismatch
	s.Delete("ns", "ue/1")

	ev1 := <-events
	if ev1.Key != "ue/1" || ev1.Deleted || string(ev1.Value) != "x" {
		t.Errorf("event 1 = %+v", ev1)
	}
	ev2 := <-events
	if !ev2.Deleted || ev2.Key != "ue/1" {
		t.Errorf("event 2 = %+v", ev2)
	}
	select {
	case ev := <-events:
		t.Errorf("unexpected extra event %+v", ev)
	default:
	}
}

func TestWatchCancelClosesChannel(t *testing.T) {
	s := New()
	events, cancel := s.Watch("ns", "", 1)
	cancel()
	if _, open := <-events; open {
		t.Error("channel open after cancel")
	}
	cancel() // idempotent
	s.Set("ns", "k", nil)
}

func TestWatchOverflowDrops(t *testing.T) {
	s := New()
	events, cancel := s.Watch("ns", "", 1)
	defer cancel()
	s.Set("ns", "a", []byte("1"))
	s.Set("ns", "b", []byte("2")) // dropped: buffer full
	ev := <-events
	if ev.Key != "a" {
		t.Errorf("got %q", ev.Key)
	}
	select {
	case ev := <-events:
		t.Errorf("overflow event delivered: %+v", ev)
	default:
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("k%d", i%10)
				s.Set("ns", key, []byte{byte(g)})
				s.Get("ns", key)
				s.Keys("ns", "k")
			}
		}(g)
	}
	wg.Wait()
	if s.Len("ns") != 10 {
		t.Errorf("Len = %d, want 10", s.Len("ns"))
	}
}

// Property: a Set followed by Get returns the stored value with a
// monotonically increasing version.
func TestQuickSetGet(t *testing.T) {
	s := New()
	var lastVer uint64
	f := func(key string, value []byte) bool {
		v := s.Set("ns", key, value)
		got, ver, ok := s.Get("ns", key)
		if !ok || ver != v || v <= lastVer {
			return false
		}
		lastVer = v
		return bytes.Equal(got, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSet(b *testing.B) {
	s := New()
	val := bytes.Repeat([]byte{1}, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Set("ns", "key", val)
	}
}

func BenchmarkGet(b *testing.B) {
	s := New()
	s.Set("ns", "key", bytes.Repeat([]byte{1}, 128))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get("ns", "key")
	}
}

// TestConcurrentProvenanceNamespace mirrors the provenance ledger's
// access pattern on its SDL namespace: writers appending and overwriting
// zero-padded event keys plus deleting whole chains (retention), racing
// readers doing the prefix scans /prov and xsec-audit issue.
func TestConcurrentProvenanceNamespace(t *testing.T) {
	const ns = "prov/ledger"
	s := New()
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for sn := 0; sn < 20; sn++ {
				prefix := fmt.Sprintf("ev/gnb-%03d/%020d/", g, sn)
				for idx := 0; idx < 4; idx++ {
					s.Set(ns, fmt.Sprintf("%s%04d", prefix, idx), []byte(`{"kind":"window"}`))
				}
				s.Set(ns, prefix+"0000", []byte(`{"kind":"window","count":2}`)) // coalesce overwrite
				if sn%10 == 9 {
					// Retention: evict the chain persisted 10 rounds ago.
					for _, k := range s.Keys(ns, fmt.Sprintf("ev/gnb-%03d/%020d/", g, sn-9)) {
						s.Delete(ns, k)
					}
				}
			}
		}(g)
	}
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for k, v := range s.GetAll(ns, "ev/") {
					if len(v) == 0 {
						t.Errorf("empty value at %s", k)
						return
					}
				}
				s.Len(ns)
			}
		}()
	}

	writers.Wait()
	close(stop)
	readers.Wait()

	// Each writer persisted 20 chains of 4 events and evicted 2 (sn 0
	// and 10, deleted when sn 9 and 19 landed).
	want := 4 * 18 * 4
	if got := s.Len(ns); got != want {
		t.Errorf("Len = %d, want %d", got, want)
	}
}
