// Package sdl implements the Shared Data Layer of the near-RT RIC: a
// namespaced, versioned, concurrent key-value store that xApps and
// platform services use to share state (§3.1 of the paper: "the xApp
// stores [telemetry] in the Shared Data Layer (SDL) which is a centralized
// database that can be accessed by other nRT-RIC services and xApps").
//
// The OSC reference implementation backs its SDL with Redis; this package
// provides an in-process equivalent with the operations the framework
// needs: get/set/delete with versions, prefix listing, watch subscriptions,
// and per-key TTL.
//
// # Sharding
//
// The store is lock-striped into a power-of-two number of shards; every
// (namespace, key) pair hashes (FNV-1a) to exactly one shard, which owns
// the entry and the watch delivery for mutations of it. Versions come
// from a single atomic counter, so they remain globally unique and
// monotonic across shards: a reader comparing versions observes the
// store-wide mutation order regardless of which shard served it.
//
// Watch events for keys on the same shard are delivered in version order
// because delivery happens under the shard lock; events from different
// shards may interleave on the channel, but their Version fields still
// order them globally. Delivery is always non-blocking (a full watcher
// buffer drops), and a watcher only appears on the shards its namespace
// has entries on, so one slow watcher cannot stall writers of unrelated
// namespaces.
package sdl

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultShards is the lock-stripe count used by New. Sixteen stripes
// keep per-shard contention negligible for the framework's writer mix
// (telemetry persist, prov ledger, mitigation journal, A1 policies)
// without measurable per-shard overhead.
const DefaultShards = 16

// Event describes one mutation delivered to watchers.
type Event struct {
	Namespace string
	Key       string
	Value     []byte // nil for deletions
	Version   uint64
	Deleted   bool
}

// Options configures a Store.
type Options struct {
	// Shards is the lock-stripe count, rounded up to a power of two
	// (default DefaultShards). Shards == 1 yields the unsharded
	// single-lock layout, which the ingest benchmark uses as its
	// baseline.
	Shards int
	// Clock is injectable for TTL tests (default time.Now).
	Clock func() time.Time
}

// Store is the shared data layer. The zero value is not usable; call New.
type Store struct {
	clock   func() time.Time
	version atomic.Uint64
	nextWID atomic.Uint64
	mask    uint32
	shards  []shard
}

type shard struct {
	mu sync.RWMutex
	ns map[string]map[string]entry
	// watchers indexes this shard's registered watchers by namespace, so
	// a mutation touches only the watchers that could match it.
	watchers map[string]map[uint64]*watcher
}

type entry struct {
	value     []byte
	version   uint64
	expiresAt time.Time // zero = no TTL
}

type watcher struct {
	namespace string
	prefix    string
	ch        chan Event
}

// New returns an empty store using the real clock and DefaultShards.
func New() *Store { return NewWithOptions(Options{}) }

// NewWithClock returns a store with an injectable clock for TTL tests.
func NewWithClock(clock func() time.Time) *Store {
	return NewWithOptions(Options{Clock: clock})
}

// NewWithOptions returns a store with explicit shard count and clock.
func NewWithOptions(o Options) *Store {
	if o.Shards <= 0 {
		o.Shards = DefaultShards
	}
	n := 1
	for n < o.Shards {
		n <<= 1
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	s := &Store{clock: o.Clock, mask: uint32(n - 1), shards: make([]shard, n)}
	for i := range s.shards {
		s.shards[i].ns = make(map[string]map[string]entry)
		s.shards[i].watchers = make(map[string]map[uint64]*watcher)
	}
	return s
}

// ShardCount reports the number of lock stripes.
func (s *Store) ShardCount() int { return len(s.shards) }

// shardFor hashes (namespace, key) with FNV-1a onto a stripe.
func (s *Store) shardFor(namespace, key string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(namespace); i++ {
		h = (h ^ uint64(namespace[i])) * prime64
	}
	h = (h ^ 0xff) * prime64 // separator: ("a","bc") ≠ ("ab","c")
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * prime64
	}
	return &s.shards[uint32(h^(h>>32))&s.mask]
}

// Set stores value under (namespace, key) and returns the new version.
// The value is copied, so the caller may reuse its buffer.
func (s *Store) Set(namespace, key string, value []byte) uint64 {
	return s.set(namespace, key, value, 0, true)
}

// SetTTL stores value with a time-to-live; ttl <= 0 means no expiry.
// The value is copied.
func (s *Store) SetTTL(namespace, key string, value []byte, ttl time.Duration) uint64 {
	return s.set(namespace, key, value, ttl, true)
}

// SetOwned stores value under (namespace, key) WITHOUT copying: the store
// takes ownership of the slice and the caller must not read or mutate it
// afterwards. It exists for single-use buffers on hot write paths (the
// provenance ledger and mitigation journal marshal a fresh buffer per
// event and discard it), where the defensive copy of Set is pure waste.
func (s *Store) SetOwned(namespace, key string, value []byte) uint64 {
	return s.set(namespace, key, value, 0, false)
}

// SetOwnedTTL is SetOwned with a time-to-live; ttl <= 0 means no expiry.
func (s *Store) SetOwnedTTL(namespace, key string, value []byte, ttl time.Duration) uint64 {
	return s.set(namespace, key, value, ttl, false)
}

func (s *Store) set(namespace, key string, value []byte, ttl time.Duration, copyValue bool) uint64 {
	if copyValue {
		value = append([]byte(nil), value...)
	}
	sh := s.shardFor(namespace, key)
	sh.mu.Lock()
	m, ok := sh.ns[namespace]
	if !ok {
		m = make(map[string]entry)
		sh.ns[namespace] = m
	}
	v := s.version.Add(1)
	e := entry{value: value, version: v}
	if ttl > 0 {
		e.expiresAt = s.clock().Add(ttl)
	}
	m[key] = e
	sh.notifyLocked(Event{Namespace: namespace, Key: key, Value: e.value, Version: v})
	sh.mu.Unlock()
	return v
}

// Get returns the value and version for (namespace, key). ok is false if
// the key is absent or expired. The returned slice must not be mutated.
func (s *Store) Get(namespace, key string) (value []byte, version uint64, ok bool) {
	sh := s.shardFor(namespace, key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.ns[namespace][key]
	if !ok || s.expired(e) {
		return nil, 0, false
	}
	return e.value, e.version, true
}

// Delete removes a key; it reports whether the key existed.
func (s *Store) Delete(namespace, key string) bool {
	sh := s.shardFor(namespace, key)
	sh.mu.Lock()
	m := sh.ns[namespace]
	e, ok := m[key]
	if ok {
		delete(m, key)
		v := s.version.Add(1)
		if !s.expired(e) {
			sh.notifyLocked(Event{Namespace: namespace, Key: key, Version: v, Deleted: true})
		}
	}
	sh.mu.Unlock()
	return ok
}

// Keys lists the live keys in a namespace with the given prefix, sorted.
func (s *Store) Keys(namespace, prefix string) []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, e := range sh.ns[namespace] {
			if strings.HasPrefix(k, prefix) && !s.expired(e) {
				out = append(out, k)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// GetAll returns all live (key, value) pairs under a prefix; values are
// copies.
func (s *Store) GetAll(namespace, prefix string) map[string][]byte {
	out := make(map[string][]byte)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, e := range sh.ns[namespace] {
			if strings.HasPrefix(k, prefix) && !s.expired(e) {
				out[k] = append([]byte(nil), e.value...)
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

func (s *Store) expired(e entry) bool {
	return !e.expiresAt.IsZero() && s.clock().After(e.expiresAt)
}

// Watch subscribes to mutations in a namespace under a key prefix. The
// returned channel has the given buffer; events overflowing a full buffer
// are dropped (watchers must keep up, as with the OSC notification
// service). Events originating on one shard arrive in version order;
// events from different shards may interleave, but Version always orders
// them globally. cancel stops delivery and closes the channel.
func (s *Store) Watch(namespace, prefix string, buffer int) (events <-chan Event, cancel func()) {
	id := s.nextWID.Add(1)
	w := &watcher{namespace: namespace, prefix: prefix, ch: make(chan Event, buffer)}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		m := sh.watchers[namespace]
		if m == nil {
			m = make(map[uint64]*watcher)
			sh.watchers[namespace] = m
		}
		m[id] = w
		sh.mu.Unlock()
	}
	var once sync.Once
	return w.ch, func() {
		once.Do(func() {
			// Deregister from every shard first; delivery happens under
			// the shard lock, so after this loop no send can race the
			// close below.
			for i := range s.shards {
				sh := &s.shards[i]
				sh.mu.Lock()
				if m := sh.watchers[namespace]; m != nil {
					delete(m, id)
					if len(m) == 0 {
						delete(sh.watchers, namespace)
					}
				}
				sh.mu.Unlock()
			}
			close(w.ch)
		})
	}
}

// notifyLocked delivers an event to this shard's watchers of the event's
// namespace. Caller holds the shard lock, which is what serializes
// deliveries into version order per shard; sends never block.
func (sh *shard) notifyLocked(ev Event) {
	if len(sh.watchers) == 0 {
		return
	}
	for _, w := range sh.watchers[ev.Namespace] {
		if !strings.HasPrefix(ev.Key, w.prefix) {
			continue
		}
		select {
		case w.ch <- ev:
		default: // drop on overflow
		}
	}
}

// Purge removes expired entries and returns how many were dropped.
func (s *Store) Purge() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, m := range sh.ns {
			for k, e := range m {
				if s.expired(e) {
					delete(m, k)
					n++
				}
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// Len reports the number of live keys in a namespace.
func (s *Store) Len(namespace string) int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, e := range sh.ns[namespace] {
			if !s.expired(e) {
				n++
			}
		}
		sh.mu.RUnlock()
	}
	return n
}
