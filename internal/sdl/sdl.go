// Package sdl implements the Shared Data Layer of the near-RT RIC: a
// namespaced, versioned, concurrent key-value store that xApps and
// platform services use to share state (§3.1 of the paper: "the xApp
// stores [telemetry] in the Shared Data Layer (SDL) which is a centralized
// database that can be accessed by other nRT-RIC services and xApps").
//
// The OSC reference implementation backs its SDL with Redis; this package
// provides an in-process equivalent with the operations the framework
// needs: get/set/delete with versions, prefix listing, watch subscriptions,
// and per-key TTL.
package sdl

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Event describes one mutation delivered to watchers.
type Event struct {
	Namespace string
	Key       string
	Value     []byte // nil for deletions
	Version   uint64
	Deleted   bool
}

// Store is the shared data layer. The zero value is not usable; call New.
type Store struct {
	mu       sync.RWMutex
	ns       map[string]map[string]entry
	version  uint64
	watchers map[int]*watcher
	nextWID  int
	clock    func() time.Time
}

type entry struct {
	value     []byte
	version   uint64
	expiresAt time.Time // zero = no TTL
}

type watcher struct {
	namespace string
	prefix    string
	ch        chan Event
}

// New returns an empty store using the real clock.
func New() *Store { return NewWithClock(time.Now) }

// NewWithClock returns a store with an injectable clock for TTL tests.
func NewWithClock(clock func() time.Time) *Store {
	return &Store{
		ns:       make(map[string]map[string]entry),
		watchers: make(map[int]*watcher),
		clock:    clock,
	}
}

// Set stores value under (namespace, key) and returns the new version.
// The value is copied.
func (s *Store) Set(namespace, key string, value []byte) uint64 {
	return s.SetTTL(namespace, key, value, 0)
}

// SetTTL stores value with a time-to-live; ttl <= 0 means no expiry.
func (s *Store) SetTTL(namespace, key string, value []byte, ttl time.Duration) uint64 {
	s.mu.Lock()
	m, ok := s.ns[namespace]
	if !ok {
		m = make(map[string]entry)
		s.ns[namespace] = m
	}
	s.version++
	v := s.version
	e := entry{value: append([]byte(nil), value...), version: v}
	if ttl > 0 {
		e.expiresAt = s.clock().Add(ttl)
	}
	m[key] = e
	s.mu.Unlock()

	s.notify(Event{Namespace: namespace, Key: key, Value: e.value, Version: v})
	return v
}

// Get returns the value and version for (namespace, key). ok is false if
// the key is absent or expired. The returned slice must not be mutated.
func (s *Store) Get(namespace, key string) (value []byte, version uint64, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.ns[namespace][key]
	if !ok || s.expired(e) {
		return nil, 0, false
	}
	return e.value, e.version, true
}

// Delete removes a key; it reports whether the key existed.
func (s *Store) Delete(namespace, key string) bool {
	s.mu.Lock()
	m := s.ns[namespace]
	e, ok := m[key]
	if ok {
		delete(m, key)
		s.version++
	}
	v := s.version
	s.mu.Unlock()
	if ok && !s.expired(e) {
		s.notify(Event{Namespace: namespace, Key: key, Version: v, Deleted: true})
	}
	return ok
}

// Keys lists the live keys in a namespace with the given prefix, sorted.
func (s *Store) Keys(namespace, prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for k, e := range s.ns[namespace] {
		if strings.HasPrefix(k, prefix) && !s.expired(e) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// GetAll returns all live (key, value) pairs under a prefix; values are
// copies.
func (s *Store) GetAll(namespace, prefix string) map[string][]byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string][]byte)
	for k, e := range s.ns[namespace] {
		if strings.HasPrefix(k, prefix) && !s.expired(e) {
			out[k] = append([]byte(nil), e.value...)
		}
	}
	return out
}

func (s *Store) expired(e entry) bool {
	return !e.expiresAt.IsZero() && s.clock().After(e.expiresAt)
}

// Watch subscribes to mutations in a namespace under a key prefix. The
// returned channel has the given buffer; events overflowing a full buffer
// are dropped (watchers must keep up, as with the OSC notification
// service). cancel stops delivery and closes the channel.
func (s *Store) Watch(namespace, prefix string, buffer int) (events <-chan Event, cancel func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextWID
	s.nextWID++
	w := &watcher{namespace: namespace, prefix: prefix, ch: make(chan Event, buffer)}
	s.watchers[id] = w
	return w.ch, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if ww, ok := s.watchers[id]; ok {
			delete(s.watchers, id)
			close(ww.ch)
		}
	}
}

func (s *Store) notify(ev Event) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, w := range s.watchers {
		if w.namespace != ev.Namespace || !strings.HasPrefix(ev.Key, w.prefix) {
			continue
		}
		select {
		case w.ch <- ev:
		default: // drop on overflow
		}
	}
}

// Purge removes expired entries and returns how many were dropped.
func (s *Store) Purge() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, m := range s.ns {
		for k, e := range m {
			if s.expired(e) {
				delete(m, k)
				n++
			}
		}
	}
	return n
}

// Len reports the number of live keys in a namespace.
func (s *Store) Len(namespace string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, e := range s.ns[namespace] {
		if !s.expired(e) {
			n++
		}
	}
	return n
}
