package sdl

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestOwnershipTransferWatchSemantics is the regression guard for the
// federation rebalancing protocol: when a UE key migrates between
// instances, the new owner's prefix watch must see exactly one event for
// it and the old owner's watch none. The protocol relies on two store
// semantics pinned here: (1) writing under the new owner's prefix
// notifies only watchers of that prefix, and (2) TTL expiry of the old
// owner's key is silent — expired entries vanish from reads without a
// watch event, so the old instance is never re-woken for state it
// handed off.
func TestOwnershipTransferWatchSemantics(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}

	s := NewWithClock(clock)
	const ns = "fed/ue"

	oldEvents, cancelOld := s.Watch(ns, "owner/inst-a/", 64)
	defer cancelOld()
	newEvents, cancelNew := s.Watch(ns, "owner/inst-b/", 64)
	defer cancelNew()

	// The old instance owns the UE, with a TTL lease it refreshes while
	// the UE is local.
	s.SetOwnedTTL(ns, "owner/inst-a/ue/42", []byte("inst-a"), time.Second)
	drain := func(c <-chan Event) []Event {
		var out []Event
		for {
			select {
			case ev := <-c:
				out = append(out, ev)
			default:
				return out
			}
		}
	}
	if got := drain(oldEvents); len(got) != 1 {
		t.Fatalf("old-owner lease write: %d events, want 1", len(got))
	}
	if got := drain(newEvents); len(got) != 0 {
		t.Fatalf("new-owner watch saw the old owner's lease: %v", got)
	}

	// Migration: the new owner claims the UE under its own prefix while
	// unrelated keys churn on both prefixes' namespace from other
	// goroutines (the -race build checks the locking as much as the
	// counts do).
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Set(ns, fmt.Sprintf("unrelated/%d/%d", g, i), []byte("x"))
			}
		}(g)
	}
	s.SetOwnedTTL(ns, "owner/inst-b/ue/42", []byte("inst-b"), time.Second)
	wg.Wait()

	newGot := drain(newEvents)
	if len(newGot) != 1 || newGot[0].Key != "owner/inst-b/ue/42" {
		t.Fatalf("new-owner watch = %v, want exactly the claim event", newGot)
	}

	// The old owner's lease lapses (it stopped refreshing on ownership
	// loss). Expiry is silent: reads stop returning the key, but no
	// watch event fires on the old prefix.
	advance(2 * time.Second)
	if _, _, ok := s.Get(ns, "owner/inst-a/ue/42"); ok {
		t.Fatal("old owner's lease still readable after expiry")
	}
	if _, _, ok := s.Get(ns, "owner/inst-b/ue/42"); ok {
		t.Fatal("new owner's lease should also have lapsed without refresh")
	}
	// Even an explicit cleanup delete of the expired key must stay
	// silent — the entry was already dead.
	s.Delete(ns, "owner/inst-a/ue/42")
	if got := drain(oldEvents); len(got) != 0 {
		t.Fatalf("old-owner watch woke after handoff: %v", got)
	}

	// The new owner refreshes its claim: one more event on its watch,
	// still nothing on the old one.
	s.SetOwnedTTL(ns, "owner/inst-b/ue/42", []byte("inst-b"), time.Second)
	if got := drain(newEvents); len(got) != 1 {
		t.Fatalf("new-owner refresh: %d events, want 1", len(got))
	}
	if got := drain(oldEvents); len(got) != 0 {
		t.Fatalf("old-owner watch saw the new owner's refresh: %v", got)
	}
}
