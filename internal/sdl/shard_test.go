package sdl

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestShardCountRoundsUpToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, DefaultShards}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {17, 32},
	} {
		s := NewWithOptions(Options{Shards: tc.ask})
		if got := s.ShardCount(); got != tc.want {
			t.Errorf("Shards=%d -> ShardCount=%d, want %d", tc.ask, got, tc.want)
		}
	}
}

// TestUnshardedOptionBehaves proves Shards=1 (the benchmark baseline) is
// semantically identical to the striped store.
func TestUnshardedOptionBehaves(t *testing.T) {
	s := NewWithOptions(Options{Shards: 1})
	events, cancel := s.Watch("ns", "", 4)
	defer cancel()
	v1 := s.Set("ns", "a", []byte("1"))
	v2 := s.Set("ns", "b", []byte("2"))
	if v2 <= v1 {
		t.Errorf("versions not monotonic: %d then %d", v1, v2)
	}
	if ev := <-events; ev.Key != "a" || ev.Version != v1 {
		t.Errorf("event 1 = %+v", ev)
	}
	if ev := <-events; ev.Key != "b" || ev.Version != v2 {
		t.Errorf("event 2 = %+v", ev)
	}
}

// TestWatchOrderingAcrossShards spreads keys of one namespace over every
// shard, mutates them from concurrent writers, and asserts the delivered
// events are (a) complete per key, (b) version-ordered per key — the
// per-shard delivery guarantee — and (c) carry globally unique versions.
func TestWatchOrderingAcrossShards(t *testing.T) {
	s := NewWithOptions(Options{Shards: 8})
	const keys, writes = 32, 50
	events, cancel := s.Watch("ns", "", keys*writes+16)
	defer cancel()

	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			key := fmt.Sprintf("key/%03d", k)
			for i := 0; i < writes; i++ {
				s.Set("ns", key, []byte{byte(i)})
			}
		}(k)
	}
	wg.Wait()

	lastPerKey := make(map[string]uint64)
	seen := make(map[uint64]bool)
	count := 0
drain:
	for {
		select {
		case ev := <-events:
			count++
			if seen[ev.Version] {
				t.Fatalf("version %d delivered twice", ev.Version)
			}
			seen[ev.Version] = true
			if ev.Version <= lastPerKey[ev.Key] {
				t.Fatalf("key %s: version %d after %d", ev.Key, ev.Version, lastPerKey[ev.Key])
			}
			lastPerKey[ev.Key] = ev.Version
		default:
			break drain
		}
	}
	if count != keys*writes {
		t.Fatalf("delivered %d events, want %d (buffer was large enough)", count, keys*writes)
	}
	if len(lastPerKey) != keys {
		t.Fatalf("saw %d distinct keys, want %d", len(lastPerKey), keys)
	}
}

// TestWatchCancelRacesMutations drives cancel concurrently with writers:
// no send-on-closed-channel panic, no deadlock (the per-shard
// deregistration must fully exclude in-flight deliveries).
func TestWatchCancelRacesMutations(t *testing.T) {
	s := NewWithOptions(Options{Shards: 4})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.Set("ns", fmt.Sprintf("k%d", i%64), []byte("v"))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		events, cancel := s.Watch("ns", "", 1)
		go func() { // concurrent consumer, may or may not keep up
			for range events {
			}
		}()
		cancel()
	}
	close(stop)
	wg.Wait()
}

// TestTTLExpiryPerShard plants TTL keys landing on different shards and
// verifies expiry and Purge see every shard.
func TestTTLExpiryPerShard(t *testing.T) {
	now := time.Unix(1000, 0)
	s := NewWithOptions(Options{Shards: 8, Clock: func() time.Time { return now }})
	const n = 64
	for i := 0; i < n; i++ {
		s.SetTTL("ns", fmt.Sprintf("ttl/%03d", i), []byte("v"), time.Second)
		s.Set("ns", fmt.Sprintf("keep/%03d", i), []byte("v"))
	}
	if got := s.Len("ns"); got != 2*n {
		t.Fatalf("Len before expiry = %d, want %d", got, 2*n)
	}
	now = now.Add(2 * time.Second)
	if got := s.Len("ns"); got != n {
		t.Errorf("Len after expiry = %d, want %d", got, n)
	}
	if got := len(s.Keys("ns", "ttl/")); got != 0 {
		t.Errorf("expired keys still listed: %d", got)
	}
	if got := s.Purge(); got != n {
		t.Errorf("Purge = %d, want %d", got, n)
	}
	if got := len(s.Keys("ns", "keep/")); got != n {
		t.Errorf("unexpired keys lost: %d, want %d", got, n)
	}
}

func TestSetOwnedDoesNotCopy(t *testing.T) {
	s := New()
	buf := []byte("owned")
	s.SetOwned("ns", "k", buf)
	got, _, ok := s.Get("ns", "k")
	if !ok || &got[0] != &buf[0] {
		t.Error("SetOwned copied the value (or lost it)")
	}
	// The TTL variant also takes ownership and expires.
	now := time.Unix(1000, 0)
	sc := NewWithClock(func() time.Time { return now })
	sc.SetOwnedTTL("ns", "k", []byte("v"), time.Second)
	now = now.Add(2 * time.Second)
	if _, _, ok := sc.Get("ns", "k"); ok {
		t.Error("SetOwnedTTL key did not expire")
	}
}

// TestCrossShardContention hammers distinct namespaces from parallel
// writers; with striping they proceed mostly independently, and the test
// (under -race) proves the per-shard state carries no hidden sharing.
func TestCrossShardContention(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ns := fmt.Sprintf("ns-%d", g)
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%03d", i%25)
				s.Set(ns, key, []byte{byte(i)})
				s.Get(ns, key)
				if i%50 == 49 {
					s.Keys(ns, "k")
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < 8; g++ {
		if got := s.Len(fmt.Sprintf("ns-%d", g)); got != 25 {
			t.Errorf("ns-%d Len = %d, want 25", g, got)
		}
	}
}

func BenchmarkSetParallelSharded(b *testing.B) {
	benchSetParallel(b, DefaultShards)
}

func BenchmarkSetParallelUnsharded(b *testing.B) {
	benchSetParallel(b, 1)
}

func benchSetParallel(b *testing.B, shards int) {
	s := NewWithOptions(Options{Shards: shards})
	val := make([]byte, 128)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			s.Set("ns", fmt.Sprintf("k%04d", i%512), val)
			i++
		}
	})
}
