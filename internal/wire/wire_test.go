package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	go func() {
		if err := a.Send([]byte("hello")); err != nil {
			t.Errorf("Send: %v", err)
		}
	}()
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if string(got) != "hello" {
		t.Errorf("got %q, want %q", got, "hello")
	}
}

func TestEmptyFrame(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	go a.Send(nil)
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if len(got) != 0 {
		t.Errorf("got %d bytes, want 0", len(got))
	}
}

func TestMultipleFramesPreserveBoundaries(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	frames := [][]byte{[]byte("one"), []byte("two-longer"), {0x00}, bytes.Repeat([]byte{0xab}, 1000)}
	go func() {
		for _, f := range frames {
			if err := a.Send(f); err != nil {
				t.Errorf("Send: %v", err)
				return
			}
		}
	}()
	for i, want := range frames {
		got, err := b.Recv()
		if err != nil {
			t.Fatalf("Recv frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame %d = %q, want %q", i, got, want)
		}
	}
}

func TestTCPRoundTrip(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		msg, err := c.Recv()
		if err != nil {
			done <- err
			return
		}
		done <- c.Send(append([]byte("echo:"), msg...))
	}()

	c, err := Dial(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "echo:ping" {
		t.Errorf("got %q", got)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestOversizeSendRejected(t *testing.T) {
	a, _ := Pipe()
	defer a.Close()
	err := a.Send(make([]byte, MaxFrameSize+1))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestRecvAfterPeerClose(t *testing.T) {
	a, b := Pipe()
	a.Close()
	if _, err := b.Recv(); !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want io.EOF", err)
	}
	b.Close()
}

func TestSendAfterCloseFails(t *testing.T) {
	a, b := Pipe()
	defer b.Close()
	a.Close()
	if err := a.Send([]byte("x")); err == nil {
		t.Error("Send after Close succeeded")
	}
}

func TestCloseIdempotent(t *testing.T) {
	a, b := Pipe()
	defer b.Close()
	if err := a.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestConcurrentSenders(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	const senders, perSender = 8, 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if err := a.Send([]byte(fmt.Sprintf("s%d-m%d", s, i))); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
			}
		}(s)
	}
	go func() { wg.Wait(); a.Close() }()

	count := 0
	for {
		msg, err := b.Recv()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		// Frame must be intact (no interleaving).
		var s, i int
		if _, err := fmt.Sscanf(string(msg), "s%d-m%d", &s, &i); err != nil {
			t.Fatalf("corrupted frame %q", msg)
		}
		count++
	}
	if count != senders*perSender {
		t.Errorf("received %d frames, want %d", count, senders*perSender)
	}
}

// Property: any payload under the limit survives a round trip intact.
func TestQuickFrameRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	f := func(payload []byte) bool {
		errc := make(chan error, 1)
		go func() { errc <- a.Send(payload) }()
		got, err := b.Recv()
		if err != nil || <-errc != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestServe(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go Serve(l, func(c *Conn) {
		defer c.Close()
		for {
			msg, err := c.Recv()
			if err != nil {
				return
			}
			c.Send(msg)
		}
	})
	defer l.Close()

	const clients = 4
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(l.Addr().String(), time.Second)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			want := fmt.Sprintf("client-%d", i)
			if err := c.Send([]byte(want)); err != nil {
				t.Errorf("send: %v", err)
				return
			}
			got, err := c.Recv()
			if err != nil || string(got) != want {
				t.Errorf("echo = %q, %v; want %q", got, err, want)
			}
		}(i)
	}
	wg.Wait()
}

func BenchmarkPipeSendRecv(b *testing.B) {
	x, y := Pipe()
	defer x.Close()
	defer y.Close()
	payload := bytes.Repeat([]byte{0x5a}, 256)
	go func() {
		for {
			if _, err := y.Recv(); err != nil {
				return
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := x.Send(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCPSend measures Conn.Send over a real TCP socket, where the
// gathered header+payload write (one writev syscall per frame instead of
// two write syscalls) is visible; a discarding reader drains the peer.
func BenchmarkTCPSend(b *testing.B) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		for {
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	}()
	c, err := Dial(l.Addr().String(), time.Second)
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5a}, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	c.Close()
	<-done
}
