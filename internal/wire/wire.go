// Package wire provides framed, bidirectional message transport for the
// O-RAN interfaces in this repository (E2, F1, NG).
//
// Real O-RAN deployments carry E2AP and F1AP over SCTP, which provides
// message boundaries on top of reliable delivery. The Go standard library
// has no SCTP support, so this package substitutes a 4-byte big-endian
// length prefix over TCP — preserving the two properties the protocols
// above actually rely on: ordered reliable delivery and message framing
// (see DESIGN.md §1).
//
// Every interface can also run fully in-process via Pipe, which the unit
// tests and benchmarks use to avoid socket overhead and port allocation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MaxFrameSize bounds a single frame. Frames beyond this are rejected on
// both send and receive so a misbehaving peer cannot force unbounded
// allocation.
const MaxFrameSize = 16 << 20

// ErrFrameTooLarge is returned when a frame exceeds MaxFrameSize.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// ErrClosed is returned by operations on a closed Conn.
var ErrClosed = errors.New("wire: connection closed")

// A Conn is a framed message connection. It is safe for one concurrent
// reader and any number of concurrent writers.
type Conn struct {
	nc net.Conn

	writeMu sync.Mutex
	// hdr and bufs are the send scratch state, guarded by writeMu: the
	// frame header and payload go out as one gathered write (writev on
	// TCP), so a frame costs one syscall instead of two.
	hdr  [4]byte
	bufs net.Buffers

	readMu sync.Mutex

	closeOnce sync.Once
	closed    chan struct{}
}

// NewConn wraps an established net.Conn in message framing.
func NewConn(nc net.Conn) *Conn {
	return &Conn{nc: nc, closed: make(chan struct{})}
}

// Pipe returns a connected pair of in-process Conns.
func Pipe() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

// Send writes one framed message. It is safe to call concurrently.
func (c *Conn) Send(payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("sending %d bytes: %w", len(payload), ErrFrameTooLarge)
	}
	select {
	case <-c.closed:
		return ErrClosed
	default:
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	binary.BigEndian.PutUint32(c.hdr[:], uint32(len(payload)))
	if len(payload) == 0 {
		if _, err := c.nc.Write(c.hdr[:]); err != nil {
			return fmt.Errorf("wire: writing frame header: %w", err)
		}
		return nil
	}
	// Header and payload leave in a single gathered write. bufs is
	// reused across sends (WriteTo consumes it), so the steady state
	// allocates nothing.
	c.bufs = append(c.bufs[:0], c.hdr[:], payload)
	if _, err := c.bufs.WriteTo(c.nc); err != nil {
		return fmt.Errorf("wire: writing %d-byte frame: %w", len(payload), err)
	}
	return nil
}

// Recv reads one framed message. It blocks until a full frame arrives, the
// connection closes (io.EOF), or an error occurs.
func (c *Conn) Recv() ([]byte, error) {
	c.readMu.Lock()
	defer c.readMu.Unlock()

	var hdr [4]byte
	if _, err := io.ReadFull(c.nc, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("receiving %d bytes: %w", n, ErrFrameTooLarge)
	}
	if n == 0 {
		return []byte{}, nil
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.nc, payload); err != nil {
		return nil, fmt.Errorf("wire: reading %d-byte frame: %w", n, err)
	}
	return payload, nil
}

// SetDeadline sets read and write deadlines on the underlying connection.
func (c *Conn) SetDeadline(t time.Time) error { return c.nc.SetDeadline(t) }

// Close closes the connection. Pending Recv calls return io.EOF or an
// error. Close is idempotent.
func (c *Conn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.closed)
		err = c.nc.Close()
	})
	return err
}

// RemoteAddr reports the remote address of the underlying connection.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// LocalAddr reports the local address of the underlying connection.
func (c *Conn) LocalAddr() net.Addr { return c.nc.LocalAddr() }

// A Listener accepts framed connections.
type Listener struct {
	nl net.Listener
}

// Listen opens a TCP listener on addr ("host:port"; use ":0" for an
// ephemeral port) that accepts framed connections.
func Listen(addr string) (*Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	return &Listener{nl: nl}, nil
}

// Accept waits for the next connection.
func (l *Listener) Accept() (*Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, fmt.Errorf("wire: accept: %w", err)
	}
	return NewConn(nc), nil
}

// Addr returns the listener's address, useful with ":0".
func (l *Listener) Addr() net.Addr { return l.nl.Addr() }

// Close stops the listener.
func (l *Listener) Close() error { return l.nl.Close() }

// Dial connects to a framed listener at addr with the given timeout.
func Dial(addr string, timeout time.Duration) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return NewConn(nc), nil
}

// Serve accepts connections from l and invokes handle in a new goroutine
// per connection until l is closed. It returns the error that stopped the
// accept loop (net.ErrClosed after Close).
func Serve(l *Listener, handle func(*Conn)) error {
	for {
		c, err := l.Accept()
		if err != nil {
			return err
		}
		go handle(c)
	}
}
