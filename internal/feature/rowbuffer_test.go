package feature

import (
	"math/rand"
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/cell"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/nas"
	"github.com/6g-xsec/xsec/internal/rrc"
)

// variedTrace generates records that exercise every feature group the
// encoder derives state from: identities, security config, protocol
// states, and timestamps (inter-arrival / burst features).
func variedTrace(n int, seed int64) mobiflow.Trace {
	rng := rand.New(rand.NewSource(seed))
	msgs := []string{"RRCSetupRequest", "RRCSetup", "RegistrationRequest", "never-seen"}
	ts := time.Unix(1700000000, 0)
	tr := make(mobiflow.Trace, n)
	for i := range tr {
		ts = ts.Add(time.Duration(rng.Intn(20)) * time.Millisecond)
		r := mobiflow.Record{
			Msg:       msgs[rng.Intn(len(msgs))],
			UEID:      uint64(rng.Intn(6)),
			RNTI:      cell.RNTI(rng.Intn(8)),
			TMSI:      cell.TMSI(rng.Intn(5)),
			Dir:       cell.Uplink,
			Timestamp: ts,
			RRCState:  rrc.State(rng.Intn(6)),
			NASState:  nas.State(rng.Intn(6)),
			CipherAlg: cell.CipherAlg(rng.Intn(4)),
			IntegAlg:  cell.IntegAlg(rng.Intn(4)),
		}
		r.SecurityOn = rng.Intn(2) == 0
		r.OutOfOrder = rng.Intn(8) == 0
		if rng.Intn(4) == 0 {
			r.SUPI = "imsi-00101999"
		}
		tr[i] = r
	}
	return tr
}

// TestEncodeF32MatchesEncode is the parity contract of the zero-copy
// path: EncodeF32 must produce exactly float32(Encode(r)[i]) for every
// feature, with identical identity-history evolution.
func TestEncodeF32MatchesEncode(t *testing.T) {
	tr := variedTrace(300, 7)
	v := BuildVocabulary(tr)
	e64, e32 := NewEncoder(v), NewEncoder(v)
	dst := make([]float32, e32.Dim())
	for i, r := range tr {
		want := e64.Encode(r)
		e32.EncodeF32(dst, r)
		for j := range want {
			if dst[j] != float32(want[j]) {
				t.Fatalf("record %d feature %d: EncodeF32 = %g, Encode = %g", i, j, dst[j], want[j])
			}
		}
	}
}

// TestRowBufferWindows checks Push/Trim/AppendWindowF32 bookkeeping
// against independently encoded rows.
func TestRowBufferWindows(t *testing.T) {
	tr := variedTrace(40, 9)
	v := BuildVocabulary(tr)
	ref := Vectorize(tr, v)
	enc := NewEncoder(v)
	b := NewRowBuffer(Dim(v))

	for i, r := range tr {
		b.Push(enc, r)
		if b.Len() != i+1 {
			t.Fatalf("Len after %d pushes = %d", i+1, b.Len())
		}
	}
	for i, want := range ref {
		row := b.Row(i)
		for j := range want {
			if row[j] != float32(want[j]) {
				t.Fatalf("row %d feature %d = %g, want %g", i, j, row[j], want[j])
			}
		}
	}

	// A flattened window is the concatenation of its rows.
	const start, n = 5, 4
	win := b.AppendWindowF32(nil, start, n)
	if len(win) != n*b.Dim() {
		t.Fatalf("window len = %d, want %d", len(win), n*b.Dim())
	}
	for i := 0; i < n; i++ {
		for j := 0; j < b.Dim(); j++ {
			if win[i*b.Dim()+j] != float32(ref[start+i][j]) {
				t.Fatalf("window row %d feature %d mismatch", i, j)
			}
		}
	}

	// Trim slides surviving rows down.
	b.Trim(10)
	if b.Len() != len(tr)-10 {
		t.Fatalf("Len after Trim(10) = %d, want %d", b.Len(), len(tr)-10)
	}
	row := b.Row(0)
	for j := range ref[10] {
		if row[j] != float32(ref[10][j]) {
			t.Fatalf("post-trim row 0 feature %d = %g, want %g", j, row[j], ref[10][j])
		}
	}
	b.Trim(b.Len() + 5)
	if b.Len() != 0 {
		t.Fatalf("Len after over-trim = %d, want 0", b.Len())
	}
}

// TestFeatureToTensorZeroAllocs proves the streaming feature→tensor path
// allocates nothing in steady state: a warm RowBuffer cycles Push/Trim
// without touching the heap, and window extraction into a pre-sized
// batch tensor is a pure copy.
func TestFeatureToTensorZeroAllocs(t *testing.T) {
	tr := variedTrace(64, 11)
	v := BuildVocabulary(tr)
	enc := NewEncoder(v)
	b := NewRowBuffer(Dim(v))
	// Warm up: identity maps and the buffer's backing array reach their
	// steady-state footprint.
	for _, r := range tr {
		b.Push(enc, r)
	}
	b.Trim(b.Len())
	for _, r := range tr[:16] {
		b.Push(enc, r)
	}

	const winSize = 4
	batch := make([]float32, 0, 16*winSize*b.Dim())
	i := 0
	if a := testing.AllocsPerRun(200, func() {
		b.Push(enc, tr[i%len(tr)])
		batch = b.AppendWindowF32(batch[:0], b.Len()-winSize, winSize)
		b.Trim(1)
		i++
	}); a != 0 {
		t.Errorf("feature→tensor cycle allocates %v/op, want 0", a)
	}
}
