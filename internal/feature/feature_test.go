package feature

import (
	"reflect"
	"testing"
	"testing/quick"

	"github.com/6g-xsec/xsec/internal/cell"
	"github.com/6g-xsec/xsec/internal/mobiflow"
)

func rec(msg string, ue uint64, rnti cell.RNTI, tmsi cell.TMSI) mobiflow.Record {
	return mobiflow.Record{Msg: msg, UEID: ue, RNTI: rnti, TMSI: tmsi, Dir: cell.Uplink}
}

func TestVocabularyBuildAndLookup(t *testing.T) {
	tr := mobiflow.Trace{rec("b", 1, 1, 0), rec("a", 1, 1, 0), rec("b", 1, 1, 0)}
	v := BuildVocabulary(tr)
	if !reflect.DeepEqual(v.Messages, []string{"a", "b"}) {
		t.Fatalf("Messages = %v", v.Messages)
	}
	if v.Index("a") != 0 || v.Index("b") != 1 {
		t.Error("known message indices wrong")
	}
	if v.Index("zzz") != 2 {
		t.Errorf("unknown index = %d, want unknown bucket 2", v.Index("zzz"))
	}
	if v.Size() != 3 {
		t.Errorf("Size = %d", v.Size())
	}
}

func TestEncodeDimensionsAndOneHot(t *testing.T) {
	v := NewVocabulary([]string{"RRCSetupRequest", "RRCSetup"})
	e := NewEncoder(v)
	r := rec("RRCSetupRequest", 1, 0x10, 0)
	vec := e.Encode(r)
	if len(vec) != e.Dim() {
		t.Fatalf("len = %d, want %d", len(vec), e.Dim())
	}
	if vec[0] != 1 || vec[1] != 0 || vec[2] != 0 {
		t.Errorf("message one-hot wrong: %v", vec[:3])
	}
	// Exactly one message slot set.
	var count int
	for _, x := range vec[:v.Size()] {
		if x == 1 {
			count++
		}
	}
	if count != 1 {
		t.Errorf("message one-hot count = %d", count)
	}
}

func TestUnknownMessageBucket(t *testing.T) {
	v := NewVocabulary([]string{"known"})
	e := NewEncoder(v)
	vec := e.Encode(rec("never-seen", 1, 1, 0))
	if vec[v.Size()-1] != 1 {
		t.Error("unknown bucket not set for unseen message")
	}
}

func TestRNTIFreshness(t *testing.T) {
	v := NewVocabulary([]string{"m"})
	e := NewEncoder(v)
	derivedBase := e.Dim() - widthDerived

	v1 := e.Encode(rec("m", 1, 0x10, 0))
	if v1[derivedBase] != 1 {
		t.Error("first RNTI not marked fresh")
	}
	v2 := e.Encode(rec("m", 1, 0x10, 0))
	if v2[derivedBase] != 0 {
		t.Error("repeated RNTI marked fresh")
	}
	v3 := e.Encode(rec("m", 2, 0x11, 0))
	if v3[derivedBase] != 1 {
		t.Error("new RNTI not marked fresh")
	}
	// Invalid (zero) RNTI is never fresh.
	v4 := e.Encode(rec("m", 3, cell.InvalidRNTI, 0))
	if v4[derivedBase] != 0 {
		t.Error("invalid RNTI marked fresh")
	}
}

func TestTMSIReuseAcrossUEs(t *testing.T) {
	v := NewVocabulary([]string{"m"})
	e := NewEncoder(v)
	base := e.Dim() - widthDerived

	a := e.Encode(rec("m", 1, 1, 0xBEEF))
	if a[base+1] != 0 {
		t.Error("first TMSI use marked as reuse")
	}
	if a[base+2] != 1 {
		t.Error("tmsiPresent not set")
	}
	b := e.Encode(rec("m", 1, 1, 0xBEEF))
	if b[base+1] != 0 {
		t.Error("same-UE TMSI marked as reuse")
	}
	// Blind DoS pattern: another UE context presents the same TMSI.
	c := e.Encode(rec("m", 2, 2, 0xBEEF))
	if c[base+1] != 1 {
		t.Error("cross-UE TMSI reuse not detected")
	}
}

func TestSUPIExposureFeature(t *testing.T) {
	v := NewVocabulary([]string{"m"})
	e := NewEncoder(v)
	base := e.Dim() - widthDerived

	r := rec("m", 1, 1, 0)
	r.SUPI = "imsi-001010000000001"
	vec := e.Encode(r)
	if vec[base+3] != 1 {
		t.Error("plaintext SUPI before security not flagged")
	}
	r.SecurityOn = true
	vec = e.Encode(r)
	if vec[base+3] != 0 {
		t.Error("SUPI after security activation flagged")
	}
}

func TestNullSecurityFeature(t *testing.T) {
	v := NewVocabulary([]string{"m"})
	e := NewEncoder(v)
	base := e.Dim() - widthDerived

	r := rec("m", 1, 1, 0)
	r.SecurityOn = true
	r.CipherAlg = cell.NEA0
	r.IntegAlg = cell.NIA0
	if vec := e.Encode(r); vec[base+4] != 1 {
		t.Error("active null security not flagged")
	}
	r.CipherAlg, r.IntegAlg = cell.NEA2, cell.NIA2
	if vec := e.Encode(r); vec[base+4] != 0 {
		t.Error("strong security flagged as null")
	}
	// NEA0 before security activation is normal, not an anomaly feature.
	r.SecurityOn = false
	r.CipherAlg = cell.NEA0
	if vec := e.Encode(r); vec[base+4] != 0 {
		t.Error("pre-security NEA0 flagged")
	}
}

func TestEncoderReset(t *testing.T) {
	v := NewVocabulary([]string{"m"})
	e := NewEncoder(v)
	base := e.Dim() - widthDerived
	e.Encode(rec("m", 1, 0x10, 0))
	e.Reset()
	if vec := e.Encode(rec("m", 1, 0x10, 0)); vec[base] != 1 {
		t.Error("RNTI history survived Reset")
	}
}

func TestWindowsAE(t *testing.T) {
	vecs := [][]float64{{1}, {2}, {3}, {4}}
	w := WindowsAE(vecs, 2)
	want := [][]float64{{1, 2}, {2, 3}, {3, 4}}
	if !reflect.DeepEqual(w, want) {
		t.Errorf("WindowsAE = %v, want %v", w, want)
	}
	if WindowsAE(vecs, 5) != nil {
		t.Error("window larger than data should yield nil")
	}
	if WindowsAE(vecs, 0) != nil {
		t.Error("n=0 should yield nil")
	}
}

func TestWindowsLSTM(t *testing.T) {
	vecs := [][]float64{{1}, {2}, {3}, {4}}
	wins, nexts := WindowsLSTM(vecs, 2)
	if len(wins) != 2 || len(nexts) != 2 {
		t.Fatalf("got %d windows, %d nexts", len(wins), len(nexts))
	}
	if !reflect.DeepEqual(nexts[0], []float64{3}) || !reflect.DeepEqual(nexts[1], []float64{4}) {
		t.Errorf("nexts = %v", nexts)
	}
	if !reflect.DeepEqual(wins[1], [][]float64{{2}, {3}}) {
		t.Errorf("window 1 = %v", wins[1])
	}
}

func TestWindowLabels(t *testing.T) {
	labels := []bool{false, false, true, false, false}
	got := WindowLabels(labels, 2)
	// Windows: [0,1] [1,2] [2,3] [3,4] → record 2 malicious taints windows 1 and 2.
	want := []bool{false, true, true, false}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("WindowLabels = %v, want %v", got, want)
	}
}

func TestWindowLabelsNext(t *testing.T) {
	labels := []bool{false, false, false, true}
	got := WindowLabelsNext(labels, 2)
	// Pairs: window [0,1]+next 2 → benign; window [1,2]+next 3 → malicious.
	want := []bool{false, true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("WindowLabelsNext = %v, want %v", got, want)
	}
}

// Property: windows and labels stay aligned for arbitrary trace lengths
// and window sizes.
func TestQuickWindowAlignment(t *testing.T) {
	f := func(lenRaw uint8, nRaw uint8, maliciousAt uint8) bool {
		length := int(lenRaw%50) + 1
		n := int(nRaw%8) + 1
		vecs := make([][]float64, length)
		labels := make([]bool, length)
		for i := range vecs {
			vecs[i] = []float64{float64(i)}
		}
		if int(maliciousAt) < length {
			labels[maliciousAt] = true
		}
		wins := WindowsAE(vecs, n)
		wl := WindowLabels(labels, n)
		if len(wins) != len(wl) {
			return false
		}
		lw, nexts := WindowsLSTM(vecs, n)
		nl := WindowLabelsNext(labels, n)
		return len(lw) == len(nl) && len(lw) == len(nexts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: encoding is deterministic given identical history.
func TestQuickEncodeDeterministic(t *testing.T) {
	v := NewVocabulary([]string{"a", "b"})
	f := func(msgSel bool, ue uint64, rnti uint16, tmsi uint32, ooo bool) bool {
		msg := "a"
		if msgSel {
			msg = "b"
		}
		r := rec(msg, ue, cell.RNTI(rnti), cell.TMSI(tmsi))
		r.OutOfOrder = ooo
		e1, e2 := NewEncoder(v), NewEncoder(v)
		return reflect.DeepEqual(e1.Encode(r), e2.Encode(r))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeRecord(b *testing.B) {
	v := NewVocabulary([]string{"RRCSetupRequest", "RRCSetup", "RRCSetupComplete", "RegistrationRequest"})
	e := NewEncoder(v)
	r := rec("RRCSetupRequest", 1, 0x46, 0xBEEF)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Encode(r)
	}
}
