// Package feature converts MOBIFLOW telemetry into the numeric windows
// the MobiWatch models consume (§3.2 of the paper): categorical variables
// are one-hot encoded, identity variables (RNTI, TMSI, SUPI) become
// derived novelty/reuse indicators, and a sliding window of size N turns
// the time series τ into sequences S_i = {x_i ... x_{i+N-1}}.
//
// The encoder is streaming and stateful: identity-derived features (fresh
// RNTI, TMSI reuse across UE contexts) depend on what the encoder has
// seen so far, mirroring how the xApp observes the live E2 stream.
package feature

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/6g-xsec/xsec/internal/cell"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/nas"
	"github.com/6g-xsec/xsec/internal/rrc"
)

// Vocabulary maps message names to one-hot indices. It is built from
// training traces and shipped alongside the model so training and
// inference encode identically.
type Vocabulary struct {
	// Messages lists the known message names in index order.
	Messages []string

	index map[string]int
}

// BuildVocabulary collects the distinct message names across traces, in
// sorted order for determinism.
func BuildVocabulary(traces ...mobiflow.Trace) *Vocabulary {
	seen := make(map[string]bool)
	for _, tr := range traces {
		for _, r := range tr {
			seen[r.Msg] = true
		}
	}
	msgs := make([]string, 0, len(seen))
	for m := range seen {
		msgs = append(msgs, m)
	}
	sort.Strings(msgs)
	return NewVocabulary(msgs)
}

// NewVocabulary builds a vocabulary from an explicit message list.
func NewVocabulary(messages []string) *Vocabulary {
	v := &Vocabulary{Messages: append([]string(nil), messages...), index: make(map[string]int, len(messages))}
	for i, m := range v.Messages {
		v.index[m] = i
	}
	return v
}

// Index returns the one-hot index for a message name; unknown messages
// map to the shared "unknown" bucket at index len(Messages).
func (v *Vocabulary) Index(msg string) int {
	if i, ok := v.index[msg]; ok {
		return i
	}
	return len(v.Messages)
}

// Size returns the number of message slots including the unknown bucket.
func (v *Vocabulary) Size() int { return len(v.Messages) + 1 }

// Fixed widths of the non-message feature groups.
const (
	widthDirection = 1
	widthLayer     = 1
	widthCipher    = 4 // NEA0..NEA3
	widthInteg     = 4 // NIA0..NIA3
	widthSecOn     = 1
	widthCause     = 10 // establishment causes
	widthRRCState  = 6
	widthNASState  = 6
	widthFlags     = 2 // out-of-order, retransmission
	// Derived identity/state features: rntiFresh, tmsiReuse,
	// tmsiPresent, supiExposed, nullSecActive, incompleteLoad,
	// floodIndicator, interArrival, burstIndicator.
	widthDerived = 9
)

// floodThreshold is the concurrent-incomplete-session count above which
// the flood indicator fires; benign traffic keeps at most a couple of
// procedures in flight, a signaling storm accumulates many (Figure 2b).
const floodThreshold = 3

// incompleteLoadCap normalizes the incomplete-session counter.
const incompleteLoadCap = 8

// burstInterval is the inter-arrival time below which the burst indicator
// fires. Human-paced devices emit control messages with multi-millisecond
// processing and radio-scheduling delays; a flood arrives faster.
const burstInterval = 5 * time.Millisecond

// interArrivalCap caps the log-scaled inter-arrival feature (1 s and
// beyond saturate to 1).
const interArrivalCapMS = 1000.0

// Dim returns the per-record feature dimension for a vocabulary.
func Dim(v *Vocabulary) int {
	return v.Size() + widthDirection + widthLayer + widthCipher + widthInteg +
		widthSecOn + widthCause + widthRRCState + widthNASState + widthFlags + widthDerived
}

// Encoder streams Records into feature vectors. Not safe for concurrent
// use; MobiWatch owns one per subscription.
type Encoder struct {
	vocab *Vocabulary

	rntiSeen  map[cell.RNTI]bool
	tmsiOwner map[cell.TMSI]uint64
	// incomplete tracks UE contexts whose registration procedure is in
	// flight; its size is the RAN's "incomplete load", the multivariate
	// DoS signature (many fabricated sessions stuck before completion).
	incomplete map[uint64]bool
	// lastTS is the previous record's timestamp for inter-arrival
	// features (zero until the first record).
	lastTS time.Time

	// buf stages EncodeF32 output so the float32 path allocates nothing
	// in steady state.
	buf []float64
}

// NewEncoder returns an Encoder over vocab with empty identity history.
func NewEncoder(vocab *Vocabulary) *Encoder {
	return &Encoder{
		vocab:      vocab,
		rntiSeen:   make(map[cell.RNTI]bool),
		tmsiOwner:  make(map[cell.TMSI]uint64),
		incomplete: make(map[uint64]bool),
	}
}

// Reset clears the identity history (e.g. between independent captures).
func (e *Encoder) Reset() {
	e.rntiSeen = make(map[cell.RNTI]bool)
	e.tmsiOwner = make(map[cell.TMSI]uint64)
	e.incomplete = make(map[uint64]bool)
}

// Dim returns the output dimension of Encode.
func (e *Encoder) Dim() int { return Dim(e.vocab) }

// Encode converts one record into its feature vector, updating the
// identity history.
func (e *Encoder) Encode(r mobiflow.Record) []float64 {
	out := make([]float64, e.Dim())
	e.encodeInto(out, r)
	return out
}

// EncodeF32 encodes one record into dst (len ≥ e.Dim()) as float32,
// updating the identity history exactly like Encode — the fast-path
// variant feeding batched inference tensors. It stages through a reused
// internal buffer, so steady-state calls perform no heap allocation.
func (e *Encoder) EncodeF32(dst []float32, r mobiflow.Record) {
	if e.buf == nil {
		e.buf = make([]float64, e.Dim())
	}
	e.encodeInto(e.buf, r)
	for i, v := range e.buf {
		dst[i] = float32(v)
	}
}

// encodeInto writes the feature vector of r into out (len == e.Dim()),
// zeroing it first, and updates the identity history.
func (e *Encoder) encodeInto(out []float64, r mobiflow.Record) {
	for i := range out {
		out[i] = 0
	}
	pos := 0

	// Message one-hot (with unknown bucket).
	out[pos+e.vocab.Index(r.Msg)] = 1
	pos += e.vocab.Size()

	// Direction and layer.
	if r.Dir == cell.Uplink {
		out[pos] = 1
	}
	pos += widthDirection
	if r.Layer == mobiflow.LayerNAS {
		out[pos] = 1
	}
	pos += widthLayer

	// Security algorithms.
	if int(r.CipherAlg) < widthCipher {
		out[pos+int(r.CipherAlg)] = 1
	}
	pos += widthCipher
	if int(r.IntegAlg) < widthInteg {
		out[pos+int(r.IntegAlg)] = 1
	}
	pos += widthInteg
	if r.SecurityOn {
		out[pos] = 1
	}
	pos += widthSecOn

	// Establishment cause.
	if int(r.EstCause) < widthCause {
		out[pos+int(r.EstCause)] = 1
	}
	pos += widthCause

	// Protocol states.
	if int(r.RRCState) < widthRRCState {
		out[pos+int(r.RRCState)] = 1
	}
	pos += widthRRCState
	if int(r.NASState) < widthNASState {
		out[pos+int(r.NASState)] = 1
	}
	pos += widthNASState

	// Protocol flags.
	if r.OutOfOrder {
		out[pos] = 1
	}
	if r.Retransmission {
		out[pos+1] = 1
	}
	pos += widthFlags

	// Derived identity features.
	rntiFresh := r.RNTI != cell.InvalidRNTI && !e.rntiSeen[r.RNTI]
	if r.RNTI != cell.InvalidRNTI {
		e.rntiSeen[r.RNTI] = true
	}
	tmsiReuse := false
	if r.TMSI != cell.InvalidTMSI {
		if owner, ok := e.tmsiOwner[r.TMSI]; ok && owner != r.UEID {
			tmsiReuse = true
		}
		e.tmsiOwner[r.TMSI] = r.UEID
	}
	if rntiFresh {
		out[pos] = 1
	}
	if tmsiReuse {
		out[pos+1] = 1
	}
	if r.TMSI != cell.InvalidTMSI {
		out[pos+2] = 1
	}
	if r.SUPI != "" && !r.SecurityOn {
		out[pos+3] = 1 // plaintext permanent identity exposure
	}
	if r.SecurityOn && (r.CipherAlg.Null() || r.IntegAlg.Null()) {
		out[pos+4] = 1 // null security actively selected
	}

	// Incomplete-session load: how many UE contexts have a registration
	// procedure in flight. Released or registered contexts leave the
	// set; abandoned ones accumulate — the resource-exhaustion footprint
	// of the DoS attacks.
	switch {
	case r.RRCState == rrc.StateReleased:
		delete(e.incomplete, r.UEID)
	case r.NASState == nas.StateRegistered:
		e.incomplete[r.UEID] = false
	default:
		e.incomplete[r.UEID] = true
	}
	load := 0
	for _, inFlight := range e.incomplete {
		if inFlight {
			load++
		}
	}
	if load > incompleteLoadCap {
		load = incompleteLoadCap
	}
	out[pos+5] = float64(load) / incompleteLoadCap
	if load >= floodThreshold {
		out[pos+6] = 1
	}

	// Inter-arrival time (t_i − t_{i−1}), log-scaled, plus a burst
	// indicator: control messages arriving faster than any real device
	// signals machine-generated flooding.
	if !e.lastTS.IsZero() && !r.Timestamp.IsZero() {
		dt := r.Timestamp.Sub(e.lastTS)
		if dt < 0 {
			dt = 0
		}
		ms := float64(dt) / float64(time.Millisecond)
		scaled := math.Log10(ms+1) / math.Log10(interArrivalCapMS+1)
		if scaled > 1 {
			scaled = 1
		}
		out[pos+7] = scaled
		if dt < burstInterval {
			out[pos+8] = 1
		}
	} else {
		out[pos+7] = 0.5 // unknown: neutral midpoint
	}
	if !r.Timestamp.IsZero() {
		e.lastTS = r.Timestamp
	}
	pos += widthDerived

	if pos != len(out) {
		panic(fmt.Sprintf("feature: encoded %d of %d dims", pos, len(out)))
	}
}

// Vectorize encodes an entire trace with a fresh Encoder.
func Vectorize(tr mobiflow.Trace, vocab *Vocabulary) [][]float64 {
	e := NewEncoder(vocab)
	out := make([][]float64, len(tr))
	for i, r := range tr {
		out[i] = e.Encode(r)
	}
	return out
}

// WindowsAE slides a window of size n over vecs and flattens each window
// into a single vector for the autoencoder: len(out) == len(vecs)-n+1.
func WindowsAE(vecs [][]float64, n int) [][]float64 {
	if n <= 0 || len(vecs) < n {
		return nil
	}
	dim := len(vecs[0])
	out := make([][]float64, 0, len(vecs)-n+1)
	for i := 0; i+n <= len(vecs); i++ {
		w := make([]float64, 0, n*dim)
		for j := i; j < i+n; j++ {
			w = append(w, vecs[j]...)
		}
		out = append(out, w)
	}
	return out
}

// WindowsLSTM produces (window, next) pairs for next-step prediction:
// window i is vecs[i:i+n] and next is vecs[i+n].
func WindowsLSTM(vecs [][]float64, n int) (windows [][][]float64, nexts [][]float64) {
	if n <= 0 || len(vecs) <= n {
		return nil, nil
	}
	for i := 0; i+n < len(vecs); i++ {
		windows = append(windows, vecs[i:i+n])
		nexts = append(nexts, vecs[i+n])
	}
	return windows, nexts
}

// RowBuffer accumulates encoded records as contiguous float32 rows — the
// staging area between the streaming encoder and a batched inference
// tensor. Records are encoded directly into the buffer's backing array
// and windows are appended to the batch tensor with one contiguous copy,
// so the feature→tensor path performs no steady-state heap allocation.
type RowBuffer struct {
	dim  int
	rows []float32 // flat, Len()×dim
}

// NewRowBuffer returns an empty buffer for rows of the given dimension.
func NewRowBuffer(dim int) *RowBuffer {
	if dim <= 0 {
		panic("feature: NewRowBuffer needs dim > 0")
	}
	return &RowBuffer{dim: dim}
}

// Dim returns the per-row feature dimension.
func (b *RowBuffer) Dim() int { return b.dim }

// Len returns the number of buffered rows.
func (b *RowBuffer) Len() int { return len(b.rows) / b.dim }

// Push encodes r through e directly into the buffer's next row. The
// backing array grows geometrically and is then reused, so a buffer that
// is Trimmed back down stops allocating.
func (b *RowBuffer) Push(e *Encoder, r mobiflow.Record) {
	n := len(b.rows)
	if cap(b.rows) < n+b.dim {
		grown := make([]float32, n, 2*(n+b.dim))
		copy(grown, b.rows)
		b.rows = grown
	}
	b.rows = b.rows[:n+b.dim]
	e.EncodeF32(b.rows[n:n+b.dim], r)
}

// Trim drops the oldest drop rows, sliding the rest down in place.
func (b *RowBuffer) Trim(drop int) {
	if drop <= 0 {
		return
	}
	if drop >= b.Len() {
		b.rows = b.rows[:0]
		return
	}
	kept := copy(b.rows, b.rows[drop*b.dim:])
	b.rows = b.rows[:kept]
}

// Row returns a view of row i, valid until the next Push or Trim.
func (b *RowBuffer) Row(i int) []float32 {
	return b.rows[i*b.dim : (i+1)*b.dim]
}

// AppendWindowF32 appends rows [start, start+n) to dst as one flattened
// window — a single contiguous copy into the batch tensor. With dst
// capacity pre-sized it performs no allocation.
func (b *RowBuffer) AppendWindowF32(dst []float32, start, n int) []float32 {
	return append(dst, b.rows[start*b.dim:(start+n)*b.dim]...)
}

// WindowLabels derives per-window labels from per-record labels using the
// paper's rule (§4, Dataset Labeling): any window containing a malicious
// record x_i is malicious, i.e. windows i-N+1 ... i for record i.
// n is the window size; the result aligns with WindowsAE output.
func WindowLabels(recordMalicious []bool, n int) []bool {
	if n <= 0 || len(recordMalicious) < n {
		return nil
	}
	out := make([]bool, len(recordMalicious)-n+1)
	for i := range out {
		for j := i; j < i+n; j++ {
			if recordMalicious[j] {
				out[i] = true
				break
			}
		}
	}
	return out
}

// WindowLabelsNext aligns labels with WindowsLSTM output: pair i covers
// records i..i+n (window plus the predicted record).
func WindowLabelsNext(recordMalicious []bool, n int) []bool {
	if n <= 0 || len(recordMalicious) <= n {
		return nil
	}
	out := make([]bool, len(recordMalicious)-n)
	for i := range out {
		for j := i; j <= i+n; j++ {
			if recordMalicious[j] {
				out[i] = true
				break
			}
		}
	}
	return out
}
