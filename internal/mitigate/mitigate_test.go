package mitigate

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/6g-xsec/xsec/internal/analyzer"
	"github.com/6g-xsec/xsec/internal/asn1lite"
	"github.com/6g-xsec/xsec/internal/cell"
	"github.com/6g-xsec/xsec/internal/e2sm"
	"github.com/6g-xsec/xsec/internal/llm"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/prov"
	"github.com/6g-xsec/xsec/internal/sdl"
	"github.com/6g-xsec/xsec/internal/smo"
)

// fakeIssuer records decoded control requests; the first failFirst calls
// return an error.
type fakeIssuer struct {
	mu        sync.Mutex
	calls     []e2sm.ControlRequest
	failFirst int
}

func (f *fakeIssuer) ControlContext(ctx context.Context, nodeID string, fn uint16, hdr, msg []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	var req e2sm.ControlRequest
	if err := asn1lite.Unmarshal(msg, &req); err != nil {
		return err
	}
	f.calls = append(f.calls, req)
	if f.failFirst > 0 {
		f.failFirst--
		return errors.New("simulated control failure")
	}
	return nil
}

func (f *fakeIssuer) snapshot() []e2sm.ControlRequest {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]e2sm.ControlRequest(nil), f.calls...)
}

func caseFor(class llm.AttackClass, req *e2sm.ControlRequest) *analyzer.Case {
	return &analyzer.Case{
		Alert: mobiwatch.Alert{
			NodeID: "gnb-test",
			Window: mobiflow.Trace{{Seq: 1, Msg: "RRCSetupRequest"}, {Seq: 2, Msg: "RegistrationRequest"}},
		},
		Analysis: &llm.Analysis{
			Verdict:    llm.VerdictAnomalous,
			Hypotheses: []llm.Hypothesis{{Class: class, Likelihood: 0.9}},
		},
		Agree:       true,
		Control:     req,
		ProcessedAt: time.Now(),
	}
}

func blockCase(tmsi cell.TMSI) *analyzer.Case {
	return caseFor(llm.ClassBlindDoS, &e2sm.ControlRequest{
		Action: e2sm.ControlBlockTMSI, TMSI: tmsi, Reason: "test",
	})
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func entryByID(store *sdl.Store, id uint64) (Entry, bool) {
	for _, en := range Entries(store) {
		if en.ID == id {
			return en, true
		}
	}
	return Entry{}, false
}

func TestDryRunIssuesNothingButJournalsEverything(t *testing.T) {
	iss := &fakeIssuer{}
	store := sdl.New()
	e := New(Config{NodeID: "gnb-test", Issuer: iss, Store: store, Mode: ModeDryRun})
	defer e.Close()

	en := e.Submit(blockCase(5))
	if en == nil || en.Decision != "dry-run" {
		t.Fatalf("entry = %+v", en)
	}
	e.Quiesce()
	if n := len(iss.snapshot()); n != 0 {
		t.Fatalf("dry-run issued %d controls", n)
	}
	got, ok := entryByID(store, en.ID)
	if !ok {
		t.Fatal("proposal not journaled")
	}
	if got.Action != "block-tmsi" || got.Verdict != "ANOMALOUS" || got.Class != llm.ClassBlindDoS.String() {
		t.Errorf("journal entry = %+v", got)
	}
	if got.Digest == "" {
		t.Error("window digest missing")
	}
	if got.State != StateApproved.String() {
		t.Errorf("state = %s", got.State)
	}
}

func TestEnforceLifecycleWithTTLRollback(t *testing.T) {
	iss := &fakeIssuer{}
	store := sdl.New()
	e := New(Config{
		NodeID: "gnb-test", Issuer: iss, Store: store, Mode: ModeEnforce,
		TTL: 30 * time.Millisecond, Cooldown: time.Hour,
	})
	defer e.Close()

	en := e.Submit(blockCase(0xBEEF))
	if en == nil || en.Decision != "approved" {
		t.Fatalf("entry = %+v", en)
	}
	waitFor(t, "active mitigation", func() bool { return e.ActiveCount() == 1 })
	waitFor(t, "rollback", func() bool {
		got, ok := entryByID(store, en.ID)
		return ok && got.State == StateRolledBack.String()
	})
	if e.ActiveCount() != 0 {
		t.Errorf("active = %d after rollback", e.ActiveCount())
	}

	calls := iss.snapshot()
	if len(calls) != 2 {
		t.Fatalf("calls = %+v", calls)
	}
	if calls[0].Action != e2sm.ControlBlockTMSI || calls[1].Action != e2sm.ControlUnblockTMSI {
		t.Errorf("action sequence = %v, %v", calls[0].Action, calls[1].Action)
	}
	if calls[1].TMSI != 0xBEEF {
		t.Errorf("rollback targeted TMSI %d", calls[1].TMSI)
	}

	// The journal holds the full lifecycle.
	got, _ := entryByID(store, en.ID)
	var seq []string
	for _, tr := range got.History {
		seq = append(seq, tr.State)
	}
	want := []string{"proposed", "approved", "issued", "acked", "active", "expired", "rolled-back"}
	if strings.Join(seq, ",") != strings.Join(want, ",") {
		t.Errorf("lifecycle = %v, want %v", seq, want)
	}
}

func TestOneShotActionCompletesAtAck(t *testing.T) {
	iss := &fakeIssuer{}
	store := sdl.New()
	e := New(Config{NodeID: "gnb-test", Issuer: iss, Store: store, Mode: ModeEnforce})
	defer e.Close()

	en := e.Submit(caseFor(llm.ClassBTSDoS, &e2sm.ControlRequest{
		Action: e2sm.ControlReleaseUE, UEID: 42,
	}))
	waitFor(t, "one-shot completion", func() bool {
		got, ok := entryByID(store, en.ID)
		return ok && got.State == StateExpired.String()
	})
	e.Quiesce()
	if e.ActiveCount() != 0 {
		t.Error("one-shot action counted as active")
	}
	if n := len(iss.snapshot()); n != 1 {
		t.Errorf("calls = %d, want 1 (no rollback for release-ue)", n)
	}
}

func TestGovernorSuppressions(t *testing.T) {
	t.Run("mode-off", func(t *testing.T) {
		e := New(Config{Issuer: &fakeIssuer{}, Store: sdl.New(), Mode: ModeOff})
		defer e.Close()
		if en := e.Submit(blockCase(1)); en.Decision != "suppressed:mode-off" {
			t.Errorf("decision = %s", en.Decision)
		}
	})
	t.Run("policy-denied", func(t *testing.T) {
		e := New(Config{Issuer: &fakeIssuer{}, Store: sdl.New(), Mode: ModeEnforce})
		defer e.Close()
		e.ApplyPolicy(smo.Policy{ID: "p1", DenyActions: []string{"block-tmsi"}})
		if en := e.Submit(blockCase(1)); en.Decision != "suppressed:policy-denied" {
			t.Errorf("decision = %s", en.Decision)
		}
	})
	t.Run("duplicate", func(t *testing.T) {
		e := New(Config{Issuer: &fakeIssuer{}, Store: sdl.New(), Mode: ModeEnforce, TTL: time.Hour})
		defer e.Close()
		if en := e.Submit(blockCase(7)); en.Decision != "approved" {
			t.Fatalf("first decision = %s", en.Decision)
		}
		if en := e.Submit(blockCase(7)); en.Decision != "suppressed:duplicate" {
			t.Errorf("second decision = %s", en.Decision)
		}
		// A different target is unaffected by the dedup slot.
		if en := e.Submit(blockCase(8)); en.Decision != "approved" {
			t.Errorf("other-target decision = %s", en.Decision)
		}
	})
	t.Run("cooldown", func(t *testing.T) {
		store := sdl.New()
		e := New(Config{
			Issuer: &fakeIssuer{}, Store: store, Mode: ModeEnforce,
			TTL: 10 * time.Millisecond, Cooldown: time.Hour,
		})
		defer e.Close()
		en := e.Submit(blockCase(9))
		waitFor(t, "rollback", func() bool {
			got, ok := entryByID(store, en.ID)
			return ok && got.State == StateRolledBack.String()
		})
		if en2 := e.Submit(blockCase(9)); en2.Decision != "suppressed:cooldown" {
			t.Errorf("decision = %s", en2.Decision)
		}
	})
	t.Run("rate-limited", func(t *testing.T) {
		e := New(Config{
			Issuer: &fakeIssuer{}, Store: sdl.New(), Mode: ModeEnforce,
			Rate: 1e-9, Burst: 1, TTL: time.Hour,
		})
		defer e.Close()
		if en := e.Submit(blockCase(20)); en.Decision != "approved" {
			t.Fatalf("first decision = %s", en.Decision)
		}
		if en := e.Submit(blockCase(21)); en.Decision != "suppressed:rate-limited" {
			t.Errorf("second decision = %s", en.Decision)
		}
	})
}

func TestRetryThenAck(t *testing.T) {
	iss := &fakeIssuer{failFirst: 1}
	store := sdl.New()
	e := New(Config{
		NodeID: "gnb-test", Issuer: iss, Store: store, Mode: ModeEnforce,
		TTL: time.Hour, MaxRetries: 2, RetryBackoff: time.Millisecond,
	})
	defer e.Close()

	en := e.Submit(blockCase(30))
	waitFor(t, "ack after retry", func() bool {
		got, ok := entryByID(store, en.ID)
		return ok && got.State == StateActive.String()
	})
	if n := len(iss.snapshot()); n != 2 {
		t.Errorf("attempts = %d, want 2", n)
	}
	got, _ := entryByID(store, en.ID)
	var retried bool
	for _, tr := range got.History {
		if strings.HasPrefix(tr.Note, "retry") {
			retried = true
		}
	}
	if !retried {
		t.Error("retry not journaled")
	}
}

func TestExhaustedRetriesFail(t *testing.T) {
	iss := &fakeIssuer{failFirst: 100}
	store := sdl.New()
	e := New(Config{
		NodeID: "gnb-test", Issuer: iss, Store: store, Mode: ModeEnforce,
		MaxRetries: 1, RetryBackoff: time.Millisecond, TTL: time.Hour,
	})
	defer e.Close()

	en := e.Submit(blockCase(31))
	waitFor(t, "terminal failure", func() bool {
		got, ok := entryByID(store, en.ID)
		return ok && got.State == StateFailed.String()
	})
	e.Quiesce()
	// The dedup slot is released so a later retry can be proposed.
	if en2 := e.Submit(blockCase(31)); en2.Decision != "approved" {
		t.Errorf("post-failure decision = %s", en2.Decision)
	}
}

func TestApplyPolicyUpdatesModeDenyTTL(t *testing.T) {
	e := New(Config{Issuer: &fakeIssuer{}, Store: sdl.New(), Mode: ModeOff})
	defer e.Close()

	e.ApplyPolicy(smo.Policy{ID: "p", MitigationMode: "enforce",
		DenyActions: []string{"release-ue"}, MitigationTTLMS: 1234})
	if e.Mode() != ModeEnforce {
		t.Errorf("mode = %v", e.Mode())
	}
	e.mu.Lock()
	ttl, denied := e.ttl, e.deny["release-ue"]
	e.mu.Unlock()
	if ttl != 1234*time.Millisecond {
		t.Errorf("ttl = %v", ttl)
	}
	if !denied {
		t.Error("deny list not applied")
	}

	// Invalid mode is ignored; a non-nil empty deny list clears it.
	e.ApplyPolicy(smo.Policy{ID: "p", MitigationMode: "bogus", DenyActions: []string{}})
	if e.Mode() != ModeEnforce {
		t.Errorf("mode after bogus policy = %v", e.Mode())
	}
	e.mu.Lock()
	denyLen := len(e.deny)
	e.mu.Unlock()
	if denyLen != 0 {
		t.Error("deny list not cleared")
	}
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{
		"off": ModeOff, "": ModeOff, "dry-run": ModeDryRun,
		"DryRun": ModeDryRun, "enforce": ModeEnforce, "ENFORCE": ModeEnforce,
	} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseMode("yolo"); err == nil {
		t.Error("invalid mode accepted")
	}
	for _, m := range []Mode{ModeOff, ModeDryRun, ModeEnforce} {
		back, err := ParseMode(m.String())
		if err != nil || back != m {
			t.Errorf("round trip %v failed", m)
		}
	}
}

func TestTargetKeys(t *testing.T) {
	cases := []struct {
		req  e2sm.ControlRequest
		want string
	}{
		{e2sm.ControlRequest{Action: e2sm.ControlBlockTMSI, TMSI: 5}, "tmsi/5"},
		{e2sm.ControlRequest{Action: e2sm.ControlUnblockTMSI, TMSI: 5}, "tmsi/5"},
		{e2sm.ControlRequest{Action: e2sm.ControlReleaseUE, UEID: 9}, "ue/9"},
		{e2sm.ControlRequest{Action: e2sm.ControlRequireStrongSecurity}, "node"},
	}
	for _, c := range cases {
		if got := targetKey(&c.req); got != c.want {
			t.Errorf("targetKey(%v) = %q, want %q", c.req.Action, got, c.want)
		}
	}
}

func TestSubmitNilAndNoControl(t *testing.T) {
	e := New(Config{Issuer: &fakeIssuer{}, Mode: ModeEnforce})
	defer e.Close()
	if e.Submit(nil) != nil {
		t.Error("nil case produced entry")
	}
	if e.Submit(&analyzer.Case{}) != nil {
		t.Error("control-less case produced entry")
	}
}

func TestWindowDigestStable(t *testing.T) {
	w := mobiflow.Trace{{Seq: 3, Msg: "A"}, {Seq: 4, Msg: "B"}}
	d1, d2 := windowDigest(w), windowDigest(w)
	if d1 == "" || d1 != d2 {
		t.Errorf("digest unstable: %q vs %q", d1, d2)
	}
	if windowDigest(nil) != "" {
		t.Error("empty window produced digest")
	}
	if want := fmt.Sprintf("seq[3..4]n2"); !strings.HasPrefix(d1, want) {
		t.Errorf("digest = %q", d1)
	}
}

// TestEntryChainJoinsProvenance: every journaled action carries the
// "node/sn" chain ID of the indication that triggered it, and the
// lifecycle transitions land in the provenance ledger under that chain.
func TestEntryChainJoinsProvenance(t *testing.T) {
	ledger := prov.New(prov.Options{})
	old := prov.SetActive(ledger)
	defer func() { prov.SetActive(old).Close() }()

	iss := &fakeIssuer{}
	store := sdl.New()
	e := New(Config{NodeID: "gnb-test", Issuer: iss, Store: store, Mode: ModeEnforce})
	defer e.Close()

	c := blockCase(0xF00D)
	c.Alert.IndicationSN = 42
	en := e.Submit(c)
	if en == nil {
		t.Fatal("submit rejected")
	}
	if en.Chain != "gnb-test/42" {
		t.Fatalf("Entry.Chain = %q, want gnb-test/42", en.Chain)
	}
	waitFor(t, "issue", func() bool {
		got, ok := entryByID(store, en.ID)
		return ok && got.State != StateProposed.String() && got.State != StateApproved.String()
	})
	e.Quiesce()
	ledger.Flush()

	rec, ok := ledger.Chain(prov.ChainID{Node: "gnb-test", SN: 42})
	if !ok {
		t.Fatal("no provenance chain for the action")
	}
	states := map[string]bool{}
	for _, ev := range rec.Events {
		if ev.Kind != prov.KindMitigation {
			t.Fatalf("unexpected event kind %v", ev.Kind)
		}
		if ev.ActionID != en.ID || ev.Action != "block-tmsi" {
			t.Fatalf("mitigation event = %+v", ev)
		}
		states[ev.Label] = true
	}
	for _, want := range []string{"proposed", "approved", "issued"} {
		if !states[want] {
			t.Fatalf("lifecycle state %q missing from ledger (have %v)", want, states)
		}
	}

	// Offline replays (no originating indication) journal without a chain
	// and record nothing.
	offline := blockCase(0xCAFE)
	offline.Alert.NodeID = ""
	en2 := e.Submit(offline)
	if en2 == nil {
		t.Fatal("offline submit rejected")
	}
	if en2.Chain != "" {
		t.Fatalf("offline Entry.Chain = %q, want empty", en2.Chain)
	}
}
