// Package mitigate implements the mitigation-engine xApp: the enforcement
// half of the paper's closed feedback loop (Figure 3, §5 "Automated
// Network Responses"). The analyzer recommends E2SM-XRC control actions;
// this engine decides whether each one may actually be issued — under
// operator guardrails distributed as A1 policy — drives approved actions
// through an explicit lifecycle, journals every decision to the SDL for
// audit, and automatically rolls reversible actions back when their TTL
// expires.
//
// Lifecycle of one action:
//
//	proposed ──governor──► suppressed            (policy/dedup/cooldown/rate)
//	    │
//	    └──► approved ──dry-run──► (journaled, nothing issued)
//	              │
//	              └──enforce──► issued ──► acked ──► active ──TTL──► rolled-back
//	                               │         │                  └──► expired
//	                               └─retry───┴──► failed
package mitigate

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/6g-xsec/xsec/internal/analyzer"
	"github.com/6g-xsec/xsec/internal/asn1lite"
	"github.com/6g-xsec/xsec/internal/e2sm"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/prov"
	"github.com/6g-xsec/xsec/internal/sdl"
	"github.com/6g-xsec/xsec/internal/smo"
)

// Engine observability.
var (
	obsActions = obs.NewCounterVec("xsec_mitigate_actions_total",
		"Mitigation actions, by action class and terminal outcome.", "action", "outcome")
	obsSuppressed = obs.NewCounterVec("xsec_mitigate_suppressed_total",
		"Proposals the governor refused, by reason.", "reason")
	obsLatency = obs.NewHistogram("xsec_mitigate_latency_seconds",
		"Mitigation latency: LLM verdict to E2 control acknowledgment.",
		obs.DefLatencyBuckets)
)

// Mode selects how far the engine goes with an approved action.
type Mode int

// Engine modes.
const (
	// ModeOff suppresses everything; proposals are still journaled.
	ModeOff Mode = iota
	// ModeDryRun runs the full governor and journals the decision but
	// never issues a control — the rehearsal mode for new deployments.
	ModeDryRun
	// ModeEnforce issues approved actions over E2.
	ModeEnforce
)

// String returns the flag spelling ("off", "dry-run", "enforce").
func (m Mode) String() string {
	switch m {
	case ModeDryRun:
		return "dry-run"
	case ModeEnforce:
		return "enforce"
	}
	return "off"
}

// ParseMode parses a flag/policy spelling of a mode.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "off", "":
		return ModeOff, nil
	case "dry-run", "dryrun":
		return ModeDryRun, nil
	case "enforce":
		return ModeEnforce, nil
	}
	return ModeOff, fmt.Errorf("mitigate: unknown mode %q", s)
}

// State is a lifecycle stage of one mitigation action.
type State int

// Lifecycle states.
const (
	StateProposed State = iota
	StateSuppressed
	StateApproved
	StateIssued
	StateAcked
	StateFailed
	StateActive
	StateExpired
	StateRolledBack
)

var stateNames = [...]string{
	"proposed", "suppressed", "approved", "issued",
	"acked", "failed", "active", "expired", "rolled-back",
}

// String returns the journal spelling of the state.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Issuer sends E2 control requests; *ric.XApp satisfies it.
type Issuer interface {
	ControlContext(ctx context.Context, nodeID string, ranFunctionID uint16, header, message []byte) error
}

// Config parameterizes an Engine.
type Config struct {
	// NodeID is the default E2 node to control (alerts carrying their
	// own node ID override it).
	NodeID string
	// Issuer sends the controls (required in enforce mode).
	Issuer Issuer
	// Store persists the audit journal (nil disables journaling).
	Store *sdl.Store
	// Mode is the initial mode (A1 policy can change it at runtime).
	Mode Mode
	// TTL bounds reversible actions; expiry triggers the inverse
	// control. Default 30 s.
	TTL time.Duration
	// Cooldown blocks re-mitigating a target after its action leaves
	// the active set. Default 10 s.
	Cooldown time.Duration
	// Rate and Burst shape the token bucket gating issue volume.
	// Defaults: 2 actions/s, burst 4.
	Rate  float64
	Burst int
	// MaxRetries bounds re-issues after a failed control (default 2).
	MaxRetries int
	// RetryBackoff spaces retries (default 50 ms).
	RetryBackoff time.Duration
	// Timeout bounds each E2 control round trip (default 2 s).
	Timeout time.Duration
	// Clock supplies time (default time.Now). Journal timestamps and
	// rate/cooldown accounting use it; TTL and backoff timers are
	// real-time.
	Clock func() time.Time
}

func (c *Config) defaults() {
	if c.TTL <= 0 {
		c.TTL = 30 * time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * time.Second
	}
	if c.Rate <= 0 {
		c.Rate = 2
	}
	if c.Burst <= 0 {
		c.Burst = 4
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

// Transition is one journaled lifecycle step.
type Transition struct {
	State string    `json:"state"`
	At    time.Time `json:"at"`
	Note  string    `json:"note,omitempty"`
}

// Entry is the audit-journal record of one proposal, updated in place as
// the action moves through its lifecycle.
type Entry struct {
	ID      uint64 `json:"id"`
	NodeID  string `json:"node_id"`
	Action  string `json:"action"`
	Target  string `json:"target"`
	Class   string `json:"class"`
	Verdict string `json:"verdict"`
	// Digest summarizes the triggering window (seq range + FNV of the
	// message names) so an auditor can match the journal to telemetry.
	Digest string `json:"window_digest"`
	// Chain is the provenance chain ID ("node/sn") of the E2 indication
	// whose flagged window led to this action, joining the journal to
	// the prov/ledger evidence chain. Empty for offline replays.
	Chain string `json:"chain,omitempty"`
	// Decision is the governor's call: "approved", "dry-run", or
	// "suppressed:<reason>".
	Decision string       `json:"decision"`
	Mode     string       `json:"mode"`
	State    string       `json:"state"`
	History  []Transition `json:"history"`
}

// JournalNS is the SDL namespace holding audit entries.
const JournalNS = "mitigate/journal"

// action is the engine-internal lifecycle record.
type action struct {
	entry   Entry
	req     *e2sm.ControlRequest
	nodeID  string
	chain   prov.ChainID // evidence chain of the triggering indication
	verdict time.Time    // latency epoch: when the LLM verdict landed
	ttl     time.Duration
}

// Engine is the mitigation xApp.
type Engine struct {
	cfg Config

	mu         sync.Mutex
	mode       Mode
	deny       map[string]bool
	ttl        time.Duration
	nextID     uint64
	inflight   map[string]uint64    // target → action ID holding the slot
	cooldown   map[string]time.Time // target → earliest re-mitigation
	timers     map[uint64]*time.Timer
	actions    map[uint64]*action
	active     int
	tokens     float64
	lastRefill time.Time
	closed     bool

	wg sync.WaitGroup
}

// New builds an engine. Close it to stop TTL timers and in-flight work.
func New(cfg Config) *Engine {
	cfg.defaults()
	e := &Engine{
		cfg:        cfg,
		mode:       cfg.Mode,
		deny:       map[string]bool{},
		ttl:        cfg.TTL,
		inflight:   map[string]uint64{},
		cooldown:   map[string]time.Time{},
		timers:     map[uint64]*time.Timer{},
		actions:    map[uint64]*action{},
		tokens:     float64(cfg.Burst),
		lastRefill: cfg.Clock(),
	}
	// Sampled at scrape time; last-constructed engine wins, matching the
	// re-registration semantics the core framework relies on.
	obs.NewGaugeFunc("xsec_mitigate_active",
		"Mitigations currently enforced on the RAN.", func() float64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			return float64(e.active)
		})
	return e
}

// Mode reports the current mode.
func (e *Engine) Mode() Mode {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.mode
}

// SetMode switches the engine mode at runtime.
func (e *Engine) SetMode(m Mode) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mode = m
}

// ActiveCount reports mitigations currently enforced.
func (e *Engine) ActiveCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.active
}

// ApplyPolicy absorbs the mitigation fields of an A1 policy: mode,
// per-action-class deny list, and rollback TTL. Unset fields leave the
// current configuration untouched.
func (e *Engine) ApplyPolicy(p smo.Policy) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if p.MitigationMode != "" {
		if m, err := ParseMode(p.MitigationMode); err == nil {
			e.mode = m
		} else {
			obs.L().Warn("mitigate: ignoring invalid policy mode",
				"policy", p.ID, "mode", p.MitigationMode)
		}
	}
	if p.DenyActions != nil {
		e.deny = make(map[string]bool, len(p.DenyActions))
		for _, a := range p.DenyActions {
			e.deny[strings.ToLower(strings.TrimSpace(a))] = true
		}
	}
	if p.MitigationTTLMS > 0 {
		e.ttl = time.Duration(p.MitigationTTLMS) * time.Millisecond
	}
}

// Submit runs one analyzer case through the governor. It returns the
// journal entry snapshot describing the decision; issuing, acking, and
// rollback proceed asynchronously. Cases without a recommended control
// are ignored (nil entry).
func (e *Engine) Submit(c *analyzer.Case) *Entry {
	if c == nil || c.Control == nil {
		return nil
	}
	nodeID := c.Alert.NodeID
	if nodeID == "" {
		nodeID = e.cfg.NodeID
	}
	now := e.cfg.Clock()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.nextID++
	// Offline replays carry no indication identity; their chain stays
	// empty and no provenance events are recorded for them.
	var chain prov.ChainID
	if c.Alert.NodeID != "" {
		chain = prov.ChainID{Node: c.Alert.NodeID, SN: c.Alert.IndicationSN}
	}
	act := &action{
		req:     c.Control,
		nodeID:  nodeID,
		chain:   chain,
		verdict: c.ProcessedAt,
		ttl:     e.ttl,
		entry: Entry{
			ID:      e.nextID,
			NodeID:  nodeID,
			Action:  c.Control.Action.String(),
			Target:  targetKey(c.Control),
			Verdict: verdictOf(c),
			Class:   classOf(c),
			Digest:  windowDigest(c.Alert.Window),
			Mode:    e.mode.String(),
		},
	}
	if chain.Node != "" {
		act.entry.Chain = chain.String()
	}
	e.actions[act.entry.ID] = act
	e.recordLocked(act, StateProposed, "", now)

	reason, approved := e.governLocked(act, now)
	var snapshot Entry
	switch {
	case !approved:
		act.entry.Decision = "suppressed:" + reason
		e.recordLocked(act, StateSuppressed, reason, now)
		obsSuppressed.With(reason).Inc()
	case e.mode == ModeDryRun:
		act.entry.Decision = "dry-run"
		e.recordLocked(act, StateApproved, "dry-run: control withheld", now)
		obsActions.With(act.entry.Action, "dry_run").Inc()
	default:
		act.entry.Decision = "approved"
		e.recordLocked(act, StateApproved, "", now)
		e.inflight[act.entry.Target] = act.entry.ID
		e.wg.Add(1)
		go e.issue(act)
	}
	snapshot = act.entry
	e.mu.Unlock()
	return &snapshot
}

// governLocked applies the guardrails in order; the first closed gate
// names the suppression reason.
func (e *Engine) governLocked(act *action, now time.Time) (reason string, approved bool) {
	if e.mode == ModeOff {
		return "mode-off", false
	}
	if e.deny[act.entry.Action] {
		return "policy-denied", false
	}
	if _, dup := e.inflight[act.entry.Target]; dup {
		return "duplicate", false
	}
	if until, ok := e.cooldown[act.entry.Target]; ok && now.Before(until) {
		return "cooldown", false
	}
	// Token bucket: refill on demand, spend one token per approval —
	// including dry-run approvals, so the rehearsal journal predicts
	// enforce-mode behavior faithfully.
	elapsed := now.Sub(e.lastRefill).Seconds()
	if elapsed > 0 {
		e.tokens += elapsed * e.cfg.Rate
		if max := float64(e.cfg.Burst); e.tokens > max {
			e.tokens = max
		}
		e.lastRefill = now
	}
	if e.tokens < 1 {
		return "rate-limited", false
	}
	e.tokens--
	if e.mode == ModeEnforce && e.cfg.Issuer == nil {
		return "no-issuer", false
	}
	return "", true
}

// issue drives one approved action over E2 with retries, then arms the
// TTL rollback for reversible actions.
func (e *Engine) issue(act *action) {
	defer e.wg.Done()
	payload := asn1lite.Marshal(act.req)

	e.record(act, StateIssued, "")
	err := e.sendWithRetries(act, payload)
	if err != nil {
		e.mu.Lock()
		delete(e.inflight, act.entry.Target)
		e.recordLocked(act, StateFailed, err.Error(), e.cfg.Clock())
		e.mu.Unlock()
		obsActions.With(act.entry.Action, "failed").Inc()
		obs.L().Warn("mitigate: control failed", "action", act.entry.Action,
			"target", act.entry.Target, "err", err)
		return
	}
	now := e.cfg.Clock()
	obsLatency.Observe(now.Sub(act.verdict).Seconds())
	obsActions.With(act.entry.Action, "acked").Inc()

	e.mu.Lock()
	e.recordLocked(act, StateAcked, "", now)
	if _, reversible := act.req.Action.Inverse(); !reversible {
		// One-shot actions (e.g. release-ue) are complete at ack: they
		// leave the active set immediately, holding only the cooldown.
		e.cooldown[act.entry.Target] = now.Add(e.cfg.Cooldown)
		delete(e.inflight, act.entry.Target)
		e.recordLocked(act, StateExpired, "one-shot action complete", now)
		e.mu.Unlock()
		obsActions.With(act.entry.Action, "expired").Inc()
		return
	}
	e.active++
	e.recordLocked(act, StateActive, fmt.Sprintf("ttl %s armed", act.ttl), now)
	if !e.closed {
		id := act.entry.ID
		e.timers[id] = time.AfterFunc(act.ttl, func() { e.expire(id) })
	}
	e.mu.Unlock()
	obs.L().Info("mitigate: action active", "action", act.entry.Action,
		"target", act.entry.Target, "node", act.nodeID, "ttl", act.ttl)
}

// expire fires at TTL: the reversible action is undone by issuing its
// inverse control.
func (e *Engine) expire(id uint64) {
	e.mu.Lock()
	act := e.actions[id]
	delete(e.timers, id)
	if act == nil || e.closed {
		e.mu.Unlock()
		return
	}
	e.recordLocked(act, StateExpired, "ttl reached, rolling back", e.cfg.Clock())
	e.wg.Add(1)
	e.mu.Unlock()

	go func() {
		defer e.wg.Done()
		inv, _ := act.req.Action.Inverse()
		payload := asn1lite.Marshal(&e2sm.ControlRequest{
			Action: inv,
			UEID:   act.req.UEID,
			TMSI:   act.req.TMSI,
			Reason: "ttl rollback of " + act.entry.Action,
		})
		err := e.sendWithRetries(act, payload)

		now := e.cfg.Clock()
		e.mu.Lock()
		e.active--
		e.cooldown[act.entry.Target] = now.Add(e.cfg.Cooldown)
		delete(e.inflight, act.entry.Target)
		if err != nil {
			e.recordLocked(act, StateFailed, "rollback: "+err.Error(), now)
			e.mu.Unlock()
			obsActions.With(act.entry.Action, "rollback_failed").Inc()
			obs.L().Warn("mitigate: rollback failed", "action", act.entry.Action,
				"target", act.entry.Target, "err", err)
			return
		}
		e.recordLocked(act, StateRolledBack, "", now)
		e.mu.Unlock()
		obsActions.With(act.entry.Action, "rolled_back").Inc()
		obs.L().Info("mitigate: action rolled back", "action", act.entry.Action,
			"target", act.entry.Target)
	}()
}

// sendWithRetries performs the E2 control with per-attempt timeout and
// backoff between attempts.
func (e *Engine) sendWithRetries(act *action, payload []byte) error {
	var err error
	for attempt := 0; attempt <= e.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(e.cfg.RetryBackoff << (attempt - 1))
			e.record(act, StateIssued, fmt.Sprintf("retry %d", attempt))
		}
		ctx, cancel := context.WithTimeout(context.Background(), e.cfg.Timeout)
		err = e.cfg.Issuer.ControlContext(ctx, act.nodeID, e2sm.XRCRANFunctionID, nil, payload)
		cancel()
		if err == nil {
			return nil
		}
	}
	return err
}

// record appends a lifecycle transition and persists the entry.
func (e *Engine) record(act *action, s State, note string) {
	e.mu.Lock()
	e.recordLocked(act, s, note, e.cfg.Clock())
	e.mu.Unlock()
}

func (e *Engine) recordLocked(act *action, s State, note string, at time.Time) {
	act.entry.State = s.String()
	act.entry.History = append(act.entry.History, Transition{State: s.String(), At: at, Note: note})
	// Every lifecycle transition also joins the evidence chain of the
	// indication that triggered the action (the journal stays the
	// authoritative record; the ledger links it to its upstream cause).
	if act.chain.Node != "" {
		prov.Record(prov.Event{
			Chain:    act.chain,
			Kind:     prov.KindMitigation,
			At:       at,
			ActionID: act.entry.ID,
			Action:   act.entry.Action,
			Target:   act.entry.Target,
			UEID:     act.req.UEID,
			Label:    s.String(),
			Note:     note,
		})
	}
	if e.cfg.Store == nil {
		return
	}
	data, err := json.Marshal(&act.entry)
	if err != nil {
		return
	}
	// The marshal buffer is single-use; the store takes ownership
	// rather than copying it.
	e.cfg.Store.SetOwned(JournalNS, fmt.Sprintf("act/%020d", act.entry.ID), data)
}

// Entries reads the audit journal back from the SDL, ordered by action ID.
func Entries(store *sdl.Store) []Entry {
	if store == nil {
		return nil
	}
	raw := store.GetAll(JournalNS, "act/")
	keys := make([]string, 0, len(raw))
	for k := range raw {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Entry, 0, len(keys))
	for _, k := range keys {
		var en Entry
		if json.Unmarshal(raw[k], &en) == nil {
			out = append(out, en)
		}
	}
	return out
}

// Quiesce blocks until issued controls and fired rollbacks settle. TTL
// timers that have not fired yet are unaffected.
func (e *Engine) Quiesce() { e.wg.Wait() }

// Close stops TTL timers and waits for in-flight work. Active
// mitigations are left in place (the RAN keeps enforcing them); their
// journal entries stay in StateActive.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	for id, t := range e.timers {
		t.Stop()
		delete(e.timers, id)
	}
	e.mu.Unlock()
	e.wg.Wait()
}

// targetKey canonicalizes what a control acts on, the unit of dedup and
// cooldown.
func targetKey(req *e2sm.ControlRequest) string {
	switch req.Action {
	case e2sm.ControlBlockTMSI, e2sm.ControlUnblockTMSI:
		return fmt.Sprintf("tmsi/%d", req.TMSI)
	case e2sm.ControlReleaseUE:
		return fmt.Sprintf("ue/%d", req.UEID)
	}
	// Node-wide actions (security policy toggles) share one slot.
	return "node"
}

func verdictOf(c *analyzer.Case) string {
	if c.Analysis == nil {
		return ""
	}
	return c.Analysis.Verdict.String()
}

func classOf(c *analyzer.Case) string {
	if c.Analysis == nil {
		return ""
	}
	return c.Analysis.TopClass().String()
}

// windowDigest fingerprints the triggering window: sequence range, record
// count, and an FNV-32 over the message names.
func windowDigest(w mobiflow.Trace) string {
	if len(w) == 0 {
		return ""
	}
	h := fnv.New32a()
	for _, r := range w {
		h.Write([]byte(r.Msg))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("seq[%d..%d]n%d#%08x", w[0].Seq, w[len(w)-1].Seq, len(w), h.Sum32())
}
