package nas

import "fmt"

// State is the 5GMM registration state of a UE as tracked by the AMF and
// mirrored into MobiFlow telemetry.
type State uint8

// 5GMM states (TS 24.501 §5.1.3 subset, with the intermediate procedure
// states the AMF tracks).
const (
	StateDeregistered  State = iota
	StateRegInitiated        // Registration Request received
	StateAuthInitiated       // Authentication Request sent
	StateAuthenticated       // RES* verified
	StateSecured             // NAS security mode complete
	StateRegistered
	stateCount
)

var stateNames = [...]string{
	"DEREGISTERED", "REG_INITIATED", "AUTH_INITIATED", "AUTHENTICATED",
	"SECURED", "REGISTERED",
}

// String returns the state name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// TransitionError reports a NAS message that is illegal in the current
// 5GMM state.
type TransitionError struct {
	State State
	Msg   MsgType
}

// Error implements error.
func (e *TransitionError) Error() string {
	return fmt.Sprintf("nas: message %s illegal in state %s", e.Msg, e.State)
}

// Machine tracks the 5GMM state of one UE. The zero value is
// DEREGISTERED. Not safe for concurrent use.
type Machine struct {
	state State
	// identityRequested is set while a network IdentityRequest is
	// outstanding; an IdentityResponse with no outstanding request is
	// out of order — the signature of injected identity procedures.
	identityRequested bool
}

// State returns the current 5GMM state.
func (m *Machine) State() State { return m.state }

// Reset returns to DEREGISTERED.
func (m *Machine) Reset() {
	m.state = StateDeregistered
	m.identityRequested = false
}

// Observe applies a message, returning a *TransitionError if it is out of
// order for the current state. As with the RRC machine, the transition is
// still applied best-effort so tracking continues for noncompliant peers.
func (m *Machine) Observe(msg Message) error {
	t := msg.Type()
	before := m.state
	legal := m.legal(t)
	switch t {
	case TypeRegistrationRequest:
		m.state = StateRegInitiated
	case TypeAuthenticationRequest:
		m.state = StateAuthInitiated
	case TypeAuthenticationResponse:
		m.state = StateAuthenticated
	case TypeAuthenticationFailure:
		m.state = StateRegInitiated
	case TypeSecurityModeComplete:
		m.state = StateSecured
	case TypeSecurityModeReject:
		m.state = StateAuthenticated
	case TypeRegistrationAccept:
		m.state = StateRegistered
	case TypeRegistrationReject, TypeDeregistrationAccept:
		m.state = StateDeregistered
	case TypeServiceRequest:
		// A service request presents a valid temporary identity: the
		// subscriber is registered (idle); the accept resumes service.
		m.state = StateRegistered
	case TypeDeregistrationRequest:
		// remain; accept completes it
	}
	switch t {
	case TypeIdentityRequest:
		m.identityRequested = true
	case TypeIdentityResponse:
		m.identityRequested = false
	}
	if !legal {
		return &TransitionError{State: before, Msg: t}
	}
	return nil
}

// legal encodes the expected 5GMM procedure ordering: registration, then
// authentication, then security mode, then accept. Identity procedures
// are legal during registration *before* security only when the network
// has no prior identity — exactly the ambiguity identity-extraction
// attacks exploit, so the machine permits IdentityRequest/Response in
// REG_INITIATED but nothing earlier.
func (m *Machine) legal(t MsgType) bool {
	switch m.state {
	case StateDeregistered:
		return t == TypeRegistrationRequest || t == TypeServiceRequest
	case StateRegInitiated:
		switch t {
		case TypeAuthenticationRequest, TypeIdentityRequest,
			TypeRegistrationReject,
			TypeRegistrationRequest: // retransmission
			return true
		case TypeIdentityResponse:
			return m.identityRequested
		}
		return false
	case StateAuthInitiated:
		switch t {
		case TypeAuthenticationResponse, TypeAuthenticationFailure,
			TypeAuthenticationRequest: // re-challenge
			return true
		}
		return false
	case StateAuthenticated:
		switch t {
		case TypeSecurityModeCommand, TypeSecurityModeComplete,
			TypeSecurityModeReject, TypeRegistrationReject:
			return true
		}
		return false
	case StateSecured:
		switch t {
		case TypeRegistrationAccept, TypeRegistrationReject,
			TypeIdentityRequest:
			return true
		case TypeIdentityResponse:
			return m.identityRequested
		}
		return false
	case StateRegistered:
		switch t {
		case TypeRegistrationComplete, TypeServiceRequest,
			TypeServiceAccept, TypeDeregistrationRequest,
			TypeDeregistrationAccept, TypeIdentityRequest:
			return true
		case TypeIdentityResponse:
			return m.identityRequested
		}
		return false
	}
	return false
}
