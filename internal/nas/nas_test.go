package nas

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/6g-xsec/xsec/internal/cell"
)

func allMessages() []Message {
	suci := cell.SUCI{PLMN: cell.TestPLMN, Scheme: 0, MSIN: "0000000001"}
	guti := cell.GUTI{PLMN: cell.TestPLMN, AMFSetID: 3, TMSI: 0xDEADBEEF}
	return []Message{
		&RegistrationRequest{RegType: RegInitial, Identity: MobileIdentity{Type: IdentitySUCI, SUCI: suci}, Capability: 0b1111, FollowOn: true},
		&RegistrationRequest{RegType: RegMobilityUpdate, Identity: MobileIdentity{Type: IdentityGUTI, GUTI: guti}},
		&RegistrationAccept{GUTI: guti},
		&RegistrationComplete{},
		&RegistrationReject{Cause: CauseCongestion},
		&AuthenticationRequest{NgKSI: 1, RAND: [16]byte{1, 2, 3}, AUTN: [16]byte{4, 5, 6}},
		&AuthenticationResponse{RES: []byte{0xAA, 0xBB, 0xCC}},
		&AuthenticationFailure{Cause: CauseAuthFailureMACFail},
		&SecurityModeCommand{CipherAlg: cell.NEA2, IntegAlg: cell.NIA2, NgKSI: 1},
		&SecurityModeComplete{},
		&SecurityModeReject{Cause: CauseSecurityModeRejected},
		&IdentityRequest{Requested: IdentitySUCI},
		&IdentityResponse{Identity: MobileIdentity{Type: IdentitySUCI, SUCI: suci}},
		&ServiceRequest{TMSI: 0xCAFED00D},
		&ServiceAccept{},
		&DeregistrationRequest{SwitchOff: true},
		&DeregistrationAccept{},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, in := range allMessages() {
		out, err := Decode(Encode(in))
		if err != nil {
			t.Fatalf("%s: %v", in.Type(), err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("%s round trip:\n got %#v\nwant %#v", in.Type(), out, in)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) succeeded")
	}
	if _, err := Decode([]byte{0xEE}); !errors.Is(err, ErrUnknownType) {
		t.Errorf("err = %v, want ErrUnknownType", err)
	}
}

func TestAuthRequestRejectsBadFieldSizes(t *testing.T) {
	// Craft an AuthenticationRequest with a 3-byte RAND.
	msg := &AuthenticationResponse{RES: []byte{1, 2, 3}}
	data := Encode(msg)
	data[0] = byte(TypeAuthenticationRequest) // tagRES(12) != tagRAND(10), so RAND stays zero; now craft directly:
	// Direct: encode a RAND with wrong length using the response's tag space is
	// not possible; build via the real message and truncate instead.
	good := Encode(&AuthenticationRequest{RAND: [16]byte{1}, AUTN: [16]byte{2}})
	bad := good[:len(good)-8] // cut into the AUTN value
	if _, err := Decode(bad); err == nil {
		t.Error("truncated AUTN decoded without error")
	}
	_ = data
}

func TestIdentityVariants(t *testing.T) {
	mi := MobileIdentity{Type: IdentityIMEI, IMEI: "356938035643809"}
	in := &IdentityResponse{Identity: mi}
	out, err := Decode(Encode(in))
	if err != nil {
		t.Fatal(err)
	}
	got := out.(*IdentityResponse)
	if got.Identity.IMEI != mi.IMEI || got.Identity.Type != IdentityIMEI {
		t.Errorf("got %+v", got.Identity)
	}
}

func TestIdentityStrings(t *testing.T) {
	cases := []struct{ got, want string }{
		{IdentitySUCI.String(), "SUCI"},
		{IdentityGUTI.String(), "5G-GUTI"},
		{IdentityIMEI.String(), "IMEI"},
		{IdentityType(9).String(), "IdentityType(9)"},
		{MobileIdentity{}.String(), "identity-none"},
		{MobileIdentity{Type: IdentityIMEI, IMEI: "1"}.String(), "imei-1"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}

func TestDirections(t *testing.T) {
	downlink := map[MsgType]bool{
		TypeRegistrationAccept: true, TypeRegistrationReject: true,
		TypeAuthenticationRequest: true, TypeSecurityModeCommand: true,
		TypeIdentityRequest: true, TypeServiceAccept: true,
		TypeDeregistrationAccept: true,
	}
	for _, m := range allMessages() {
		want := cell.Uplink
		if downlink[m.Type()] {
			want = cell.Downlink
		}
		if m.Direction() != want {
			t.Errorf("%s: direction = %v, want %v", m.Type(), m.Direction(), want)
		}
	}
}

func TestAKAFlow(t *testing.T) {
	var k [KeySize]byte
	copy(k[:], "subscriber-key-1")
	var rand [16]byte
	copy(rand[:], "network-nonce-01")
	const sqn = 42

	autn := Challenge(k, rand, sqn)
	if !VerifyAUTN(k, rand, sqn, autn) {
		t.Fatal("genuine AUTN rejected")
	}
	// Rogue network with the wrong key fails AUTN verification.
	var rogue [KeySize]byte
	copy(rogue[:], "rogue-key-000000")
	badAUTN := Challenge(rogue, rand, sqn)
	if VerifyAUTN(k, rand, sqn, badAUTN) {
		t.Error("rogue AUTN accepted")
	}

	res := DeriveRES(k, rand)
	if len(res) != RESSize {
		t.Fatalf("RES length = %d", len(res))
	}
	if !VerifyRES(k, rand, res) {
		t.Error("genuine RES rejected")
	}
	if VerifyRES(k, rand, DeriveRES(rogue, rand)) {
		t.Error("RES under wrong key accepted")
	}
}

func TestAKADistinctChallenges(t *testing.T) {
	var k [KeySize]byte
	a := Challenge(k, [16]byte{1}, 1)
	b := Challenge(k, [16]byte{2}, 1)
	c := Challenge(k, [16]byte{1}, 2)
	if a == b || a == c {
		t.Error("challenges collide across RAND/SQN changes")
	}
}

// Property: registration requests round-trip for arbitrary identities.
func TestQuickRegistrationRoundTrip(t *testing.T) {
	f := func(msin uint64, useGUTI bool, tmsi uint32, cap uint32, followOn bool) bool {
		in := &RegistrationRequest{Capability: cap, FollowOn: followOn}
		if useGUTI {
			in.RegType = RegMobilityUpdate
			in.Identity = MobileIdentity{Type: IdentityGUTI, GUTI: cell.GUTI{PLMN: cell.TestPLMN, TMSI: cell.TMSI(tmsi)}}
		} else {
			in.RegType = RegInitial
			in.Identity = MobileIdentity{Type: IdentitySUCI, SUCI: cell.SUCI{PLMN: cell.TestPLMN, MSIN: padDigits(msin%1e10, 10)}}
		}
		out, err := Decode(Encode(in))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func padDigits(v uint64, width int) string {
	digits := make([]byte, width)
	for i := width - 1; i >= 0; i-- {
		digits[i] = byte('0' + v%10)
		v /= 10
	}
	return string(digits)
}

// Property: the decoder never panics on arbitrary input.
func TestQuickDecodeRobust(t *testing.T) {
	f := func(data []byte) bool {
		Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeRegistration(b *testing.B) {
	m := &RegistrationRequest{
		Identity: MobileIdentity{Type: IdentitySUCI, SUCI: cell.SUCI{PLMN: cell.TestPLMN, MSIN: "0000000001"}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(m)
	}
}

func BenchmarkAKADeriveRES(b *testing.B) {
	var k [KeySize]byte
	var rand [16]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DeriveRES(k, rand)
	}
}
