// Package nas models the 5G Mobility Management (5GMM) subset of the
// Non-Access-Stratum protocol (3GPP TS 24.501) that the 6G-XSec telemetry
// and attacks exercise: registration, primary (5G-AKA) authentication,
// identity procedures, NAS security mode control, service requests, and
// deregistration.
//
// NAS PDUs ride inside RRC information-transfer messages and are relayed
// by the CU to the AMF over NGAP; the CU's RIC agent decodes them to
// populate MobiFlow telemetry (Table 1 of the paper: NAS message, S-TMSI,
// SUPI, cipher/integrity algorithms).
package nas

import (
	"fmt"

	"github.com/6g-xsec/xsec/internal/asn1lite"
	"github.com/6g-xsec/xsec/internal/cell"
)

// MsgType enumerates the 5GMM messages the simulator exchanges.
type MsgType uint8

// NAS 5GMM message types.
const (
	TypeInvalid MsgType = iota
	TypeRegistrationRequest
	TypeRegistrationAccept
	TypeRegistrationComplete
	TypeRegistrationReject
	TypeAuthenticationRequest
	TypeAuthenticationResponse
	TypeAuthenticationFailure
	TypeSecurityModeCommand
	TypeSecurityModeComplete
	TypeSecurityModeReject
	TypeIdentityRequest
	TypeIdentityResponse
	TypeServiceRequest
	TypeServiceAccept
	TypeDeregistrationRequest
	TypeDeregistrationAccept
	typeCount
)

var typeNames = [...]string{
	"Invalid",
	"RegistrationRequest",
	"RegistrationAccept",
	"RegistrationComplete",
	"RegistrationReject",
	"AuthenticationRequest",
	"AuthenticationResponse",
	"AuthenticationFailure",
	"NASSecurityModeCommand",
	"NASSecurityModeComplete",
	"NASSecurityModeReject",
	"IdentityRequest",
	"IdentityResponse",
	"ServiceRequest",
	"ServiceAccept",
	"DeregistrationRequest",
	"DeregistrationAccept",
}

// String returns the TS 24.501 message name (security-mode messages are
// prefixed "NAS" to distinguish them from their RRC counterparts in
// telemetry).
func (t MsgType) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Valid reports whether t is a defined message type.
func (t MsgType) Valid() bool { return t > TypeInvalid && t < typeCount }

// Message is implemented by all NAS messages.
type Message interface {
	asn1lite.Marshaler
	// Type identifies the message.
	Type() MsgType
	// Direction reports UE→network (uplink) or network→UE (downlink).
	Direction() cell.Direction
}

// IdentityType selects which identity an IdentityRequest asks for
// (TS 24.501 §9.11.3.3).
type IdentityType uint8

// Identity types.
const (
	IdentitySUCI IdentityType = 1
	IdentityGUTI IdentityType = 2
	IdentityIMEI IdentityType = 3
)

// String returns the identity-type name.
func (t IdentityType) String() string {
	switch t {
	case IdentitySUCI:
		return "SUCI"
	case IdentityGUTI:
		return "5G-GUTI"
	case IdentityIMEI:
		return "IMEI"
	}
	return fmt.Sprintf("IdentityType(%d)", uint8(t))
}

// MobileIdentity is the 5GS mobile identity IE: exactly one variant is
// populated.
type MobileIdentity struct {
	Type IdentityType
	SUCI cell.SUCI
	GUTI cell.GUTI
	IMEI string
}

// String renders the populated variant.
func (mi MobileIdentity) String() string {
	switch mi.Type {
	case IdentitySUCI:
		return mi.SUCI.String()
	case IdentityGUTI:
		return mi.GUTI.String()
	case IdentityIMEI:
		return "imei-" + mi.IMEI
	}
	return "identity-none"
}

// Field tags shared by the message encodings.
const (
	tagRegType    = 1
	tagIDType     = 2
	tagSUCIPLMN   = 3
	tagSUCIScheme = 4
	tagSUCIMSIN   = 5
	tagGUTIPLMN   = 6
	tagGUTISet    = 7
	tagGUTITMSI   = 8
	tagIMEI       = 9
	tagRAND       = 10
	tagAUTN       = 11
	tagRES        = 12
	tagNgKSI      = 13
	tagCipherAlg  = 14
	tagIntegAlg   = 15
	tagCause5GMM  = 16
	tagCapability = 17
	tagFollowOn   = 18
	tagSwitchOff  = 19
	tagWaitTime   = 20
)

func marshalIdentity(e *asn1lite.Encoder, mi MobileIdentity) {
	e.PutUint(tagIDType, uint64(mi.Type))
	switch mi.Type {
	case IdentitySUCI:
		e.PutString(tagSUCIPLMN, mi.SUCI.PLMN.MCC+mi.SUCI.PLMN.MNC)
		e.PutUint(tagSUCIScheme, uint64(mi.SUCI.Scheme))
		e.PutString(tagSUCIMSIN, mi.SUCI.MSIN)
	case IdentityGUTI:
		e.PutString(tagGUTIPLMN, mi.GUTI.PLMN.MCC+mi.GUTI.PLMN.MNC)
		e.PutUint(tagGUTISet, uint64(mi.GUTI.AMFSetID))
		e.PutUint(tagGUTITMSI, uint64(mi.GUTI.TMSI))
	case IdentityIMEI:
		e.PutString(tagIMEI, mi.IMEI)
	}
}

func unmarshalIdentityField(d *asn1lite.Decoder, mi *MobileIdentity) (handled bool, err error) {
	switch d.Tag() {
	case tagIDType:
		v, err := d.Uint()
		if err != nil {
			return true, err
		}
		mi.Type = IdentityType(v)
	case tagSUCIPLMN:
		s, err := d.String()
		if err != nil {
			return true, err
		}
		mi.SUCI.PLMN = splitPLMN(s)
	case tagSUCIScheme:
		v, err := d.Uint()
		if err != nil {
			return true, err
		}
		mi.SUCI.Scheme = uint8(v)
	case tagSUCIMSIN:
		s, err := d.String()
		if err != nil {
			return true, err
		}
		mi.SUCI.MSIN = s
	case tagGUTIPLMN:
		s, err := d.String()
		if err != nil {
			return true, err
		}
		mi.GUTI.PLMN = splitPLMN(s)
	case tagGUTISet:
		v, err := d.Uint()
		if err != nil {
			return true, err
		}
		mi.GUTI.AMFSetID = uint16(v)
	case tagGUTITMSI:
		v, err := d.Uint()
		if err != nil {
			return true, err
		}
		mi.GUTI.TMSI = cell.TMSI(v)
	case tagIMEI:
		s, err := d.String()
		if err != nil {
			return true, err
		}
		mi.IMEI = s
	default:
		return false, nil
	}
	return true, nil
}

func splitPLMN(s string) cell.PLMN {
	if len(s) < 5 {
		return cell.PLMN{}
	}
	return cell.PLMN{MCC: s[:3], MNC: s[3:]}
}

// RegistrationType distinguishes initial from mobility/periodic
// registration.
type RegistrationType uint8

// Registration types.
const (
	RegInitial RegistrationType = iota
	RegMobilityUpdate
	RegPeriodicUpdate
	RegEmergency
)

// RegistrationRequest (UL) starts registration ("Reg. Req." in Figure 2).
type RegistrationRequest struct {
	RegType    RegistrationType
	Identity   MobileIdentity
	Capability uint32 // bitmask of supported NEA/NIA algorithms
	FollowOn   bool   // follow-on request pending
}

// Type implements Message.
func (*RegistrationRequest) Type() MsgType { return TypeRegistrationRequest }

// Direction implements Message.
func (*RegistrationRequest) Direction() cell.Direction { return cell.Uplink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *RegistrationRequest) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(tagRegType, uint64(m.RegType))
	marshalIdentity(e, m.Identity)
	e.PutUint(tagCapability, uint64(m.Capability))
	e.PutBool(tagFollowOn, m.FollowOn)
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *RegistrationRequest) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
		if handled, err := unmarshalIdentityField(d, &m.Identity); err != nil {
			return err
		} else if handled {
			continue
		}
		switch d.Tag() {
		case tagRegType:
			v, err := d.Uint()
			if err != nil {
				return err
			}
			m.RegType = RegistrationType(v)
		case tagCapability:
			v, err := d.Uint()
			if err != nil {
				return err
			}
			m.Capability = uint32(v)
		case tagFollowOn:
			v, err := d.Bool()
			if err != nil {
				return err
			}
			m.FollowOn = v
		}
	}
	return d.Err()
}

// RegistrationAccept (DL) completes registration and assigns a GUTI.
type RegistrationAccept struct {
	GUTI cell.GUTI
}

// Type implements Message.
func (*RegistrationAccept) Type() MsgType { return TypeRegistrationAccept }

// Direction implements Message.
func (*RegistrationAccept) Direction() cell.Direction { return cell.Downlink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *RegistrationAccept) MarshalTLV(e *asn1lite.Encoder) {
	marshalIdentity(e, MobileIdentity{Type: IdentityGUTI, GUTI: m.GUTI})
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *RegistrationAccept) UnmarshalTLV(d *asn1lite.Decoder) error {
	var mi MobileIdentity
	for d.Next() {
		if _, err := unmarshalIdentityField(d, &mi); err != nil {
			return err
		}
	}
	m.GUTI = mi.GUTI
	return d.Err()
}

// RegistrationComplete (UL) acknowledges the accept.
type RegistrationComplete struct{}

// Type implements Message.
func (*RegistrationComplete) Type() MsgType { return TypeRegistrationComplete }

// Direction implements Message.
func (*RegistrationComplete) Direction() cell.Direction { return cell.Uplink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *RegistrationComplete) MarshalTLV(e *asn1lite.Encoder) {}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *RegistrationComplete) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
	}
	return d.Err()
}

// Cause5GMM is a 5GMM cause value (TS 24.501 §9.11.3.2).
type Cause5GMM uint8

// Selected 5GMM causes.
const (
	CauseIllegalUE            Cause5GMM = 3
	CausePLMNNotAllowed       Cause5GMM = 11
	CauseCongestion           Cause5GMM = 22
	CauseSecurityModeRejected Cause5GMM = 24
	CauseAuthFailureMACFail   Cause5GMM = 20 // MAC failure (from UE)
	CauseAuthFailureSynch     Cause5GMM = 21 // synch failure (from UE)
)

// RegistrationReject (DL) denies registration.
type RegistrationReject struct {
	Cause Cause5GMM
}

// Type implements Message.
func (*RegistrationReject) Type() MsgType { return TypeRegistrationReject }

// Direction implements Message.
func (*RegistrationReject) Direction() cell.Direction { return cell.Downlink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *RegistrationReject) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(tagCause5GMM, uint64(m.Cause))
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *RegistrationReject) UnmarshalTLV(d *asn1lite.Decoder) error {
	return decodeCauseOnly(d, &m.Cause)
}

// AuthenticationRequest (DL) carries the 5G-AKA challenge ("Auth. Req." in
// Figure 2).
type AuthenticationRequest struct {
	NgKSI uint8
	RAND  [16]byte
	AUTN  [16]byte
}

// Type implements Message.
func (*AuthenticationRequest) Type() MsgType { return TypeAuthenticationRequest }

// Direction implements Message.
func (*AuthenticationRequest) Direction() cell.Direction { return cell.Downlink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *AuthenticationRequest) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(tagNgKSI, uint64(m.NgKSI))
	e.PutBytes(tagRAND, m.RAND[:])
	e.PutBytes(tagAUTN, m.AUTN[:])
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *AuthenticationRequest) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case tagNgKSI:
			v, err := d.Uint()
			if err != nil {
				return err
			}
			m.NgKSI = uint8(v)
		case tagRAND:
			b, err := d.Bytes()
			if err != nil {
				return err
			}
			if len(b) != 16 {
				return fmt.Errorf("nas: RAND length %d: %w", len(b), asn1lite.ErrBadValue)
			}
			copy(m.RAND[:], b)
		case tagAUTN:
			b, err := d.Bytes()
			if err != nil {
				return err
			}
			if len(b) != 16 {
				return fmt.Errorf("nas: AUTN length %d: %w", len(b), asn1lite.ErrBadValue)
			}
			copy(m.AUTN[:], b)
		}
	}
	return d.Err()
}

// AuthenticationResponse (UL) carries RES* ("Auth. Resp." in Figure 2).
type AuthenticationResponse struct {
	RES []byte
}

// Type implements Message.
func (*AuthenticationResponse) Type() MsgType { return TypeAuthenticationResponse }

// Direction implements Message.
func (*AuthenticationResponse) Direction() cell.Direction { return cell.Uplink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *AuthenticationResponse) MarshalTLV(e *asn1lite.Encoder) {
	e.PutBytes(tagRES, m.RES)
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *AuthenticationResponse) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
		if d.Tag() == tagRES {
			b, err := d.Bytes()
			if err != nil {
				return err
			}
			m.RES = b
		}
	}
	return d.Err()
}

// AuthenticationFailure (UL) rejects the challenge.
type AuthenticationFailure struct {
	Cause Cause5GMM
}

// Type implements Message.
func (*AuthenticationFailure) Type() MsgType { return TypeAuthenticationFailure }

// Direction implements Message.
func (*AuthenticationFailure) Direction() cell.Direction { return cell.Uplink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *AuthenticationFailure) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(tagCause5GMM, uint64(m.Cause))
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *AuthenticationFailure) UnmarshalTLV(d *asn1lite.Decoder) error {
	return decodeCauseOnly(d, &m.Cause)
}

// SecurityModeCommand (DL) selects the NAS security algorithms. Selecting
// NEA0/NIA0 is the bid-down signature of the Null Cipher & Integrity
// attack.
type SecurityModeCommand struct {
	CipherAlg cell.CipherAlg
	IntegAlg  cell.IntegAlg
	NgKSI     uint8
}

// Type implements Message.
func (*SecurityModeCommand) Type() MsgType { return TypeSecurityModeCommand }

// Direction implements Message.
func (*SecurityModeCommand) Direction() cell.Direction { return cell.Downlink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *SecurityModeCommand) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(tagCipherAlg, uint64(m.CipherAlg))
	e.PutUint(tagIntegAlg, uint64(m.IntegAlg))
	e.PutUint(tagNgKSI, uint64(m.NgKSI))
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *SecurityModeCommand) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case tagCipherAlg:
			v, err := d.Uint()
			if err != nil {
				return err
			}
			m.CipherAlg = cell.CipherAlg(v)
		case tagIntegAlg:
			v, err := d.Uint()
			if err != nil {
				return err
			}
			m.IntegAlg = cell.IntegAlg(v)
		case tagNgKSI:
			v, err := d.Uint()
			if err != nil {
				return err
			}
			m.NgKSI = uint8(v)
		}
	}
	return d.Err()
}

// SecurityModeComplete (UL) confirms NAS security.
type SecurityModeComplete struct{}

// Type implements Message.
func (*SecurityModeComplete) Type() MsgType { return TypeSecurityModeComplete }

// Direction implements Message.
func (*SecurityModeComplete) Direction() cell.Direction { return cell.Uplink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *SecurityModeComplete) MarshalTLV(e *asn1lite.Encoder) {}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *SecurityModeComplete) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
	}
	return d.Err()
}

// SecurityModeReject (UL) rejects the proposed NAS security.
type SecurityModeReject struct {
	Cause Cause5GMM
}

// Type implements Message.
func (*SecurityModeReject) Type() MsgType { return TypeSecurityModeReject }

// Direction implements Message.
func (*SecurityModeReject) Direction() cell.Direction { return cell.Uplink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *SecurityModeReject) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(tagCause5GMM, uint64(m.Cause))
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *SecurityModeReject) UnmarshalTLV(d *asn1lite.Decoder) error {
	return decodeCauseOnly(d, &m.Cause)
}

// IdentityRequest (DL) asks the UE to disclose an identity. Sent before
// NAS security activation it elicits a *plaintext* identity — the
// mechanism of both identity-extraction attacks.
type IdentityRequest struct {
	Requested IdentityType
}

// Type implements Message.
func (*IdentityRequest) Type() MsgType { return TypeIdentityRequest }

// Direction implements Message.
func (*IdentityRequest) Direction() cell.Direction { return cell.Downlink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *IdentityRequest) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(tagIDType, uint64(m.Requested))
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *IdentityRequest) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
		if d.Tag() == tagIDType {
			v, err := d.Uint()
			if err != nil {
				return err
			}
			m.Requested = IdentityType(v)
		}
	}
	return d.Err()
}

// IdentityResponse (UL) discloses the requested identity ("Iden. Resp." in
// Figure 2a).
type IdentityResponse struct {
	Identity MobileIdentity
}

// Type implements Message.
func (*IdentityResponse) Type() MsgType { return TypeIdentityResponse }

// Direction implements Message.
func (*IdentityResponse) Direction() cell.Direction { return cell.Uplink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *IdentityResponse) MarshalTLV(e *asn1lite.Encoder) {
	marshalIdentity(e, m.Identity)
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *IdentityResponse) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
		if _, err := unmarshalIdentityField(d, &m.Identity); err != nil {
			return err
		}
	}
	return d.Err()
}

// ServiceRequest (UL) resumes service for a registered UE.
type ServiceRequest struct {
	TMSI cell.TMSI
}

// Type implements Message.
func (*ServiceRequest) Type() MsgType { return TypeServiceRequest }

// Direction implements Message.
func (*ServiceRequest) Direction() cell.Direction { return cell.Uplink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *ServiceRequest) MarshalTLV(e *asn1lite.Encoder) {
	e.PutUint(tagGUTITMSI, uint64(m.TMSI))
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *ServiceRequest) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
		if d.Tag() == tagGUTITMSI {
			v, err := d.Uint()
			if err != nil {
				return err
			}
			m.TMSI = cell.TMSI(v)
		}
	}
	return d.Err()
}

// ServiceAccept (DL) grants a service request.
type ServiceAccept struct{}

// Type implements Message.
func (*ServiceAccept) Type() MsgType { return TypeServiceAccept }

// Direction implements Message.
func (*ServiceAccept) Direction() cell.Direction { return cell.Downlink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *ServiceAccept) MarshalTLV(e *asn1lite.Encoder) {}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *ServiceAccept) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
	}
	return d.Err()
}

// DeregistrationRequest (UL) detaches the UE.
type DeregistrationRequest struct {
	SwitchOff bool
}

// Type implements Message.
func (*DeregistrationRequest) Type() MsgType { return TypeDeregistrationRequest }

// Direction implements Message.
func (*DeregistrationRequest) Direction() cell.Direction { return cell.Uplink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *DeregistrationRequest) MarshalTLV(e *asn1lite.Encoder) {
	e.PutBool(tagSwitchOff, m.SwitchOff)
}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *DeregistrationRequest) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
		if d.Tag() == tagSwitchOff {
			v, err := d.Bool()
			if err != nil {
				return err
			}
			m.SwitchOff = v
		}
	}
	return d.Err()
}

// DeregistrationAccept (DL) confirms detach.
type DeregistrationAccept struct{}

// Type implements Message.
func (*DeregistrationAccept) Type() MsgType { return TypeDeregistrationAccept }

// Direction implements Message.
func (*DeregistrationAccept) Direction() cell.Direction { return cell.Downlink }

// MarshalTLV implements asn1lite.Marshaler.
func (m *DeregistrationAccept) MarshalTLV(e *asn1lite.Encoder) {}

// UnmarshalTLV implements asn1lite.Unmarshaler.
func (m *DeregistrationAccept) UnmarshalTLV(d *asn1lite.Decoder) error {
	for d.Next() {
	}
	return d.Err()
}

func decodeCauseOnly(d *asn1lite.Decoder, out *Cause5GMM) error {
	for d.Next() {
		if d.Tag() == tagCause5GMM {
			v, err := d.Uint()
			if err != nil {
				return err
			}
			*out = Cause5GMM(v)
		}
	}
	return d.Err()
}
