package nas

import (
	"errors"
	"testing"
)

func TestBenignRegistrationProgression(t *testing.T) {
	var m Machine
	steps := []struct {
		msg  Message
		want State
	}{
		{&RegistrationRequest{}, StateRegInitiated},
		{&AuthenticationRequest{}, StateAuthInitiated},
		{&AuthenticationResponse{}, StateAuthenticated},
		{&SecurityModeCommand{}, StateAuthenticated},
		{&SecurityModeComplete{}, StateSecured},
		{&RegistrationAccept{}, StateRegistered},
		{&RegistrationComplete{}, StateRegistered},
	}
	for i, s := range steps {
		if err := m.Observe(s.msg); err != nil {
			t.Fatalf("step %d (%s): %v", i, s.msg.Type(), err)
		}
		if m.State() != s.want {
			t.Fatalf("step %d (%s): state = %v, want %v", i, s.msg.Type(), m.State(), s.want)
		}
	}
}

func TestIdentityResponseToAuthRequestFlagged(t *testing.T) {
	// The uplink ID-extraction attack answers an AuthenticationRequest
	// with an IdentityResponse. That is out of order in AUTH_INITIATED.
	var m Machine
	m.Observe(&RegistrationRequest{})
	m.Observe(&AuthenticationRequest{})
	err := m.Observe(&IdentityResponse{})
	var te *TransitionError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want TransitionError", err)
	}
	if te.State != StateAuthInitiated {
		t.Errorf("State = %v, want AUTH_INITIATED", te.State)
	}
}

func TestIdentityRequestBeforeRegistrationFlagged(t *testing.T) {
	// The downlink ID-extraction attack injects IdentityRequest while
	// the UE is DEREGISTERED from the AMF's perspective.
	var m Machine
	if err := m.Observe(&IdentityRequest{}); err == nil {
		t.Error("IdentityRequest in DEREGISTERED not flagged")
	}
}

func TestAuthFailureReturnsToRegInitiated(t *testing.T) {
	var m Machine
	m.Observe(&RegistrationRequest{})
	m.Observe(&AuthenticationRequest{})
	if err := m.Observe(&AuthenticationFailure{}); err != nil {
		t.Errorf("AuthenticationFailure flagged: %v", err)
	}
	if m.State() != StateRegInitiated {
		t.Errorf("state = %v, want REG_INITIATED", m.State())
	}
}

func TestDeregistrationFlow(t *testing.T) {
	var m Machine
	m.Observe(&RegistrationRequest{})
	m.Observe(&AuthenticationRequest{})
	m.Observe(&AuthenticationResponse{})
	m.Observe(&SecurityModeCommand{})
	m.Observe(&SecurityModeComplete{})
	m.Observe(&RegistrationAccept{})
	if err := m.Observe(&DeregistrationRequest{}); err != nil {
		t.Fatalf("deregistration flagged: %v", err)
	}
	if err := m.Observe(&DeregistrationAccept{}); err != nil {
		t.Fatalf("dereg accept flagged: %v", err)
	}
	if m.State() != StateDeregistered {
		t.Errorf("state = %v, want DEREGISTERED", m.State())
	}
}

func TestNASStateString(t *testing.T) {
	if StateSecured.String() != "SECURED" {
		t.Errorf("got %q", StateSecured.String())
	}
	if State(99).String() != "State(99)" {
		t.Errorf("got %q", State(99).String())
	}
}

func TestMachineResetNAS(t *testing.T) {
	var m Machine
	m.Observe(&RegistrationRequest{})
	m.Reset()
	if m.State() != StateDeregistered {
		t.Errorf("state = %v after Reset", m.State())
	}
}
