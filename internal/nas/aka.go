package nas

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
)

// This file implements a functional model of 5G-AKA (TS 33.501 §6.1.3.2)
// sufficient for the simulator: the home network and UE share a long-term
// key K; the network issues a (RAND, AUTN) challenge; the UE derives RES*
// and the network verifies it. The MILENAGE/TUAK kernels are replaced by
// HMAC-SHA-256 constructions — the protocol flow, message contents, and
// failure modes (MAC failure, synch failure, wrong RES) are what the
// attacks and telemetry exercise, not the cipher kernel itself.

// KeySize is the size of the long-term subscriber key K.
const KeySize = 16

// RESSize is the size of the RES* authentication response.
const RESSize = 16

// Challenge computes the (RAND-dependent) AUTN a network with key k and
// sequence number sqn includes in an AuthenticationRequest.
func Challenge(k [KeySize]byte, rand [16]byte, sqn uint64) (autn [16]byte) {
	mac := hmac.New(sha256.New, k[:])
	mac.Write([]byte("autn"))
	mac.Write(rand[:])
	var sqnb [8]byte
	binary.BigEndian.PutUint64(sqnb[:], sqn)
	mac.Write(sqnb[:])
	copy(autn[:], mac.Sum(nil))
	return autn
}

// VerifyAUTN lets the UE check that a challenge was produced by a network
// holding k (anti-spoofing). A rogue base station without k produces AUTN
// values the UE rejects with a MAC-failure cause.
func VerifyAUTN(k [KeySize]byte, rand [16]byte, sqn uint64, autn [16]byte) bool {
	want := Challenge(k, rand, sqn)
	return hmac.Equal(want[:], autn[:])
}

// DeriveRES computes RES*, the UE's response to a (RAND) challenge under
// key k.
func DeriveRES(k [KeySize]byte, rand [16]byte) []byte {
	mac := hmac.New(sha256.New, k[:])
	mac.Write([]byte("res*"))
	mac.Write(rand[:])
	return mac.Sum(nil)[:RESSize]
}

// VerifyRES lets the network check the UE's response.
func VerifyRES(k [KeySize]byte, rand [16]byte, res []byte) bool {
	return hmac.Equal(DeriveRES(k, rand), res)
}
