package nas

import (
	"errors"
	"fmt"

	"github.com/6g-xsec/xsec/internal/asn1lite"
)

// ErrUnknownType is returned by Decode for an unrecognized message type.
var ErrUnknownType = errors.New("nas: unknown message type")

// Encode serializes a NAS message: one type byte followed by the TLV body.
func Encode(m Message) []byte {
	var e asn1lite.Encoder
	m.MarshalTLV(&e)
	body := e.Bytes()
	out := make([]byte, 0, 1+len(body))
	out = append(out, byte(m.Type()))
	return append(out, body...)
}

// Decode parses a wire-form NAS message produced by Encode.
func Decode(data []byte) (Message, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("nas: empty PDU: %w", asn1lite.ErrTruncated)
	}
	t := MsgType(data[0])
	m := newMessage(t)
	if m == nil {
		return nil, fmt.Errorf("decoding type %d: %w", data[0], ErrUnknownType)
	}
	d := asn1lite.NewDecoder(data[1:])
	if err := m.(asn1lite.Unmarshaler).UnmarshalTLV(d); err != nil {
		return nil, fmt.Errorf("nas: decoding %s: %w", t, err)
	}
	return m, nil
}

func newMessage(t MsgType) Message {
	switch t {
	case TypeRegistrationRequest:
		return &RegistrationRequest{}
	case TypeRegistrationAccept:
		return &RegistrationAccept{}
	case TypeRegistrationComplete:
		return &RegistrationComplete{}
	case TypeRegistrationReject:
		return &RegistrationReject{}
	case TypeAuthenticationRequest:
		return &AuthenticationRequest{}
	case TypeAuthenticationResponse:
		return &AuthenticationResponse{}
	case TypeAuthenticationFailure:
		return &AuthenticationFailure{}
	case TypeSecurityModeCommand:
		return &SecurityModeCommand{}
	case TypeSecurityModeComplete:
		return &SecurityModeComplete{}
	case TypeSecurityModeReject:
		return &SecurityModeReject{}
	case TypeIdentityRequest:
		return &IdentityRequest{}
	case TypeIdentityResponse:
		return &IdentityResponse{}
	case TypeServiceRequest:
		return &ServiceRequest{}
	case TypeServiceAccept:
		return &ServiceAccept{}
	case TypeDeregistrationRequest:
		return &DeregistrationRequest{}
	case TypeDeregistrationAccept:
		return &DeregistrationAccept{}
	default:
		return nil
	}
}
