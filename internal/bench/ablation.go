package bench

import (
	"fmt"
	"strings"

	"github.com/6g-xsec/xsec/internal/detect"
	"github.com/6g-xsec/xsec/internal/feature"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
)

// AblationRow is one configuration's outcome.
type AblationRow struct {
	Param string
	// BenignAccuracy: fraction of benign training windows below the
	// fitted threshold (1 − training FPR).
	BenignAccuracy float64
	// Attack metrics on the mixed dataset (AE).
	Precision float64
	Recall    float64
	F1        float64
	// EventRecall: attack events with ≥1 flagged window.
	EventRecall float64
}

// AblationResult is a parameter sweep.
type AblationResult struct {
	Name string
	Rows []AblationRow
}

// Format renders the sweep.
func (r *AblationResult) Format() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Param, pct(row.BenignAccuracy), pct(row.Precision),
			pct(row.Recall), pct(row.F1), pct(row.EventRecall),
		})
	}
	return fmt.Sprintf("Ablation: %s\n\n%s", r.Name,
		formatTable([]string{r.Name, "BenignAcc", "Precision", "Recall", "F1", "EventRecall"}, rows))
}

// evaluateModels computes the ablation metrics for a trained bundle.
func evaluateModels(env *Env, models *mobiwatch.Models) AblationRow {
	scores := models.ScoreTraceAE(env.Mixed.Trace)
	labels := feature.WindowLabels(env.Mixed.Malicious, models.Window)
	pred := make([]bool, len(scores))
	for i, s := range scores {
		pred[i] = s.Anomalous
	}
	conf := detect.Evaluate(pred, labels)

	benignScores := models.ScoreTraceAE(env.Benign)
	below := 0
	for _, s := range benignScores {
		if !s.Anomalous {
			below++
		}
	}
	benignAcc := 0.0
	if len(benignScores) > 0 {
		benignAcc = float64(below) / float64(len(benignScores))
	}
	return AblationRow{
		BenignAccuracy: benignAcc,
		Precision:      conf.Precision(),
		Recall:         conf.Recall(),
		F1:             conf.F1(),
		EventRecall:    eventRecall(env, scores, models.Window),
	}
}

// AblationWindowSize sweeps the sliding-window size N.
func AblationWindowSize(cfg Config, sizes []int) (*AblationResult, error) {
	cfg.defaults()
	env, err := BuildEnv(cfg)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Name: "Window size N"}
	for _, n := range sizes {
		models, err := mobiwatch.Train(env.Benign, mobiwatch.TrainOptions{
			Window: n, Percentile: cfg.Percentile, Epochs: cfg.Epochs, Seed: cfg.Seed + 2,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: window %d: %w", n, err)
		}
		row := evaluateModels(env, models)
		row.Param = fmt.Sprintf("N=%d", n)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationThreshold sweeps the threshold percentile on the shared trained
// model, tracing the benign-accuracy / recall trade-off the paper's 99%
// choice sits on.
func AblationThreshold(cfg Config, percentiles []float64) (*AblationResult, error) {
	cfg.defaults()
	env, err := BuildEnv(cfg)
	if err != nil {
		return nil, err
	}
	// Training-score distribution for refitting thresholds.
	vecs := feature.Vectorize(env.Benign, env.Models.Vocab)
	wins := feature.WindowsAE(vecs, cfg.Window)
	trainScores := make([]float64, len(wins))
	for i, w := range wins {
		trainScores[i] = env.Models.ScoreAEWindow(w)
	}

	res := &AblationResult{Name: "Threshold percentile"}
	base := *env.Models
	for _, p := range percentiles {
		models := base
		models.AEThreshold = detect.PercentileThreshold(trainScores, p)
		row := evaluateModels(env, &models)
		row.Param = fmt.Sprintf("p%.1f", p)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationBottleneck sweeps the autoencoder bottleneck width.
func AblationBottleneck(cfg Config, widths []int) (*AblationResult, error) {
	cfg.defaults()
	env, err := BuildEnv(cfg)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Name: "AE bottleneck width"}
	for _, w := range widths {
		models, err := mobiwatch.Train(env.Benign, mobiwatch.TrainOptions{
			Window: cfg.Window, Percentile: cfg.Percentile,
			Hidden: []int{64, w}, Epochs: cfg.Epochs, Seed: cfg.Seed + 2,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: bottleneck %d: %w", w, err)
		}
		row := evaluateModels(env, models)
		row.Param = fmt.Sprintf("%d", w)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// FormatAll runs every experiment at cfg and concatenates the artifacts —
// the `xsec-bench -all` output.
func FormatAll(cfg Config) (string, error) {
	var b strings.Builder
	b.WriteString(Table1())
	b.WriteString("\n\n")

	fig2, err := Figure2(cfg)
	if err != nil {
		return "", err
	}
	b.WriteString(fig2)
	b.WriteString("\n\n")

	t2, err := RunTable2(cfg)
	if err != nil {
		return "", err
	}
	b.WriteString(t2.Format())
	b.WriteString("\n\n")

	f4, err := RunFigure4(cfg)
	if err != nil {
		return "", err
	}
	b.WriteString(f4.Format())
	b.WriteString("\n\n")

	t3, err := RunTable3(cfg)
	if err != nil {
		return "", err
	}
	b.WriteString(t3.Format())
	b.WriteString("\n\n")

	f5, err := Figure5(cfg)
	if err != nil {
		return "", err
	}
	b.WriteString(f5)
	return b.String(), nil
}
