package bench

import (
	"fmt"
	"strings"

	"github.com/6g-xsec/xsec/internal/feature"
	"github.com/6g-xsec/xsec/internal/llm"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/ue"
)

// Table1 renders the MOBIFLOW telemetry schema (the paper's Table 1).
func Table1() string {
	rows := [][]string{
		{"Message", "RRC Message", "Uplink / Downlink Radio Resource Control (RRC) protocol message"},
		{"Message", "NAS Message", "Uplink / Downlink Non-Access-Stratum (NAS) protocol message"},
		{"Identifier", "RNTI", "Radio Network Temporary Identifier"},
		{"Identifier", "S-TMSI", "Temporary Mobile Subscriber Identity"},
		{"Identifier", "SUPI", "Subscription Permanent Identifier (when exposed in plaintext)"},
		{"State", "Cipher_alg", "Ciphering algorithm employed by the UE (NEA0-NEA3)"},
		{"State", "Integrity_alg", "Integrity algorithm employed by the UE (NIA0-NIA3)"},
		{"State", "Establish_cause", "RRC establishment cause from the UE"},
		{"State", "RRC_state / NAS_state", "CU-tracked protocol states (extension)"},
		{"Flag", "Out_of_order / Retransmission", "protocol-violation and radio-noise markers (extension)"},
	}
	return "Table 1: MOBIFLOW security telemetry collected from the cellular data plane\n\n" +
		formatTable([]string{"Category", "Telemetry", "Description"}, rows)
}

// Figure2 regenerates the message sequences of the paper's Figure 2: the
// benign registration, the identity-extraction deviation (2a), and the
// RAN DoS RNTI stream (2b).
func Figure2(cfg Config) (string, error) {
	cfg.defaults()
	env, err := BuildEnv(cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder

	b.WriteString("Figure 2a — benign sequence vs. identity extraction attack\n\n")
	b.WriteString("Benign:\n")
	benignUE := firstBenignSession(env)
	for _, m := range benignUE.Messages() {
		fmt.Fprintf(&b, "  %s\n", m)
		if m == "AuthenticationResponse" {
			break
		}
	}
	b.WriteString("\nUplink identity extraction (AdaptOver-style):\n")
	attack := attackTrace(env, ue.AttackUplinkIDExtraction)
	for _, r := range attack {
		fmt.Fprintf(&b, "  %s", r.Msg)
		if r.Msg == "IdentityResponse" {
			fmt.Fprintf(&b, "   <-- plaintext identity instead of Auth. Resp (supi=%s)", r.SUPI)
			b.WriteString("\n")
			break
		}
		b.WriteString("\n")
	}

	b.WriteString("\nFigure 2b — RAN DoS: rapid succession of unfinished connections\n\n")
	dos := attackTrace(env, ue.AttackBTSDoS)
	count := 0
	for _, r := range dos {
		if r.Msg == "RRCSetupRequest" {
			fmt.Fprintf(&b, "  RRC Conn. ... Auth. Req.   RNTI %s\n", r.RNTI)
			count++
			if count >= 8 {
				break
			}
		}
	}
	return b.String(), nil
}

func firstBenignSession(env *Env) mobiflow.Trace {
	ues := env.Benign.UEs()
	if len(ues) == 0 {
		return nil
	}
	return env.Benign.FilterUE(ues[0])
}

func attackTrace(env *Env, kind ue.AttackKind) mobiflow.Trace {
	var out mobiflow.Trace
	for i, r := range env.Mixed.Trace {
		if env.Mixed.AttackOf[i] == int(kind) {
			out = append(out, r)
		}
	}
	return out
}

// Figure4Point is one reconstruction-error sample of Figure 4.
type Figure4Point struct {
	Index     int
	Error     float64
	Malicious bool
	// Kind is the attack kind (-1 benign), for the per-attack grouping
	// the figure highlights (① Blind DoS, ② BTS DoS).
	Kind int
}

// Figure4Result is the reconstruction-error series over the attack
// dataset.
type Figure4Result struct {
	Points    []Figure4Point
	Threshold float64
}

// RunFigure4 reproduces Figure 4: the autoencoder's reconstruction errors
// over the attack dataset with the detection threshold.
func RunFigure4(cfg Config) (*Figure4Result, error) {
	cfg.defaults()
	env, err := BuildEnv(cfg)
	if err != nil {
		return nil, err
	}
	scores := env.Models.ScoreTraceAE(env.Mixed.Trace)
	labels := feature.WindowLabels(env.Mixed.Malicious, cfg.Window)
	res := &Figure4Result{Threshold: env.Models.AEThreshold}
	for i, s := range scores {
		kind := -1
		for j := i; j < i+cfg.Window; j++ {
			if env.Mixed.Malicious[j] {
				kind = env.Mixed.AttackOf[j]
				break
			}
		}
		res.Points = append(res.Points, Figure4Point{
			Index: i, Error: s.Score, Malicious: labels[i], Kind: kind,
		})
	}
	return res, nil
}

// Format renders the series as CSV-ish rows plus an ASCII scatter plot.
func (r *Figure4Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 4: Autoencoder reconstruction errors over the attack dataset\n")
	fmt.Fprintf(&b, "threshold = %.5f\n\n", r.Threshold)

	// ASCII plot: rows = error buckets (log-ish), cols = downsampled index.
	const cols = 100
	const rowsN = 16
	maxErr := r.Threshold
	for _, p := range r.Points {
		if p.Error > maxErr {
			maxErr = p.Error
		}
	}
	grid := make([][]byte, rowsN)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	for _, p := range r.Points {
		c := p.Index * cols / len(r.Points)
		if c >= cols {
			c = cols - 1
		}
		row := int(p.Error / maxErr * float64(rowsN-1))
		if row >= rowsN {
			row = rowsN - 1
		}
		mark := byte('.')
		if p.Kind >= 0 {
			mark = byte('0' + p.Kind) // attack kinds 0-4
		}
		grid[rowsN-1-row][c] = mark
	}
	thrRow := rowsN - 1 - int(r.Threshold/maxErr*float64(rowsN-1))
	for i, line := range grid {
		prefix := "  "
		if i == thrRow {
			prefix = "T>"
		}
		fmt.Fprintf(&b, "%s|%s|\n", prefix, line)
	}
	b.WriteString("   legend: . benign  0 BTS-DoS  1 Blind-DoS  2 UL-IDExtr  3 DL-IDExtr  4 NullCipher  T> threshold\n\n")

	// Series data (downsampled for readability).
	b.WriteString("index,reconstruction_error,malicious,attack_kind\n")
	step := len(r.Points)/200 + 1
	for i := 0; i < len(r.Points); i += step {
		p := r.Points[i]
		fmt.Fprintf(&b, "%d,%.6f,%v,%d\n", p.Index, p.Error, p.Malicious, p.Kind)
	}
	return b.String()
}

// GroupSimilarity quantifies Figure 4's qualitative observation: attack
// instances of the same type exhibit similar error patterns. It returns,
// for each attack kind, the ratio of cross-instance mean error distance
// to within-kind error spread (lower = more similar).
func (r *Figure4Result) GroupSimilarity() map[int]float64 {
	byKind := make(map[int][]float64)
	for _, p := range r.Points {
		if p.Kind >= 0 {
			byKind[p.Kind] = append(byKind[p.Kind], p.Error)
		}
	}
	out := make(map[int]float64)
	for kind, errs := range byKind {
		if len(errs) < 2 {
			continue
		}
		var mean float64
		for _, e := range errs {
			mean += e
		}
		mean /= float64(len(errs))
		var dev float64
		for _, e := range errs {
			d := e - mean
			dev += d * d
		}
		out[kind] = dev / float64(len(errs)) / (mean*mean + 1e-12)
	}
	return out
}

// Figure5 renders the prompt template and the ChatGPT-4o personality's
// response for a BTS DoS window (the paper's Figure 5).
func Figure5(cfg Config) (string, error) {
	cfg.defaults()
	env, err := BuildEnv(cfg)
	if err != nil {
		return "", err
	}
	window := attackTrace(env, ue.AttackBTSDoS)
	if len(window) > 20 {
		window = window[:20]
	}
	prompt := llm.RenderPrompt(window)
	findings, err := llm.AnalyzePrompt(prompt)
	if err != nil {
		return "", err
	}
	response := llm.ChatGPT4o.Respond(findings)

	var b strings.Builder
	b.WriteString("Figure 5: Prompt template and response for a BTS DoS attack event\n")
	b.WriteString("\n--- Prompt -------------------------------------------------------\n")
	b.WriteString(prompt)
	b.WriteString("\n--- Response (chatgpt-4o personality) ----------------------------\n")
	b.WriteString(response)
	return b.String(), nil
}
