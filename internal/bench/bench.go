// Package bench regenerates every table and figure of the 6G-XSec
// paper's evaluation (§4) from the simulated testbed: Table 1 (telemetry
// schema), Table 2 (detection performance), Table 3 (LLM matrix),
// Figure 2 (attack sequences), Figure 4 (reconstruction-error series),
// and Figure 5 (prompt/response example) — plus the ablations DESIGN.md
// commits to (window size, threshold percentile, bottleneck width).
//
// The cmd/xsec-bench binary and the repository-root benchmarks both call
// into this package, so the printed artifacts and the testing.B numbers
// come from the same code.
package bench

import (
	"fmt"
	"strings"
	"sync"

	"github.com/6g-xsec/xsec/internal/dataset"
	"github.com/6g-xsec/xsec/internal/mobiflow"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
)

// Config scales the experiments.
type Config struct {
	// Seed drives dataset generation and training.
	Seed int64
	// TrainSessions is the size of the benign training corpus (the
	// paper collects >100 sessions; default 120).
	TrainSessions int
	// Fleet is the number of distinct benign devices (default 20).
	Fleet int
	// Window is the sliding-window size N (default 4).
	Window int
	// Percentile is the detection threshold percentile (default 99).
	Percentile float64
	// Epochs trains the models (default 40).
	Epochs int
	// Folds for benign cross-validation (default 5).
	Folds int
	// InstancesPerAttack in the attack dataset (default 2).
	InstancesPerAttack int
}

// Quick returns a configuration an order of magnitude cheaper, used by
// unit tests and -short benchmarks.
func Quick(seed int64) Config {
	return Config{
		Seed: seed, TrainSessions: 40, Fleet: 10, Window: 4,
		Percentile: 99, Epochs: 12, Folds: 3, InstancesPerAttack: 1,
	}
}

func (c *Config) defaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TrainSessions == 0 {
		c.TrainSessions = 120
	}
	if c.Fleet == 0 {
		c.Fleet = 20
	}
	if c.Window == 0 {
		c.Window = 4
	}
	if c.Percentile == 0 {
		c.Percentile = 99
	}
	if c.Epochs == 0 {
		c.Epochs = 40
	}
	if c.Folds == 0 {
		c.Folds = 5
	}
	if c.InstancesPerAttack == 0 {
		c.InstancesPerAttack = 2
	}
}

// Env bundles the generated datasets and trained models an experiment
// needs; building it is the expensive part, so it is cached per Config.
type Env struct {
	Cfg    Config
	Benign mobiflow.Trace
	Mixed  *dataset.Labeled
	Models *mobiwatch.Models
}

var (
	envMu    sync.Mutex
	envCache = map[Config]*Env{}
)

// BuildEnv generates the benign and attack datasets and trains the
// models. Results are cached per configuration.
func BuildEnv(cfg Config) (*Env, error) {
	cfg.defaults()
	envMu.Lock()
	defer envMu.Unlock()
	if env, ok := envCache[cfg]; ok {
		return env, nil
	}
	benign, err := dataset.GenerateBenign(dataset.BenignConfig{
		Sessions: cfg.TrainSessions, Fleet: cfg.Fleet, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: benign dataset: %w", err)
	}
	mixed, err := dataset.GenerateMixed(dataset.MixedConfig{
		BenignConfig:       dataset.BenignConfig{Fleet: cfg.Fleet, Seed: cfg.Seed + 1},
		InstancesPerAttack: cfg.InstancesPerAttack,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: attack dataset: %w", err)
	}
	models, err := mobiwatch.Train(benign, mobiwatch.TrainOptions{
		Window: cfg.Window, Percentile: cfg.Percentile,
		Epochs: cfg.Epochs, Seed: cfg.Seed + 2,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: training: %w", err)
	}
	env := &Env{Cfg: cfg, Benign: benign, Mixed: mixed, Models: models}
	envCache[cfg] = env
	return env, nil
}

// formatTable renders rows with aligned columns.
func formatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

func pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }
