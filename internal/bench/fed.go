package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"github.com/6g-xsec/xsec/internal/fed"
	"github.com/6g-xsec/xsec/internal/mobiflow"
)

// This file produces the federation baseline (BENCH_fed.json,
// `xsec-bench -fed`): aggregate detection throughput of an N-instance
// federation versus a single RIC over the same telemetry, plus a
// join/kill rebalance smoke asserting zero scored-record loss.
//
// Two aggregate numbers are reported, deliberately:
//
//   - colocated: N instances scoring their hash-partitioned share
//     concurrently in this one process. On a single core this cannot
//     beat one instance — the instances time-share the CPU and pay the
//     coordination overhead — so it is reported as the honest
//     worst-case, not the headline.
//   - capacity: the sum of each instance's isolated rate over its own
//     partition, measured sequentially so instances never contend. This
//     is the throughput an N-host deployment adds up to (each RIC owns
//     its slice of the UE-hash ring and scores only its own share), and
//     is the number the ≥3× target for 4 instances refers to.

// FedOptions configures the federation benchmark.
type FedOptions struct {
	// Instances is the federation size to compare against one instance
	// (default 4).
	Instances int
	// Passes replays the mixed telemetry trace this many times per
	// phase (default 30; Smoke reduces it to 2).
	Passes int
	// Batch is the records-per-indication chunk each feeder emission
	// carries for one UE (default 4, the agent's typical flush).
	Batch int
	// Chunk is the per-instance pacing quantum in records: the feeder
	// waits for the instance to drain each chunk before sending the
	// next, so bounded shard queues never drop (default 256).
	Chunk int
	// Seed drives dataset generation and training.
	Seed int64
	// Smoke shrinks the workload so CI can exercise the path quickly.
	Smoke bool
}

func (o *FedOptions) defaults() {
	if o.Instances <= 0 {
		o.Instances = 4
	}
	if o.Passes == 0 {
		o.Passes = 30
		if o.Smoke {
			o.Passes = 2
		}
	}
	if o.Batch <= 0 {
		o.Batch = 4
	}
	if o.Chunk <= 0 {
		o.Chunk = 256
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// FedResult is the machine-readable baseline for BENCH_fed.json.
type FedResult struct {
	GoMaxProcs int  `json:"gomaxprocs"`
	NumCPU     int  `json:"num_cpu"`
	Smoke      bool `json:"smoke"`
	Instances  int  `json:"instances"`
	Records    int  `json:"records_per_phase"`

	// SingleRate is one instance scoring the whole stream (records/s).
	SingleRate float64 `json:"single_rate"`
	// CapacityPerInstance are the isolated per-partition rates; their
	// sum is CapacityRate, the N-host aggregate.
	CapacityPerInstance []float64 `json:"capacity_per_instance"`
	CapacityRate        float64   `json:"capacity_rate"`
	CapacitySpeedup     float64   `json:"capacity_speedup"`
	// ColocatedRate is the N instances running concurrently in this
	// process (single-host worst case).
	ColocatedRate    float64 `json:"colocated_rate"`
	ColocatedSpeedup float64 `json:"colocated_speedup"`

	// Rebalance smoke: records injected across a join and an abrupt
	// kill, with pacing quiescing between chunks; zero loss means every
	// injected record was scored by some member.
	RebalanceInjected uint64 `json:"rebalance_injected"`
	RebalanceScored   uint64 `json:"rebalance_scored"`
	RebalanceZeroLoss bool   `json:"rebalance_zero_loss"`
	// RebalanceMigrated counts UE contexts the joiner received via live
	// state migration before the kill.
	RebalanceMigrated int `json:"rebalance_migrated"`

	Note string `json:"note"`
}

// JSON renders the baseline.
func (r *FedResult) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// Format renders the human-readable summary.
func (r *FedResult) Format() string {
	rows := [][]string{
		{"single (1 instance)", fedRate(r.SingleRate), "1.00x"},
		{fmt.Sprintf("colocated (%d, 1 host)", r.Instances), fedRate(r.ColocatedRate),
			fmt.Sprintf("%.2fx", r.ColocatedSpeedup)},
		{fmt.Sprintf("capacity (%d hosts)", r.Instances), fedRate(r.CapacityRate),
			fmt.Sprintf("%.2fx", r.CapacitySpeedup)},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Federated detection throughput (%d records/phase, GOMAXPROCS=%d)\n\n",
		r.Records, r.GoMaxProcs)
	b.WriteString(formatTable([]string{"configuration", "records/s", "speedup"}, rows))
	b.WriteString("\nrebalance smoke: ")
	fmt.Fprintf(&b, "%d/%d records scored across join+kill (zero loss: %v), %d UE contexts live-migrated to the joiner\n",
		r.RebalanceScored, r.RebalanceInjected, r.RebalanceZeroLoss, r.RebalanceMigrated)
	b.WriteString("\n" + r.Note + "\n")
	return b.String()
}

func fedRate(v float64) string { return fmt.Sprintf("%.0f", v) }

// emission is one feeder send: a batch of consecutive records of one UE.
type emission struct {
	ue   uint64
	recs mobiflow.Trace
}

// buildEmissions groups a trace into per-UE batches and interleaves the
// UEs round-robin, approximating live multi-UE traffic while keeping
// each UE's records in order.
func buildEmissions(tr mobiflow.Trace, batch int) []emission {
	perUE := map[uint64]mobiflow.Trace{}
	var order []uint64
	for _, rec := range tr {
		if _, ok := perUE[rec.UEID]; !ok {
			order = append(order, rec.UEID)
		}
		perUE[rec.UEID] = append(perUE[rec.UEID], rec)
	}
	var out []emission
	for len(perUE) > 0 {
		for _, u := range order {
			recs, ok := perUE[u]
			if !ok {
				continue
			}
			n := batch
			if n > len(recs) {
				n = len(recs)
			}
			out = append(out, emission{ue: u, recs: recs[:n]})
			if len(recs) > n {
				perUE[u] = recs[n:]
			} else {
				delete(perUE, u)
			}
		}
	}
	return out
}

func countRecords(ems []emission) int {
	n := 0
	for _, em := range ems {
		n += len(em.recs)
	}
	return n
}

// feedPaced replays emissions into one instance, waiting for the
// instance to drain each chunk so the bounded shard queues never drop.
func feedPaced(inst *fed.Instance, ems []emission, chunk int) error {
	base := inst.Records()
	var sent uint64
	for start := 0; start < len(ems); {
		n := 0
		for start < len(ems) && n < chunk {
			em := ems[start]
			if err := inst.Feeder().Emit(em.ue, em.recs); err != nil {
				return err
			}
			n += len(em.recs)
			start++
		}
		sent += uint64(n)
		deadline := time.Now().Add(30 * time.Second)
		for inst.Records()-base < sent {
			if time.Now().After(deadline) {
				return fmt.Errorf("bench: instance %s drained %d/%d records",
					inst.ID(), inst.Records()-base, sent)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	return nil
}

func drainAlerts(cl *fed.Cluster) {
	for _, inst := range cl.Instances() {
		go func(inst *fed.Instance) {
			for range inst.Alerts() {
			}
		}(inst)
	}
}

// RunFedBench measures federated versus single-instance detection
// throughput and runs the join/kill rebalance smoke.
func RunFedBench(opts FedOptions) (*FedResult, error) {
	opts.defaults()
	env, err := BuildEnv(Quick(opts.Seed))
	if err != nil {
		return nil, err
	}
	ems := buildEmissions(env.Mixed.Trace, opts.Batch)
	perPass := countRecords(ems)
	res := &FedResult{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Smoke:      opts.Smoke,
		Instances:  opts.Instances,
		Records:    perPass * opts.Passes,
	}

	clOpts := fed.ClusterOptions{
		Models:      env.Models,
		ShardBuffer: 4 * opts.Chunk,
	}

	// Phase 1: one instance scores everything.
	single, err := fed.StartCluster(withInstances(clOpts, 1))
	if err != nil {
		return nil, err
	}
	drainAlerts(single)
	inst := single.Instances()[0]
	startT := time.Now()
	for p := 0; p < opts.Passes; p++ {
		if err := feedPaced(inst, ems, opts.Chunk); err != nil {
			single.Close()
			return nil, err
		}
	}
	res.SingleRate = float64(perPass*opts.Passes) / time.Since(startT).Seconds()
	single.Close()

	// Phases 2+3: an N-instance federation over the hash-partitioned
	// stream — first each partition in isolation (capacity), then all
	// partitions concurrently (colocated).
	cl, err := fed.StartCluster(withInstances(clOpts, opts.Instances))
	if err != nil {
		return nil, err
	}
	drainAlerts(cl)
	parts := make(map[string][]emission)
	for _, em := range ems {
		owner := cl.OwnerOf(em.ue)
		if owner == nil {
			cl.Close()
			return nil, fmt.Errorf("bench: no ring owner for UE %d", em.ue)
		}
		parts[owner.ID()] = append(parts[owner.ID()], em)
	}
	for _, member := range cl.Instances() {
		share := parts[member.ID()]
		if len(share) == 0 {
			res.CapacityPerInstance = append(res.CapacityPerInstance, 0)
			continue
		}
		startT = time.Now()
		for p := 0; p < opts.Passes; p++ {
			if err := feedPaced(member, share, opts.Chunk); err != nil {
				cl.Close()
				return nil, err
			}
		}
		r := float64(countRecords(share)*opts.Passes) / time.Since(startT).Seconds()
		res.CapacityPerInstance = append(res.CapacityPerInstance, r)
		res.CapacityRate += r
	}

	errc := make(chan error, len(parts))
	startT = time.Now()
	for _, member := range cl.Instances() {
		share := parts[member.ID()]
		if len(share) == 0 {
			continue
		}
		go func(member *fed.Instance, share []emission) {
			for p := 0; p < opts.Passes; p++ {
				if err := feedPaced(member, share, opts.Chunk); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(member, share)
	}
	for i, n := 0, activeParts(parts); i < n; i++ {
		if err := <-errc; err != nil {
			cl.Close()
			return nil, err
		}
	}
	res.ColocatedRate = float64(perPass*opts.Passes) / time.Since(startT).Seconds()
	cl.Close()
	if res.SingleRate > 0 {
		res.CapacitySpeedup = res.CapacityRate / res.SingleRate
		res.ColocatedSpeedup = res.ColocatedRate / res.SingleRate
	}

	if err := runRebalanceSmoke(clOpts, ems, opts, res); err != nil {
		return nil, err
	}

	res.Note = "capacity sums per-instance isolated rates (sequential measurement; what N " +
		"single-core hosts aggregate to when each owns its ring slice); colocated shares " +
		fmt.Sprintf("GOMAXPROCS=%d core(s) in one process and includes coordination overhead, ",
			res.GoMaxProcs) +
		"so it is the single-host floor, not the deployment headline"
	return res, nil
}

func withInstances(o fed.ClusterOptions, n int) fed.ClusterOptions {
	o.Instances = n
	return o
}

func activeParts(parts map[string][]emission) int {
	n := 0
	for _, share := range parts {
		if len(share) > 0 {
			n++
		}
	}
	return n
}

// runRebalanceSmoke feeds a paced stream to the current ring owners
// while a member joins (receiving live-migrated UE state) and is then
// abruptly killed; every injected record must still be scored by some
// member because pacing quiesces the pipeline between chunks.
func runRebalanceSmoke(clOpts fed.ClusterOptions, ems []emission, opts FedOptions, res *FedResult) error {
	cl, err := fed.StartCluster(withInstances(clOpts, 2))
	if err != nil {
		return err
	}
	defer cl.Close()
	drainAlerts(cl)

	feedChunk := func(chunk []emission) error {
		pending := 0
		for _, em := range chunk {
			owner := cl.OwnerOf(em.ue)
			if owner == nil {
				return fmt.Errorf("bench: no ring owner for UE %d", em.ue)
			}
			if err := owner.Feeder().Emit(em.ue, em.recs); err != nil {
				return err
			}
			res.RebalanceInjected += uint64(len(em.recs))
			pending += len(em.recs)
			if pending >= opts.Chunk {
				if err := cl.WaitRecords(res.RebalanceInjected, 30*time.Second); err != nil {
					return err
				}
				pending = 0
			}
		}
		return cl.WaitRecords(res.RebalanceInjected, 30*time.Second)
	}

	third := len(ems) / 3
	if err := feedChunk(ems[:third]); err != nil {
		return err
	}

	joiner, err := cl.Join("")
	if err != nil {
		return err
	}
	if err := feedChunk(ems[third : 2*third]); err != nil {
		return err
	}
	// Let the ring-driven migrations toward the joiner settle, then
	// count what it received before killing it.
	settle := time.Now().Add(5 * time.Second)
	last := -1
	for time.Now().Before(settle) {
		n := len(joiner.UEs())
		if n == last {
			break
		}
		last = n
		time.Sleep(50 * time.Millisecond)
	}
	res.RebalanceMigrated = len(joiner.UEs())
	if err := cl.Kill(joiner.ID()); err != nil {
		return err
	}

	if err := feedChunk(ems[2*third:]); err != nil {
		return err
	}
	res.RebalanceScored = cl.TotalRecords()
	res.RebalanceZeroLoss = res.RebalanceScored == res.RebalanceInjected
	return nil
}
