package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"github.com/6g-xsec/xsec/internal/core"
	"github.com/6g-xsec/xsec/internal/mitigate"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/obs"
	"github.com/6g-xsec/xsec/internal/ue"
)

// This file produces the closed-loop mitigation baseline
// (BENCH_mitigate.json, `xsec-bench -mitigate`): for each DoS attack it
// runs the full pipeline with the mitigation engine enforcing, measures
// how long the loop takes from LLM verdict to acknowledged E2 control
// (time-to-mitigate), then replays the attack against the mitigated RAN
// and reports the anomaly-rate drop.

// MitigateAttackResult is the per-attack closed-loop measurement.
type MitigateAttackResult struct {
	Attack string `json:"attack"`
	// TimeToMitigateMS is verdict → acknowledged control for the first
	// enforced action (journal timestamps); -1 when nothing was acked.
	TimeToMitigateMS float64 `json:"time_to_mitigate_ms"`
	// Acked / Suppressed tally the engine's journal for the run.
	Acked      int `json:"actions_acked"`
	Suppressed int `json:"actions_suppressed"`
	// Pre/Post are the anomaly rates before and after the mitigation
	// took hold, normalized by offered attack load: alerts raised per
	// attack attempt in an identical burst. A mitigated RAN squelches
	// the attack at the radio edge (rejects, releases), so the same
	// offered burst yields less anomalous telemetry. Drop is their
	// difference (positive = mitigation reduced the anomaly rate).
	PreRate  float64 `json:"pre_anomaly_rate"`
	PostRate float64 `json:"post_anomaly_rate"`
	Drop     float64 `json:"anomaly_rate_drop"`
	// Attempts is the per-burst offered load the rates are normalized by.
	Attempts int `json:"attempts_per_burst"`
	// PreAlerts/PostAlerts and the window counts ground the rates. The
	// per-window ratio is deliberately not the headline: windows that do
	// survive mitigation are reject-heavy and still flagged, while the
	// telemetry volume collapses — visible in the window counts.
	PreAlerts   uint64 `json:"pre_alerts"`
	PreWindows  uint64 `json:"pre_windows"`
	PostAlerts  uint64 `json:"post_alerts"`
	PostWindows uint64 `json:"post_windows"`
	// ActiveAtEnd counts mitigations still enforced when the run ended.
	ActiveAtEnd int `json:"active_at_end"`
}

// MitigateBenchResult is the machine-readable baseline.
type MitigateBenchResult struct {
	GoMaxProcs int                    `json:"gomaxprocs"`
	NumCPU     int                    `json:"num_cpu"`
	Mode       string                 `json:"mode"`
	Attacks    []MitigateAttackResult `json:"attacks"`
	Series     []obs.SeriesSnapshot   `json:"mitigate_series"`
}

// RunMitigateBench measures the closed mitigation loop under the two DoS
// attacks the engine can answer (bts-dos → release-ue, blind-dos →
// block-tmsi).
func RunMitigateBench(cfg Config) (*MitigateBenchResult, error) {
	cfg.defaults()
	res := &MitigateBenchResult{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Mode:       mitigate.ModeEnforce.String(),
	}
	for _, attack := range []string{"bts-dos", "blind-dos"} {
		ar, err := runMitigateAttack(cfg, attack)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", attack, err)
		}
		res.Attacks = append(res.Attacks, *ar)
	}
	for _, s := range obs.Default.Snapshot() {
		if strings.HasPrefix(s.Name, "xsec_mitigate_") {
			res.Series = append(res.Series, s)
		}
	}
	return res, nil
}

func runMitigateAttack(cfg Config, attack string) (*MitigateAttackResult, error) {
	fw, err := core.New(core.Options{
		Seed:         cfg.Seed,
		ReportPeriod: 10 * time.Millisecond,
		TrainOpts:    mobiwatch.TrainOptions{Epochs: cfg.Epochs, Seed: cfg.Seed, Window: cfg.Window},
		Mitigate:     "enforce",
		// The TTL must outlast the post-enforcement phase so the second
		// burst hits a still-mitigated RAN.
		MitigateTTL: 30 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer fw.Close()

	benign, err := fw.CollectBenign(cfg.TrainSessions)
	if err != nil {
		return nil, err
	}
	if err := fw.Train(benign); err != nil {
		return nil, err
	}
	if err := fw.DeployXApps(); err != nil {
		return nil, err
	}
	go func() {
		for range fw.Cases() {
		}
	}()

	victim := fw.NewUE(ue.Pixel5, 900)
	vres, err := victim.RunSession(fw.GNB)
	if err != nil {
		return nil, err
	}
	attacker := fw.NewUE(ue.OAIUE, 901)
	attacker.Pace = func() { fw.Clock().Advance(500 * time.Microsecond) }

	attempts := 8
	if attack == "blind-dos" {
		attempts = 6
	}
	burst := func() (windows, alerts uint64) {
		ws := fw.WatchStats()
		w0, a0 := ws.WindowsScored.Load(), ws.AlertsRaised.Load()
		// An attack cut short by the network (rejects, releases) is the
		// mitigation working, not an infrastructure error.
		switch attack {
		case "bts-dos":
			_, _ = attacker.RunBTSDoS(fw.GNB, attempts)
		case "blind-dos":
			_, _ = attacker.RunBlindDoS(fw.GNB, vres.GUTI.TMSI, attempts)
		}
		time.Sleep(800 * time.Millisecond) // pipeline drain
		return ws.WindowsScored.Load() - w0, ws.AlertsRaised.Load() - a0
	}

	// Phase 1: undefended burst; the loop closes during it.
	w1, a1 := burst()

	// Wait for the first acked mitigation before the second phase.
	ttm := -1.0
	deadline := time.Now().Add(10 * time.Second)
	for ttm < 0 && time.Now().Before(deadline) {
		for _, en := range mitigate.Entries(fw.SDL) {
			if ms, ok := ackLatencyMS(en); ok {
				ttm = ms
				break
			}
		}
		if ttm < 0 {
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Phase 2: the same burst against the mitigated RAN.
	w2, a2 := burst()

	fw.Mitigator().Quiesce()
	ar := &MitigateAttackResult{
		Attack:           attack,
		TimeToMitigateMS: ttm,
		Attempts:         attempts,
		PreAlerts:        a1, PreWindows: w1,
		PostAlerts: a2, PostWindows: w2,
		PreRate:     rate(a1, uint64(attempts)),
		PostRate:    rate(a2, uint64(attempts)),
		ActiveAtEnd: fw.Mitigator().ActiveCount(),
	}
	ar.Drop = ar.PreRate - ar.PostRate
	for _, en := range mitigate.Entries(fw.SDL) {
		if _, ok := ackLatencyMS(en); ok {
			ar.Acked++
		}
		if strings.HasPrefix(en.Decision, "suppressed:") {
			ar.Suppressed++
		}
	}
	return ar, nil
}

// ackLatencyMS extracts verdict→ack latency from a journal entry's
// lifecycle history.
func ackLatencyMS(en mitigate.Entry) (float64, bool) {
	var proposed, acked time.Time
	for _, tr := range en.History {
		switch tr.State {
		case mitigate.StateProposed.String():
			proposed = tr.At
		case mitigate.StateAcked.String():
			acked = tr.At
		}
	}
	if proposed.IsZero() || acked.IsZero() {
		return 0, false
	}
	return float64(acked.Sub(proposed)) / float64(time.Millisecond), true
}

func rate(alerts, windows uint64) float64 {
	if windows == 0 {
		return 0
	}
	return float64(alerts) / float64(windows)
}

// JSON renders the baseline for BENCH_mitigate.json.
func (r *MitigateBenchResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Format renders the headline numbers as an aligned table.
func (r *MitigateBenchResult) Format() string {
	rows := make([][]string, 0, len(r.Attacks))
	for _, a := range r.Attacks {
		rows = append(rows, []string{
			a.Attack,
			fmt.Sprintf("%.1f ms", a.TimeToMitigateMS),
			fmt.Sprintf("%d/%d", a.Acked, a.Acked+a.Suppressed),
			fmt.Sprintf("%.2f", a.PreRate),
			fmt.Sprintf("%.2f", a.PostRate),
			fmt.Sprintf("%+.2f", -a.Drop),
		})
	}
	out := fmt.Sprintf("Closed-loop mitigation baseline (mode=%s, GOMAXPROCS=%d)\n", r.Mode, r.GoMaxProcs)
	out += "rates are alerts per offered attack attempt, identical bursts pre/post enforcement\n\n"
	out += formatTable([]string{"attack", "time-to-mitigate", "acked/proposed", "pre rate", "post rate", "rate change"}, rows)
	return out
}
