package bench

import (
	"fmt"
	"strings"

	"github.com/6g-xsec/xsec/internal/detect"
	"github.com/6g-xsec/xsec/internal/feature"
	"github.com/6g-xsec/xsec/internal/mobiwatch"
	"github.com/6g-xsec/xsec/internal/nn"
)

// Table2Row is one line of the paper's Table 2.
type Table2Row struct {
	Dataset   string // "Benign" or "Attack"
	Model     string // "Autoencoder" or "LSTM"
	Accuracy  float64
	Precision float64
	Recall    float64 // NaN-like: RecallNA true on the benign rows
	F1        float64
	NA        bool // recall/F1 not applicable (benign-only data)
}

// Table2Result reproduces Table 2 plus the event-level detection rates
// the xApp pipeline operates on.
type Table2Result struct {
	Rows []Table2Row
	// EventRecallAE / EventRecallLSTM: fraction of attack events with
	// at least one flagged window (the paper's "100% detection rate").
	EventRecallAE   float64
	EventRecallLSTM float64
}

// RunTable2 reproduces Table 2: benign cross-validated accuracy for both
// models, and full metrics on the attack dataset.
func RunTable2(cfg Config) (*Table2Result, error) {
	cfg.defaults()
	env, err := BuildEnv(cfg)
	if err != nil {
		return nil, err
	}
	res := &Table2Result{}

	// --- Benign rows: k-fold cross-validation, retraining per fold.
	vocab := env.Models.Vocab
	vecs := feature.Vectorize(env.Benign, vocab)
	winsAE := feature.WindowsAE(vecs, cfg.Window)
	dim := len(vecs[0])

	foldSeed := cfg.Seed + 100
	aeFolds, err := detect.KFoldBenign(winsAE, cfg.Folds, foldSeed, cfg.Percentile, func(train [][]float64) detect.Scorer {
		ae := nn.NewAutoencoder(nn.AEConfig{InputDim: dim * cfg.Window, Hidden: []int{64, 16}, Seed: foldSeed})
		ae.Train(train, nn.TrainConfig{Epochs: cfg.Epochs / 2, BatchSize: 16, LR: 3e-3, Seed: foldSeed})
		return detect.ScorerFunc(func(x []float64) float64 { return ae.Score(x) })
	})
	if err != nil {
		return nil, err
	}
	aeBenign := detect.MeanAccuracy(aeFolds)
	res.Rows = append(res.Rows, Table2Row{
		Dataset: "Benign", Model: "Autoencoder",
		Accuracy: aeBenign, Precision: aeBenign, NA: true,
	})

	// LSTM benign CV: windows are sequential pairs; fold over pair sets.
	winsL, nexts := feature.WindowsLSTM(vecs, cfg.Window)
	pairs := make([][]float64, len(winsL)) // flattened (window||next) for fold splitting
	for i := range winsL {
		var flat []float64
		for _, v := range winsL[i] {
			flat = append(flat, v...)
		}
		pairs[i] = append(flat, nexts[i]...)
	}
	lstmFolds, err := detect.KFoldBenign(pairs, cfg.Folds, foldSeed, cfg.Percentile, func(train [][]float64) detect.Scorer {
		l := nn.NewLSTM(foldSeed, dim, 32, dim)
		wins := make([][][]float64, len(train))
		nx := make([][]float64, len(train))
		for i, flat := range train {
			wins[i], nx[i] = unflattenPair(flat, dim, cfg.Window)
		}
		l.TrainNextStep(wins, nx, nn.TrainConfig{Epochs: cfg.Epochs / 2, BatchSize: 16, LR: 3e-3, Seed: foldSeed})
		return detect.ScorerFunc(func(flat []float64) float64 {
			w, nxt := unflattenPair(flat, dim, cfg.Window)
			return l.Score(w, nxt)
		})
	})
	if err != nil {
		return nil, err
	}
	lstmBenign := detect.MeanAccuracy(lstmFolds)
	res.Rows = append(res.Rows, Table2Row{
		Dataset: "Benign", Model: "LSTM",
		Accuracy: lstmBenign, Precision: lstmBenign, NA: true,
	})

	// --- Attack rows: the fully trained models on the mixed dataset.
	aeScores := env.Models.ScoreTraceAE(env.Mixed.Trace)
	aeLabels := feature.WindowLabels(env.Mixed.Malicious, cfg.Window)
	aePred := make([]bool, len(aeScores))
	for i, s := range aeScores {
		aePred[i] = s.Anomalous
	}
	aeConf := detect.Evaluate(aePred, aeLabels)
	res.Rows = append(res.Rows, Table2Row{
		Dataset: "Attack", Model: "Autoencoder",
		Accuracy: aeConf.Accuracy(), Precision: aeConf.Precision(),
		Recall: aeConf.Recall(), F1: aeConf.F1(),
	})

	lstmScores := env.Models.ScoreTraceLSTM(env.Mixed.Trace)
	lstmLabels := feature.WindowLabelsNext(env.Mixed.Malicious, cfg.Window)
	lstmPred := make([]bool, len(lstmScores))
	for i, s := range lstmScores {
		lstmPred[i] = s.Anomalous
	}
	lstmConf := detect.Evaluate(lstmPred, lstmLabels)
	res.Rows = append(res.Rows, Table2Row{
		Dataset: "Attack", Model: "LSTM",
		Accuracy: lstmConf.Accuracy(), Precision: lstmConf.Precision(),
		Recall: lstmConf.Recall(), F1: lstmConf.F1(),
	})

	res.EventRecallAE = eventRecall(env, aeScores, cfg.Window)
	res.EventRecallLSTM = eventRecall(env, lstmScores, cfg.Window+1)
	return res, nil
}

func unflattenPair(flat []float64, dim, window int) ([][]float64, []float64) {
	wins := make([][]float64, window)
	for i := 0; i < window; i++ {
		wins[i] = flat[i*dim : (i+1)*dim]
	}
	return wins, flat[window*dim:]
}

// eventRecall computes the fraction of attack events with ≥1 flagged
// window; span is the number of records a window covers.
func eventRecall(env *Env, scores []mobiwatch.WindowScore, span int) float64 {
	if len(env.Mixed.Events) == 0 {
		return 0
	}
	detected := 0
	for _, ev := range env.Mixed.Events {
		ueSet := make(map[uint64]bool, len(ev.UEIDs))
		for _, id := range ev.UEIDs {
			ueSet[id] = true
		}
		hit := false
		for _, s := range scores {
			if !s.Anomalous {
				continue
			}
			for j := s.Index; j < s.Index+span && j < len(env.Mixed.Trace); j++ {
				if ueSet[env.Mixed.Trace[j].UEID] {
					hit = true
					break
				}
			}
			if hit {
				break
			}
		}
		if hit {
			detected++
		}
	}
	return float64(detected) / float64(len(env.Mixed.Events))
}

// Format renders the result in the paper's Table 2 layout.
func (r *Table2Result) Format() string {
	var rows [][]string
	for _, row := range r.Rows {
		rec, f1 := "N/A", "N/A"
		if !row.NA {
			rec, f1 = pct(row.Recall), pct(row.F1)
		}
		rows = append(rows, []string{row.Dataset, row.Model, pct(row.Accuracy), pct(row.Precision), rec, f1})
	}
	var b strings.Builder
	b.WriteString("Table 2: Detection performance of the two deep learning models\n\n")
	b.WriteString(formatTable([]string{"Dataset", "Model", "Accuracy", "Precision", "Recall", "F1 Score"}, rows))
	fmt.Fprintf(&b, "\nEvent-level detection rate (>=1 flagged window per attack event):\n")
	fmt.Fprintf(&b, "  Autoencoder: %s   LSTM: %s\n", pct(r.EventRecallAE), pct(r.EventRecallLSTM))
	return b.String()
}
