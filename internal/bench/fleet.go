package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"github.com/6g-xsec/xsec/internal/fed"
)

// This file produces the fleet observability baseline (BENCH_fleet.json,
// `xsec-bench -fleet`): what the SMO-side plane costs and how fast it
// reacts — federation scrape round-trips, cross-instance trace-stitch
// latency, and the wall-clock from killing an instance (no Leave, no
// drain) to the failure detector auto-evicting it from the ring.

// FleetOptions configures the fleet benchmark.
type FleetOptions struct {
	// Instances is the federation size (default 4).
	Instances int
	// ScrapeRounds is how many timed federation scrapes to run
	// (default 10; Smoke reduces it to 3).
	ScrapeRounds int
	// Seed drives dataset generation and training.
	Seed int64
	// Smoke shrinks the workload so CI can exercise the path quickly.
	Smoke bool
}

func (o *FleetOptions) defaults() {
	if o.Instances <= 0 {
		o.Instances = 4
	}
	if o.ScrapeRounds == 0 {
		o.ScrapeRounds = 10
		if o.Smoke {
			o.ScrapeRounds = 3
		}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// FleetResult is the machine-readable baseline for BENCH_fleet.json.
type FleetResult struct {
	GoMaxProcs int  `json:"gomaxprocs"`
	NumCPU     int  `json:"num_cpu"`
	Smoke      bool `json:"smoke"`
	Instances  int  `json:"instances"`

	// Scrape cost: one full federation round (request fan-out, snapshot
	// assembly on every instance, bus transit, merge), in seconds.
	ScrapeRounds int     `json:"scrape_rounds"`
	ScrapeP50    float64 `json:"scrape_p50_seconds"`
	ScrapeMax    float64 `json:"scrape_max_seconds"`

	// Trace stitching over the drill's mid-attack migration.
	StitchSeconds  float64 `json:"stitch_seconds"`
	StitchedTraces int     `json:"stitched_traces"`
	TraceSegments  int     `json:"trace_segments"`
	TraceSpans     int     `json:"trace_spans"`
	TraceComplete  bool    `json:"trace_complete"`

	// Failure detection: crash (no coordinator notification) to
	// automatic ring eviction, against the configured DeadAfter.
	KillToEvictSeconds float64 `json:"kill_to_evict_seconds"`
	DeadAfterSeconds   float64 `json:"dead_after_seconds"`
	EvictedFromRing    bool    `json:"evicted_from_ring"`

	// Merged surface size after the drill.
	MergedSeries int `json:"merged_series"`
	FiringSLOs   int `json:"firing_slos"`

	Note string `json:"note"`
}

// JSON renders the baseline.
func (r *FleetResult) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// Format renders the human-readable summary.
func (r *FleetResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet observability plane (%d instances, GOMAXPROCS=%d)\n\n", r.Instances, r.GoMaxProcs)
	fmt.Fprintf(&b, "  federation scrape   p50 %s, max %s over %d rounds\n",
		fleetDur(r.ScrapeP50), fleetDur(r.ScrapeMax), r.ScrapeRounds)
	fmt.Fprintf(&b, "  trace stitch        %s for %d traces (migrated UE: %d segments, %d spans, complete=%v)\n",
		fleetDur(r.StitchSeconds), r.StitchedTraces, r.TraceSegments, r.TraceSpans, r.TraceComplete)
	fmt.Fprintf(&b, "  kill -> auto-evict  %s (deadline %s, ring updated=%v)\n",
		fleetDur(r.KillToEvictSeconds), fleetDur(r.DeadAfterSeconds), r.EvictedFromRing)
	fmt.Fprintf(&b, "  merged exposition   %d series, %d SLOs firing\n", r.MergedSeries, r.FiringSLOs)
	return b.String()
}

func fleetDur(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
}

// RunFleetBench runs the fleet drill and distills its baseline.
func RunFleetBench(opts FleetOptions) (*FleetResult, error) {
	opts.defaults()
	env, err := BuildEnv(Quick(opts.Seed))
	if err != nil {
		return nil, err
	}
	deadAfter := 600 * time.Millisecond
	drill, err := fed.RunFleetDrill(fed.FleetDrillOptions{
		Instances:    opts.Instances,
		Seed:         opts.Seed,
		Models:       env.Models,
		Mixed:        env.Mixed,
		DeadAfter:    deadAfter,
		ScrapeRounds: opts.ScrapeRounds,
	})
	if err != nil {
		return nil, err
	}
	res := &FleetResult{
		GoMaxProcs:         runtime.GOMAXPROCS(0),
		NumCPU:             runtime.NumCPU(),
		Smoke:              opts.Smoke,
		Instances:          drill.Instances,
		ScrapeRounds:       drill.ScrapeRounds,
		StitchSeconds:      drill.StitchSeconds,
		StitchedTraces:     drill.StitchedTraces,
		TraceSegments:      drill.TraceSegments,
		TraceSpans:         drill.TraceSpans,
		TraceComplete:      drill.TraceComplete,
		KillToEvictSeconds: drill.KillToEvictSecs,
		DeadAfterSeconds:   deadAfter.Seconds(),
		EvictedFromRing:    drill.EvictedFromRing,
		MergedSeries:       drill.MergedSeries,
		FiringSLOs:         drill.FiringSLOs,
		Note: "scrape = full federation round-trip; kill_to_evict measured from Crash " +
			"(no coordinator notification) to the failure detector's automatic ring eviction",
	}
	if n := len(drill.ScrapeSeconds); n > 0 { // sorted by the drill
		res.ScrapeP50 = drill.ScrapeSeconds[n/2]
		res.ScrapeMax = drill.ScrapeSeconds[n-1]
	}
	return res, nil
}
